module Iset = Kfuse_util.Iset
module Digraph = Kfuse_graph.Digraph
module Topo = Kfuse_graph.Topo
module Partition = Kfuse_graph.Partition
module Pipeline = Kfuse_ir.Pipeline
module Kernel = Kfuse_ir.Kernel
module Expr = Kfuse_ir.Expr

let fuse_block ?(exchange = true) (p : Pipeline.t) block =
  if Iset.is_empty block then invalid_arg "Transform.fuse_block: empty block";
  let sinks = Legality.block_sinks p block in
  let sink =
    match Iset.elements sinks with
    | [ s ] -> s
    | _ ->
      invalid_arg
        (Printf.sprintf "Transform.fuse_block: block %s has no unique sink"
           (Format.asprintf "%a" Iset.pp block))
  in
  if Iset.cardinal block = 1 then Pipeline.kernel p sink
  else begin
    let g = Digraph.induced (Pipeline.dag p) block in
    let order = Topo.sort g in
    (* Map from in-block image name to its inlined body expression. *)
    let inlined = Hashtbl.create 8 in
    (* Register names must not collide with (or be shadowed by) any Let
       binder already present in the block's kernels. *)
    let taken = Hashtbl.create 8 in
    Iset.iter
      (fun v ->
        match (Pipeline.kernel p v).Kernel.op with
        | Kernel.Map e | Kernel.Reduce { arg = e; _ } ->
          let rec collect e =
            match e with
            | Expr.Let { var; value; body } ->
              Hashtbl.replace taken var ();
              collect value;
              collect body
            | Expr.Const _ | Expr.Param _ | Expr.Input _ | Expr.Var _ -> ()
            | Expr.Unop (_, a) -> collect a
            | Expr.Binop (_, a, b) ->
              collect a;
              collect b
            | Expr.Select { lhs; rhs; if_true; if_false; _ } ->
              List.iter collect [ lhs; rhs; if_true; if_false ]
            | Expr.Shift { body; _ } -> collect body
          in
          collect e)
      block;
    let fresh_counter = ref 0 in
    let rec fresh image =
      incr fresh_counter;
      let candidate = Printf.sprintf "reg_%s_%d" image !fresh_counter in
      if Hashtbl.mem taken candidate then fresh image
      else begin
        Hashtbl.replace taken candidate ();
        candidate
      end
    in
    (* Point accesses (offset 0) to an in-block producer read the value
       the producer computes for the very same pixel: keep it in a
       register.  The shared substitution helper handles register sharing
       for multi-use point reads, windowed recomputation, and the
       Shift-frame soundness rules. *)
    let inline_kernel v =
      let k = Pipeline.kernel p v in
      let body =
        match k.Kernel.op with
        | Kernel.Map e -> e
        | Kernel.Reduce _ ->
          invalid_arg
            (Printf.sprintf "Transform.fuse_block: global kernel %s in block" k.Kernel.name)
      in
      Substitute.inline_producers ~exchange ~fresh
        ~produced:(fun image -> Hashtbl.find_opt inlined image)
        body
    in
    List.iter
      (fun v ->
        let k = Pipeline.kernel p v in
        Hashtbl.replace inlined k.Kernel.name (inline_kernel v))
      order;
    let sink_kernel = Pipeline.kernel p sink in
    let fused_body = Hashtbl.find inlined sink_kernel.Kernel.name in
    Kernel.map ~name:sink_kernel.Kernel.name ~inputs:(Expr.images fused_body) fused_body
  end

let apply ?(exchange = true) (p : Pipeline.t) partition =
  let g = Pipeline.dag p in
  if not (Partition.is_valid g partition) then
    invalid_arg "Transform.apply: invalid partition";
  let fused =
    List.map (fun block -> fuse_block ~exchange p block) (Partition.normalize partition)
  in
  Pipeline.with_kernels p fused
