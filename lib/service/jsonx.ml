type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---- encoding ---- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string f =
  if Float.is_nan f || Float.abs f = infinity then
    (* JSON has no NaN/infinity.  These never appear in protocol values
       we produce; encode as null rather than emit invalid JSON. *)
    "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    (* Shortest round-trippable rendering. *)
    let s = Printf.sprintf "%.17g" f in
    let shorter = Printf.sprintf "%.15g" f in
    if float_of_string shorter = f then shorter else s

let rec encode buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (number_to_string f)
  | Str s -> escape_string buf s
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        encode buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        encode buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  encode buf v;
  Buffer.contents buf

(* ---- parsing ---- *)

exception Parse of string

type state = { src : string; mutable pos : int }

let fail st msg = raise (Parse (Printf.sprintf "%s at offset %d" msg st.pos))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let next st =
  match peek st with
  | Some c ->
    st.pos <- st.pos + 1;
    c
  | None -> fail st "unexpected end of input"

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    st.pos <- st.pos + 1;
    skip_ws st
  | _ -> ()

let expect st c =
  let got = next st in
  if got <> c then fail st (Printf.sprintf "expected %C, got %C" c got)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "invalid literal (expected %s)" word)

let utf8_add buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let hex4 st =
  let v = ref 0 in
  for _ = 1 to 4 do
    let c = next st in
    let d =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail st "invalid \\u escape"
    in
    v := (!v * 16) + d
  done;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 32 in
  let rec go () =
    match next st with
    | '"' -> Buffer.contents buf
    | '\\' ->
      (match next st with
      | '"' -> Buffer.add_char buf '"'
      | '\\' -> Buffer.add_char buf '\\'
      | '/' -> Buffer.add_char buf '/'
      | 'b' -> Buffer.add_char buf '\b'
      | 'f' -> Buffer.add_char buf '\012'
      | 'n' -> Buffer.add_char buf '\n'
      | 'r' -> Buffer.add_char buf '\r'
      | 't' -> Buffer.add_char buf '\t'
      | 'u' ->
        let cp = hex4 st in
        if cp >= 0xD800 && cp <= 0xDBFF then begin
          (* High surrogate: require the low half. *)
          expect st '\\';
          expect st 'u';
          let lo = hex4 st in
          if lo < 0xDC00 || lo > 0xDFFF then fail st "unpaired surrogate";
          utf8_add buf (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
        end
        else if cp >= 0xDC00 && cp <= 0xDFFF then fail st "unpaired surrogate"
        else utf8_add buf cp
      | _ -> fail st "invalid escape");
      go ()
    | c when Char.code c < 0x20 -> fail st "unescaped control character"
    | c ->
      Buffer.add_char buf c;
      go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let consume_while p =
    while (match peek st with Some c -> p c | None -> false) do
      st.pos <- st.pos + 1
    done
  in
  if peek st = Some '-' then st.pos <- st.pos + 1;
  consume_while (function '0' .. '9' -> true | _ -> false);
  if peek st = Some '.' then begin
    st.pos <- st.pos + 1;
    consume_while (function '0' .. '9' -> true | _ -> false)
  end;
  (match peek st with
  | Some ('e' | 'E') ->
    st.pos <- st.pos + 1;
    (match peek st with
    | Some ('+' | '-') -> st.pos <- st.pos + 1
    | _ -> ());
    consume_while (function '0' .. '9' -> true | _ -> false)
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> fail st (Printf.sprintf "invalid number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match next st with
        | ',' -> fields ((k, v) :: acc)
        | '}' -> List.rev ((k, v) :: acc)
        | _ -> fail st "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      Arr []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match next st with
        | ',' -> items (v :: acc)
        | ']' -> List.rev (v :: acc)
        | _ -> fail st "expected ',' or ']'"
      in
      Arr (items [])
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number st)
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
    else Ok v
  | exception Parse msg -> Error msg

(* ---- accessors ---- *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None
let bool = function Bool b -> Some b | _ -> None
let arr = function Arr l -> Some l | _ -> None
let mem_str name v = Option.bind (member name v) str
let mem_num name v = Option.bind (member name v) num
let mem_bool name v = Option.bind (member name v) bool
