module Driver = Kfuse_fusion.Driver

type entry = { exact : string; report : Driver.report }

type t = {
  mem : entry Lru.t;
  dir : string option;
  lock : Mutex.t;
  (* Cache-level counters: the LRU's own hit counter would misreport an
     entry found under the structural key but rejected by the exact
     guard, so lookups are accounted here. *)
  mutable hits : int;
  mutable misses : int;
  mutable iso_misses : int;
  mutable disk_hits : int;
  mutable disk_misses : int;
  mutable disk_errors : int;
  mutable stores : int;
}

type outcome = Hit_memory | Hit_disk | Miss | Miss_iso

let outcome_to_string = function
  | Hit_memory -> "hit"
  | Hit_disk -> "hit-disk"
  | Miss -> "miss"
  | Miss_iso -> "miss-iso"

let default_dir () =
  let join a b = Filename.concat a b in
  match Sys.getenv_opt "XDG_CACHE_HOME" with
  | Some d when d <> "" -> join d "kfuse"
  | _ -> (
    match Sys.getenv_opt "HOME" with
    | Some h when h <> "" -> join (join h ".cache") "kfuse"
    | _ -> join (Filename.get_temp_dir_name ()) "kfuse")

let create ?(capacity = 256) ?dir () =
  {
    mem = Lru.create ~capacity ();
    dir;
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
    iso_misses = 0;
    disk_hits = 0;
    disk_misses = 0;
    disk_errors = 0;
    stores = 0;
  }

let dir t = t.dir

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ---- disk tier ----

   One file per structural key: a two-line text header (format version +
   producing OCaml version, then the payload digest) followed by the
   marshaled entry.  Marshal is build-sensitive, which is exactly why the
   header pins the OCaml version: a switch upgrade invalidates the store
   instead of crashing it. *)

let magic = Printf.sprintf "kfuse-plan 1 %s %d" Sys.ocaml_version Sys.word_size

let path_of t key = Option.map (fun d -> Filename.concat d (key ^ ".plan")) t.dir

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

exception Corrupt of string

let read_entry path =
  In_channel.with_open_bin path (fun ic ->
      let header = try input_line ic with End_of_file -> raise (Corrupt "empty file") in
      if not (String.equal header magic) then raise (Corrupt "version mismatch");
      let expected =
        try input_line ic with End_of_file -> raise (Corrupt "missing digest")
      in
      let payload = In_channel.input_all ic in
      if not (String.equal expected (Digest.to_hex (Digest.string payload))) then
        raise (Corrupt "payload digest mismatch");
      (Marshal.from_string payload 0 : entry))

let write_entry path (e : entry) =
  mkdir_p (Filename.dirname path);
  let tmp =
    Printf.sprintf "%s.%d.%d.tmp" path (Unix.getpid ()) (Thread.id (Thread.self ()))
  in
  let payload = Marshal.to_string e [] in
  Out_channel.with_open_bin tmp (fun oc ->
      output_string oc magic;
      output_char oc '\n';
      output_string oc (Digest.to_hex (Digest.string payload));
      output_char oc '\n';
      output_string oc payload);
  (* Atomic within a filesystem: readers see the old entry or the new
     one, never a torn write. *)
  Unix.rename tmp path

let disk_find t (key : Fingerprint.key) =
  match path_of t key.Fingerprint.structural with
  | None -> None
  | Some path ->
    if not (Sys.file_exists path) then begin
      t.disk_misses <- t.disk_misses + 1;
      None
    end
    else begin
      match read_entry path with
      | e ->
        if String.equal e.exact key.Fingerprint.exact then begin
          t.disk_hits <- t.disk_hits + 1;
          Some e
        end
        else begin
          t.disk_misses <- t.disk_misses + 1;
          None
        end
      | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
      | exception _ ->
        (* Unreadable or corrupt: drop it so the slot heals on the next
           store, and account for it (KF0701 territory, never fatal). *)
        t.disk_errors <- t.disk_errors + 1;
        (try Sys.remove path with Sys_error _ -> ());
        None
    end

let disk_store t (key : Fingerprint.key) (e : entry) =
  match path_of t key.Fingerprint.structural with
  | None -> ()
  | Some path -> (
    try write_entry path e
    with
    | (Out_of_memory | Stack_overflow) as e -> raise e
    | _ -> t.disk_errors <- t.disk_errors + 1)

(* ---- lookup / store ---- *)

(* [Error outcome] is a miss, qualified: plain, or same-structure-
   different-names (served only by recomputation, never by translation,
   so replies stay bit-identical to a fresh run). *)
let lookup t (key : Fingerprint.key) =
  locked t @@ fun () ->
  match Lru.find t.mem key.Fingerprint.structural with
  | Some e when String.equal e.exact key.Fingerprint.exact ->
    t.hits <- t.hits + 1;
    Ok (e.report, Hit_memory)
  | Some _ ->
    t.iso_misses <- t.iso_misses + 1;
    Error Miss_iso
  | None -> (
    match disk_find t key with
    | Some e ->
      t.hits <- t.hits + 1;
      Lru.put t.mem key.Fingerprint.structural e;
      Ok (e.report, Hit_disk)
    | None ->
      t.misses <- t.misses + 1;
      Error Miss)

let find t key = match lookup t key with Ok r -> Some r | Error _ -> None

let store t (key : Fingerprint.key) (report : Driver.report) =
  (* A degraded report reflects a budget or an injected fault, not the
     pipeline's content — caching it would replay a transient accident
     forever.  Only clean runs are content-addressable. *)
  if not report.Driver.degraded then
    locked t @@ fun () ->
    let e = { exact = key.Fingerprint.exact; report } in
    Lru.put t.mem key.Fingerprint.structural e;
    t.stores <- t.stores + 1;
    disk_store t key e

let find_or_compute t key compute =
  match lookup t key with
  | Ok (report, outcome) -> Ok (report, outcome)
  | Error why -> (
    (* Not under the lock: plans can take seconds, and concurrent misses
       on the same key are merely redundant (stores are idempotent). *)
    match compute () with
    | Error _ as e -> e
    | Ok report ->
      store t key report;
      Ok (report, why))

type stats = {
  hits : int;
  misses : int;
  iso_misses : int;
  evictions : int;
  entries : int;
  capacity : int;
  disk_hits : int;
  disk_misses : int;
  disk_errors : int;
  stores : int;
}

let stats t =
  locked t @@ fun () ->
  let c = Lru.counters t.mem in
  {
    hits = t.hits - t.disk_hits;
    misses = t.misses;
    iso_misses = t.iso_misses;
    evictions = c.Lru.evictions;
    entries = Lru.length t.mem;
    capacity = Lru.capacity t.mem;
    disk_hits = t.disk_hits;
    disk_misses = t.disk_misses;
    disk_errors = t.disk_errors;
    stores = t.stores;
  }

let hit_rate s =
  let served = s.hits + s.disk_hits in
  let total = served + s.misses + s.iso_misses in
  if total = 0 then 0.0 else float_of_int served /. float_of_int total

let pp_stats ppf s =
  Format.fprintf ppf
    "entries %d/%d  hits %d (disk %d)  misses %d (iso %d)  evictions %d  stores %d  disk errors %d  hit rate %.2f"
    s.entries s.capacity s.hits s.disk_hits s.misses s.iso_misses s.evictions s.stores
    s.disk_errors (hit_rate s)

let clear t = locked t @@ fun () -> Lru.clear t.mem
