(** Greedy shrinking of failing pipelines to minimal reproducers.

    QCheck-style: given a pipeline on which some oracle fails and a
    [still_fails] predicate that re-runs {e that} oracle, repeatedly try
    size-reducing rewrites and keep any candidate that is still a valid
    pipeline and still fails.  Every rewrite strictly decreases a
    well-founded measure (kernel count, then total AST size, then
    iteration-space area, then declared names, then total tap offsets),
    so shrinking terminates without the attempt cap.

    The moves, most aggressive first:
    - drop a sink kernel (its output is consumed by nothing);
    - bypass a kernel: rewire every consumer tap of its image to one of
      its own input images (same offset, same border) — or to a
      constant when it reads nothing — and drop it;
    - replace a kernel body by one of its immediate (closed)
      subexpressions;
    - inline parameter defaults and drop the parameter list;
    - drop declared-but-unread external inputs;
    - halve the iteration space (floored at 7x7, so any generated
      stencil still fits);
    - halve all tap offsets (pulling stencils toward point kernels). *)

val run :
  ?max_attempts:int ->
  still_fails:(Kfuse_ir.Pipeline.t -> bool) ->
  Kfuse_ir.Pipeline.t ->
  Kfuse_ir.Pipeline.t
