module Iset = Kfuse_util.Iset
module Digraph = Kfuse_graph.Digraph
module Topo = Kfuse_graph.Topo

type t = {
  name : string;
  width : int;
  height : int;
  channels : int;
  inputs : string list;
  params : (string * float) list;
  kernels : Kernel.t array;
}

let fail fmt = Printf.ksprintf invalid_arg fmt

let build_dag kernels =
  let index = Hashtbl.create 16 in
  Array.iteri (fun i (k : Kernel.t) -> Hashtbl.replace index k.name i) kernels;
  let g = Array.to_list kernels |> List.mapi (fun i _ -> i) |> List.fold_left Digraph.add_vertex Digraph.empty in
  Array.to_list kernels
  |> List.mapi (fun j (k : Kernel.t) ->
         List.filter_map (fun img -> Option.map (fun i -> (i, j)) (Hashtbl.find_opt index img)) k.inputs)
  |> List.concat
  |> List.fold_left (fun g (i, j) -> Digraph.add_edge g i j) g

let create ~name ~width ~height ?(channels = 1) ?(params = []) ~inputs kernels =
  if width <= 0 || height <= 0 then fail "Pipeline.create(%s): nonpositive extent" name;
  if channels <= 0 then fail "Pipeline.create(%s): nonpositive channel count" name;
  let seen = Hashtbl.create 16 in
  List.iter
    (fun i ->
      if Hashtbl.mem seen i then fail "Pipeline.create(%s): duplicate input %S" name i;
      Hashtbl.replace seen i `Input)
    inputs;
  List.iter
    (fun (k : Kernel.t) ->
      if Hashtbl.mem seen k.name then
        fail "Pipeline.create(%s): kernel name %S clashes with an input or kernel" name k.name;
      Hashtbl.replace seen k.name `Kernel)
    kernels;
  (* Parameters share the reference namespace with images in the DSL, so
     collisions would make references ambiguous. *)
  List.iter
    (fun (pname, _) ->
      if Hashtbl.mem seen pname then
        fail "Pipeline.create(%s): parameter %S clashes with an image name" name pname)
    params;
  List.iter
    (fun (k : Kernel.t) ->
      List.iter
        (fun img ->
          if not (Hashtbl.mem seen img) then
            fail "Pipeline.create(%s): kernel %S reads unknown image %S" name k.name img)
        k.inputs;
      List.iter
        (fun p ->
          if not (List.mem_assoc p params) then
            fail "Pipeline.create(%s): kernel %S uses parameter %S with no default" name
              k.name p)
        (match k.op with
        | Kernel.Map e -> Expr.params e
        | Kernel.Reduce { arg; _ } -> Expr.params arg))
    kernels;
  let arr = Array.of_list kernels in
  let g = build_dag arr in
  let order =
    match Topo.sort g with
    | order -> order
    | exception Topo.Cycle cyc ->
      fail "Pipeline.create(%s): dependence cycle through kernels %s" name
        (String.concat " -> " (List.map (fun i -> arr.(i).Kernel.name) cyc))
  in
  let sorted = Array.of_list (List.map (fun i -> arr.(i)) order) in
  (* Global kernels produce 1x1 images; forbid consuming them. *)
  let g = build_dag sorted in
  Array.iteri
    (fun i (k : Kernel.t) ->
      if Kernel.is_global k && not (Iset.is_empty (Digraph.succs g i)) then
        fail "Pipeline.create(%s): global kernel %S is consumed by another kernel" name
          k.name)
    sorted;
  { name; width; height; channels; inputs; params; kernels = sorted }

let num_kernels p = Array.length p.kernels

let kernel p i =
  if i < 0 || i >= Array.length p.kernels then fail "Pipeline.kernel: index %d out of range" i;
  p.kernels.(i)

let index_of p name =
  let found = ref None in
  Array.iteri
    (fun i (k : Kernel.t) -> if String.equal k.name name then found := Some i)
    p.kernels;
  !found

let index_of_exn p name =
  match index_of p name with
  | Some i -> i
  | None -> fail "Pipeline.index_of_exn(%s): no kernel %S" p.name name

let dag p = build_dag p.kernels

let producer p image = index_of p image

let consumers p i = Digraph.succs (dag p) i

let outputs p =
  let g = dag p in
  Array.to_list p.kernels
  |> List.mapi (fun i (k : Kernel.t) -> (i, k))
  |> List.filter_map (fun (i, k) ->
         if Iset.is_empty (Digraph.succs g i) then Some k.Kernel.name else None)

let is_pixels p = p.width * p.height * p.channels

let edge_image p u v =
  let g = dag p in
  if not (Digraph.mem_edge g u v) then fail "Pipeline.edge_image: (%d, %d) is not an edge" u v;
  (kernel p u).Kernel.name

let with_kernels p kernels =
  create ~name:p.name ~width:p.width ~height:p.height ~channels:p.channels
    ~params:p.params ~inputs:p.inputs kernels

let pp ppf p =
  Format.fprintf ppf "@[<v2>pipeline %s (%dx%dx%d) inputs=[%s]@,%a@]" p.name p.width
    p.height p.channels
    (String.concat ", " p.inputs)
    (Format.pp_print_list Kernel.pp)
    (Array.to_list p.kernels)
