lib/apps/enhance.ml: Kfuse_image Kfuse_ir List
