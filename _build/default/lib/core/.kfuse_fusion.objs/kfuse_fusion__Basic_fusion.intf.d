lib/core/basic_fusion.mli: Config Kfuse_graph Kfuse_ir Kfuse_util
