(** Shi-Tomasi good-features-to-track extractor (Section V-B).

    Same structural-matrix pipeline as Harris — both "involve the
    computation on a Hermitian matrix but interpret the Eigenvalues in
    different ways" — with the corner response replaced by the smaller
    eigenvalue [((gx + gy) - sqrt((gx - gy)^2 + 4 gxy^2)) / 2]. *)

module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Mask = Kfuse_image.Mask
module Border = Kfuse_image.Border

let default_width = 2048
let default_height = 2048

(** [pipeline ?width ?height ()] is the Shi-Tomasi pipeline. *)
let pipeline ?(width = default_width) ?(height = default_height) () =
  let border = Border.Clamp in
  let open Expr in
  let dx = Kernel.map ~name:"dx" ~inputs:[ "in" ] (conv ~border Mask.sobel_x "in") in
  let dy = Kernel.map ~name:"dy" ~inputs:[ "in" ] (conv ~border Mask.sobel_y "in") in
  let sx = Kernel.map ~name:"sx" ~inputs:[ "dx" ] (input "dx" * input "dx") in
  let sy = Kernel.map ~name:"sy" ~inputs:[ "dy" ] (input "dy" * input "dy") in
  let sxy = Kernel.map ~name:"sxy" ~inputs:[ "dx"; "dy" ] (input "dx" * input "dy") in
  let gx = Kernel.map ~name:"gx" ~inputs:[ "sx" ] (conv ~border Mask.gaussian_3x3 "sx") in
  let gy = Kernel.map ~name:"gy" ~inputs:[ "sy" ] (conv ~border Mask.gaussian_3x3 "sy") in
  let gxy =
    Kernel.map ~name:"gxy" ~inputs:[ "sxy" ] (conv ~border Mask.gaussian_3x3 "sxy")
  in
  let st =
    let sum = input "gx" + input "gy" in
    let diff = input "gx" - input "gy" in
    let discr = sqrt ((diff * diff) + (const 4.0 * input "gxy" * input "gxy")) in
    Kernel.map ~name:"st" ~inputs:[ "gx"; "gy"; "gxy" ]
      ((sum - discr) / const 2.0)
  in
  Pipeline.create ~name:"shitomasi" ~width ~height ~inputs:[ "in" ]
    [ dx; dy; sx; sy; sxy; gx; gy; gxy; st ]
