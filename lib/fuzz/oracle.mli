(** The differential oracle bank.

    Every generated pipeline is run through a battery of checks, each of
    which compares two independent computations of the same fact — two
    strategies, two schedules, two serializations, two isomorphic
    pipelines — so no oracle needs a hand-written expected value:

    - {!constructor:Validate_ok}: the generator only emits pipelines
      {!Kfuse_ir.Validate} accepts (a broken generator would invalidate
      every other oracle).
    - {!constructor:Legality}: every partition from every strategy
      ([basic], [greedy], [mincut]) passes
      {!Kfuse_graph.Partition.validate} and
      {!Kfuse_fusion.Legality.check_partition}.  Strategies are called
      {e directly}, not through the driver: the driver's graceful
      degradation would silently repair exactly the failures this
      oracle exists to catch.
    - {!constructor:Beta_optimal}: on DAGs small enough to enumerate,
      Algorithm 1's objective never {e exceeds} the exhaustive optimum
      (that would mean an illegal or miscounted partition); falling
      short is a heuristic gap, reported as {!constructor:Gap} and
      failing only under [strict_optimal].
    - {!constructor:Eval_exact}: fusing with border exchange — and
      additionally simplifying + CSE-ing — changes no output pixel,
      {e bitwise}, for any strategy's partition.
    - {!constructor:Pool_determinism}: the min-cut search on a domain
      pool is bit-identical to the serial run.
    - {!constructor:Cache_replay}: a plan stored to the disk cache and
      replayed (memory tier cleared) equals the freshly computed plan.
    - {!constructor:Meta_rename}, {!constructor:Meta_permute_inputs},
      {!constructor:Meta_duplicate}: metamorphic invariances — kernel
      renaming and input-declaration permutation leave the structural
      fingerprint, the min-cut objective and the partition unchanged;
      duplicating a fanned-out kernel and rewiring one consumer is
      undone exactly by {!Kfuse_ir.Cse.dedup_kernels}, and wrapping a
      body in an equal-branch [select] leaves the structural
      fingerprint unchanged.
    - {!constructor:Unparse_roundtrip}: unparse-then-parse is the
      identity on (border-normalized) pipelines, by exact fingerprint.
    - {!constructor:Incremental_replan}: the lazy frontend's
      differential.  The generated pipeline seeds a
      {!Kfuse_lazy.Lazy_pipeline}; a deterministic edit sequence
      (derived from the pipeline's own fingerprint) is applied with a
      flush after every burst, and each incremental flush — planned
      through the session's cross-flush memo — must be {e bit-identical}
      (plan fingerprint: partition, objective, fused pipeline) to
      planning the same state from scratch, without ever tripping the
      seam-check fallback.
    - {!constructor:Native_exec}: the fused plan, compiled by
      {!Kfuse_exec.Native} and executed natively, agrees {e bitwise}
      with the {!Kfuse_ir.Eval} interpreter on the original pipeline
      (double-precision buffers and marshalling make exactness the
      right bar).  Skips cleanly when the host has no C toolchain.
      Compiling every case is orders of magnitude slower than the rest
      of the bank, so this oracle is {e opt-in}: it is not in {!all}
      and runs only when [which] names it.
    - {!constructor:Stream_exec}: the multi-frame streaming
      differential.  The same pipeline is windowed two ways — the
      {!Kfuse_stream.Session} interpreter backend, and the fused plan
      compiled and pinned {e once} ({!Kfuse_exec.Native.prepare}) then
      run per frame — over a short synthetic frame sequence, and every
      frame must agree {e bitwise}.  The temporal state carried between
      frames is part of the oracle: a mis-clamped cold-start lag, a
      double-advanced window, or a stale pinned artifact breaks later
      frames even when frame 0 agrees.  Skips cleanly on
      non-streamable pipelines and toolchain-less hosts; opt-in like
      {!constructor:Native_exec}. *)

type name =
  | Validate_ok
  | Legality
  | Beta_optimal
  | Eval_exact
  | Pool_determinism
  | Cache_replay
  | Meta_rename
  | Meta_permute_inputs
  | Meta_duplicate
  | Unparse_roundtrip
  | Incremental_replan
  | Native_exec
  | Stream_exec

(** The default bank, in the order {!check} runs it.  Excludes the
    opt-in {!constructor:Native_exec} and {!constructor:Stream_exec};
    pass [~which:(all @ [Native_exec; Stream_exec])] to include them. *)
val all : name list

val name_to_string : name -> string
val name_of_string : string -> name option

type failure = { oracle : name; detail : string }

(** Outcome of the {!constructor:Beta_optimal} comparison. *)
type optimality =
  | Optimal  (** min-cut matched the exhaustive optimum *)
  | Gap of float  (** optimum minus min-cut objective (positive) *)
  | Not_checked  (** DAG too large, or oracle not selected *)

type report = { failure : failure option; optimality : optimality }

(** [check config p] runs the bank and stops at the first failure.

    [which] restricts to a subset (default {!all}); [pool] enables the
    pool-determinism oracle (skipped without one); [cache_dir] enables
    the disk tier of the cache-replay oracle (memory-only without) and
    hosts the native oracle's compile cache under a [native/] subdir;
    [strict_optimal] (default false) turns heuristic optimality gaps
    into failures; [max_exhaustive] (default 8) bounds the DAGs the
    exhaustive oracle enumerates.  Oracles never raise: an escaping
    exception is itself a failure of the oracle it escaped from. *)
val check :
  ?which:name list ->
  ?pool:Kfuse_util.Pool.t ->
  ?cache_dir:string ->
  ?strict_optimal:bool ->
  ?max_exhaustive:int ->
  Kfuse_fusion.Config.t ->
  Kfuse_ir.Pipeline.t ->
  report
