test/test_fusion_algos.ml: Alcotest Helpers Kfuse_apps Kfuse_fusion Kfuse_graph Kfuse_ir Kfuse_util List Option Printf
