(* Shared plumbing for the experiment harness: build each application's
   three implementations (baseline / basic / optimized, as in Section V-C)
   and measure them on each GPU model. *)

module F = Kfuse_fusion
module G = Kfuse_gpu
module Ir = Kfuse_ir
module Iset = Kfuse_util.Iset
module Stats = Kfuse_util.Stats

let config = F.Config.default

type impl = Baseline | Basic | Optimized

let impl_names = [ (Baseline, "baseline"); (Basic, "basic"); (Optimized, "optimized") ]

let strategy_of_impl = function
  | Baseline -> F.Driver.Baseline
  | Basic -> F.Driver.Basic
  | Optimized -> F.Driver.Mincut

let quality_of_impl = function
  | Baseline | Optimized -> G.Perf_model.Optimized
  | Basic -> G.Perf_model.Basic_codegen

let fused_names (p : Ir.Pipeline.t) (r : F.Driver.report) =
  List.filter_map
    (fun b ->
      if Iset.cardinal b >= 2 then
        Some
          (Ir.Pipeline.kernel p (Iset.min_elt (F.Legality.block_sinks p b))).Ir.Kernel.name
      else None)
    r.F.Driver.partition

(* The harness-wide domain pool, set from the -j flag by bench/main.ml
   before any experiment runs.  Defaults to serial. *)
let the_pool = ref Kfuse_util.Pool.serial
let set_pool p = the_pool := p
let pool () = !the_pool

(* Measurements are cached per (app, impl, device): fig6, tab1 and tab2
   all read the same cells. *)
let cache : (string * string * string, G.Sim.measurement) Hashtbl.t = Hashtbl.create 64

let cell_key (app : Kfuse_apps.Registry.entry) impl (device : G.Device.t) =
  (app.Kfuse_apps.Registry.name, List.assoc impl impl_names, device.G.Device.name)

(* Fuse + simulate one grid cell.  Pure given (app, impl, device, runs),
   so cells can be computed on any domain. *)
let compute ?pool ~runs (app : Kfuse_apps.Registry.entry) impl (device : G.Device.t) =
  let p = app.Kfuse_apps.Registry.pipeline () in
  let r = F.Driver.run ?pool config (strategy_of_impl impl) p in
  G.Sim.measure ?pool ~runs device ~quality:(quality_of_impl impl)
    ~fused_kernels:(fused_names p r) r.F.Driver.fused

let measure ?(runs = 500) (app : Kfuse_apps.Registry.entry) impl (device : G.Device.t) =
  let key = cell_key app impl device in
  match Hashtbl.find_opt cache key with
  | Some m -> m
  | None ->
    let m = compute ~pool:!the_pool ~runs app impl device in
    Hashtbl.replace cache key m;
    m

(* Warm the whole app x impl x device grid at once: the cells are
   independent, so they are distributed over the pool (each cell runs
   its own search and sampling serially — grid-level parallelism keeps
   every domain busy without nesting).  The cache is filled from the
   submitting domain afterwards, in grid order, so later lookups see
   exactly what a lazy serial run would have computed. *)
let precompute ?(runs = 500) () =
  let cells =
    List.concat_map
      (fun device ->
        List.concat_map
          (fun app ->
            List.filter_map
              (fun (impl, _) ->
                if Hashtbl.mem cache (cell_key app impl device) then None
                else Some (app, impl, device))
              impl_names)
          Kfuse_apps.Registry.all)
      G.Device.all
  in
  let measured =
    Kfuse_util.Pool.map_list !the_pool
      (fun (app, impl, device) -> compute ~runs app impl device)
      cells
  in
  List.iter2
    (fun (app, impl, device) m -> Hashtbl.replace cache (cell_key app impl device) m)
    cells measured

let median app impl device = (measure app impl device).G.Sim.summary.Stats.median

let speedup app num den device = median app den device /. median app num device

let app entry_name =
  match Kfuse_apps.Registry.find entry_name with
  | Some e -> e
  | None -> failwith ("unknown app " ^ entry_name)

let all_apps = Kfuse_apps.Registry.all
let all_devices = G.Device.all

let hrule width = String.make width '-'
