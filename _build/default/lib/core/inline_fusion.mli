(** Producer inlining — an extension beyond the paper's partition model.

    The paper's kernel fusion partitions the DAG, so an intermediate
    consumed by {e several} kernels can never be eliminated: any block
    containing the producer and one consumer has an external output
    (Figure 2c), and a block containing all consumers has several sinks.
    Inlining takes the other classical route (the default schedule of
    Halide): replicate the producer's body into {e every} consumer and
    delete the producer, trading recomputation per consumer for the
    eliminated write and reads of the intermediate image.

    The profitability test reuses the paper's benefit vocabulary: inlining
    image [m] (producer [u], consumers [C]) saves
    [IS * tg * (1 + |C|)] cycles (one write plus each consumer's read)
    and costs [sum over c of cost_op(u) * IS_ks(u) * taps_c(m)]
    recomputation (Eq. 6/7 generalized to per-consumer tap counts).
    Border correctness uses the same index-exchange machinery as the
    fusion transform.

    Legality: the producer must be a map kernel whose output is not a
    pipeline output; consumers must be map kernels; each rewritten
    consumer must respect the Eq. 2 shared-memory growth bound relative
    to its pre-inline self. *)

(** Why a candidate cannot or should not be inlined. *)
type verdict =
  | Inline of { saved : float; cost : float }  (** profitable and legal *)
  | Keep_output  (** the image is a pipeline output *)
  | Keep_global  (** producer or a consumer is a reduction kernel *)
  | Keep_resource of { consumer : string; ratio : float }  (** Eq. 2 violated *)
  | Keep_unprofitable of { saved : float; cost : float }

(** [judge config pipeline image] evaluates inlining the producer of
    [image].
    @raise Invalid_argument if no kernel produces [image]. *)
val judge : Config.t -> Kfuse_ir.Pipeline.t -> string -> verdict

(** [inline_image ?exchange pipeline image] performs the rewrite
    unconditionally (legality of the rewrite itself — map kernels, not a
    pipeline output — is still required).
    @raise Invalid_argument when the rewrite is impossible. *)
val inline_image : ?exchange:bool -> Kfuse_ir.Pipeline.t -> string -> Kfuse_ir.Pipeline.t

(** [greedy ?exchange config pipeline] repeatedly inlines the most
    profitable candidate until none remains; returns the rewritten
    pipeline and the inlined image names in application order. *)
val greedy :
  ?exchange:bool -> Config.t -> Kfuse_ir.Pipeline.t -> Kfuse_ir.Pipeline.t * string list

val verdict_to_string : verdict -> string
