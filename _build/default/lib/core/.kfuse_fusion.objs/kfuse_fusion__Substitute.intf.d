lib/core/substitute.mli: Kfuse_ir
