(* Tests for Kfuse_dsl: lexer, parser, elaboration. *)

module L = Kfuse_dsl.Lexer
module P = Kfuse_dsl.Parser
module E = Kfuse_dsl.Elaborate
module Ast = Kfuse_dsl.Ast
module Pipeline = Kfuse_ir.Pipeline
module Kernel = Kfuse_ir.Kernel
module Image = Kfuse_image.Image

let tokens src = List.map (fun s -> s.L.token) (L.tokenize src)

let test_lexer_basics () =
  Alcotest.(check int) "count incl. eof" 6 (List.length (tokens "a = b + 1.5"));
  match tokens "x2 = conv(in, gauss3)" with
  | [ L.Ident "x2"; L.Equals; L.Ident "conv"; L.Lparen; L.Ident "in"; L.Comma;
      L.Ident "gauss3"; L.Rparen; L.Eof ] ->
    ()
  | ts -> Alcotest.failf "unexpected tokens: %s" (String.concat " " (List.map L.token_to_string ts))

let test_lexer_numbers () =
  (match tokens "1 2.5 3e2 4.5e-1" with
  | [ L.Number a; L.Number b; L.Number c; L.Number d; L.Eof ] ->
    Alcotest.check (Helpers.float_close ()) "int" 1.0 a;
    Alcotest.check (Helpers.float_close ()) "frac" 2.5 b;
    Alcotest.check (Helpers.float_close ()) "exp" 300.0 c;
    Alcotest.check (Helpers.float_close ()) "neg exp" 0.45 d
  | _ -> Alcotest.fail "bad number lexing")

let test_lexer_comments_positions () =
  let spanned = L.tokenize "# comment\n  foo" in
  match spanned with
  | [ { L.token = L.Ident "foo"; pos } ; _eof ] ->
    Alcotest.(check int) "line" 2 pos.Ast.line;
    Alcotest.(check int) "col" 3 pos.Ast.col
  | _ -> Alcotest.fail "comment not skipped"

let test_lexer_error () =
  match L.tokenize "a $ b" with
  | _ -> Alcotest.fail "expected lex error"
  | exception L.Lex_error { pos; _ } -> Alcotest.(check int) "column" 3 pos.Ast.col

let parse_ok src =
  match P.parse_result src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_parser_minimal () =
  let p = parse_ok "pipeline t(a) { out = a }" in
  Alcotest.(check string) "name" "t" p.Ast.name;
  Alcotest.(check (list string)) "inputs" [ "a" ] p.Ast.inputs;
  Alcotest.(check int) "one stmt" 1 (List.length p.Ast.stmts)

let test_parser_precedence () =
  let p = parse_ok "pipeline t(a) { out = a + a * a }" in
  match p.Ast.stmts with
  | [ Ast.Def { body = Ast.Map_def (Ast.Binary ("+", Ast.Ref "a", Ast.Binary ("*", _, _))); _ } ]
    -> ()
  | _ -> Alcotest.fail "precedence wrong: * should bind tighter than +"

let test_parser_unary_minus () =
  let p = parse_ok "pipeline t(a) { out = -a * a }" in
  match p.Ast.stmts with
  | [ Ast.Def { body = Ast.Map_def (Ast.Binary ("*", Ast.Unary ("-", Ast.Ref "a"), Ast.Ref "a")); _ } ]
    -> ()
  | _ -> Alcotest.fail "unary minus should bind tighter than *"

let test_parser_access_and_border () =
  let p = parse_ok "pipeline t(a) { out = a@(-1,2):mirror + a@(0,0) }" in
  match p.Ast.stmts with
  | [ Ast.Def { body = Ast.Map_def (Ast.Binary ("+", Ast.Access a1, Ast.Access a2)); _ } ] ->
    Alcotest.(check int) "dx" (-1) a1.dx;
    Alcotest.(check int) "dy" 2 a1.dy;
    Alcotest.(check bool) "mirror" true (a1.border = Some Kfuse_image.Border.Mirror);
    Alcotest.(check bool) "default" true (a2.border = None)
  | _ -> Alcotest.fail "access parse failed"

let test_parser_conv_literal_mask () =
  let p = parse_ok "pipeline t(a) { out = conv(a, [[0,1,0],[1,-4,1],[0,1,0]], constant(0.5)) }" in
  match p.Ast.stmts with
  | [ Ast.Def { body = Ast.Map_def (Ast.Conv { mask = Ast.Literal_mask rows; border; _ }); _ } ]
    ->
    Alcotest.(check int) "3 rows" 3 (List.length rows);
    Alcotest.(check bool) "constant border" true
      (border = Some (Kfuse_image.Border.Constant 0.5))
  | _ -> Alcotest.fail "conv parse failed"

let test_parser_size_param_reduce () =
  let p =
    parse_ok
      "pipeline t(a) { size 128 64 3\n param k = -0.5\n s = reduce sum(a * k) }"
  in
  (match List.nth p.Ast.stmts 0 with
  | Ast.Size { width = 128; height = 64; channels = Some 3 } -> ()
  | _ -> Alcotest.fail "size parse failed");
  (match List.nth p.Ast.stmts 1 with
  | Ast.Param_decl ("k", v) -> Alcotest.check (Helpers.float_close ()) "value" (-0.5) v
  | _ -> Alcotest.fail "param parse failed");
  match List.nth p.Ast.stmts 2 with
  | Ast.Def { body = Ast.Reduce_def (`Sum, _); _ } -> ()
  | _ -> Alcotest.fail "reduce parse failed"

let expect_parse_error src fragment =
  match P.parse_result src with
  | Ok _ -> Alcotest.failf "expected parse error for %S" src
  | Error e ->
    if not (String.length e > 0) then Alcotest.fail "empty error";
    let contains needle haystack =
      let nl = String.length needle and hl = String.length haystack in
      let rec loop i = i + nl <= hl && (String.sub haystack i nl = needle || loop (i + 1)) in
      loop 0
    in
    Alcotest.(check bool) (Printf.sprintf "error %S mentions %S" e fragment) true
      (contains fragment e)

let test_parser_errors () =
  expect_parse_error "pipeline" "identifier";
  expect_parse_error "pipeline t(a) { out = }" "expression";
  expect_parse_error "pipeline t(a) { out = q( a ) }" "unknown function";
  expect_parse_error "pipeline t(a) { out = a@(1.5, 0) }" "integer";
  expect_parse_error "pipeline t(a) { out = a } junk" "end of input";
  expect_parse_error "pipeline t(a) { out = min(a) }" "2 arguments";
  expect_parse_error "pipeline t(a) { out = a@(0,0):wavy }" "border"

let test_elaborate_roundtrip () =
  let src =
    {|pipeline t(src) {
        size 16 12
        param g = 0.7
        blur = conv(src, gauss3, clamp)
        out  = pow(max(blur, 0), g)
      }|}
  in
  match E.parse_pipeline src with
  | Error e -> Alcotest.failf "elaboration failed: %s" e
  | Ok p ->
    Alcotest.(check int) "kernels" 2 (Pipeline.num_kernels p);
    Alcotest.(check int) "width" 16 p.Pipeline.width;
    Alcotest.(check bool) "param default" true (List.mem_assoc "g" p.Pipeline.params);
    Alcotest.(check bool) "blur local" true (Kernel.is_local (Pipeline.kernel p 0))

let test_elaborate_name_resolution () =
  (match E.parse_pipeline "pipeline t(a) { out = ghost + a }" with
  | Error e ->
    Alcotest.(check bool) "mentions unknown" true
      (String.length e > 0 &&
       (let contains needle haystack =
          let nl = String.length needle and hl = String.length haystack in
          let rec loop i = i + nl <= hl && (String.sub haystack i nl = needle || loop (i + 1)) in
          loop 0
        in
        contains "ghost" e))
  | Ok _ -> Alcotest.fail "unknown name accepted");
  (* Params shadow nothing and resolve. *)
  match E.parse_pipeline "pipeline t(a) { param s = 2\n out = a * s }" with
  | Ok p -> (
    match (Pipeline.kernel p 0).Kernel.op with
    | Kernel.Map e ->
      Alcotest.(check (list string)) "param used" [ "s" ] (Kfuse_ir.Expr.params e)
    | Kernel.Reduce _ -> Alcotest.fail "unexpected reduce")
  | Error e -> Alcotest.failf "param resolution failed: %s" e

let test_elaborate_masks () =
  List.iter
    (fun name ->
      Alcotest.(check bool) name true (Option.is_some (E.named_mask name)))
    [ "gauss3"; "gauss5"; "sobelx"; "sobely"; "mean3"; "mean5" ];
  Alcotest.(check bool) "unknown" true (E.named_mask "gauss7" = None)

let test_elaborate_size_override () =
  let src = "pipeline t(a) { size 100 100\n out = a }" in
  match E.parse_pipeline ~width:10 ~height:20 src with
  | Ok p ->
    Alcotest.(check int) "width override" 10 p.Pipeline.width;
    Alcotest.(check int) "height override" 20 p.Pipeline.height
  | Error e -> Alcotest.failf "failed: %s" e

let test_let_in_expression () =
  let src =
    {|pipeline t(a) {
        size 6 4
        out = let d = a - conv(a, mean3, clamp) in d * d + a
      }|}
  in
  match E.parse_pipeline src with
  | Error e -> Alcotest.failf "let-in failed: %s" e
  | Ok p ->
    (* The binding becomes a real IR Let node. *)
    (match (Pipeline.kernel p 0).Kernel.op with
    | Kernel.Map (Kfuse_ir.Expr.Let { var = "d"; _ }) -> ()
    | Kernel.Map other ->
      Alcotest.failf "expected Let, got %s" (Format.asprintf "%a" Kfuse_ir.Expr.pp other)
    | Kernel.Reduce _ -> Alcotest.fail "unexpected reduce");
    (* Semantics: d computed once, squared, plus a. *)
    let img = Helpers.ramp ~width:6 ~height:4 in
    let out = Helpers.run_single p [ ("a", img) ] in
    let blur =
      Kfuse_image.Convolve.apply ~border:Kfuse_image.Border.Clamp
        (Kfuse_image.Mask.mean 3) img
    in
    let expected =
      Image.mapi
        (fun x y v ->
          let d = v -. Image.get blur x y in
          (d *. d) +. v)
        img
    in
    Alcotest.check (Helpers.image_close ~eps:1e-9 ()) "let semantics" expected out

let test_let_shadowing () =
  (* A let binding shadows a parameter of the same name. *)
  let src =
    {|pipeline t(a) {
        size 4 3
        param k = 10
        out = (let k = 2 in a * k) + k
      }|}
  in
  match E.parse_pipeline src with
  | Error e -> Alcotest.failf "failed: %s" e
  | Ok p ->
    let img = Image.const ~width:4 ~height:3 1.0 in
    let out = Helpers.run_single p [ ("a", img) ] in
    (* inner k = 2, outer k = 10: 1*2 + 10 = 12 *)
    Alcotest.check (Helpers.float_close ()) "shadowing" 12.0 (Image.get out 0 0)

let test_select_builtin () =
  let src =
    {|pipeline t(a) {
        size 4 1
        out = select(a, 0.5, 0, 1)
      }|}
  in
  match E.parse_pipeline src with
  | Error e -> Alcotest.failf "failed: %s" e
  | Ok p ->
    let img = Image.of_rows [ [ 0.2; 0.5; 0.7; 0.4 ] ] in
    let out = Helpers.run_single p [ ("a", img) ] in
    (* a < 0.5 ? 0 : 1 *)
    Alcotest.check (Helpers.float_close ()) "below" 0.0 (Image.get out 0 0);
    Alcotest.check (Helpers.float_close ()) "equal" 1.0 (Image.get out 1 0);
    Alcotest.check (Helpers.float_close ()) "above" 1.0 (Image.get out 2 0)

let test_select_arity_error () =
  expect_parse_error "pipeline t(a) { out = select(a, 1, 2) }" "4 arguments"

let test_elaborate_matches_eval () =
  (* DSL semantics cross-checked against a hand-built equivalent. *)
  let src =
    {|pipeline t(a) {
        size 9 7
        d = a - conv(a, mean3, mirror)
        out = clamp01(a + d * 0.5)
      }|}
  in
  match E.parse_pipeline src with
  | Error e -> Alcotest.failf "failed: %s" e
  | Ok p ->
    let rng = Kfuse_util.Rng.create 12 in
    let img = Image.random rng ~width:9 ~height:7 ~lo:0.0 ~hi:2.0 in
    let out = Helpers.run_single p [ ("a", img) ] in
    let blurred =
      Kfuse_image.Convolve.apply ~border:Kfuse_image.Border.Mirror (Kfuse_image.Mask.mean 3) img
    in
    let expected =
      Image.mapi
        (fun x y v ->
          Float.max 0.0 (Float.min 1.0 (v +. ((v -. Image.get blurred x y) *. 0.5))))
        img
    in
    Alcotest.check (Helpers.image_close ~eps:1e-12 ()) "semantics" expected out

let suite =
  [
    Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
    Alcotest.test_case "lexer numbers" `Quick test_lexer_numbers;
    Alcotest.test_case "lexer comments/positions" `Quick test_lexer_comments_positions;
    Alcotest.test_case "lexer error" `Quick test_lexer_error;
    Alcotest.test_case "parser minimal" `Quick test_parser_minimal;
    Alcotest.test_case "parser precedence" `Quick test_parser_precedence;
    Alcotest.test_case "parser unary minus" `Quick test_parser_unary_minus;
    Alcotest.test_case "parser access + border" `Quick test_parser_access_and_border;
    Alcotest.test_case "parser conv literal mask" `Quick test_parser_conv_literal_mask;
    Alcotest.test_case "parser size/param/reduce" `Quick test_parser_size_param_reduce;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    Alcotest.test_case "elaborate roundtrip" `Quick test_elaborate_roundtrip;
    Alcotest.test_case "elaborate name resolution" `Quick test_elaborate_name_resolution;
    Alcotest.test_case "elaborate masks" `Quick test_elaborate_masks;
    Alcotest.test_case "elaborate size override" `Quick test_elaborate_size_override;
    Alcotest.test_case "let-in expression" `Quick test_let_in_expression;
    Alcotest.test_case "let shadowing" `Quick test_let_shadowing;
    Alcotest.test_case "select builtin" `Quick test_select_builtin;
    Alcotest.test_case "select arity error" `Quick test_select_arity_error;
    Alcotest.test_case "elaborate matches eval" `Quick test_elaborate_matches_eval;
  ]
