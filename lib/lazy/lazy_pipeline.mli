(** Lazy pipeline construction: edit now, fuse on [flush].

    A {!t} is a mutable pipeline under construction — kernels are
    appended, deleted and retargeted, inputs and parameter defaults
    added — with fusion deferred to {!flush}, which (re)plans through a
    persistent {!Replan.t} session so that edits touching one region of
    the DAG reuse the min-cut decisions of every untouched region.

    Every edit is validated eagerly by running the full pipeline
    validator ({!Kfuse_ir.Validate}) over the would-be state: a
    rejected edit (dangling reference, cycle, duplicate name, consumed
    kernel deleted, ...) returns the diagnostic and leaves the builder
    {b unchanged}, so the builder always holds a constructible pipeline
    and [flush] cannot fail on structure.  Not thread-safe. *)

type t

val create :
  ?name:string ->
  ?channels:int ->
  ?params:(string * float) list ->
  ?inputs:string list ->
  width:int ->
  height:int ->
  Kfuse_fusion.Config.t ->
  t
(** An empty builder over a [width x height x channels] iteration space.
    @raise Invalid_argument on an invalid config or nonpositive space. *)

val of_pipeline : Kfuse_fusion.Config.t -> Kfuse_ir.Pipeline.t -> t
(** Seed a builder (and a fresh planning session) from an existing
    pipeline. *)

(** {1 Edits}

    Each returns [Ok ()] and bumps {!generation} iff the edit was
    applied; on [Error] the builder is unchanged. *)

val add : t -> Kfuse_ir.Kernel.t -> (unit, Kfuse_util.Diag.t) result
(** Append a kernel (its output image is named after it). *)

val remove : t -> string -> (unit, Kfuse_util.Diag.t) result
(** Delete the kernel by name.  Rejected while consumed downstream. *)

val retarget :
  t -> kernel:string -> from_:string -> to_:string -> (unit, Kfuse_util.Diag.t) result
(** Rewrite every read of image [from_] inside [kernel] to read [to_]
    instead (the kernel's declared inputs follow).  Rejected if [kernel]
    does not read [from_], or the new read would dangle or close a
    cycle. *)

val set_param : t -> string -> float -> (unit, Kfuse_util.Diag.t) result
(** Add or update a scalar parameter default.  Always applies — and,
    deliberately, dirties {e nothing}: planning is independent of
    parameter values, so the next [flush] replays entirely from memo. *)

val add_input : t -> string -> (unit, Kfuse_util.Diag.t) result
(** Declare an external input image.  Rejected on a duplicate name. *)

(** {1 Inspection} *)

val name : t -> string
val width : t -> int
val height : t -> int
val channels : t -> int
val inputs : t -> string list
val params : t -> (string * float) list
val kernels : t -> Kfuse_ir.Kernel.t list
(** In insertion order (the built pipeline re-sorts topologically). *)

val images : t -> string list
(** Every readable image name: inputs, then kernel outputs, in
    declaration/insertion order. *)

val generation : t -> int
(** Count of applied edits — cheap "did anything change" signal. *)

val pipeline : t -> (Kfuse_ir.Pipeline.t, Kfuse_util.Diag.t) result
(** Build the current state (without planning). *)

val session : t -> Replan.t
(** The builder's planning session (for memo introspection). *)

(** {1 Flushing} *)

val flush : ?pool:Kfuse_util.Pool.t -> t -> (Replan.plan, Kfuse_util.Diag.t) result
(** Build the current state and plan it incrementally through the
    session — the lazy frontend's only planning entry point. *)

val flush_scratch :
  ?pool:Kfuse_util.Pool.t -> t -> (Replan.plan, Kfuse_util.Diag.t) result
(** Build the current state and plan it from scratch (fresh session,
    nothing reused) — the differential reference.  Does not touch this
    builder's session or memos. *)

val last : t -> Replan.plan option
(** The most recent successful {!flush} plan. *)
