lib/graph/digraph.mli: Format Kfuse_util
