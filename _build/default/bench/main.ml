(* Benchmark harness entry point.

   Usage: main.exe [experiment ...]
   Experiments: fig3 fig4 fig6 tab1 tab2 ablate micro
   With no argument, everything runs in paper order. *)

let experiments =
  [
    ("fig3", Exp_fig3.run);
    ("fig4", Exp_fig4.run);
    ("fig6", Exp_fig6.run);
    ("fig6-csv", Exp_fig6.run_csv);
    ("tab1", Exp_tables.tab1);
    ("tab2", Exp_tables.tab2);
    ("ablate", Exp_ablate.run);
    ("eventsim", Exp_eventsim.run);
    ("micro", Micro.run);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) -> args
    | _ ->
      (* Everything except the CSV variant, which exists for piping. *)
      List.filter (fun n -> n <> "fig6-csv") (List.map fst experiments)
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run -> run ()
      | None ->
        Printf.eprintf "unknown experiment %S; available: %s\n" name
          (String.concat " " (List.map fst experiments));
        exit 1)
    requested
