(* The domain pool and the determinism contract of every parallel code
   path: for any pool size, Benefit.all_edges, Mincut_fusion.run,
   Driver.run and Sim.measure must produce bit-identical results to the
   serial run. *)

module Pool = Kfuse_util.Pool
module F = Kfuse_fusion
module G = Kfuse_gpu
module Partition = Kfuse_graph.Partition
module Pipeline = Kfuse_ir.Pipeline

let config = F.Config.default

(* Pool sizes the qcheck properties sweep, per the issue: -j 1, 2, 8. *)
let sizes = [ 1; 2; 8 ]

let with_each_size f = List.iter (fun n -> Pool.with_pool n (f n)) sizes

(* ---- pool unit tests ---- *)

let test_map_matches_serial () =
  let input = Array.init 1000 (fun i -> i) in
  let f x = (x * x) - (3 * x) in
  let expected = Array.map f input in
  with_each_size (fun n pool ->
      Alcotest.(check (array int))
        (Printf.sprintf "map_array at size %d" n)
        expected (Pool.map_array pool f input);
      Alcotest.(check (list int))
        (Printf.sprintf "map_list at size %d" n)
        (Array.to_list expected)
        (Pool.map_list pool f (Array.to_list input)))

let test_init_and_run () =
  with_each_size (fun n pool ->
      Alcotest.(check (array int))
        (Printf.sprintf "init at size %d" n)
        (Array.init 257 (fun i -> 2 * i))
        (Pool.init pool 257 (fun i -> 2 * i));
      let hits = Array.make 100 0 in
      Pool.run pool ~chunk:7 ~n:100 (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool)
        (Printf.sprintf "each index ran once at size %d" n)
        true
        (Array.for_all (fun c -> c = 1) hits))

let test_empty_and_size () =
  Pool.with_pool 4 (fun pool ->
      Alcotest.(check int) "size" 4 (Pool.size pool);
      Alcotest.(check int) "serial size" 1 (Pool.size Pool.serial);
      Pool.run pool ~n:0 (fun _ -> Alcotest.fail "no task expected");
      Alcotest.(check (array int)) "empty map" [||] (Pool.map_array pool (fun x -> x) [||]))

exception Boom of int

let test_exception_propagates () =
  (* A failing task must re-raise in the submitter — lowest failing
     index, deterministically — and must not deadlock or poison the
     pool for later batches. *)
  with_each_size (fun n pool ->
      let saw =
        try
          Pool.run pool ~n:50 (fun i -> if i mod 10 = 3 then raise (Boom i));
          None
        with Boom i -> Some i
      in
      Alcotest.(check (option int))
        (Printf.sprintf "lowest failing index at size %d" n)
        (Some 3) saw;
      (* The pool still works after the failed batch. *)
      Alcotest.(check (array int))
        (Printf.sprintf "pool alive after exception at size %d" n)
        (Array.init 20 succ)
        (Pool.init pool 20 succ))

let test_nested_run_degrades () =
  (* A task that re-enters the pool must run its inner batch serially
     instead of deadlocking. *)
  Pool.with_pool 2 (fun pool ->
      let out = Array.make 4 0 in
      Pool.run pool ~n:4 (fun i ->
          Pool.run pool ~n:1 (fun _ -> out.(i) <- i + 1));
      Alcotest.(check (array int)) "nested result" [| 1; 2; 3; 4 |] out)

let test_shutdown_idempotent () =
  let pool = Pool.create 3 in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* Post-shutdown batches run serially. *)
  Alcotest.(check (array int)) "after shutdown" [| 0; 1; 2 |] (Pool.init pool 3 Fun.id);
  Pool.shutdown Pool.serial

let test_create_invalid () =
  Helpers.expect_invalid "zero size" (fun () -> Pool.create 0)

(* ---- determinism properties (qcheck, random pipelines) ---- *)

(* Same generator family as test_properties: chains of point kernels,
   shared reads, and 3x3 convolutions. *)
let pipeline_gen =
  QCheck.Gen.(
    let* n = int_range 2 6 in
    let* seeds = list_repeat n (pair (int_range 0 2) (int_range 0 100)) in
    let kernels = ref [] in
    let names = ref [ "in" ] in
    List.iteri
      (fun i (kind, pick) ->
        let open Kfuse_ir in
        let name = Printf.sprintf "k%d" i in
        let prev = List.nth !names (pick mod List.length !names) in
        let body =
          match kind with
          | 0 -> Expr.(input prev + (input "in" * Const 0.5))
          | 1 -> Expr.(input prev * input prev)
          | _ -> Expr.conv Kfuse_image.Mask.gaussian_3x3 prev
        in
        kernels := Kernel.map ~name ~inputs:(Expr.images body) body :: !kernels;
        names := name :: !names)
      seeds;
    return (List.rev !kernels))

let pipeline_of_kernels kernels =
  Pipeline.create ~name:"rand" ~width:13 ~height:11 ~inputs:[ "in" ] kernels

let pipeline_arb =
  QCheck.make pipeline_gen ~print:(fun ks ->
      Format.asprintf "%a" Pipeline.pp (pipeline_of_kernels ks))

let steps_to_string p steps =
  String.concat "\n"
    (List.map (fun s -> Format.asprintf "%a" (F.Mincut_fusion.pp_step p) s) steps)

let prop_parallel_benefit_identical =
  QCheck.Test.make ~count:100 ~name:"parallel Benefit.all_edges = serial" pipeline_arb
    (fun kernels ->
      let p = pipeline_of_kernels kernels in
      let reference = F.Benefit.all_edges config p in
      List.for_all
        (fun n -> Pool.with_pool n (fun pool -> F.Benefit.all_edges ~pool config p = reference))
        sizes)

let prop_parallel_mincut_identical =
  QCheck.Test.make ~count:100 ~name:"parallel Mincut_fusion.run = serial" pipeline_arb
    (fun kernels ->
      let p = pipeline_of_kernels kernels in
      let reference = F.Mincut_fusion.run config p in
      List.for_all
        (fun n ->
          Pool.with_pool n (fun pool ->
              let r = F.Mincut_fusion.run ~pool config p in
              Partition.equal r.F.Mincut_fusion.partition
                reference.F.Mincut_fusion.partition
              && r.F.Mincut_fusion.edges = reference.F.Mincut_fusion.edges
              && Float.equal r.F.Mincut_fusion.objective
                   reference.F.Mincut_fusion.objective
              && String.equal
                   (steps_to_string p r.F.Mincut_fusion.steps)
                   (steps_to_string p reference.F.Mincut_fusion.steps)))
        sizes)

let prop_parallel_driver_identical =
  QCheck.Test.make ~count:60 ~name:"parallel Driver.run report = serial" pipeline_arb
    (fun kernels ->
      let p = pipeline_of_kernels kernels in
      List.for_all
        (fun strategy ->
          let reference = F.Driver.run config strategy p in
          let render (r : F.Driver.report) = Format.asprintf "%a" F.Driver.pp_report r in
          List.for_all
            (fun n ->
              Pool.with_pool n (fun pool ->
                  let r = F.Driver.run ~pool config strategy p in
                  String.equal (render r) (render reference)
                  && Float.equal r.F.Driver.objective reference.F.Driver.objective))
            sizes)
        F.Driver.all_strategies)

let prop_parallel_sim_identical =
  QCheck.Test.make ~count:60 ~name:"parallel Sim.measure samples = serial"
    (QCheck.pair (QCheck.int_range 1 600) QCheck.small_int) (fun (runs, seed) ->
      let p =
        pipeline_of_kernels
          [
            Kfuse_ir.Kernel.map ~name:"k0" ~inputs:[ "in" ]
              Kfuse_ir.Expr.(input "in" * Const 2.0);
            Kfuse_ir.Kernel.map ~name:"k1" ~inputs:[ "k0" ]
              (Kfuse_ir.Expr.conv Kfuse_image.Mask.gaussian_3x3 "k0");
          ]
      in
      let reference =
        G.Sim.measure ~runs ~seed G.Device.gtx680 ~quality:G.Perf_model.Optimized
          ~fused_kernels:[] p
      in
      List.for_all
        (fun n ->
          Pool.with_pool n (fun pool ->
              let m =
                G.Sim.measure ~runs ~seed ~pool G.Device.gtx680
                  ~quality:G.Perf_model.Optimized ~fused_kernels:[] p
              in
              m.G.Sim.samples = reference.G.Sim.samples))
        sizes)

let suite =
  [
    Alcotest.test_case "map matches serial" `Quick test_map_matches_serial;
    Alcotest.test_case "init and chunked run" `Quick test_init_and_run;
    Alcotest.test_case "empty batch and sizes" `Quick test_empty_and_size;
    Alcotest.test_case "exception propagates, no deadlock" `Quick test_exception_propagates;
    Alcotest.test_case "nested run degrades to serial" `Quick test_nested_run_degrades;
    Alcotest.test_case "shutdown is idempotent" `Quick test_shutdown_idempotent;
    Alcotest.test_case "create rejects size 0" `Quick test_create_invalid;
  ]
  @ List.map
      (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20260806 |]))
      [
        prop_parallel_benefit_identical;
        prop_parallel_mincut_identical;
        prop_parallel_driver_identical;
        prop_parallel_sim_identical;
      ]
