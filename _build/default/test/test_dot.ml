(* Tests for the Graphviz DOT renderer. *)

module F = Kfuse_fusion

let contains needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec loop i = i + nl <= hl && (String.sub haystack i nl = needle || loop (i + 1)) in
  loop 0

let test_plain_dag () =
  let p = Kfuse_apps.Sobel.pipeline ~width:32 ~height:32 () in
  let dot = Kfuse_codegen.Dot.emit p in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "has %S" needle) true (contains needle dot))
    [
      "digraph sobel";
      "label=\"dx\\nlocal(r=1)\"";
      "label=\"mag\\npoint\"";
      "shape=box";
      "shape=ellipse";
      "input_in";
      "k0 -> k2";
      "k1 -> k2";
    ]

let test_partition_clusters () =
  let p = Kfuse_apps.Harris.pipeline () in
  let r = F.Mincut_fusion.run F.Config.default p in
  let dot = Kfuse_codegen.Dot.emit ~partition:r.F.Mincut_fusion.partition p in
  (* Three fused pairs -> three clusters. *)
  Alcotest.(check bool) "cluster 0" true (contains "subgraph cluster_" dot);
  let count_clusters =
    let rec loop i n =
      if i + 17 > String.length dot then n
      else if String.sub dot i 17 = "subgraph cluster_" then loop (i + 17) (n + 1)
      else loop (i + 1) n
    in
    loop 0 0
  in
  Alcotest.(check int) "three clusters" 3 count_clusters

let test_edge_labels () =
  let p = Kfuse_apps.Harris.pipeline () in
  let config = F.Config.default in
  let labels u v =
    Some (Printf.sprintf "%.0f" (F.Benefit.edge_weight config p u v))
  in
  let dot = Kfuse_codegen.Dot.emit ~edge_labels:labels p in
  Alcotest.(check bool) "weight 328 label" true (contains "label=\"328\"" dot);
  Alcotest.(check bool) "weight 256 label" true (contains "label=\"256\"" dot)

let test_global_kernel_shape () =
  let p =
    Kfuse_ir.Pipeline.create ~name:"r" ~width:8 ~height:8 ~inputs:[ "in" ]
      [
        Kfuse_ir.Kernel.reduce ~name:"total" ~inputs:[ "in" ] ~init:0.0
          ~combine:Kfuse_ir.Expr.Add (Kfuse_ir.Expr.input "in");
      ]
  in
  Alcotest.(check bool) "hexagon" true (contains "shape=hexagon" (Kfuse_codegen.Dot.emit p))

let suite =
  [
    Alcotest.test_case "plain DAG" `Quick test_plain_dag;
    Alcotest.test_case "partition clusters" `Quick test_partition_clusters;
    Alcotest.test_case "edge labels" `Quick test_edge_labels;
    Alcotest.test_case "global kernel shape" `Quick test_global_kernel_shape;
  ]
