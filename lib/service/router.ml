module Diag = Kfuse_util.Diag
module Deadline = Kfuse_util.Deadline
module Faults = Kfuse_util.Faults
module Plan_cache = Kfuse_cache.Plan_cache
module Fingerprint = Kfuse_cache.Fingerprint
module Ir = Kfuse_ir
module F = Kfuse_fusion

(* Single-flight bookkeeping: concurrent identical fuse requests (same
   plan key) become one upstream computation.  Waiters hold the entry
   directly, so the leader can drop it from the table before
   broadcasting — a request arriving after that starts a fresh flight,
   which is exactly right: the cold computation it would have shared is
   already in the shard's plan cache. *)
type sf_entry = { mutable sf_reply : Jsonx.t option }

type t = {
  socket_path : string;
  listen_fd : Unix.file_descr;
  shards : Shard.t array;
  shard_cfg : Shard.config;
  health_interval_ms : float;
  health_timeout_ms : float;
  forward_timeout_ms : float;
  request_timeout_ms : float;
  drain_timeout_ms : float;
  shard_grace_ms : float;
  metrics : Metrics.t;
  started_at : float;
  stopping : bool Atomic.t;
  stop_requested : bool Atomic.t;
  mutable accept_thread : Thread.t option;
  mutable monitor_thread : Thread.t option;
  mutable workers : Thread.t array;
  max_conns : int;
  queue_bound : int;
  (* Admission, mirroring {!Server}: accepted connections wait in
     [queue] until one of [max_conns] workers picks them up; beyond
     [queue_bound] they are shed with KF0803. *)
  q_lock : Mutex.t;
  q_cond : Condition.t;
  queue : Unix.file_descr Queue.t;
  mutable busy : int;
  active : Unix.file_descr option array;
  sf_lock : Mutex.t;
  sf_cond : Condition.t;
  sf_inflight : (string, sf_entry) Hashtbl.t;
}

let socket t = t.socket_path
let metrics t = t.metrics
let shards t = t.shards

let in_flight t =
  Mutex.lock t.q_lock;
  let n = t.busy + Queue.length t.queue in
  Mutex.unlock t.q_lock;
  n

(* The router holds no plan cache of its own — plans live in the
   shards.  [Metrics.render] wants cache stats; give it honest zeros. *)
let no_cache_stats =
  {
    Plan_cache.hits = 0;
    misses = 0;
    iso_misses = 0;
    evictions = 0;
    entries = 0;
    capacity = 0;
    disk_hits = 0;
    disk_misses = 0;
    disk_errors = 0;
    stores = 0;
  }

(* ---- keyspace ---- *)

(* Home shard of a pipeline: the leading 32 bits of the rename-invariant
   structural fingerprint, mod the fleet size.  Using the structural
   hash (the same string that names the disk-cache slot) means renamed
   copies of one pipeline land on one shard — maximal L1 plan-cache
   locality per shard, while the shared disk tier backstops reroutes. *)
let home_index t structural =
  let n = Array.length t.shards in
  let h =
    match
      if String.length structural >= 8 then
        int_of_string_opt ("0x" ^ String.sub structural 0 8)
      else None
    with
    | Some v -> v
    | None -> Hashtbl.hash structural
  in
  abs h mod n

(* ---- forwarding ---- *)

let is_ok resp = match Jsonx.mem_str "status" resp with Some "ok" -> true | _ -> false

(* Append a KF0807 degraded-locality warning to a rerouted reply: the
   answer is correct (shards are stateless replicas over a shared disk
   cache), but it was computed away from its home shard. *)
let annotate_reroute ~home ~served reply =
  match reply with
  | Jsonx.Obj fields when is_ok reply ->
    let w =
      Diag.warningf Diag.Shard_degraded
        "served by shard %d: home shard %d is down or restarting (cache locality degraded)"
        served home
    in
    Jsonx.Obj
      (fields
      @ [
          ( "router",
            Jsonx.Obj
              [
                ("rerouted", Jsonx.Bool true);
                ("shard", Jsonx.Num (float_of_int served));
                ("home", Jsonx.Num (float_of_int home));
                ("warning", Jsonx.Str (Diag.to_string w));
              ] );
        ])
  | v -> v

let unavailable t ~home =
  Metrics.incr t.metrics "requests_unroutable";
  Protocol.error
    (Diag.errorf Diag.Shard_unavailable
       "no live shard for this request (home shard %d): all %d shards are down or restarting; retry with backoff"
       home (Array.length t.shards))

(* Forward to the home shard, failing over to the next routable one on
   a connection transient (the restart signature: refused/reset connect,
   vanished peer without a typed verdict).  A typed shard reply — ok or
   error — ends the scan: it is the shard's own verdict and is relayed. *)
let forward_routed t ~structural req =
  let n = Array.length t.shards in
  let home = home_index t structural in
  let rec go i =
    if i >= n then unavailable t ~home
    else
      let idx = (home + i) mod n in
      if not (Shard.routable t.shards.(idx)) then go (i + 1)
      else
        let socket = Shard.socket t.shards.(idx) in
        match Client.call_once ~socket ~timeout_ms:t.forward_timeout_ms req with
        | Ok reply, _ ->
          Metrics.incr t.metrics "requests_routed";
          if idx <> home then begin
            Metrics.incr t.metrics "requests_rerouted";
            annotate_reroute ~home ~served:idx reply
          end
          else reply
        | Error _, true -> go (i + 1)
        | Error d, false ->
          Metrics.incr t.metrics "requests_routed";
          Protocol.error d
  in
  go 0

(* ---- single flight ---- *)

let single_flight t key compute =
  Mutex.lock t.sf_lock;
  match Hashtbl.find_opt t.sf_inflight key with
  | Some e ->
    (* Follower: block until the leader publishes, then share its
       reply verbatim — N identical cold requests, one computation. *)
    let rec wait () =
      match e.sf_reply with
      | Some r -> r
      | None ->
        Condition.wait t.sf_cond t.sf_lock;
        wait ()
    in
    let r = wait () in
    Mutex.unlock t.sf_lock;
    Metrics.incr t.metrics "requests_coalesced";
    r
  | None ->
    let e = { sf_reply = None } in
    Hashtbl.replace t.sf_inflight key e;
    Mutex.unlock t.sf_lock;
    let r =
      match compute () with
      | r -> r
      | exception exn ->
        (* Never leave followers parked on a dead flight. *)
        Mutex.lock t.sf_lock;
        e.sf_reply <- Some (Protocol.error (Diag.of_exn exn));
        Hashtbl.remove t.sf_inflight key;
        Condition.broadcast t.sf_cond;
        Mutex.unlock t.sf_lock;
        raise exn
    in
    Mutex.lock t.sf_lock;
    e.sf_reply <- Some r;
    Hashtbl.remove t.sf_inflight key;
    Condition.broadcast t.sf_cond;
    Mutex.unlock t.sf_lock;
    r

(* ---- per-op handling ---- *)

let config_of (f : Protocol.fuse_request) =
  let default = F.Config.default in
  {
    default with
    F.Config.c_mshared = Option.value ~default:default.F.Config.c_mshared f.Protocol.c_mshared;
    gamma = Option.value ~default:default.F.Config.gamma f.Protocol.gamma;
    tg = Option.value ~default:default.F.Config.tg f.Protocol.tg;
  }

let pipeline_of (f : Protocol.fuse_request) =
  Result.bind (Server.load_pipeline f) Ir.Validate.result

let handle_fuse t req (f : Protocol.fuse_request) =
  match pipeline_of f with
  | Error d -> Protocol.error d
  | Ok p ->
    let structural = Fingerprint.structural p in
    if f.Protocol.no_cache then forward_routed t ~structural req
    else begin
      (* The coalescing key is the full plan key (structural + exact +
         config + strategy + flags) plus the knobs the cache key
         deliberately excludes but which shape {e this} reply: strict
         mode and the search budget. *)
      let key =
        Fingerprint.plan_key ~config:(config_of f) ~strategy:f.Protocol.strategy
          ~optimize:f.Protocol.optimize ~inline:f.Protocol.inline p
      in
      let sf_key =
        Printf.sprintf "%s/%s/%b/%s" key.Fingerprint.structural key.Fingerprint.exact
          f.Protocol.strict
          (match f.Protocol.budget_ms with
          | None -> "-"
          | Some b -> string_of_float b)
      in
      single_flight t sf_key (fun () -> forward_routed t ~structural req)
    end

let handle_by_fingerprint t req (f : Protocol.fuse_request) =
  match pipeline_of f with
  | Error d -> Protocol.error d
  | Ok p -> forward_routed t ~structural:(Fingerprint.structural p) req

(* Stream ids cross the router prefixed with their shard: the server's
   ["st-3"] becomes ["s1-st-3"].  Pushes and closes are pinned — a
   stream's temporal state lives in exactly one shard process, so there
   is no failover: if that shard is gone, so is the session. *)
let prefix_stream_id ~shard id = Printf.sprintf "s%d-%s" shard id

let parse_stream_id t id =
  match String.index_opt id '-' with
  | Some j when j > 1 && id.[0] = 's' -> (
    match int_of_string_opt (String.sub id 1 (j - 1)) with
    | Some i when i >= 0 && i < Array.length t.shards ->
      Some (i, String.sub id (j + 1) (String.length id - j - 1))
    | _ -> None)
  | _ -> None

let rewrite_reply_id ~shard reply =
  match reply with
  | Jsonx.Obj fields ->
    Jsonx.Obj
      (List.map
         (function
           | "id", Jsonx.Str id -> ("id", Jsonx.Str (prefix_stream_id ~shard id))
           | kv -> kv)
         fields)
  | v -> v

let handle_stream_open t req (o : Protocol.stream_open_request) =
  match pipeline_of o.Protocol.fuse with
  | Error d -> Protocol.error d
  | Ok p ->
    let structural = Fingerprint.structural p in
    let n = Array.length t.shards in
    let home = home_index t structural in
    let rec go i =
      if i >= n then unavailable t ~home
      else
        let idx = (home + i) mod n in
        if not (Shard.routable t.shards.(idx)) then go (i + 1)
        else
          let socket = Shard.socket t.shards.(idx) in
          match Client.call_once ~socket ~timeout_ms:t.forward_timeout_ms req with
          | Ok reply, _ ->
            Metrics.incr t.metrics "requests_routed";
            let reply = rewrite_reply_id ~shard:idx reply in
            if idx <> home then begin
              Metrics.incr t.metrics "requests_rerouted";
              annotate_reroute ~home ~served:idx reply
            end
            else reply
          | Error _, true -> go (i + 1)
          | Error d, false ->
            Metrics.incr t.metrics "requests_routed";
            Protocol.error d
    in
    go 0

let handle_stream_op ?(kind = "stream") t ~id ~rebuild =
  match parse_stream_id t id with
  | None ->
    Protocol.error
      (Diag.errorf Diag.Stream_unknown "unknown %s id %S (not issued by this router)" kind
         id)
  | Some (idx, orig) ->
    let s = t.shards.(idx) in
    if not (Shard.routable s) then
      Protocol.error
        (Diag.errorf Diag.Shard_unavailable
           "%s %S lives on shard %d, which is down or restarting; reopen the %s" kind id
           idx kind)
    else (
      match
        Client.call_once ~socket:(Shard.socket s) ~timeout_ms:t.forward_timeout_ms
          (rebuild orig)
      with
      | Ok reply, _ ->
        Metrics.incr t.metrics "requests_routed";
        rewrite_reply_id ~shard:idx reply
      | Error _, true ->
        (* The shard died mid-request, taking the session's state with
           it: no retry can resurrect it. *)
        Protocol.error
          (Diag.errorf Diag.Shard_unavailable
             "%s %S: lost the connection to shard %d (it crashed or is restarting); reopen the %s"
             kind id idx kind)
      | Error d, false ->
        Metrics.incr t.metrics "requests_routed";
        Protocol.error d)

(* A lazy session, like a stream, lives in exactly one shard process —
   but an empty builder has no pipeline to fingerprint, so placement
   uses a cheap request-shaped affinity key (the shard re-validates the
   seed anyway). *)
let lazy_affinity (o : Protocol.lazy_open_request) =
  match (o.Protocol.app, o.Protocol.source) with
  | Some a, _ -> "lazy-app:" ^ a
  | None, Some s -> "lazy-src:" ^ Digest.to_hex (Digest.string s)
  | None, None ->
    Printf.sprintf "lazy-new:%dx%dx%d:%s"
      (Option.value ~default:0 o.Protocol.width)
      (Option.value ~default:0 o.Protocol.height)
      (Option.value ~default:1 o.Protocol.channels)
      (String.concat "," o.Protocol.inputs)

let shard_json i s =
  Jsonx.Obj
    [
      ("index", Jsonx.Num (float_of_int i));
      ("socket", Jsonx.Str (Shard.socket s));
      ("state", Jsonx.Str (Shard.state_string s));
      ("pid", match Shard.pid s with Some p -> Jsonx.Num (float_of_int p) | None -> Jsonx.Null);
      ("restarts", Jsonx.Num (float_of_int (Shard.restarts s)));
      ( "consecutive_failures",
        Jsonx.Num (float_of_int (Shard.consecutive_failures s)) );
      ( "last_exit",
        match Shard.last_exit s with Some e -> Jsonx.Str e | None -> Jsonx.Null );
    ]

let stats_json t =
  let c name = Jsonx.Num (float_of_int (Metrics.counter t.metrics name)) in
  Protocol.ok
    [
      ("role", Jsonx.Str "router");
      ("socket", Jsonx.Str t.socket_path);
      ("uptime_s", Jsonx.Num (Unix.gettimeofday () -. t.started_at));
      ("shards", Jsonx.Arr (Array.to_list (Array.mapi shard_json t.shards)));
      ("requests_routed", c "requests_routed");
      ("requests_rerouted", c "requests_rerouted");
      ("requests_coalesced", c "requests_coalesced");
      ("requests_unroutable", c "requests_unroutable");
      ("shard_restarts", c "shard_restarts");
    ]

(* [dispatch] never raises: a failing handler becomes an error response,
   keeping the connection and the router alive. *)
let dispatch t v =
  match Protocol.request_of_json v with
  | Error d -> ("invalid", Protocol.error d, false)
  | Ok req -> (
    let op =
      match req with
      | Protocol.Fuse _ -> "fuse"
      | Protocol.Fuse_exec _ -> "fuse_exec"
      | Protocol.Stream_open _ -> "stream_open"
      | Protocol.Stream_push _ -> "stream_push"
      | Protocol.Stream_close _ -> "stream_close"
      | Protocol.Lazy_open _ -> "lazy_open"
      | Protocol.Lazy_edit _ -> "lazy_edit"
      | Protocol.Lazy_flush _ -> "lazy_flush"
      | Protocol.Lazy_close _ -> "lazy_close"
      | Protocol.Stats -> "stats"
      | Protocol.Metrics -> "metrics"
      | Protocol.Ping -> "ping"
      | Protocol.Shutdown -> "shutdown"
    in
    let guarded f =
      match f () with
      | resp -> (op, resp, false)
      | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
      | exception exn -> (op, Protocol.error (Diag.of_exn exn), false)
    in
    match req with
    | Protocol.Ping -> (op, Protocol.ok [ ("pong", Jsonx.Bool true) ], false)
    | Protocol.Shutdown -> (op, Protocol.ok [ ("stopping", Jsonx.Bool true) ], true)
    | Protocol.Stats -> (op, stats_json t, false)
    | Protocol.Metrics ->
      let text =
        Metrics.render t.metrics ~cache:no_cache_stats
          ~uptime_s:(Unix.gettimeofday () -. t.started_at)
      in
      (op, Protocol.ok [ ("text", Jsonx.Str text) ], false)
    | Protocol.Fuse f -> guarded (fun () -> handle_fuse t req f)
    | Protocol.Fuse_exec e -> guarded (fun () -> handle_by_fingerprint t req e.Protocol.fuse)
    | Protocol.Stream_open o -> guarded (fun () -> handle_stream_open t req o)
    | Protocol.Stream_push s ->
      guarded (fun () ->
          handle_stream_op t ~id:s.Protocol.id ~rebuild:(fun orig ->
              Protocol.Stream_push { s with Protocol.id = orig }))
    | Protocol.Stream_close id ->
      guarded (fun () ->
          handle_stream_op t ~id ~rebuild:(fun orig -> Protocol.Stream_close orig))
    | Protocol.Lazy_open o ->
      guarded (fun () -> forward_routed t ~structural:(lazy_affinity o) req)
    | Protocol.Lazy_edit e ->
      guarded (fun () ->
          handle_stream_op ~kind:"lazy session" t ~id:e.Protocol.id ~rebuild:(fun orig ->
              Protocol.Lazy_edit { e with Protocol.id = orig }))
    | Protocol.Lazy_flush f ->
      guarded (fun () ->
          handle_stream_op ~kind:"lazy session" t ~id:f.Protocol.id ~rebuild:(fun orig ->
              Protocol.Lazy_flush { f with Protocol.id = orig }))
    | Protocol.Lazy_close id ->
      guarded (fun () ->
          handle_stream_op ~kind:"lazy session" t ~id ~rebuild:(fun orig ->
              Protocol.Lazy_close orig)))

(* ---- connection handling (mirrors Server) ---- *)

let initiate_stop t =
  if not (Atomic.exchange t.stopping true) then begin
    Mutex.lock t.q_lock;
    Condition.broadcast t.q_cond;
    Mutex.unlock t.q_lock;
    (* Poke the accept loop: closing a listener from another thread does
       not interrupt a blocked accept(2) on Linux. *)
    match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error _ -> ()
    | fd ->
      (try Unix.connect fd (Unix.ADDR_UNIX t.socket_path) with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())
  end

let signal_stop t = Atomic.set t.stop_requested true

let request_deadline t =
  if t.request_timeout_ms > 0.0 then Deadline.after_ms t.request_timeout_ms
  else Deadline.none

let send_reply t fd ~deadline resp =
  match Faults.hit "proto.drop_reply" with
  | exception Faults.Fault _ -> false
  | () -> (
    (match Faults.hit "proto.slow_write" with
    | () -> ()
    | exception Faults.Fault _ -> Thread.delay 0.05);
    match Faults.hit "proto.torn_frame" with
    | exception Faults.Fault _ ->
      (try Protocol.send_torn fd resp with _ -> ());
      false
    | () -> (
      match Protocol.send ~deadline fd resp with
      | () -> true
      | exception Deadline.Expired _ ->
        Metrics.incr t.metrics "requests_timed_out";
        false
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Metrics.incr t.metrics "requests_timed_out";
        false
      | exception Diag.Fatal d -> (
        match Protocol.send ~deadline fd (Protocol.error d) with
        | () -> true
        | exception _ -> false)
      | exception _ -> false))

let handle_conn t fd =
  let rec loop () =
    match Protocol.recv fd with
    | Ok None -> ()
    | Error d when d.Diag.code = Diag.Request_timeout ->
      Metrics.incr t.metrics "requests_timed_out";
      (try Protocol.send fd (Protocol.error d) with _ -> ())
    | Error d ->
      Metrics.incr t.metrics "protocol_errors";
      (try Protocol.send fd (Protocol.error d) with _ -> ())
    | Ok (Some v) ->
      let deadline = request_deadline t in
      let t0 = Unix.gettimeofday () in
      let op, resp, stop = dispatch t v in
      Metrics.observe t.metrics ~op ~ok:(is_ok resp) ((Unix.gettimeofday () -. t0) *. 1000.);
      let keep = send_reply t fd ~deadline resp in
      if stop then initiate_stop t
      else if keep && not (Atomic.get t.stopping) then loop ()
  in
  loop ()

let set_conn_timeouts t fd =
  if t.request_timeout_ms > 0.0 then begin
    let s = t.request_timeout_ms /. 1000.0 in
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO s with
    | Unix.Unix_error _ | Invalid_argument _ -> ());
    try Unix.setsockopt_float fd Unix.SO_SNDTIMEO s with
    | Unix.Unix_error _ | Invalid_argument _ -> ()
  end

let shed t fd ~busy ~queued =
  Metrics.incr t.metrics "requests_shed";
  let d =
    Diag.errorf Diag.Overloaded
      "router overloaded (%d connections in flight, %d queued of %d): retry with backoff"
      busy queued t.queue_bound
  in
  (try Protocol.send fd (Protocol.error d) with _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let admit t fd =
  let forced =
    match Faults.hit "service.shed" with
    | () -> false
    | exception Faults.Fault _ -> true
  in
  Mutex.lock t.q_lock;
  let busy = t.busy and queued = Queue.length t.queue in
  if (not forced) && (busy < t.max_conns || queued < t.queue_bound) then begin
    Queue.push fd t.queue;
    Condition.signal t.q_cond;
    Mutex.unlock t.q_lock
  end
  else begin
    Mutex.unlock t.q_lock;
    shed t fd ~busy ~queued
  end

let rec worker_loop t slot =
  Mutex.lock t.q_lock;
  while Queue.is_empty t.queue && not (Atomic.get t.stopping) do
    Condition.wait t.q_cond t.q_lock
  done;
  match Queue.take_opt t.queue with
  | None -> Mutex.unlock t.q_lock
  | Some fd ->
    t.busy <- t.busy + 1;
    t.active.(slot) <- Some fd;
    Mutex.unlock t.q_lock;
    Metrics.incr_gauge t.metrics "connections_active";
    (match handle_conn t fd with
    | () -> ()
    | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
    | exception _ -> ());
    Metrics.decr_gauge t.metrics "connections_active";
    Mutex.lock t.q_lock;
    t.busy <- t.busy - 1;
    t.active.(slot) <- None;
    Mutex.unlock t.q_lock;
    (try Unix.close fd with Unix.Unix_error _ -> ());
    worker_loop t slot

let accept_loop t =
  let rec loop () =
    if Atomic.get t.stopping then ()
    else begin
      match Unix.accept ~cloexec:true t.listen_fd with
      | fd, _ when Atomic.get t.stopping -> (
        try Unix.close fd with Unix.Unix_error _ -> ())
      | fd, _ -> (
        match Faults.hit "service.accept" with
        | () ->
          Metrics.incr t.metrics "connections_accepted";
          set_conn_timeouts t fd;
          admit t fd;
          loop ()
        | exception Faults.Fault _ ->
          Metrics.incr t.metrics "connections_dropped";
          (try Unix.close fd with Unix.Unix_error _ -> ());
          loop ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ when Atomic.get t.stopping -> ()
    end
  in
  loop ();
  try Unix.close t.listen_fd with Unix.Unix_error _ -> ()

(* ---- fleet monitor ---- *)

let set_gauge t name target =
  Metrics.adjust_gauge t.metrics name (target - Metrics.gauge t.metrics name)

let fold_events t events =
  List.iter
    (function
      | Shard.Respawned -> Metrics.incr t.metrics "shard_restarts"
      | Shard.Exited _ -> Metrics.incr t.metrics "shard_exits"
      | Shard.Killed_hung -> Metrics.incr t.metrics "shard_hung_kills"
      | Shard.Marked_dead -> Metrics.incr t.metrics "shard_deaths")
    events

let refresh_gauges t =
  let up = ref 0 and dead = ref 0 in
  Array.iter
    (fun s ->
      match Shard.state s with
      | Shard.Up -> incr up
      | Shard.Dead _ -> incr dead
      | Shard.Starting | Shard.Backoff _ -> ())
    t.shards;
  set_gauge t "shards_up" !up;
  set_gauge t "shards_dead" !dead

let monitor_loop t =
  let ping socket = Health.alive ~socket ~timeout_ms:t.health_timeout_ms in
  while not (Atomic.get t.stopping) do
    let now = Unix.gettimeofday () in
    Array.iter
      (fun s -> fold_events t (Shard.tick t.shard_cfg s ~now ~ping ()))
      t.shards;
    refresh_gauges t;
    (* Sleep in small slices so shutdown stays responsive even with a
       long health interval. *)
    let until = now +. (t.health_interval_ms /. 1000.) in
    while (not (Atomic.get t.stopping)) && Unix.gettimeofday () < until do
      Thread.delay 0.01
    done
  done

(* ---- lifecycle ---- *)

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error ((Unix.EEXIST | Unix.EPERM), _, _) -> ()
  end

let start ~socket:path ~dir ~count ~shard_argv ?(shard_config = Shard.default_config)
    ?(health_interval_ms = 250.) ?(health_timeout_ms = 1_000.) ?forward_timeout_ms
    ?(max_conns = 16) ?(queue = 64) ?(request_timeout_ms = 30_000.)
    ?(drain_timeout_ms = 5_000.) ?(shard_grace_ms = 2_000.) () =
  if count < 1 then
    Error (Diag.errorf Diag.Config_invalid "shards must be >= 1 (got %d)" count)
  else if max_conns < 1 then
    Error (Diag.errorf Diag.Config_invalid "max_conns must be >= 1 (got %d)" max_conns)
  else if queue < 0 then
    Error (Diag.errorf Diag.Config_invalid "queue must be >= 0 (got %d)" queue)
  else begin
    mkdir_p dir;
    match
      Result.bind (Server.claim_socket path) (fun () -> Shard.sweep_sockets ~dir ~count)
    with
    | Error _ as e -> e
    | Ok () -> (
      match
        let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try
           Unix.bind fd (Unix.ADDR_UNIX path);
           Unix.listen fd 64
         with e ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           raise e);
        fd
      with
      | exception Unix.Unix_error (e, _, _) ->
        Error (Diag.errorf ~file:path Diag.Io_error "cannot listen: %s" (Unix.error_message e))
      | listen_fd ->
        let metrics = Metrics.create () in
        List.iter (Metrics.touch metrics)
          [
            "connections_accepted"; "connections_dropped"; "requests_shed";
            "requests_timed_out"; "protocol_errors"; "requests_routed";
            "requests_rerouted"; "requests_coalesced"; "requests_unroutable";
            "shard_restarts"; "shard_exits"; "shard_hung_kills"; "shard_deaths";
          ];
        Metrics.adjust_gauge metrics "connections_active" 0;
        Metrics.adjust_gauge metrics "shards_up" 0;
        Metrics.adjust_gauge metrics "shards_dead" 0;
        let shards =
          Array.init count (fun i ->
              Shard.create ~index:i ~socket:(Shard.socket_path ~dir i)
                ~log:(Shard.log_path ~dir i)
                ~argv:(shard_argv ~index:i ~socket:(Shard.socket_path ~dir i)))
        in
        let t =
          {
            socket_path = path;
            listen_fd;
            shards;
            shard_cfg = shard_config;
            health_interval_ms;
            health_timeout_ms;
            forward_timeout_ms =
              Option.value ~default:request_timeout_ms forward_timeout_ms;
            request_timeout_ms;
            drain_timeout_ms;
            shard_grace_ms;
            metrics;
            started_at = Unix.gettimeofday ();
            stopping = Atomic.make false;
            stop_requested = Atomic.make false;
            accept_thread = None;
            monitor_thread = None;
            workers = [||];
            max_conns;
            queue_bound = queue;
            q_lock = Mutex.create ();
            q_cond = Condition.create ();
            queue = Queue.create ();
            busy = 0;
            active = Array.make max_conns None;
            sf_lock = Mutex.create ();
            sf_cond = Condition.create ();
            sf_inflight = Hashtbl.create 16;
          }
        in
        (* First spawns, before the monitor exists: no pings yet, so a
           shard is [Starting] until the first monitor tick hears it. *)
        let now = Unix.gettimeofday () in
        Array.iter (fun s -> fold_events t (Shard.tick t.shard_cfg s ~now ())) t.shards;
        t.workers <- Array.init max_conns (fun slot -> Thread.create (worker_loop t) slot);
        t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
        t.monitor_thread <- Some (Thread.create (fun () -> monitor_loop t) ());
        Ok t)
  end

let await_ready ?(timeout_ms = 10_000.) t =
  let deadline = Unix.gettimeofday () +. (timeout_ms /. 1000.) in
  let all_up () =
    Array.for_all (fun s -> match Shard.state s with Shard.Up -> true | _ -> false) t.shards
  in
  let rec go () =
    if all_up () then true
    else if Unix.gettimeofday () >= deadline || Atomic.get t.stopping then all_up ()
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

let wait t =
  while not (Atomic.get t.stopping || Atomic.get t.stop_requested) do
    Thread.delay 0.02
  done;
  initiate_stop t;
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  (* Drain router workers first: in-flight requests finish against
     still-running shards, so the drain order is router edge → router
     workers → shard fleet. *)
  let deadline = Deadline.after_ms t.drain_timeout_ms in
  let forced = ref false in
  let rec drain () =
    Mutex.lock t.q_lock;
    let pending = t.busy + Queue.length t.queue in
    if pending > 0 && (not !forced) && Deadline.expired deadline then begin
      forced := true;
      Array.iter
        (function
          | Some fd -> (
            try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
          | None -> ())
        t.active;
      Queue.iter
        (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
        t.queue
    end;
    Mutex.unlock t.q_lock;
    if pending > 0 then begin
      Thread.delay 0.005;
      drain ()
    end
  in
  drain ();
  Array.iter Thread.join t.workers;
  (* The monitor must stop before the fleet is terminated, or it would
     dutifully respawn every shard we kill. *)
  (match t.monitor_thread with Some th -> Thread.join th | None -> ());
  (* Graceful fleet drain, in parallel: SIGTERM (each shard drains its
     own in-flight work), escalate to SIGKILL past the grace period. *)
  let stoppers =
    Array.map
      (fun s -> Thread.create (fun () -> Shard.stop ~grace_ms:t.shard_grace_ms s) ())
      t.shards
  in
  Array.iter Thread.join stoppers;
  (try Unix.unlink t.socket_path with Unix.Unix_error _ -> ());
  (* A SIGKILLed shard leaves its socket file behind; sweep so the next
     fleet starts clean even after a forced drain. *)
  Array.iter
    (fun s -> try Unix.unlink (Shard.socket s) with Unix.Unix_error _ -> ())
    t.shards

let stop t =
  initiate_stop t;
  wait t
