lib/ir/expr.mli: Format Kfuse_image
