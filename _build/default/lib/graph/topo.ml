module Iset = Kfuse_util.Iset
module Imap = Kfuse_util.Imap

exception Cycle of int list

(* Kahn's algorithm with a sorted ready set for determinism.  If vertices
   remain when the ready set drains, a cycle exists; we then extract one
   cycle by walking predecessors inside the residual graph. *)
let sort g =
  let indeg =
    Digraph.fold_vertices (fun v acc -> Imap.add v (Digraph.in_degree g v) acc) g Imap.empty
  in
  let ready =
    Imap.fold (fun v d acc -> if d = 0 then Iset.add v acc else acc) indeg Iset.empty
  in
  let rec loop ready indeg acc n =
    match Iset.min_elt_opt ready with
    | Some v ->
      let ready = Iset.remove v ready in
      let ready, indeg =
        Iset.fold
          (fun w (ready, indeg) ->
            let d = Imap.find w indeg - 1 in
            let indeg = Imap.add w d indeg in
            if d = 0 then (Iset.add w ready, indeg) else (ready, indeg))
          (Digraph.succs g v) (ready, indeg)
      in
      loop ready indeg (v :: acc) (n + 1)
    | None ->
      if n = Digraph.num_vertices g then List.rev acc
      else begin
        (* Residual vertices all lie on or lead into a cycle: walk
           predecessors within the residual set until a vertex repeats. *)
        let residual =
          Imap.fold (fun v d acc -> if d > 0 then Iset.add v acc else acc) indeg Iset.empty
        in
        let start = Iset.min_elt residual in
        (* Walk predecessors until a vertex repeats; [path] is
           most-recent-first, so when the head [v0] repeats, the cycle is
           [v0] plus the prefix of the tail up to the next [v0]. *)
        let rec walk v seen path =
          if Iset.mem v seen then begin
            match path with
            | v0 :: rest ->
              let rec prefix = function
                | [] -> []
                | w :: tl -> if w = v0 then [] else w :: prefix tl
              in
              List.rev (v0 :: prefix rest)
            | [] -> assert false
          end
          else
            let p = Iset.min_elt (Iset.inter (Digraph.preds g v) residual) in
            walk p (Iset.add v seen) (p :: path)
        in
        raise (Cycle (walk start Iset.empty [ start ]))
      end
  in
  loop ready indeg [] 0

let is_dag g = match sort g with _ -> true | exception Cycle _ -> false

let closure next g v =
  let rec loop frontier seen =
    match frontier with
    | [] -> seen
    | u :: rest ->
      let fresh = Iset.diff (next g u) seen in
      loop (Iset.elements fresh @ rest) (Iset.union fresh seen)
  in
  loop [ v ] (Iset.singleton v)

let reachable g v = closure Digraph.succs g v
let co_reachable g v = closure Digraph.preds g v
let has_path g u v = Iset.mem v (reachable g u)

let sources g =
  Digraph.fold_vertices
    (fun v acc -> if Digraph.in_degree g v = 0 then Iset.add v acc else acc)
    g Iset.empty

let sinks g =
  Digraph.fold_vertices
    (fun v acc -> if Digraph.out_degree g v = 0 then Iset.add v acc else acc)
    g Iset.empty

let neighbors g v = Iset.union (Digraph.succs g v) (Digraph.preds g v)

let undirected_components g =
  let rec component frontier seen =
    match frontier with
    | [] -> seen
    | u :: rest ->
      let fresh = Iset.diff (neighbors g u) seen in
      component (Iset.elements fresh @ rest) (Iset.union fresh seen)
  in
  let rec loop remaining acc =
    match Iset.min_elt_opt remaining with
    | None -> List.rev acc
    | Some v ->
      let comp = component [ v ] (Iset.singleton v) in
      loop (Iset.diff remaining comp) (comp :: acc)
  in
  loop (Digraph.vertices g) []

let is_weakly_connected g vs =
  if Iset.cardinal vs <= 1 then true
  else
    match undirected_components (Digraph.induced g vs) with
    | [ _ ] -> true
    | _ -> false
