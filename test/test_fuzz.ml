(* The fuzzer itself: deterministic replay, the oracle bank on known
   pipelines, the shrinker's contract, corpus persistence, and pinned
   reproducers for the engine bugs the fuzzer has already caught.

   The campaign-scale runs live in CI (`kfusec fuzz`); here every case
   is small and fixed-seed so `dune runtest` stays fast and exact. *)

module F = Kfuse_fusion
module Fz = Kfuse_fuzz
module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Simplify = Kfuse_ir.Simplify
module Cse = Kfuse_ir.Cse
module Validate = Kfuse_ir.Validate
module Fingerprint = Kfuse_cache.Fingerprint
module Faults = Kfuse_util.Faults

let config = F.Config.default

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "kfuse-test-fuzz-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  let rec rm_rf path =
    match Unix.lstat path with
    | exception Unix.Unix_error _ -> ()
    | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
    | _ -> ( try Sys.remove path with Sys_error _ -> ())
  in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ---- generator ---- *)

let test_seed_determinism () =
  for i = 0 to 9 do
    let a = Fz.Gen.case ~seed:5 i and b = Fz.Gen.case ~seed:5 i in
    Alcotest.(check string)
      (Printf.sprintf "case %d replays bit-identically" i)
      (Fingerprint.exact a) (Fingerprint.exact b)
  done

let test_seeds_differ () =
  let differs =
    List.exists
      (fun i ->
        Fingerprint.exact (Fz.Gen.case ~seed:1 i)
        <> Fingerprint.exact (Fz.Gen.case ~seed:2 i))
      [ 0; 1; 2; 3; 4 ]
  in
  Alcotest.(check bool) "different seeds generate different pipelines" true differs

let test_generated_validate () =
  for i = 0 to 19 do
    let p = Fz.Gen.case ~seed:11 i in
    Alcotest.(check int)
      (Printf.sprintf "case %d passes Validate.pipeline" i)
      0
      (List.length (Validate.pipeline p))
  done

(* unparse-then-parse is the identity on the normal form: [normalize]
   resolves what the DSL cannot spell apart (zero-offset borders,
   negated literals), and on its image the round-trip is exact. *)
let test_generated_roundtrip () =
  for i = 0 to 19 do
    let p = Fz.Gen.case ~seed:13 i in
    let norm = Fz.Corpus.normalize p in
    match Kfuse_dsl.Unparse.pipeline norm with
    | Error e -> Alcotest.failf "case %d has no DSL rendering: %s" i e
    | Ok text -> (
      match Kfuse_dsl.Elaborate.parse_pipeline text with
      | Error e -> Alcotest.failf "case %d does not parse back: %s" i e
      | Ok reloaded ->
        Alcotest.(check string)
          (Printf.sprintf "case %d round-trips to its normal form" i)
          (Fingerprint.exact norm) (Fingerprint.exact reloaded))
  done

let test_max_kernels_respected () =
  for i = 0 to 9 do
    let p = Fz.Gen.case ~max_kernels:4 ~seed:3 i in
    let n = Pipeline.num_kernels p in
    Alcotest.(check bool)
      (Printf.sprintf "case %d has 2..4 kernels (got %d)" i n)
      true
      (n >= 2 && n <= 4)
  done

(* ---- oracle bank ---- *)

let test_oracle_bank_clean () =
  for i = 0 to 9 do
    let p = Fz.Gen.case ~seed:17 i in
    match (Fz.Oracle.check config p).Fz.Oracle.failure with
    | None -> ()
    | Some { oracle; detail } ->
      Alcotest.failf "case %d fails %s: %s" i (Fz.Oracle.name_to_string oracle) detail
  done

let test_oracle_names_roundtrip () =
  List.iter
    (fun o ->
      match Fz.Oracle.name_of_string (Fz.Oracle.name_to_string o) with
      | Some o' when o' = o -> ()
      | _ -> Alcotest.failf "oracle name %s does not round-trip" (Fz.Oracle.name_to_string o))
    Fz.Oracle.all

(* ---- shrinker ---- *)

(* Shrink against an artificial predicate: the contract is about the
   output (well-formed, still failing, no larger), not about any real
   engine bug. *)
let test_shrink_well_formed_and_still_failing () =
  let p = Fz.Gen.case ~seed:19 4 in
  let still_fails q = Pipeline.num_kernels q >= 2 in
  let shrunk = Fz.Shrink.run ~still_fails p in
  Alcotest.(check bool) "shrunk pipeline still fails" true (still_fails shrunk);
  Alcotest.(check int) "shrunk pipeline validates" 0
    (List.length (Validate.pipeline shrunk));
  Alcotest.(check bool) "shrinking never grows the pipeline" true
    (Pipeline.num_kernels shrunk <= Pipeline.num_kernels p);
  (* num_kernels >= 2 is satisfiable by a 2-kernel pipeline, and the
     kernel-dropping moves can always reach one. *)
  Alcotest.(check int) "kernel-count predicate shrinks to the minimum" 2
    (Pipeline.num_kernels shrunk)

let test_shrink_identity_when_minimal () =
  let p = Fz.Gen.case ~seed:19 0 in
  let shrunk = Fz.Shrink.run ~still_fails:(fun _ -> true) p in
  (* Everything "fails", so shrinking bottoms out at some valid pipeline;
     it must still be well-formed and no larger. *)
  Alcotest.(check int) "result validates" 0 (List.length (Validate.pipeline shrunk));
  Alcotest.(check bool) "no growth" true
    (Pipeline.num_kernels shrunk <= Pipeline.num_kernels p)

(* ---- corpus ---- *)

let test_corpus_roundtrip () =
  with_temp_dir @@ fun dir ->
  let p = Fz.Gen.case ~seed:23 1 in
  (match Fz.Corpus.save ~dir ~seed:23 ~index:1 ~oracle:"legality" ~detail:"test entry" p with
  | Error e -> Alcotest.failf "save failed: %s" e
  | Ok path -> Alcotest.(check bool) "saved file exists" true (Sys.file_exists path));
  let entries, errors = Fz.Corpus.load_dir dir in
  Alcotest.(check int) "no unreadable entries" 0 (List.length errors);
  match entries with
  | [ e ] ->
    Alcotest.(check (option int)) "seed recorded" (Some 23) e.Fz.Corpus.seed;
    Alcotest.(check (option int)) "index recorded" (Some 1) e.Fz.Corpus.index;
    Alcotest.(check (option string)) "oracle recorded" (Some "legality") e.Fz.Corpus.oracle;
    Alcotest.(check (option string)) "detail recorded" (Some "test entry") e.Fz.Corpus.detail;
    Alcotest.(check string) "pipeline round-trips through disk"
      (Fingerprint.exact (Fz.Corpus.normalize p))
      (Fingerprint.exact e.Fz.Corpus.pipeline)
  | es -> Alcotest.failf "expected exactly one corpus entry, got %d" (List.length es)

let test_corpus_save_idempotent () =
  with_temp_dir @@ fun dir ->
  let p = Fz.Gen.case ~seed:23 2 in
  let save () = Fz.Corpus.save ~dir ~oracle:"legality" ~detail:"d" p in
  (match (save (), save ()) with
  | Ok a, Ok b -> Alcotest.(check string) "same path twice" a b
  | _ -> Alcotest.fail "save failed");
  let entries, _ = Fz.Corpus.load_dir dir in
  Alcotest.(check int) "still one entry" 1 (List.length entries)

let test_runner_replays_corpus () =
  with_temp_dir @@ fun cache_dir ->
  with_temp_dir @@ fun dir ->
  let p = Fz.Gen.case ~seed:29 0 in
  (match Fz.Corpus.save ~dir ~oracle:"legality" ~detail:"seeded entry" p with
  | Error e -> Alcotest.failf "save failed: %s" e
  | Ok _ -> ());
  let summary =
    Fz.Runner.run
      {
        Fz.Runner.default_options with
        Fz.Runner.cases = 0;
        corpus = Some dir;
        cache_dir = Some cache_dir;
      }
  in
  Alcotest.(check int) "one corpus replay" 1 summary.Fz.Runner.corpus_replayed;
  Alcotest.(check int) "no generated cases" 0 summary.Fz.Runner.cases_run;
  Alcotest.(check bool) "replay of a healthy entry passes" false
    (Fz.Runner.failed summary)

(* ---- the seeded-bug acceptance check ---- *)

(* With the min-cut legality check corrupted via fault injection, the
   campaign must catch the illegality and shrink it to a tiny
   reproducer.  This is the end-to-end proof that the fuzzer detects a
   real engine bug rather than merely running. *)
let test_fault_armed_campaign_catches_legality_bug () =
  with_temp_dir @@ fun cache_dir ->
  Faults.with_spec "cut.block_legal/1" @@ fun () ->
  let summary =
    Fz.Runner.run
      {
        Fz.Runner.default_options with
        Fz.Runner.cases = 5;
        seed = 7;
        max_failures = 1;
        cache_dir = Some cache_dir;
      }
  in
  match summary.Fz.Runner.failures with
  | [] -> Alcotest.fail "seeded legality bug was not caught"
  | f :: _ ->
    Alcotest.(check string) "caught by the legality oracle" "legality"
      (Fz.Oracle.name_to_string f.Fz.Runner.oracle);
    let shrunk =
      match f.Fz.Runner.shrunk with
      | Some q -> q
      | None -> Alcotest.fail "failure was not shrunk"
    in
    let n = Pipeline.num_kernels shrunk in
    Alcotest.(check bool)
      (Printf.sprintf "shrunk to <= 4 kernels (got %d)" n)
      true (n <= 4);
    Alcotest.(check bool) "shrunk reproducer still fails under the fault" true
      ((Fz.Oracle.check ~which:[ Fz.Oracle.Legality ] config shrunk).Fz.Oracle.failure
      <> None)

(* ---- pinned reproducers for fuzzer-found engine bugs ---- *)

(* Found by the unparse-roundtrip oracle: "(-1.5)" used to elaborate to
   [Neg (Const 1.5)], so a pipeline containing [Const (-1.5)] came back
   structurally different. *)
let test_pinned_negative_literal_roundtrip () =
  let k = Kernel.map ~name:"k0" ~inputs:[] (Expr.const (-1.5)) in
  let p =
    Pipeline.create ~name:"pin_neg" ~width:7 ~height:7 ~channels:1 ~params:[]
      ~inputs:[ "in0" ] [ k ]
  in
  match Kfuse_dsl.Unparse.pipeline p with
  | Error e -> Alcotest.failf "no DSL rendering: %s" e
  | Ok text -> (
    match Kfuse_dsl.Elaborate.parse_pipeline text with
    | Error e -> Alcotest.failf "does not parse back: %s" e
    | Ok reloaded ->
      Alcotest.(check string) "negative literal round-trips exactly"
        (Fingerprint.exact (Fz.Corpus.normalize p))
        (Fingerprint.exact reloaded))

(* Found by the meta-duplicate oracle: wrapping a body in an equal-branch
   select changed the structural fingerprint, through two distinct holes:
   canonical kernel ranks were computed pre-normalization, and CSE's
   let-binding order depended on the image names in scope. *)
let test_pinned_equal_branch_select_fingerprint () =
  let k2 = Kernel.map ~name:"k2" ~inputs:[] (Expr.const 0.25) in
  let k3 =
    Kernel.map ~name:"k3" ~inputs:[ "in0"; "k2" ]
      Expr.(input "in0" + input "in0" + sqrt (abs (input "k2")))
  in
  let k5 =
    Kernel.map ~name:"k5" ~inputs:[ "k2"; "k3" ]
      (Expr.select Expr.Lt (Expr.input "k2") (Expr.const (-0.25)) (Expr.input "k2")
         Expr.(max (input "k3" + const 2.0) (neg (input "k3"))))
  in
  let p =
    Pipeline.create ~name:"pin_sel" ~width:7 ~height:7 ~channels:1 ~params:[]
      ~inputs:[ "in0" ] [ k2; k3; k5 ]
  in
  let wrapped_body =
    let body = Kernel.body k2 in
    Expr.select Expr.Lt (Expr.const 0.0) (Expr.const 1.0) body body
  in
  let k2w = Kernel.map ~name:"k2" ~inputs:[] wrapped_body in
  let pw = Pipeline.with_kernels p [ k2w; k3; k5 ] in
  Alcotest.(check string) "equal-branch select leaves the structural fingerprint"
    (Fingerprint.structural p) (Fingerprint.structural pw)

(* Found by the eval-exact oracle: simplifying [0 * k0] erased the last
   read of [k0], which then had no consumers and silently joined the
   output set. *)
let test_pinned_simplify_preserves_outputs () =
  let k0 = Kernel.map ~name:"k0" ~inputs:[ "in0" ] (Expr.input "in0") in
  let k2 =
    Kernel.map ~name:"k2" ~inputs:[ "k0"; "in0" ]
      Expr.((const 0.0 * input "k0") + (input "in0" + const 0.5))
  in
  let p =
    Pipeline.create ~name:"pin_dce" ~width:7 ~height:7 ~channels:1 ~params:[]
      ~inputs:[ "in0" ] [ k0; k2 ]
  in
  let outputs (q : Pipeline.t) =
    List.filter_map
      (fun i ->
        if Kfuse_util.Iset.is_empty (Pipeline.consumers q i) then
          Some (Pipeline.kernel q i).Kernel.name
        else None)
      (List.init (Pipeline.num_kernels q) Fun.id)
    |> List.sort String.compare
  in
  let simplified = Simplify.pipeline p in
  Alcotest.(check (list string)) "output set is preserved" (outputs p)
    (outputs simplified);
  Alcotest.(check int) "the dead interior kernel is dropped" 1
    (Pipeline.num_kernels simplified)

(* CSE must bind repeated subtrees in first-occurrence order, not in an
   order derived from image names: structural fingerprinting renames
   kernels to canonical ranks and re-runs CSE, so a name-dependent
   binding order leaks unrelated differences into the fingerprint. *)
let test_pinned_cse_order_name_independent () =
  let body a b =
    Expr.(
      select Lt (input a) (const (-0.25)) (input a)
        (max (input b + const 2.0) (neg (input b))))
  in
  let lets e =
    let rec go acc = function
      | Expr.Let { value; body; _ } -> go (value :: acc) body
      | _ -> List.rev acc
    in
    go [] (Cse.expr e)
  in
  (* The scrutinee is the first repeated read in traversal order, so it
     is bound first (innermost); the max operand wraps it.  The order
     must be the same whatever the images are called. *)
  Alcotest.(check (list Helpers.expr)) "binding order for images (a, z)"
    [ Expr.input "z"; Expr.input "a" ]
    (lets (body "a" "z"));
  Alcotest.(check (list Helpers.expr)) "binding order for images (z, a)"
    [ Expr.input "a"; Expr.input "z" ]
    (lets (body "z" "a"))

let suite =
  [
    Alcotest.test_case "generator: same seed, same pipeline" `Quick test_seed_determinism;
    Alcotest.test_case "generator: seeds differentiate" `Quick test_seeds_differ;
    Alcotest.test_case "generator: output validates" `Quick test_generated_validate;
    Alcotest.test_case "generator: DSL round-trip" `Quick test_generated_roundtrip;
    Alcotest.test_case "generator: max_kernels bound" `Quick test_max_kernels_respected;
    Alcotest.test_case "oracle bank: clean on generated cases" `Slow test_oracle_bank_clean;
    Alcotest.test_case "oracle names round-trip" `Quick test_oracle_names_roundtrip;
    Alcotest.test_case "shrinker: well-formed, still failing, minimal" `Quick
      test_shrink_well_formed_and_still_failing;
    Alcotest.test_case "shrinker: no growth on trivial predicate" `Quick
      test_shrink_identity_when_minimal;
    Alcotest.test_case "corpus: disk round-trip with provenance" `Quick test_corpus_roundtrip;
    Alcotest.test_case "corpus: save is idempotent" `Quick test_corpus_save_idempotent;
    Alcotest.test_case "runner: corpus replays before generation" `Quick
      test_runner_replays_corpus;
    Alcotest.test_case "fault-armed campaign catches the seeded bug" `Slow
      test_fault_armed_campaign_catches_legality_bug;
    Alcotest.test_case "pinned: negative literal round-trip" `Quick
      test_pinned_negative_literal_roundtrip;
    Alcotest.test_case "pinned: equal-branch select fingerprint" `Quick
      test_pinned_equal_branch_select_fingerprint;
    Alcotest.test_case "pinned: simplify preserves the output set" `Quick
      test_pinned_simplify_preserves_outputs;
    Alcotest.test_case "pinned: CSE binding order is name-independent" `Quick
      test_pinned_cse_order_name_independent;
  ]
