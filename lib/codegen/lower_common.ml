module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Border = Kfuse_image.Border
open Cuda_ast

let sanitize name =
  String.map
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') then c
      else '_')
    name

type ctx = { mutable stmts : stmt list; mutable counter : int }

let create_ctx () = { stmts = []; counter = 0 }
let emit ctx s = ctx.stmts <- s :: ctx.stmts

let fresh ctx prefix =
  ctx.counter <- ctx.counter + 1;
  Printf.sprintf "%s%d" prefix ctx.counter

let take_stmts ctx =
  let s = List.rev ctx.stmts in
  ctx.stmts <- [];
  s

let read_fn = function
  | Border.Clamp -> "read_clamp"
  | Border.Mirror -> "read_mirror"
  | Border.Repeat -> "read_repeat"
  | Border.Constant _ -> "read_constant"
  | Border.Undefined -> "read_raw"

let idx_fn = function
  | Border.Clamp -> Some "idx_clamp"
  | Border.Mirror -> Some "idx_mirror"
  | Border.Repeat -> Some "idx_repeat"
  | Border.Constant _ | Border.Undefined -> None

(* Scalar precision of lowered code: buffer element type, per-pixel
   arithmetic, literals and temporaries all follow it.  [Single] matches
   the CUDA the paper's toolchain generates; [Double] matches the
   float64 reference interpreter bit-for-bit in every operation and
   every inter-kernel store, so an execution backend that widens its
   float32 inputs once at the boundary diverges from the interpreter
   only by that initial input rounding and the final output store. *)
type precision = Single | Double

(* In double mode the [f]-suffixed math.h entry points drop their
   suffix; C's usual conversions then keep the whole expression chain in
   double (float loads promote, the store narrows). *)
let fn_for prec single = match prec with Single -> single | Double -> Filename.chop_suffix single "f"

let unop_c prec = function
  | Expr.Neg -> `Prefix "-"
  | Expr.Abs -> `Fn (fn_for prec "fabsf")
  | Expr.Sqrt -> `Fn (fn_for prec "sqrtf")
  | Expr.Exp -> `Fn (fn_for prec "expf")
  | Expr.Log -> `Fn (fn_for prec "logf")
  | Expr.Sin -> `Fn (fn_for prec "sinf")
  | Expr.Cos -> `Fn (fn_for prec "cosf")
  | Expr.Floor -> `Fn (fn_for prec "floorf")

let binop_c prec = function
  | Expr.Add -> `Infix "+"
  | Expr.Sub -> `Infix "-"
  | Expr.Mul -> `Infix "*"
  | Expr.Div -> `Infix "/"
  | Expr.Min -> `Fn (fn_for prec "fminf")
  | Expr.Max -> `Fn (fn_for prec "fmaxf")
  | Expr.Pow -> `Fn (fn_for prec "powf")

let scalar_lit prec = match prec with Single -> float_lit | Double -> double_lit
let scalar_ctype prec = match prec with Single -> "float" | Double -> "double"

let cmp_c = function Expr.Lt -> "<" | Expr.Le -> "<=" | Expr.Eq -> "=="

let width_e = ident "width"
let height_e = ident "height"

let rec lower ?(prec = Single) ?(bounded = true) ctx ~vars ~cx ~cy e =
  let lower ?(bounded = bounded) ctx = lower ~prec ~bounded ctx in
  match e with
  | Expr.Const c -> scalar_lit prec c
  | Expr.Param p -> ident ("p_" ^ sanitize p)
  | Expr.Var v -> (
    match List.assoc_opt v vars with
    | Some c -> ident c
    | None -> invalid_arg (Printf.sprintf "Lower: unbound variable %%%s" v))
  | Expr.Let { var; value; body } ->
    let ce = lower ctx ~vars ~cx ~cy value in
    let name = fresh ctx ("r_" ^ sanitize var ^ "_") in
    emit ctx (Decl { ctype = "const " ^ scalar_ctype prec; name; init = Some ce });
    lower ctx ~vars:((var, name) :: vars) ~cx ~cy body
  | Expr.Input { image; dx; dy; border } ->
    if bounded && dx = 0 && dy = 0 then
      (* The coordinates are known in-bounds (iteration variables, or
         already remapped by an index exchange), so every border mode
         degenerates to the raw load — skip the per-read re-clamp on
         the kernel's hottest path. *)
      index (ident ("img_" ^ sanitize image)) ((cy *: width_e) +: cx)
    else
      let x = if dx = 0 then cx else cx +: int_lit dx in
      let y = if dy = 0 then cy else cy +: int_lit dy in
      let base = [ ident ("img_" ^ sanitize image); x; y; width_e; height_e ] in
      let args =
        match border with
        | Border.Constant c -> base @ [ scalar_lit prec c ]
        | Border.Clamp | Border.Mirror | Border.Repeat | Border.Undefined -> base
      in
      call (read_fn border) args
  | Expr.Unop (op, a) -> (
    let ca = lower ctx ~vars ~cx ~cy a in
    match unop_c prec op with `Prefix s -> Unop (s, ca) | `Fn f -> call f [ ca ])
  | Expr.Binop (op, a, b) -> (
    let ca = lower ctx ~vars ~cx ~cy a in
    let cb = lower ctx ~vars ~cx ~cy b in
    match binop_c prec op with `Infix s -> Binop (s, ca, cb) | `Fn f -> call f [ ca; cb ])
  | Expr.Select { cmp; lhs; rhs; if_true; if_false } ->
    let cl = lower ctx ~vars ~cx ~cy lhs in
    let cr = lower ctx ~vars ~cx ~cy rhs in
    let ct = lower ctx ~vars ~cx ~cy if_true in
    let cf = lower ctx ~vars ~cx ~cy if_false in
    Ternary (Binop (cmp_c cmp, cl, cr), ct, cf)
  | Expr.Shift { dx; dy; exchange; body } -> (
    let sx = cx +: int_lit dx and sy = cy +: int_lit dy in
    match exchange with
    | None | Some Border.Undefined ->
      let nx = fresh ctx "sx" and ny = fresh ctx "sy" in
      emit ctx (Decl { ctype = "const int"; name = nx; init = Some sx });
      emit ctx (Decl { ctype = "const int"; name = ny; init = Some sy });
      (* The unexchanged shift may leave the iteration space: reads at
         these coordinates keep their border handling. *)
      lower ~bounded:(bounded && dx = 0 && dy = 0) ctx ~vars ~cx:(ident nx)
        ~cy:(ident ny) body
    | Some ((Border.Clamp | Border.Mirror | Border.Repeat) as mode) ->
      (* Index exchange: remap the shifted coordinate into the iteration
         space before evaluating the inlined producer. *)
      let f = Option.get (idx_fn mode) in
      let nx = fresh ctx "ex" and ny = fresh ctx "ey" in
      emit ctx
        (Decl { ctype = "const int"; name = nx; init = Some (call f [ sx; width_e ]) });
      emit ctx
        (Decl { ctype = "const int"; name = ny; init = Some (call f [ sy; height_e ]) });
      (* The exchange remapped both coordinates into the iteration
         space, so the inlined producer's central reads are bounded. *)
      lower ~bounded:true ctx ~vars ~cx:(ident nx) ~cy:(ident ny) body
    | Some (Border.Constant c) ->
      (* The exchanged intermediate pixel is the padding constant outside
         the iteration space; guard the inlined producer. *)
      let nx = fresh ctx "gx" and ny = fresh ctx "gy" in
      let result = fresh ctx "ge" in
      emit ctx (Decl { ctype = "const int"; name = nx; init = Some sx });
      emit ctx (Decl { ctype = "const int"; name = ny; init = Some sy });
      emit ctx (Decl { ctype = scalar_ctype prec; name = result; init = None });
      let saved = ctx.stmts in
      ctx.stmts <- [];
      (* The guard below only evaluates the producer inside the
         iteration space, so its central reads are bounded. *)
      let inner = lower ~bounded:true ctx ~vars ~cx:(ident nx) ~cy:(ident ny) body in
      let inner_stmts = List.rev (Assign (ident result, inner) :: ctx.stmts) in
      ctx.stmts <- saved;
      let inside =
        Binop (">=", ident nx, int_lit 0)
        &&: (ident nx <: width_e)
        &&: Binop (">=", ident ny, int_lit 0)
        &&: (ident ny <: height_e)
      in
      emit ctx
        (If
           {
             cond = inside;
             then_ = inner_stmts;
             else_ = [ Assign (ident result, scalar_lit prec c) ];
           });
      ident result)

type features = {
  read_modes : Border.mode list;
  exchange_modes : Border.mode list;
  atomics : [ `Min | `Max ] list;
}

let mode_key = function
  | Border.Clamp -> 0
  | Border.Mirror -> 1
  | Border.Repeat -> 2
  | Border.Constant _ -> 3
  | Border.Undefined -> 4

let canonical_mode = function
  | Border.Constant _ -> Border.Constant 0.0
  | (Border.Clamp | Border.Mirror | Border.Repeat | Border.Undefined) as m -> m

let used_features (p : Pipeline.t) =
  let modes = ref [] in
  let exchanges = ref [] in
  let atomics = ref [] in
  let add_mode lst m =
    let m = canonical_mode m in
    if not (List.exists (fun x -> mode_key x = mode_key m) !lst) then lst := m :: !lst
  in
  let add_atomic a = if not (List.mem a !atomics) then atomics := a :: !atomics in
  Array.iter
    (fun (k : Kernel.t) ->
      let body =
        match k.Kernel.op with
        | Kernel.Map e -> e
        | Kernel.Reduce { combine; arg; _ } ->
          (match combine with
          | Expr.Min -> add_atomic `Min
          | Expr.Max -> add_atomic `Max
          | Expr.Add | Expr.Sub | Expr.Mul | Expr.Div | Expr.Pow -> ());
          arg
      in
      let rec walk e =
        match e with
        | Expr.Input { border; _ } -> add_mode modes border
        | Expr.Shift { exchange; body; _ } ->
          (match exchange with
          | Some ((Border.Clamp | Border.Mirror | Border.Repeat) as m) ->
            add_mode exchanges m
          | Some (Border.Constant _) | Some Border.Undefined | None -> ());
          walk body
        | Expr.Let { value; body; _ } ->
          walk value;
          walk body
        | Expr.Unop (_, a) -> walk a
        | Expr.Binop (_, a, b) ->
          walk a;
          walk b
        | Expr.Select { lhs; rhs; if_true; if_false; _ } ->
          List.iter walk [ lhs; rhs; if_true; if_false ]
        | Expr.Const _ | Expr.Param _ | Expr.Var _ -> ()
      in
      walk body)
    p.Pipeline.kernels;
  {
    read_modes = List.sort (fun a b -> compare (mode_key a) (mode_key b)) !modes;
    exchange_modes = List.sort (fun a b -> compare (mode_key a) (mode_key b)) !exchanges;
    atomics = List.sort compare !atomics;
  }

let idx_helper_src ~q = function
  | "idx_clamp" ->
    Printf.sprintf
      "%s int idx_clamp(int i, int n) {\n  return i < 0 ? 0 : (i >= n ? n - 1 : i);\n}" q
  | "idx_mirror" ->
    Printf.sprintf
      "%s int idx_mirror(int i, int n) {\n\
      \  if (n == 1) return 0;\n\
      \  int period = 2 * n - 2;\n\
      \  int m = ((i %% period) + period) %% period;\n\
      \  return m < n ? m : period - m;\n\
       }"
      q
  | "idx_repeat" ->
    Printf.sprintf "%s int idx_repeat(int i, int n) {\n  return ((i %% n) + n) %% n;\n}" q
  | f -> invalid_arg ("unknown helper " ^ f)

let read_helper_src ~q ~s mode =
  match mode with
  | Border.Clamp | Border.Mirror | Border.Repeat ->
    let f = Option.get (idx_fn mode) in
    Printf.sprintf
      "%s %s %s(const %s* img, int x, int y, int w, int h) {\n\
      \  return img[%s(y, h) * w + %s(x, w)];\n\
       }"
      q s (read_fn mode) s f f
  | Border.Constant _ ->
    Printf.sprintf
      "%s %s read_constant(const %s* img, int x, int y, int w, int h, %s c) {\n\
      \  return (x < 0 || x >= w || y < 0 || y >= h) ? c : img[y * w + x];\n\
       }"
      q s s s
  | Border.Undefined ->
    Printf.sprintf
      "%s %s read_raw(const %s* img, int x, int y, int w, int h) {\n\
      \  (void)h;\n\
      \  return img[y * w + x];\n\
       }"
      q s s

let helper_sources ~device_qualifier ?(prec = Single) features =
  let q = device_qualifier in
  let s = scalar_ctype prec in
  let idx_needed =
    List.sort_uniq compare
      (List.filter_map idx_fn features.read_modes
      @ List.filter_map idx_fn features.exchange_modes)
  in
  List.map (idx_helper_src ~q) idx_needed
  @ List.map (read_helper_src ~q ~s) features.read_modes

let atomic_helper_src name op =
  Printf.sprintf
    "__device__ float %s(float* addr, float value) {\n\
    \  int* iaddr = (int*)addr;\n\
    \  int old = *iaddr, assumed;\n\
    \  do {\n\
    \    assumed = old;\n\
    \    old = atomicCAS(iaddr, assumed, __float_as_int(%s(value, \
     __int_as_float(assumed))));\n\
    \  } while (assumed != old);\n\
    \  return __int_as_float(old);\n\
     }"
    name op

let atomic_helper_sources features =
  List.map
    (function
      | `Min -> atomic_helper_src "atomicMinFloat" "fminf"
      | `Max -> atomic_helper_src "atomicMaxFloat" "fmaxf")
    features.atomics

let body_expr (k : Kernel.t) =
  match k.Kernel.op with Kernel.Map e -> e | Kernel.Reduce { arg; _ } -> arg

let kernel_params ?(prec = Single) (p : Pipeline.t) (k : Kernel.t) =
  let s = scalar_ctype prec in
  let used_params = Expr.params (body_expr k) in
  [ { ctype = s ^ "*"; name = "out" } ]
  @ List.map
      (fun i -> { ctype = "const " ^ s ^ "*"; name = "img_" ^ sanitize i })
      k.Kernel.inputs
  @ [ { ctype = "const int"; name = "width" }; { ctype = "const int"; name = "height" } ]
  @ List.filter_map
      (fun (name, _) ->
        if List.mem name used_params then
          Some { ctype = "const " ^ s; name = "p_" ^ sanitize name }
        else None)
      p.Pipeline.params

let func_name (p : Pipeline.t) (k : Kernel.t) =
  Printf.sprintf "%s_%s" (sanitize p.Pipeline.name) (sanitize k.Kernel.name)

let scalar_args (p : Pipeline.t) (k : Kernel.t) =
  let used_params = Expr.params (body_expr k) in
  List.filter_map
    (fun (name, _) ->
      if List.mem name used_params then Some ("p_" ^ sanitize name) else None)
    p.Pipeline.params
