lib/gpu/device.ml: Format List String
