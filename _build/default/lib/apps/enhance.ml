(** Image enhancement for wireless capsule endoscopy (Section V-B, after
    Suman et al.).

    "It uses geometric mean filter and gamma correction for de-noising
    and enhancement" — a linear chain of a local operator and two point
    operators with no external dependence, which is why even the basic
    technique fuses it fully and "all the estimated benefit can be
    achieved". *)

module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Border = Kfuse_image.Border

let default_width = 2048
let default_height = 2048

(** [pipeline ?width ?height ()] is the enhancement pipeline.  Parameters:
    ["gamma_exp"] (default 0.8) and contrast gain ["gain"] (default 1.2).
    Inputs are assumed positive (intensities); the geometric mean is
    computed as [exp(mean(log(...)))]. *)
let pipeline ?(width = default_width) ?(height = default_height) () =
  let border = Border.Clamp in
  let open Expr in
  let geomean =
    (* 3x3 geometric mean: exp of the average log intensity.  A small
       bias keeps the log away from zero for dark pixels. *)
    let tap dx dy = log (input ~border ~dx ~dy "in" + const 1e-6) in
    let sum =
      List.fold_left ( + ) (tap (-1) (-1))
        [ tap 0 (-1); tap 1 (-1); tap (-1) 0; tap 0 0; tap 1 0; tap (-1) 1;
          tap 0 1; tap 1 1 ]
    in
    Kernel.map ~name:"geomean" ~inputs:[ "in" ] (exp (sum / const 9.0))
  in
  let gamma =
    Kernel.map ~name:"gamma" ~inputs:[ "geomean" ]
      (pow (input "geomean") (param "gamma_exp"))
  in
  let stretch =
    Kernel.map ~name:"stretch" ~inputs:[ "gamma" ]
      (clamp01 (param "gain" * input "gamma"))
  in
  Pipeline.create ~name:"enhance" ~width ~height
    ~params:[ ("gamma_exp", 0.8); ("gain", 1.2) ]
    ~inputs:[ "in" ]
    [ geomean; gamma; stretch ]
