(** Launch-configuration autotuning.

    Hipacc fixes a 32x4 thread-block shape; the best shape actually
    depends on the kernel.  Square-ish blocks amortize a stencil's halo
    over two dimensions (a 16x16 tile of a radius-1 kernel loads
    18x18/256 = 1.27 pixels per output against 34x6/128 = 1.59 for 32x4),
    while wide flat blocks favor coalescing for point kernels.  This
    module searches a candidate set of shapes per kernel under the
    analytic model of {!Perf_model} and reports the per-kernel winners. *)

type choice = {
  kernel_name : string;
  best : Kfuse_ir.Cost.block;
  best_ms : float;
  default_ms : float;  (** time under the default 32x4 shape *)
}

(** The default search space: power-of-two shapes from 128 to 512 threads
    with width at least 16 (warp-coalescing floor). *)
val default_candidates : Kfuse_ir.Cost.block list

(** [tune_kernel ?params ?candidates device ~quality ~fused pipeline
    kernel] picks the candidate minimizing the modeled time (ties to the
    earlier candidate). *)
val tune_kernel :
  ?params:Perf_model.params ->
  ?candidates:Kfuse_ir.Cost.block list ->
  Device.t ->
  quality:Perf_model.quality ->
  fused:bool ->
  Kfuse_ir.Pipeline.t ->
  Kfuse_ir.Kernel.t ->
  choice

(** [tune_pipeline ?params ?candidates device ~quality ~fused_kernels
    pipeline] tunes every kernel independently; returns the choices and
    the (tuned, default) pipeline totals. *)
val tune_pipeline :
  ?params:Perf_model.params ->
  ?candidates:Kfuse_ir.Cost.block list ->
  Device.t ->
  quality:Perf_model.quality ->
  fused_kernels:string list ->
  Kfuse_ir.Pipeline.t ->
  choice list * float * float
