type summary = {
  n : int;
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  max : float;
  mean : float;
}

let percentile p sorted =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty array";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let summarize samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Stats.summarize: empty array";
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  {
    n;
    min = sorted.(0);
    p25 = percentile 25.0 sorted;
    median = percentile 50.0 sorted;
    p75 = percentile 75.0 sorted;
    max = sorted.(n - 1);
    mean = mean samples;
  }

let geomean xs =
  match xs with
  | [] -> invalid_arg "Stats.geomean: empty list"
  | _ ->
    let sum_logs =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats.geomean: nonpositive element";
          acc +. log x)
        0.0 xs
    in
    exp (sum_logs /. float_of_int (List.length xs))

let pp_summary ppf s =
  Format.fprintf ppf "n=%d min=%.4f p25=%.4f med=%.4f p75=%.4f max=%.4f" s.n
    s.min s.p25 s.median s.p75 s.max
