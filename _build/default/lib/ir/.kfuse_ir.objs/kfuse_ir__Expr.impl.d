lib/ir/expr.ml: Float Format Hashtbl Kfuse_image List Option Printf Stdlib String
