(* Direct unit tests for Conv_match — stencil recognition and rank-1
   separation.  Edge cases pinned: duplicate-offset accumulation,
   mixed-image and mixed-border rejection, bare reads as unit taps, and
   separability of the classic masks vs a genuinely rank-2 stencil. *)

module Expr = Kfuse_ir.Expr
module Conv_match = Kfuse_ir.Conv_match
module Mask = Kfuse_image.Mask
module Border = Kfuse_image.Border

let tap s (dx, dy) = List.assoc_opt (dx, dy) s.Conv_match.taps

let test_extract_conv_mask () =
  let e = Expr.conv ~border:Border.Mirror Mask.gaussian_3x3 "img" in
  match Conv_match.extract e with
  | None -> Alcotest.fail "gaussian conv not recognized"
  | Some s ->
    Alcotest.(check string) "image" "img" s.Conv_match.image;
    Alcotest.(check bool) "border preserved" true (s.Conv_match.border = Border.Mirror);
    Alcotest.(check int) "nine taps" 9 (Conv_match.tap_count s);
    Alcotest.(check (option (float 1e-12))) "center coefficient" (Some 0.25) (tap s (0, 0))

let test_extract_accumulates_duplicate_offsets () =
  let e =
    Expr.(
      (const 0.25 * input ~dx:1 "x")
      + (const 0.25 * input ~dx:1 "x")
      + input ~dy:(-1) "x")
  in
  match Conv_match.extract e with
  | None -> Alcotest.fail "weighted sum not recognized"
  | Some s ->
    Alcotest.(check int) "offsets deduplicated" 2 (Conv_match.tap_count s);
    Alcotest.(check (option (float 1e-12))) "coefficients accumulate" (Some 0.5)
      (tap s (1, 0));
    Alcotest.(check (option (float 1e-12))) "bare read is a unit tap" (Some 1.0)
      (tap s (0, -1))

let test_extract_rejects_mixed_images () =
  let e = Expr.(input "x" + input "y") in
  Alcotest.(check bool) "two images rejected" true (Conv_match.extract e = None)

let test_extract_rejects_mixed_borders () =
  let e =
    Expr.(
      input ~dx:1 ~border:Border.Clamp "x" + input ~dx:(-1) ~border:Border.Mirror "x")
  in
  Alcotest.(check bool) "two border modes rejected" true (Conv_match.extract e = None)

let test_extract_rejects_non_sum () =
  Alcotest.(check bool) "product of reads rejected" true
    (Conv_match.extract Expr.(input "x" * input ~dx:1 "x") = None)

let test_extract_bare_input () =
  match Conv_match.extract (Expr.input "x") with
  | Some s ->
    Alcotest.(check int) "single tap" 1 (Conv_match.tap_count s);
    Alcotest.(check (option (float 1e-12))) "unit coefficient" (Some 1.0) (tap s (0, 0))
  | None -> Alcotest.fail "bare read not recognized"

let extract_exn e =
  match Conv_match.extract e with
  | Some s -> s
  | None -> Alcotest.fail "expected a stencil"

let check_factorization s f =
  List.iter
    (fun ((dx, dy), w) ->
      let h = Option.value ~default:0.0 (List.assoc_opt dx f.Conv_match.horizontal) in
      let v = Option.value ~default:0.0 (List.assoc_opt dy f.Conv_match.vertical) in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "tap (%d,%d) reconstructs" dx dy)
        w (h *. v))
    s.Conv_match.taps

let test_separate_gaussian () =
  let s = extract_exn (Expr.conv Mask.gaussian_3x3 "img") in
  match Conv_match.separate s with
  | None -> Alcotest.fail "gaussian is separable"
  | Some f ->
    Alcotest.(check int) "three horizontal coefficients" 3
      (List.length f.Conv_match.horizontal);
    Alcotest.(check int) "three vertical coefficients" 3
      (List.length f.Conv_match.vertical);
    check_factorization s f

let test_separate_sobel () =
  (* Sobel-x = [1;2;1]^T x [-1;0;1]: rank 1 even with zero coefficients
     in a column. *)
  let s = extract_exn (Expr.conv Mask.sobel_x "img") in
  match Conv_match.separate s with
  | None -> Alcotest.fail "sobel_x is separable"
  | Some f -> check_factorization s f

let test_separate_rejects_rank2 () =
  (* The identity-matrix stencil has rank 2: no rank-1 factorization. *)
  let s =
    extract_exn
      Expr.(
        input ~dx:(-1) ~dy:(-1) "x" + input ~dx:1 ~dy:1 "x")
  in
  Alcotest.(check bool) "rank-2 stencil rejected" true (Conv_match.separate s = None)

let suite =
  [
    Alcotest.test_case "extract: dense conv mask" `Quick test_extract_conv_mask;
    Alcotest.test_case "extract: duplicate offsets accumulate" `Quick
      test_extract_accumulates_duplicate_offsets;
    Alcotest.test_case "extract: mixed images rejected" `Quick
      test_extract_rejects_mixed_images;
    Alcotest.test_case "extract: mixed borders rejected" `Quick
      test_extract_rejects_mixed_borders;
    Alcotest.test_case "extract: non-sum rejected" `Quick test_extract_rejects_non_sum;
    Alcotest.test_case "extract: bare read is a unit tap" `Quick test_extract_bare_input;
    Alcotest.test_case "separate: gaussian factorizes" `Quick test_separate_gaussian;
    Alcotest.test_case "separate: sobel_x factorizes" `Quick test_separate_sobel;
    Alcotest.test_case "separate: rank-2 rejected" `Quick test_separate_rejects_rank2;
  ]
