lib/image/border.ml: Float Format Printf
