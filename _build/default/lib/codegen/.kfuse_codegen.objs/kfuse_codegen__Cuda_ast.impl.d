lib/codegen/cuda_ast.ml:
