module Iset = Kfuse_util.Iset
module Partition = Kfuse_graph.Partition
module Pipeline = Kfuse_ir.Pipeline
module Kernel = Kfuse_ir.Kernel

type strategy = Baseline | Basic | Greedy | Mincut

type report = {
  strategy : strategy;
  inlined : string list;
  input : Pipeline.t;
  partition : Partition.t;
  edges : Benefit.edge_report list;
  steps : Mincut_fusion.step list;
  objective : float;
  fused : Pipeline.t;
}

let strategy_to_string = function
  | Baseline -> "baseline"
  | Basic -> "basic"
  | Greedy -> "greedy"
  | Mincut -> "mincut"

let strategy_of_string = function
  | "baseline" -> Some Baseline
  | "basic" -> Some Basic
  | "greedy" -> Some Greedy
  | "mincut" -> Some Mincut
  | _ -> None

let all_strategies = [ Baseline; Basic; Greedy; Mincut ]

let run ?(exchange = true) ?(optimize = false) ?(inline = false)
    ?(pool = Kfuse_util.Pool.serial) config strategy (p : Pipeline.t) =
  Config.validate config;
  let p, inlined =
    if inline then Inline_fusion.greedy ~exchange config p else (p, [])
  in
  let g = Pipeline.dag p in
  let partition, steps, edges =
    match strategy with
    | Baseline -> (Partition.singletons g, [], Benefit.all_edges ~pool config p)
    | Basic -> (Basic_fusion.partition config p, [], Benefit.all_edges ~pool config p)
    | Greedy -> (Greedy_fusion.partition config p, [], Benefit.all_edges ~pool config p)
    | Mincut ->
      (* Reuse the weighted fusion graph the algorithm already scored. *)
      let r = Mincut_fusion.run ~pool config p in
      (r.Mincut_fusion.partition, r.Mincut_fusion.steps, r.Mincut_fusion.edges)
  in
  let weights = Mincut_fusion.weight_table edges in
  let weight_of u v =
    match Hashtbl.find_opt weights (u, v) with Some w -> w | None -> 0.0
  in
  let fused = Transform.apply ~exchange p partition in
  let fused =
    if optimize then Kfuse_ir.Cse.pipeline (Kfuse_ir.Simplify.pipeline fused) else fused
  in
  let objective = Partition.objective weight_of g partition in
  { strategy; inlined; input = p; partition; edges; steps; objective; fused }

let fused_kernel_count r = Pipeline.num_kernels r.fused

let pp_report ppf r =
  let p = r.input in
  let name i = (Pipeline.kernel p i).Kernel.name in
  Format.fprintf ppf "@[<v>strategy: %s@," (strategy_to_string r.strategy);
  if r.inlined <> [] then
    Format.fprintf ppf "inlined: %s@," (String.concat ", " r.inlined);
  Format.fprintf ppf "edges:@,";
  List.iter
    (fun (e : Benefit.edge_report) ->
      Format.fprintf ppf "  %s -> %s : %s, w=%.3f@," (name e.src) (name e.dst)
        (Benefit.scenario_to_string e.scenario) e.weight)
    r.edges;
  if r.steps <> [] then begin
    Format.fprintf ppf "trace:@,";
    List.iter (fun s -> Format.fprintf ppf "  %a@," (Mincut_fusion.pp_step p) s) r.steps
  end;
  Format.fprintf ppf "partition:";
  List.iter
    (fun b ->
      Format.fprintf ppf " {%s}" (String.concat ", " (List.map name (Iset.elements b))))
    r.partition;
  Format.fprintf ppf "@,objective beta = %.3f@," r.objective;
  Format.fprintf ppf "kernels: %d -> %d@]" (Pipeline.num_kernels p)
    (Pipeline.num_kernels r.fused)
