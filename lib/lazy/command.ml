module Diag = Kfuse_util.Diag
module Pipeline = Kfuse_ir.Pipeline

type t =
  | Edit of Edits.edit
  | Add_input of string
  | Flush of { scratch : bool }
  | Plan
  | Show
  | Help
  | Quit

let help =
  String.concat "\n"
    [
      "  add <name> = <expr>          append a kernel (DSL expression syntax,";
      "                               e.g. conv(in, gauss3, mirror) or a*2.0+b)";
      "  del <name>                   delete an unconsumed kernel";
      "  retarget <kernel> <from> <to>  rewrite <kernel>'s reads of <from> to <to>";
      "  param <name> <value>         add or update a scalar parameter default";
      "  input <name>                 declare an external input image";
      "  flush [scratch]              (re)plan fusion; 'scratch' skips the memos";
      "  plan                         show the last flushed plan";
      "  show                         show the builder state";
      "  help                         this text";
      "  quit                         leave the repl";
    ]

let parse_error fmt = Printf.ksprintf (fun m -> Error (Diag.v Diag.Parse_error m)) fmt

(* [add <name> = <expr>] is elaborated by synthesizing a one-definition
   pipeline that declares every image the builder can currently read as
   a pipeline input (and every parameter as a param decl — values are
   irrelevant, only the names must resolve), then extracting its single
   kernel.  The expression therefore gets the full DSL grammar for free,
   and every name it mentions resolves against the builder's state.  The
   extracted kernel still goes through [Lazy_pipeline.add]'s trial
   build, so builder-level rules (duplicate names, reading a reduction
   output, ...) are enforced exactly as for programmatic edits. *)
let elaborate_kernel lp ~name ~expr =
  match Lazy_pipeline.images lp with
  | [] ->
    Error
      (Diag.errorf Diag.Elab_error
         "nothing to read yet: declare an input first (input <name>)")
  | images -> (
    let buf = Buffer.create 256 in
    Printf.bprintf buf "pipeline repl(%s) {\n" (String.concat ", " images);
    Printf.bprintf buf "  size %d %d\n" (Lazy_pipeline.width lp)
      (Lazy_pipeline.height lp);
    List.iter
      (fun (p, _) -> Printf.bprintf buf "  param %s = 1.0\n" p)
      (Lazy_pipeline.params lp);
    Printf.bprintf buf "  %s = %s\n}\n" name expr;
    match Kfuse_dsl.Elaborate.parse_pipeline_diag (Buffer.contents buf) with
    | Error d -> Error { d with Diag.message = "in add: " ^ d.Diag.message }
    | Ok p ->
      if Pipeline.num_kernels p <> 1 then
        parse_error "add expects exactly one kernel definition"
      else Ok (Pipeline.kernel p 0))

let words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let strip_comment s =
  match String.index_opt s '#' with None -> s | Some i -> String.sub s 0 i

let parse lp line =
  let line = String.trim (strip_comment line) in
  match words line with
  | [] -> parse_error "empty command (try: help)"
  | "add" :: _ -> (
    (* Split on the first '=': the name is everything before it, the
       expression everything after — the expression itself may contain
       further '='-free DSL syntax only, so first-split is unambiguous. *)
    match String.index_opt line '=' with
    | None -> parse_error "add needs '=': add <name> = <expr>"
    | Some i -> (
      let lhs = String.trim (String.sub line 3 (i - 3)) in
      let expr = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
      match (words lhs, expr) with
      | [ name ], expr when expr <> "" ->
        Result.map (fun k -> Edit (Edits.Append k)) (elaborate_kernel lp ~name ~expr)
      | _ -> parse_error "add needs one name and an expression: add <name> = <expr>"))
  | [ ("del" | "delete"); name ] -> Ok (Edit (Edits.Delete name))
  | [ "retarget"; kernel; from_; to_ ] ->
    Ok (Edit (Edits.Retarget { kernel; from_; to_ }))
  | [ "param"; name; value ] | [ "param"; name; "="; value ] -> (
    match float_of_string_opt value with
    | Some v -> Ok (Edit (Edits.Set_param (name, v)))
    | None -> parse_error "param value %S is not a number" value)
  | [ "input"; name ] -> Ok (Add_input name)
  | [ "flush" ] -> Ok (Flush { scratch = false })
  | [ "flush"; "scratch" ] -> Ok (Flush { scratch = true })
  | [ "plan" ] -> Ok Plan
  | [ "show" ] -> Ok Show
  | [ "help" ] -> Ok Help
  | [ ("quit" | "exit") ] -> Ok Quit
  | verb :: _ -> parse_error "unknown or malformed command %S (try: help)" verb

let label = function
  | Edit _ -> "edit"
  | Add_input _ -> "input"
  | Flush _ -> "flush"
  | Plan -> "plan"
  | Show -> "show"
  | Help -> "help"
  | Quit -> "quit"

let apply lp = function
  | Edit e -> (
    match Edits.apply lp e with
    | Ok () -> Ok (Edits.to_string e)
    | Error _ as err -> err)
  | Add_input n -> (
    match Lazy_pipeline.add_input lp n with
    | Ok () -> Ok (Printf.sprintf "input %s" n)
    | Error _ as err -> err)
  | (Flush _ | Plan | Show | Help | Quit) as c ->
    Error
      (Diag.errorf Diag.Protocol_error
         "%S is not an edit (lazy_edit accepts add/del/retarget/param/input)"
         (label c))
