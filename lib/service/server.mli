(** The [kfused] server: fusion-as-a-service over a Unix-domain socket,
    built to stay correct under overload, slow peers, and kill signals.

    One accept loop (its own thread) admits each connection into a
    bounded worker model: [max_conns] long-lived worker threads serve
    connections, and up to [queue] more wait in a bounded admission
    queue.  When both are full the connection is {e shed} with a typed
    [KF0803 overloaded] reply instead of queueing forever.  All workers
    share one {!Kfuse_cache.Plan_cache} and one {!Kfuse_util.Pool}: the
    pool is batch-exclusive, so concurrent plans degrade gracefully to
    serial execution inside their own thread rather than queueing
    behind each other.

    Every request runs under a wall-clock deadline
    ([request_timeout_ms], also armed as [SO_RCVTIMEO]/[SO_SNDTIMEO] on
    the connection): a fusion search is budget-capped to the remaining
    deadline, and a slow-loris or vanished peer frees its worker slot
    with a [KF0804 request timeout] reply — counted as
    [requests_timed_out].

    Robustness: a failed request produces an error {e response}, not a
    dead server; a connection failing mid-write is dropped; a response
    that would overrun {!Protocol.max_frame} becomes a typed [KF0801]
    error reply.  Chaos fault points ({!Kfuse_util.Faults.hit}) let
    tests and CI prove each degradation: ["service.accept"] drops one
    connection ([connections_dropped]), ["service.shed"] forces an
    admission shed ([requests_shed]), ["proto.torn_frame"] /
    ["proto.slow_write"] / ["proto.drop_reply"] corrupt, delay, or
    swallow one reply without wedging the worker, and ["exec.crash"] /
    ["exec.hang"] / ["exec.oom"] make a supervised native execution
    misbehave.

    Native execution is sandboxed by default
    ([exec_sandbox = Supervisor.Sandboxed]): generated code runs as a
    supervised fork/exec child under rlimits and a deadline watchdog
    ({!Kfuse_exec.Supervisor}), so a [fuse_exec] whose generated code
    segfaults, loops, or exhausts memory yields a typed
    [KF0905]/[KF0906]/[KF0907] reply — never a dead or wedged daemon.
    Each such failure writes a crash artifact (a fuzz-corpus-compatible
    [.pipe] file) under [crash_dir] and strikes a per-fingerprint
    circuit breaker: after [breaker_threshold] consecutive failures the
    plan is quarantined ([quarantined_plans] gauge) and subsequent
    requests degrade to the {!Kfuse_ir.Eval} interpreter
    (["mode" = "interpreter"] plus a warning in the reply) until a
    half-open probe after [breaker_cooldown_ms] succeeds. *)

module Diag := Kfuse_util.Diag
module Supervisor := Kfuse_exec.Supervisor

type t

(** [start ~socket ~cache ~pool ?budget_ms ?max_conns ?queue
    ?request_timeout_ms ?drain_timeout_ms ()] binds [socket] (a stale
    socket file left by a dead server is replaced; a live one is
    refused), spawns the worker pool and the accept thread, and
    returns.

    [budget_ms] is the default per-request fusion budget; a request's
    own ["budget_ms"] overrides it, and both are capped by the
    remaining request deadline.  [max_conns] (default 16, >= 1) bounds
    concurrently served connections; [queue] (default 64, >= 0) bounds
    the admission queue beyond which connections are shed with
    [KF0803].  [request_timeout_ms] (default 30s; <= 0 disables) is the
    per-request wall-clock deadline and socket timeout.
    [drain_timeout_ms] (default 5s) bounds how long {!wait} lets
    in-flight handlers finish before forcibly shutting their
    connections down.

    [exec_sandbox] (default {!Supervisor.Sandboxed}) selects how
    [fuse_exec] runs generated code; [exec_limits] (default
    {!Supervisor.default_limits}) are the rlimits for sandboxed
    children.  [crash_dir] (default [crash-corpus] under
    {!Kfuse_cache.Plan_cache.default_dir}) receives crash artifacts.
    [breaker_threshold] (default 3, >= 1) consecutive supervised
    failures quarantine a plan fingerprint; [breaker_cooldown_ms]
    (default 60s) is the quarantine period before a half-open probe.

    Streaming ([stream_open]/[stream_push]/[stream_close], see
    {!Protocol}): [max_streams] (default 64, >= 1) bounds concurrently
    open sessions — an open beyond it is shed with [KF0803].
    [stream_queue] (default 4, >= 1) bounds each session's in-flight
    pushes — a push beyond it is shed with [KF0805] {e before} touching
    the session's temporal state, so the client can retry it verbatim.
    [stream_idle_ms] (default 60s; <= 0 disables) is the idle-expiry
    horizon: sessions untouched for longer are reaped lazily (on the
    next stream/stats/metrics op), releasing their pinned native plan.
    Each stream compiles its plan exactly once at [stream_open] and
    reuses the pinned artifact for every frame
    ({!Kfuse_exec.Native.prepare}/{!Kfuse_exec.Native.run_plan});
    per-frame failures fall back to the interpreter on the same
    bindings, so a stream's pixel history stays bit-exact across
    backend changes. *)
val start :
  socket:string ->
  cache:Kfuse_cache.Plan_cache.t ->
  pool:Kfuse_util.Pool.t ->
  ?budget_ms:float ->
  ?max_conns:int ->
  ?queue:int ->
  ?request_timeout_ms:float ->
  ?drain_timeout_ms:float ->
  ?exec_sandbox:Supervisor.policy ->
  ?exec_limits:Supervisor.limits ->
  ?crash_dir:string ->
  ?breaker_threshold:int ->
  ?breaker_cooldown_ms:float ->
  ?max_streams:int ->
  ?stream_queue:int ->
  ?stream_idle_ms:float ->
  unit ->
  (t, Diag.t) result

(** [wait t] blocks until the server stops (a ["shutdown"] request,
    {!stop}, or {!signal_stop}), drains in-flight handlers up to the
    drain timeout — past it, their connections are forcibly shut down —
    then joins every worker thread (zero leaked handler threads) and
    removes the socket file. *)
val wait : t -> unit

(** [stop t] initiates shutdown and {!wait}s.  Idempotent. *)
val stop : t -> unit

(** [signal_stop t] requests shutdown without blocking.  It is a single
    atomic store — no locks, no allocation — so it is safe to call from
    an asynchronous signal handler; this is what [kfusec serve] installs
    for SIGTERM/SIGINT.  The thread blocked in {!wait} notices the
    request (within ~20ms), stops the accept loop, and performs the
    drain. *)
val signal_stop : t -> unit

(** [in_flight t] is the number of connections currently being served
    plus those waiting in the admission queue — 0 after a clean drain
    (exposed for the chaos harness's leak checks). *)
val in_flight : t -> int

val socket : t -> string
val cache : t -> Kfuse_cache.Plan_cache.t
val metrics : t -> Metrics.t

(** [load_pipeline f] resolves a fuse request to its pipeline exactly
    the way request handling does: a registry app by name (optionally
    re-instantiated at [size]), or parsed+elaborated DSL [source].
    Exposed so the sharded router maps a request to the {e same}
    pipeline — and hence the same rename-invariant fingerprint keyspace
    — as the shard that will serve it. *)
val load_pipeline :
  ?size:int * int -> Protocol.fuse_request -> (Kfuse_ir.Pipeline.t, Diag.t) result

(** [claim_socket path] prepares [path] for a fresh [bind]: absent is
    fine; an existing socket file is probed with a connect — no listener
    (stale leftover of a crashed server) is unlinked, a live listener is
    a [KF0802] refusal, a non-socket file is a [KF0101].  {!start} runs
    this itself for its own socket; it is exposed so the sharded
    topology can sweep a whole fleet's [shard-<i>.sock] files before
    respawning shards. *)
val claim_socket : string -> (unit, Diag.t) result
