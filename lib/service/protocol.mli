(** The [kfused] wire protocol: length-prefixed JSON over a Unix-domain
    socket.

    Framing: each message is a 4-byte big-endian payload length followed
    by that many bytes of UTF-8 JSON.  Both directions use the same
    framing; a connection carries any number of request/response pairs,
    in order.  Frames above {!max_frame} are rejected as
    {!Kfuse_util.Diag.Protocol_error} (a defense against garbage
    writers, not a protocol limit).

    Requests are objects with an ["op"] field:
    - [{"op":"fuse", ...}] — plan a pipeline.  Either ["app"] (a
      registry name) or ["source"] (DSL text).  Optional: ["strategy"],
      ["c_mshared"], ["gamma"], ["tg"], ["optimize"], ["inline"],
      ["budget_ms"], ["no_cache"].
    - [{"op":"stats"}] — cache + latency counters as JSON.
    - [{"op":"metrics"}] — Prometheus-style text exposition (in the
      ["text"] field of the response).
    - [{"op":"ping"}] — liveness.
    - [{"op":"shutdown"}] — orderly server stop.

    Responses carry ["status"]: ["ok"] or ["error"] (with ["code"] —
    a stable [KFxxxx] id — and ["message"]). *)

module Diag := Kfuse_util.Diag

(** Maximum accepted frame payload (16 MiB). *)
val max_frame : int

(** {1 Framing} *)

(** [send fd v] writes one frame.  @raise Unix.Unix_error on I/O
    failure (the peer vanished). *)
val send : Unix.file_descr -> Jsonx.t -> unit

(** [recv fd] reads one frame; [Ok None] on clean EOF at a frame
    boundary; [Error] on oversized/truncated frames or invalid JSON. *)
val recv : Unix.file_descr -> (Jsonx.t option, Diag.t) result

(** {1 Requests} *)

type fuse_request = {
  app : string option;  (** registry name; mutually exclusive with [source] *)
  source : string option;  (** DSL text *)
  strategy : Kfuse_fusion.Driver.strategy;
  c_mshared : float option;
  gamma : float option;
  tg : float option;
  optimize : bool;
  inline : bool;
  budget_ms : float option;
  no_cache : bool;  (** compute fresh, bypassing the plan cache *)
}

type request =
  | Fuse of fuse_request
  | Stats
  | Metrics
  | Ping
  | Shutdown

val request_to_json : request -> Jsonx.t

(** [request_of_json v] validates shape and field types; unknown ops and
    malformed fields are {!Kfuse_util.Diag.Protocol_error}s. *)
val request_of_json : Jsonx.t -> (request, Diag.t) result

(** {1 Responses} *)

(** [ok fields] is [{"status":"ok", ...fields}]. *)
val ok : (string * Jsonx.t) list -> Jsonx.t

(** [error d] renders a diagnostic as an error response. *)
val error : Diag.t -> Jsonx.t

(** [result v] splits a response on its ["status"] field. *)
val result : Jsonx.t -> (Jsonx.t, Diag.t) result
