(* The plan cache: canonical fingerprints, the LRU, and the two-tier
   store.  The load-bearing properties:

   - the structural fingerprint is invariant under kernel renaming and
     parameter reordering (qcheck, random pipelines), while the exact
     fingerprint is not — so isomorphic-but-renamed requests are
     detected and recomputed, never translated;
   - any semantic change (size, constants, borders, config, strategy)
     changes the key;
   - a cached report is bit-identical (equal marshaled bytes) to a
     fresh [Driver.run_result], through both tiers;
   - disk corruption degrades to a miss, and degraded reports are
     never stored. *)

module F = Kfuse_fusion
module Cache = Kfuse_cache
module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Mask = Kfuse_image.Mask
module Border = Kfuse_image.Border
module Faults = Kfuse_util.Faults

let config = F.Config.default

(* ---- random pipelines, with scalar params in some bodies ---- *)

let border_gen =
  QCheck.Gen.oneofl [ Border.Clamp; Border.Mirror; Border.Repeat; Border.Constant 0.5 ]

let kernels_gen =
  QCheck.Gen.(
    let* n = int_range 2 6 in
    let* seeds = list_repeat n (pair (int_range 0 3) (pair (int_range 0 100) border_gen)) in
    let kernels = ref [] in
    let names = ref [ "in" ] in
    List.iteri
      (fun i (kind, (pick, border)) ->
        let name = Printf.sprintf "k%d" i in
        let prev = List.nth !names (pick mod List.length !names) in
        let body =
          match kind with
          | 0 -> Expr.(input prev + (input "in" * Const 0.5))
          | 1 -> Expr.(input prev * input prev)
          | 2 -> Expr.((input prev * param "gain") + param "bias")
          | _ -> Expr.conv ~border Mask.gaussian_3x3 prev
        in
        let inputs = Expr.images body in
        kernels := Kernel.map ~name ~inputs body :: !kernels;
        names := name :: !names)
      seeds;
    return (List.rev !kernels))

let params = [ ("gain", 1.25); ("bias", -3.0) ]

let pipeline_of kernels =
  Pipeline.create ~name:"rand" ~width:13 ~height:11 ~params ~inputs:[ "in" ] kernels

let kernels_arb =
  QCheck.make kernels_gen ~print:(fun ks ->
      Format.asprintf "%a" Pipeline.pp (pipeline_of ks))

(* Rename every kernel (and its uses) with a collision-free mapping that
   also reverses the lexicographic order, and reverse the param list. *)
let renamed_pipeline kernels =
  let rename n = if n = "in" then n else Printf.sprintf "zz%03d" (99 - int_of_string (String.sub n 1 (String.length n - 1))) in
  let ks =
    List.map
      (fun (k : Kernel.t) ->
        let op =
          match k.Kernel.op with
          | Kernel.Map e -> Kernel.Map (Expr.rename_images rename e)
          | Kernel.Reduce { init; combine; arg } ->
            Kernel.Reduce { init; combine; arg = Expr.rename_images rename arg }
        in
        Kernel.create ~name:(rename k.Kernel.name) ~inputs:(List.map rename k.Kernel.inputs) op)
      kernels
  in
  Pipeline.create ~name:"other" ~width:13 ~height:11 ~params:(List.rev params)
    ~inputs:[ "in" ] ks

let prop_structural_rename_invariant =
  QCheck.Test.make ~name:"structural fingerprint survives renaming + param reorder"
    ~count:200 kernels_arb (fun ks ->
      let p = pipeline_of ks and q = renamed_pipeline ks in
      String.equal (Cache.Fingerprint.structural p) (Cache.Fingerprint.structural q))

let prop_exact_sees_renames =
  QCheck.Test.make ~name:"exact fingerprint distinguishes renamed pipelines" ~count:200
    kernels_arb (fun ks ->
      let p = pipeline_of ks and q = renamed_pipeline ks in
      not (String.equal (Cache.Fingerprint.exact p) (Cache.Fingerprint.exact q)))

let prop_structural_sees_edits =
  QCheck.Test.make ~name:"structural fingerprint distinguishes semantic edits" ~count:200
    kernels_arb (fun ks ->
      let p = pipeline_of ks in
      let wider =
        Pipeline.create ~name:"rand" ~width:14 ~height:11 ~params ~inputs:[ "in" ] ks
      in
      let retuned =
        Pipeline.create ~name:"rand" ~width:13 ~height:11
          ~params:[ ("gain", 1.25); ("bias", -2.0) ]
          ~inputs:[ "in" ] ks
      in
      let s = Cache.Fingerprint.structural p in
      (not (String.equal s (Cache.Fingerprint.structural wider)))
      && not (String.equal s (Cache.Fingerprint.structural retuned)))

(* ---- plan keys ---- *)

let test_plan_key_requests () =
  let p = Kfuse_apps.Harris.pipeline () in
  let key ?(config = config) ?(strategy = F.Driver.Mincut) ?optimize ?inline () =
    (Cache.Fingerprint.plan_key ~config ~strategy ?optimize ?inline p).Cache.Fingerprint.structural
  in
  let base = key () in
  Alcotest.(check bool) "same request, same key" true (String.equal base (key ()));
  Alcotest.(check bool) "strategy changes the key" false
    (String.equal base (key ~strategy:F.Driver.Greedy ()));
  Alcotest.(check bool) "config changes the key" false
    (String.equal base (key ~config:{ config with F.Config.tg = 100.0 } ()));
  Alcotest.(check bool) "optimize changes the key" false
    (String.equal base (key ~optimize:true ()));
  Alcotest.(check bool) "inline changes the key" false
    (String.equal base (key ~inline:true ()))

(* ---- LRU ---- *)

let test_lru () =
  let l = Cache.Lru.create ~capacity:2 () in
  Cache.Lru.put l "a" 1;
  Cache.Lru.put l "b" 2;
  Alcotest.(check (option int)) "find a" (Some 1) (Cache.Lru.find l "a");
  (* "a" is now most recent, so inserting "c" evicts "b". *)
  Cache.Lru.put l "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Cache.Lru.find l "b");
  Alcotest.(check (option int)) "a kept" (Some 1) (Cache.Lru.find l "a");
  Alcotest.(check (option int)) "c kept" (Some 3) (Cache.Lru.find l "c");
  Alcotest.(check (list string)) "MRU order" [ "c"; "a" ] (Cache.Lru.keys l);
  let c = Cache.Lru.counters l in
  Alcotest.(check int) "hits" 3 c.Cache.Lru.hits;
  Alcotest.(check int) "misses" 1 c.Cache.Lru.misses;
  Alcotest.(check int) "evictions" 1 c.Cache.Lru.evictions

(* ---- the cache proper ---- *)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "kfuse-test-cache-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  let rec rm_rf path =
    match Unix.lstat path with
    | exception Unix.Unix_error _ -> ()
    | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
    | _ -> ( try Sys.remove path with Sys_error _ -> ())
  in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let fresh_report p =
  match F.Driver.run_result config F.Driver.Mincut p with
  | Ok r -> r
  | Error d -> Alcotest.failf "driver failed: %s" (Kfuse_util.Diag.to_string d)

let bytes_of (r : F.Driver.report) = Marshal.to_string r []

let test_cached_bit_identical () =
  with_temp_dir @@ fun dir ->
  let p = Kfuse_apps.Harris.pipeline () in
  let key = Cache.Fingerprint.plan_key ~config ~strategy:F.Driver.Mincut p in
  let cache = Cache.Plan_cache.create ~dir () in
  let compute () = F.Driver.run_result config F.Driver.Mincut p in
  (match Cache.Plan_cache.find_or_compute cache key compute with
  | Ok (_, Cache.Plan_cache.Miss) -> ()
  | _ -> Alcotest.fail "first lookup should be a plain miss");
  let fresh = fresh_report p in
  (match Cache.Plan_cache.find_or_compute cache key compute with
  | Ok (r, Cache.Plan_cache.Hit_memory) ->
    Alcotest.(check bool) "memory hit bit-identical" true
      (String.equal (bytes_of fresh) (bytes_of r))
  | _ -> Alcotest.fail "second lookup should hit memory");
  (* A fresh instance over the same dir models a restarted process. *)
  (match Cache.Plan_cache.find (Cache.Plan_cache.create ~dir ()) key with
  | Some (r, Cache.Plan_cache.Hit_disk) ->
    Alcotest.(check bool) "disk hit bit-identical" true
      (String.equal (bytes_of fresh) (bytes_of r))
  | _ -> Alcotest.fail "restarted lookup should hit disk");
  let s = Cache.Plan_cache.stats cache in
  Alcotest.(check int) "one memory hit" 1 s.Cache.Plan_cache.hits;
  Alcotest.(check int) "one miss" 1 s.Cache.Plan_cache.misses;
  Alcotest.(check int) "one store" 1 s.Cache.Plan_cache.stores

let test_iso_request_recomputed () =
  let p = Kfuse_apps.Harris.pipeline () in
  let q =
    (* Same structure, different kernel names: lives under the same
       structural slot but must not be served p's report. *)
    Pipeline.create ~name:"renamed" ~width:p.Pipeline.width ~height:p.Pipeline.height
      ~channels:p.Pipeline.channels ~params:p.Pipeline.params ~inputs:p.Pipeline.inputs
      (List.map
         (fun (k : Kernel.t) ->
           let rename n = if List.mem n p.Pipeline.inputs then n else "x_" ^ n in
           let op =
             match k.Kernel.op with
             | Kernel.Map e -> Kernel.Map (Expr.rename_images rename e)
             | Kernel.Reduce { init; combine; arg } ->
               Kernel.Reduce { init; combine; arg = Expr.rename_images rename arg }
           in
           Kernel.create ~name:(rename k.Kernel.name) ~inputs:(List.map rename k.Kernel.inputs)
             op)
         (Array.to_list p.Pipeline.kernels))
  in
  let kp = Cache.Fingerprint.plan_key ~config ~strategy:F.Driver.Mincut p in
  let kq = Cache.Fingerprint.plan_key ~config ~strategy:F.Driver.Mincut q in
  Alcotest.(check bool) "same structural slot" true
    (String.equal kp.Cache.Fingerprint.structural kq.Cache.Fingerprint.structural);
  Alcotest.(check bool) "different exact fingerprints" false
    (String.equal kp.Cache.Fingerprint.exact kq.Cache.Fingerprint.exact);
  let cache = Cache.Plan_cache.create () in
  Cache.Plan_cache.store cache kp (fresh_report p);
  (match Cache.Plan_cache.find cache kq with
  | None -> ()
  | Some _ -> Alcotest.fail "a renamed pipeline must not be served the original's report");
  let s = Cache.Plan_cache.stats cache in
  Alcotest.(check int) "counted as iso miss" 1 s.Cache.Plan_cache.iso_misses;
  (* The recomputed report is for q's own names. *)
  match Cache.Plan_cache.find_or_compute cache kq (fun () -> F.Driver.run_result config F.Driver.Mincut q) with
  | Ok (r, Cache.Plan_cache.Miss_iso) ->
    Alcotest.(check bool) "recomputed for q" true
      (String.equal (bytes_of (fresh_report q)) (bytes_of r))
  | _ -> Alcotest.fail "expected an iso-miss recompute"

let test_corrupt_disk_entry () =
  with_temp_dir @@ fun dir ->
  let p = Kfuse_apps.Sobel.pipeline () in
  let key = Cache.Fingerprint.plan_key ~config ~strategy:F.Driver.Mincut p in
  Cache.Plan_cache.store (Cache.Plan_cache.create ~dir ()) key (fresh_report p);
  let path = Filename.concat dir (key.Cache.Fingerprint.structural ^ ".plan") in
  Alcotest.(check bool) "entry on disk" true (Sys.file_exists path);
  Out_channel.with_open_bin path (fun oc -> output_string oc "kfuse-plan 1 garbage\nnope\n");
  let cache = Cache.Plan_cache.create ~dir () in
  (match Cache.Plan_cache.find cache key with
  | None -> ()
  | Some _ -> Alcotest.fail "corrupt entry must be a miss");
  let s = Cache.Plan_cache.stats cache in
  Alcotest.(check int) "corruption counted" 1 s.Cache.Plan_cache.disk_errors;
  Alcotest.(check bool) "corrupt file removed" false (Sys.file_exists path)

let test_degraded_not_stored () =
  let p = Kfuse_apps.Harris.pipeline () in
  let key = Cache.Fingerprint.plan_key ~config ~strategy:F.Driver.Mincut p in
  let degraded =
    Faults.with_spec "driver.strategy@1" (fun () ->
        match F.Driver.run_result config F.Driver.Mincut p with
        | Ok r -> r
        | Error d -> Alcotest.failf "driver failed: %s" (Kfuse_util.Diag.to_string d))
  in
  Alcotest.(check bool) "fault degraded the run" true degraded.F.Driver.degraded;
  let cache = Cache.Plan_cache.create () in
  Cache.Plan_cache.store cache key degraded;
  (match Cache.Plan_cache.find cache key with
  | None -> ()
  | Some _ -> Alcotest.fail "degraded reports must not be cached");
  Alcotest.(check int) "no store recorded" 0
    (Cache.Plan_cache.stats cache).Cache.Plan_cache.stores

(* The sharded topology's L2 contract: several kfused shard processes
   share one cache directory, so concurrent atomic tmp+rename stores of
   the same and different entries must never corrupt a read and never
   double-count a hit.  Modeled here with two instances (processes) and
   racing threads — the same code path a multi-process fleet takes,
   since the store is a plain directory with no in-process locks. *)
let test_shared_dir_concurrent_stores () =
  with_temp_dir @@ fun dir ->
  let a = Cache.Plan_cache.create ~dir () in
  let b = Cache.Plan_cache.create ~dir () in
  let pipelines =
    [|
      Kfuse_apps.Harris.pipeline ();
      Kfuse_apps.Sobel.pipeline ();
      Kfuse_apps.Unsharp.pipeline ();
    |]
  in
  let keys =
    Array.map (fun p -> Cache.Fingerprint.plan_key ~config ~strategy:F.Driver.Mincut p) pipelines
  in
  let reports = Array.map fresh_report pipelines in
  let rounds = 20 in
  let threads =
    List.concat_map
      (fun cache ->
        List.init 2 (fun t ->
            Thread.create
              (fun () ->
                for r = 0 to rounds - 1 do
                  let i = (r + t) mod Array.length keys in
                  Cache.Plan_cache.store cache keys.(i) reports.(i);
                  Thread.yield ()
                done)
              ()))
      [ a; b ]
  in
  List.iter Thread.join threads;
  (* Every entry reads back bit-identical through a third instance (a
     fresh process over the same directory), despite the write storm. *)
  let reader = Cache.Plan_cache.create ~dir () in
  Array.iteri
    (fun i key ->
      match Cache.Plan_cache.find reader key with
      | Some (r, Cache.Plan_cache.Hit_disk) ->
        Alcotest.(check bool) "disk entry bit-identical after racing stores" true
          (String.equal (bytes_of reports.(i)) (bytes_of r))
      | Some (_, _) -> Alcotest.fail "expected a disk hit"
      | None -> Alcotest.failf "entry %d lost in the write race" i)
    keys;
  (* No torn reads anywhere: the racing writers never tripped a disk
     error, and hit accounting is exact — the reader saw one disk hit
     per entry, no double counting. *)
  List.iter
    (fun c ->
      Alcotest.(check int) "no disk errors" 0
        (Cache.Plan_cache.stats c).Cache.Plan_cache.disk_errors)
    [ a; b; reader ];
  let rs = Cache.Plan_cache.stats reader in
  Alcotest.(check int) "reader hit disk exactly once per entry" (Array.length keys)
    rs.Cache.Plan_cache.disk_hits;
  Alcotest.(check int) "reader recorded no memory hits" 0 rs.Cache.Plan_cache.hits

let suite =
  List.map
    (fun t -> QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20260806 |]) t)
    [ prop_structural_rename_invariant; prop_exact_sees_renames; prop_structural_sees_edits ]
  @ [
      Alcotest.test_case "plan keys separate distinct requests" `Quick test_plan_key_requests;
      Alcotest.test_case "lru: bump, evict, counters" `Quick test_lru;
      Alcotest.test_case "cached report is bit-identical (both tiers)" `Quick
        test_cached_bit_identical;
      Alcotest.test_case "renamed pipeline is recomputed, not translated" `Quick
        test_iso_request_recomputed;
      Alcotest.test_case "corrupt disk entry degrades to a miss" `Quick
        test_corrupt_disk_entry;
      Alcotest.test_case "degraded reports are not cached" `Quick test_degraded_not_stored;
      Alcotest.test_case "shared dir: concurrent stores stay atomic" `Quick
        test_shared_dir_concurrent_stores;
    ]
