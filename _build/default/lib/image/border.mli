(** Border-handling modes for out-of-image accesses.

    Local operators read windows that extend past the image bounds near
    the border (the halo region, Section IV-B).  Each kernel declares how
    such accesses resolve; Hipacc supports the same set of modes.  Correct
    composition of border modes under fusion is the subject of the
    paper's index-exchange method (Figures 4 and 5). *)

type mode =
  | Clamp  (** coordinates are clamped to the nearest valid pixel *)
  | Mirror  (** coordinates reflect at the border (no repeated edge pixel) *)
  | Repeat  (** coordinates wrap around (periodic image) *)
  | Constant of float  (** out-of-border reads yield a fixed value *)
  | Undefined
      (** out-of-border reads are unspecified; kernels with this mode may
          only be evaluated on the interior region *)

(** Result of resolving a coordinate against an image extent. *)
type resolved =
  | Inside of int * int  (** valid coordinates after exchange *)
  | Const_value of float  (** [Constant] mode outside the image *)
  | Undef  (** [Undefined] mode outside the image *)

(** [resolve mode ~width ~height x y] resolves the possibly-out-of-bounds
    coordinate [(x, y)].  In-bounds coordinates always resolve to
    [Inside (x, y)] regardless of mode.
    @raise Invalid_argument if [width <= 0] or [height <= 0]. *)
val resolve : mode -> width:int -> height:int -> int -> int -> resolved

(** [resolve_axis mode n i] resolves a single coordinate against extent
    [n]; [None] means the mode does not map it to a valid index
    ([Constant] / [Undefined] outside). *)
val resolve_axis : mode -> int -> int -> int option

(** [equal a b] structural equality of modes. *)
val equal : mode -> mode -> bool

(** [to_string mode] is a short lowercase name ("clamp", "mirror", ...). *)
val to_string : mode -> string

val pp : Format.formatter -> mode -> unit
