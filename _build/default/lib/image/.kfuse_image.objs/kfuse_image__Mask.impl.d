lib/image/mask.ml: Array Float Format List
