(* Benchmark harness entry point.

   Usage: main.exe [-j N] [experiment ...]
   Experiments: fig3 fig4 fig6 tab1 tab2 ablate eventsim cache shard replan micro
   With no experiment argument, everything runs in paper order.

   -j N sets the domain-pool size used for the fusion search, the
   500-run measurement simulation, and the app x device x impl grid
   (default: Domain.recommended_domain_count; -j 1 is fully serial).
   Results are bit-identical for every N. *)

let experiments =
  [
    ("fig3", Exp_fig3.run);
    ("fig4", Exp_fig4.run);
    ("fig6", Exp_fig6.run);
    ("fig6-csv", Exp_fig6.run_csv);
    ("tab1", Exp_tables.tab1);
    ("tab2", Exp_tables.tab2);
    ("ablate", Exp_ablate.run);
    ("eventsim", Exp_eventsim.run);
    ("cache", Exp_cache.run);
    ("shard", Exp_shard.run);
    ("replan", Exp_replan.run);
    ("micro", Micro.run);
  ]

(* Experiments that read the measurement grid; with a parallel pool the
   grid is warmed up front so the cells fan out over the domains. *)
let grid_consumers = [ "fig6"; "fig6-csv"; "tab1"; "tab2"; "ablate" ]

let usage () =
  Printf.eprintf "usage: main.exe [-j N] [experiment ...]\navailable: %s\n"
    (String.concat " " (List.map fst experiments));
  exit 1

let parse_args argv =
  let jobs = ref (Kfuse_util.Pool.default_size ()) in
  let names = ref [] in
  let bad fmt = Printf.ksprintf (fun m -> Printf.eprintf "main.exe: %s\n" m; usage ()) fmt in
  let rec go = function
    | [] -> ()
    | "-j" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n >= 1 ->
        jobs := n;
        go rest
      | _ -> bad "-j expects a positive integer, got %S" n)
    | [ "-j" ] -> bad "-j expects a positive integer"
    | arg :: rest when String.length arg > 2 && String.sub arg 0 2 = "-j" -> (
      match int_of_string_opt (String.sub arg 2 (String.length arg - 2)) with
      | Some n when n >= 1 ->
        jobs := n;
        go rest
      | _ -> bad "bad job count in %S" arg)
    | name :: rest ->
      if List.mem_assoc name experiments then begin
        names := name :: !names;
        go rest
      end
      else bad "unknown experiment %S" name
  in
  go (List.tl (Array.to_list argv));
  (!jobs, List.rev !names)

let () =
  let jobs, requested = parse_args Sys.argv in
  let requested =
    match requested with
    | [] ->
      (* Everything except the CSV variant (exists for piping) and the
         shard topology bench (spawns real server subprocesses). *)
      List.filter (fun n -> n <> "fig6-csv" && n <> "shard") (List.map fst experiments)
    | names -> names
  in
  Kfuse_util.Pool.with_pool jobs (fun pool ->
      Runner.set_pool pool;
      if
        Kfuse_util.Pool.size pool > 1
        && List.exists (fun n -> List.mem n grid_consumers) requested
      then Runner.precompute ();
      List.iter (fun name -> (List.assoc name experiments) ()) requested)
