(* Protocol chaos harness for the kfused service.

   Each test injects one failure mode — overload, a slow-loris peer, a
   torn/dropped/delayed reply, an expired request budget — and proves
   the degradation contract: the client gets a typed KFxxxx error (or a
   transparent retry succeeds), the failure is counted in metrics, and
   the server keeps serving afterwards.  The final hammer arms several
   protocol faults at once under concurrent clients. *)

module Svc = Kfuse_service
module Jsonx = Svc.Jsonx
module Protocol = Svc.Protocol
module Cache = Kfuse_cache
module Faults = Kfuse_util.Faults
module Diag = Kfuse_util.Diag
module Sup = Kfuse_exec.Supervisor

let code_of (d : Diag.t) = Diag.code_id d.Diag.code

let temp_socket () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "kfused-chaos-%d-%d.sock" (Unix.getpid ()) (Random.bits ()))

let temp_dir prefix =
  let dir = Filename.temp_file prefix "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  dir

let with_server ?max_conns ?queue ?request_timeout_ms ?drain_timeout_ms ?exec_limits
    ?crash_dir ?breaker_threshold ?breaker_cooldown_ms f =
  let socket = temp_socket () in
  let cache = Cache.Plan_cache.create () in
  (* Exec chaos tests pass an explicit throwaway [crash_dir]; everything
     else gets one too, so no test pollutes the operator's real
     crash-corpus directory. *)
  let crash_dir =
    match crash_dir with Some d -> d | None -> temp_dir "kfuse-chaos-crash"
  in
  Kfuse_util.Pool.with_pool 2 (fun pool ->
      match
        Svc.Server.start ~socket ~cache ~pool ?max_conns ?queue ?request_timeout_ms
          ?drain_timeout_ms ?exec_limits ~crash_dir ?breaker_threshold
          ?breaker_cooldown_ms ()
      with
      | Error d -> Alcotest.failf "server start failed: %s" (Diag.to_string d)
      | Ok server ->
        Fun.protect ~finally:(fun () -> Svc.Server.stop server) (fun () -> f socket server))

let fuse_req ?budget_ms ?(strict = false) app =
  {
    Protocol.app = Some app;
    source = None;
    strategy = Kfuse_fusion.Driver.Mincut;
    c_mshared = None;
    gamma = None;
    tg = None;
    optimize = false;
    inline = false;
    strict;
    budget_ms;
    no_cache = false;
  }

let expect_ok = function
  | Ok v -> v
  | Error d -> Alcotest.failf "request failed: %s" (Diag.to_string d)

let field name v =
  match Jsonx.member name v with
  | Some f -> f
  | None -> Alcotest.failf "response lacks %S: %s" name (Jsonx.to_string v)

(* ---- admission control ---- *)

let test_overload_shed () =
  (* One worker, zero queue, no request timeout: a connection that holds
     the only slot forces the next one to be shed with KF0803. *)
  with_server ~max_conns:1 ~queue:0 ~request_timeout_ms:0.0 @@ fun socket server ->
  Svc.Client.with_connection ~socket (fun holder ->
      (* The ping round-trip proves a worker picked this connection up,
         so the slot is provably busy before the second client arrives. *)
      match Svc.Client.ping holder with
      | Error _ as e -> e
      | Ok () ->
        Alcotest.(check int) "gauge counts the held connection" 1
          (Svc.Metrics.gauge (Svc.Server.metrics server) "connections_active");
        (match Svc.Client.with_connection ~socket (fun c -> Svc.Client.ping c) with
        | Ok () -> Alcotest.fail "second connection should be shed"
        | Error d -> Alcotest.(check string) "shed with KF0803" "KF0803" (code_of d));
        Alcotest.(check int) "shed is counted" 1
          (Svc.Metrics.counter (Svc.Server.metrics server) "requests_shed");
        Ok ())
  |> expect_ok;
  (* The holder is gone: once the worker notices the close and frees the
     slot, the server serves again. *)
  let rec wait_idle tries =
    if Svc.Server.in_flight server > 0 && tries > 0 then begin
      Thread.delay 0.005;
      wait_idle (tries - 1)
    end
  in
  wait_idle 400;
  expect_ok (Svc.Client.with_connection ~socket (fun c -> Svc.Client.ping c))

let test_forced_shed_retried () =
  (* The ["service.shed"] chaos point sheds an admission exactly as if
     the queue were full; the client's retry policy recovers. *)
  with_server @@ fun socket server ->
  Faults.with_spec "service.shed@1" (fun () ->
      let retry = { Svc.Client.default_retry with attempts = 3; backoff_ms = 5.0 } in
      match Svc.Client.call ~socket ~retry Protocol.Ping with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "retry should have recovered: %s" (Diag.to_string d));
  Alcotest.(check int) "exactly one shed" 1
    (Svc.Metrics.counter (Svc.Server.metrics server) "requests_shed");
  (* Without retries the same shed surfaces as the typed KF0803. *)
  Faults.with_spec "service.shed@1" (fun () ->
      let retry = { Svc.Client.default_retry with attempts = 0 } in
      match Svc.Client.call ~socket ~retry Protocol.Ping with
      | Ok _ -> Alcotest.fail "shed without retries should fail"
      | Error d -> Alcotest.(check string) "typed shed" "KF0803" (code_of d))

let test_shutdown_not_retried () =
  (* Shutdown is not idempotent: a shed shutdown must NOT be retried. *)
  with_server @@ fun socket server ->
  Faults.with_spec "service.shed@1" (fun () ->
      let retry = { Svc.Client.default_retry with attempts = 3; backoff_ms = 5.0 } in
      match Svc.Client.call ~socket ~retry Protocol.Shutdown with
      | Ok _ -> Alcotest.fail "shed shutdown should not succeed via retry"
      | Error d -> Alcotest.(check string) "typed shed, no retry" "KF0803" (code_of d));
  (* The server is still up: the shed request was never replayed. *)
  expect_ok (Svc.Client.with_connection ~socket (fun c -> Svc.Client.ping c));
  ignore server

(* ---- request deadlines ---- *)

let test_slow_loris_times_out () =
  (* A peer that writes two header bytes and stalls must not pin its
     worker: the receive timeout frees the slot with a KF0804 reply. *)
  with_server ~request_timeout_ms:200.0 @@ fun socket server ->
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX socket);
  let n = Unix.write fd (Bytes.of_string "\x00\x00") 0 2 in
  Alcotest.(check int) "partial header written" 2 n;
  (match Protocol.recv fd with
  | Ok (Some v) -> (
    match Protocol.result v with
    | Error d -> Alcotest.(check string) "typed KF0804 reply" "KF0804" (code_of d)
    | Ok _ -> Alcotest.fail "a timed-out request must be an error reply")
  | Ok None -> Alcotest.fail "expected a KF0804 reply before the close"
  | Error d -> Alcotest.failf "reply not readable: %s" (Diag.to_string d));
  Alcotest.(check int) "timeout is counted" 1
    (Svc.Metrics.counter (Svc.Server.metrics server) "requests_timed_out");
  (* The slot is free again: the server still serves. *)
  expect_ok (Svc.Client.with_connection ~socket (fun c -> Svc.Client.ping c))

let test_budget_expiry_degrades () =
  (* A request whose fusion budget is already spent degrades to the
     baseline partition — an answer, not an error, not a hang. *)
  with_server @@ fun socket _server ->
  let reply =
    expect_ok
      (Svc.Client.with_connection ~socket (fun c ->
           Svc.Client.fuse c (fuse_req ~budget_ms:0.0 "harris")))
  in
  Alcotest.(check bool) "degraded under an expired budget" true
    (field "degraded" reply = Jsonx.Bool true);
  (* Degraded plans are never cached: a fresh unbudgeted request
     computes the real plan. *)
  let clean =
    expect_ok
      (Svc.Client.with_connection ~socket (fun c -> Svc.Client.fuse c (fuse_req "harris")))
  in
  Alcotest.(check bool) "fresh request is not degraded" true
    (field "degraded" clean = Jsonx.Bool false);
  Alcotest.(check bool) "and was computed, not cached" true
    (field "outcome" clean = Jsonx.Str "miss")

let test_strict_budget_is_error () =
  (* Under --strict the same overrun is a typed KF0603 error reply. *)
  with_server @@ fun socket _server ->
  (match
     Svc.Client.with_connection ~socket (fun c ->
         Svc.Client.fuse c (fuse_req ~budget_ms:0.0 ~strict:true "harris"))
   with
  | Ok _ -> Alcotest.fail "strict budget overrun must be an error"
  | Error d -> Alcotest.(check string) "KF0603 budget exhausted" "KF0603" (code_of d));
  (* The error reply did not wedge the server. *)
  expect_ok (Svc.Client.with_connection ~socket (fun c -> Svc.Client.ping c))

(* ---- protocol faults ---- *)

let test_torn_frame_is_typed () =
  (* The server writes half a reply frame and drops the connection: the
     client surfaces a typed mid-frame error, never hangs. *)
  with_server @@ fun socket _server ->
  Faults.with_spec "proto.torn_frame@1" (fun () ->
      match
        Svc.Client.with_connection ~socket ~timeout_ms:2_000.0 (fun c -> Svc.Client.ping c)
      with
      | Ok () -> Alcotest.fail "torn frame should surface as an error"
      | Error d -> Alcotest.(check string) "mid-frame EOF is typed" "KF0801" (code_of d));
  expect_ok (Svc.Client.with_connection ~socket (fun c -> Svc.Client.ping c))

let test_dropped_reply_is_typed () =
  (* The reply vanishes and the connection closes cleanly: a typed
     protocol error client-side, and the next connection is served. *)
  with_server @@ fun socket _server ->
  Faults.with_spec "proto.drop_reply@1" (fun () ->
      match Svc.Client.with_connection ~socket (fun c -> Svc.Client.ping c) with
      | Ok () -> Alcotest.fail "dropped reply should surface as an error"
      | Error d -> Alcotest.(check string) "close without reply is typed" "KF0801" (code_of d));
  expect_ok (Svc.Client.with_connection ~socket (fun c -> Svc.Client.ping c))

let test_slow_write_within_timeout () =
  (* A delayed reply still lands when the client's timeout allows. *)
  with_server @@ fun socket _server ->
  Faults.with_spec "proto.slow_write@1" (fun () ->
      expect_ok
        (Svc.Client.with_connection ~socket ~timeout_ms:2_000.0 (fun c ->
             Svc.Client.ping c)))

let test_oversized_send_refused () =
  (* A frame that would overrun [max_frame] is refused before a single
     byte hits the wire — the sender gets Diag.Fatal KF0801, and the
     peer never sees a half-written monster. *)
  let a, b = Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ a; b ])
  @@ fun () ->
  let huge = Jsonx.Str (String.make Protocol.max_frame 'x') in
  (match Protocol.send a huge with
  | () -> Alcotest.fail "oversized frame must be refused"
  | exception Diag.Fatal d ->
    Alcotest.(check string) "KF0801 oversized" "KF0801" (code_of d));
  Unix.set_nonblock b;
  match Unix.read b (Bytes.create 1) 0 1 with
  | _ -> Alcotest.fail "bytes were written for a refused frame"
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

(* ---- exec chaos: the supervised native path ---- *)

module Ir = Kfuse_ir
module Img = Kfuse_image
module F = Kfuse_fusion

let require_toolchain () =
  match Kfuse_exec.Toolchain.find () with Error _ -> Alcotest.skip () | Ok _ -> ()

let exec_req ?(seed = 42) ?(repeat = 1) ?(verify = false) ?(return_pixels = false) ?width
    ?height app =
  {
    Protocol.fuse = fuse_req app;
    exec_mode = None;
    width;
    height;
    seed;
    repeat;
    verify;
    return_pixels;
  }

(* The reference the server must match when it degrades to the
   interpreter: the same registry app at the same extent, fused with the
   same defaults, over inputs synthesized from the same seed. *)
let local_reference ~app ~width ~height ~seed =
  let entry = Option.get (Kfuse_apps.Registry.find app) in
  let p = entry.Kfuse_apps.Registry.small ~width ~height in
  let fused = (F.Driver.run F.Config.default F.Driver.Mincut p).F.Driver.fused in
  let rng = Kfuse_util.Rng.create seed in
  let inputs =
    List.map
      (fun n -> (n, Img.Image.random rng ~width ~height ~lo:0.0 ~hi:1.0))
      fused.Ir.Pipeline.inputs
  in
  Ir.Eval.run_outputs fused (Ir.Eval.env_of_list inputs)

let num = function
  | Jsonx.Num n -> n
  | v -> Alcotest.failf "expected a number, got %s" (Jsonx.to_string v)

let check_pixels_match reference reply =
  let outputs =
    match field "outputs" reply with
    | Jsonx.Arr outs -> outs
    | v -> Alcotest.failf "outputs is not an array: %s" (Jsonx.to_string v)
  in
  Alcotest.(check int) "output count" (List.length reference) (List.length outputs);
  List.iter2
    (fun (name, img) out ->
      (match field "name" out with
      | Jsonx.Str n -> Alcotest.(check string) "output name" name n
      | v -> Alcotest.failf "name is not a string: %s" (Jsonx.to_string v));
      match field "pixels" out with
      | Jsonx.Arr rows ->
        List.iteri
          (fun y row ->
            match row with
            | Jsonx.Arr cells ->
              List.iteri
                (fun x cell ->
                  Alcotest.(check (float 0.0))
                    (Printf.sprintf "%s[%d,%d] bit-exact" name x y)
                    (Img.Image.get img x y) (num cell))
                cells
            | v -> Alcotest.failf "row is not an array: %s" (Jsonx.to_string v))
          rows
      | v -> Alcotest.failf "pixels missing: %s" (Jsonx.to_string v))
    reference outputs

let counter server name = Svc.Metrics.counter (Svc.Server.metrics server) name
let gauge server name = Svc.Metrics.gauge (Svc.Server.metrics server) name

let test_exec_crash_quarantine () =
  (* Every native execution of the plan segfaults (exec.crash on every
     hit): the daemon answers each with a typed KF0906, trips the
     breaker at the threshold, then serves the quarantined plan through
     the interpreter — bit-exact against a local reference — and stays
     alive throughout. *)
  require_toolchain ();
  let crash_dir = temp_dir "kfuse-chaos-crash" in
  with_server ~breaker_threshold:2 ~crash_dir @@ fun socket server ->
  let req = exec_req ~width:8 ~height:6 "sobel" in
  Faults.with_spec "exec.crash/1" (fun () ->
      for attempt = 1 to 2 do
        match Svc.Client.with_connection ~socket (fun c -> Svc.Client.fuse_exec c req) with
        | Ok _ -> Alcotest.failf "attempt %d: crashing exec must be a typed error" attempt
        | Error d ->
          Alcotest.(check string)
            (Printf.sprintf "attempt %d crashes typed" attempt)
            "KF0906" (code_of d)
      done;
      Alcotest.(check int) "crashes counted" 2 (counter server "native_exec_crashes");
      Alcotest.(check int) "breaker tripped" 1 (gauge server "quarantined_plans");
      (* Third request: still armed, but the quarantined plan never
         reaches the native path — the interpreter answers. *)
      let reply =
        expect_ok
          (Svc.Client.with_connection ~socket (fun c ->
               Svc.Client.fuse_exec c { req with Protocol.verify = true; return_pixels = true }))
      in
      let ex = field "exec" reply in
      Alcotest.(check bool) "served by the interpreter" true
        (Jsonx.member "mode" ex = Some (Jsonx.Str "interpreter"));
      Alcotest.(check bool) "marked quarantined" true
        (Jsonx.member "quarantined" ex = Some (Jsonx.Bool true));
      Alcotest.(check (float 0.0)) "verify is trivially exact" 0.0
        (num (field "max_abs_diff" reply));
      check_pixels_match (local_reference ~app:"sobel" ~width:8 ~height:6 ~seed:42) reply;
      Alcotest.(check int) "fallback counted" 1 (counter server "native_exec_fallbacks"));
  (* Crash forensics: the failing plan was persisted as a corpus entry. *)
  let artifacts =
    Array.to_list (Sys.readdir crash_dir)
    |> List.filter (fun f -> Filename.check_suffix f ".pipe")
  in
  Alcotest.(check int) "one crash artifact for one fingerprint" 1 (List.length artifacts);
  (* Faults cleared, but the cooldown (default 60 s) has not elapsed:
     the plan stays quarantined rather than stampeding the native path. *)
  let reply =
    expect_ok (Svc.Client.with_connection ~socket (fun c -> Svc.Client.fuse_exec c req))
  in
  Alcotest.(check bool) "still quarantined after the storm" true
    (Jsonx.member "quarantined" (field "exec" reply) = Some (Jsonx.Bool true));
  (* And the daemon never died. *)
  expect_ok (Svc.Client.with_connection ~socket (fun c -> Svc.Client.ping c))

let test_exec_hang_watchdog () =
  (* A hanging execution is reaped by the watchdog within the configured
     wall cap and surfaces as KF0905; the next (clean) request runs
     natively, sandboxed, below the breaker threshold. *)
  require_toolchain ();
  with_server ~exec_limits:{ Sup.default_limits with Sup.wall_ms = Some 400. }
  @@ fun socket server ->
  let req = exec_req ~width:8 ~height:6 "unsharp" in
  Faults.with_spec "exec.hang@1" (fun () ->
      match Svc.Client.with_connection ~socket (fun c -> Svc.Client.fuse_exec c req) with
      | Ok _ -> Alcotest.fail "hanging exec must be a typed error"
      | Error d -> Alcotest.(check string) "watchdog timeout typed" "KF0905" (code_of d));
  Alcotest.(check int) "timeout counted" 1 (counter server "native_exec_timeouts");
  Alcotest.(check int) "one failure does not quarantine" 0
    (gauge server "quarantined_plans");
  let reply =
    expect_ok (Svc.Client.with_connection ~socket (fun c -> Svc.Client.fuse_exec c req))
  in
  let ex = field "exec" reply in
  Alcotest.(check bool) "recovered natively" true
    (Jsonx.member "mode" ex = Some (Jsonx.Str "subprocess"));
  Alcotest.(check bool) "sandboxed by default" true
    (Jsonx.member "sandboxed" ex = Some (Jsonx.Bool true));
  Alcotest.(check bool) "not quarantined" true
    (Jsonx.member "quarantined" ex = Some (Jsonx.Bool false))

let test_exec_oom_limit () =
  (* exec.oom exhausts a tiny private RLIMIT_AS and aborts the way the
     generated allocator does: the service classifies KF0907 and counts
     a limit hit. *)
  require_toolchain ();
  with_server @@ fun socket server ->
  let req = exec_req ~width:8 ~height:6 "sobel" in
  Faults.with_spec "exec.oom@1" (fun () ->
      match Svc.Client.with_connection ~socket (fun c -> Svc.Client.fuse_exec c req) with
      | Ok _ -> Alcotest.fail "OOM exec must be a typed error"
      | Error d -> Alcotest.(check string) "limit typed" "KF0907" (code_of d));
  Alcotest.(check int) "limit counted" 1 (counter server "native_exec_limits");
  expect_ok (Svc.Client.with_connection ~socket (fun c -> Svc.Client.ping c))

let test_exec_crash_storm () =
  (* Concurrent clients under an every-2nd-execution crash storm: every
     call returns (a native answer or a typed KFxxxx), the daemon drains
     clean and still answers stats. *)
  require_toolchain ();
  with_server ~max_conns:4 ~queue:4 ~breaker_threshold:100 @@ fun socket server ->
  Faults.with_spec "exec.crash/2" (fun () ->
      let results = Array.make 3 [] in
      let client i =
        Thread.create
          (fun () ->
            for _ = 1 to 2 do
              let r =
                Svc.Client.call ~socket ~timeout_ms:60_000.0
                  (Protocol.Fuse_exec (exec_req ~width:8 ~height:6 "sobel"))
              in
              results.(i) <- r :: results.(i)
            done)
          ()
      in
      let threads = List.init 3 client in
      List.iter Thread.join threads;
      Array.iter
        (fun rs ->
          Alcotest.(check int) "every call returned" 2 (List.length rs);
          List.iter
            (function
              | Ok _ -> ()
              | Error d ->
                Alcotest.(check string) "failures are typed crashes" "KF0906" (code_of d))
            rs)
        results);
  Alcotest.(check bool) "crashes were injected" true
    (counter server "native_exec_crashes" >= 1);
  let stats =
    expect_ok (Svc.Client.with_connection ~socket (fun c -> Svc.Client.stats c))
  in
  match field "native_exec" stats with
  | Jsonx.Obj _ -> ()
  | v -> Alcotest.failf "stats lack native_exec accounting: %s" (Jsonx.to_string v)

(* ---- drain and the hammer ---- *)

let test_drain_under_load () =
  (* Stop the server while concurrent clients are mid-conversation:
     every call returns (an answer or a typed error), the workers all
     join, and the socket file is gone. *)
  let socket = temp_socket () in
  let cache = Cache.Plan_cache.create () in
  Kfuse_util.Pool.with_pool 2 @@ fun pool ->
  match
    Svc.Server.start ~socket ~cache ~pool ~max_conns:4 ~queue:8 ~drain_timeout_ms:2_000.0 ()
  with
  | Error d -> Alcotest.failf "start failed: %s" (Diag.to_string d)
  | Ok server ->
    let results = Array.make 4 [] in
    let client i =
      Thread.create
        (fun () ->
          for _ = 1 to 5 do
            let r = Svc.Client.call ~socket ~timeout_ms:2_000.0 Protocol.Ping in
            results.(i) <- r :: results.(i)
          done)
        ()
    in
    let threads = List.init 4 client in
    Thread.delay 0.01;
    Svc.Server.stop server;
    List.iter Thread.join threads;
    Alcotest.(check bool) "socket removed" false (Sys.file_exists socket);
    Alcotest.(check int) "no in-flight connections after drain" 0
      (Svc.Server.in_flight server);
    Array.iter
      (fun rs ->
        Alcotest.(check int) "every call returned" 5 (List.length rs);
        List.iter
          (function
            | Ok _ -> ()
            | Error d ->
              Alcotest.(check bool) "typed error code" true
                (String.length (code_of d) = 6))
          rs)
      results

let test_chaos_hammer () =
  (* Everything at once: torn frames, dropped and delayed replies, and
     forced sheds under six concurrent clients with retries.  Every call
     returns Ok or a typed error — no hangs, no exceptions — and after
     the storm the server answers a clean stats request. *)
  with_server ~max_conns:2 ~queue:2 ~request_timeout_ms:1_000.0 ~drain_timeout_ms:2_000.0
  @@ fun socket server ->
  Faults.with_spec "proto.torn_frame/5,proto.drop_reply/7,proto.slow_write/3,service.shed/9"
    (fun () ->
      let retry = { Svc.Client.default_retry with attempts = 2; backoff_ms = 5.0 } in
      let results = Array.make 6 [] in
      let client i =
        Thread.create
          (fun () ->
            for n = 1 to 5 do
              let req =
                if (i + n) mod 5 = 0 then Protocol.Fuse (fuse_req "harris")
                else Protocol.Ping
              in
              let r = Svc.Client.call ~socket ~timeout_ms:1_000.0 ~retry req in
              results.(i) <- r :: results.(i)
            done)
          ()
      in
      let threads = List.init 6 client in
      List.iter Thread.join threads;
      Array.iter
        (fun rs ->
          Alcotest.(check int) "every call returned" 5 (List.length rs);
          List.iter
            (function
              | Ok _ -> ()
              | Error d ->
                Alcotest.(check bool) "typed error code" true
                  (String.length (code_of d) = 6))
            rs)
        results);
  (* Post-storm: a clean connection gets coherent stats. *)
  let stats =
    expect_ok (Svc.Client.with_connection ~socket (fun c -> Svc.Client.stats c))
  in
  (match field "connections" stats with
  | Jsonx.Obj _ -> ()
  | v -> Alcotest.failf "stats lack connection accounting: %s" (Jsonx.to_string v));
  (match field "limits" stats with
  | Jsonx.Obj _ -> ()
  | v -> Alcotest.failf "stats lack limits: %s" (Jsonx.to_string v));
  ignore server

let suite =
  [
    Alcotest.test_case "chaos: full slots + full queue shed with KF0803" `Quick
      test_overload_shed;
    Alcotest.test_case "chaos: service.shed fault is retried away" `Quick
      test_forced_shed_retried;
    Alcotest.test_case "chaos: shutdown is never retried" `Quick test_shutdown_not_retried;
    Alcotest.test_case "chaos: slow-loris peer times out with KF0804" `Quick
      test_slow_loris_times_out;
    Alcotest.test_case "chaos: expired budget degrades through the service" `Quick
      test_budget_expiry_degrades;
    Alcotest.test_case "chaos: strict budget overrun is a KF0603 reply" `Quick
      test_strict_budget_is_error;
    Alcotest.test_case "chaos: torn reply frame is a typed error" `Quick
      test_torn_frame_is_typed;
    Alcotest.test_case "chaos: dropped reply is a typed error" `Quick
      test_dropped_reply_is_typed;
    Alcotest.test_case "chaos: slow write lands within the client timeout" `Quick
      test_slow_write_within_timeout;
    Alcotest.test_case "chaos: oversized frame refused before the wire" `Quick
      test_oversized_send_refused;
    Alcotest.test_case "chaos: graceful drain under concurrent load" `Quick
      test_drain_under_load;
    Alcotest.test_case "chaos: multi-fault hammer, every call returns typed" `Quick
      test_chaos_hammer;
    Alcotest.test_case "chaos: exec.crash storm trips quarantine, interpreter answers"
      `Slow test_exec_crash_quarantine;
    Alcotest.test_case "chaos: exec.hang reaped by the watchdog as KF0905" `Slow
      test_exec_hang_watchdog;
    Alcotest.test_case "chaos: exec.oom classified as a KF0907 limit" `Slow
      test_exec_oom_limit;
    Alcotest.test_case "chaos: concurrent exec.crash storm, daemon survives" `Slow
      test_exec_crash_storm;
  ]
