lib/graph/wgraph.ml: Digraph Format Kfuse_util List
