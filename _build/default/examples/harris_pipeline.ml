(* The paper's worked example (Section III-B, Figure 3): the Harris
   corner detector.  Shows the benefit model assigning the weights
   328 / 328 / 256 to the three legal point-to-local edges, then the
   recursive min-cut iterations arriving at the partition
   {dx} {dy} {sx,gx} {sy,gy} {sxy,gxy} {hc}.

   Run with: dune exec examples/harris_pipeline.exe *)

module F = Kfuse_fusion
module Ir = Kfuse_ir
module Iset = Kfuse_util.Iset

let () =
  let p = Kfuse_apps.Harris.pipeline () in
  let config = F.Config.default in
  let name i = (Ir.Pipeline.kernel p i).Ir.Kernel.name in

  Format.printf "== Edge weights (benefit model, Section II-C) ==@.";
  List.iter
    (fun (r : F.Benefit.edge_report) ->
      Format.printf "  %-4s -> %-4s  %-15s delta=%7.1f  phi=%6.1f  w=%8.3f@."
        (name r.src) (name r.dst)
        (F.Benefit.scenario_to_string r.scenario)
        r.delta r.phi r.weight)
    (F.Benefit.all_edges config p);

  Format.printf "@.== Algorithm 1: recursive min-cut partitioning ==@.";
  let result = F.Mincut_fusion.run config p in
  List.iter
    (fun step -> Format.printf "  %a@." (F.Mincut_fusion.pp_step p) step)
    result.F.Mincut_fusion.steps;

  Format.printf "@.final partition:";
  List.iter
    (fun b ->
      Format.printf " {%s}" (String.concat "," (List.map name (Iset.elements b))))
    result.F.Mincut_fusion.partition;
  Format.printf "@.objective beta = %.3f@.@." result.F.Mincut_fusion.objective;

  (* Apply the transform and show the shrunken pipeline. *)
  let fused = F.Transform.apply p result.F.Mincut_fusion.partition in
  Format.printf "kernels before: %d, after fusion: %d (%s)@."
    (Ir.Pipeline.num_kernels p) (Ir.Pipeline.num_kernels fused)
    (String.concat ", "
       (Array.to_list fused.Ir.Pipeline.kernels
       |> List.map (fun (k : Ir.Kernel.t) -> k.Ir.Kernel.name)))
