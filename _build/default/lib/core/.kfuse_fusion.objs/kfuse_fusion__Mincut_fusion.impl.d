lib/core/mincut_fusion.ml: Benefit Config Format Kfuse_graph Kfuse_ir Kfuse_util Legality List Printf String
