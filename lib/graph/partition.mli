(** Partitions of a graph into blocks (Section II-A).

    A partition [S = {P1, ..., Pk}] of a DAG [G] is a set of pairwise
    disjoint vertex sets covering [V].  The weight of a block is the sum
    of the weights of edges with both endpoints inside it; the objective
    value beta (Eq. 1) is the sum of block weights. *)

type t = Kfuse_util.Iset.t list
(** A partition as a list of blocks.  Canonical form: blocks ordered by
    smallest element, no empty blocks. *)

(** [normalize p] drops empty blocks and sorts blocks by smallest
    element. *)
val normalize : t -> t

(** [singletons g] is the finest partition of [g]: one block per vertex. *)
val singletons : Digraph.t -> t

(** Structural defects {!validate} can report. *)
type invalid =
  | Empty_block
  | Overlap of int  (** vertex in more than one block *)
  | Uncovered of int  (** graph vertex in no block *)
  | Unknown_vertex of int  (** block vertex not in the graph *)

val invalid_to_string : invalid -> string

(** [validate g p] checks that [p] is pairwise disjoint, free of empty
    blocks, and covers exactly the vertices of [g], reporting the first
    defect found (scanning blocks in order). *)
val validate : Digraph.t -> t -> (unit, invalid) result

(** [is_valid g p] is [validate g p = Ok ()]. *)
val is_valid : Digraph.t -> t -> bool

(** [block_of p v] is the block containing [v].
    @raise Not_found if no block contains [v]. *)
val block_of : t -> int -> Kfuse_util.Iset.t

(** [block_weight weight g block] is the total weight of edges of [g]
    inside [block], where the weight of edge [(u, v)] is [weight u v]. *)
val block_weight : (int -> int -> float) -> Digraph.t -> Kfuse_util.Iset.t -> float

(** [objective weight g p] is beta of Eq. 1: the sum of block weights. *)
val objective : (int -> int -> float) -> Digraph.t -> t -> float

(** [crossing_weight weight g p] is the total weight of edges whose
    endpoints lie in different blocks.  For a valid partition,
    [objective + crossing_weight = total edge weight] (Eq. 13). *)
val crossing_weight : (int -> int -> float) -> Digraph.t -> t -> float

(** [stitch parts] reassembles one partition from per-region partitions
    (incremental replanning: reused plans for clean regions + fresh
    min-cut results for dirty ones), in canonical form.  The result is a
    valid partition of a graph iff the regions were disjoint and covering
    — check with {!validate} (the replanner follows with a full legality
    re-check at the seams). *)
val stitch : t list -> t

(** [restrict p vs] is the partition [p] cut down to the vertex set [vs]:
    every block intersected with [vs], empties dropped, canonical form.
    Restricting a valid partition of [g] to a union of weak components of
    [g] yields a valid partition of the induced subgraph. *)
val restrict : t -> Kfuse_util.Iset.t -> t

(** [equal p q] compares partitions up to ordering of blocks. *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
