lib/gpu/occupancy.ml: Device Float List
