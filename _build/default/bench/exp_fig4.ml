(* Experiment fig4: border handling under local-to-local fusion
   (Section IV, Figure 4).  Regenerates the three values of the figure:
   interior body fusion (992), incorrect naive fused border (the paper
   prints 648; its own intermediate matrix gives 684), and the correct
   index-exchange result (763). *)

module F = Kfuse_fusion
module Ir = Kfuse_ir
module Img = Kfuse_image
module Iset = Kfuse_util.Iset

let matrix =
  [
    [ 1.; 3.; 7.; 7.; 6. ]; [ 3.; 7.; 9.; 6.; 8. ]; [ 5.; 4.; 3.; 2.; 1. ];
    [ 4.; 1.; 2.; 1.; 2. ]; [ 5.; 2.; 2.; 4.; 2. ];
  ]

let run () =
  print_endline "=== fig4: local-to-local border fusion (clamp + conv + conv) ===";
  let img = Img.Image.of_rows matrix in
  let g = Img.Mask.gaussian_3x3_unnormalized in
  let c1 = Img.Convolve.apply ~border:Img.Border.Clamp g img in
  let c2 = Img.Convolve.apply ~border:Img.Border.Clamp g c1 in
  let interior = Img.Image.get c2 2 2 in
  Printf.printf "  interior double convolution at center: %g (paper: %g)\n" interior
    Paper_data.fig4_interior;
  let p =
    Ir.Pipeline.create ~name:"fig4" ~width:5 ~height:5 ~inputs:[ "in" ]
      [
        Ir.Kernel.map ~name:"c1" ~inputs:[ "in" ]
          (Ir.Expr.conv ~border:Img.Border.Clamp g "in");
        Ir.Kernel.map ~name:"c2" ~inputs:[ "c1" ]
          (Ir.Expr.conv ~border:Img.Border.Clamp g "c1");
      ]
  in
  let env = Ir.Eval.env_of_list [ ("in", img) ] in
  let reference = snd (List.hd (Ir.Eval.run_outputs p env)) in
  let fuse ~exchange =
    let fp = F.Transform.apply ~exchange p [ Iset.of_list [ 0; 1 ] ] in
    snd (List.hd (Ir.Eval.run_outputs fp env))
  in
  let exchanged = fuse ~exchange:true in
  let naive = fuse ~exchange:false in
  let unfused_tl = Img.Image.get reference 0 0 in
  let exch_tl = Img.Image.get exchanged 0 0 in
  let naive_tl = Img.Image.get naive 0 0 in
  Printf.printf "  top-left, unfused reference:      %g (paper Fig 4c: %g)\n" unfused_tl
    Paper_data.fig4_correct_topleft;
  Printf.printf "  top-left, index-exchange fused:   %g (must match reference)\n" exch_tl;
  Printf.printf
    "  top-left, naive fused (incorrect): %g (paper prints %g; its intermediate matrix \
     gives %g)\n"
    naive_tl Paper_data.fig4_naive_topleft_printed Paper_data.fig4_naive_topleft_recomputed;
  Printf.printf "  naive max halo error: %g; exchange max error: %g\n"
    (Img.Image.max_abs_diff reference naive)
    (Img.Image.max_abs_diff reference exchanged);
  let pass =
    Float.equal interior Paper_data.fig4_interior
    && Float.equal unfused_tl Paper_data.fig4_correct_topleft
    && Float.equal exch_tl Paper_data.fig4_correct_topleft
    && Float.equal naive_tl Paper_data.fig4_naive_topleft_recomputed
    && Img.Image.max_abs_diff reference exchanged = 0.0
  in
  Printf.printf "fig4 reproduction: %s\n\n" (if pass then "PASS" else "FAIL")
