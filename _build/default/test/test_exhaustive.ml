(* Tests for the exhaustive fusion oracle, and how close Algorithm 1
   gets to it. *)

module F = Kfuse_fusion
module Partition = Kfuse_graph.Partition
module Pipeline = Kfuse_ir.Pipeline
module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel

let config = F.Config.default

let test_oracle_valid_partition () =
  let p = Kfuse_apps.Harris.pipeline () in
  let _, partition = F.Exhaustive_fusion.run config p in
  Alcotest.(check bool) "valid" true (Partition.is_valid (Pipeline.dag p) partition);
  let edges = F.Benefit.all_edges config p in
  List.iter
    (fun b ->
      Alcotest.(check bool) "legal" true
        (Kfuse_util.Iset.cardinal b = 1 || F.Mincut_fusion.block_legal config p edges b))
    partition

let test_mincut_optimal_on_paper_apps () =
  (* Algorithm 1 achieves the optimal beta on all six applications. *)
  List.iter
    (fun (e : Kfuse_apps.Registry.entry) ->
      let p = e.Kfuse_apps.Registry.pipeline () in
      let heuristic = (F.Mincut_fusion.run config p).F.Mincut_fusion.objective in
      let optimal = F.Exhaustive_fusion.optimal_objective config p in
      Alcotest.check (Helpers.float_close ~eps:1e-6 ())
        (e.Kfuse_apps.Registry.name ^ " optimal")
        optimal heuristic)
    Kfuse_apps.Registry.all

let test_oracle_bound_holds () =
  (* On any pipeline the heuristic can at best match the oracle. *)
  let open Expr in
  let p =
    Pipeline.create ~name:"mix" ~width:32 ~height:32 ~inputs:[ "in" ]
      [
        Kernel.map ~name:"a" ~inputs:[ "in" ] (input "in" * Const 2.0);
        Kernel.map ~name:"b" ~inputs:[ "a" ] (input "a" + Const 1.0);
        Kernel.map ~name:"c" ~inputs:[ "a" ] (input "a" - Const 1.0);
        Kernel.map ~name:"d" ~inputs:[ "b"; "c" ] (input "b" * input "c");
      ]
  in
  let heuristic = (F.Mincut_fusion.run config p).F.Mincut_fusion.objective in
  let optimal = F.Exhaustive_fusion.optimal_objective config p in
  Alcotest.(check bool) "bound" true (heuristic <= optimal +. 1e-9)

let test_diamond_fuses_whole () =
  (* The diamond above is all-point with a single sink: the whole graph
     is one legal block and the oracle finds it. *)
  let open Expr in
  let p =
    Pipeline.create ~name:"mix" ~width:32 ~height:32 ~inputs:[ "in" ]
      [
        Kernel.map ~name:"a" ~inputs:[ "in" ] (input "in" * Const 2.0);
        Kernel.map ~name:"b" ~inputs:[ "a" ] (input "a" + Const 1.0);
        Kernel.map ~name:"c" ~inputs:[ "a" ] (input "a" - Const 1.0);
        Kernel.map ~name:"d" ~inputs:[ "b"; "c" ] (input "b" * input "c");
      ]
  in
  let _, partition = F.Exhaustive_fusion.run config p in
  Alcotest.(check int) "single block" 1 (List.length partition)

let test_run_with_custom_objective () =
  (* Minimizing kernel count via run_with picks the coarsest partition. *)
  let p = Kfuse_apps.Unsharp.pipeline () in
  let score, partition =
    F.Exhaustive_fusion.run_with config p ~objective:(fun part ->
        -.float_of_int (List.length part))
  in
  Alcotest.check (Helpers.float_close ()) "one block" (-1.0) score;
  Alcotest.(check int) "single block" 1 (List.length partition)

let test_count_legal_partitions () =
  (* Night: {a0}{a1}{s}, {a0}{a1,s} — the a0-a1 pair is resource-illegal. *)
  let night = Kfuse_apps.Night.pipeline () in
  Alcotest.(check int) "night" 2 (F.Exhaustive_fusion.count_legal_partitions config night);
  (* Harris: each of the three point-to-local pairs independently fused
     or not: 2^3. *)
  let harris = Kfuse_apps.Harris.pipeline () in
  Alcotest.(check int) "harris" 8 (F.Exhaustive_fusion.count_legal_partitions config harris)

let test_size_limit () =
  let p = Kfuse_apps.Harris.pipeline () in
  Helpers.expect_invalid "limit" (fun () -> F.Exhaustive_fusion.run ~max_kernels:5 config p)

let suite =
  [
    Alcotest.test_case "oracle yields valid legal partition" `Quick test_oracle_valid_partition;
    Alcotest.test_case "Algorithm 1 optimal on paper apps" `Slow
      test_mincut_optimal_on_paper_apps;
    Alcotest.test_case "heuristic bounded by oracle" `Quick test_oracle_bound_holds;
    Alcotest.test_case "diamond fuses whole" `Quick test_diamond_fuses_whole;
    Alcotest.test_case "custom objective" `Quick test_run_with_custom_objective;
    Alcotest.test_case "count legal partitions" `Quick test_count_legal_partitions;
    Alcotest.test_case "size limit enforced" `Quick test_size_limit;
  ]
