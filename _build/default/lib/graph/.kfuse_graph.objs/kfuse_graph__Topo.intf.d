lib/graph/topo.mli: Digraph Kfuse_util
