(* Tests for Kfuse_fusion.Benefit: the scenario taxonomy and the formulas
   of Eqs. 3-12, anchored on the paper's Figure 3 numbers. *)

module F = Kfuse_fusion
module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Mask = Kfuse_image.Mask

let config = F.Config.default

let test_deltas () =
  (* Eq. 4 and Eq. 3 with tg = 400, ts = 4. *)
  Alcotest.check (Helpers.float_close ()) "delta_reg" 400.0 (F.Benefit.delta_reg config 1.0);
  Alcotest.check (Helpers.float_close ()) "delta_shared" 100.0
    (F.Benefit.delta_shared config 1.0);
  Alcotest.check (Helpers.float_close ()) "scales with IS" 2000.0
    (F.Benefit.delta_reg config 5.0)

let test_grown_mask_eq9 () =
  (* Eq. 9 examples from the paper. *)
  Alcotest.(check int) "3x3 into 3x3 -> 5x5" 25 (F.Benefit.grown_mask_area ~sz_src:9 ~sz_dst:9);
  Alcotest.(check int) "3x3 into 5x5 -> 7x7" 49
    (F.Benefit.grown_mask_area ~sz_src:9 ~sz_dst:25);
  Alcotest.(check int) "5x5 into 3x3 -> 7x7" 49
    (F.Benefit.grown_mask_area ~sz_src:25 ~sz_dst:9);
  Alcotest.(check int) "5x5 into 5x5 -> 9x9" 81
    (F.Benefit.grown_mask_area ~sz_src:25 ~sz_dst:25);
  Alcotest.(check int) "1x1 into 3x3 unchanged" 9
    (F.Benefit.grown_mask_area ~sz_src:1 ~sz_dst:9)

let harris = Kfuse_apps.Harris.pipeline ()

let edge name_src name_dst =
  let u = Option.get (Pipeline.index_of harris name_src) in
  let v = Option.get (Pipeline.index_of harris name_dst) in
  F.Benefit.edge_report config harris u v

let test_figure3_weights () =
  (* The worked example: w(sx,gx) = w(sy,gy) = 328, w(sxy,gxy) = 256. *)
  Alcotest.check (Helpers.float_close ()) "sx->gx" 328.0 (edge "sx" "gx").F.Benefit.weight;
  Alcotest.check (Helpers.float_close ()) "sy->gy" 328.0 (edge "sy" "gy").F.Benefit.weight;
  Alcotest.check (Helpers.float_close ()) "sxy->gxy" 256.0 (edge "sxy" "gxy").F.Benefit.weight

let test_figure3_breakdown () =
  (* 328 = delta_reg(400) - phi(72); phi = cost_op(8) * IS_ks(1) * sz(9).
     256 = 400 - 8 * 2 * 9 (sxy reads two images). *)
  let r = edge "sx" "gx" in
  Alcotest.check (Helpers.float_close ()) "delta" 400.0 r.F.Benefit.delta;
  Alcotest.check (Helpers.float_close ()) "phi" 72.0 r.F.Benefit.phi;
  let r2 = edge "sxy" "gxy" in
  Alcotest.check (Helpers.float_close ()) "phi doubles with IS_ks" 144.0 r2.F.Benefit.phi;
  Alcotest.check (Helpers.float_close ()) "is_ks sxy" 2.0
    (F.Benefit.is_ks config harris (Option.get (Pipeline.index_of harris "sxy")))

let test_figure3_illegal_edges () =
  List.iter
    (fun (s, d) ->
      let r = edge s d in
      (match r.F.Benefit.scenario with
      | F.Benefit.Illegal _ -> ()
      | sc ->
        Alcotest.failf "(%s,%s) should be illegal, got %s" s d
          (F.Benefit.scenario_to_string sc));
      Alcotest.check (Helpers.float_close ()) "epsilon weight" config.F.Config.epsilon
        r.F.Benefit.weight)
    [ ("dx", "sx"); ("dx", "sxy"); ("dy", "sy"); ("dy", "sxy"); ("gx", "hc");
      ("gy", "hc"); ("gxy", "hc") ]

let test_scenarios () =
  let check_sc r expected =
    Alcotest.(check string)
      "scenario" expected
      (F.Benefit.scenario_to_string r.F.Benefit.scenario)
  in
  check_sc (edge "sx" "gx") "point-to-local";
  (* enhance: local producer, point consumer -> point-based. *)
  let e = Kfuse_apps.Enhance.pipeline () in
  let u = Option.get (Pipeline.index_of e "geomean") in
  let v = Option.get (Pipeline.index_of e "gamma") in
  Alcotest.(check string)
    "local-to-point is point-based" "point-based"
    (F.Benefit.scenario_to_string (F.Benefit.edge_report config e u v).F.Benefit.scenario);
  (* night: local-to-local, but pairwise rejected by Eq. 2. *)
  let n = Kfuse_apps.Night.pipeline () in
  let a0 = Option.get (Pipeline.index_of n "atrous0") in
  let a1 = Option.get (Pipeline.index_of n "atrous1") in
  match (F.Benefit.edge_report config n a0 a1).F.Benefit.scenario with
  | F.Benefit.Illegal _ -> ()
  | sc -> Alcotest.failf "expected illegal, got %s" (F.Benefit.scenario_to_string sc)

let test_local_to_local_unprofitable () =
  (* With a permissive resource threshold the Night a-trous pair becomes a
     genuine local-to-local scenario whose phi dwarfs delta (Section V-C),
     so Eq. 12 clamps the weight to epsilon. *)
  let loose = { config with F.Config.c_mshared = 10.0 } in
  let n = Kfuse_apps.Night.pipeline () in
  let a0 = Option.get (Pipeline.index_of n "atrous0") in
  let a1 = Option.get (Pipeline.index_of n "atrous1") in
  let r = F.Benefit.edge_report loose n a0 a1 in
  (match r.F.Benefit.scenario with
  | F.Benefit.Local_to_local -> ()
  | sc -> Alcotest.failf "expected local-to-local, got %s" (F.Benefit.scenario_to_string sc));
  Alcotest.(check bool) "phi > delta" true (r.F.Benefit.phi > r.F.Benefit.delta);
  Alcotest.check (Helpers.float_close ()) "clamped to epsilon" loose.F.Config.epsilon
    r.F.Benefit.weight

let test_gamma_term () =
  (* Eq. 12: gamma adds uniformly to legal weights. *)
  let with_gamma = { config with F.Config.gamma = 10.0 } in
  let u = Option.get (Pipeline.index_of harris "sx") in
  let v = Option.get (Pipeline.index_of harris "gx") in
  Alcotest.check (Helpers.float_close ()) "gamma added" 338.0
    (F.Benefit.edge_weight with_gamma harris u v)

let test_pixel_units () =
  (* Pixel units scale all legal weights by width*height*channels. *)
  let pix = { config with F.Config.is_unit = F.Config.Pixels } in
  let small = Kfuse_apps.Harris.pipeline ~width:10 ~height:10 () in
  let u = Option.get (Pipeline.index_of small "sx") in
  let v = Option.get (Pipeline.index_of small "gx") in
  Alcotest.check (Helpers.float_close ()) "scaled by 100" 32800.0
    (F.Benefit.edge_weight pix small u v)

let test_all_edges_cover_dag () =
  let reports = F.Benefit.all_edges config harris in
  Alcotest.(check int) "ten edges" 10 (List.length reports);
  List.iter
    (fun (r : F.Benefit.edge_report) ->
      Alcotest.(check bool) "positive weight" true (r.F.Benefit.weight > 0.0))
    reports

let test_non_edge_rejected () =
  Helpers.expect_invalid "not an edge" (fun () -> F.Benefit.edge_report config harris 0 8)

let suite =
  [
    Alcotest.test_case "Eqs. 3-4: deltas" `Quick test_deltas;
    Alcotest.test_case "Eq. 9: grown mask" `Quick test_grown_mask_eq9;
    Alcotest.test_case "Figure 3 weights" `Quick test_figure3_weights;
    Alcotest.test_case "Figure 3 delta/phi breakdown" `Quick test_figure3_breakdown;
    Alcotest.test_case "Figure 3 illegal edges" `Quick test_figure3_illegal_edges;
    Alcotest.test_case "scenario taxonomy" `Quick test_scenarios;
    Alcotest.test_case "unprofitable local-to-local clamps" `Quick test_local_to_local_unprofitable;
    Alcotest.test_case "Eq. 12 gamma term" `Quick test_gamma_term;
    Alcotest.test_case "pixel units" `Quick test_pixel_units;
    Alcotest.test_case "all edges covered, positive" `Quick test_all_edges_cover_dag;
    Alcotest.test_case "non-edge rejected" `Quick test_non_edge_rejected;
  ]
