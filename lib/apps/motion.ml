(** Motion detection over a frame stream.

    The first temporal app: a frame delta against the previous frame
    (temporal input ["prev"]), Sobel derivatives of the delta to pick up
    moving edges, and a threshold that binarizes the gradient magnitude.
    The delta kernel is a point operator and the derivative kernels are
    3x3 locals, so the whole five-kernel DAG fuses like Sobel with one
    extra point producer on top. *)

module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Mask = Kfuse_image.Mask
module Border = Kfuse_image.Border

let default_width = 2048
let default_height = 2048

(** [pipeline ?width ?height ()] is the motion-detection pipeline:
    inputs [frame] (current) and [prev] (one frame back), parameter
    [thresh] for the binarization threshold. *)
let pipeline ?(width = default_width) ?(height = default_height) () =
  let border = Border.Clamp in
  let open Expr in
  let delta =
    Kernel.map ~name:"delta" ~inputs:[ "frame"; "prev" ]
      (abs (input "frame" - input "prev"))
  in
  let dx =
    Kernel.map ~name:"dx" ~inputs:[ "delta" ] (conv ~border Mask.sobel_x "delta")
  in
  let dy =
    Kernel.map ~name:"dy" ~inputs:[ "delta" ] (conv ~border Mask.sobel_y "delta")
  in
  let mag =
    Kernel.map ~name:"mag" ~inputs:[ "dx"; "dy" ]
      (sqrt ((input "dx" * input "dx") + (input "dy" * input "dy")))
  in
  let motion =
    Kernel.map ~name:"motion" ~inputs:[ "mag" ]
      (select Lt (param "thresh") (input "mag") (const 1.0) (const 0.0))
  in
  Pipeline.create ~name:"motion" ~width ~height
    ~params:[ ("thresh", 0.25) ]
    ~inputs:[ "frame"; "prev" ]
    [ delta; dx; dy; mag; motion ]
