module Cost = Kfuse_ir.Cost
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline

type choice = {
  kernel_name : string;
  best : Cost.block;
  best_ms : float;
  default_ms : float;
}

let default_candidates =
  [
    { Cost.bx = 32; by = 4 };
    { Cost.bx = 32; by = 8 };
    { Cost.bx = 16; by = 8 };
    { Cost.bx = 16; by = 16 };
    { Cost.bx = 64; by = 2 };
    { Cost.bx = 64; by = 4 };
    { Cost.bx = 128; by = 1 };
    { Cost.bx = 32; by = 16 };
  ]

let time ?params ~block d ~quality ~fused p k =
  (Perf_model.kernel_time ?params ~block d ~quality ~fused p k).Perf_model.t_ms

let tune_kernel ?params ?(candidates = default_candidates) d ~quality ~fused p
    (k : Kernel.t) =
  if candidates = [] then invalid_arg "Autotune.tune_kernel: empty candidate set";
  let default_ms =
    time ?params ~block:{ Cost.bx = 32; by = 4 } d ~quality ~fused p k
  in
  let best, best_ms =
    List.fold_left
      (fun ((_, best_ms) as best) block ->
        (* A candidate can exceed the SM's shared memory for deep fused
           kernels; skip it rather than fail. *)
        match time ?params ~block d ~quality ~fused p k with
        | t when t < best_ms -> (block, t)
        | _ -> best
        | exception Invalid_argument _ -> best)
      ({ Cost.bx = 32; by = 4 }, default_ms)
      candidates
  in
  { kernel_name = k.Kernel.name; best; best_ms; default_ms }

let tune_pipeline ?params ?candidates d ~quality ~fused_kernels (p : Pipeline.t) =
  let choices =
    Array.to_list p.Pipeline.kernels
    |> List.map (fun (k : Kernel.t) ->
           tune_kernel ?params ?candidates d ~quality
             ~fused:(List.mem k.Kernel.name fused_kernels)
             p k)
  in
  let tuned = List.fold_left (fun acc c -> acc +. c.best_ms) 0.0 choices in
  let default = List.fold_left (fun acc c -> acc +. c.default_ms) 0.0 choices in
  (choices, tuned, default)
