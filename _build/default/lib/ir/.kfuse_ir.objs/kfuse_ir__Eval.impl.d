lib/ir/eval.ml: Array Compile Expr Float Kernel Kfuse_image List Map Option Pipeline Printf String
