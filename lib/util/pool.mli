(** A deterministic, work-stealing-free domain pool.

    Fixed team of OCaml 5 domains fed from a shared index counter
    (self-scheduling, one index at a time) guarded by a single
    [Mutex]/[Condition] pair.  Results are written into caller-indexed
    slots, so [map_array pool f a] returns exactly [Array.map f a]
    regardless of how tasks interleave across domains — callers get
    bit-identical output to a serial run as long as each task is a pure
    function of its index.

    The pool is batch-oriented: one parallel region runs at a time.  A
    nested or concurrent {!run} on a busy pool degrades to serial
    execution in the calling domain rather than deadlocking, so it is
    safe to pass the same pool down through layered APIs
    ({!Kfuse_fusion.Driver.run} hands its pool to the benefit model,
    the min-cut recursion, and the simulator).

    Exceptions raised by tasks do not poison the pool: every task of the
    batch still runs, and the exception of the {e lowest} failing index
    is re-raised in the submitting domain once the batch drains —
    deterministic even when several tasks fail. *)

type t
(** A pool handle.  Values of type [t] are safe to share between
    domains, but {!run} is batch-exclusive as described above. *)

val serial : t
(** A pool of size 1.  Spawns no domains; every operation runs in the
    calling domain.  The conventional default for [?pool] arguments. *)

val default_size : unit -> int
(** [Domain.recommended_domain_count ()]: the [-j] default. *)

val create : int -> t
(** [create n] is a pool of total parallelism [n]: [n - 1] worker
    domains plus the submitting domain, which participates in every
    batch.  [create 1] (and below) spawns nothing and behaves like
    {!serial}.  If spawning fails partway (the runtime's domain limit,
    or an injected ["pool.spawn"] fault), the domains already spawned
    are stopped and joined before the exception propagates — creation
    never leaks domains.  @raise Invalid_argument if [n < 1]. *)

val live_domains : unit -> int
(** Worker domains currently spawned but not yet joined, across all
    pools of the process.  [0] once every pool has been shut down —
    the no-leaked-domains invariant the fault-injection tests assert. *)

val size : t -> int
(** Total parallelism (worker domains + 1). *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent; {!serial} ignores
    it.  Subsequent {!run} calls on the pool execute serially. *)

val with_pool : int -> (t -> 'a) -> 'a
(** [with_pool n f] runs [f] with a fresh pool of size [n] and shuts it
    down afterwards, also on exception. *)

val run : t -> ?chunk:int -> n:int -> (int -> unit) -> unit
(** [run pool ~n body] executes [body 0 .. body (n - 1)], distributing
    indices over the pool's domains.  Returns when all [n] tasks have
    finished.  If any task raised, re-raises the exception of the lowest
    failing index (with its backtrace).  [chunk] (default 1) hands out
    indices in runs of that length — raise it when tasks are tiny so the
    shared counter is not the bottleneck. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array pool f a] is [Array.map f a], computed in parallel. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list pool f l] is [List.map f l], computed in parallel. *)

val init : t -> int -> (int -> 'a) -> 'a array
(** [init pool n f] is [Array.init n f], computed in parallel ([f] must
    be safe to call from any domain and in any order). *)
