lib/apps/unsharp.ml: Kfuse_image Kfuse_ir
