module Pipeline = Kfuse_ir.Pipeline
module Kernel = Kfuse_ir.Kernel
module Expr = Kfuse_ir.Expr
module Conv_match = Kfuse_ir.Conv_match
module Border = Kfuse_image.Border

type verdict =
  | Split of Conv_match.factorization
  | Not_convolution
  | Not_separable
  | Not_two_dimensional
  | Unsupported_border

let kernel_exn (p : Pipeline.t) name =
  match Pipeline.index_of p name with
  | Some i -> Pipeline.kernel p i
  | None -> invalid_arg (Printf.sprintf "Distribute: no kernel %S" name)

let judge (p : Pipeline.t) name =
  let k = kernel_exn p name in
  match k.Kernel.op with
  | Kernel.Reduce _ -> Not_convolution
  | Kernel.Map body -> (
    match Conv_match.extract body with
    | None -> Not_convolution
    | Some stencil -> (
      match stencil.Conv_match.border with
      | Border.Constant _ | Border.Undefined -> Unsupported_border
      | Border.Clamp | Border.Mirror | Border.Repeat -> (
        match Conv_match.separate stencil with
        | None -> Not_separable
        | Some f ->
          if List.length f.Conv_match.horizontal <= 1
             || List.length f.Conv_match.vertical <= 1
          then Not_two_dimensional
          else Split f)))

let weighted_sum image border taps =
  let term (offset, c) =
    let dx, dy = offset in
    let access = Expr.input ~border ~dx ~dy image in
    if Float.equal c 1.0 then access else Expr.Binop (Expr.Mul, Expr.Const c, access)
  in
  match taps with
  | [] -> Expr.Const 0.0
  | first :: rest ->
    List.fold_left (fun acc t -> Expr.Binop (Expr.Add, acc, term t)) (term first) rest

let split (p : Pipeline.t) name =
  let k = kernel_exn p name in
  match judge p name with
  | Split f ->
    let stencil =
      match k.Kernel.op with
      | Kernel.Map body -> Option.get (Conv_match.extract body)
      | Kernel.Reduce _ -> assert false
    in
    let border = stencil.Conv_match.border in
    let image = stencil.Conv_match.image in
    let tmp = name ^ "_sepH" in
    let horizontal =
      Kernel.map ~name:tmp ~inputs:[ image ]
        (weighted_sum image border
           (List.map (fun (dx, c) -> ((dx, 0), c)) f.Conv_match.horizontal))
    in
    let vertical =
      Kernel.map ~name ~inputs:[ tmp ]
        (weighted_sum tmp border
           (List.map (fun (dy, c) -> ((0, dy), c)) f.Conv_match.vertical))
    in
    let kernels =
      Array.to_list p.Pipeline.kernels
      |> List.concat_map (fun (k' : Kernel.t) ->
             if String.equal k'.Kernel.name name then [ horizontal; vertical ] else [ k' ])
    in
    Pipeline.with_kernels p kernels
  | v ->
    invalid_arg
      (Printf.sprintf "Distribute.split(%s): %s" name
         (match v with
         | Split _ -> assert false
         | Not_convolution -> "not a convolution"
         | Not_separable -> "not separable"
         | Not_two_dimensional -> "already one-dimensional"
         | Unsupported_border -> "border mode does not distribute"))

let split_all (p : Pipeline.t) =
  Array.to_list p.Pipeline.kernels
  |> List.fold_left
       (fun (p, applied) (k : Kernel.t) ->
         match judge p k.Kernel.name with
         | Split _ -> (split p k.Kernel.name, k.Kernel.name :: applied)
         | Not_convolution | Not_separable | Not_two_dimensional | Unsupported_border ->
           (p, applied))
       (p, [])
  |> fun (p, applied) -> (p, List.rev applied)

let verdict_to_string = function
  | Split f ->
    Printf.sprintf "separable: %d horizontal x %d vertical taps"
      (List.length f.Conv_match.horizontal)
      (List.length f.Conv_match.vertical)
  | Not_convolution -> "not a convolution"
  | Not_separable -> "not separable (rank > 1)"
  | Not_two_dimensional -> "already one-dimensional"
  | Unsupported_border -> "border mode does not distribute"
