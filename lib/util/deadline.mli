(** Cooperative wall-clock deadlines.

    A {!t} is an absolute point in time (or {!none}).  Long-running
    searches poll {!check} at natural yield points (the min-cut driver
    checks once per recursion wave); the driver converts {!Expired} into
    graceful degradation to the baseline partition, or into a
    {!Diag.Budget_exceeded} error under [--strict]. *)

type t

exception Expired of { budget_ms : float }

val none : t
(** Never expires. *)

val after_ms : float -> t
(** [after_ms b] expires [b] milliseconds from now.  A nonpositive
    budget is already expired. *)

val budget_ms : t -> float option
(** The budget [after_ms] was given, or [None] for {!none}. *)

val expired : t -> bool

val remaining_ms : t -> float option
(** Milliseconds left before expiry (clamped at [0.]), or [None] for
    {!none}.  Lets a caller cap a nested budget — e.g. the [kfused]
    server shrinks a request's fusion-search budget to what is left of
    its wall-clock deadline. *)

val check : t -> unit
(** @raise Expired when the deadline has passed. *)
