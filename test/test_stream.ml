(* The streaming subsystem, bottom to top.

   Unit layers first — temporal input analysis, the session's sliding
   window (cold-start clamping, ring eviction), protocol round-trips —
   then the live daemon: the open/push/close lifecycle, idle expiry,
   capacity and backpressure sheds with the client's retry split,
   SIGTERM drain with streams still open, a mid-stream crash that trips
   the breaker and falls back to the interpreter without perturbing the
   pixel history, and the exactly-one-compile-per-stream contract. *)

module Svc = Kfuse_service
module Jsonx = Svc.Jsonx
module Protocol = Svc.Protocol
module Cache = Kfuse_cache
module Faults = Kfuse_util.Faults
module Diag = Kfuse_util.Diag
module Ir = Kfuse_ir
module Img = Kfuse_image
module F = Kfuse_fusion
module Temporal = Kfuse_ir.Temporal
module Session = Kfuse_stream.Session
module Frames = Kfuse_stream.Frames
module Native = Kfuse_exec.Native

let code_of (d : Diag.t) = Diag.code_id d.Diag.code

(* ---- temporal analysis ---- *)

let test_temporal_analysis () =
  let lag n = Temporal.lag_of_name n in
  Alcotest.(check (option int)) "prev is lag 1" (Some 1) (lag "prev");
  Alcotest.(check (option int)) "prev2 is lag 2" (Some 2) (lag "prev2");
  Alcotest.(check (option int)) "prev9 is lag 9" (Some 9) (lag "prev9");
  Alcotest.(check (option int)) "frame is current" None (lag "frame");
  Alcotest.(check (option int)) "previous is not temporal" None (lag "previous");
  let p =
    (Option.get (Kfuse_apps.Registry.find "motion")).Kfuse_apps.Registry.small
      ~width:8 ~height:6
  in
  let a = Temporal.analyze p in
  Alcotest.(check (list string)) "motion's current input" [ "frame" ] a.Temporal.current;
  Alcotest.(check (list (pair string int)))
    "motion's temporal input" [ ("prev", 1) ] a.Temporal.temporal;
  Alcotest.(check int) "motion's depth" 1 a.Temporal.depth;
  Alcotest.(check bool) "motion is temporal" true (Temporal.is_temporal a);
  (match Temporal.stream_input a with
  | Ok n -> Alcotest.(check string) "stream input" "frame" n
  | Error d -> Alcotest.failf "stream_input: %s" (Diag.to_string d));
  (* Two current inputs: binding a pushed frame would be ambiguous. *)
  let two =
    Ir.Pipeline.create ~name:"two" ~width:4 ~height:4 ~inputs:[ "a"; "b" ]
      [
        Kfuse_ir.Kernel.map ~name:"k" ~inputs:[ "a"; "b" ]
          Kfuse_ir.Expr.(input "a" + input "b");
      ]
  in
  match Temporal.stream_input (Temporal.analyze two) with
  | Ok n -> Alcotest.failf "ambiguous pipeline streamed via %S" n
  | Error _ -> ()

(* ---- session window semantics ---- *)

(* A lag-2 identity pipeline: the output IS the frame two steps back,
   so window bookkeeping is directly observable in the pixels. *)
let lag2_pipeline () =
  Ir.Pipeline.create ~name:"lag2" ~width:4 ~height:3 ~inputs:[ "frame"; "prev2" ]
    [ Kfuse_ir.Kernel.map ~name:"echo" ~inputs:[ "prev2" ] (Kfuse_ir.Expr.input "prev2") ]

let frame_at i = Frames.synthetic ~seed:9 ~width:4 ~height:3 ~index:i

let check_image what want got =
  Alcotest.(check (float 0.0)) what 0.0 (Img.Image.max_abs_diff want got)

let test_session_window () =
  let session =
    match Session.create (lag2_pipeline ()) with
    | Ok s -> s
    | Error d -> Alcotest.failf "create: %s" (Diag.to_string d)
  in
  Alcotest.(check int) "depth is the max lag" 2 (Session.depth session);
  Alcotest.(check string) "stream input" "frame" (Session.stream_input session);
  Alcotest.(check int) "no frames yet" 0 (Session.frames session);
  let out s i =
    match Session.push s (frame_at i) with
    | [ (_, img) ] -> img
    | outs -> Alcotest.failf "expected one output, got %d" (List.length outs)
  in
  (* Cold start: every lag clamps toward the oldest frame available —
     the current frame itself on frame 0. *)
  check_image "frame 0: prev2 clamps to the current frame" (frame_at 0) (out session 0);
  check_image "frame 1: prev2 clamps to frame 0" (frame_at 0) (out session 1);
  (* Warm: the true two-back frame... *)
  check_image "frame 2: true lag" (frame_at 0) (out session 2);
  check_image "frame 3: true lag" (frame_at 1) (out session 3);
  (* ... and the ring must have evicted beyond the depth, which the
     lagged output proves frame by frame. *)
  check_image "frame 4: ring advanced" (frame_at 2) (out session 4);
  Alcotest.(check int) "five frames pushed" 5 (Session.frames session)

let test_session_matches_manual_eval () =
  (* The session interpreter is nothing more than Eval over explicitly
     lagged bindings; motion's delta/threshold must agree bitwise. *)
  let p =
    (Option.get (Kfuse_apps.Registry.find "motion")).Kfuse_apps.Registry.small
      ~width:8 ~height:6
  in
  let session =
    match Session.create p with
    | Ok s -> s
    | Error d -> Alcotest.failf "create: %s" (Diag.to_string d)
  in
  let frame i = Frames.synthetic ~seed:3 ~width:8 ~height:6 ~index:i in
  for i = 0 to 3 do
    let cur = frame i in
    let prev = frame (max 0 (i - 1)) in
    let manual =
      Ir.Eval.run_outputs ~params:(Session.params session) p
        (Ir.Eval.env_of_list [ ("frame", cur); ("prev", prev) ])
    in
    let got = Session.push session cur in
    List.iter2
      (fun (wn, want) (gn, got) ->
        Alcotest.(check string) "output name" wn gn;
        check_image (Printf.sprintf "frame %d output %s" i wn) want got)
      manual got
  done

(* ---- protocol round-trips ---- *)

let fuse_req ?budget_ms ?(strict = false) app =
  {
    Protocol.app = Some app;
    source = None;
    strategy = Kfuse_fusion.Driver.Mincut;
    c_mshared = None;
    gamma = None;
    tg = None;
    optimize = false;
    inline = false;
    strict;
    budget_ms;
    no_cache = false;
  }

let open_req ?(seed = 42) ?width ?height app =
  { Protocol.fuse = fuse_req app; exec_mode = None; width; height; seed }

let push_req ?(verify = false) ?(return_pixels = false) id =
  { Protocol.id; verify; return_pixels }

let test_protocol_roundtrip () =
  let roundtrip req =
    let j = Protocol.request_to_json req in
    match Protocol.request_of_json j with
    | Error d -> Alcotest.failf "decode failed: %s" (Diag.to_string d)
    | Ok req' ->
      Alcotest.(check string)
        "encode/decode/encode is the identity"
        (Jsonx.to_string j)
        (Jsonx.to_string (Protocol.request_to_json req'))
  in
  roundtrip (Protocol.Stream_open (open_req ~seed:7 ~width:32 ~height:24 "motion"));
  roundtrip (Protocol.Stream_open (open_req "tharris"));
  roundtrip (Protocol.Stream_push (push_req ~verify:true ~return_pixels:true "st-3"));
  roundtrip (Protocol.Stream_push (push_req "st-0"));
  roundtrip (Protocol.Stream_close "st-12")

(* ---- live daemon ---- *)

let temp_socket () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "kfused-stream-%d-%d.sock" (Unix.getpid ()) (Random.bits ()))

let temp_dir prefix =
  let dir = Filename.temp_file prefix "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  dir

let with_server ?cache_dir ?max_streams ?stream_queue ?stream_idle_ms
    ?breaker_threshold f =
  let socket = temp_socket () in
  let cache = Cache.Plan_cache.create ?dir:cache_dir () in
  let crash_dir = temp_dir "kfuse-stream-crash" in
  Kfuse_util.Pool.with_pool 2 (fun pool ->
      match
        Svc.Server.start ~socket ~cache ~pool ~crash_dir ?breaker_threshold
          ?max_streams ?stream_queue ?stream_idle_ms ()
      with
      | Error d -> Alcotest.failf "server start failed: %s" (Diag.to_string d)
      | Ok server ->
        Fun.protect ~finally:(fun () -> Svc.Server.stop server) (fun () -> f socket server))

let expect_ok = function
  | Ok v -> v
  | Error d -> Alcotest.failf "request failed: %s" (Diag.to_string d)

let field name v =
  match Jsonx.member name v with
  | Some f -> f
  | None -> Alcotest.failf "response lacks %S: %s" name (Jsonx.to_string v)

let num = function
  | Jsonx.Num n -> n
  | v -> Alcotest.failf "expected a number, got %s" (Jsonx.to_string v)

let str = function
  | Jsonx.Str s -> s
  | v -> Alcotest.failf "expected a string, got %s" (Jsonx.to_string v)

let counter server name = Svc.Metrics.counter (Svc.Server.metrics server) name
let gauge server name = Svc.Metrics.gauge (Svc.Server.metrics server) name

let require_toolchain () =
  match Kfuse_exec.Toolchain.find () with Error _ -> Alcotest.skip () | Ok _ -> ()

let stream_id reply = str (field "id" reply)

(* The reference a stream must match: the session interpreter over the
   same Mincut-fused pipeline, fed the same synthetic frame sequence. *)
let reference_session ~app ~width ~height =
  let entry = Option.get (Kfuse_apps.Registry.find app) in
  let p = entry.Kfuse_apps.Registry.small ~width ~height in
  let fused = (F.Driver.run F.Config.default F.Driver.Mincut p).F.Driver.fused in
  match Session.create fused with
  | Ok s -> s
  | Error d -> Alcotest.failf "reference session: %s" (Diag.to_string d)

let check_pixels_match reference reply =
  let outputs =
    match field "outputs" reply with
    | Jsonx.Arr outs -> outs
    | v -> Alcotest.failf "outputs is not an array: %s" (Jsonx.to_string v)
  in
  Alcotest.(check int) "output count" (List.length reference) (List.length outputs);
  List.iter2
    (fun (name, img) out ->
      Alcotest.(check string) "output name" name (str (field "name" out));
      match field "pixels" out with
      | Jsonx.Arr rows ->
        List.iteri
          (fun y row ->
            match row with
            | Jsonx.Arr cells ->
              List.iteri
                (fun x cell ->
                  Alcotest.(check (float 0.0))
                    (Printf.sprintf "%s[%d,%d] bit-exact" name x y)
                    (Img.Image.get img x y) (num cell))
                cells
            | v -> Alcotest.failf "row is not an array: %s" (Jsonx.to_string v))
          rows
      | v -> Alcotest.failf "pixels missing: %s" (Jsonx.to_string v))
    reference outputs

let test_stream_lifecycle () =
  with_server @@ fun socket server ->
  Svc.Client.with_connection ~socket (fun c ->
      let opened = expect_ok (Svc.Client.stream_open c (open_req ~width:16 ~height:12 "motion")) in
      let id = stream_id opened in
      Alcotest.(check (float 0.0)) "motion streams at depth 1" 1.0 (num (field "depth" opened));
      Alcotest.(check (float 0.0)) "extent echoed" 16.0 (num (field "width" opened));
      Alcotest.(check int) "gauge sees the stream" 1 (gauge server "streams_active");
      for i = 0 to 2 do
        let reply = expect_ok (Svc.Client.stream_push c (push_req id)) in
        Alcotest.(check (float 0.0))
          (Printf.sprintf "push %d seq" i)
          (float_of_int i) (num (field "seq" reply));
        Alcotest.(check (float 0.0))
          (Printf.sprintf "push %d frame count" i)
          (float_of_int (i + 1))
          (num (field "frames" reply))
      done;
      (* The stats view agrees with the metrics registry. *)
      let stats = expect_ok (Svc.Client.stats c) in
      let streams = field "streams" stats in
      Alcotest.(check (float 0.0)) "stats: one active" 1.0 (num (field "active" streams));
      Alcotest.(check (float 0.0)) "stats: frames pushed" 3.0
        (num (field "frames_pushed" streams));
      let closed = expect_ok (Svc.Client.stream_close c id) in
      Alcotest.(check (float 0.0)) "close reports the frame total" 3.0
        (num (field "frames" closed));
      Ok ())
  |> expect_ok;
  Alcotest.(check int) "opened counted" 1 (counter server "streams_opened");
  Alcotest.(check int) "closed counted" 1 (counter server "streams_closed");
  Alcotest.(check int) "pushes counted" 3 (counter server "frames_pushed");
  Alcotest.(check int) "gauge back to zero" 0 (gauge server "streams_active")

let test_stream_unknown_id () =
  with_server @@ fun socket _server ->
  Svc.Client.with_connection ~socket (fun c ->
      (match Svc.Client.stream_push c (push_req "st-999") with
      | Ok _ -> Alcotest.fail "push to an unopened stream must fail"
      | Error d -> Alcotest.(check string) "push typed KF0806" "KF0806" (code_of d));
      (match Svc.Client.stream_close c "st-999" with
      | Ok _ -> Alcotest.fail "close of an unopened stream must fail"
      | Error d -> Alcotest.(check string) "close typed KF0806" "KF0806" (code_of d));
      Ok ())
  |> expect_ok

let test_stream_capacity_shed () =
  with_server ~max_streams:1 @@ fun socket server ->
  Svc.Client.with_connection ~socket (fun c ->
      let first = expect_ok (Svc.Client.stream_open c (open_req ~width:16 ~height:12 "motion")) in
      (match Svc.Client.stream_open c (open_req ~width:16 ~height:12 "motion") with
      | Ok _ -> Alcotest.fail "second open must be shed at --max-streams 1"
      | Error d -> Alcotest.(check string) "shed typed KF0803" "KF0803" (code_of d));
      Alcotest.(check int) "shed counted" 1 (counter server "streams_shed");
      (* Closing frees the slot: the next open is admitted. *)
      ignore (expect_ok (Svc.Client.stream_close c (stream_id first)));
      let third = expect_ok (Svc.Client.stream_open c (open_req ~width:16 ~height:12 "motion")) in
      ignore (expect_ok (Svc.Client.stream_close c (stream_id third)));
      Ok ())
  |> expect_ok;
  Alcotest.(check int) "gauge back to zero" 0 (gauge server "streams_active")

let test_stream_idle_expiry () =
  with_server ~stream_idle_ms:40.0 @@ fun socket server ->
  Svc.Client.with_connection ~socket (fun c ->
      let opened = expect_ok (Svc.Client.stream_open c (open_req ~width:16 ~height:12 "motion")) in
      let id = stream_id opened in
      ignore (expect_ok (Svc.Client.stream_push c (push_req id)));
      Thread.delay 0.12;
      (* Reaping is lazy: any stream/stats op sweeps the idle table. *)
      ignore (expect_ok (Svc.Client.stats c));
      Alcotest.(check int) "expiry counted" 1 (counter server "streams_expired");
      Alcotest.(check int) "gauge back to zero" 0 (gauge server "streams_active");
      (* The id is gone, not resurrect-able. *)
      (match Svc.Client.stream_push c (push_req id) with
      | Ok _ -> Alcotest.fail "push to an expired stream must fail"
      | Error d -> Alcotest.(check string) "expired id typed KF0806" "KF0806" (code_of d));
      Ok ())
  |> expect_ok

let test_stream_backpressure_retry () =
  with_server @@ fun socket server ->
  Svc.Client.with_connection ~socket (fun c ->
      let opened = expect_ok (Svc.Client.stream_open c (open_req ~width:16 ~height:12 "motion")) in
      let id = stream_id opened in
      (* A bare push under the shed fault surfaces the typed KF0805 and,
         crucially, does NOT advance the stream. *)
      Faults.with_spec "stream.shed@1" (fun () ->
          match Svc.Client.stream_push c (push_req id) with
          | Ok _ -> Alcotest.fail "shed push must fail without retries"
          | Error d -> Alcotest.(check string) "shed typed KF0805" "KF0805" (code_of d));
      Alcotest.(check int) "shed counted" 1 (counter server "frames_shed");
      let reply = expect_ok (Svc.Client.stream_push c (push_req id)) in
      Alcotest.(check (float 0.0)) "shed frame did not advance the stream" 0.0
        (num (field "seq" reply));
      (* The retry helper absorbs the same shed transparently. *)
      Faults.with_spec "stream.shed@1" (fun () ->
          let retry = { Svc.Client.default_retry with attempts = 3; backoff_ms = 5.0 } in
          let reply = expect_ok (Svc.Client.stream_push_retry ~retry c (push_req id)) in
          Alcotest.(check (float 0.0)) "retried push lands exactly once" 1.0
            (num (field "seq" reply)));
      Alcotest.(check int) "both sheds counted" 2 (counter server "frames_shed");
      Alcotest.(check int) "two frames processed" 2 (counter server "frames_pushed");
      ignore (expect_ok (Svc.Client.stream_close c id));
      Ok ())
  |> expect_ok

let test_stream_drain_on_stop () =
  (* SIGTERM with live streams: signal_stop + wait must join every
     worker and release every session — no leaked plan handles, the
     gauge back at zero, the socket gone. *)
  let socket = temp_socket () in
  let cache = Cache.Plan_cache.create () in
  let crash_dir = temp_dir "kfuse-stream-crash" in
  Kfuse_util.Pool.with_pool 2 (fun pool ->
      match Svc.Server.start ~socket ~cache ~pool ~crash_dir () with
      | Error d -> Alcotest.failf "start failed: %s" (Diag.to_string d)
      | Ok server ->
        Svc.Client.with_connection ~socket (fun c ->
            let a = expect_ok (Svc.Client.stream_open c (open_req ~width:16 ~height:12 "motion")) in
            let b = expect_ok (Svc.Client.stream_open c (open_req ~width:16 ~height:12 "tharris")) in
            ignore (expect_ok (Svc.Client.stream_push c (push_req (stream_id a))));
            ignore (expect_ok (Svc.Client.stream_push c (push_req (stream_id b))));
            Ok ())
        |> expect_ok;
        Alcotest.(check int) "two live streams" 2 (gauge server "streams_active");
        Svc.Server.signal_stop server;
        Svc.Server.wait server;
        Alcotest.(check int) "drain released every stream" 0
          (gauge server "streams_active");
        Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket))

let test_stream_crash_quarantine_temporal () =
  (* The acceptance chaos scenario: a healthy native stream, then every
     execution crashes (exec.crash), the breaker trips mid-stream, and
     the remaining frames are served by the interpreter — with the
     temporal window intact, so the whole pixel history is bit-exact
     against an all-interpreter reference session. *)
  require_toolchain ();
  with_server ~breaker_threshold:2 @@ fun socket server ->
  let width = 8 and height = 6 in
  let reference = reference_session ~app:"motion" ~width ~height in
  Svc.Client.with_connection ~socket (fun c ->
      let opened = expect_ok (Svc.Client.stream_open c (open_req ~width ~height "motion")) in
      let id = stream_id opened in
      let push_and_check i =
        let reply =
          expect_ok
            (Svc.Client.stream_push c (push_req ~verify:true ~return_pixels:true id))
        in
        Alcotest.(check (float 0.0))
          (Printf.sprintf "frame %d verify exact" i)
          0.0
          (num (field "max_abs_diff" reply));
        let frame = Frames.synthetic ~seed:42 ~width ~height ~index:i in
        check_pixels_match (Session.push reference frame) reply;
        field "exec" reply
      in
      let is_true ex name = Jsonx.member name ex = Some (Jsonx.Bool true) in
      (* Frames 0-1: the pinned native plan answers. *)
      for i = 0 to 1 do
        let ex = push_and_check i in
        Alcotest.(check bool)
          (Printf.sprintf "frame %d native" i)
          false (is_true ex "fallback")
      done;
      (* Frames 2-3: every native execution crashes.  The frames still
         ship — interpreter fallback on the same bindings — and the
         second consecutive crash trips the breaker. *)
      Faults.with_spec "exec.crash/1" (fun () ->
          for i = 2 to 3 do
            let ex = push_and_check i in
            Alcotest.(check bool)
              (Printf.sprintf "frame %d fell back" i)
              true (is_true ex "fallback")
          done);
      Alcotest.(check int) "crashes counted" 2 (counter server "native_exec_crashes");
      Alcotest.(check int) "breaker tripped" 1 (gauge server "quarantined_plans");
      (* Frames 4-5: faults cleared, but the plan is quarantined (the
         cooldown has not elapsed): the interpreter keeps answering. *)
      for i = 4 to 5 do
        let ex = push_and_check i in
        Alcotest.(check bool)
          (Printf.sprintf "frame %d quarantined" i)
          true (is_true ex "quarantined");
        Alcotest.(check bool)
          (Printf.sprintf "frame %d interpreter" i)
          true
          (Jsonx.member "mode" ex = Some (Jsonx.Str "interpreter"))
      done;
      let closed = expect_ok (Svc.Client.stream_close c id) in
      Alcotest.(check (float 0.0)) "all six frames shipped" 6.0
        (num (field "frames" closed));
      Ok ())
  |> expect_ok

let test_stream_compile_once_bitexact () =
  (* The per-frame overhead contract: opening a stream compiles exactly
     once (a real compiler invocation, the cache dir is fresh), pushes
     reuse the pinned plan with zero further compiles, and a 10-frame
     motion sequence is bit-exact native-vs-interpreter. *)
  require_toolchain ();
  let cache_dir = temp_dir "kfuse-stream-cache" in
  with_server ~cache_dir @@ fun socket _server ->
  let width = 16 and height = 12 in
  let reference = reference_session ~app:"motion" ~width ~height in
  Svc.Client.with_connection ~socket (fun c ->
      let before = Native.compiles () in
      let opened = expect_ok (Svc.Client.stream_open c (open_req ~width ~height "motion")) in
      Alcotest.(check int) "open compiles exactly once" 1 (Native.compiles () - before);
      Alcotest.(check bool) "fresh cache dir: not a cache hit" false
        (field "artifact_cached" (field "exec" opened) = Jsonx.Bool true);
      let id = stream_id opened in
      let after_open = Native.compiles () in
      for i = 0 to 9 do
        let reply =
          expect_ok
            (Svc.Client.stream_push c (push_req ~verify:true ~return_pixels:true id))
        in
        Alcotest.(check (float 0.0))
          (Printf.sprintf "frame %d native vs interpreter" i)
          0.0
          (num (field "max_abs_diff" reply));
        let frame = Frames.synthetic ~seed:42 ~width ~height ~index:i in
        check_pixels_match (Session.push reference frame) reply
      done;
      Alcotest.(check int) "pushes never compile" 0 (Native.compiles () - after_open);
      ignore (expect_ok (Svc.Client.stream_close c id));
      (* A second stream of the same pipeline reuses the artifact: the
         compile cache, not the compiler. *)
      let second = expect_ok (Svc.Client.stream_open c (open_req ~width ~height "motion")) in
      Alcotest.(check int) "second open is a cache hit" 0
        (Native.compiles () - after_open);
      Alcotest.(check bool) "reply says cached" true
        (field "artifact_cached" (field "exec" second) = Jsonx.Bool true);
      ignore (expect_ok (Svc.Client.stream_close c (stream_id second)));
      Ok ())
  |> expect_ok

let suite =
  [
    Alcotest.test_case "temporal: naming convention and analysis" `Quick
      test_temporal_analysis;
    Alcotest.test_case "session: cold-start clamp and ring eviction" `Quick
      test_session_window;
    Alcotest.test_case "session: interpreter matches manual lagged eval" `Quick
      test_session_matches_manual_eval;
    Alcotest.test_case "protocol: stream ops round-trip" `Quick test_protocol_roundtrip;
    Alcotest.test_case "stream: open/push/close lifecycle" `Quick test_stream_lifecycle;
    Alcotest.test_case "stream: unknown id is a typed KF0806" `Quick
      test_stream_unknown_id;
    Alcotest.test_case "stream: capacity shed with KF0803, slot freed on close" `Quick
      test_stream_capacity_shed;
    Alcotest.test_case "stream: idle sessions are reaped lazily" `Quick
      test_stream_idle_expiry;
    Alcotest.test_case "stream: backpressure shed retried exactly once" `Quick
      test_stream_backpressure_retry;
    Alcotest.test_case "stream: stop drains and releases live streams" `Quick
      test_stream_drain_on_stop;
    Alcotest.test_case "stream: mid-stream crash quarantines, history bit-exact" `Slow
      test_stream_crash_quarantine_temporal;
    Alcotest.test_case "stream: one compile per stream, 10 frames bit-exact" `Slow
      test_stream_compile_once_bitexact;
  ]
