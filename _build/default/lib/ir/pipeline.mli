(** Pipelines: DAGs of kernels over a common iteration space.

    A pipeline is the unit the fusion problem is stated on (Section II):
    vertices are kernels, and an edge [(u, v)] means kernel [v] consumes
    the image produced by kernel [u].  Each kernel produces exactly one
    image, named after the kernel; pipeline inputs are free image names.

    All kernels of a pipeline share one iteration space
    ([width x height x channels]) — the header-compatibility requirement
    of Section II-B.2.  Channels model planar multi-channel processing
    (the Night filter runs on 1920x1200 RGB, i.e. 3 planes); the
    interpreter runs per plane while cost models scale by the channel
    count. *)

type t = private {
  name : string;
  width : int;
  height : int;
  channels : int;
  inputs : string list;  (** external input image names *)
  params : (string * float) list;  (** scalar parameters with defaults *)
  kernels : Kernel.t array;  (** in topological order *)
}

(** [create ~name ~width ~height ?channels ?params ~inputs kernels]
    validates and builds a pipeline:
    - kernel names are unique and disjoint from [inputs];
    - every image a kernel reads is a pipeline input or another kernel;
    - the dependence graph is acyclic (kernels are stored topologically
      sorted);
    - global (reduction) kernels are sinks — their 1x1 output is not
      header-compatible with the iteration space;
    - every parameter referenced by a kernel body has a default in
      [params].
    @raise Invalid_argument describing the first violation. *)
val create :
  name:string ->
  width:int ->
  height:int ->
  ?channels:int ->
  ?params:(string * float) list ->
  inputs:string list ->
  Kernel.t list ->
  t

(** [num_kernels p] is the number of kernels (vertices). *)
val num_kernels : t -> int

(** [kernel p i] is the [i]-th kernel.
    @raise Invalid_argument when out of range. *)
val kernel : t -> int -> Kernel.t

(** [index_of p name] is the index of the kernel called [name]. *)
val index_of : t -> string -> int option

(** [index_of_exn p name] is [index_of] or [Invalid_argument]. *)
val index_of_exn : t -> string -> int

(** [dag p] is the dependence DAG over kernel indices. *)
val dag : t -> Kfuse_graph.Digraph.t

(** [producer p image] is the index of the kernel producing [image], or
    [None] when [image] is a pipeline input. *)
val producer : t -> string -> int option

(** [consumers p i] is the set of kernel indices that read the output of
    kernel [i]. *)
val consumers : t -> int -> Kfuse_util.Iset.t

(** [outputs p] is the list of sink images (kernel outputs no other
    kernel reads), in kernel order. *)
val outputs : t -> string list

(** [is_pixels p] is the iteration-space size [IS] of one image:
    [width * height * channels] (Section II-C.2). *)
val is_pixels : t -> int

(** [edge_image p u v] is the intermediate image transported along the
    DAG edge [(u, v)] — the output of kernel [u].
    @raise Invalid_argument if [(u, v)] is not an edge. *)
val edge_image : t -> int -> int -> string

(** [with_kernels p kernels] rebuilds the pipeline around a new kernel
    list (used by the fusion transform), revalidating everything. *)
val with_kernels : t -> Kernel.t list -> t

val pp : Format.formatter -> t -> unit
