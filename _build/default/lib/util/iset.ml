include Set.Make (Int)

let of_range lo hi =
  let rec loop acc i = if i < lo then acc else loop (add i acc) (i - 1) in
  loop empty hi

let to_sorted_list s = elements s

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_int)
    (elements s)
