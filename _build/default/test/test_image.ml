(* Tests for Kfuse_image: Border, Image, Mask, Region, Convolve. *)

module Border = Kfuse_image.Border
module Image = Kfuse_image.Image
module Mask = Kfuse_image.Mask
module Region = Kfuse_image.Region
module Convolve = Kfuse_image.Convolve

(* ---- Border ---- *)

let resolve mode x y =
  match Border.resolve mode ~width:4 ~height:3 x y with
  | Border.Inside (a, b) -> `In (a, b)
  | Border.Const_value c -> `Const c
  | Border.Undef -> `Undef

let test_border_inside () =
  List.iter
    (fun mode ->
      Alcotest.(check bool)
        "inside unchanged" true
        (resolve mode 2 1 = `In (2, 1)))
    [ Border.Clamp; Border.Mirror; Border.Repeat; Border.Constant 9.0; Border.Undefined ]

let test_border_clamp () =
  Alcotest.(check bool) "left" true (resolve Border.Clamp (-3) 1 = `In (0, 1));
  Alcotest.(check bool) "right" true (resolve Border.Clamp 9 1 = `In (3, 1));
  Alcotest.(check bool) "corner" true (resolve Border.Clamp (-1) 7 = `In (0, 2))

let test_border_mirror () =
  (* width 4: ... 2 1 | 0 1 2 3 | 2 1 0 1 ... *)
  Alcotest.(check bool) "-1 -> 1" true (resolve Border.Mirror (-1) 0 = `In (1, 0));
  Alcotest.(check bool) "-2 -> 2" true (resolve Border.Mirror (-2) 0 = `In (2, 0));
  Alcotest.(check bool) "4 -> 2" true (resolve Border.Mirror 4 0 = `In (2, 0));
  Alcotest.(check bool) "5 -> 1" true (resolve Border.Mirror 5 0 = `In (1, 0));
  (* period 6: -6 -> 0 *)
  Alcotest.(check bool) "period" true (resolve Border.Mirror (-6) 0 = `In (0, 0))

let test_border_mirror_singleton () =
  Alcotest.(check (option int)) "n=1 always 0" (Some 0) (Border.resolve_axis Border.Mirror 1 (-5))

let test_border_repeat () =
  Alcotest.(check bool) "-1 wraps" true (resolve Border.Repeat (-1) 0 = `In (3, 0));
  Alcotest.(check bool) "4 wraps" true (resolve Border.Repeat 4 0 = `In (0, 0));
  Alcotest.(check bool) "-5 wraps" true (resolve Border.Repeat (-5) 0 = `In (3, 0))

let test_border_constant_undefined () =
  Alcotest.(check bool) "constant" true (resolve (Border.Constant 2.5) (-1) 0 = `Const 2.5);
  Alcotest.(check bool) "undefined" true (resolve Border.Undefined 99 0 = `Undef)

let test_border_empty_extent () =
  Alcotest.check_raises "empty" (Invalid_argument "Border.resolve: empty extent") (fun () ->
      ignore (Border.resolve Border.Clamp ~width:0 ~height:3 0 0))

(* ---- Image ---- *)

let test_image_create_get_set () =
  let img = Image.create ~width:3 ~height:2 () in
  Alcotest.check (Helpers.float_close ()) "zero" 0.0 (Image.get img 2 1);
  Image.set img 2 1 4.5;
  Alcotest.check (Helpers.float_close ()) "set" 4.5 (Image.get img 2 1)

let test_image_bounds () =
  let img = Image.create ~width:3 ~height:2 () in
  Alcotest.check_raises "get oob" (Invalid_argument "Image.get: out of bounds") (fun () ->
      ignore (Image.get img 3 0));
  Alcotest.check_raises "set oob" (Invalid_argument "Image.set: out of bounds") (fun () ->
      Image.set img 0 (-1) 0.0);
  Alcotest.check_raises "bad extent" (Invalid_argument "Image.create: nonpositive extent")
    (fun () -> ignore (Image.create ~width:0 ~height:2 ()))

let test_image_init_of_rows () =
  let a = Image.init ~width:2 ~height:2 (fun x y -> float_of_int ((10 * y) + x)) in
  let b = Image.of_rows [ [ 0.; 1. ]; [ 10.; 11. ] ] in
  Alcotest.check Helpers.image_exact "same" a b;
  Alcotest.check_raises "ragged" (Invalid_argument "Image.of_rows: ragged rows") (fun () ->
      ignore (Image.of_rows [ [ 1. ]; [ 1.; 2. ] ]))

let test_image_map_fold () =
  let img = Image.of_rows [ [ 1.; 2. ]; [ 3.; 4. ] ] in
  let doubled = Image.map (fun v -> v *. 2.0) img in
  Alcotest.check (Helpers.float_close ()) "map" 8.0 (Image.get doubled 1 1);
  Alcotest.check (Helpers.float_close ()) "fold sum" 10.0
    (Image.fold ( +. ) 0.0 img);
  let shifted = Image.mapi (fun x y v -> v +. float_of_int (x + y)) img in
  Alcotest.check (Helpers.float_close ()) "mapi" 6.0 (Image.get shifted 1 1)

let test_image_map2 () =
  let a = Image.of_rows [ [ 1.; 2. ] ] in
  let b = Image.of_rows [ [ 10.; 20. ] ] in
  let s = Image.map2 ( +. ) a b in
  Alcotest.check (Helpers.float_close ()) "sum" 22.0 (Image.get s 1 0);
  let c = Image.create ~width:3 ~height:1 () in
  Alcotest.check_raises "mismatch" (Invalid_argument "Image.map2: extent mismatch")
    (fun () -> ignore (Image.map2 ( +. ) a c))

let test_image_copy_independent () =
  let a = Image.of_rows [ [ 1.; 2. ] ] in
  let b = Image.copy a in
  Image.set b 0 0 9.0;
  Alcotest.check (Helpers.float_close ()) "original untouched" 1.0 (Image.get a 0 0)

let test_image_diff () =
  let a = Image.of_rows [ [ 1.; 2. ] ] in
  let b = Image.of_rows [ [ 1.5; 1.8 ] ] in
  Alcotest.check (Helpers.float_close ()) "max abs diff" 0.5 (Image.max_abs_diff a b);
  Alcotest.(check bool) "eps pass" true (Image.equal_eps ~eps:0.5 a b);
  Alcotest.(check bool) "eps fail" false (Image.equal_eps ~eps:0.4 a b)

let test_image_get_bordered () =
  let img = Image.of_rows [ [ 1.; 2. ]; [ 3.; 4. ] ] in
  Alcotest.check (Helpers.float_close ()) "clamp" 1.0
    (Image.get_bordered img Border.Clamp (-5) (-5));
  Alcotest.check (Helpers.float_close ()) "constant" 7.0
    (Image.get_bordered img (Border.Constant 7.0) (-1) 0);
  Alcotest.check_raises "undefined oob"
    (Invalid_argument "Image.get_bordered: undefined border access") (fun () ->
      ignore (Image.get_bordered img Border.Undefined 5 0))

(* ---- Mask ---- *)

let test_mask_basics () =
  let m = Mask.of_rows [ [ 1.; 2.; 3. ]; [ 4.; 5.; 6. ]; [ 7.; 8.; 9. ] ] in
  Alcotest.(check int) "size" 3 (Mask.size m);
  Alcotest.(check int) "radius" 1 (Mask.radius m);
  Alcotest.(check int) "area" 9 (Mask.area m);
  Alcotest.check (Helpers.float_close ()) "center" 5.0 (Mask.get m 0 0);
  Alcotest.check (Helpers.float_close ()) "top-left" 1.0 (Mask.get m (-1) (-1));
  Alcotest.check (Helpers.float_close ()) "bottom-right" 9.0 (Mask.get m 1 1);
  Alcotest.check (Helpers.float_close ()) "sum" 45.0 (Mask.sum m)

let test_mask_invalid () =
  Alcotest.check_raises "even" (Invalid_argument "Mask.of_rows: size must be odd") (fun () ->
      ignore (Mask.of_rows [ [ 1.; 2. ]; [ 3.; 4. ] ]));
  Alcotest.check_raises "not square" (Invalid_argument "Mask.of_rows: mask must be square")
    (fun () -> ignore (Mask.of_rows [ [ 1. ]; [ 2. ]; [ 3. ] ]));
  let m = Mask.mean 3 in
  Alcotest.check_raises "offset outside" (Invalid_argument "Mask.get: offset outside mask")
    (fun () -> ignore (Mask.get m 2 0))

let test_mask_builtins () =
  Alcotest.check (Helpers.float_close ()) "gauss3 normalized" 1.0 (Mask.sum Mask.gaussian_3x3);
  Alcotest.check (Helpers.float_close ()) "gauss3 raw sum" 16.0
    (Mask.sum Mask.gaussian_3x3_unnormalized);
  Alcotest.check (Helpers.float_close ~eps:1e-12 ()) "gauss5 normalized" 1.0
    (Mask.sum Mask.gaussian_5x5);
  Alcotest.check (Helpers.float_close ()) "sobel_x antisymmetric" 0.0 (Mask.sum Mask.sobel_x);
  Alcotest.check (Helpers.float_close ()) "mean sums to 1" 1.0 (Mask.sum (Mask.mean 5));
  Alcotest.(check int) "gauss5 radius" 2 (Mask.radius Mask.gaussian_5x5)

let test_mask_fold_order () =
  let m = Mask.of_rows [ [ 1.; 2.; 3. ]; [ 4.; 5.; 6. ]; [ 7.; 8.; 9. ] ] in
  let collected = Mask.fold (fun acc _ _ c -> c :: acc) [] m in
  Alcotest.(check (list (float 0.0)))
    "row major" [ 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9. ] (List.rev collected)

(* ---- Region ---- *)

let test_region_classify () =
  let cls = Region.classify ~width:10 ~height:8 ~radius:2 in
  Alcotest.(check bool) "interior" true (Region.zone_equal (cls 5 4) Region.Interior);
  Alcotest.(check bool) "halo edge" true (Region.zone_equal (cls 1 4) Region.Halo);
  Alcotest.(check bool) "halo corner" true (Region.zone_equal (cls 9 7) Region.Halo);
  Alcotest.(check bool) "exterior" true (Region.zone_equal (cls (-1) 4) Region.Exterior);
  Alcotest.(check bool) "radius 0 all interior" true
    (Region.zone_equal (Region.classify ~width:10 ~height:8 ~radius:0 0 0) Region.Interior)

let test_region_counts () =
  (* 10x8 with radius 2: interior is 6x4 = 24, halo is 80 - 24 = 56. *)
  Alcotest.(check int) "interior" 24 (Region.interior_count ~width:10 ~height:8 ~radius:2);
  Alcotest.(check int) "halo" 56 (Region.halo_count ~width:10 ~height:8 ~radius:2);
  Alcotest.(check int) "radius too big" 0
    (Region.interior_count ~width:3 ~height:3 ~radius:2)

let test_region_interior_width () =
  (* Section IV-B: li - floor(lk/2)*2. *)
  Alcotest.(check int) "5 with 3x3" 3 (Region.interior_width ~image_width:5 ~mask_width:3);
  Alcotest.(check int) "5 with 5x5" 1 (Region.interior_width ~image_width:5 ~mask_width:5);
  Alcotest.(check int) "clamped at 0" 0 (Region.interior_width ~image_width:3 ~mask_width:7)

let test_region_fused_radius () =
  Alcotest.(check int) "3x3 + 5x5" 3 (Region.fused_radius [ 1; 2 ]);
  Alcotest.(check int) "empty" 0 (Region.fused_radius [])

(* ---- Convolve ---- *)

let test_convolve_identity () =
  let id = Mask.of_rows [ [ 0.; 0.; 0. ]; [ 0.; 1.; 0. ]; [ 0.; 0.; 0. ] ] in
  let img = Helpers.ramp ~width:6 ~height:5 in
  Alcotest.check Helpers.image_exact "identity mask"
    img
    (Convolve.apply ~border:Border.Clamp id img)

let test_convolve_mean_constant () =
  let img = Image.const ~width:5 ~height:5 3.0 in
  let out = Convolve.apply ~border:Border.Clamp (Mask.mean 3) img in
  Alcotest.check (Helpers.image_close ~eps:1e-12 ()) "constant preserved" img out

let test_convolve_matches_figure4 () =
  (* Cross-check against the intermediate matrix the paper prints in
     Figure 4a: row 2 of conv(img) is [57 82 98 93 90]. *)
  let img =
    Image.of_rows
      [
        [ 1.; 3.; 7.; 7.; 6. ]; [ 3.; 7.; 9.; 6.; 8. ]; [ 5.; 4.; 3.; 2.; 1. ];
        [ 4.; 1.; 2.; 1.; 2. ]; [ 5.; 2.; 2.; 4.; 2. ];
      ]
  in
  let out = Convolve.apply ~border:Border.Clamp Mask.gaussian_3x3_unnormalized img in
  List.iteri
    (fun x expected ->
      Alcotest.check (Helpers.float_close ()) (Printf.sprintf "row1[%d]" x) expected
        (Image.get out x 1))
    [ 57.; 82.; 98.; 93.; 90. ]

let test_convolve_interior_only () =
  let img = Helpers.ramp ~width:5 ~height:5 in
  let full = Convolve.apply ~border:Border.Clamp Mask.gaussian_3x3 img in
  let interior = Convolve.apply_interior Mask.gaussian_3x3 img in
  (* Interior pixels agree; halo pixels of the interior-only result are 0. *)
  Alcotest.check (Helpers.float_close ~eps:1e-12 ()) "interior agrees"
    (Image.get full 2 2) (Image.get interior 2 2);
  Alcotest.check (Helpers.float_close ()) "halo zeroed" 0.0 (Image.get interior 0 0)

let test_convolve_at_outside () =
  let img = Image.const ~width:3 ~height:3 2.0 in
  (* Window fully outside clamps to the corner; constant image -> same. *)
  Alcotest.check (Helpers.float_close ~eps:1e-12 ()) "outside clamp" 2.0
    (Convolve.at ~border:Border.Clamp Mask.gaussian_3x3 img (-5) (-5))

let suite =
  [
    Alcotest.test_case "Border inside" `Quick test_border_inside;
    Alcotest.test_case "Border clamp" `Quick test_border_clamp;
    Alcotest.test_case "Border mirror" `Quick test_border_mirror;
    Alcotest.test_case "Border mirror n=1" `Quick test_border_mirror_singleton;
    Alcotest.test_case "Border repeat" `Quick test_border_repeat;
    Alcotest.test_case "Border constant/undefined" `Quick test_border_constant_undefined;
    Alcotest.test_case "Border empty extent" `Quick test_border_empty_extent;
    Alcotest.test_case "Image create/get/set" `Quick test_image_create_get_set;
    Alcotest.test_case "Image bounds checks" `Quick test_image_bounds;
    Alcotest.test_case "Image init/of_rows" `Quick test_image_init_of_rows;
    Alcotest.test_case "Image map/fold/mapi" `Quick test_image_map_fold;
    Alcotest.test_case "Image map2" `Quick test_image_map2;
    Alcotest.test_case "Image copy" `Quick test_image_copy_independent;
    Alcotest.test_case "Image diff/eps" `Quick test_image_diff;
    Alcotest.test_case "Image bordered reads" `Quick test_image_get_bordered;
    Alcotest.test_case "Mask basics" `Quick test_mask_basics;
    Alcotest.test_case "Mask invalid" `Quick test_mask_invalid;
    Alcotest.test_case "Mask builtins" `Quick test_mask_builtins;
    Alcotest.test_case "Mask fold order" `Quick test_mask_fold_order;
    Alcotest.test_case "Region classify" `Quick test_region_classify;
    Alcotest.test_case "Region counts" `Quick test_region_counts;
    Alcotest.test_case "Region interior width" `Quick test_region_interior_width;
    Alcotest.test_case "Region fused radius" `Quick test_region_fused_radius;
    Alcotest.test_case "Convolve identity" `Quick test_convolve_identity;
    Alcotest.test_case "Convolve mean of constant" `Quick test_convolve_mean_constant;
    Alcotest.test_case "Convolve matches Figure 4a" `Quick test_convolve_matches_figure4;
    Alcotest.test_case "Convolve interior-only" `Quick test_convolve_interior_only;
    Alcotest.test_case "Convolve.at outside" `Quick test_convolve_at_outside;
  ]
