lib/ir/kernel.mli: Expr Format
