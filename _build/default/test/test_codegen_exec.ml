(* Execution tests of the CPU backend: compile the generated C with the
   system compiler, run it, and compare pixel-for-pixel against the
   reference interpreter.  This closes the loop the paper closes with
   CUDA on hardware: generated fused code computes the same image as the
   unfused semantics, including the halo region.

   Skipped gracefully when no C compiler is available. *)

module F = Kfuse_fusion
module Ir = Kfuse_ir
module Img = Kfuse_image
module Iset = Kfuse_util.Iset

let cc_available =
  lazy (Sys.command "cc --version > /dev/null 2>&1" = 0)

let require_cc () =
  if not (Lazy.force cc_available) then
    Alcotest.skip ()

(* Emit a main() that feeds fixed input data and prints the outputs. *)
let emit_main buf (p : Ir.Pipeline.t) inputs =
  let b fmt = Printf.bprintf buf fmt in
  b "#include <stdio.h>\n\n";
  List.iter
    (fun (name, img) ->
      b "static const float %s_data[] = {" name;
      for y = 0 to Img.Image.height img - 1 do
        for x = 0 to Img.Image.width img - 1 do
          b "%.9ef," (Img.Image.get img x y)
        done
      done;
      b "};\n")
    inputs;
  let outputs = Ir.Pipeline.outputs p in
  List.iter
    (fun o -> b "static float %s_out[%d];\n" o (p.Ir.Pipeline.width * p.Ir.Pipeline.height))
    outputs;
  b "\nint main(void) {\n";
  let args =
    List.map (fun (name, _) -> name ^ "_data") inputs
    @ List.map (fun o -> o ^ "_out") outputs
    @ List.map (fun (name, _) -> Printf.sprintf "%.9ef" (List.assoc name p.Ir.Pipeline.params))
        p.Ir.Pipeline.params
  in
  b "  run_%s(%s);\n" p.Ir.Pipeline.name (String.concat ", " args);
  List.iter
    (fun o ->
      b "  for (int i = 0; i < %d; ++i) printf(\"%%.9e\\n\", %s_out[i]);\n"
        (p.Ir.Pipeline.width * p.Ir.Pipeline.height)
        o)
    (List.sort String.compare outputs);
  b "  return 0;\n}\n"

let run_generated ?tile (p : Ir.Pipeline.t) inputs =
  let dir = Filename.temp_file "kfuse_cc" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let src = Filename.concat dir "gen.c" in
  let exe = Filename.concat dir "gen.exe" in
  let out_file = Filename.concat dir "out.txt" in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf (Kfuse_codegen.Lower_cpu.emit_pipeline ?tile p);
  emit_main buf p inputs;
  let oc = open_out src in
  output_string oc (Buffer.contents buf);
  close_out oc;
  (* OpenMP optional: unknown pragmas are ignored by default. *)
  let compile = Printf.sprintf "cc -O1 -o %s %s -lm 2> %s/cc.log" exe src dir in
  if Sys.command compile <> 0 then begin
    let log = In_channel.with_open_text (dir ^ "/cc.log") In_channel.input_all in
    Alcotest.failf "generated C failed to compile:\n%s" log
  end;
  if Sys.command (Printf.sprintf "%s > %s" exe out_file) <> 0 then
    Alcotest.fail "generated binary failed";
  let values =
    In_channel.with_open_text out_file (fun ic ->
        let rec loop acc =
          match In_channel.input_line ic with
          | Some line -> loop (float_of_string (String.trim line) :: acc)
          | None -> List.rev acc
        in
        loop [])
  in
  values

let compare_with_interpreter ?tile ?(tol = 1e-4) p inputs =
  let env = Ir.Eval.env_of_list inputs in
  let expected = Ir.Eval.run_outputs p env in
  let actual = run_generated ?tile p inputs in
  let expected_flat =
    List.concat_map
      (fun (_, img) ->
        List.init
          (Img.Image.width img * Img.Image.height img)
          (fun i ->
            Img.Image.get img (i mod Img.Image.width img) (i / Img.Image.width img)))
      expected
  in
  Alcotest.(check int) "output count" (List.length expected_flat) (List.length actual);
  List.iteri
    (fun i (e, a) ->
      let scale = Float.max 1.0 (Float.abs e) in
      if Float.abs (e -. a) /. scale > tol then
        Alcotest.failf "pixel %d: interpreter %.9g vs compiled %.9g" i e a)
    (List.combine expected_flat actual)

let rng = Kfuse_util.Rng.create 7001

let input_for (p : Ir.Pipeline.t) =
  List.map
    (fun n ->
      (n, Img.Image.random rng ~width:p.Ir.Pipeline.width ~height:p.Ir.Pipeline.height
            ~lo:0.05 ~hi:1.0))
    p.Ir.Pipeline.inputs

let test_cpu_exec_simple_conv () =
  require_cc ();
  let p =
    Ir.Pipeline.create ~name:"conv1" ~width:12 ~height:9 ~inputs:[ "src" ]
      [
        Ir.Kernel.map ~name:"g" ~inputs:[ "src" ]
          (Ir.Expr.conv ~border:Img.Border.Mirror Img.Mask.gaussian_3x3 "src");
      ]
  in
  compare_with_interpreter p (input_for p)

let test_cpu_exec_fused_apps () =
  require_cc ();
  List.iter
    (fun name ->
      let e = Option.get (Kfuse_apps.Registry.find name) in
      let p = e.Kfuse_apps.Registry.small ~width:16 ~height:12 in
      let fused =
        (F.Driver.run ~optimize:true F.Config.default F.Driver.Mincut p).F.Driver.fused
      in
      compare_with_interpreter fused (input_for p))
    [ "sobel"; "unsharp"; "enhance" ]

let test_cpu_exec_forced_local_chain () =
  (* The hard case: fused local-to-local with index exchange, run as C. *)
  require_cc ();
  let p =
    Ir.Pipeline.create ~name:"chain" ~width:11 ~height:8 ~inputs:[ "src" ]
      [
        Ir.Kernel.map ~name:"c1" ~inputs:[ "src" ]
          (Ir.Expr.conv ~border:Img.Border.Clamp Img.Mask.gaussian_3x3 "src");
        Ir.Kernel.map ~name:"c2" ~inputs:[ "c1" ]
          (Ir.Expr.conv ~border:(Img.Border.Constant 0.25) Img.Mask.gaussian_3x3 "c1");
      ]
  in
  let fused = F.Transform.apply p [ Iset.of_list [ 0; 1 ] ] in
  compare_with_interpreter fused (input_for p)

let test_cpu_exec_tiled () =
  (* Tiled lowering covers exactly the same pixels, including ragged
     edges where the image is not a multiple of the tile size. *)
  require_cc ();
  let p =
    Ir.Pipeline.create ~name:"tiled" ~width:37 ~height:23 ~inputs:[ "src" ]
      [
        Ir.Kernel.map ~name:"g" ~inputs:[ "src" ]
          (Ir.Expr.conv ~border:Img.Border.Clamp Img.Mask.gaussian_3x3 "src");
        Ir.Kernel.map ~name:"s" ~inputs:[ "g"; "src" ]
          Ir.Expr.(input "src" + (input "g" * Const 0.5));
      ]
  in
  compare_with_interpreter ~tile:(16, 8) p (input_for p)

let test_cpu_exec_reduction () =
  require_cc ();
  let p =
    Ir.Pipeline.create ~name:"redu" ~width:10 ~height:7 ~inputs:[ "src" ]
      [
        Ir.Kernel.reduce ~name:"total" ~inputs:[ "src" ] ~init:0.0 ~combine:Ir.Expr.Add
          (Ir.Expr.input "src");
      ]
  in
  (* The 1x1 reduction output needs special sizing in main(); reuse the
     machinery by comparing manually. *)
  let inputs = input_for p in
  let env = Ir.Eval.env_of_list inputs in
  let expected = snd (List.hd (Ir.Eval.run_outputs p env)) in
  (* Emitting main() with width*height floats for the output buffer is
     harmless (only index 0 is read back). *)
  let actual = run_generated p inputs in
  let first = List.hd actual in
  let e = Img.Image.get expected 0 0 in
  Alcotest.(check bool)
    (Printf.sprintf "reduction %.6g vs %.6g" e first)
    true
    (Float.abs (e -. first) /. Float.max 1.0 (Float.abs e) < 1e-4)

let suite =
  [
    Alcotest.test_case "compiled conv matches interpreter" `Slow test_cpu_exec_simple_conv;
    Alcotest.test_case "compiled fused apps match interpreter" `Slow test_cpu_exec_fused_apps;
    Alcotest.test_case "compiled local chain with exchange" `Slow
      test_cpu_exec_forced_local_chain;
    Alcotest.test_case "compiled tiled lowering" `Slow test_cpu_exec_tiled;
    Alcotest.test_case "compiled reduction" `Slow test_cpu_exec_reduction;
  ]
