lib/ir/pipeline.ml: Array Expr Format Hashtbl Kernel Kfuse_graph Kfuse_util List Option Printf String
