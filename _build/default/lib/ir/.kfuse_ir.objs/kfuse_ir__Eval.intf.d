lib/ir/eval.mli: Expr Kernel Kfuse_image Map Pipeline
