(** Undirected edge-weighted graphs.

    The min-cut step of the fusion algorithm (Section III-A) runs on the
    undirected view of a partition block: edge directions are dropped and
    the weights of parallel edges are summed.  Weights must be positive —
    the paper guarantees this by assigning illegal edges the small positive
    weight [epsilon] (Eq. 12). *)

type t

val empty : t

(** [add_vertex g v] adds an isolated vertex. *)
val add_vertex : t -> int -> t

(** [add_edge g u v w] adds weight [w > 0] to the undirected edge
    [{u, v}]; weights of repeated insertions accumulate.  Self loops are
    rejected. *)
val add_edge : t -> int -> int -> float -> t

(** [of_digraph weight g] is the undirected view of the directed graph
    [g], where the weight of each directed edge [(u, v)] is [weight u v]
    and antiparallel pairs accumulate. *)
val of_digraph : (int -> int -> float) -> Digraph.t -> t

(** [vertices g] is the vertex set. *)
val vertices : t -> Kfuse_util.Iset.t

(** [num_vertices g] is the vertex count. *)
val num_vertices : t -> int

(** [weight g u v] is the weight of edge [{u, v}], or [0.] if absent. *)
val weight : t -> int -> int -> float

(** [neighbors g v] is the set of vertices adjacent to [v]. *)
val neighbors : t -> int -> Kfuse_util.Iset.t

(** [edges g] lists undirected edges as [(u, v, w)] with [u < v]. *)
val edges : t -> (int * int * float) list

(** [total_weight g] is the sum of all edge weights ([w_G] in Eq. 13). *)
val total_weight : t -> float

(** [cut_weight g side] is the total weight of edges with exactly one
    endpoint in [side] ([w_C] in Eq. 13). *)
val cut_weight : t -> Kfuse_util.Iset.t -> float

(** [is_connected g] tests connectivity; the empty graph and singletons
    are connected. *)
val is_connected : t -> bool

val pp : Format.formatter -> t -> unit
