(** GPU device descriptions.

    The three Nvidia cards of the paper's evaluation (Section V-A), plus
    a constructor for custom devices.  Core counts and clocks are the
    paper's numbers; memory-bus widths are the public specifications of
    the cards, giving the peak bandwidths (28.8, 192.3, and 208 GB/s)
    that drive the memory side of the performance model. *)

type t = {
  name : string;
  cuda_cores : int;
  sm_count : int;
  clock_mhz : float;  (** base core clock *)
  mem_clock_mhz : float;
  mem_bus_bits : int;  (** memory interface width *)
  shared_mem_per_sm : int;  (** bytes; 48 KB on all three cards *)
  registers_per_block : int;  (** 65,536 on all three cards *)
  max_threads_per_sm : int;
  max_blocks_per_sm : int;
}

(** Geforce GTX 745: 384 cores @ 1,033 MHz, 900 MHz DDR3 on a 128-bit
    bus. *)
val gtx745 : t

(** Geforce GTX 680: 1,536 cores @ 1,058 MHz, 3,004 MHz GDDR5 on a
    256-bit bus. *)
val gtx680 : t

(** Tesla K20c: 2,496 cores @ 706 MHz, 2,600 MHz GDDR5 on a 320-bit
    bus. *)
val k20c : t

(** The paper's three evaluation devices, in presentation order. *)
val all : t list

(** [find name] looks a device up by (case-insensitive) name. *)
val find : string -> t option

(** [peak_bandwidth_bytes_per_s d] is
    [mem_clock * 2 (DDR) * bus_bytes]. *)
val peak_bandwidth_bytes_per_s : t -> float

(** [compute_throughput_ops_per_s d] is [cuda_cores * clock]: one ALU
    operation per core per cycle. *)
val compute_throughput_ops_per_s : t -> float

val pp : Format.formatter -> t -> unit
