lib/core/exhaustive_fusion.mli: Config Kfuse_graph Kfuse_ir
