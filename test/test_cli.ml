(* End-to-end tests of the kfusec command-line driver: run the real
   binary on real DSL files and check outputs.  The binary and the
   example pipelines are declared as dune test dependencies. *)

let kfusec = "../bin/kfusec.exe"
let pipelines_dir = "../examples/pipelines"

(* [env] is a shell prefix like "KFUSE_FAULTS=cut.stoer_wagner@1" for
   the fault-injection end-to-end tests.  The default empty assignment
   insulates the regular tests from a KFUSE_FAULTS inherited from the
   environment (CI sets one for the fault matrix job). *)
let run_capture ?(env = "KFUSE_FAULTS=") args =
  let out = Filename.temp_file "kfusec_out" ".txt" in
  let cmd =
    Printf.sprintf "%s %s %s > %s 2>&1" env kfusec (String.concat " " args) out
  in
  let code = Sys.command cmd in
  let text = In_channel.with_open_text out In_channel.input_all in
  (try Sys.remove out with Sys_error _ -> ());
  (code, text)

let contains needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec loop i = i + nl <= hl && (String.sub haystack i nl = needle || loop (i + 1)) in
  loop 0

let check_contains what (code, text) needles =
  Alcotest.(check int) (what ^ " exit code") 0 code;
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "%s output mentions %S" what needle)
        true (contains needle text))
    needles

let test_list () =
  check_contains "list" (run_capture [ "list" ])
    [ "harris"; "sobel"; "unsharp"; "shitomasi"; "enhance"; "night"; "9 kernels" ]

let test_fuse_app () =
  check_contains "fuse harris"
    (run_capture [ "fuse"; "--app"; "harris" ])
    [ "point-to-local"; "w=328.000"; "w=256.000"; "kernels: 9 -> 6" ]

let test_fuse_dsl_file () =
  check_contains "fuse sobel.pipe"
    (run_capture [ "fuse"; Filename.concat pipelines_dir "sobel.pipe" ])
    [ "kernels: 3 -> 1" ]

let test_emit_cuda_and_cpu () =
  check_contains "emit cuda"
    (run_capture [ "emit"; "--app"; "sobel" ])
    [ "__global__ void sobel_mag"; "cuda_runtime.h" ];
  check_contains "emit cpu"
    (run_capture [ "emit"; "--app"; "sobel"; "--backend"; "cpu"; "-O" ])
    [ "omp parallel for"; "void sobel_mag" ]

let test_estimate () =
  check_contains "estimate"
    (run_capture [ "estimate"; "--app"; "unsharp"; "-d"; "gtx680" ])
    [ "baseline"; "mincut"; "speedup" ]

let test_dsl_check_ok_and_error () =
  check_contains "dsl-check"
    (run_capture [ "dsl-check"; Filename.concat pipelines_dir "unsharp.pipe" ])
    [ "OK (4 kernels" ];
  let code, text = run_capture [ "fuse"; "--app"; "not_an_app" ] in
  Alcotest.(check bool) "bad app fails" true (code <> 0);
  Alcotest.(check bool) "helpful error" true (contains "unknown application" text)

let test_explain_dot_unparse () =
  check_contains "explain"
    (run_capture [ "explain"; "--app"; "night" ])
    [ "Edge benefits"; "point-based"; "Algorithm 1 trace"; "Inlining verdicts" ];
  check_contains "dot"
    (run_capture [ "dot"; "--app"; "harris"; "-w" ])
    [ "digraph harris"; "subgraph cluster_"; "label=\"328\"" ];
  check_contains "unparse"
    (run_capture [ "unparse"; "-a"; "sobel" ])
    [ "pipeline sobel(in)"; "sqrt" ]

let test_run_on_pgm () =
  (* Full image-in image-out flow through the binary. *)
  let input = Filename.temp_file "kfusec_in" ".pgm" in
  let output = Filename.temp_file "kfusec_out" ".pgm" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) [ input; output ])
    (fun () ->
      let img =
        Kfuse_image.Image.init ~width:40 ~height:30 (fun x y ->
            if (x / 8) + (y / 8) mod 2 = 0 then 0.9 else 0.1)
      in
      Kfuse_image.Pgm.write input img;
      let code, text =
        run_capture
          [ "run"; Filename.concat pipelines_dir "emboss.pipe"; "-i"; input; "-o"; output ]
      in
      Alcotest.(check int) "exit" 0 code;
      Alcotest.(check bool) "reports output" true (contains "wrote" text);
      let out = Kfuse_image.Pgm.read output in
      Alcotest.(check int) "output width" 40 (Kfuse_image.Image.width out);
      Alcotest.(check int) "output height" 30 (Kfuse_image.Image.height out))

let test_check () =
  check_contains "check built-in"
    (run_capture [ "check"; "--app"; "harris" ])
    [ "harris: OK (9 kernels" ];
  check_contains "check DSL file"
    (run_capture [ "check"; Filename.concat pipelines_dir "sobel.pipe" ])
    [ "OK (3 kernels" ];
  let bad = Filename.temp_file "kfusec_bad" ".pipe" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove bad with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_text bad (fun oc ->
          output_string oc "pipeline p(in)\nout = conv(ghost, gauss3)\n");
      let code, text = run_capture [ "check"; bad ] in
      Alcotest.(check bool) "malformed file fails" true (code <> 0);
      Alcotest.(check bool) "typed diagnostic" true (contains "error[KF" text))

let test_read_file_diagnostic () =
  (* A FILE argument that exists but cannot be read as a file (a
     directory) must come back as a clean KF0101 diagnostic, not an
     uncaught Sys_error. *)
  let code, text = run_capture [ "check"; "." ] in
  Alcotest.(check bool) "nonzero exit" true (code <> 0);
  Alcotest.(check bool) "typed io diagnostic" true (contains "error[KF0101]" text);
  Alcotest.(check bool) "no raw exception" false (contains "Sys_error" text)

let test_fault_injection_e2e () =
  (* Acceptance: an injected search fault degrades to the baseline with
     a warning and exit 0 by default, and fails with nonzero status
     under --strict. *)
  let env = "KFUSE_FAULTS=cut.stoer_wagner@1" in
  let code, text = run_capture ~env [ "fuse"; "--app"; "harris"; "-j"; "2" ] in
  Alcotest.(check int) "degraded fuse exits 0" 0 code;
  Alcotest.(check bool) "fault warning" true (contains "warning[KF0901]" text);
  Alcotest.(check bool) "fell back" true (contains "degraded: fell back" text);
  Alcotest.(check bool) "baseline kernel count" true (contains "kernels: 9 -> 9" text);
  let code, text = run_capture ~env [ "fuse"; "--app"; "harris"; "--strict" ] in
  Alcotest.(check bool) "strict exits nonzero" true (code <> 0);
  Alcotest.(check bool) "strict error" true (contains "error[KF0901]" text);
  let code, text = run_capture ~env:"KFUSE_FAULTS=nonsense@@" [ "list" ] in
  Alcotest.(check int) "malformed spec exits 2" 2 code;
  Alcotest.(check bool) "spec error message" true (contains "malformed KFUSE_FAULTS" text)

let cc_available = lazy (Sys.command "cc --version > /dev/null 2>&1" = 0)

let require_cc () = if not (Lazy.force cc_available) then Alcotest.skip ()

let with_temp_dir f =
  let dir = Filename.temp_file "kfusec_native" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f dir)

let test_run_native_e2e () =
  (* The full --native flow: plan, compile, execute, verify against the
     interpreter, write the result image. *)
  require_cc ();
  with_temp_dir @@ fun dir ->
  let input = Filename.concat dir "in.pgm" in
  let output = Filename.concat dir "out.pgm" in
  let img =
    Kfuse_image.Image.init ~width:32 ~height:24 (fun x y ->
        0.1 +. (0.8 *. float_of_int ((x + y) mod 7) /. 7.0))
  in
  Kfuse_image.Pgm.write input img;
  let args file =
    [
      "run"; Filename.concat pipelines_dir file; "--native"; "--cache-dir"; dir;
      "-i"; input; "-o"; output;
    ]
  in
  let code, text = run_capture (args "sobel.pipe") in
  Alcotest.(check int) "native run exits 0" 0 code;
  Alcotest.(check bool) "native diff reported as exactly 0" true
    (contains "native max-abs-diff vs interpreter: 0" text);
  Alcotest.(check bool) "compile reported" true (contains "kfusec: native (" text);
  Alcotest.(check bool) "image written" true (contains "wrote" text);
  let out = Kfuse_image.Pgm.read output in
  Alcotest.(check int) "output width" 32 (Kfuse_image.Image.width out);
  (* Same plan again: the artifact cache serves the compile. *)
  let code, text = run_capture (args "sobel.pipe") in
  Alcotest.(check int) "cached run exits 0" 0 code;
  Alcotest.(check bool) "artifact cache hit" true (contains "(cached)" text);
  (* Forced subprocess mode agrees too. *)
  let code, text =
    run_capture (args "sobel.pipe" @ [ "--exec-mode"; "subprocess" ])
  in
  Alcotest.(check int) "subprocess run exits 0" 0 code;
  Alcotest.(check bool) "subprocess diff 0" true
    (contains "native max-abs-diff vs interpreter: 0" text)

let test_run_native_no_toolchain () =
  (* KFUSE_CC pointing nowhere must surface as a typed KF0902, not a
     crash.  The subprocess env keeps the probe isolated from the
     suite's own toolchain discovery. *)
  with_temp_dir @@ fun dir ->
  let input = Filename.concat dir "in.pgm" in
  Kfuse_image.Pgm.write input (Kfuse_image.Image.const ~width:8 ~height:8 0.5);
  let code, text =
    run_capture ~env:"KFUSE_FAULTS= KFUSE_CC=/definitely/not/a/compiler"
      [
        "run"; Filename.concat pipelines_dir "sobel.pipe"; "--native";
        "--cache-dir"; dir; "-i"; input; "-o"; Filename.concat dir "out.pgm";
      ]
  in
  Alcotest.(check bool) "missing toolchain fails" true (code <> 0);
  Alcotest.(check bool) "typed KF0902" true (contains "KF0902" text)

let test_fuzz_native_smoke () =
  require_cc ();
  let code, text = run_capture [ "fuzz"; "--cases"; "2"; "--seed"; "3"; "--native" ] in
  Alcotest.(check int) "native fuzz exits 0" 0 code;
  Alcotest.(check bool) "campaign is clean" true (contains "no failures" text)

let test_bench_native_small () =
  require_cc ();
  with_temp_dir @@ fun dir ->
  let out = Filename.concat dir "bench.json" in
  (* A present snapshot passes the gate; its content is not inspected. *)
  let snapshot = Filename.concat dir "BENCH_prev.json" in
  Out_channel.with_open_text snapshot (fun oc -> output_string oc "{}\n");
  let code, text =
    run_capture
      [
        "bench-native"; "-o"; out; "--runs"; "1"; "--width"; "32"; "--height"; "24";
        "--apps"; "sobel,unsharp"; "--check"; "--cache-dir"; dir;
        "--snapshots"; snapshot;
      ]
  in
  Alcotest.(check int) "bench-native --check exits 0" 0 code;
  Alcotest.(check bool) "summary table printed" true (contains "sobel" text);
  let json = In_channel.with_open_text out In_channel.input_all in
  Alcotest.(check bool) "versioned schema" true (contains "kfuse-bench-native/v1" json);
  Alcotest.(check bool) "both apps present" true
    (contains "\"sobel\"" json && contains "\"unsharp\"" json)

let test_bench_snapshot_gate () =
  (* The --snapshots presence gate fires before any benchmark runs, so a
     missing committed snapshot fails fast (no toolchain needed). *)
  with_temp_dir @@ fun dir ->
  let present = Filename.concat dir "BENCH_present.json" in
  Out_channel.with_open_text present (fun oc -> output_string oc "{}\n");
  let ghost = Filename.concat dir "BENCH_ghost.json" in
  let code, text =
    run_capture
      [ "bench-native"; "--check"; "--snapshots"; present ^ "," ^ ghost ]
  in
  Alcotest.(check int) "missing snapshot exits 1" 1 code;
  Alcotest.(check bool) "names the absentee" true (contains "BENCH_ghost.json" text);
  Alcotest.(check bool) "fails before benchmarking" false (contains "sobel" text);
  (* Without --check the flag is inert: the gate belongs to the gate. *)
  let code, text =
    run_capture
      [
        "bench-native"; "--snapshots"; ghost; "--runs"; "0"; "--apps"; "nosuchapp";
        "-o"; "-";
      ]
  in
  Alcotest.(check bool) "no gate without --check" false
    (code = 1 && contains "snapshot" text)

let test_repl_script () =
  (* The lazy-pipeline repl, batch mode: build a two-chain DAG, flush
     incrementally and from scratch, and check the two fingerprints the
     transcript prints are equal (the differential invariant, through
     the real binary). *)
  with_temp_dir @@ fun dir ->
  let script = Filename.concat dir "edit.kf" in
  Out_channel.with_open_text script (fun oc ->
      output_string oc
        "# repl e2e\n\
         input in\n\
         add blur = conv(in, gauss3, mirror)\n\
         param gain 1.5\n\
         add mag = blur * gain + in\n\
         show\n\
         flush\n\
         add mix = mag - blur\n\
         flush\n\
         flush scratch\n\
         quit\n");
  let code, text =
    run_capture [ "repl"; "--width"; "48"; "--height"; "32"; "--script"; script ]
  in
  Alcotest.(check int) "repl script exits 0" 0 code;
  Alcotest.(check bool) "edits applied" true (contains "applied: append mix" text);
  Alcotest.(check bool) "show prints state" true (contains "kernels (2): blur mag" text);
  let fingerprints =
    String.split_on_char '\n' text
    |> List.filter_map (fun l ->
           match String.split_on_char ' ' (String.trim l) with
           | [ "fingerprint"; fp ] -> Some fp
           | _ -> None)
  in
  Alcotest.(check int) "three flush fingerprints" 3 (List.length fingerprints);
  (match fingerprints with
  | [ first; incr; scratch ] ->
    Alcotest.(check string) "incremental = scratch" scratch incr;
    Alcotest.(check bool) "edit changed the plan" true (first <> incr)
  | _ -> Alcotest.fail "unexpected fingerprint lines");
  (* A rejected command aborts batch mode with the offending line. *)
  let bad = Filename.concat dir "bad.kf" in
  Out_channel.with_open_text bad (fun oc ->
      output_string oc "input in\nfrob x\n");
  let code, text =
    run_capture [ "repl"; "--width"; "8"; "--height"; "8"; "--script"; bad ]
  in
  Alcotest.(check int) "bad script exits 1" 1 code;
  Alcotest.(check bool) "typed parse error" true (contains "error[KF0201]" text);
  Alcotest.(check bool) "line number reported" true (contains "repl:2" text)

let test_budget_e2e () =
  let code, text =
    run_capture [ "fuse"; "--app"; "harris"; "--budget-ms"; "0" ]
  in
  Alcotest.(check int) "budget fallback exits 0" 0 code;
  Alcotest.(check bool) "budget warning" true (contains "warning[KF0603]" text);
  let code, _ =
    run_capture [ "fuse"; "--app"; "harris"; "--budget-ms"; "0"; "--strict" ]
  in
  Alcotest.(check bool) "strict budget exits nonzero" true (code <> 0)

let suite =
  [
    Alcotest.test_case "list" `Quick test_list;
    Alcotest.test_case "fuse built-in app" `Quick test_fuse_app;
    Alcotest.test_case "fuse DSL file" `Quick test_fuse_dsl_file;
    Alcotest.test_case "emit cuda + cpu" `Quick test_emit_cuda_and_cpu;
    Alcotest.test_case "estimate" `Quick test_estimate;
    Alcotest.test_case "dsl-check + errors" `Quick test_dsl_check_ok_and_error;
    Alcotest.test_case "explain/dot/unparse" `Quick test_explain_dot_unparse;
    Alcotest.test_case "run on PGM image" `Quick test_run_on_pgm;
    Alcotest.test_case "check subcommand" `Quick test_check;
    Alcotest.test_case "read_file diagnostic" `Quick test_read_file_diagnostic;
    Alcotest.test_case "fault injection end-to-end" `Quick test_fault_injection_e2e;
    Alcotest.test_case "budget end-to-end" `Quick test_budget_e2e;
    Alcotest.test_case "bench-native snapshot gate" `Quick test_bench_snapshot_gate;
    Alcotest.test_case "repl --script end-to-end" `Quick test_repl_script;
    Alcotest.test_case "run --native end-to-end" `Slow test_run_native_e2e;
    Alcotest.test_case "run --native without a toolchain" `Quick
      test_run_native_no_toolchain;
    Alcotest.test_case "fuzz --native smoke" `Slow test_fuzz_native_smoke;
    Alcotest.test_case "bench-native --check" `Slow test_bench_native_small;
  ]
