lib/util/rng.mli:
