(** Fusion-model configuration.

    Bundles the architecture parameters of the benefit-estimation model
    (Section II-C) and the knobs of the legality checks.  "Those
    variables are flexible and can be adapted for new architectures"
    (Section II-C.2); {!default} uses the values of the paper's worked
    example. *)

(** Unit in which iteration-space sizes [IS(i)] enter the benefit model.
    The paper's Harris walkthrough notes that for constant-size images
    "IS can be simply replaced by the number of images", which yields the
    edge weights 328/328/256 of Figure 3; pixel units scale every weight
    by the image size and leave all comparisons unchanged. *)
type is_unit =
  | Images  (** IS(i) = channels of one image = 1 per plane *)
  | Pixels  (** IS(i) = width * height * channels *)

type t = {
  tg : float;  (** global-memory access latency in cycles (400-800) *)
  ts : float;  (** shared-memory access latency in cycles *)
  c_alu : float;  (** average ALU operation cost in cycles (Eq. 6) *)
  c_sfu : float;  (** average SFU operation cost in cycles (Eq. 6) *)
  gamma : float;  (** extra per-fusion gains (launch overhead etc., Eq. 12) *)
  epsilon : float;  (** weight of illegal edges; must be positive (Eq. 12) *)
  c_mshared : float;  (** shared-memory growth threshold of Eq. 2 *)
  block : Kfuse_ir.Cost.block;  (** thread-block shape for tile sizing *)
  is_unit : is_unit;
}

(** Paper defaults: [tg = 400], [ts = 4], [c_alu = 4], [c_sfu = 16],
    [gamma = 0], [epsilon = 0.001], [c_mshared = 2], 32x4 blocks, image
    units. *)
val default : t

(** [validate_result t] checks positivity constraints ([epsilon > 0],
    [tg >= ts > 0], [c_mshared >= 1], positive op costs), reporting the
    first violation as a {!Kfuse_util.Diag.Config_invalid} diagnostic. *)
val validate_result : t -> (unit, Kfuse_util.Diag.t) result

(** [validate t] is {!validate_result} raising [Invalid_argument] on
    violation. *)
val validate : t -> unit

(** [is_of t pipeline] is the iteration-space size of one intermediate
    image of [pipeline] in the configured unit. *)
val is_of : t -> Kfuse_ir.Pipeline.t -> float
