lib/codegen/lower.mli: Cuda_ast Kfuse_ir
