(** Algebraic simplification of kernel bodies.

    A classic bottom-up rewriter: constant folding, arithmetic identities
    ([x + 0], [x * 1], [x / 1], [pow x 1], double negation), select
    folding on constant comparisons, dead- and trivial-[Let] elimination,
    and removal of zero [Shift]s.  Runs to a fixpoint.

    Fused kernel bodies produced by {!Transform} inherit every constant
    of their producers, so folding visibly shrinks them before code
    generation.

    Caveat: the rewrite [x * 0 -> 0] (and [0 / x -> 0]) assumes finite
    pixel values — on a NaN or infinity input the unsimplified expression
    would produce NaN instead of 0.  Image pipelines operate on finite
    data; callers that cannot guarantee this should skip simplification. *)

(** [expr e] simplifies one expression. *)
val expr : Expr.t -> Expr.t

(** [kernel k] simplifies a kernel's body (map and reduce alike).  The
    kernel's inputs are recomputed, since simplification can remove the
    last read of an image. *)
val kernel : Kernel.t -> Kernel.t

(** [pipeline p] simplifies every kernel.  Kernels whose last read of
    some image disappears keep their reduced input lists; the pipeline is
    revalidated.  Interior kernels left without any consumer by the
    rewrites are dropped (transitively), so the observable output set —
    the kernels that had no consumers in [p] — is preserved. *)
val pipeline : Pipeline.t -> Pipeline.t
