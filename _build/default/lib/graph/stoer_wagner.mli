(** Stoer-Wagner global minimum cut.

    Deterministic implementation of the algorithm of Stoer and Wagner
    (J. ACM 44(4), 1997), used by the fusion algorithm to split illegal
    partition blocks along their minimum-weight edge set (Section III-A).
    Complexity is [O(|V|^3)] in this dense-matrix formulation, which is
    more than adequate for kernel DAGs (tens of vertices) and matches the
    bound [O(|E||V| + |V|^2 log |V|)] cited by the paper up to the usual
    dense/sparse tradeoff.

    Determinism: each maximum-adjacency phase starts from the
    smallest-id active vertex and breaks weight ties towards smaller ids,
    so "if there exist multiple sets of edges that have the same weight,
    the algorithm selects the first one encountered" (Section III-A). *)

(** [min_cut g] is [(w, side)] where [w] is the weight of a global minimum
    cut of [g] and [side] is the set of original vertices on one side
    (neither side is empty).  If [g] is disconnected the result has weight
    [0.] with a connected component as [side].
    @raise Invalid_argument if [g] has fewer than 2 vertices. *)
val min_cut : Wgraph.t -> float * Kfuse_util.Iset.t

(** [min_cut_brute g] computes the same quantity by enumerating all
    [2^(n-1) - 1] bipartitions.  Exponential; intended only as a test
    oracle for small graphs.
    @raise Invalid_argument if [g] has fewer than 2 or more than 20
    vertices. *)
val min_cut_brute : Wgraph.t -> float * Kfuse_util.Iset.t
