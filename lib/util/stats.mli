(** Summary statistics for repeated measurements.

    Mirrors the box-plot quantities reported in Figure 6 of the paper
    (minimum, 25th percentile, median, 75th percentile, maximum over 500
    runs), plus the geometric mean used by Table II. *)

type summary = {
  n : int;  (** number of samples *)
  min : float;
  p25 : float;  (** 25th percentile *)
  median : float;
  p75 : float;  (** 75th percentile *)
  max : float;
  mean : float;
}

(** [summarize samples] computes the box-plot summary of [samples].
    Percentiles use linear interpolation between order statistics.
    @raise Invalid_argument on an empty input. *)
val summarize : float array -> summary

(** [percentile p sorted] is the [p]-th percentile ([0. <= p <= 100.]) of an
    array already sorted in increasing order. *)
val percentile : float -> float array -> float

(** [geomean xs] is the geometric mean of [xs]; all elements must be
    positive. *)
val geomean : float list -> float

(** [mean xs] is the arithmetic mean. *)
val mean : float array -> float

(** [pp_summary ppf s] prints a one-line rendering of [s]. *)
val pp_summary : Format.formatter -> summary -> unit

(** {1 Streaming percentiles}

    A bounded reservoir (Vitter's algorithm R) over an unbounded stream:
    every value seen so far is in the sample with equal probability, so
    order statistics of the sample estimate those of the stream with a
    fixed memory footprint.  Deterministic for a fixed [seed] and
    insertion sequence.  The [kfused] service uses one per request kind
    for latency reporting; min/max/mean are tracked exactly over the
    whole stream.  Not thread-safe — callers synchronize. *)

type reservoir

(** [reservoir ?seed capacity] is an empty reservoir keeping at most
    [capacity] samples.  @raise Invalid_argument if [capacity < 1]. *)
val reservoir : ?seed:int -> int -> reservoir

(** [add r x] observes one value. *)
val add : reservoir -> float -> unit

(** [count r] is the number of values observed (not retained). *)
val count : reservoir -> int

(** Percentile snapshot of a reservoir.  [p50]..[p99] are estimated from
    the retained sample; [samples], [q_min], [q_max], and [q_mean] are
    exact over everything observed. *)
type quantiles = {
  samples : int;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
  q_min : float;
  q_max : float;
  q_mean : float;
}

(** [quantiles r] is [None] until at least one value was observed. *)
val quantiles : reservoir -> quantiles option

val pp_quantiles : Format.formatter -> quantiles -> unit
