bench/exp_fig6.ml: Kfuse_apps Kfuse_gpu Kfuse_util List Printf Runner
