module Iset = Kfuse_util.Iset
module Pipeline = Kfuse_ir.Pipeline
module Kernel = Kfuse_ir.Kernel

let report config (p : Pipeline.t) =
  let buf = Buffer.create 2048 in
  let b fmt = Printf.bprintf buf fmt in
  let name i = (Pipeline.kernel p i).Kernel.name in
  b "# Fusion report: pipeline %s (%dx%dx%d, %d kernels)\n\n" p.Pipeline.name
    p.Pipeline.width p.Pipeline.height p.Pipeline.channels (Pipeline.num_kernels p);

  b "## Kernels\n";
  Array.iteri
    (fun i (k : Kernel.t) ->
      let c = Kfuse_ir.Cost.kernel_op_counts k in
      b "- %s: %s; reads [%s]; %d ALU + %d SFU ops; ~%d registers\n" k.Kernel.name
        (Kernel.pattern_to_string (Kernel.pattern k))
        (String.concat ", " k.Kernel.inputs)
        c.Kfuse_ir.Cost.alu c.Kfuse_ir.Cost.sfu
        (Kfuse_ir.Cost.kernel_registers k);
      ignore i)
    p.Pipeline.kernels;

  b "\n## Edge benefits (Eqs. 3-12)\n";
  List.iter
    (fun (r : Benefit.edge_report) ->
      b "- %s -> %s over %s: %s" (name r.Benefit.src) (name r.Benefit.dst)
        r.Benefit.image
        (Benefit.scenario_to_string r.Benefit.scenario);
      (match r.Benefit.scenario with
      | Benefit.Illegal reason -> b " (%s)" (Legality.reason_to_string p reason)
      | Benefit.Point_based | Benefit.Point_to_local | Benefit.Local_to_local ->
        b "; delta = %.1f, phi = %.1f" r.Benefit.delta r.Benefit.phi);
      b "; weight = %.3f\n" r.Benefit.weight)
    (Benefit.all_edges config p);

  b "\n## Algorithm 1 trace\n";
  let result = Mincut_fusion.run config p in
  List.iter
    (fun step -> b "- %s\n" (Format.asprintf "%a" (Mincut_fusion.pp_step p) step))
    result.Mincut_fusion.steps;
  b "final partition:";
  List.iter
    (fun blk ->
      b " {%s}" (String.concat ", " (List.map name (Iset.elements blk))))
    result.Mincut_fusion.partition;
  b "\nobjective beta = %.3f\n" result.Mincut_fusion.objective;

  b "\n## Inlining verdicts (extension)\n";
  Array.iter
    (fun (k : Kernel.t) ->
      b "- %s: %s\n" k.Kernel.name
        (Inline_fusion.verdict_to_string (Inline_fusion.judge config p k.Kernel.name)))
    p.Pipeline.kernels;

  b "\n## Distribution verdicts (extension)\n";
  Array.iter
    (fun (k : Kernel.t) ->
      b "- %s: %s\n" k.Kernel.name
        (Distribute.verdict_to_string (Distribute.judge p k.Kernel.name)))
    p.Pipeline.kernels;
  Buffer.contents buf
