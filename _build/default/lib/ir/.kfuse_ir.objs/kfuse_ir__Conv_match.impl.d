lib/ir/conv_match.ml: Expr Float Kfuse_image List String
