type t = No_deadline | At of { at : float; budget_ms : float }

exception Expired of { budget_ms : float }

let none = No_deadline

let after_ms budget_ms = At { at = Unix.gettimeofday () +. (budget_ms /. 1000.0); budget_ms }

let budget_ms = function No_deadline -> None | At { budget_ms; _ } -> Some budget_ms

let expired = function
  | No_deadline -> false
  | At { at; _ } -> Unix.gettimeofday () > at

let remaining_ms = function
  | No_deadline -> None
  | At { at; _ } -> Some (Float.max 0.0 ((at -. Unix.gettimeofday ()) *. 1000.0))

let check = function
  | No_deadline -> ()
  | At { at; budget_ms } -> if Unix.gettimeofday () > at then raise (Expired { budget_ms })
