lib/image/mask.mli: Format
