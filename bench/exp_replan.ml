(* exp-replan: incremental replanning vs planning from scratch.

   Builds a 48-kernel lazy pipeline (8 disconnected 6-kernel chains —
   single-kernel edits dirty exactly one chain) through the repl command
   grammar, then replays an edit sequence covering every edit kind
   (param, retarget, append, delete).  After each edit the pipeline is
   flushed twice: incrementally through the session memos, and from
   scratch as the differential reference.  The two plans must have equal
   fingerprints (bit-identical partition/objective/fused pipeline); the
   latency gap is the payoff of the memo.

   Per-edit latencies are the median over [rounds] full replays of the
   sequence (each round starts from a fresh builder, so round N never
   sees round N-1's memos).  Results go to BENCH_replan.json as a
   kfuse-bench-replan/v1 document.  Run with [bench/main.exe replan]. *)

module Lz = Kfuse_lazy
module Jsonx = Kfuse_service.Jsonx
module Diag = Kfuse_util.Diag

let out_path = "BENCH_replan.json"
let chains = 8
let depth = 6 (* kernels per chain *)
let rounds = 5
let width = 512
let height = 512

let time_ms f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.)

let expect what = function
  | Ok v -> v
  | Error d -> failwith (Printf.sprintf "exp-replan: %s: %s" what (Diag.to_string d))

(* The DAG, as repl command lines: chain [c] mixes stencils and
   pointwise kernels so each chain fuses non-trivially on its own. *)
let build_script =
  List.concat_map
    (fun c ->
      let k j = Printf.sprintf "c%d_%d" c j in
      let inp = Printf.sprintf "in%d" c in
      [
        Printf.sprintf "input %s" inp;
        Printf.sprintf "add %s = conv(%s, gauss3, mirror)" (k 0) inp;
        Printf.sprintf "add %s = %s * 2.0" (k 1) (k 0);
        Printf.sprintf "add %s = conv(%s, gauss5, mirror)" (k 2) (k 1);
        Printf.sprintf "add %s = %s + %s" (k 3) (k 2) (k 0);
        Printf.sprintf "add %s = conv(%s, sobelx, mirror)" (k 4) (k 3);
        Printf.sprintf "add %s = %s * 0.5 + %s" (k 5) (k 4) (k 2);
      ])
    (List.init chains Fun.id)

(* One single-kernel edit of each kind per chain, all confined to that
   chain: the other 7 chains' min-cut decisions must replay from memo. *)
let edit_script =
  List.concat_map
    (fun c ->
      let k j = Printf.sprintf "c%d_%d" c j in
      [
        ("param", Printf.sprintf "param gain%d %.1f" c (1.0 +. (0.1 *. float_of_int c)));
        ("retarget", Printf.sprintf "retarget %s %s %s" (k 5) (k 2) (k 0));
        ("append", Printf.sprintf "add x%d = %s * 1.1" c (k 5));
        ("delete", Printf.sprintf "del x%d" c);
      ])
    (List.init chains Fun.id)

let exec lp line =
  ignore
    (expect
       (Printf.sprintf "edit %S" line)
       (Result.bind (Lz.Command.parse lp line) (fun cmd -> Lz.Command.apply lp cmd)))

(* Flush incrementally, then from scratch, and check the differential
   invariant: equal plan fingerprints. *)
let flush_pair pool lp =
  let inc, inc_ms = time_ms (fun () -> expect "flush" (Lz.Lazy_pipeline.flush ~pool lp)) in
  let scr, scr_ms =
    time_ms (fun () -> expect "flush scratch" (Lz.Lazy_pipeline.flush_scratch ~pool lp))
  in
  if inc.Lz.Replan.fingerprint <> scr.Lz.Replan.fingerprint then
    failwith "exp-replan: incremental and scratch plans diverged";
  (inc, inc_ms, scr_ms)

let fresh_builder () =
  let lp =
    Lz.Lazy_pipeline.create ~name:"replan" ~width ~height Kfuse_fusion.Config.default
  in
  List.iter (exec lp) build_script;
  lp

let median a =
  let a = Array.copy a in
  Array.sort compare a;
  a.(Array.length a / 2)

let run () =
  Printf.printf "=== exp-replan: incremental replanning vs scratch (%d kernels) ===\n"
    (chains * depth);
  let pool = Runner.pool () in
  let n_edits = List.length edit_script in
  (* inc/scr latency per edit index, one row per round *)
  let inc_ms = Array.make_matrix rounds n_edits 0. in
  let scr_ms = Array.make_matrix rounds n_edits 0. in
  let stats = Array.make n_edits None in
  for r = 0 to rounds - 1 do
    let lp = fresh_builder () in
    ignore (flush_pair pool lp) (* cold flush: warm this round's memo *);
    List.iteri
      (fun i (_, line) ->
        exec lp line;
        let plan, i_ms, s_ms = flush_pair pool lp in
        inc_ms.(r).(i) <- i_ms;
        scr_ms.(r).(i) <- s_ms;
        if r = 0 then stats.(i) <- Some plan.Lz.Replan.stats)
      edit_script
  done;
  (* Median across rounds per edit, then p50 per kind and overall. *)
  let per_edit =
    List.mapi
      (fun i (kind, line) ->
        let col m = Array.init rounds (fun r -> m.(r).(i)) in
        let s = Option.get stats.(i) in
        (kind, line, median (col inc_ms), median (col scr_ms), s))
      edit_script
  in
  let p50 xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let kind_summary kind =
    let rows = List.filter (fun (k, _, _, _, _) -> k = kind) per_edit in
    let inc = p50 (List.map (fun (_, _, i, _, _) -> i) rows) in
    let scr = p50 (List.map (fun (_, _, _, s, _) -> s) rows) in
    (kind, inc, scr)
  in
  let kinds = List.map kind_summary [ "param"; "retarget"; "append"; "delete" ] in
  let all_inc = p50 (List.map (fun (_, _, i, _, _) -> i) per_edit) in
  let all_scr = p50 (List.map (fun (_, _, _, s, _) -> s) per_edit) in
  let tier inc scr =
    Jsonx.Obj
      [
        ("incremental_p50_ms", Jsonx.Num inc);
        ("scratch_p50_ms", Jsonx.Num scr);
        ("speedup", Jsonx.Num (scr /. inc));
      ]
  in
  let doc =
    Jsonx.Obj
      [
        ("schema", Jsonx.Str "kfuse-bench-replan/v1");
        ("kernels", Jsonx.Num (float_of_int (chains * depth)));
        ("chains", Jsonx.Num (float_of_int chains));
        ("extent", Jsonx.Str (Printf.sprintf "%dx%d" width height));
        ("rounds", Jsonx.Num (float_of_int rounds));
        ("edits", Jsonx.Num (float_of_int n_edits));
        ("overall", tier all_inc all_scr);
        ("kinds", Jsonx.Obj (List.map (fun (k, i, s) -> (k, tier i s)) kinds));
        ( "per_edit",
          Jsonx.Arr
            (List.map
               (fun (kind, line, i, s, (st : Lz.Replan.stats)) ->
                 Jsonx.Obj
                   [
                     ("kind", Jsonx.Str kind);
                     ("edit", Jsonx.Str line);
                     ("incremental_ms", Jsonx.Num i);
                     ("scratch_ms", Jsonx.Num s);
                     ("blocks_reused", Jsonx.Num (float_of_int st.Lz.Replan.blocks_reused));
                     ( "blocks_replanned",
                       Jsonx.Num (float_of_int st.Lz.Replan.blocks_replanned) );
                     ("edges_reused", Jsonx.Num (float_of_int st.Lz.Replan.edges_reused));
                     ( "edges_rescored",
                       Jsonx.Num (float_of_int st.Lz.Replan.edges_rescored) );
                   ])
               per_edit) );
      ]
  in
  let oc = open_out out_path in
  output_string oc (Jsonx.to_string doc);
  output_char oc '\n';
  close_out oc;
  List.iter
    (fun (k, i, s) ->
      Printf.printf "%-9s incremental p50 %.3f ms   scratch p50 %.3f ms   (%.1fx)\n" k i s
        (s /. i))
    kinds;
  Printf.printf "overall   incremental p50 %.3f ms   scratch p50 %.3f ms   (%.1fx)\n"
    all_inc all_scr (all_scr /. all_inc);
  Printf.printf "wrote %s\n" out_path
