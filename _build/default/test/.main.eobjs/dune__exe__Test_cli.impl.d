test/test_cli.ml: Alcotest Filename Fun In_channel Kfuse_image List Printf String Sys
