module Rng = Kfuse_util.Rng
module Kernel = Kfuse_ir.Kernel
module Expr = Kfuse_ir.Expr
module Mask = Kfuse_image.Mask

type edit =
  | Append of Kernel.t
  | Delete of string
  | Retarget of { kernel : string; from_ : string; to_ : string }
  | Set_param of string * float

let to_string = function
  | Append k ->
    Printf.sprintf "append %s <- [%s]" k.Kernel.name
      (String.concat ", " k.Kernel.inputs)
  | Delete n -> Printf.sprintf "delete %s" n
  | Retarget { kernel; from_; to_ } ->
    Printf.sprintf "retarget %s: %s -> %s" kernel from_ to_
  | Set_param (n, v) -> Printf.sprintf "param %s = %g" n v

let apply lp = function
  | Append k -> Lazy_pipeline.add lp k
  | Delete n -> Lazy_pipeline.remove lp n
  | Retarget { kernel; from_; to_ } -> Lazy_pipeline.retarget lp ~kernel ~from_ ~to_
  | Set_param (n, v) -> Lazy_pipeline.set_param lp n v

(* --- generator helpers ----------------------------------------------- *)

let pick rng l = List.nth l (Rng.int rng (List.length l))

let fresh_name lp =
  let taken = Lazy_pipeline.images lp @ List.map fst (Lazy_pipeline.params lp) in
  let rec go i =
    let c = Printf.sprintf "lz%d" i in
    if List.mem c taken then go (i + 1) else c
  in
  go 0

(* Images an appended kernel may read: inputs plus non-global kernel
   outputs (a reduction's 1x1 output is not header-compatible). *)
let readable lp =
  Lazy_pipeline.inputs lp
  @ List.filter_map
      (fun (k : Kernel.t) -> if Kernel.is_global k then None else Some k.Kernel.name)
      (Lazy_pipeline.kernels lp)

(* Kernels nothing currently reads (deleting one cannot dangle). *)
let unconsumed lp =
  let kernels = Lazy_pipeline.kernels lp in
  let consumed =
    List.concat_map (fun (k : Kernel.t) -> k.Kernel.inputs) kernels
  in
  List.filter_map
    (fun (k : Kernel.t) ->
      if List.mem k.Kernel.name consumed then None else Some k.Kernel.name)
    kernels

(* Does image [img] transitively depend on kernel [target]?  Walks the
   name graph of the builder state; used to refuse cycle-closing
   retargets before the validator would. *)
let depends_on lp ~img ~target =
  let kernels = Lazy_pipeline.kernels lp in
  let producer n =
    List.find_opt (fun (k : Kernel.t) -> k.Kernel.name = n) kernels
  in
  let rec go img =
    img = target
    ||
    match producer img with
    | None -> false
    | Some k -> List.exists go k.Kernel.inputs
  in
  go img

let mk_map name body = Kernel.map ~name ~inputs:(Expr.images body) body

let synth_kernel rng lp ~name sources =
  let a = pick rng sources in
  let c () = Rng.float rng 2.0 +. 0.125 in
  let param_names = List.map fst (Lazy_pipeline.params lp) in
  match Rng.int rng 6 with
  | 0 -> mk_map name Expr.((input a * const (c ())) + const (c ()))
  | 1 ->
    let b = pick rng sources in
    let ea = Expr.input a and eb = Expr.input b in
    mk_map name
      (match Rng.int rng 3 with
      | 0 -> Expr.(ea + eb)
      | 1 -> Expr.(ea * eb)
      | _ -> Expr.max ea eb)
  | 2 -> mk_map name (Expr.conv Mask.gaussian_3x3 a)
  | 3 -> mk_map name (Expr.conv Mask.gaussian_5x5 a)
  | 4 -> mk_map name Expr.(abs (input ~dx:1 a - input ~dy:1 a))
  | _ when param_names <> [] ->
    let pn = pick rng param_names in
    mk_map name Expr.((input a * param pn) + const (c ()))
  | _ -> mk_map name (Expr.sqrt (Expr.abs (Expr.input a)))

let gen_retarget rng lp =
  let kernels = Lazy_pipeline.kernels lp in
  let sources = readable lp in
  if kernels = [] || List.length sources < 2 then None
  else (
    (* a few random attempts, each filtered for validity *)
    let rec attempt n =
      if n = 0 then None
      else (
        let k = pick rng kernels in
        let from_ = pick rng k.Kernel.inputs in
        let to_ = pick rng sources in
        if
          to_ <> from_
          && to_ <> k.Kernel.name
          && not (depends_on lp ~img:to_ ~target:k.Kernel.name)
        then Some (Retarget { kernel = k.Kernel.name; from_; to_ })
        else attempt (n - 1))
    in
    attempt 8)

let random rng lp =
  let sources = readable lp in
  let deletable = unconsumed lp in
  let params = Lazy_pipeline.params lp in
  (* weighted applicable kinds; appends dominate so DAGs grow *)
  let kinds =
    (if sources <> [] then [ `Append; `Append; `Append; `Append ] else [])
    @ (if deletable <> [] then [ `Delete; `Delete ] else [])
    @ (if Lazy_pipeline.kernels lp <> [] then [ `Retarget; `Retarget; `Retarget ]
       else [])
    @ if params <> [] then [ `Param ] else []
  in
  if kinds = [] then None
  else
    match pick rng kinds with
    | `Append -> Some (Append (synth_kernel rng lp ~name:(fresh_name lp) sources))
    | `Delete -> Some (Delete (pick rng deletable))
    | `Param ->
      let n, _ = pick rng params in
      Some (Set_param (n, Rng.float rng 4.0))
    | `Retarget -> (
      match gen_retarget rng lp with
      | Some _ as e -> e
      | None when sources <> [] ->
        Some (Append (synth_kernel rng lp ~name:(fresh_name lp) sources))
      | None -> None)

let random_sequence rng lp n =
  let rec go i acc =
    if i = 0 then List.rev acc
    else
      match random rng lp with
      | None -> List.rev acc
      | Some e -> (
        match apply lp e with
        | Ok () -> go (i - 1) (e :: acc)
        | Error _ -> go (i - 1) acc)
  in
  go n []
