module Iset = Kfuse_util.Iset
module Digraph = Kfuse_graph.Digraph
module Partition = Kfuse_graph.Partition
module Pipeline = Kfuse_ir.Pipeline
module Kernel = Kfuse_ir.Kernel

let pair_fusible config (p : Pipeline.t) a b =
  let merged = Iset.union a b in
  match Legality.check config p merged with
  | Error _ -> false
  | Ok () ->
    let sources = Legality.block_sources p merged in
    Iset.cardinal sources = 1
    && begin
         (* Only the unique source may read from outside the block:
            shared inputs (Figure 2b) are precluded by the basic rules. *)
         let source = Iset.min_elt sources in
         Iset.for_all
           (fun v ->
             v = source
             || List.for_all
                  (fun image ->
                    match Pipeline.producer p image with
                    | Some i -> Iset.mem i merged
                    | None -> false)
                  (Pipeline.kernel p v).Kernel.inputs)
           merged
       end
    && begin
         (* No local-to-local pair anywhere inside the merged block. *)
         let g = Pipeline.dag p in
         not
           (Iset.exists
              (fun u ->
                Kernel.is_local (Pipeline.kernel p u)
                && Iset.exists
                     (fun v -> Iset.mem v merged && Kernel.is_local (Pipeline.kernel p v))
                     (Digraph.succs g u))
              merged)
       end

let partition config (p : Pipeline.t) =
  let g = Pipeline.dag p in
  let edges = Digraph.edges g in
  let rec fixpoint blocks =
    let merge =
      List.find_map
        (fun (u, v) ->
          let bu = Partition.block_of blocks u and bv = Partition.block_of blocks v in
          if Iset.equal bu bv then None
          else if pair_fusible config p bu bv then Some (bu, bv)
          else None)
        edges
    in
    match merge with
    | None -> blocks
    | Some (bu, bv) ->
      let rest =
        List.filter (fun b -> not (Iset.equal b bu || Iset.equal b bv)) blocks
      in
      fixpoint (Partition.normalize (Iset.union bu bv :: rest))
  in
  fixpoint (Partition.singletons g)
