lib/gpu/occupancy.mli: Device
