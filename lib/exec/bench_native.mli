(** Native fused-vs-unfused benchmark over the paper's six applications.

    For each selected {!Kfuse_apps.Registry} entry this builds the
    pipeline, runs the fusion driver twice — [Baseline] (every kernel
    its own launch) and [Mincut] with [optimize] (the paper's
    algorithm) — compiles both through {!Native}, executes them on
    identical deterministic random inputs, and optionally checks both
    against the {!Kfuse_ir.Eval} interpreter.  The result serializes to
    the [BENCH_native.json] schema documented in [EXPERIMENTS.md].

    Wall-clocks are the fastest of [runs] executions of the compiled
    plan (compile time reported separately), so the fused/unfused ratio
    isolates the memory-traffic effect kernel fusion exists to buy. *)

module Diag := Kfuse_util.Diag

type app_report = {
  app : string;
  width : int;
  height : int;
  channels : int;
  kernels_unfused : int;
  kernels_fused : int;
  compile_ms_unfused : float;
  compile_ms_fused : float;
  exec_ms_unfused : float;  (** fastest sample *)
  exec_ms_fused : float;  (** fastest sample *)
  samples_unfused : float list;
  samples_fused : float list;
  interp_ms : float option;  (** interpreter reference; [None] without [verify] *)
  diff_unfused : float option;  (** max abs diff vs. interpreter over all outputs *)
  diff_fused : float option;
}

type t = {
  cc : string;
  openmp : bool;
  mode : Native.mode;
  runs : int;
  generated_at : float;  (** unix seconds *)
  apps : app_report list;
}

(** [speedup r] is [exec_ms_unfused /. exec_ms_fused]. *)
val speedup : app_report -> float

(** [max_diff t] is the worst interpreter-vs-native difference across
    every app and variant, or [None] when nothing was verified. *)
val max_diff : t -> float option

(** [run ()] benchmarks [apps] (default: all six, at the paper's
    evaluation sizes; [width]/[height] override the iteration space for
    quicker runs).  [runs] (default 5) executions per variant; [verify]
    (default [true]) also times the interpreter and reports differences.
    Fails with the first toolchain/compile/exec diagnostic. *)
val run :
  ?mode:Native.mode ->
  ?cache_dir:string ->
  ?runs:int ->
  ?width:int ->
  ?height:int ->
  ?apps:string list ->
  ?verify:bool ->
  unit ->
  (t, Diag.t) result

(** [to_json t] renders the [kfuse-bench-native/v1] document. *)
val to_json : t -> string

val pp_summary : Format.formatter -> t -> unit
