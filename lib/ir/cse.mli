(** Common-subexpression elimination.

    Introduces [Let] bindings for repeated subexpressions so each is
    computed (and, after lowering, each repeated image load issued) once.
    Value-numbering is {e frame-aware}: a [Shift] changes the evaluation
    position, so structurally equal subtrees in different shift frames
    denote different values and are never merged; each [Shift] body is
    processed as its own frame.  Subtrees with free variables are also
    left alone (hoisting would cross their binders).

    This matters most for fused kernels: a consumer that reads the same
    image at the same offset in several arithmetic contexts, or a corner
    response reusing [trace = gx + gy] twice, gets a single register. *)

(** [expr ?min_size e] binds every eligible subtree that occurs at least
    twice within a frame and has at least [min_size] AST nodes (default
    [1], which includes repeated [Input] loads). *)
val expr : ?min_size:int -> Expr.t -> Expr.t

(** [kernel ?min_size k] applies {!expr} to the kernel body. *)
val kernel : ?min_size:int -> Kernel.t -> Kernel.t

(** [pipeline ?min_size p] applies {!kernel} to every kernel. *)
val pipeline : ?min_size:int -> Pipeline.t -> Pipeline.t

(** [dedup_kernels p] is kernel-level CSE: {e twin} kernels — whose
    bodies are structurally equal once producers are identified — are
    merged by rewiring every consumer to the earliest twin and dropping
    the later ones.  A twin no kernel consumes is kept: it is a pipeline
    output, and dropping it would change the pipeline's interface.
    Reaches its fixpoint in one topological pass (a merge can reveal new
    twins downstream, which the same pass catches). *)
val dedup_kernels : Pipeline.t -> Pipeline.t
