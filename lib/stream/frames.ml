module Image = Kfuse_image.Image

(* Integer hash for the noise term: a closed-form function of the cell
   coordinates, not a sequential RNG, so frames are identical however
   they are produced (client preview, server synthesis, fuzz replay). *)
let[@inline] mix h v = (h lxor (v + 0x7f4a7c15 + (h lsl 6) + (h lsr 2))) land 0x3FFFFFFF

let hash2 seed x y =
  let h = seed lxor 0x9e3779b9 in
  let h = mix h x in
  let h = mix h (y * 0x85eb) in
  mix h (x lxor (y lsl 8))

let synthetic ~seed ~width ~height ~index =
  let fw = float_of_int width and fh = float_of_int height in
  let fi = float_of_int index in
  let phase = float_of_int (seed land 1023) *. 0.0061359 in
  (* A bright blob orbiting the frame center: consecutive frames differ
     by genuine motion, so the motion app has edges to find, while the
     per-pixel hash noise keeps every frame unique. *)
  let cx = fw *. (0.5 +. (0.3 *. sin ((fi *. 0.35) +. phase))) in
  let cy = fh *. (0.5 +. (0.3 *. cos ((fi *. 0.23) +. phase))) in
  let rx = 0.15 *. fw and ry = 0.15 *. fh in
  (* The Gaussian separates: exp(-(dx²+dy²)) = exp(-dx²)·exp(-dy²), so
     one exp per row plus one per column replaces one per pixel.  At
     streaming rates the generator runs once per pushed frame on the
     server's single OCaml domain; this keeps it off the critical path. *)
  let ex =
    Array.init width (fun x ->
        let dx = (float_of_int x -. cx) /. rx in
        exp (-.(dx *. dx)))
  in
  let ey =
    Array.init height (fun y ->
        let dy = (float_of_int y -. cy) /. ry in
        exp (-.(dy *. dy)))
  in
  let frame_seed = seed + (index * 7919) in
  (* Flat fill into the backing array: the per-pixel closure dispatch of
     Image.init is measurable at 512x512 x 120 fps aggregate. *)
  let data = Array.make (width * height) 0.0 in
  for y = 0 to height - 1 do
    let eyv = ey.(y) in
    let row = y * width in
    for x = 0 to width - 1 do
      let blob = ex.(x) *. eyv in
      let noise = float_of_int (hash2 frame_seed x y) /. 1073741824.0 in
      data.(row + x) <- 0.15 +. (0.7 *. blob) +. (0.05 *. noise)
    done
  done;
  Image.unsafe_of_flat ~width ~height data
