(** Content fingerprints of pipelines and fusion-plan requests.

    The plan cache addresses entries by what the fusion driver actually
    depends on: the pipeline structure, the {!Kfuse_fusion.Config}
    architecture parameters feeding the benefit model (Eqs. 3-12), the
    strategy, and the driver flags that change the produced report.
    Everything else — [--budget-ms], [-j], [--strict] — shapes {e how
    long} a plan takes to find, not {e which} plan is found, and is
    deliberately excluded.

    Two pipeline fingerprints are provided:

    - {!exact} hashes the pipeline as-is, names included.  Two pipelines
      with equal exact fingerprints are indistinguishable to the driver,
      so a report cached under one can be replayed bit-identically for
      the other.
    - {!structural} is the canonical structural hash: invariant under
      kernel renaming, parameter-list reordering, input-declaration
      reordering, and (for kernels with distinct bodies) reordering of
      the kernel list.  Kernel identities
      are replaced by content hashes of their transitive definitions, the
      parameter list is sorted, and the result is normalized with
      {!Kfuse_ir.Simplify} and {!Kfuse_ir.Cse} so that, e.g., [x * 1]
      and [x] produce the same plan address.

    Known limit of {!structural}: kernels with {e byte-identical} bodies
    ("twins") are disambiguated by topological position, so an
    isomorphism that also swaps distinguishable twins may hash
    differently.  This errs on the side of a false miss, never a false
    hit — correctness is guarded by {!exact} at lookup time. *)

(** [exact p] is a hex digest of [p] exactly as constructed (kernel and
    input names, declaration order, extents, parameter order). *)
val exact : Kfuse_ir.Pipeline.t -> string

(** [structural p] is the canonical structural hex digest described
    above.  Never raises: pipelines the normalization passes reject fall
    back to the un-normalized canonical rendering. *)
val structural : Kfuse_ir.Pipeline.t -> string

(** [config c] renders every {!Kfuse_fusion.Config.t} field that feeds
    the benefit model and the legality checks, bit-exactly. *)
val config : Kfuse_fusion.Config.t -> string

(** A plan-cache address: [structural] names the entry (content
    address), [exact] guards replay (bit-identical reports only). *)
type key = private { structural : string; exact : string }

(** [plan_key ~config ~strategy ?exchange ?optimize ?inline p] combines
    both pipeline fingerprints with the config rendering, the strategy,
    and the report-shaping driver flags (defaults mirror
    {!Kfuse_fusion.Driver.run}). *)
val plan_key :
  config:Kfuse_fusion.Config.t ->
  strategy:Kfuse_fusion.Driver.strategy ->
  ?exchange:bool ->
  ?optimize:bool ->
  ?inline:bool ->
  Kfuse_ir.Pipeline.t ->
  key

(** [kernel_hashes p] is the rename-invariant per-kernel content identity
    underlying {!structural}: for each kernel, in pipeline (topological)
    order, the hex digest of its alpha-renamed body with every image read
    rendered as the producing kernel's own content reference (or the
    external input's name), plus a twin index disambiguating
    byte-identical kernels in stored order.  Two kernels with equal
    [(hash, twin)] pairs — possibly in different pipelines — have
    isomorphic transitive definitions. *)
val kernel_hashes : Kfuse_ir.Pipeline.t -> (string * int) array

(** [subgraph ?hashes p block] is a rename-invariant fingerprint of the
    subgraph induced by the kernel-index set [block]: the iteration
    space, each kernel's [(hash, twin)] content identity in ascending
    index order, whether its output leaves the block (consumed outside or
    a pipeline output), and the in-block edges by dense position.

    These are exactly the facts one step of the min-cut recursion
    ({!Kfuse_fusion.Mincut_fusion.run}) depends on, so under a fixed
    {!Kfuse_fusion.Config}, blocks with equal subgraph fingerprints
    receive the same decision up to the order-preserving positional
    bijection — the invariant the incremental replanner's cross-flush
    memo is built on.  [hashes] (from {!kernel_hashes}) avoids re-hashing
    the whole pipeline per block. *)
val subgraph :
  ?hashes:(string * int) array -> Kfuse_ir.Pipeline.t -> Kfuse_util.Iset.t -> string
