(* Tests for the discrete-event GPU simulator. *)

module G = Kfuse_gpu
module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Mask = Kfuse_image.Mask

let point_pipeline width height =
  Pipeline.create ~name:"pp" ~width ~height ~inputs:[ "in" ]
    [ Kernel.map ~name:"a" ~inputs:[ "in" ] Expr.(input "in" * Const 2.0) ]

let local_pipeline width height =
  Pipeline.create ~name:"lp" ~width ~height ~inputs:[ "in" ]
    [ Kernel.map ~name:"g" ~inputs:[ "in" ] (Expr.conv Mask.gaussian_3x3 "in") ]

let run ?(quality = G.Perf_model.Optimized) d p =
  G.Event_sim.run d ~quality ~fused_kernels:[] p

let analytic ?(quality = G.Perf_model.Optimized) d p =
  snd (G.Perf_model.pipeline_time d ~quality ~fused_kernels:[] p)

let test_memory_bound_matches_roofline () =
  (* Uniform memory-bound blocks saturate bandwidth: the fluid model must
     reproduce bytes / bandwidth exactly (within float slack). *)
  let p = point_pipeline 1024 1024 in
  List.iter
    (fun d ->
      let ev = (run d p).G.Event_sim.total_ms in
      let an = analytic d p in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %.4f vs %.4f" d.G.Device.name ev an)
        true
        (Float.abs (ev -. an) /. an < 0.02))
    G.Device.all

let test_border_penalty_on_small_images () =
  (* On a small image most blocks touch the halo; the event simulator
     charges them extra compute that the roofline ignores.  Use a
     compute-bound kernel so the penalty is visible. *)
  let heavy_local =
    let open Expr in
    let tap dx dy = sqrt (exp (input ~dx ~dy "in")) in
    Pipeline.create ~name:"hv" ~width:64 ~height:16 ~inputs:[ "in" ]
      [
        Kernel.map ~name:"k" ~inputs:[ "in" ]
          (tap (-1) (-1) + tap 0 (-1) + tap 1 (-1) + tap (-1) 0 + tap 0 0 + tap 1 0
          + tap (-1) 1 + tap 0 1 + tap 1 1);
      ]
  in
  let d = G.Device.gtx680 in
  let ev = (run d heavy_local).G.Event_sim.total_ms in
  let an = analytic d heavy_local in
  Alcotest.(check bool)
    (Printf.sprintf "event %.6f > analytic %.6f" ev an)
    true (ev > an)

let test_point_kernel_no_border_penalty () =
  (* Point kernels have no halo; interior/border classes coincide. *)
  let p = point_pipeline 64 16 in
  let d = G.Device.gtx680 in
  let ev = (run d p).G.Event_sim.total_ms in
  let an = analytic d p in
  Alcotest.(check bool) "no penalty" true (Float.abs (ev -. an) /. an < 0.02)

let test_deterministic () =
  let p = local_pipeline 256 128 in
  let a = run G.Device.k20c p in
  let b = run G.Device.k20c p in
  Alcotest.(check bool) "same result" true
    (Float.equal a.G.Event_sim.total_ms b.G.Event_sim.total_ms)

let test_kernel_accounting () =
  let p = local_pipeline 256 128 in
  let r = run G.Device.gtx745 p in
  (match r.G.Event_sim.kernels with
  | [ kr ] ->
    (* 256x128 at 32x4 blocks -> 8 * 32 = 256 blocks. *)
    Alcotest.(check int) "grid" 256 kr.G.Event_sim.blocks;
    Alcotest.(check bool) "events positive" true (kr.G.Event_sim.drain_events > 0);
    Alcotest.(check string) "name" "g" kr.G.Event_sim.kernel_name
  | _ -> Alcotest.fail "expected one kernel");
  Alcotest.(check bool) "total covers kernels" true
    (r.G.Event_sim.total_ms
    >= List.fold_left (fun a k -> a +. k.G.Event_sim.t_ms) 0.0 r.G.Event_sim.kernels -. 1e-9)

let test_basic_quality_slower () =
  let p = local_pipeline 512 256 in
  let module F = Kfuse_fusion in
  let fused_p =
    (F.Driver.run F.Config.default F.Driver.Mincut
       (Kfuse_apps.Unsharp.pipeline ~width:512 ~height:256 ()))
      .F.Driver.fused
  in
  ignore p;
  let d = G.Device.gtx745 in
  let opt =
    G.Event_sim.run d ~quality:G.Perf_model.Optimized ~fused_kernels:[ "sharpened" ]
      fused_p
  in
  let basic =
    G.Event_sim.run d ~quality:G.Perf_model.Basic_codegen ~fused_kernels:[ "sharpened" ]
      fused_p
  in
  Alcotest.(check bool) "basic slower" true
    (basic.G.Event_sim.total_ms > opt.G.Event_sim.total_ms)

let suite =
  [
    Alcotest.test_case "memory-bound matches roofline" `Quick
      test_memory_bound_matches_roofline;
    Alcotest.test_case "border penalty on small images" `Quick
      test_border_penalty_on_small_images;
    Alcotest.test_case "point kernels unpenalized" `Quick test_point_kernel_no_border_penalty;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "kernel accounting" `Quick test_kernel_accounting;
    Alcotest.test_case "basic codegen slower" `Quick test_basic_quality_slower;
  ]
