module Diag = Kfuse_util.Diag
module Faults = Kfuse_util.Faults
module Pool = Kfuse_util.Pool
module Iset = Kfuse_util.Iset
module Plan_cache = Kfuse_cache.Plan_cache
module Fingerprint = Kfuse_cache.Fingerprint
module F = Kfuse_fusion
module Ir = Kfuse_ir

type t = {
  socket_path : string;
  listen_fd : Unix.file_descr;
  cache : Plan_cache.t;
  pool : Pool.t;
  default_budget_ms : float option;
  metrics : Metrics.t;
  started_at : float;
  stopping : bool Atomic.t;
  mutable accept_thread : Thread.t option;
  conn_lock : Mutex.t;
  mutable conns : (int * Thread.t) list;  (* keyed by Thread.id *)
}

let socket t = t.socket_path
let cache t = t.cache
let metrics t = t.metrics

(* ---- request handling ---- *)

let load_pipeline (f : Protocol.fuse_request) =
  match (f.Protocol.app, f.Protocol.source) with
  | Some name, _ -> (
    match Kfuse_apps.Registry.find name with
    | Some e -> Ok (e.Kfuse_apps.Registry.pipeline ())
    | None ->
      Error
        (Diag.errorf Diag.Io_error "unknown application %S (try: %s)" name
           (String.concat ", " Kfuse_apps.Registry.names)))
  | None, Some src -> Kfuse_dsl.Elaborate.parse_pipeline_diag src
  | None, None -> Error (Diag.v Diag.Protocol_error "fuse without app or source")

let validated p =
  match Ir.Validate.result p with Ok p -> Ok p | Error d -> Error d

let block_names (p : Ir.Pipeline.t) block =
  List.map (fun i -> Jsonx.Str (Ir.Pipeline.kernel p i).Ir.Kernel.name) (Iset.elements block)

let report_fields (r : F.Driver.report) =
  [
    ("strategy", Jsonx.Str (F.Driver.strategy_to_string r.F.Driver.strategy));
    ("kernels_in", Jsonx.Num (float_of_int (Ir.Pipeline.num_kernels r.F.Driver.input)));
    ("kernels_out", Jsonx.Num (float_of_int (Ir.Pipeline.num_kernels r.F.Driver.fused)));
    ("objective", Jsonx.Num r.F.Driver.objective);
    ( "partition",
      Jsonx.Arr
        (List.map (fun b -> Jsonx.Arr (block_names r.F.Driver.input b)) r.F.Driver.partition)
    );
    ("inlined", Jsonx.Arr (List.map (fun s -> Jsonx.Str s) r.F.Driver.inlined));
    ("degraded", Jsonx.Bool r.F.Driver.degraded);
    ( "warnings",
      Jsonx.Arr (List.map (fun d -> Jsonx.Str (Diag.to_string d)) r.F.Driver.warnings) );
  ]

let handle_fuse t (f : Protocol.fuse_request) =
  match Result.bind (load_pipeline f) validated with
  | Error d -> Protocol.error d
  | Ok p -> (
    let default = F.Config.default in
    let config =
      {
        default with
        F.Config.c_mshared = Option.value ~default:default.F.Config.c_mshared f.Protocol.c_mshared;
        gamma = Option.value ~default:default.F.Config.gamma f.Protocol.gamma;
        tg = Option.value ~default:default.F.Config.tg f.Protocol.tg;
      }
    in
    let strategy = f.Protocol.strategy in
    let optimize = f.Protocol.optimize and inline = f.Protocol.inline in
    let budget_ms =
      match f.Protocol.budget_ms with Some b -> Some b | None -> t.default_budget_ms
    in
    let compute () =
      let t0 = Unix.gettimeofday () in
      match
        F.Driver.run_result ~optimize ~inline ~pool:t.pool ?budget_ms config strategy p
      with
      | Error _ as e -> e
      | Ok r -> Ok (r, (Unix.gettimeofday () -. t0) *. 1000.)
    in
    let served =
      if f.Protocol.no_cache then
        Result.map (fun (r, ms) -> (r, "bypass", ms)) (compute ())
      else begin
        let key = Fingerprint.plan_key ~config ~strategy ~optimize ~inline p in
        match Plan_cache.find t.cache key with
        | Some (r, outcome) -> Ok (r, Plan_cache.outcome_to_string outcome, 0.0)
        | None -> (
          match compute () with
          | Error _ as e -> e
          | Ok (r, ms) ->
            Plan_cache.store t.cache key r;
            (* find-then-store keeps the outcome (miss vs miss-iso)
               distinction out of the hot reply path; the distinction
               lives in the cache stats. *)
            Ok (r, "miss", ms))
      end
    in
    match served with
    | Error d -> Protocol.error d
    | Ok (r, outcome, plan_ms) ->
      Protocol.ok
        (report_fields r
        @ [
            ("cached", Jsonx.Bool (outcome = "hit" || outcome = "hit-disk"));
            ("outcome", Jsonx.Str outcome);
            ("plan_ms", Jsonx.Num plan_ms);
          ]))

let stats_json t =
  let c = Plan_cache.stats t.cache in
  let latency_json op =
    match Metrics.latency t.metrics op with
    | None -> Jsonx.Null
    | Some q ->
      Jsonx.Obj
        [
          ("samples", Jsonx.Num (float_of_int q.Kfuse_util.Stats.samples));
          ("p50_ms", Jsonx.Num q.Kfuse_util.Stats.p50);
          ("p90_ms", Jsonx.Num q.Kfuse_util.Stats.p90);
          ("p95_ms", Jsonx.Num q.Kfuse_util.Stats.p95);
          ("p99_ms", Jsonx.Num q.Kfuse_util.Stats.p99);
          ("max_ms", Jsonx.Num q.Kfuse_util.Stats.q_max);
          ("mean_ms", Jsonx.Num q.Kfuse_util.Stats.q_mean);
        ]
  in
  let requests_json op =
    let total, errors = Metrics.requests t.metrics op in
    Jsonx.Obj
      [
        ("total", Jsonx.Num (float_of_int total));
        ("errors", Jsonx.Num (float_of_int errors));
        ("latency", latency_json op);
      ]
  in
  Protocol.ok
    [
      ("uptime_s", Jsonx.Num (Unix.gettimeofday () -. t.started_at));
      ( "cache",
        Jsonx.Obj
          [
            ("entries", Jsonx.Num (float_of_int c.Plan_cache.entries));
            ("capacity", Jsonx.Num (float_of_int c.Plan_cache.capacity));
            ("hits", Jsonx.Num (float_of_int c.Plan_cache.hits));
            ("disk_hits", Jsonx.Num (float_of_int c.Plan_cache.disk_hits));
            ("misses", Jsonx.Num (float_of_int c.Plan_cache.misses));
            ("iso_misses", Jsonx.Num (float_of_int c.Plan_cache.iso_misses));
            ("evictions", Jsonx.Num (float_of_int c.Plan_cache.evictions));
            ("stores", Jsonx.Num (float_of_int c.Plan_cache.stores));
            ("disk_errors", Jsonx.Num (float_of_int c.Plan_cache.disk_errors));
            ("hit_rate", Jsonx.Num (Plan_cache.hit_rate c));
          ] );
      ( "requests",
        Jsonx.Obj (List.map (fun op -> (op, requests_json op)) (Metrics.ops t.metrics)) );
      ( "connections",
        Jsonx.Obj
          [
            ("accepted", Jsonx.Num (float_of_int (Metrics.counter t.metrics "connections_accepted")));
            ("dropped", Jsonx.Num (float_of_int (Metrics.counter t.metrics "connections_dropped")));
          ] );
    ]

(* [dispatch] never raises: a failing handler becomes an error response
   (counted per-op), keeping the connection and the server alive. *)
let dispatch t v =
  match Protocol.request_of_json v with
  | Error d -> ("invalid", Protocol.error d, false)
  | Ok req -> (
    let op =
      match req with
      | Protocol.Fuse _ -> "fuse"
      | Protocol.Stats -> "stats"
      | Protocol.Metrics -> "metrics"
      | Protocol.Ping -> "ping"
      | Protocol.Shutdown -> "shutdown"
    in
    match req with
    | Protocol.Ping -> (op, Protocol.ok [ ("pong", Jsonx.Bool true) ], false)
    | Protocol.Shutdown -> (op, Protocol.ok [ ("stopping", Jsonx.Bool true) ], true)
    | Protocol.Stats -> (op, stats_json t, false)
    | Protocol.Metrics ->
      let text =
        Metrics.render t.metrics ~cache:(Plan_cache.stats t.cache)
          ~uptime_s:(Unix.gettimeofday () -. t.started_at)
      in
      (op, Protocol.ok [ ("text", Jsonx.Str text) ], false)
    | Protocol.Fuse f -> (
      match handle_fuse t f with
      | resp -> (op, resp, false)
      | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
      | exception exn -> (op, Protocol.error (Diag.of_exn exn), false)))

let is_ok resp = match Jsonx.mem_str "status" resp with Some "ok" -> true | _ -> false

let initiate_stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* Wake the accept loop: on Linux, closing a listener from another
       thread does not interrupt a blocked accept(2), so poke it with a
       throwaway connection.  The loop rechecks [stopping] after every
       accept and owns closing the listener. *)
    match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error _ -> ()
    | fd ->
      (try Unix.connect fd (Unix.ADDR_UNIX t.socket_path) with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())
  end

let handle_conn t fd =
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      let self = Thread.id (Thread.self ()) in
      Mutex.lock t.conn_lock;
      t.conns <- List.filter (fun (id, _) -> id <> self) t.conns;
      Mutex.unlock t.conn_lock)
    (fun () ->
      let rec loop () =
        match Protocol.recv fd with
        | Ok None -> ()
        | Error d ->
          (* Framing is broken; answer if the pipe still works, then
             drop the connection. *)
          Metrics.incr t.metrics "protocol_errors";
          (try Protocol.send fd (Protocol.error d) with _ -> ())
        | Ok (Some v) ->
          let t0 = Unix.gettimeofday () in
          let op, resp, stop = dispatch t v in
          Metrics.observe t.metrics ~op ~ok:(is_ok resp) ((Unix.gettimeofday () -. t0) *. 1000.);
          let sent = match Protocol.send fd resp with () -> true | exception _ -> false in
          if stop then initiate_stop t else if sent then loop ()
      in
      loop ())

let accept_loop t =
  let rec loop () =
    if Atomic.get t.stopping then ()
    else begin
      match Unix.accept ~cloexec:true t.listen_fd with
      | fd, _ when Atomic.get t.stopping ->
        (* The wake-up poke from [initiate_stop], or a client racing the
           shutdown: either way, the server is closing. *)
        (try Unix.close fd with Unix.Unix_error _ -> ())
      | fd, _ -> (
        match Faults.hit "service.accept" with
        | () ->
          Metrics.incr t.metrics "connections_accepted";
          let th = Thread.create (fun () -> handle_conn t fd) () in
          Mutex.lock t.conn_lock;
          t.conns <- (Thread.id th, th) :: t.conns;
          Mutex.unlock t.conn_lock;
          loop ()
        | exception Faults.Fault _ ->
          (* Degrade: this connection is lost, the server is not. *)
          Metrics.incr t.metrics "connections_dropped";
          (try Unix.close fd with Unix.Unix_error _ -> ());
          loop ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ when Atomic.get t.stopping -> ()
    end
  in
  loop ();
  try Unix.close t.listen_fd with Unix.Unix_error _ -> ()

(* ---- lifecycle ---- *)

let claim_socket path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Ok ()
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
    (* A socket file exists: stale (no listener) or live (refuse). *)
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect probe (Unix.ADDR_UNIX path) with
    | () ->
      Unix.close probe;
      Error (Diag.errorf Diag.Service_error "another kfused is already serving on %s" path)
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
      (try Unix.close probe with Unix.Unix_error _ -> ());
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      Ok ()
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close probe with Unix.Unix_error _ -> ());
      Error (Diag.errorf ~file:path Diag.Io_error "cannot probe socket: %s" (Unix.error_message e)))
  | _ -> Error (Diag.errorf ~file:path Diag.Io_error "exists and is not a socket")

let start ~socket:path ~cache ~pool ?budget_ms () =
  match claim_socket path with
  | Error _ as e -> e
  | Ok () -> (
    match
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.bind fd (Unix.ADDR_UNIX path);
         Unix.listen fd 64
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      fd
    with
    | exception Unix.Unix_error (e, _, _) ->
      Error (Diag.errorf ~file:path Diag.Io_error "cannot listen: %s" (Unix.error_message e))
    | listen_fd ->
      let t =
        {
          socket_path = path;
          listen_fd;
          cache;
          pool;
          default_budget_ms = budget_ms;
          metrics = Metrics.create ();
          started_at = Unix.gettimeofday ();
          stopping = Atomic.make false;
          accept_thread = None;
          conn_lock = Mutex.create ();
          conns = [];
        }
      in
      t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
      Ok t)

let wait t =
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  (* Drain connection handlers started before the listener closed. *)
  let rec drain () =
    let next =
      Mutex.lock t.conn_lock;
      let c = match t.conns with (_, th) :: _ -> Some th | [] -> None in
      Mutex.unlock t.conn_lock;
      c
    in
    match next with
    | Some th ->
      Thread.join th;
      drain ()
    | None -> ()
  in
  drain ();
  try Unix.unlink t.socket_path with Unix.Unix_error _ -> ()

let stop t =
  initiate_stop t;
  wait t
