module Diag = Kfuse_util.Diag
module Image = Kfuse_image.Image
module Pipeline = Kfuse_ir.Pipeline
module Eval = Kfuse_ir.Eval
module Driver = Kfuse_fusion.Driver
module Config = Kfuse_fusion.Config
module Registry = Kfuse_apps.Registry

type app_report = {
  app : string;
  width : int;
  height : int;
  channels : int;
  kernels_unfused : int;
  kernels_fused : int;
  compile_ms_unfused : float;
  compile_ms_fused : float;
  exec_ms_unfused : float;
  exec_ms_fused : float;
  samples_unfused : float list;
  samples_fused : float list;
  interp_ms : float option;
  diff_unfused : float option;
  diff_fused : float option;
}

type t = {
  cc : string;
  openmp : bool;
  mode : Native.mode;
  runs : int;
  generated_at : float;
  apps : app_report list;
}

let speedup r = r.exec_ms_unfused /. r.exec_ms_fused

let max_diff t =
  List.fold_left
    (fun acc r ->
      List.fold_left
        (fun acc d -> match (acc, d) with
          | acc, None -> acc
          | None, Some d -> Some d
          | Some a, Some d -> Some (Float.max a d))
        acc
        [ r.diff_unfused; r.diff_fused ])
    None t.apps

(* Every variant sees the same pixels: one deterministic generator per
   app, seeded by a fixed constant, consumed input-by-input. *)
let inputs_for (p : Pipeline.t) =
  let rng = Kfuse_util.Rng.create 42 in
  List.map
    (fun n ->
      ( n,
        Image.random rng ~width:p.Pipeline.width ~height:p.Pipeline.height ~lo:0.0
          ~hi:1.0 ))
    p.Pipeline.inputs

(* Interpreter-vs-native: worst absolute difference over all outputs,
   matched by name.  A missing name is an infinite difference — it can
   only mean fusion renamed a sink, which the tolerance gate must not
   silently pass. *)
let diff_against reference outputs =
  List.fold_left
    (fun acc (name, img) ->
      match List.assoc_opt name reference with
      | None -> Float.infinity
      | Some ref_img ->
        if Image.width ref_img <> Image.width img then Float.infinity
        else Float.max acc (Image.max_abs_diff ref_img img))
    0.0 outputs

let bench_app ~mode ~cache_dir ~runs ~size ~verify (entry : Registry.entry) =
  let p =
    match size with
    | Some (width, height) -> entry.Registry.small ~width ~height
    | None -> entry.Registry.pipeline ()
  in
  let inputs = inputs_for p in
  match Driver.run_result Config.default Driver.Baseline p with
  | Error d -> Error d
  | Ok base -> (
    match Driver.run_result ~optimize:true Config.default Driver.Mincut p with
    | Error d -> Error d
    | Ok mincut -> (
      let unfused = base.Driver.fused and fused = mincut.Driver.fused in
      match Native.run ~mode ?cache_dir ~repeat:runs unfused inputs with
      | Error d -> Error d
      | Ok run_unfused -> (
        match Native.run ~mode ?cache_dir ~repeat:runs fused inputs with
        | Error d -> Error d
        | Ok run_fused ->
          let interp_ms, diff_unfused, diff_fused =
            if not verify then (None, None, None)
            else begin
              let t0 = Unix.gettimeofday () in
              let reference = Eval.run_outputs p (Eval.env_of_list inputs) in
              let dt = (Unix.gettimeofday () -. t0) *. 1000. in
              ( Some dt,
                Some (diff_against reference run_unfused.Native.outputs),
                Some (diff_against reference run_fused.Native.outputs) )
            end
          in
          Ok
            {
              app = entry.Registry.name;
              width = p.Pipeline.width;
              height = p.Pipeline.height;
              channels = p.Pipeline.channels;
              kernels_unfused = Pipeline.num_kernels unfused;
              kernels_fused = Pipeline.num_kernels fused;
              compile_ms_unfused = run_unfused.Native.compile_ms;
              compile_ms_fused = run_fused.Native.compile_ms;
              exec_ms_unfused = run_unfused.Native.exec_ms;
              exec_ms_fused = run_fused.Native.exec_ms;
              samples_unfused = run_unfused.Native.samples_ms;
              samples_fused = run_fused.Native.samples_ms;
              interp_ms;
              diff_unfused;
              diff_fused;
            })))

let run ?(mode = Native.Dlopen) ?cache_dir ?(runs = 5) ?width ?height ?apps
    ?(verify = true) () =
  if runs < 1 then invalid_arg "Bench_native.run: runs must be positive";
  let size =
    match (width, height) with
    | None, None -> None
    | w, h ->
      let w = Option.value w ~default:(Option.value h ~default:0) in
      let h = Option.value h ~default:w in
      Some (w, h)
  in
  match Toolchain.find () with
  | Error d -> Error d
  | Ok tc -> (
    let selected =
      match apps with
      | None -> Ok Registry.all
      | Some names ->
        List.fold_left
          (fun acc n ->
            match (acc, Registry.find n) with
            | Error d, _ -> Error d
            | Ok _, None ->
              Error
                (Diag.errorf Diag.Io_error "unknown application %s (known: %s)" n
                   (String.concat ", " Registry.names))
            | Ok l, Some e -> Ok (l @ [ e ]))
          (Ok []) names
    in
    match selected with
    | Error d -> Error d
    | Ok entries -> (
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | e :: rest -> (
          match bench_app ~mode ~cache_dir ~runs ~size ~verify e with
          | Error d -> Error d
          | Ok r -> go (r :: acc) rest)
      in
      match go [] entries with
      | Error d -> Error d
      | Ok apps ->
        Ok
          {
            cc = tc.Toolchain.cc;
            openmp = tc.Toolchain.openmp;
            mode;
            runs;
            generated_at = Unix.time ();
            apps;
          }))

(* {1 JSON rendering} — flat enough that hand-rolled emission beats a
   dependency; floats render as %.6g (finite) or null. *)

let jf f = if Float.is_finite f then Printf.sprintf "%.6g" f else "null"
let jopt = function None -> "null" | Some f -> jf f
let jlist fs = "[" ^ String.concat ", " (List.map jf fs) ^ "]"

let app_to_json r =
  String.concat ",\n      "
    [
      Printf.sprintf "\"app\": %S" r.app;
      Printf.sprintf "\"width\": %d" r.width;
      Printf.sprintf "\"height\": %d" r.height;
      Printf.sprintf "\"channels\": %d" r.channels;
      Printf.sprintf "\"kernels_unfused\": %d" r.kernels_unfused;
      Printf.sprintf "\"kernels_fused\": %d" r.kernels_fused;
      Printf.sprintf "\"compile_ms_unfused\": %s" (jf r.compile_ms_unfused);
      Printf.sprintf "\"compile_ms_fused\": %s" (jf r.compile_ms_fused);
      Printf.sprintf "\"exec_ms_unfused\": %s" (jf r.exec_ms_unfused);
      Printf.sprintf "\"exec_ms_fused\": %s" (jf r.exec_ms_fused);
      Printf.sprintf "\"samples_ms_unfused\": %s" (jlist r.samples_unfused);
      Printf.sprintf "\"samples_ms_fused\": %s" (jlist r.samples_fused);
      Printf.sprintf "\"speedup\": %s" (jf (speedup r));
      Printf.sprintf "\"interp_ms\": %s" (jopt r.interp_ms);
      Printf.sprintf "\"max_abs_diff_unfused\": %s" (jopt r.diff_unfused);
      Printf.sprintf "\"max_abs_diff_fused\": %s" (jopt r.diff_fused);
    ]

let to_json t =
  let apps = List.map (fun r -> "    {\n      " ^ app_to_json r ^ "\n    }") t.apps in
  String.concat "\n"
    [
      "{";
      "  \"schema\": \"kfuse-bench-native/v1\",";
      Printf.sprintf "  \"generated_at_unix\": %.0f," t.generated_at;
      Printf.sprintf "  \"toolchain\": { \"cc\": %S, \"openmp\": %b }," t.cc t.openmp;
      Printf.sprintf "  \"mode\": %S," (Native.mode_to_string t.mode);
      Printf.sprintf "  \"runs\": %d," t.runs;
      "  \"apps\": [";
      String.concat ",\n" apps;
      "  ]";
      "}";
      "";
    ]

let pp_summary ppf t =
  Format.fprintf ppf "native bench: %s%s, %d run%s per variant@," t.cc
    (if t.openmp then " (openmp)" else " (no openmp)")
    t.runs
    (if t.runs = 1 then "" else "s");
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-10s %4dx%-4d  %d -> %d kernels  unfused %8.2f ms  fused \
                          %8.2f ms  speedup %.2fx%s@,"
        r.app r.width r.height r.kernels_unfused r.kernels_fused r.exec_ms_unfused
        r.exec_ms_fused (speedup r)
        (match r.diff_fused with
        | None -> ""
        | Some d -> Printf.sprintf "  max-abs-diff %.2e" d))
    t.apps
