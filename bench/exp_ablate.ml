(* Ablations of the design choices called out in DESIGN.md:
   - ablate-cm:       sweep the c_Mshared threshold of Eq. 2
   - ablate-tg:       sweep the global-latency estimate tg
   - ablate-strategy: min-cut vs greedy vs basic on every application
   - ablate-gamma:    effect of the launch-overhead term of Eq. 12 *)

module F = Kfuse_fusion
module G = Kfuse_gpu
module Ir = Kfuse_ir
module Iset = Kfuse_util.Iset
module Stats = Kfuse_util.Stats

let config = Runner.config

let partition_summary (p : Ir.Pipeline.t) partition =
  let name i = (Ir.Pipeline.kernel p i).Ir.Kernel.name in
  String.concat " "
    (List.map
       (fun b -> "{" ^ String.concat "," (List.map name (Iset.elements b)) ^ "}")
       partition)

let ablate_cm () =
  print_endline "=== ablate-cm: Eq. 2 threshold sweep on Harris ===";
  print_endline "(paper uses c_Mshared = 2; larger thresholds admit bigger blocks,";
  print_endline " until the profitability clamp and dependence rules stop growth)";
  let p = Kfuse_apps.Harris.pipeline () in
  List.iter
    (fun cm ->
      let cfg = { config with F.Config.c_mshared = cm } in
      let r = F.Mincut_fusion.run cfg p in
      Printf.printf "  c_Mshared = %4.1f -> %d blocks, beta = %8.3f: %s\n" cm
        (List.length r.F.Mincut_fusion.partition)
        r.F.Mincut_fusion.objective
        (partition_summary p r.F.Mincut_fusion.partition))
    [ 1.0; 1.5; 2.0; 3.0; 5.0; 10.0; 100.0 ];
  print_newline ()

let ablate_tg () =
  print_endline "=== ablate-tg: global-latency sweep (point-to-local break-even) ===";
  print_endline "(Eq. 8: w = IS*tg - cost_op*IS_ks*sz; small tg makes recompute lose)";
  let p = Kfuse_apps.Harris.pipeline () in
  List.iter
    (fun tg ->
      let cfg = { config with F.Config.tg } in
      let r = F.Mincut_fusion.run cfg p in
      let u = Option.get (Ir.Pipeline.index_of p "sx") in
      let v = Option.get (Ir.Pipeline.index_of p "gx") in
      let w = F.Benefit.edge_weight cfg p u v in
      Printf.printf "  tg = %5.1f -> w(sx,gx) = %8.3f, partition: %s\n" tg w
        (partition_summary p r.F.Mincut_fusion.partition))
    [ 20.0; 50.0; 72.0; 100.0; 200.0; 400.0; 800.0 ];
  print_newline ()

let ablate_strategy () =
  print_endline "=== ablate-strategy: min-cut vs greedy vs basic (kernels after fusion) ===";
  Printf.printf "%-10s %8s %8s %8s %8s   %s\n" "app" "baseline" "basic" "greedy" "mincut"
    "estimated speedup on GTX680 (greedy / mincut)";
  List.iter
    (fun (app : Kfuse_apps.Registry.entry) ->
      let p = app.Kfuse_apps.Registry.pipeline () in
      let count s = F.Driver.fused_kernel_count (F.Driver.run config s p) in
      let t strategy quality =
        let r = F.Driver.run ~pool:(Runner.pool ()) config strategy p in
        (G.Sim.measure ~pool:(Runner.pool ()) G.Device.gtx680 ~quality
           ~fused_kernels:(Runner.fused_names p r) r.F.Driver.fused)
          .G.Sim.summary.Stats.median
      in
      let base = t F.Driver.Baseline G.Perf_model.Optimized in
      let greedy = t F.Driver.Greedy G.Perf_model.Optimized in
      let mincut = t F.Driver.Mincut G.Perf_model.Optimized in
      Printf.printf "%-10s %8d %8d %8d %8d   %.3f / %.3f\n" app.Kfuse_apps.Registry.name
        (count F.Driver.Baseline) (count F.Driver.Basic) (count F.Driver.Greedy)
        (count F.Driver.Mincut) (base /. greedy) (base /. mincut))
    Runner.all_apps;
  print_endline "(note Sobel: pairwise greedy finds nothing; only the min-cut view fuses it)";
  print_newline ()

let ablate_gamma () =
  print_endline "=== ablate-gamma: extra-gain term of Eq. 12 ===";
  print_endline "(gamma > 0 rescues marginally-unprofitable fusions; Night's a-trous pair";
  print_endline " has delta - phi = 300 - 58800 per RGB image unit, so only an";
  print_endline " implausibly large gamma flips it once Eq. 2 is relaxed)";
  let p = Kfuse_apps.Night.pipeline () in
  let loose = { config with F.Config.c_mshared = 3.0 } in
  List.iter
    (fun gamma ->
      let cfg = { loose with F.Config.gamma } in
      let r = F.Mincut_fusion.run cfg p in
      Printf.printf "  gamma = %8.1f -> partition: %s\n" gamma
        (partition_summary p r.F.Mincut_fusion.partition))
    [ 0.0; 1000.0; 10000.0; 58000.0; 59000.0; 100000.0 ];
  print_newline ()

let ablate_optimal () =
  print_endline "=== ablate-optimal: Algorithm 1 vs exhaustive optimum (Eq. 1) ===";
  print_endline "(the problem is NP-complete for undetermined k, Section III-C;";
  print_endline " on these DAG sizes the exact optimum is enumerable)";
  Printf.printf "%-10s %14s %14s %s\n" "app" "mincut beta" "optimal beta" "optimal?";
  List.iter
    (fun (app : Kfuse_apps.Registry.entry) ->
      let p = app.Kfuse_apps.Registry.pipeline () in
      let heuristic = (F.Mincut_fusion.run config p).F.Mincut_fusion.objective in
      let optimal = F.Exhaustive_fusion.optimal_objective config p in
      Printf.printf "%-10s %14.3f %14.3f %s\n" app.Kfuse_apps.Registry.name heuristic
        optimal
        (if Float.abs (heuristic -. optimal) < 1e-6 then "yes" else "NO"))
    Runner.all_apps;
  print_newline ()

let ablate_opt_passes () =
  print_endline "=== ablate-passes: simplify + CSE on fused kernels ===";
  Printf.printf "%-10s %18s %18s %16s %16s\n" "app" "AST nodes (fused)" "after passes"
    "loads (fused)" "after passes";
  List.iter
    (fun (app : Kfuse_apps.Registry.entry) ->
      let p = app.Kfuse_apps.Registry.pipeline () in
      let plain = F.Driver.run config F.Driver.Mincut p in
      let opt = F.Driver.run ~optimize:true config F.Driver.Mincut p in
      let stats (r : F.Driver.report) =
        Array.fold_left
          (fun (nodes, loads) (k : Ir.Kernel.t) ->
            match k.Ir.Kernel.op with
            | Ir.Kernel.Map e ->
              (nodes + Ir.Expr.size e, loads + List.length (Ir.Expr.accesses e))
            | Ir.Kernel.Reduce { arg; _ } ->
              (nodes + Ir.Expr.size arg, loads + List.length (Ir.Expr.accesses arg)))
          (0, 0) r.F.Driver.fused.Ir.Pipeline.kernels
      in
      let n0, l0 = stats plain and n1, l1 = stats opt in
      Printf.printf "%-10s %18d %18d %16d %16d\n" app.Kfuse_apps.Registry.name n0 n1 l0 l1)
    Runner.all_apps;
  print_newline ()

let ablate_model_objective () =
  print_endline "=== ablate-model: benefit-model optimum vs time-model optimum ===";
  print_endline "(does maximizing beta (Eq. 1) pick the same partition as minimizing";
  print_endline " end-to-end modeled time on the GTX 680?)";
  Printf.printf "%-10s %12s %16s %16s %s\n" "app" "partitions" "beta-opt (ms)"
    "time-opt (ms)" "same partition?";
  let device = G.Device.gtx680 in
  List.iter
    (fun (app : Kfuse_apps.Registry.entry) ->
      let p = app.Kfuse_apps.Registry.pipeline () in
      let time_of partition =
        let fused = F.Transform.apply p partition in
        let fused_kernels =
          List.filter_map
            (fun b ->
              if Iset.cardinal b >= 2 then
                Some
                  (Ir.Pipeline.kernel p (Iset.min_elt (F.Legality.block_sinks p b)))
                    .Ir.Kernel.name
              else None)
            partition
        in
        snd
          (G.Perf_model.pipeline_time device ~quality:G.Perf_model.Optimized
             ~fused_kernels fused)
      in
      let nparts = F.Exhaustive_fusion.count_legal_partitions config p in
      let _, beta_part = F.Exhaustive_fusion.run config p in
      let neg_time, time_part =
        F.Exhaustive_fusion.run_with config p ~objective:(fun part -> -.time_of part)
      in
      Printf.printf "%-10s %12d %16.3f %16.3f %s\n" app.Kfuse_apps.Registry.name nparts
        (time_of beta_part) (-.neg_time)
        (if Kfuse_graph.Partition.equal beta_part time_part then "yes" else "NO")
    )
    Runner.all_apps;
  print_newline ()

let ablate_autotune () =
  print_endline "=== ablate-autotune: thread-block shape tuning (GTX 680, optimized impl) ===";
  print_endline "(Hipacc fixes 32x4; squarer blocks amortize stencil halos better)";
  Printf.printf "%-10s %14s %14s %9s   %s\n" "app" "32x4 (ms)" "tuned (ms)" "gain"
    "per-kernel winners";
  let device = G.Device.gtx680 in
  List.iter
    (fun (app : Kfuse_apps.Registry.entry) ->
      let p = app.Kfuse_apps.Registry.pipeline () in
      let r = F.Driver.run config F.Driver.Mincut p in
      let fused = Runner.fused_names p r in
      let choices, tuned, default =
        G.Autotune.tune_pipeline device ~quality:G.Perf_model.Optimized
          ~fused_kernels:fused r.F.Driver.fused
      in
      let winners =
        choices
        |> List.filter_map (fun (c : G.Autotune.choice) ->
               if c.G.Autotune.best = { Kfuse_ir.Cost.bx = 32; by = 4 } then None
               else
                 Some
                   (Printf.sprintf "%s:%dx%d" c.G.Autotune.kernel_name
                      c.G.Autotune.best.Kfuse_ir.Cost.bx c.G.Autotune.best.Kfuse_ir.Cost.by))
        |> String.concat " "
      in
      Printf.printf "%-10s %14.3f %14.3f %8.1f%%   %s\n" app.Kfuse_apps.Registry.name
        default tuned
        ((default -. tuned) /. default *. 100.0)
        (if winners = "" then "(32x4 everywhere)" else winners))
    Runner.all_apps;
  print_newline ()

let ablate_inline () =
  print_endline "=== ablate-inline: producer inlining + min-cut fusion (extension) ===";
  print_endline "(inlining replicates cheap shared producers into their consumers,";
  print_endline " eliminating intermediates the partition model must keep - Fig 2c)";
  Printf.printf "%-10s %8s %14s %14s %10s\n" "app" "kernels" "mincut only" "inline+mincut"
    "GTX680 gain";
  let device = G.Device.gtx680 in
  let median r (p : Ir.Pipeline.t) =
    ignore p;
    (G.Sim.measure ~pool:(Runner.pool ()) device ~quality:G.Perf_model.Optimized
       ~fused_kernels:
         (List.filter_map
            (fun b ->
              if Iset.cardinal b >= 2 then
                Some
                  (Ir.Pipeline.kernel r.F.Driver.input
                     (Iset.min_elt (F.Legality.block_sinks r.F.Driver.input b)))
                    .Ir.Kernel.name
              else None)
            r.F.Driver.partition)
       r.F.Driver.fused)
      .G.Sim.summary.Stats.median
  in
  List.iter
    (fun (name, p) ->
      let plain = F.Driver.run config F.Driver.Mincut p in
      let inlined = F.Driver.run ~inline:true config F.Driver.Mincut p in
      let t_plain = median plain p and t_inline = median inlined p in
      Printf.printf "%-10s %3d > %-3d %14.3f %14.3f %9.3fx\n" name
        (F.Driver.fused_kernel_count plain)
        (F.Driver.fused_kernel_count inlined)
        t_plain t_inline (t_plain /. t_inline))
    (List.map
       (fun (app : Kfuse_apps.Registry.entry) ->
         (app.Kfuse_apps.Registry.name, app.Kfuse_apps.Registry.pipeline ()))
       Runner.all_apps
    @ [ ("night_rgb", Kfuse_apps.Extra.night_rgb_pipeline ()) ]);
  print_newline ()

let ablate_distribute () =
  print_endline "=== ablate-distribute: separable-convolution splitting (future work) ===";
  print_endline "(k x k taps -> 2k taps at the price of one intermediate image;";
  print_endline " the opposite tradeoff to fusion, so Algorithm 1 re-fuses afterwards)";
  Printf.printf "%-8s %14s %14s %14s\n" "mask" "2-D conv (ms)" "split (ms)"
    "split+fused (ms)";
  let device = G.Device.gtx680 in
  List.iter
    (fun (name, mask) ->
      let p =
        Ir.Pipeline.create ~name:"sep" ~width:2048 ~height:2048 ~inputs:[ "in" ]
          [
            Ir.Kernel.map ~name:"blur" ~inputs:[ "in" ] (Ir.Expr.conv mask "in");
            Ir.Kernel.map ~name:"post" ~inputs:[ "blur" ]
              Ir.Expr.(input "blur" * Const 2.0);
          ]
      in
      let t pl fused_kernels =
        snd
          (G.Perf_model.pipeline_time device ~quality:G.Perf_model.Optimized
             ~fused_kernels pl)
      in
      let split, _ = F.Distribute.split_all p in
      let refused = F.Driver.run config F.Driver.Mincut split in
      Printf.printf "%-8s %14.3f %14.3f %14.3f\n" name (t p []) (t split [])
        (t refused.F.Driver.fused (Runner.fused_names split refused)))
    [
      ("gauss3", Kfuse_image.Mask.gaussian_3x3);
      ("gauss5", Kfuse_image.Mask.gaussian_5x5);
      ("mean9", Kfuse_image.Mask.mean 9);
    ];
  print_newline ()

let run () =
  ablate_cm ();
  ablate_tg ();
  ablate_strategy ();
  ablate_gamma ();
  ablate_optimal ();
  ablate_model_objective ();
  ablate_autotune ();
  ablate_inline ();
  ablate_distribute ();
  ablate_opt_passes ()
