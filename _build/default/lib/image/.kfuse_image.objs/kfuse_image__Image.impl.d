lib/image/image.ml: Array Border Float Format Int64 Kfuse_util List
