lib/graph/karger.mli: Kfuse_util Wgraph
