lib/util/imap.ml: Int List Map
