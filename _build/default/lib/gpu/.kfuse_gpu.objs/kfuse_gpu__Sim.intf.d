lib/gpu/sim.mli: Device Kfuse_ir Kfuse_util Perf_model
