test/test_util.ml: Alcotest Format Helpers Int64 Kfuse_util
