open Cuda_ast

(* Non-finite constants have no C float-literal spelling: "%.9gf" of
   infinity renders as the identifier "inff" and nan as "nanf", neither
   of which compiles.  <math.h> macros are the portable spellings. *)
let float_to_c f =
  if Float.is_nan f then "NAN"
  else if f = Float.infinity then "INFINITY"
  else if f = Float.neg_infinity then "-INFINITY"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1ff" f
  else Printf.sprintf "%.9gf" f

(* Unsuffixed (double) literal: %.17g round-trips every IEEE double, so
   the compiled constant is bit-identical to the interpreter's. *)
let double_to_c f =
  if Float.is_nan f then "NAN"
  else if f = Float.infinity then "INFINITY"
  else if f = Float.neg_infinity then "-INFINITY"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec expr ppf = function
  | Int_lit i -> Format.pp_print_int ppf i
  | Float_lit f -> Format.pp_print_string ppf (float_to_c f)
  | Double_lit f -> Format.pp_print_string ppf (double_to_c f)
  | Ident s -> Format.pp_print_string ppf s
  | Call (f, args) ->
    Format.fprintf ppf "%s(%a)" f
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") expr)
      args
  | Binop (op, a, b) -> Format.fprintf ppf "(%a %s %a)" expr a op expr b
  | Unop (op, a) ->
    (* "-" directly against an operand that renders with a leading "-"
       (a negative literal, -INFINITY) would paste into the "--"
       decrement token; a space keeps the two minuses separate. *)
    let sa = Format.asprintf "%a" expr a in
    let sep =
      if op <> "" && sa <> "" && op.[String.length op - 1] = sa.[0] then " " else ""
    in
    Format.fprintf ppf "(%s%s%s)" op sep sa
  | Ternary (c, a, b) -> Format.fprintf ppf "(%a ? %a : %a)" expr c expr a expr b
  | Index (a, i) -> Format.fprintf ppf "%a[%a]" expr a expr i

let rec stmt_indent ppf (ind, s) =
  let pad = String.make ind ' ' in
  match s with
  | Decl { ctype; name; init = None } -> Format.fprintf ppf "%s%s %s;@," pad ctype name
  | Decl { ctype; name; init = Some e } ->
    Format.fprintf ppf "%s%s %s = %a;@," pad ctype name expr e
  | Assign (lhs, rhs) -> Format.fprintf ppf "%s%a = %a;@," pad expr lhs expr rhs
  | Expr_stmt e -> Format.fprintf ppf "%s%a;@," pad expr e
  | Return -> Format.fprintf ppf "%sreturn;@," pad
  | Comment c -> Format.fprintf ppf "%s// %s@," pad c
  | Pragma text ->
    (* OpenMP pragmas compile under any toolchain: a compiler without
       -fopenmp would warn (fatally under -Wall -Werror) on the unknown
       pragma, so guard them behind the _OPENMP feature macro. *)
    if String.length text >= 4 && String.sub text 0 4 = "omp " then
      Format.fprintf ppf "%s#ifdef _OPENMP@,%s#pragma %s@,%s#endif@," pad pad text pad
    else Format.fprintf ppf "%s#pragma %s@," pad text
  | For { var; from_; below; step; body } ->
    (* Backstop for AST values built without {!Cuda_ast.for_}: a
       nonpositive step would print as a loop that never terminates. *)
    if step < 1 then
      invalid_arg
        (Printf.sprintf "Emit: for-loop over %s has nonpositive step %d" var step);
    if step = 1 then
      Format.fprintf ppf "%sfor (int %s = %a; %s < %a; ++%s) {@," pad var expr from_ var
        expr below var
    else
      Format.fprintf ppf "%sfor (int %s = %a; %s < %a; %s += %d) {@," pad var expr from_
        var expr below var step;
    List.iter (fun s -> stmt_indent ppf (ind + 2, s)) body;
    Format.fprintf ppf "%s}@," pad
  | If { cond; then_; else_ } ->
    Format.fprintf ppf "%sif (%a) {@," pad expr cond;
    List.iter (fun s -> stmt_indent ppf (ind + 2, s)) then_;
    if else_ = [] then Format.fprintf ppf "%s}@," pad
    else begin
      Format.fprintf ppf "%s} else {@," pad;
      List.iter (fun s -> stmt_indent ppf (ind + 2, s)) else_;
      Format.fprintf ppf "%s}@," pad
    end

let stmt ppf s = Format.fprintf ppf "@[<v>%a@]" stmt_indent (0, s)

let func ppf f =
  Format.fprintf ppf "@[<v>%s%s %s(%s) {@,"
    (match f.qualifiers with [] -> "" | qs -> String.concat " " qs ^ " ")
    f.ret f.name
    (String.concat ", " (List.map (fun p -> p.ctype ^ " " ^ p.name) f.params));
  List.iter (fun s -> stmt_indent ppf (2, s)) f.body;
  Format.fprintf ppf "}@]"

let func_to_string f = Format.asprintf "%a" func f
