(* Tests for Kfuse_codegen: expression printing and CUDA lowering. *)

module C = Kfuse_codegen.Cuda_ast
module Emit = Kfuse_codegen.Emit
module Lower = Kfuse_codegen.Lower
module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Mask = Kfuse_image.Mask
module Border = Kfuse_image.Border

let render_expr e = Format.asprintf "%a" Emit.expr e

let test_emit_expr () =
  let open C in
  Alcotest.(check string) "binop" "(a + 1)" (render_expr (ident "a" +: int_lit 1));
  Alcotest.(check string) "float literal" "2.5f" (render_expr (float_lit 2.5));
  Alcotest.(check string) "integral float" "3.0f" (render_expr (float_lit 3.0));
  Alcotest.(check string) "call" "fminf(x, y)"
    (render_expr (call "fminf" [ ident "x"; ident "y" ]));
  Alcotest.(check string) "index" "a[(y * w)]"
    (render_expr (index (ident "a") (ident "y" *: ident "w")));
  Alcotest.(check string) "ternary" "((a < b) ? a : b)"
    (render_expr (Ternary (ident "a" <: ident "b", ident "a", ident "b")))

let test_emit_stmt () =
  let open C in
  let s = Decl { ctype = "const float"; name = "v"; init = Some (float_lit 1.0) } in
  Alcotest.(check string) "decl" "const float v = 1.0f;\n"
    (Format.asprintf "%a" Emit.stmt s)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec loop i = i + nl <= hl && (String.sub haystack i nl = needle || loop (i + 1)) in
  loop 0

let simple_pipeline =
  Pipeline.create ~name:"demo" ~width:32 ~height:32 ~params:[ ("k", 2.0) ]
    ~inputs:[ "src" ]
    [
      Kernel.map ~name:"g" ~inputs:[ "src" ]
        (Expr.conv ~border:Border.Mirror Mask.gaussian_3x3 "src");
      Kernel.map ~name:"scale" ~inputs:[ "g" ] Expr.(param "k" * input "g");
    ]

let test_kernel_func_shape () =
  let f = Lower.kernel_func simple_pipeline (Pipeline.kernel simple_pipeline 0) in
  Alcotest.(check string) "name" "demo_g" f.C.name;
  Alcotest.(check (list string)) "qualifiers" [ "__global__" ] f.C.qualifiers;
  let param_names = List.map (fun (p : C.param) -> p.C.name) f.C.params in
  Alcotest.(check (list string)) "params"
    [ "out"; "img_src"; "width"; "height" ]
    param_names

let test_kernel_func_params_passed () =
  let f = Lower.kernel_func simple_pipeline (Pipeline.kernel simple_pipeline 1) in
  let param_names = List.map (fun (p : C.param) -> p.C.name) f.C.params in
  Alcotest.(check bool) "scalar param present" true (List.mem "p_k" param_names)

let test_emit_pipeline_contents () =
  let cu = Lower.emit_pipeline simple_pipeline in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true
        (contains ~needle cu))
    [
      "__global__ void demo_g";
      "__global__ void demo_scale";
      "idx_mirror";
      "read_mirror";
      "read_clamp";
      "void run_demo(";
      "cudaMalloc";
      "cudaFree";
      "demo_g<<<grid, block>>>";
      "float p_k";
    ]

let test_emit_only_needed_helpers () =
  let cu = Lower.emit_pipeline simple_pipeline in
  Alcotest.(check bool) "no repeat helper" false (contains ~needle:"idx_repeat" cu);
  Alcotest.(check bool) "no atomics" false (contains ~needle:"atomicCAS" cu)

let test_fused_kernel_lowering () =
  (* A fused local-to-local kernel lowers Shift+exchange into index
     remapping, and Let into a register declaration. *)
  let module F = Kfuse_fusion in
  let p =
    Pipeline.create ~name:"cc" ~width:16 ~height:16 ~inputs:[ "in" ]
      [
        Kernel.map ~name:"c1" ~inputs:[ "in" ]
          (Expr.conv ~border:Border.Clamp Mask.gaussian_3x3 "in");
        Kernel.map ~name:"c2" ~inputs:[ "c1" ]
          (Expr.conv ~border:Border.Clamp Mask.gaussian_3x3 "c1");
      ]
  in
  let fused = F.Transform.apply p [ Helpers.set_of [ 0; 1 ] ] in
  let cu = Lower.emit_pipeline fused in
  Alcotest.(check bool) "index exchange lowered" true (contains ~needle:"idx_clamp((x + " cu);
  (* Only one kernel and no intermediate allocation remains. *)
  Alcotest.(check bool) "no cudaMalloc" false (contains ~needle:"cudaMalloc" cu)

let test_let_lowering () =
  let p =
    Pipeline.create ~name:"lt" ~width:8 ~height:8 ~inputs:[ "in" ]
      [
        Kernel.map ~name:"k" ~inputs:[ "in" ]
          Expr.(let_ "v" (input "in" * Const 2.0) (var "v" * var "v"));
      ]
  in
  let cu = Lower.emit_pipeline p in
  Alcotest.(check bool) "register decl" true (contains ~needle:"const float r_v_" cu)

let test_reduce_lowering () =
  let p =
    Pipeline.create ~name:"rd" ~width:8 ~height:8 ~inputs:[ "in" ]
      [
        Kernel.reduce ~name:"peak" ~inputs:[ "in" ] ~init:Float.neg_infinity
          ~combine:Expr.Max (Expr.input "in");
      ]
  in
  let cu = Lower.emit_pipeline p in
  Alcotest.(check bool) "atomic max helper" true (contains ~needle:"atomicMaxFloat" cu);
  Alcotest.(check bool) "atomic call" true (contains ~needle:"atomicMaxFloat(out" cu)

let test_constant_border_lowering () =
  let p =
    Pipeline.create ~name:"cb" ~width:8 ~height:8 ~inputs:[ "in" ]
      [
        Kernel.map ~name:"k" ~inputs:[ "in" ]
          (Expr.conv ~border:(Border.Constant 0.5) Mask.gaussian_3x3 "in");
      ]
  in
  let cu = Lower.emit_pipeline p in
  Alcotest.(check bool) "constant reader" true (contains ~needle:"read_constant" cu);
  Alcotest.(check bool) "constant passed" true (contains ~needle:"0.5f)" cu)

let test_emission_deterministic () =
  Alcotest.(check string) "same text twice" (Lower.emit_pipeline simple_pipeline)
    (Lower.emit_pipeline simple_pipeline)

let suite =
  [
    Alcotest.test_case "emit expressions" `Quick test_emit_expr;
    Alcotest.test_case "emit statements" `Quick test_emit_stmt;
    Alcotest.test_case "kernel function shape" `Quick test_kernel_func_shape;
    Alcotest.test_case "scalar params passed" `Quick test_kernel_func_params_passed;
    Alcotest.test_case "pipeline emission contents" `Quick test_emit_pipeline_contents;
    Alcotest.test_case "only needed helpers" `Quick test_emit_only_needed_helpers;
    Alcotest.test_case "fused kernel lowering" `Quick test_fused_kernel_lowering;
    Alcotest.test_case "let lowering" `Quick test_let_lowering;
    Alcotest.test_case "reduce lowering" `Quick test_reduce_lowering;
    Alcotest.test_case "constant border lowering" `Quick test_constant_border_lowering;
    Alcotest.test_case "emission deterministic" `Quick test_emission_deterministic;
  ]
