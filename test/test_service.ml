(* The kfused service: JSON codec, wire protocol, and an end-to-end
   server exercise over a real Unix-domain socket — two concurrent
   clients, per-request cache accounting, and the ["service.accept"]
   fault point proving an injected accept-path fault drops one
   connection without killing the server. *)

module Svc = Kfuse_service
module Jsonx = Svc.Jsonx
module Protocol = Svc.Protocol
module Cache = Kfuse_cache
module Faults = Kfuse_util.Faults
module Diag = Kfuse_util.Diag

(* ---- jsonx ---- *)

let roundtrip v =
  match Jsonx.of_string (Jsonx.to_string v) with
  | Ok v' -> v'
  | Error msg -> Alcotest.failf "reparse failed: %s" msg

let test_jsonx_roundtrip () =
  let v =
    Jsonx.Obj
      [
        ("s", Jsonx.Str "a\"b\\c\nd\t\xe2\x82\xac");
        ("n", Jsonx.Num 1.5);
        ("big", Jsonx.Num 1234567890.0);
        ("tiny", Jsonx.Num 1e-3);
        ("neg", Jsonx.Num (-42.0));
        ("t", Jsonx.Bool true);
        ("f", Jsonx.Bool false);
        ("z", Jsonx.Null);
        ("a", Jsonx.Arr [ Jsonx.Num 1.0; Jsonx.Str ""; Jsonx.Obj [] ]);
      ]
  in
  Alcotest.(check bool) "roundtrip is identity" true (roundtrip v = v)

let test_jsonx_parse () =
  let ok s = match Jsonx.of_string s with Ok v -> v | Error m -> Alcotest.failf "%s: %s" s m in
  let bad s =
    match Jsonx.of_string s with
    | Ok _ -> Alcotest.failf "%S should not parse" s
    | Error _ -> ()
  in
  Alcotest.(check bool) "unicode escape" true (ok {|"\u20ac"|} = Jsonx.Str "\xe2\x82\xac");
  Alcotest.(check bool) "surrogate pair" true (ok {|"\ud83d\ude00"|} = Jsonx.Str "\xf0\x9f\x98\x80");
  Alcotest.(check bool) "nested" true
    (ok {| {"a":[1,2,{"b":null}],"c":true} |}
    = Jsonx.Obj
        [
          ("a", Jsonx.Arr [ Jsonx.Num 1.0; Jsonx.Num 2.0; Jsonx.Obj [ ("b", Jsonx.Null) ] ]);
          ("c", Jsonx.Bool true);
        ]);
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":1,}";
  bad "tru";
  bad "1 2";
  bad "\"\\x\"";
  bad "nan"

let test_protocol_roundtrip () =
  let reqs =
    [
      Protocol.Stats;
      Protocol.Metrics;
      Protocol.Ping;
      Protocol.Shutdown;
      Protocol.Fuse
        {
          Protocol.app = Some "harris";
          source = None;
          strategy = Kfuse_fusion.Driver.Greedy;
          c_mshared = Some 2.0;
          gamma = None;
          tg = Some 72.0;
          optimize = true;
          inline = false;
          strict = true;
          budget_ms = Some 250.0;
          no_cache = true;
        };
      Protocol.Fuse
        {
          Protocol.app = None;
          source = Some "k = in(0,0) * 2.0";
          strategy = Kfuse_fusion.Driver.Mincut;
          c_mshared = None;
          gamma = None;
          tg = None;
          optimize = false;
          inline = false;
          strict = false;
          budget_ms = None;
          no_cache = false;
        };
      Protocol.Fuse_exec
        {
          Protocol.fuse =
            {
              Protocol.app = Some "sobel";
              source = None;
              strategy = Kfuse_fusion.Driver.Mincut;
              c_mshared = None;
              gamma = None;
              tg = None;
              optimize = true;
              inline = false;
              strict = false;
              budget_ms = Some 500.0;
              no_cache = false;
            };
          exec_mode = Some Kfuse_exec.Native.Subprocess;
          width = Some 32;
          height = Some 24;
          seed = 7;
          repeat = 2;
          verify = true;
          return_pixels = false;
        };
    ]
  in
  List.iter
    (fun req ->
      match Protocol.request_of_json (Protocol.request_to_json req) with
      | Ok req' -> Alcotest.(check bool) "request roundtrips" true (req = req')
      | Error d -> Alcotest.failf "roundtrip rejected: %s" (Diag.to_string d))
    reqs;
  let bad json =
    match Protocol.request_of_json json with
    | Ok _ -> Alcotest.fail "malformed request accepted"
    | Error d -> Alcotest.(check string) "protocol error code" "KF0801" (Diag.code_id d.Diag.code)
  in
  bad (Jsonx.Obj [ ("op", Jsonx.Str "explode") ]);
  bad (Jsonx.Obj [ ("op", Jsonx.Str "fuse") ]);
  bad (Jsonx.Obj [ ("op", Jsonx.Str "fuse"); ("app", Jsonx.Num 3.0) ]);
  bad
    (Jsonx.Obj
       [ ("op", Jsonx.Str "fuse"); ("app", Jsonx.Str "x"); ("source", Jsonx.Str "y") ]);
  (* fuse_exec validation: width and height must come together, sizes
     must be positive integers, exec_mode must be a known mode. *)
  bad
    (Jsonx.Obj
       [ ("op", Jsonx.Str "fuse_exec"); ("app", Jsonx.Str "sobel"); ("width", Jsonx.Num 16.0) ]);
  bad
    (Jsonx.Obj
       [
         ("op", Jsonx.Str "fuse_exec");
         ("app", Jsonx.Str "sobel");
         ("repeat", Jsonx.Num 2.5);
       ]);
  bad
    (Jsonx.Obj
       [
         ("op", Jsonx.Str "fuse_exec");
         ("app", Jsonx.Str "sobel");
         ("exec_mode", Jsonx.Str "jit");
       ]);
  (* lazy ops: an open needs a seed or an extent, edits need id and
     command, inputs must be an array of strings. *)
  List.iter
    (fun req ->
      match Protocol.request_of_json (Protocol.request_to_json req) with
      | Ok req' -> Alcotest.(check bool) "lazy request roundtrips" true (req = req')
      | Error d -> Alcotest.failf "lazy roundtrip rejected: %s" (Diag.to_string d))
    [
      Protocol.Lazy_open
        {
          Protocol.app = None;
          source = None;
          width = Some 64;
          height = Some 48;
          channels = Some 3;
          inputs = [ "in"; "aux" ];
          c_mshared = Some 2.0;
          gamma = None;
          tg = None;
        };
      Protocol.Lazy_open
        {
          Protocol.app = Some "harris";
          source = None;
          width = None;
          height = None;
          channels = None;
          inputs = [];
          c_mshared = None;
          gamma = None;
          tg = None;
        };
      Protocol.Lazy_edit { Protocol.id = "lz-0"; command = "add k = in * 2.0" };
      Protocol.Lazy_flush { Protocol.id = "lz-0"; scratch = true };
      Protocol.Lazy_flush { Protocol.id = "lz-0"; scratch = false };
      Protocol.Lazy_close "lz-0";
    ];
  bad (Jsonx.Obj [ ("op", Jsonx.Str "lazy_open") ]);
  bad (Jsonx.Obj [ ("op", Jsonx.Str "lazy_open"); ("width", Jsonx.Num 64.0) ]);
  bad
    (Jsonx.Obj
       [ ("op", Jsonx.Str "lazy_open"); ("app", Jsonx.Str "x"); ("source", Jsonx.Str "y") ]);
  bad
    (Jsonx.Obj
       [
         ("op", Jsonx.Str "lazy_open");
         ("width", Jsonx.Num 64.0);
         ("height", Jsonx.Num 48.0);
         ("inputs", Jsonx.Arr [ Jsonx.Num 3.0 ]);
       ]);
  bad (Jsonx.Obj [ ("op", Jsonx.Str "lazy_edit"); ("id", Jsonx.Str "lz-0") ]);
  bad (Jsonx.Obj [ ("op", Jsonx.Str "lazy_flush") ]);
  bad (Jsonx.Obj [ ("op", Jsonx.Str "lazy_close") ])

(* ---- end-to-end server ---- *)

let temp_socket () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "kfused-test-%d-%d.sock" (Unix.getpid ()) (Random.bits ()))

let with_server f =
  let socket = temp_socket () in
  let cache = Cache.Plan_cache.create () in
  Kfuse_util.Pool.with_pool 2 (fun pool ->
      match Svc.Server.start ~socket ~cache ~pool () with
      | Error d -> Alcotest.failf "server start failed: %s" (Diag.to_string d)
      | Ok server ->
        Fun.protect ~finally:(fun () -> Svc.Server.stop server) (fun () -> f socket server))

let fuse_req app =
  {
    Protocol.app = Some app;
    source = None;
    strategy = Kfuse_fusion.Driver.Mincut;
    c_mshared = None;
    gamma = None;
    tg = None;
    optimize = false;
    inline = false;
    strict = false;
    budget_ms = None;
    no_cache = false;
  }

let expect_ok = function
  | Ok v -> v
  | Error d -> Alcotest.failf "request failed: %s" (Diag.to_string d)

let field name v =
  match Jsonx.member name v with
  | Some f -> f
  | None -> Alcotest.failf "response lacks %S: %s" name (Jsonx.to_string v)

let test_concurrent_clients () =
  with_server @@ fun socket _server ->
  (* Two clients, each issuing the same requests concurrently on its own
     connection: both must get correct answers, and the second wave of
     harris requests must be servable from the cache. *)
  let results = Array.make 2 None in
  let client i =
    Thread.create
      (fun () ->
        results.(i) <-
          Some
            (Svc.Client.with_connection ~socket (fun c ->
                 let ( let* ) = Result.bind in
                 let* first = Svc.Client.fuse c (fuse_req "harris") in
                 let* second = Svc.Client.fuse c (fuse_req "harris") in
                 let* () = Svc.Client.ping c in
                 Ok (first, second))))
      ()
  in
  let threads = [ client 0; client 1 ] in
  List.iter Thread.join threads;
  let outcomes = ref [] in
  Array.iter
    (fun r ->
      match r with
      | None -> Alcotest.fail "client thread did not finish"
      | Some result ->
        let first, second = expect_ok result in
        List.iter
          (fun reply ->
            Alcotest.(check bool) "6 fused kernels" true
              (field "kernels_out" reply = Jsonx.Num 6.0);
            outcomes :=
              (match field "outcome" reply with Jsonx.Str s -> s | _ -> "?") :: !outcomes)
          [ first; second ])
    results;
  (* 4 fuse requests for one plan: at least one computed it, and at
     least one was served from the cache (the second wave at the
     latest; racing first requests may both miss). *)
  let hits = List.length (List.filter (String.equal "hit") !outcomes) in
  let misses = List.length (List.filter (String.equal "miss") !outcomes) in
  Alcotest.(check bool) "some request computed the plan" true (misses >= 1);
  Alcotest.(check bool) "some request hit the cache" true (hits >= 1);
  Alcotest.(check int) "every request accounted" 4 (hits + misses);
  (* The stats request agrees with the per-request outcomes. *)
  let stats =
    expect_ok (Svc.Client.with_connection ~socket (fun c -> Svc.Client.stats c))
  in
  let cache_stats = field "cache" stats in
  Alcotest.(check bool) "stats count the hits" true
    (field "hits" cache_stats = Jsonx.Num (float_of_int hits));
  match field "fuse" (field "requests" stats) with
  | Jsonx.Obj _ as fuse_stats ->
    Alcotest.(check bool) "4 fuse requests" true (field "total" fuse_stats = Jsonx.Num 4.0);
    Alcotest.(check bool) "no errors" true (field "errors" fuse_stats = Jsonx.Num 0.0);
    Alcotest.(check bool) "latency quantiles present" true
      (match field "latency" fuse_stats with Jsonx.Obj _ -> true | _ -> false)
  | _ -> Alcotest.fail "stats lack fuse request accounting"

let test_error_responses_keep_serving () =
  with_server @@ fun socket _server ->
  Svc.Client.with_connection ~socket (fun c ->
      (* An unknown app is an error response, not a dead connection. *)
      (match Svc.Client.fuse c (fuse_req "no-such-app") with
      | Ok _ -> Alcotest.fail "unknown app should fail"
      | Error _ -> ());
      (* Bad DSL likewise. *)
      (match Svc.Client.fuse c { (fuse_req "x") with Protocol.app = None; source = Some "%" } with
      | Ok _ -> Alcotest.fail "bad DSL should fail"
      | Error _ -> ());
      (* The same connection still works. *)
      Result.map (fun _ -> ()) (Svc.Client.fuse c (fuse_req "sobel")))
  |> expect_ok

let test_fuse_exec_end_to_end () =
  (* Plan + compile + native execution over the wire; needs a C
     toolchain, so skip cleanly without one. *)
  (match Kfuse_exec.Toolchain.find () with Error _ -> Alcotest.skip () | Ok _ -> ());
  with_server @@ fun socket _server ->
  let req =
    {
      Protocol.fuse = fuse_req "sobel";
      exec_mode = None;
      width = Some 16;
      height = Some 12;
      seed = 5;
      repeat = 2;
      verify = true;
      return_pixels = true;
    }
  in
  let reply =
    expect_ok (Svc.Client.with_connection ~socket (fun c -> Svc.Client.fuse_exec c req))
  in
  (* The native result is bit-exact against the interpreter. *)
  Alcotest.(check bool) "verified exactly" true
    (field "max_abs_diff" reply = Jsonx.Num 0.0);
  let exec = field "exec" reply in
  Alcotest.(check bool) "a known mode ran" true
    (match field "mode" exec with
    | Jsonx.Str s -> Kfuse_exec.Native.mode_of_string s <> None
    | _ -> false);
  Alcotest.(check bool) "one sample per repeat" true
    (match field "samples_ms" exec with Jsonx.Arr l -> List.length l = 2 | _ -> false);
  (match field "outputs" reply with
  | Jsonx.Arr [ out ] ->
    Alcotest.(check bool) "output extent" true
      (field "width" out = Jsonx.Num 16.0 && field "height" out = Jsonx.Num 12.0);
    Alcotest.(check bool) "pixels returned as rows" true
      (match field "pixels" out with
      | Jsonx.Arr rows ->
        List.length rows = 12
        && List.for_all
             (function Jsonx.Arr cells -> List.length cells = 16 | _ -> false)
             rows
      | _ -> false)
  | _ -> Alcotest.fail "expected exactly one output image");
  (* Same plan again: the plan cache serves it, execution still works. *)
  let again =
    expect_ok (Svc.Client.with_connection ~socket (fun c -> Svc.Client.fuse_exec c req))
  in
  Alcotest.(check bool) "plan cache hit on replay" true
    (field "outcome" again = Jsonx.Str "hit");
  (* width/height overrides are registry-only: DSL source is refused. *)
  match
    Svc.Client.with_connection ~socket (fun c ->
        Svc.Client.fuse_exec c
          {
            req with
            Protocol.fuse =
              { (fuse_req "x") with Protocol.app = None; source = Some "k = in(0,0)" };
          })
  with
  | Ok _ -> Alcotest.fail "size override on DSL source should fail"
  | Error d ->
    Alcotest.(check string) "typed protocol error" "KF0801" (Diag.code_id d.Diag.code)

let test_accept_fault_degrades () =
  with_server @@ fun socket server ->
  Faults.with_spec "service.accept@1" (fun () ->
      (* The first connection is accepted and immediately dropped by the
         injected fault: the client sees a closed connection, an error,
         not a hang. *)
      (match
         Svc.Client.with_connection ~socket (fun c -> Svc.Client.ping c)
       with
      | Ok () -> Alcotest.fail "dropped connection should not answer"
      | Error _ -> ());
      (* The server survives: the next connection is served. *)
      expect_ok (Svc.Client.with_connection ~socket (fun c -> Svc.Client.ping c)));
  Alcotest.(check int) "drop is counted" 1
    (Svc.Metrics.counter (Svc.Server.metrics server) "connections_dropped");
  let text =
    expect_ok (Svc.Client.with_connection ~socket (fun c -> Svc.Client.metrics c))
  in
  let contains needle haystack =
    let nl = String.length needle and hl = String.length haystack in
    let rec loop i = i + nl <= hl && (String.sub haystack i nl = needle || loop (i + 1)) in
    loop 0
  in
  Alcotest.(check bool) "metrics expose the drop" true
    (contains "kfused_connections_dropped_total 1" text)

let test_stale_socket_replaced () =
  let socket = temp_socket () in
  let cache = Cache.Plan_cache.create () in
  Kfuse_util.Pool.with_pool 1 (fun pool ->
      (* A dead server's socket file. *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX socket);
      Unix.close fd;
      Alcotest.(check bool) "stale file exists" true (Sys.file_exists socket);
      match Svc.Server.start ~socket ~cache ~pool () with
      | Error d -> Alcotest.failf "stale socket not replaced: %s" (Diag.to_string d)
      | Ok server ->
        expect_ok (Svc.Client.with_connection ~socket (fun c -> Svc.Client.ping c));
        (* A live server refuses a second bind on the same path. *)
        (match Svc.Server.start ~socket ~cache ~pool () with
        | Ok other ->
          Svc.Server.stop other;
          Alcotest.fail "two servers bound the same socket"
        | Error d ->
          Alcotest.(check string) "refused with KF0802" "KF0802" (Diag.code_id d.Diag.code));
        Svc.Server.stop server;
        Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket))

let test_connect_retry_over_restart () =
  (* The restart signature: nobody is listening yet (ECONNREFUSED /
     ENOENT), then a server appears.  An idempotent [Client.call] must
     absorb the outage inside its jittered-backoff retry loop instead of
     surfacing a raw connect error — this is what makes a supervised
     shard restart invisible to retrying clients. *)
  let socket = temp_socket () in
  let cache = Cache.Plan_cache.create () in
  Kfuse_util.Pool.with_pool 1 (fun pool ->
      let server = ref None in
      let starter =
        Thread.create
          (fun () ->
            Thread.delay 0.15;
            match Svc.Server.start ~socket ~cache ~pool () with
            | Error d -> Alcotest.failf "late start failed: %s" (Diag.to_string d)
            | Ok s -> server := Some s)
          ()
      in
      Fun.protect
        ~finally:(fun () ->
          Thread.join starter;
          Option.iter Svc.Server.stop !server)
        (fun () ->
          (* Before any listener exists: with retries this must succeed;
             the first attempts fail with the connection-transient class
             and reconnect per attempt. *)
          let retry = { Svc.Client.default_retry with attempts = 8; backoff_ms = 50. } in
          match Svc.Client.call ~socket ~retry (Protocol.Fuse (fuse_req "harris")) with
          | Ok reply ->
            Alcotest.(check bool) "answered after the server came up" true
              (field "kernels_out" reply = Jsonx.Num 6.0)
          | Error d -> Alcotest.failf "retry loop gave up: %s" (Diag.to_string d)));
  (* Without retries the same outage is a typed Service_error — never a
     raised Unix_error. *)
  let socket2 = temp_socket () in
  match Svc.Client.call ~socket:socket2 ~retry:{ Svc.Client.default_retry with attempts = 0 }
          Protocol.Ping
  with
  | Ok _ -> Alcotest.fail "ping with nobody listening should fail"
  | Error d ->
    Alcotest.(check string) "typed connect failure" "KF0802" (Diag.code_id d.Diag.code)
  | exception exn -> Alcotest.failf "non-typed failure: %s" (Printexc.to_string exn)

(* A lazy session over the wire: open an empty builder, grow it with
   textual edits, flush incrementally and from scratch, and check the
   plan fingerprint against the same edit sequence applied through the
   library locally — the differential harness crossing the socket. *)
let test_lazy_session_end_to_end () =
  with_server @@ fun socket _server ->
  (* Two weakly-connected components: the in-chain (later edited) and
     the aux-chain (untouched — its planning decisions must be reused). *)
  let edits =
    [
      "add blur = conv(in, gauss3, mirror)";
      "param gain 1.5";
      "add mag = blur * gain + in";
      "input aux";
      "add a1 = conv(aux, gauss5, mirror)";
      "add a2 = a1 * 2.0";
      "add mix = mag - blur";
    ]
  in
  (* The local reference: same empty builder, same edit sequence. *)
  let lp =
    Kfuse_lazy.Lazy_pipeline.create ~inputs:[ "in" ] ~width:48 ~height:32
      Kfuse_fusion.Config.default
  in
  List.iter
    (fun line ->
      match
        Result.bind
          (Kfuse_lazy.Command.parse lp line)
          (Kfuse_lazy.Command.apply lp)
      with
      | Ok _ -> ()
      | Error d -> Alcotest.failf "local %S rejected: %s" line (Diag.to_string d))
    edits;
  let reference =
    match Kfuse_lazy.Lazy_pipeline.flush lp with
    | Ok plan -> plan.Kfuse_lazy.Replan.fingerprint
    | Error d -> Alcotest.failf "local flush failed: %s" (Diag.to_string d)
  in
  let num name v =
    match field name v with
    | Jsonx.Num f -> f
    | j -> Alcotest.failf "field %S not a number: %s" name (Jsonx.to_string j)
  in
  let str name v =
    match field name v with
    | Jsonx.Str s -> s
    | j -> Alcotest.failf "field %S not a string: %s" name (Jsonx.to_string j)
  in
  Svc.Client.with_connection ~socket (fun c ->
      let ( let* ) = Result.bind in
      let* opened =
        Svc.Client.request c
          (Protocol.Lazy_open
             {
               Protocol.app = None;
               source = None;
               width = Some 48;
               height = Some 32;
               channels = None;
               inputs = [ "in" ];
               c_mshared = None;
               gamma = None;
               tg = None;
             })
      in
      let id = str "id" opened in
      (* Edits apply in order; each reply reports the new generation. *)
      let* () =
        List.fold_left
          (fun acc line ->
            let* () = acc in
            let* reply =
              Svc.Client.request c (Protocol.Lazy_edit { Protocol.id; command = line })
            in
            Alcotest.(check string) "edit targets the session" id (str "id" reply);
            Ok ())
          (Ok ()) edits
      in
      (* A rejected edit is a typed error and leaves the session live:
         'blur' is consumed downstream, and 'frob' is not a command. *)
      (match
         Svc.Client.request c (Protocol.Lazy_edit { Protocol.id; command = "del blur" })
       with
      | Ok _ -> Alcotest.fail "deleting a consumed kernel should fail"
      | Error _ -> ());
      (match
         Svc.Client.request c (Protocol.Lazy_edit { Protocol.id; command = "frob x" })
       with
      | Ok _ -> Alcotest.fail "unknown command should fail"
      | Error d ->
        Alcotest.(check string) "parse error code" "KF0201" (Diag.code_id d.Diag.code));
      (* Flush #1 plans everything fresh; #2 replays fully from memo;
         the scratch flush is the differential reference on the wire. *)
      let* flush1 =
        Svc.Client.request c (Protocol.Lazy_flush { Protocol.id; scratch = false })
      in
      Alcotest.(check bool) "first flush planned blocks" true
        (num "blocks_replanned" (field "replan" flush1) > 0.0);
      Alcotest.(check string) "wire plan matches local library plan" reference
        (str "fingerprint" flush1);
      let* flush2 =
        Svc.Client.request c (Protocol.Lazy_flush { Protocol.id; scratch = false })
      in
      Alcotest.(check bool) "reflush replays from memo" true
        (num "blocks_replanned" (field "replan" flush2) = 0.0);
      let* scratch =
        Svc.Client.request c (Protocol.Lazy_flush { Protocol.id; scratch = true })
      in
      Alcotest.(check string) "incremental == scratch over the wire"
        (str "fingerprint" flush1) (str "fingerprint" scratch);
      (* One more edit — confined to the in-chain — then
         incremental-vs-scratch again. *)
      let* _ =
        Svc.Client.request c
          (Protocol.Lazy_edit { Protocol.id; command = "retarget mix blur in" })
      in
      let* flush3 =
        Svc.Client.request c (Protocol.Lazy_flush { Protocol.id; scratch = false })
      in
      let* scratch3 =
        Svc.Client.request c (Protocol.Lazy_flush { Protocol.id; scratch = true })
      in
      Alcotest.(check string) "post-edit incremental == scratch"
        (str "fingerprint" flush3) (str "fingerprint" scratch3);
      Alcotest.(check bool) "edit dirtied only part of the DAG" true
        (num "blocks_reused" (field "replan" flush3) > 0.0);
      let* closed = Svc.Client.request c (Protocol.Lazy_close id) in
      Alcotest.(check bool) "close reports the flush count" true
        (num "flushes" closed = 5.0);
      (* Ops on a closed session are typed unknown-session errors. *)
      (match Svc.Client.request c (Protocol.Lazy_flush { Protocol.id; scratch = false }) with
      | Ok _ -> Alcotest.fail "flush on a closed session should fail"
      | Error d ->
        Alcotest.(check string) "unknown session code" "KF0806" (Diag.code_id d.Diag.code));
      (* The session accounting made it into stats. *)
      let* stats = Svc.Client.stats c in
      let lazy_stats = field "lazy" stats in
      Alcotest.(check bool) "one session opened" true (num "opened" lazy_stats = 1.0);
      Alcotest.(check bool) "one session closed" true (num "closed" lazy_stats = 1.0);
      Alcotest.(check bool) "no session left active" true (num "active" lazy_stats = 0.0);
      Alcotest.(check bool) "five flushes counted" true (num "flushes" lazy_stats = 5.0);
      Ok ())
  |> expect_ok

(* Opening from a registry app seeds the builder with the app's
   pipeline; the first flush must equal planning the app from scratch. *)
let test_lazy_open_seeded () =
  with_server @@ fun socket _server ->
  Svc.Client.with_connection ~socket (fun c ->
      let ( let* ) = Result.bind in
      let* opened =
        Svc.Client.request c
          (Protocol.Lazy_open
             {
               Protocol.app = Some "harris";
               source = None;
               width = None;
               height = None;
               channels = None;
               inputs = [];
               c_mshared = None;
               gamma = None;
               tg = None;
             })
      in
      let id =
        match field "id" opened with
        | Jsonx.Str s -> s
        | _ -> Alcotest.fail "lazy_open reply lacks an id"
      in
      let* flushed =
        Svc.Client.request c (Protocol.Lazy_flush { Protocol.id; scratch = false })
      in
      let reference =
        match Kfuse_apps.Registry.find "harris" with
        | None -> Alcotest.fail "harris app missing"
        | Some e -> (
          match
            Kfuse_lazy.Replan.scratch Kfuse_fusion.Config.default
              (e.Kfuse_apps.Registry.pipeline ())
          with
          | Ok plan -> plan.Kfuse_lazy.Replan.fingerprint
          | Error d -> Alcotest.failf "reference plan failed: %s" (Diag.to_string d))
      in
      Alcotest.(check bool) "seeded flush matches scratch reference" true
        (field "fingerprint" flushed = Jsonx.Str reference);
      let* _ = Svc.Client.request c (Protocol.Lazy_close id) in
      Ok ())
  |> expect_ok

let test_shutdown_request () =
  let socket = temp_socket () in
  let cache = Cache.Plan_cache.create () in
  Kfuse_util.Pool.with_pool 1 (fun pool ->
      match Svc.Server.start ~socket ~cache ~pool () with
      | Error d -> Alcotest.failf "start failed: %s" (Diag.to_string d)
      | Ok server ->
        expect_ok (Svc.Client.with_connection ~socket (fun c -> Svc.Client.shutdown c));
        (* wait returns promptly because the shutdown request stopped the
           accept loop; joining proves no thread is left behind. *)
        Svc.Server.wait server;
        Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket))

let suite =
  [
    Alcotest.test_case "jsonx: encode/decode roundtrip" `Quick test_jsonx_roundtrip;
    Alcotest.test_case "jsonx: parser accepts/rejects" `Quick test_jsonx_parse;
    Alcotest.test_case "protocol: request roundtrip + rejection" `Quick
      test_protocol_roundtrip;
    Alcotest.test_case "kfused: two concurrent clients share the cache" `Quick
      test_concurrent_clients;
    Alcotest.test_case "kfused: error responses keep the connection alive" `Quick
      test_error_responses_keep_serving;
    Alcotest.test_case "kfused: fuse_exec plans, compiles and executes" `Slow
      test_fuse_exec_end_to_end;
    Alcotest.test_case "kfused: service.accept fault drops one connection" `Quick
      test_accept_fault_degrades;
    Alcotest.test_case "kfused: stale socket replaced, live refused" `Quick
      test_stale_socket_replaced;
    Alcotest.test_case "client: connect retry rides out a restart" `Quick
      test_connect_retry_over_restart;
    Alcotest.test_case "kfused: shutdown request stops the server" `Quick
      test_shutdown_request;
    Alcotest.test_case "kfused: lazy session edits, flushes, differentials" `Quick
      test_lazy_session_end_to_end;
    Alcotest.test_case "kfused: lazy_open seeded from a registry app" `Quick
      test_lazy_open_seeded;
  ]
