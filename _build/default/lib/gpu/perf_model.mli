(** Analytic execution-time model.

    This module substitutes for running generated CUDA on hardware (see
    DESIGN.md): per-kernel time is the maximum of a bandwidth term and a
    compute term — the classic roofline — plus a launch overhead, derated
    by occupancy when shared-memory usage starves the SMs of warps.

    Memory traffic is derived from the kernel IR the same way the
    paper's benefit model reasons about it: every distinct input image is
    streamed once per pixel (local operators pay a tile-halo factor for
    their shared-memory staging), the output is written once, and
    intermediate images eliminated by fusion simply no longer appear.
    Compute is the ALU/SFU count of the (possibly fused) body, so the
    redundant recomputation introduced by point-to-local and
    local-to-local fusion is priced automatically — fused bodies contain
    the recomputed taps.

    Codegen quality: [Basic_codegen] models the generated code of the
    prior-work basic fusion [12], which lacks the optimized staging and
    index arrangements of this paper's Section IV; its fused kernels run
    at a lower effective bandwidth.  Kernels untouched by fusion are
    identical under both qualities. *)

type quality = Optimized | Basic_codegen

(** Tunable model constants; see {!default_params}. *)
type params = {
  eff_point : float;  (** fraction of peak bandwidth for streaming (point) kernels *)
  eff_local : float;  (** same, for shared-memory staged (local) kernels *)
  basic_fused_penalty : float;
      (** extra bandwidth-efficiency multiplier for fused kernels compiled
          by the basic technique *)
  sfu_throughput_cost : float;  (** issue slots per SFU op, relative to ALU *)
  shared_access_cost : float;  (** issue slots per shared-memory access *)
  launch_overhead_ms : float;  (** per kernel launch *)
  threads_per_block : int;
  regs_per_thread : int;
      (** register-usage floor; each kernel's occupancy uses the larger of
          this and {!Kfuse_ir.Cost.kernel_registers} (Section II-B.1) *)
}

val default_params : params

(** Per-kernel cost account. *)
type kernel_time = {
  kernel_name : string;
  fused : bool;  (** produced by fusing 2+ kernels *)
  global_accesses_per_px : float;  (** loads + stores, tile factors included *)
  ops_per_px : float;  (** ALU-equivalent issue slots per pixel *)
  shared_bytes : int;  (** shared memory per block *)
  occupancy : float;
  t_mem_ms : float;
  t_comp_ms : float;
  t_ms : float;  (** max of the two, derated, plus launch overhead *)
}

(** [kernel_time ?params ?block device ~quality ~fused pipeline kernel]
    prices one kernel of [pipeline].  [block] overrides the thread-block
    shape (default 32 x [threads_per_block/32]); occupancy then uses
    [bx * by] threads. *)
val kernel_time :
  ?params:params ->
  ?block:Kfuse_ir.Cost.block ->
  Device.t ->
  quality:quality ->
  fused:bool ->
  Kfuse_ir.Pipeline.t ->
  Kfuse_ir.Kernel.t ->
  kernel_time

(** [pipeline_time ?params device ~quality ~fused_kernels pipeline] prices
    a whole pipeline; [fused_kernels] names the kernels that are fusion
    products.  Returns the per-kernel breakdown and the total. *)
val pipeline_time :
  ?params:params ->
  ?block:Kfuse_ir.Cost.block ->
  Device.t ->
  quality:quality ->
  fused_kernels:string list ->
  Kfuse_ir.Pipeline.t ->
  kernel_time list * float

val quality_to_string : quality -> string
val pp_kernel_time : Format.formatter -> kernel_time -> unit
