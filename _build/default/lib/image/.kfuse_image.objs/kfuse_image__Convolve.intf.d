lib/image/convolve.mli: Border Image Mask
