(** End-to-end fusion driver: pick a strategy, get a fused pipeline.

    Wraps partitioning (one of the strategies below) and the fusion
    transform, and reports the decisions taken — the partition, the
    weighted fusion graph, and the recursion trace for the min-cut
    strategy. *)

type strategy =
  | Baseline  (** no fusion: every kernel in its own block *)
  | Basic  (** prior work [12]: pairwise, point-scenarios only *)
  | Greedy  (** heaviest-edge grouping under full legality *)
  | Mincut  (** this paper: Algorithm 1 *)

type report = {
  strategy : strategy;
  inlined : string list;
      (** images eliminated by the optional inlining pre-pass *)
  input : Kfuse_ir.Pipeline.t;
      (** the pipeline the partition/edges refer to: the original, or the
          post-inline rewrite when [inline] was set *)
  partition : Kfuse_graph.Partition.t;
  edges : Benefit.edge_report list;
  steps : Mincut_fusion.step list;  (** empty unless [Mincut] *)
  objective : float;  (** beta (Eq. 1) of the chosen partition *)
  fused : Kfuse_ir.Pipeline.t;
  degraded : bool;
      (** true when any stage fell back (see [warnings]); the partition
          is then the always-legal baseline (or the unoptimized /
          un-inlined result, for the optional stages) *)
  warnings : Kfuse_util.Diag.t list;
      (** the diagnostics of every degraded stage, in occurrence order;
          empty on a clean run *)
}

(** [run ?exchange ?optimize ?inline config strategy pipeline]
    partitions and fuses.  [exchange] (default [true]) selects
    border-correct index-exchange fusion; disable it only to reproduce
    the incorrect naive fusion of Figure 4b.  [optimize] (default
    [false]) runs the {!Kfuse_ir.Simplify} and {!Kfuse_ir.Cse} cleanup
    passes over the fused kernels ("enlarging the scope for further
    optimizations such as common sub-expression elimination", Section
    II-C.4).  [inline] (default [false]) runs the {!Inline_fusion}
    pre-pass, which can eliminate shared intermediates the partition
    model must keep (Figure 2c); the reported edges/partition then refer
    to the inlined pipeline.  [pool] (default {!Kfuse_util.Pool.serial})
    parallelizes the benefit model and the min-cut recursion across its
    domains; the report is bit-identical to a serial run.

    {2 Robustness}

    The driver treats internal faults as first-class.  By default
    ([strict = false]) any stage that fails — a strategy that raises, a
    search that runs past [budget_ms] (polled between min-cut recursion
    waves and after every strategy), or a strategy result that fails the
    {!Legality.check_partition} invariant (blocks disjoint + covering,
    each legal under the Eq. 2 resource bound) — degrades gracefully:
    the driver falls back to the always-legal baseline singleton
    partition (every singleton block is legal, Section II-B) and records
    a [Warning] diagnostic in [report.warnings].  The optional
    inline/optimize stages degrade by being skipped.  With
    [strict = true] the first such failure raises
    {!Kfuse_util.Diag.Fatal} instead.

    Two failures are fatal in every mode, because no baseline exists for
    them: an invalid [config] ({!Config.validate_result}) and a
    structurally broken pipeline ({!Kfuse_ir.Validate.result}). *)
val run :
  ?exchange:bool ->
  ?optimize:bool ->
  ?inline:bool ->
  ?pool:Kfuse_util.Pool.t ->
  ?strict:bool ->
  ?budget_ms:float ->
  Config.t ->
  strategy ->
  Kfuse_ir.Pipeline.t ->
  report

(** [run_result] is {!run} with every fatal outcome — including strict-
    mode degradation failures — returned as [Error diag] instead of a
    raised {!Kfuse_util.Diag.Fatal}. *)
val run_result :
  ?exchange:bool ->
  ?optimize:bool ->
  ?inline:bool ->
  ?pool:Kfuse_util.Pool.t ->
  ?strict:bool ->
  ?budget_ms:float ->
  Config.t ->
  strategy ->
  Kfuse_ir.Pipeline.t ->
  (report, Kfuse_util.Diag.t) result

(** [fused_kernel_count r] is the number of kernels after fusion. *)
val fused_kernel_count : report -> int

val strategy_to_string : strategy -> string

(** [strategy_of_string s] parses ["baseline" | "basic" | "greedy" |
    "mincut"]. *)
val strategy_of_string : string -> strategy option

(** [all_strategies] lists every strategy in comparison order. *)
val all_strategies : strategy list

(** [pp_report ppf r] renders a human-readable account: inlined images,
    edge weights, scenario per edge, trace, final partition, and kernel
    count. *)
val pp_report : Format.formatter -> report -> unit
