(** Algorithm 1: recursive min-cut kernel fusion (Section III).

    Weights are assigned to every edge by the benefit model; the whole
    DAG starts as a single partition block in the working set.  Each
    iteration moves legal (or singleton) blocks to the ready set and
    splits illegal blocks along a weighted minimum cut (Stoer-Wagner) of
    their induced undirected graph.  The recursion terminates with a
    partition whose blocks are all legal; maximizing the retained
    in-block weight is equivalent to minimizing the cut weight (Eq. 13).

    Block legality here is {!Legality.check} extended with the paper's
    profitability clamp (Section II-C.4): an edge whose legal scenario
    estimates a non-positive benefit "should not be fused" and is treated
    as fusion-preventing, so a block containing such an edge is split. *)

(** One step of the recursion, for tracing/visualizing Figure 3. *)
type step =
  | Accept of Kfuse_util.Iset.t  (** block was legal (or singleton) *)
  | Cut of {
      block : Kfuse_util.Iset.t;
      reason : Legality.reason option;
          (** why the block was illegal; [None] when split only by the
              profitability clamp or disconnection *)
      cut_weight : float;
      side_a : Kfuse_util.Iset.t;
      side_b : Kfuse_util.Iset.t;
    }

type result = {
  partition : Kfuse_graph.Partition.t;
  edges : Benefit.edge_report list;  (** the weighted fusion graph *)
  steps : step list;  (** recursion trace, in execution order *)
  objective : float;  (** beta of Eq. 1 under the computed weights *)
}

(** [weight_table edges] indexes the reported weights by [(src, dst)]
    for O(1) lookup (the partition objective queries one weight per edge
    per block, which walked the whole report list before). *)
val weight_table : Benefit.edge_report list -> (int * int, float) Hashtbl.t

(** [block_legal config pipeline edges block] is the extended legality
    predicate described above ([edges] supplies precomputed weights). *)
val block_legal :
  Config.t -> Kfuse_ir.Pipeline.t -> Benefit.edge_report list -> Kfuse_util.Iset.t -> bool

(** What Algorithm 1 does to one block of the working set: accept it, or
    split it along a min cut (or into weak components when it is already
    disconnected).  A pure function of the block — given the config, the
    pipeline and the edge weights — which is what lets independent blocks
    be decided on separate domains, and decisions be replayed across runs
    by the incremental replanner. *)
type decision =
  | Accepted
  | Split of {
      reason : Legality.reason option;
      cut_weight : float;
      side_a : Kfuse_util.Iset.t;
      side_b : Kfuse_util.Iset.t;
    }

(** [run ?pool ?deadline ?lookup ?record ?edges config pipeline] executes
    Algorithm 1 and returns the final partition with its trace.  With
    [pool], edge weights and the per-block legality/min-cut decisions of
    each recursion wave are evaluated in parallel; every decision is a
    pure function of its block, so the trace and partition are
    bit-identical to the serial run.  [deadline] (default
    {!Kfuse_util.Deadline.none}) is polled between recursion waves; an
    expired deadline raises {!Kfuse_util.Deadline.Expired}, which
    {!Driver.run} converts into graceful degradation.

    [lookup]/[record] are the cross-run memoization hooks used by
    incremental replanning ({!Kfuse_lazy.Replan}): [lookup] is consulted
    once per undecided block (serially, on the calling domain) and a
    [Some] short-circuits {!decision} computation for that block; misses
    are computed as usual and offered to [record] (also serially).
    {b Contract}: [lookup] must return exactly the decision the fresh
    computation would produce — the result is otherwise unspecified.
    [edges] supplies a precomputed weighted fusion graph (it must equal
    {!Benefit.all_edges} for this config and pipeline), letting a caller
    that memoizes edge reports skip re-scoring them. *)
val run :
  ?pool:Kfuse_util.Pool.t ->
  ?deadline:Kfuse_util.Deadline.t ->
  ?lookup:(Kfuse_util.Iset.t -> decision option) ->
  ?record:(Kfuse_util.Iset.t -> decision -> unit) ->
  ?edges:Benefit.edge_report list ->
  Config.t ->
  Kfuse_ir.Pipeline.t ->
  result

(** [partition config pipeline] is [(run config pipeline).partition]. *)
val partition : Config.t -> Kfuse_ir.Pipeline.t -> Kfuse_graph.Partition.t

val pp_step : Kfuse_ir.Pipeline.t -> Format.formatter -> step -> unit
