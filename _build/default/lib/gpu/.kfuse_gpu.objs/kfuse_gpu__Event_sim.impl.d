lib/gpu/event_sim.ml: Array Device Float Kfuse_ir List Occupancy Perf_model
