(* Types only; see ast.mli. *)
include struct
  type position = { line : int; col : int }

  type mask_ref = Named_mask of string | Literal_mask of float list list

  type expr =
    | Num of float
    | Ref of string
    | Access of { name : string; dx : int; dy : int; border : Kfuse_image.Border.mode option }
    | Conv of { image : string; mask : mask_ref; border : Kfuse_image.Border.mode option }
    | Let_in of { name : string; value : expr; body : expr }
  | Unary of string * expr
    | Binary of string * expr * expr
    | Call of string * expr list

  type def_body =
    | Map_def of expr
    | Reduce_def of [ `Sum | `Min | `Max ] * expr

  type stmt =
    | Size of { width : int; height : int; channels : int option }
    | Param_decl of string * float
    | Def of { name : string; body : def_body; pos : position }

  type pipeline = {
    name : string;
    inputs : string list;
    stmts : stmt list;
    pos : position;
  }
end
