test/helpers.ml: Alcotest Float Fmt Kfuse_graph Kfuse_image Kfuse_ir Kfuse_util List
