(** Sets of integer identifiers.

    A thin specialization of {!Stdlib.Set} over [int], used throughout the
    code base for vertex sets, partition blocks, and kernel-id sets. *)

include Set.S with type elt = int

(** [of_range lo hi] is the set [{lo, lo+1, ..., hi}]; empty if [hi < lo]. *)
val of_range : int -> int -> t

(** [pp ppf s] prints [s] as [{e1, e2, ...}] in increasing order. *)
val pp : Format.formatter -> t -> unit

(** [to_sorted_list s] is the elements of [s] in increasing order. *)
val to_sorted_list : t -> int list
