examples/dsl_tour.ml: Format Kfuse_codegen Kfuse_dsl Kfuse_fusion Kfuse_image Kfuse_ir Kfuse_util List
