examples/harris_pipeline.ml: Array Format Kfuse_apps Kfuse_fusion Kfuse_ir Kfuse_util List String
