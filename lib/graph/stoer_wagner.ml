module Iset = Kfuse_util.Iset

let min_cut g =
  Kfuse_util.Faults.hit "cut.stoer_wagner";
  let verts = Array.of_list (Iset.elements (Wgraph.vertices g)) in
  let n = Array.length verts in
  if n < 2 then invalid_arg "Stoer_wagner.min_cut: need at least 2 vertices";
  (* Dense symmetric weight matrix over node indices; groups.(i) is the set
     of original vertices currently merged into node i. *)
  let index = Hashtbl.create n in
  Array.iteri (fun i v -> Hashtbl.replace index v i) verts;
  let w = Array.make_matrix n n 0.0 in
  List.iter
    (fun (u, v, wt) ->
      let iu = Hashtbl.find index u and iv = Hashtbl.find index v in
      w.(iu).(iv) <- wt;
      w.(iv).(iu) <- wt)
    (Wgraph.edges g);
  let groups = Array.map Iset.singleton verts in
  let active = Array.make n true in
  let best_weight = ref infinity in
  let best_side = ref Iset.empty in
  let active_indices () =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      if active.(i) then acc := i :: !acc
    done;
    !acc
  in
  let remaining = ref n in
  while !remaining > 1 do
    (* One minimum-cut phase: maximum-adjacency search from the first
       active node; the last two added are merged. *)
    let nodes = active_indices () in
    let in_a = Array.make n false in
    let wsum = Array.make n 0.0 in
    let start = List.hd nodes in
    in_a.(start) <- true;
    List.iter (fun i -> if i <> start then wsum.(i) <- w.(start).(i)) nodes;
    let prev = ref start in
    let last = ref start in
    for _step = 2 to !remaining do
      (* Most tightly connected node not yet in A; ties toward smaller id. *)
      let z = ref (-1) in
      List.iter
        (fun i -> if (not in_a.(i)) && (!z = -1 || wsum.(i) > wsum.(!z)) then z := i)
        nodes;
      let z = !z in
      prev := !last;
      last := z;
      in_a.(z) <- true;
      List.iter (fun i -> if not in_a.(i) then wsum.(i) <- wsum.(i) +. w.(z).(i)) nodes
    done;
    let s = !prev and t = !last in
    let cut_of_phase = wsum.(t) in
    if cut_of_phase < !best_weight then begin
      best_weight := cut_of_phase;
      best_side := groups.(t)
    end;
    (* Merge t into s. *)
    List.iter
      (fun i ->
        if i <> s && i <> t then begin
          w.(s).(i) <- w.(s).(i) +. w.(t).(i);
          w.(i).(s) <- w.(s).(i)
        end)
      nodes;
    groups.(s) <- Iset.union groups.(s) groups.(t);
    active.(t) <- false;
    decr remaining
  done;
  (!best_weight, !best_side)

let min_cut_brute g =
  let verts = Array.of_list (Iset.elements (Wgraph.vertices g)) in
  let n = Array.length verts in
  if n < 2 then invalid_arg "Stoer_wagner.min_cut_brute: need at least 2 vertices";
  if n > 20 then invalid_arg "Stoer_wagner.min_cut_brute: too many vertices";
  (* Fix vertex 0 on the left side so each bipartition is enumerated once. *)
  let best_weight = ref infinity in
  let best_side = ref Iset.empty in
  let limit = 1 lsl (n - 1) in
  for mask = 1 to limit - 1 do
    let side = ref Iset.empty in
    for i = 0 to n - 2 do
      if mask land (1 lsl i) <> 0 then side := Iset.add verts.(i + 1) !side
    done;
    let wcut = Wgraph.cut_weight g !side in
    if wcut < !best_weight then begin
      best_weight := wcut;
      best_side := !side
    end
  done;
  (!best_weight, !best_side)
