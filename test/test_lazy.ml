(* The lazy-fusion frontend and its incremental replanner.

   The load-bearing claim: a flush planned through a session's
   cross-flush memo is BIT-IDENTICAL — partition, recursion trace,
   objective, fused pipeline, plan fingerprint — to planning the same
   pipeline from scratch.  The differential harness drives both
   planners through seeded random edit sequences and asserts equality
   after every flush; directed cases cover the seam-check fallback, the
   edge cases (empty builder, single kernel), rejected edits, and the
   memo actually being exercised (reuse on untouched regions,
   parameter-value changes dirtying nothing). *)

module F = Kfuse_fusion
module Lz = Kfuse_lazy
module Iset = Kfuse_util.Iset
module Rng = Kfuse_util.Rng
module Faults = Kfuse_util.Faults
module Partition = Kfuse_graph.Partition
module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Mask = Kfuse_image.Mask

let config = F.Config.default

let ok what = function
  | Ok v -> v
  | Error d -> Alcotest.failf "%s: %s" what (Format.asprintf "%a" Kfuse_util.Diag.pp d)

let render_steps (p : Pipeline.t) steps =
  List.map (Format.asprintf "%a" (F.Mincut_fusion.pp_step p)) steps

let render_edges edges =
  List.map (Format.asprintf "%a" F.Benefit.pp_report) edges

(* Bit-identical across every observable of the plan. *)
let same_plan ~ctx (a : Lz.Replan.plan) (b : Lz.Replan.plan) =
  Alcotest.(check bool)
    (ctx ^ ": partition") true
    (Partition.equal a.partition b.partition);
  Alcotest.(check (list string))
    (ctx ^ ": steps") (render_steps b.pipeline b.steps)
    (render_steps a.pipeline a.steps);
  Alcotest.(check (list string))
    (ctx ^ ": edges") (render_edges b.edges) (render_edges a.edges);
  Alcotest.(check string)
    (ctx ^ ": objective")
    (Printf.sprintf "%h" b.objective)
    (Printf.sprintf "%h" a.objective);
  Alcotest.(check string) (ctx ^ ": fingerprint") b.fingerprint a.fingerprint

let new_builder ?(inputs = [ "in" ]) ?(params = [ ("gain", 1.25) ]) () =
  Lz.Lazy_pipeline.create ~name:"lazy" ~width:64 ~height:48 ~inputs ~params config

(* ---- the differential harness ---- *)

let test_differential_sequences () =
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      let lp = new_builder () in
      for round = 1 to 6 do
        let edits = Lz.Edits.random_sequence rng lp 5 in
        let ctx = Printf.sprintf "seed %d round %d (%s)" seed round
            (String.concat "; " (List.map Lz.Edits.to_string edits))
        in
        let inc = ok (ctx ^ " flush") (Lz.Lazy_pipeline.flush lp) in
        let scr = ok (ctx ^ " scratch") (Lz.Lazy_pipeline.flush_scratch lp) in
        same_plan ~ctx inc scr;
        Alcotest.(check bool)
          (ctx ^ ": incremental flush never falls back") false inc.stats.fell_back
      done)
    [ 1; 2; 3; 4; 5; 6 ]

(* ---- directed cases ---- *)

let chain ?(prefix = "k") lp ~src n =
  let rec go i src =
    if i > n then ()
    else begin
      let name = Printf.sprintf "%s%d" prefix i in
      let body =
        if i mod 2 = 0 then Expr.conv Mask.gaussian_3x3 src
        else Expr.((input src * const 0.5) + const 1.0)
      in
      ok ("add " ^ name)
        (Lz.Lazy_pipeline.add lp (Kernel.map ~name ~inputs:[ src ] body));
      go (i + 1) name
    end
  in
  go 1 src

let test_reflush_fully_memoized () =
  let lp = new_builder () in
  chain lp ~src:"in" 5;
  let first = ok "flush" (Lz.Lazy_pipeline.flush lp) in
  Alcotest.(check bool) "first flush decides blocks" true
    (first.stats.blocks_replanned > 0);
  let again = ok "reflush" (Lz.Lazy_pipeline.flush lp) in
  same_plan ~ctx:"reflush" again first;
  Alcotest.(check int) "reflush replans nothing" 0 again.stats.blocks_replanned;
  Alcotest.(check bool) "reflush reuses blocks" true (again.stats.blocks_reused > 0)

let test_untouched_component_reused () =
  (* Two disconnected chains; an edit in one must not dirty the other. *)
  let lp = new_builder ~inputs:[ "in"; "in2" ] () in
  chain lp ~prefix:"a" ~src:"in" 4;
  chain lp ~prefix:"b" ~src:"in2" 4;
  let _ = ok "flush" (Lz.Lazy_pipeline.flush lp) in
  ok "edit chain b"
    (Lz.Lazy_pipeline.add lp
       (Kernel.map ~name:"b5" ~inputs:[ "b4" ] (Expr.conv Mask.gaussian_5x5 "b4")));
  let inc = ok "reflush" (Lz.Lazy_pipeline.flush lp) in
  let scr = ok "scratch" (Lz.Lazy_pipeline.flush_scratch lp) in
  same_plan ~ctx:"edit in one component" inc scr;
  Alcotest.(check bool) "untouched chain replayed from memo" true
    (inc.stats.blocks_reused > 0);
  Alcotest.(check bool) "dirty chain replanned" true (inc.stats.blocks_replanned > 0)

let test_param_change_dirties_nothing () =
  let lp = new_builder () in
  chain lp ~src:"in" 4;
  ok "use the param"
    (Lz.Lazy_pipeline.add lp
       (Kernel.map ~name:"scaled" ~inputs:[ "k4" ]
          Expr.((input "k4" * param "gain") + const 0.25)));
  let first = ok "flush" (Lz.Lazy_pipeline.flush lp) in
  ok "param edit" (Lz.Lazy_pipeline.set_param lp "gain" 3.5);
  let second = ok "reflush" (Lz.Lazy_pipeline.flush lp) in
  Alcotest.(check int) "planning is parameter-value independent" 0
    second.stats.blocks_replanned;
  Alcotest.(check bool) "partition unchanged" true
    (Partition.equal first.partition second.partition);
  (* ... but the plan names a different pipeline (new default), so the
     exact-content fingerprint must differ. *)
  Alcotest.(check bool) "plan fingerprint tracks the new default" true
    (first.fingerprint <> second.fingerprint)

let test_empty_and_single () =
  let lp = new_builder () in
  let empty = ok "empty flush" (Lz.Lazy_pipeline.flush lp) in
  Alcotest.(check int) "empty partition" 0 (List.length empty.partition);
  Alcotest.(check int) "empty fused" 0 (Pipeline.num_kernels empty.fused);
  let scr = ok "empty scratch" (Lz.Lazy_pipeline.flush_scratch lp) in
  same_plan ~ctx:"empty" empty scr;
  ok "add one"
    (Lz.Lazy_pipeline.add lp
       (Kernel.map ~name:"only" ~inputs:[ "in" ] (Expr.conv Mask.gaussian_3x3 "in")));
  let one = ok "single flush" (Lz.Lazy_pipeline.flush lp) in
  Alcotest.(check bool) "singleton partition" true
    (Partition.equal one.partition [ Iset.singleton 0 ]);
  same_plan ~ctx:"single" one (ok "single scratch" (Lz.Lazy_pipeline.flush_scratch lp))

let test_rejected_edits_leave_state () =
  let lp = new_builder () in
  chain lp ~src:"in" 3;
  let gen = Lz.Lazy_pipeline.generation lp in
  let reject what = function
    | Ok () -> Alcotest.failf "%s: unexpectedly accepted" what
    | Error (_ : Kfuse_util.Diag.t) -> ()
  in
  (* k1 is consumed by k2: deleting it would dangle *)
  reject "delete consumed" (Lz.Lazy_pipeline.remove lp "k1");
  reject "delete unknown" (Lz.Lazy_pipeline.remove lp "nope");
  (* retargeting k1 to read k3 closes a cycle *)
  reject "cycle retarget" (Lz.Lazy_pipeline.retarget lp ~kernel:"k1" ~from_:"in" ~to_:"k3");
  reject "retarget unknown read"
    (Lz.Lazy_pipeline.retarget lp ~kernel:"k2" ~from_:"in" ~to_:"k1");
  reject "dangling retarget"
    (Lz.Lazy_pipeline.retarget lp ~kernel:"k1" ~from_:"in" ~to_:"ghost");
  reject "duplicate kernel"
    (Lz.Lazy_pipeline.add lp
       (Kernel.map ~name:"k2" ~inputs:[ "in" ] (Expr.input "in")));
  reject "duplicate input" (Lz.Lazy_pipeline.add_input lp "in");
  Alcotest.(check int) "builder unchanged" gen (Lz.Lazy_pipeline.generation lp);
  (* and the state still flushes identically to scratch *)
  same_plan ~ctx:"after rejections"
    (ok "flush" (Lz.Lazy_pipeline.flush lp))
    (ok "scratch" (Lz.Lazy_pipeline.flush_scratch lp))

let test_seam_fault_falls_back () =
  let lp = new_builder () in
  chain lp ~src:"in" 5;
  let _ = ok "warm flush" (Lz.Lazy_pipeline.flush lp) in
  let degraded =
    Faults.with_spec (Lz.Replan.seam_fault ^ "@1") (fun () ->
        ok "faulted flush" (Lz.Lazy_pipeline.flush lp))
  in
  Alcotest.(check bool) "fell back to scratch" true degraded.stats.fell_back;
  Alcotest.(check int) "memo was discarded first" 0 degraded.stats.blocks_reused;
  (* the degraded plan is still the right plan *)
  same_plan ~ctx:"seam fallback" degraded
    (ok "scratch" (Lz.Lazy_pipeline.flush_scratch lp));
  (* and the fallback repopulated the memo: the next flush is clean *)
  let after = ok "flush after fallback" (Lz.Lazy_pipeline.flush lp) in
  Alcotest.(check bool) "recovered" false after.stats.fell_back;
  Alcotest.(check int) "memo repopulated" 0 after.stats.blocks_replanned

let test_seam_legality_edit () =
  (* Directed seam case: a fused chain gains a second consumer of an
     interior kernel (fig. 2c external-output shape) — the dirtied
     region must replan and still match scratch. *)
  let lp = new_builder () in
  chain lp ~src:"in" 4;
  let first = ok "flush" (Lz.Lazy_pipeline.flush lp) in
  ok "tap an interior kernel"
    (Lz.Lazy_pipeline.add lp
       (Kernel.map ~name:"tap" ~inputs:[ "k2" ] (Expr.conv Mask.gaussian_3x3 "k2")));
  let inc = ok "reflush" (Lz.Lazy_pipeline.flush lp) in
  same_plan ~ctx:"external-output edit" inc
    (ok "scratch" (Lz.Lazy_pipeline.flush_scratch lp));
  Alcotest.(check bool) "partition actually changed" false
    (Partition.equal first.partition inc.partition
    && first.pipeline.Pipeline.kernels == inc.pipeline.Pipeline.kernels)

let test_retarget_differential () =
  let lp = new_builder ~inputs:[ "in"; "in2" ] () in
  chain lp ~prefix:"a" ~src:"in" 3;
  chain lp ~prefix:"b" ~src:"in2" 3;
  let _ = ok "flush" (Lz.Lazy_pipeline.flush lp) in
  ok "cross-link the chains"
    (Lz.Lazy_pipeline.retarget lp ~kernel:"b1" ~from_:"in2" ~to_:"a3");
  let inc = ok "reflush" (Lz.Lazy_pipeline.flush lp) in
  same_plan ~ctx:"retarget" inc (ok "scratch" (Lz.Lazy_pipeline.flush_scratch lp));
  ok "revert" (Lz.Lazy_pipeline.retarget lp ~kernel:"b1" ~from_:"a3" ~to_:"in2");
  let reverted = ok "reverted flush" (Lz.Lazy_pipeline.flush lp) in
  Alcotest.(check int) "revert replays everything from memo" 0
    reverted.stats.blocks_replanned

let test_of_pipeline_roundtrip () =
  let p =
    Pipeline.create ~name:"seeded" ~width:32 ~height:32 ~inputs:[ "img" ]
      [
        Kernel.map ~name:"blur" ~inputs:[ "img" ] (Expr.conv Mask.gaussian_3x3 "img");
        Kernel.map ~name:"gain" ~inputs:[ "blur" ] Expr.(input "blur" * const 2.0);
      ]
  in
  let lp = Lz.Lazy_pipeline.of_pipeline config p in
  let plan = ok "flush" (Lz.Lazy_pipeline.flush lp) in
  let direct = ok "scratch" (Lz.Replan.scratch config p) in
  same_plan ~ctx:"of_pipeline" plan direct;
  Alcotest.(check (option string)) "last" (Some plan.fingerprint)
    (Option.map (fun (pl : Lz.Replan.plan) -> pl.Lz.Replan.fingerprint)
       (Lz.Lazy_pipeline.last lp))

let suite =
  [
    Alcotest.test_case "differential: seeded edit sequences" `Slow
      test_differential_sequences;
    Alcotest.test_case "reflush is fully memoized" `Quick test_reflush_fully_memoized;
    Alcotest.test_case "untouched component reused" `Quick
      test_untouched_component_reused;
    Alcotest.test_case "param change dirties nothing" `Quick
      test_param_change_dirties_nothing;
    Alcotest.test_case "empty and single-kernel flush" `Quick test_empty_and_single;
    Alcotest.test_case "rejected edits leave the builder" `Quick
      test_rejected_edits_leave_state;
    Alcotest.test_case "seam fault falls back to scratch" `Quick
      test_seam_fault_falls_back;
    Alcotest.test_case "external-output edit replans the seam" `Quick
      test_seam_legality_edit;
    Alcotest.test_case "retarget differential and revert" `Quick
      test_retarget_differential;
    Alcotest.test_case "of_pipeline roundtrip" `Quick test_of_pipeline_roundtrip;
  ]
