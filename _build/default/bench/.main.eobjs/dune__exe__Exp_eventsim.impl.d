bench/exp_eventsim.ml: Kfuse_apps Kfuse_fusion Kfuse_gpu Kfuse_ir List Printf Runner
