test/test_ir.ml: Alcotest Array Helpers Kfuse_fusion Kfuse_image Kfuse_ir Kfuse_util List Stdlib String
