lib/ir/conv_match.mli: Expr Kfuse_image
