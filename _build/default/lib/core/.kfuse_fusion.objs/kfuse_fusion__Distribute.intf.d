lib/core/distribute.mli: Kfuse_ir
