(* Property tests for the pipeline validator: start from a well-formed
   random pipeline description, corrupt it in a known way (inject a
   cycle, a dangling reference, a duplicate id, a zero-sized iteration
   space), and assert [Validate.check] flags exactly that class of
   defect and [Validate.build] returns [Error] without raising.  A final
   property drives every fusion strategy over valid pipelines with
   faults armed and checks the non-strict driver never crashes and its
   partition stays valid. *)

module Diag = Kfuse_util.Diag
module Faults = Kfuse_util.Faults
module Ir = Kfuse_ir
module Validate = Kfuse_ir.Validate
module Kernel = Kfuse_ir.Kernel
module Expr = Kfuse_ir.Expr
module F = Kfuse_fusion
module Partition = Kfuse_graph.Partition

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* A well-formed random chain-with-skips description: kernel [ki] reads
   the input or any earlier kernel, via a point access or a small
   stencil. *)
let input_gen : Validate.input QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* n = int_range 1 8 in
  let* picks = list_repeat n (pair (int_range 0 8) (int_range 0 2)) in
  let kernels =
    List.mapi
      (fun i (pick, kind) ->
        let producer = if i = 0 then "in" else Printf.sprintf "k%d" (pick mod i) in
        let name = Printf.sprintf "k%d" i in
        match kind with
        | 0 -> Kernel.map ~name ~inputs:[ producer ] (Expr.input producer)
        | 1 ->
          Kernel.map ~name ~inputs:[ producer ]
            (Expr.conv Kfuse_image.Mask.gaussian_3x3 producer)
        | _ ->
          Kernel.map ~name ~inputs:[ producer ]
            Expr.(Binop (Add, input producer, Param "gain")))
      picks
  in
  let+ wh = pair (int_range 8 64) (int_range 8 64) in
  {
    Validate.name = "prop";
    width = fst wh;
    height = snd wh;
    channels = 1;
    inputs = [ "in" ];
    params = [ ("gain", 1.5) ];
    kernels;
  }

let has_code c diags = List.exists (fun d -> d.Diag.code = c) diags

let build_never_raises input =
  match Validate.build input with
  | Ok _ | Error _ -> true
  | exception e -> QCheck2.Test.fail_reportf "build raised %s" (Printexc.to_string e)

let prop_valid_inputs_pass =
  qtest "well-formed descriptions validate and build" input_gen (fun input ->
      let diags = Validate.check input in
      if List.exists Diag.is_error diags then
        QCheck2.Test.fail_reportf "unexpected errors: %s"
          (String.concat "; " (List.map Diag.to_string diags));
      match Validate.build input with
      | Ok p -> Ir.Pipeline.num_kernels p = List.length input.Validate.kernels
      | Error d -> QCheck2.Test.fail_reportf "build failed: %s" (Diag.to_string d))

let prop_cycle_flagged =
  (* Rewrite the first kernel to read the last one: with the last kernel
     (transitively) reading the first, that closes a dependence cycle. *)
  qtest "injected cycles are flagged"
    QCheck2.Gen.(int_range 2 8)
    (fun n ->
      let kernels =
        List.init n (fun i ->
            let producer = if i = 0 then Printf.sprintf "k%d" (n - 1) else Printf.sprintf "k%d" (i - 1) in
            Kernel.map ~name:(Printf.sprintf "k%d" i) ~inputs:[ producer ]
              (Expr.input producer))
      in
      let input =
        {
          Validate.name = "cyclic";
          width = 16;
          height = 16;
          channels = 1;
          inputs = [ "in" ];
          params = [];
          kernels;
        }
      in
      has_code Diag.Cycle (Validate.check input) && build_never_raises input
      && Result.is_error (Validate.build input))

let prop_dangling_flagged =
  qtest "dangling references are flagged" input_gen (fun input ->
      let ghost = "nowhere" in
      let kernels =
        input.Validate.kernels
        @ [ Kernel.map ~name:"dangler" ~inputs:[ ghost ] (Expr.input ghost) ]
      in
      let input = { input with Validate.kernels } in
      has_code Diag.Dangling_ref (Validate.check input)
      && build_never_raises input
      && Result.is_error (Validate.build input))

let prop_duplicate_flagged =
  qtest "duplicate ids are flagged" input_gen (fun input ->
      let dup =
        match input.Validate.kernels with
        | k :: _ -> k.Kernel.name
        | [] -> assert false
      in
      let kernels =
        input.Validate.kernels @ [ Kernel.map ~name:dup ~inputs:[ "in" ] (Expr.input "in") ]
      in
      let input = { input with Validate.kernels } in
      has_code Diag.Duplicate_name (Validate.check input)
      && build_never_raises input
      && Result.is_error (Validate.build input))

let prop_empty_space_flagged =
  qtest "zero-sized iteration spaces are flagged"
    QCheck2.Gen.(pair input_gen (int_range 0 2))
    (fun (input, which) ->
      let input =
        match which with
        | 0 -> { input with Validate.width = 0 }
        | 1 -> { input with Validate.height = -3 }
        | _ -> { input with Validate.channels = 0 }
      in
      has_code Diag.Empty_iteration_space (Validate.check input)
      && build_never_raises input
      && Result.is_error (Validate.build input))

let prop_oversized_mask_flagged =
  qtest "masks larger than the space are flagged"
    QCheck2.Gen.(int_range 1 2)
    (fun w ->
      let input =
        {
          Validate.name = "tiny";
          width = w;
          height = w;
          channels = 1;
          inputs = [ "in" ];
          params = [];
          kernels =
            [ Kernel.map ~name:"blur" ~inputs:[ "in" ] (Expr.conv Kfuse_image.Mask.gaussian_3x3 "in") ];
        }
      in
      has_code Diag.Mask_too_large (Validate.check input) && build_never_raises input)

let prop_unbound_param_flagged =
  qtest "unbound parameters are flagged" input_gen (fun input ->
      let input = { input with Validate.params = [] } in
      let uses_param =
        List.exists
          (fun k ->
            match k.Kernel.op with
            | Kernel.Map e | Kernel.Reduce { arg = e; _ } ->
              Expr.params e <> [])
          input.Validate.kernels
      in
      QCheck2.assume uses_param;
      has_code Diag.Unbound_param (Validate.check input)
      && build_never_raises input
      && Result.is_error (Validate.build input))

(* ---- the driver never crashes on valid pipelines, faults or not ---- *)

let strategy_gen =
  QCheck2.Gen.oneofl
    [ F.Driver.Baseline; F.Driver.Basic; F.Driver.Greedy; F.Driver.Mincut ]

let fault_gen =
  QCheck2.Gen.oneofl
    [
      None;
      Some "cut.stoer_wagner@1";
      Some "cut.karger@1";
      Some "driver.strategy@1";
      Some "cut.stoer_wagner~0.5:77";
    ]

let prop_driver_never_crashes =
  qtest ~count:60 "non-strict driver survives faults with a valid partition"
    QCheck2.Gen.(triple input_gen strategy_gen fault_gen)
    (fun (input, strategy, fault) ->
      match Validate.build input with
      | Error d -> QCheck2.Test.fail_reportf "generator broken: %s" (Diag.to_string d)
      | Ok p ->
        let run () =
          match F.Driver.run_result F.Config.default strategy p with
          | Error d ->
            QCheck2.Test.fail_reportf "non-strict driver failed: %s" (Diag.to_string d)
          | Ok r ->
            (match Partition.validate (Ir.Pipeline.dag p) r.F.Driver.partition with
            | Ok () -> ()
            | Error why ->
              QCheck2.Test.fail_reportf "invalid partition: %s"
                (Partition.invalid_to_string why));
            (* Degradation implies warnings and vice versa. *)
            r.F.Driver.degraded = (r.F.Driver.warnings <> [])
        in
        (match fault with
        | None -> run ()
        | Some spec -> Faults.with_spec spec run)
        && (* the registry is clean again for the next case *)
        not (Faults.active ()))

let suite =
  [
    prop_valid_inputs_pass;
    prop_cycle_flagged;
    prop_dangling_flagged;
    prop_duplicate_flagged;
    prop_empty_space_flagged;
    prop_oversized_mask_flagged;
    prop_unbound_param_flagged;
    prop_driver_never_crashes;
  ]
