type t = {
  active_blocks : int;
  active_threads : int;
  occupancy : float;
  limiter : [ `Shared_memory | `Thread_count | `Block_count ];
}

let compute (d : Device.t) ~shared_bytes_per_block ~regs_per_thread ~threads_per_block =
  if threads_per_block <= 0 then invalid_arg "Occupancy.compute: no threads";
  if shared_bytes_per_block > d.shared_mem_per_sm then
    invalid_arg "Occupancy.compute: block exceeds SM shared memory";
  let shared_limit =
    if shared_bytes_per_block = 0 then max_int else d.shared_mem_per_sm / shared_bytes_per_block
  in
  let thread_limit = d.max_threads_per_sm / threads_per_block in
  let reg_limit =
    if regs_per_thread = 0 then max_int
    else d.registers_per_block / (regs_per_thread * threads_per_block)
  in
  let block_limit = d.max_blocks_per_sm in
  let active_blocks =
    List.fold_left min max_int [ shared_limit; thread_limit; reg_limit; block_limit ]
  in
  let active_blocks = max 0 active_blocks in
  let limiter =
    if active_blocks = shared_limit then `Shared_memory
    else if active_blocks = thread_limit || active_blocks = reg_limit then `Thread_count
    else `Block_count
  in
  let active_threads = active_blocks * threads_per_block in
  {
    active_blocks;
    active_threads;
    occupancy = float_of_int active_threads /. float_of_int d.max_threads_per_sm;
    limiter;
  }

let latency_hiding_factor occ =
  let knee = 0.5 in
  if occ >= knee then 1.0 else Float.max 0.05 (occ /. knee)
