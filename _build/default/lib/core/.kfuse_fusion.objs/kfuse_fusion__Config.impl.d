lib/core/config.ml: Kfuse_ir
