(** Temporally smoothed Harris corner detector.

    Harris over a three-frame sliding window: the current frame is
    averaged with the two previous frames (temporal inputs ["prev"] and
    ["prev2"]) before the usual nine-kernel Harris chain runs on the
    smoothed image. The average suppresses per-frame sensor noise that
    would otherwise flicker corners in and out between frames. *)

module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Mask = Kfuse_image.Mask
module Border = Kfuse_image.Border

let default_width = 2048
let default_height = 2048

(** [pipeline ?width ?height ()] is the temporal Harris pipeline:
    inputs [frame] (current), [prev] and [prev2] (one and two frames
    back), parameter [k] as in plain Harris. *)
let pipeline ?(width = default_width) ?(height = default_height) () =
  let border = Border.Clamp in
  let open Expr in
  let avg =
    Kernel.map ~name:"avg" ~inputs:[ "frame"; "prev"; "prev2" ]
      (const (1. /. 3.) * (input "frame" + input "prev" + input "prev2"))
  in
  let dx = Kernel.map ~name:"dx" ~inputs:[ "avg" ] (conv ~border Mask.sobel_x "avg") in
  let dy = Kernel.map ~name:"dy" ~inputs:[ "avg" ] (conv ~border Mask.sobel_y "avg") in
  let sx = Kernel.map ~name:"sx" ~inputs:[ "dx" ] (input "dx" * input "dx") in
  let sy = Kernel.map ~name:"sy" ~inputs:[ "dy" ] (input "dy" * input "dy") in
  let sxy = Kernel.map ~name:"sxy" ~inputs:[ "dx"; "dy" ] (input "dx" * input "dy") in
  let gx = Kernel.map ~name:"gx" ~inputs:[ "sx" ] (conv ~border Mask.gaussian_3x3 "sx") in
  let gy = Kernel.map ~name:"gy" ~inputs:[ "sy" ] (conv ~border Mask.gaussian_3x3 "sy") in
  let gxy =
    Kernel.map ~name:"gxy" ~inputs:[ "sxy" ] (conv ~border Mask.gaussian_3x3 "sxy")
  in
  let hc =
    let det = (input "gx" * input "gy") - (input "gxy" * input "gxy") in
    let trace = input "gx" + input "gy" in
    Kernel.map ~name:"hc" ~inputs:[ "gx"; "gy"; "gxy" ]
      (det - (param "k" * trace * trace))
  in
  Pipeline.create ~name:"tharris" ~width ~height ~params:[ ("k", 0.04) ]
    ~inputs:[ "frame"; "prev"; "prev2" ]
    [ avg; dx; dy; sx; sy; sxy; gx; gy; gxy; hc ]
