(** The lazy-pipeline command grammar — one textual surface shared by
    the [kfusec repl] frontend and the [kfused] [lazy_edit] wire op, so
    a repl session against a live daemon is a byte-for-byte pass-through
    of the same commands it would run locally.

    Grammar (one command per line, [#] starts a comment):
    {v
    add <name> = <expr>              append a kernel (full DSL expression syntax)
    del <name>                       delete an unconsumed kernel
    retarget <kernel> <from> <to>    rewrite <kernel>'s reads of <from> to <to>
    param <name> <value>             add or update a scalar parameter default
    input <name>                     declare an external input image
    flush [scratch]                  (re)plan; 'scratch' bypasses the memos
    plan | show | help | quit
    v}

    [add] expressions are elaborated against the builder's current
    state: every readable image and declared parameter is in scope, and
    the full DSL expression grammar (arithmetic, [conv] with named
    masks, shifted reads, [let], reductions) applies. *)

type t =
  | Edit of Edits.edit
  | Add_input of string
  | Flush of { scratch : bool }
  | Plan
  | Show
  | Help
  | Quit

val help : string
(** The grammar summary printed by the [help] command. *)

val parse : Lazy_pipeline.t -> string -> (t, Kfuse_util.Diag.t) result
(** Parse one command line in the context of [lp] (an [add] expression
    is elaborated against its images and params — but {b not} applied).
    Parse failures are [Parse_error], elaboration failures
    [Elab_error]/[Duplicate_name]/... diags. *)

val apply : Lazy_pipeline.t -> t -> (string, Kfuse_util.Diag.t) result
(** Apply an edit-like command ([Edit]/[Add_input]) to the builder,
    returning a one-line description of what was applied.  Control
    commands ([Flush]/[Plan]/[Show]/[Help]/[Quit]) are rejected with a
    [Protocol_error] — they are the caller's to interpret. *)

val label : t -> string
