module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline

type kernel_result = {
  kernel_name : string;
  blocks : int;
  t_ms : float;
  drain_events : int;
}

type result = { total_ms : float; kernels : kernel_result list }

(* Extra compute paid by blocks whose pixels include the halo region:
   border-handling index arithmetic and exchange remapping. *)
let border_compute_penalty = 0.25

type block_state = {
  sm : int;
  mutable rem_ops : float;  (** ALU-equivalent issue slots *)
  mutable rem_bytes : float;
}

let eps = 1e-12

(* Fluid simulation of one kernel launch: returns (seconds, drain events). *)
let simulate_kernel (d : Device.t) ~resident_per_sm ~ops_rate ~mem_rate ~block_work =
  let nblocks = Array.length block_work in
  let sm_count = d.Device.sm_count in
  let sm_ops_rate = ops_rate /. float_of_int sm_count in
  let active : block_state list ref = ref [] in
  let sm_load = Array.make sm_count 0 in
  let next = ref 0 in
  let time = ref 0.0 in
  let events = ref 0 in
  let fill () =
    (* Round-robin blocks onto the least-loaded SM with a free slot. *)
    let continue = ref true in
    while !continue && !next < nblocks do
      let best_sm = ref (-1) in
      for sm = sm_count - 1 downto 0 do
        if sm_load.(sm) < resident_per_sm
           && (!best_sm = -1 || sm_load.(sm) <= sm_load.(!best_sm))
        then best_sm := sm
      done;
      if !best_sm = -1 then continue := false
      else begin
        let ops, bytes = block_work.(!next) in
        active := { sm = !best_sm; rem_ops = ops; rem_bytes = bytes } :: !active;
        sm_load.(!best_sm) <- sm_load.(!best_sm) + 1;
        incr next
      end
    done
  in
  fill ();
  while !active <> [] do
    (* Current sharing rates. *)
    let mem_users = List.length (List.filter (fun b -> b.rem_bytes > eps) !active) in
    let sm_ops_users = Array.make sm_count 0 in
    List.iter
      (fun b -> if b.rem_ops > eps then sm_ops_users.(b.sm) <- sm_ops_users.(b.sm) + 1)
      !active;
    let mem_rate_per_block =
      if mem_users = 0 then 0.0 else mem_rate /. float_of_int mem_users
    in
    let ops_rate_of b =
      if sm_ops_users.(b.sm) = 0 then 0.0
      else sm_ops_rate /. float_of_int sm_ops_users.(b.sm)
    in
    (* Earliest resource drain. *)
    let dt =
      List.fold_left
        (fun acc b ->
          let acc =
            if b.rem_ops > eps then
              let r = ops_rate_of b in
              if r > 0.0 then Float.min acc (b.rem_ops /. r) else acc
            else acc
          in
          if b.rem_bytes > eps && mem_rate_per_block > 0.0 then
            Float.min acc (b.rem_bytes /. mem_rate_per_block)
          else acc)
        Float.infinity !active
    in
    let dt = if Float.is_finite dt then dt else 0.0 in
    time := !time +. dt;
    incr events;
    List.iter
      (fun b ->
        if b.rem_ops > eps then
          b.rem_ops <- Float.max 0.0 (b.rem_ops -. (ops_rate_of b *. dt));
        if b.rem_bytes > eps then
          b.rem_bytes <- Float.max 0.0 (b.rem_bytes -. (mem_rate_per_block *. dt)))
      !active;
    let finished, still =
      List.partition (fun b -> b.rem_ops <= eps && b.rem_bytes <= eps) !active
    in
    List.iter (fun b -> sm_load.(b.sm) <- sm_load.(b.sm) - 1) finished;
    active := still;
    fill ()
  done;
  (!time, !events)

let run ?(params = Perf_model.default_params) (d : Device.t) ~quality ~fused_kernels
    (p : Pipeline.t) =
  let block = { Kfuse_ir.Cost.bx = 32; by = params.Perf_model.threads_per_block / 32 } in
  let kernels =
    Array.to_list p.Pipeline.kernels
    |> List.map (fun (k : Kernel.t) ->
           let fused = List.mem k.Kernel.name fused_kernels in
           let kt = Perf_model.kernel_time ~params d ~quality ~fused p k in
           (* Effective rates, derived from the roofline components so the
              two models share their calibration. *)
           let px = float_of_int (Pipeline.is_pixels p) in
           let bytes_total = px *. kt.Perf_model.global_accesses_per_px *. 4.0 in
           let ops_total = px *. kt.Perf_model.ops_per_px in
           let mem_rate = bytes_total /. (kt.Perf_model.t_mem_ms /. 1e3) in
           let ops_rate = ops_total /. (kt.Perf_model.t_comp_ms /. 1e3) in
           let blocks_x = (p.Pipeline.width + block.bx - 1) / block.bx in
           let blocks_y = (p.Pipeline.height + block.by - 1) / block.by in
           let nblocks = blocks_x * blocks_y * p.Pipeline.channels in
           let px_block = px /. float_of_int nblocks in
           let ops_block = kt.Perf_model.ops_per_px *. px_block in
           let bytes_block = kt.Perf_model.global_accesses_per_px *. 4.0 *. px_block in
           (* Border blocks pay halo handling when the kernel is local. *)
           let radius = Kernel.radius k in
           let interior_x = max 0 (blocks_x - 2) and interior_y = max 0 (blocks_y - 2) in
           let border_blocks_per_plane =
             if radius = 0 then 0 else (blocks_x * blocks_y) - (interior_x * interior_y)
           in
           let block_work =
             Array.init nblocks (fun i ->
                 let in_plane = i mod (blocks_x * blocks_y) in
                 let is_border = radius > 0 && in_plane < border_blocks_per_plane in
                 let ops =
                   if is_border then ops_block *. (1.0 +. border_compute_penalty)
                   else ops_block
                 in
                 (ops, bytes_block))
           in
           let occ =
             Occupancy.compute d ~shared_bytes_per_block:kt.Perf_model.shared_bytes
               ~regs_per_thread:
                 (max params.Perf_model.regs_per_thread (Kfuse_ir.Cost.kernel_registers k))
               ~threads_per_block:params.Perf_model.threads_per_block
           in
           let seconds, drain_events =
             simulate_kernel d ~resident_per_sm:(max 1 occ.Occupancy.active_blocks)
               ~ops_rate ~mem_rate ~block_work
           in
           {
             kernel_name = k.Kernel.name;
             blocks = nblocks;
             t_ms = (seconds *. 1e3) +. params.Perf_model.launch_overhead_ms;
             drain_events;
           })
  in
  let total_ms = List.fold_left (fun acc kr -> acc +. kr.t_ms) 0.0 kernels in
  { total_ms; kernels }
