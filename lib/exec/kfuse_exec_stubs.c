/* Loader stubs for the native execution backend.
 *
 * The generated C for every pipeline is wrapped behind one fixed entry
 * point (ABI v2):
 *
 *   void kfuse_entry(const double** ins, double** outs, const double* params);
 *
 * so a single dlopen/dlsym/call stub covers every pipeline shape — no
 * ctypes/libffi dependency, no per-signature code.  The OCaml side
 * passes `float array` values, which are already packed 64-bit doubles,
 * so marshalling copies bits without rounding: the interpreter and the
 * compiled plan see identical inputs.
 *
 * No OCaml allocation happens between reading the arrays and writing
 * the results, so raw Field/Double_field access is GC-safe; the entry
 * call itself runs in a blocking section so other runtime threads (the
 * kfused worker pool) keep making progress during a long kernel.
 */

#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <caml/signals.h>

#include <dlfcn.h>
#include <stdlib.h>
#include <string.h>

typedef void (*kfuse_entry_fn)(const double **, double **, const double *);

value kfuse_dl_open(value vpath)
{
  CAMLparam1(vpath);
  void *h = dlopen(String_val(vpath), RTLD_NOW | RTLD_LOCAL);
  if (h == NULL) {
    const char *err = dlerror();
    caml_failwith(err ? err : "dlopen failed");
  }
  CAMLreturn(caml_copy_nativeint((intnat)h));
}

value kfuse_dl_sym(value vhandle, value vname)
{
  CAMLparam2(vhandle, vname);
  void *h = (void *)Nativeint_val(vhandle);
  /* Clear any stale error so a NULL result is unambiguous. */
  (void)dlerror();
  void *sym = dlsym(h, String_val(vname));
  if (sym == NULL) {
    const char *err = dlerror();
    caml_failwith(err ? err : "dlsym: symbol not found");
  }
  CAMLreturn(caml_copy_nativeint((intnat)sym));
}

value kfuse_dl_close(value vhandle)
{
  CAMLparam1(vhandle);
  dlclose((void *)Nativeint_val(vhandle));
  CAMLreturn(Val_unit);
}

static mlsize_t float_array_length(value v)
{
  return Wosize_val(v) / Double_wosize;
}

/* Free a NULL-terminated-by-count set of buffers. */
static void free_all(double **bufs, mlsize_t n)
{
  if (bufs == NULL) return;
  for (mlsize_t i = 0; i < n; i++) free(bufs[i]);
  free(bufs);
}

value kfuse_dl_call(value vfn, value vins, value vouts, value vparams)
{
  CAMLparam4(vfn, vins, vouts, vparams);
  kfuse_entry_fn fn = (kfuse_entry_fn)Nativeint_val(vfn);
  mlsize_t nin = Wosize_val(vins);
  mlsize_t nout = Wosize_val(vouts);
  mlsize_t npar = float_array_length(vparams);

  double **ins = calloc(nin ? nin : 1, sizeof(double *));
  double **outs = calloc(nout ? nout : 1, sizeof(double *));
  double *par = malloc((npar ? npar : 1) * sizeof(double));
  int oom = (ins == NULL || outs == NULL || par == NULL);

  for (mlsize_t i = 0; !oom && i < nin; i++) {
    value a = Field(vins, i);
    mlsize_t len = float_array_length(a);
    ins[i] = malloc((len ? len : 1) * sizeof(double));
    if (ins[i] == NULL) { oom = 1; break; }
    for (mlsize_t j = 0; j < len; j++)
      ins[i][j] = Double_field(a, j);
  }
  for (mlsize_t i = 0; !oom && i < nout; i++) {
    mlsize_t len = float_array_length(Field(vouts, i));
    outs[i] = calloc(len ? len : 1, sizeof(double));
    if (outs[i] == NULL) oom = 1;
  }
  if (oom) {
    free_all(ins, nin);
    free_all(outs, nout);
    free(par);
    caml_failwith("kfuse_dl_call: out of memory marshalling buffers");
  }
  for (mlsize_t j = 0; j < npar; j++)
    par[j] = Double_field(vparams, j);

  caml_enter_blocking_section();
  fn((const double **)ins, outs, par);
  caml_leave_blocking_section();

  for (mlsize_t i = 0; i < nout; i++) {
    value a = Field(vouts, i);
    mlsize_t len = float_array_length(a);
    for (mlsize_t j = 0; j < len; j++)
      Store_double_field(a, j, outs[i][j]);
  }

  free_all(ins, nin);
  free_all(outs, nout);
  free(par);
  CAMLreturn(Val_unit);
}
