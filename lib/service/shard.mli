(** One supervised shard of the sharded [kfused] topology.

    A shard is a full {!Server} in its own process, serving
    [<dir>/shard-<i>.sock] and sharing the content-addressed disk plan
    cache with its siblings (the atomic temp-file-plus-rename store
    makes concurrent writers safe).  This module is the per-shard
    supervision state machine — PR 7's circuit-breaker idea lifted from
    plan fingerprints to server processes:

    - a crashed shard is respawned with exponential backoff
      ([restart_backoff_ms] doubling per rapid failure, capped);
    - a {e restart storm} — [storm_threshold] consecutive failures each
      dying within [storm_window_ms] of its spawn — marks the shard
      {!Dead}: its keyspace is rerouted to neighbors until a half-open
      respawn probe after [dead_cooldown_ms] survives;
    - a shard that is alive as a process but silent as a server
      ([max_ping_misses] consecutive missed pings) is killed and takes
      the normal crash path.

    All mutation happens on the router's monitor thread via {!tick};
    routing threads only read ({!routable}, {!state}), which is safe —
    a stale read costs at most one failed connect and a failover. *)

module Diag := Kfuse_util.Diag

(** {1 Fleet layout} *)

val socket_path : dir:string -> int -> string
(** [<dir>/shard-<i>.sock]. *)

val log_path : dir:string -> int -> string
(** [<dir>/shard-<i>.log] — the shard's stdout+stderr, appended across
    restarts. *)

val sweep_sockets : dir:string -> count:int -> (unit, Diag.t) result
(** Reclaim every shard socket a [count]-shard fleet will use, plus any
    [shard-<j>.sock] leftover from a previously larger fleet in the same
    [dir]: stale files (no listener) are unlinked via
    {!Server.claim_socket}, a live listener is a typed refusal — so a
    crashed fleet restarts cleanly and two fleets never share a
    directory. *)

(** {1 Supervision policy} *)

type config = {
  storm_threshold : int;  (** consecutive rapid failures that mark a shard dead *)
  storm_window_ms : float;  (** a death within this of its spawn is "rapid" *)
  restart_backoff_ms : float;  (** base respawn delay; doubles per rapid failure *)
  max_restart_backoff_ms : float;  (** backoff cap *)
  dead_cooldown_ms : float;  (** dead → half-open respawn probe; <= 0 disables *)
  max_ping_misses : int;  (** consecutive missed pings before a hung shard is killed *)
}

val default_config : config
(** 5 rapid failures within 2 s windows → dead; 100 ms backoff doubling
    to 5 s; 10 s dead cooldown; 4 missed pings kill a hung shard. *)

(** {1 One shard slot} *)

type state =
  | Starting  (** spawned, not yet answering pings *)
  | Up
  | Backoff of { until : float }  (** crashed; respawn at [until] (Unix time) *)
  | Dead of { since : float }  (** restart storm tripped the breaker *)

type t

(** What a {!tick} observed, in order.  The router folds these into its
    metrics ([shard_restarts], [shard_exits], ...). *)
type event =
  | Respawned  (** a replacement process was spawned (not the first spawn) *)
  | Exited of string  (** the process died; payload describes the status *)
  | Killed_hung  (** ping deadline exceeded repeatedly; SIGKILL sent *)
  | Marked_dead  (** the restart storm breaker tripped *)

val create : index:int -> socket:string -> log:string -> argv:string list -> t
(** A slot in state [Backoff {until = 0}]: the first {!tick} spawns. *)

val tick : config -> t -> now:float -> ?ping:(string -> bool) -> unit -> event list
(** One supervision step: reap a death (non-blocking), decide
    backoff/storm, respawn when due, and — when [ping] is given — run
    the health check, promoting [Starting] to [Up] on success and
    killing the process after [max_ping_misses] consecutive misses.
    [ping socket] must be bounded (the router passes {!Health.alive}
    with its health timeout). *)

val stop : ?grace_ms:float -> t -> unit
(** Drain: SIGTERM, [grace_ms] (default 2000) to exit cleanly, SIGKILL
    past it.  The slot is left [Dead] so a concurrent reader never
    routes to it again. *)

val index : t -> int
val socket : t -> string
val state : t -> state
val state_string : t -> string
val routable : t -> bool
(** [Starting] or [Up]: the process is believed alive.  The forwarder
    treats a refused connect as "try the next shard", so optimistically
    routing to a [Starting] shard costs one failed connect at worst. *)

val pid : t -> int option
val restarts : t -> int
(** Respawns so far (the first spawn is not a restart). *)

val consecutive_failures : t -> int
val last_exit : t -> string option
