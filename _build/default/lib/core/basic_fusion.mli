(** Basic kernel fusion — the prior-work baseline (Qiao et al., SCOPES
    2018, reference [12] of the paper).

    The basic technique fuses pairwise along producer/consumer edges and
    only for the point-related scenarios (point-to-point, local-to-point,
    point-to-local).  It precludes kernels "as long as any constraint is
    met" (Section III-C): shared inputs (Figure 2b), local-to-local
    pairs, and any external dependence reject the pair outright.  Chains
    still fuse because pairwise merging iterates to a fixpoint — this is
    how the Enhancement pipeline fuses fully while Sobel and Unsharp are
    rejected (Section V-C). *)

(** [pair_fusible config pipeline a b] decides whether blocks [a] and [b]
    may be merged under the basic rules:
    - the merged block is weakly connected with a unique sink and no
      external output;
    - it has exactly {e one} source kernel, and only that source reads
      images from outside the block (shared inputs are rejected);
    - no internal edge is local-to-local (consumer reads an in-block
      intermediate with a window while its producer is local);
    - no global kernels; the resource constraint of Eq. 2 holds. *)
val pair_fusible :
  Config.t -> Kfuse_ir.Pipeline.t -> Kfuse_util.Iset.t -> Kfuse_util.Iset.t -> bool

(** [partition config pipeline] runs basic fusion: starting from
    singletons, repeatedly merge the first fusible producer/consumer
    block pair (in topological edge order) until a fixpoint. *)
val partition : Config.t -> Kfuse_ir.Pipeline.t -> Kfuse_graph.Partition.t
