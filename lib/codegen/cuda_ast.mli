(** A small C/CUDA abstract syntax tree.

    Just enough C to express the kernels our lowering produces: flat
    types ([float], [int], pointers), expressions, declarations,
    conditionals, and function definitions with CUDA qualifiers.  The
    printer in {!Emit} renders it as compilable CUDA C. *)

type expr =
  | Int_lit of int
  | Float_lit of float  (** [%.9gf]: a 32-bit [float] literal *)
  | Double_lit of float  (** [%.17g]: a full-precision [double] literal *)
  | Ident of string
  | Call of string * expr list
  | Binop of string * expr * expr  (** infix operator, e.g. "+" or "&&" *)
  | Unop of string * expr  (** prefix operator, e.g. "-" or "!" *)
  | Ternary of expr * expr * expr
  | Index of expr * expr  (** [a\[i\]] *)

type stmt =
  | Decl of { ctype : string; name : string; init : expr option }
  | Assign of expr * expr
  | If of { cond : expr; then_ : stmt list; else_ : stmt list }
  | For of { var : string; from_ : expr; below : expr; step : int; body : stmt list }
      (** [for (int var = from_; var < below; var += step) { body }] *)
  | Pragma of string  (** [#pragma ...] on its own line *)
  | Expr_stmt of expr
  | Return
  | Comment of string

type param = { ctype : string; name : string }

type func = {
  qualifiers : string list;  (** e.g. ["__global__"] or ["__device__"] *)
  ret : string;
  name : string;
  params : param list;
  body : stmt list;
}

(** {1 Convenience constructors} *)

val int_lit : int -> expr
val float_lit : float -> expr
val double_lit : float -> expr
val ident : string -> expr
val call : string -> expr list -> expr
val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( *: ) : expr -> expr -> expr
val ( /: ) : expr -> expr -> expr
val ( <: ) : expr -> expr -> expr
val ( >=: ) : expr -> expr -> expr
val ( &&: ) : expr -> expr -> expr
val ( ||: ) : expr -> expr -> expr
val index : expr -> expr -> expr

(** [for_ ~var ~from_ ~below ?step body] is a validated {!constructor:For}.
    @raise Invalid_argument when [step < 1] — the emitted
    [for (v = a; v < b; v += step)] shape never terminates for a
    nonpositive step (default [1]). *)
val for_ : var:string -> from_:expr -> below:expr -> ?step:int -> stmt list -> stmt
