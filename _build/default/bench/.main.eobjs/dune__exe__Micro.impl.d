bench/micro.ml: Analyze Bechamel Benchmark Hashtbl Instance Kfuse_apps Kfuse_codegen Kfuse_dsl Kfuse_fusion Kfuse_graph Kfuse_util List Measure Printf Runner Staged Test Time Toolkit
