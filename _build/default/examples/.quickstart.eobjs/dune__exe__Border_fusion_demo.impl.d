examples/border_fusion_demo.ml: Format Kfuse_fusion Kfuse_image Kfuse_ir Kfuse_util List
