test/test_karger.ml: Alcotest Helpers Kfuse_graph Kfuse_util List
