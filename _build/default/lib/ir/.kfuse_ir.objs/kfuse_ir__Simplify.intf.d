lib/ir/simplify.mli: Expr Kernel Pipeline
