(** Immutable directed graphs over integer vertices.

    Kernel pipelines are represented as directed acyclic graphs
    [G = (V, E)] where vertices are kernels and an edge [(u, v)] means
    kernel [v] consumes the output of kernel [u] (Section II of the
    paper).  This module provides the graph structure itself; DAG-specific
    queries live in {!Topo}. *)

type t

(** The graph with no vertices. *)
val empty : t

(** [add_vertex g v] adds the isolated vertex [v]; no-op if present. *)
val add_vertex : t -> int -> t

(** [add_edge g u v] adds the directed edge [u -> v], adding missing
    endpoints.  Self loops are rejected with [Invalid_argument]; adding an
    existing edge is a no-op. *)
val add_edge : t -> int -> int -> t

(** [remove_edge g u v] removes the edge [u -> v] if present. *)
val remove_edge : t -> int -> int -> t

(** [remove_vertex g v] removes [v] and all incident edges. *)
val remove_vertex : t -> int -> t

(** [of_edges es] builds a graph from a list of directed edges. *)
val of_edges : (int * int) list -> t

(** [mem_vertex g v] tests vertex membership. *)
val mem_vertex : t -> int -> bool

(** [mem_edge g u v] tests presence of edge [u -> v]. *)
val mem_edge : t -> int -> int -> bool

(** [vertices g] is the set of vertices. *)
val vertices : t -> Kfuse_util.Iset.t

(** [edges g] lists all edges [(u, v)], ordered by [u] then [v]. *)
val edges : t -> (int * int) list

(** [succs g v] is the set of successors of [v] (empty if [v] absent). *)
val succs : t -> int -> Kfuse_util.Iset.t

(** [preds g v] is the set of predecessors of [v] (empty if [v] absent). *)
val preds : t -> int -> Kfuse_util.Iset.t

(** [out_degree g v] is [Iset.cardinal (succs g v)]. *)
val out_degree : t -> int -> int

(** [in_degree g v] is [Iset.cardinal (preds g v)]. *)
val in_degree : t -> int -> int

(** [num_vertices g] is the vertex count. *)
val num_vertices : t -> int

(** [num_edges g] is the edge count. *)
val num_edges : t -> int

(** [induced g vs] is the subgraph induced by the vertex set [vs]: the
    vertices of [vs] present in [g] and every edge of [g] with both
    endpoints in [vs]. *)
val induced : t -> Kfuse_util.Iset.t -> t

(** [fold_edges f g acc] folds [f] over all edges. *)
val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a

(** [fold_vertices f g acc] folds [f] over all vertices in increasing
    order. *)
val fold_vertices : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** Structural equality of graphs. *)
val equal : t -> t -> bool

(** [pp ppf g] prints the graph as a vertex list and edge list. *)
val pp : Format.formatter -> t -> unit
