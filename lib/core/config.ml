type is_unit = Images | Pixels

type t = {
  tg : float;
  ts : float;
  c_alu : float;
  c_sfu : float;
  gamma : float;
  epsilon : float;
  c_mshared : float;
  block : Kfuse_ir.Cost.block;
  is_unit : is_unit;
}

let default =
  {
    tg = 400.0;
    ts = 4.0;
    c_alu = 4.0;
    c_sfu = 16.0;
    gamma = 0.0;
    epsilon = 0.001;
    c_mshared = 2.0;
    block = Kfuse_ir.Cost.default_block;
    is_unit = Images;
  }

let validate_result t =
  let module Diag = Kfuse_util.Diag in
  let err msg = Error (Diag.v Diag.Config_invalid msg) in
  if t.epsilon <= 0.0 then err "Config: epsilon must be positive"
  else if t.ts <= 0.0 || t.tg < t.ts then err "Config: need tg >= ts > 0"
  else if t.c_alu <= 0.0 || t.c_sfu <= 0.0 then err "Config: op costs must be positive"
  else if t.c_mshared < 1.0 then err "Config: c_mshared must be >= 1"
  else if t.gamma < 0.0 then err "Config: gamma must be nonnegative"
  else Ok ()

let validate t =
  match validate_result t with
  | Ok () -> ()
  | Error d -> invalid_arg d.Kfuse_util.Diag.message

let is_of t (p : Kfuse_ir.Pipeline.t) =
  match t.is_unit with
  | Images -> float_of_int p.channels
  | Pixels -> float_of_int (Kfuse_ir.Pipeline.is_pixels p)
