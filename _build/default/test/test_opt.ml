(* Tests for the IR optimization passes: Simplify and Cse. *)

module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Simplify = Kfuse_ir.Simplify
module Cse = Kfuse_ir.Cse
module Cost = Kfuse_ir.Cost
module Eval = Kfuse_ir.Eval
module Image = Kfuse_image.Image
module Border = Kfuse_image.Border
module Mask = Kfuse_image.Mask

let simp = Simplify.expr

(* ---- Simplify ---- *)

let test_constant_folding () =
  let open Expr in
  Alcotest.check Helpers.expr "add" (Const 5.0) (simp (Const 2.0 + Const 3.0));
  Alcotest.check Helpers.expr "nested" (Const 14.0)
    (simp (Const 2.0 * (Const 3.0 + Const 4.0)));
  Alcotest.check Helpers.expr "unop" (Const 3.0) (simp (sqrt (Const 9.0)));
  Alcotest.check Helpers.expr "pow" (Const 8.0) (simp (pow (Const 2.0) (Const 3.0)))

let test_identities () =
  let open Expr in
  let x = input "a" in
  Alcotest.check Helpers.expr "x+0" x (simp (x + Const 0.0));
  Alcotest.check Helpers.expr "0+x" x (simp (Const 0.0 + x));
  Alcotest.check Helpers.expr "x-0" x (simp (x - Const 0.0));
  Alcotest.check Helpers.expr "x*1" x (simp (x * Const 1.0));
  Alcotest.check Helpers.expr "1*x" x (simp (Const 1.0 * x));
  Alcotest.check Helpers.expr "x*0" (Const 0.0) (simp (x * Const 0.0));
  Alcotest.check Helpers.expr "x/1" x (simp (x / Const 1.0));
  Alcotest.check Helpers.expr "pow x 1" x (simp (pow x (Const 1.0)));
  Alcotest.check Helpers.expr "pow x 0" (Const 1.0) (simp (pow x (Const 0.0)));
  Alcotest.check Helpers.expr "neg neg" x (simp (neg (neg x)));
  Alcotest.check Helpers.expr "abs abs" (abs x) (simp (abs (abs x)))

let test_cascading () =
  let open Expr in
  (* (a * 0) + (2 + 3) * 1 -> 5, requires a fixpoint. *)
  Alcotest.check Helpers.expr "cascade" (Const 5.0)
    (simp ((input "a" * Const 0.0) + ((Const 2.0 + Const 3.0) * Const 1.0)))

let test_select_folding () =
  let open Expr in
  let x = input "a" in
  Alcotest.check Helpers.expr "taken" x
    (simp (select Expr.Lt (Const 1.0) (Const 2.0) x (Const 9.0)));
  Alcotest.check Helpers.expr "not taken" (Const 9.0)
    (simp (select Expr.Lt (Const 2.0) (Const 1.0) x (Const 9.0)));
  Alcotest.check Helpers.expr "same branches" x (simp (select Expr.Lt x (Const 0.0) x x))

let test_let_cleanup () =
  let open Expr in
  let x = input "a" in
  (* dead let *)
  Alcotest.check Helpers.expr "dead let" x (simp (let_ "v" (input "b") x));
  (* trivial value inlined *)
  Alcotest.check Helpers.expr "const inlined" (Const 4.0)
    (simp (let_ "v" (Const 2.0) (var "v" + var "v")));
  (* single use inlined *)
  Alcotest.check Helpers.expr "single use" (x * x) (simp (let_ "v" (x * x) (var "v")));
  (* multi-use nontrivial kept *)
  let kept = simp (let_ "v" (x * x) (var "v" + var "v")) in
  (match kept with
  | Let _ -> ()
  | _ -> Alcotest.fail "multi-use binding must be kept")

let test_let_shift_no_unsound_inline () =
  let open Expr in
  (* A position-dependent single-use value must NOT be inlined under a
     Shift: that would change its evaluation position. *)
  let e =
    let_ "v" (input "a") (Shift { dx = 1; dy = 0; exchange = None; body = var "v" })
  in
  let simplified = simp e in
  let p =
    Pipeline.create ~name:"p" ~width:3 ~height:1 ~inputs:[ "a" ]
      [ Kernel.map ~name:"k" ~inputs:[ "a" ] simplified ]
  in
  let img = Image.of_rows [ [ 1.; 2.; 3. ] ] in
  let out = Helpers.run_single p [ ("a", img) ] in
  (* Correct semantics: v = a[x], body yields v regardless of the shift. *)
  Alcotest.check Helpers.image_exact "position preserved" img out

let test_shift_zero_removed () =
  let open Expr in
  let x = input "a" in
  Alcotest.check Helpers.expr "zero shift"
    x
    (simp (Shift { dx = 0; dy = 0; exchange = Some Border.Clamp; body = x }))

let test_shift_constant_exchange_kept () =
  let open Expr in
  (* Constant exchange must keep the Shift: out-of-bounds yields 7, not 3. *)
  let e =
    Shift { dx = -10; dy = 0; exchange = Some (Border.Constant 7.0); body = Const 3.0 }
  in
  (match simp e with
  | Shift _ -> ()
  | other -> Alcotest.failf "should keep shift, got %s" (Format.asprintf "%a" Expr.pp other));
  (* Remapping exchange with a constant body is the identity. *)
  let e2 = Shift { dx = -10; dy = 0; exchange = Some Border.Clamp; body = Const 3.0 } in
  Alcotest.check Helpers.expr "clamp exchange lifts constant" (Const 3.0) (simp e2)

let test_simplify_kernel_prunes_inputs () =
  let open Expr in
  let k = Kernel.map ~name:"k" ~inputs:[ "a"; "b" ] (input "a" + (input "b" * Const 0.0)) in
  let k' = Simplify.kernel k in
  Alcotest.(check (list string)) "b dropped" [ "a" ] k'.Kernel.inputs

(* ---- Cse ---- *)

let count_lets e =
  let rec go n = function
    | Expr.Let { value; body; _ } -> go (go (n + 1) value) body
    | Expr.Const _ | Expr.Param _ | Expr.Input _ | Expr.Var _ -> n
    | Expr.Unop (_, a) -> go n a
    | Expr.Binop (_, a, b) -> go (go n a) b
    | Expr.Select { lhs; rhs; if_true; if_false; _ } ->
      List.fold_left go n [ lhs; rhs; if_true; if_false ]
    | Expr.Shift { body; _ } -> go n body
  in
  go 0 e

let eval1 e bindings =
  let p =
    Pipeline.create ~name:"p" ~width:4 ~height:3
      ~inputs:(List.map fst bindings)
      [ Kernel.map ~name:"k" ~inputs:(Expr.images e) e ]
  in
  Helpers.run_single p bindings

let test_cse_basic_sharing () =
  let open Expr in
  let t = input "a" * input "a" in
  let e = (t + Const 1.0) * (t + Const 2.0) in
  let shared = Cse.expr ~min_size:2 e in
  Alcotest.(check bool) "introduced a let" true (count_lets shared >= 1);
  (* semantics preserved *)
  let img = Helpers.ramp ~width:4 ~height:3 in
  Alcotest.check Helpers.image_exact "same result" (eval1 e [ ("a", img) ])
    (eval1 shared [ ("a", img) ])

let test_cse_input_loads () =
  let open Expr in
  (* Repeated loads of the same pixel collapse to one access. *)
  let e = input "a" + (input "a" * input "a") in
  let shared = Cse.expr e in
  Alcotest.(check int) "one access left" 1 (List.length (accesses shared))

let test_cse_respects_shift_frames () =
  let open Expr in
  (* Structurally equal subtrees in different shift frames are different
     values and must not merge. *)
  let t = input "a" * input "a" in
  let e = t + Shift { dx = 1; dy = 0; exchange = None; body = t } in
  let shared = Cse.expr ~min_size:2 e in
  let img = Helpers.ramp ~width:4 ~height:3 in
  Alcotest.check Helpers.image_exact "frames preserved" (eval1 e [ ("a", img) ])
    (eval1 shared [ ("a", img) ]);
  (* Equal subtrees in the SAME frame inside each shift body still share. *)
  let inner = t + t in
  let e2 = Shift { dx = 1; dy = 0; exchange = None; body = inner } in
  Alcotest.(check bool) "inner frame shares" true (count_lets (Cse.expr ~min_size:2 e2) >= 1)

let test_cse_whole_shift_shared () =
  let open Expr in
  (* Two identical Shift subtrees at the same outer position are the same
     value and do share. *)
  let s = Shift { dx = 1; dy = 1; exchange = Some Border.Clamp; body = input "a" } in
  let e = s + s in
  let shared = Cse.expr ~min_size:1 e in
  Alcotest.(check bool) "shift shared" true (count_lets shared >= 1);
  let img = Helpers.ramp ~width:4 ~height:3 in
  Alcotest.check Helpers.image_exact "semantics" (eval1 e [ ("a", img) ])
    (eval1 shared [ ("a", img) ])

let test_cse_free_vars_untouched () =
  let open Expr in
  let e = let_ "v" (input "a") ((var "v" * var "v") + (var "v" * var "v")) in
  (* v*v repeats but contains a free var within the frame scan at the top
     level... the pass must not hoist it above its binder. *)
  let shared = Cse.expr ~min_size:2 e in
  let img = Helpers.ramp ~width:4 ~height:3 in
  Alcotest.check Helpers.image_exact "no capture" (eval1 e [ ("a", img) ])
    (eval1 shared [ ("a", img) ])

let test_cse_on_harris_hc () =
  (* hc reuses gx and gy several times: CSE reduces its distinct loads to
     three. *)
  let p = Kfuse_apps.Harris.pipeline ~width:8 ~height:8 () in
  let hc = Pipeline.kernel p (Option.get (Pipeline.index_of p "hc")) in
  let shared = Cse.kernel hc in
  Alcotest.(check int) "three loads" 3
    (List.length (Expr.accesses (Kernel.body shared)))

let test_optimize_flag_in_driver () =
  let module F = Kfuse_fusion in
  let p = Kfuse_apps.Unsharp.pipeline ~width:16 ~height:16 () in
  let plain = F.Driver.run F.Config.default F.Driver.Mincut p in
  let optimized = F.Driver.run ~optimize:true F.Config.default F.Driver.Mincut p in
  let body r = Kernel.body (Pipeline.kernel r.F.Driver.fused 0) in
  (* CSE trades AST nodes (Let/Var bookkeeping) for fewer distinct loads
     and ops; accesses and op counts are the meaningful metrics. *)
  Alcotest.(check bool) "optimized body loads fewer pixels" true
    (List.length (Expr.accesses (body optimized))
    <= List.length (Expr.accesses (body plain)));
  Alcotest.(check bool) "optimized body costs no more ops" true
    ((Cost.kernel_op_counts (Pipeline.kernel optimized.F.Driver.fused 0)).Cost.alu
    <= (Cost.kernel_op_counts (Pipeline.kernel plain.F.Driver.fused 0)).Cost.alu);
  (* and still correct *)
  let rng = Kfuse_util.Rng.create 9 in
  let img = Image.random rng ~width:16 ~height:16 ~lo:0.0 ~hi:1.0 in
  let env = Eval.env_of_list [ ("in", img) ] in
  let a = snd (List.hd (Eval.run_outputs p env)) in
  let b = snd (List.hd (Eval.run_outputs optimized.F.Driver.fused env)) in
  Alcotest.(check bool) "optimized exact" true (Image.max_abs_diff a b < 1e-9)

let test_simplify_reduces_fused_ops () =
  (* Fused Sobel carries mask constants; folding plus CSE lowers the
     counted work. *)
  let module F = Kfuse_fusion in
  let p = Kfuse_apps.Sobel.pipeline ~width:16 ~height:16 () in
  let r = F.Driver.run F.Config.default F.Driver.Mincut p in
  let k = Pipeline.kernel r.F.Driver.fused 0 in
  let k' = Cse.kernel (Simplify.kernel k) in
  let before = (Cost.kernel_op_counts k).Cost.alu in
  let after = (Cost.kernel_op_counts k').Cost.alu in
  Alcotest.(check bool) "not more ops" true (after <= before);
  Alcotest.(check bool) "fewer loads" true
    (List.length (Expr.accesses (Kernel.body k'))
    <= List.length (Expr.accesses (Kernel.body k)))

let suite =
  [
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "identities" `Quick test_identities;
    Alcotest.test_case "cascading folds" `Quick test_cascading;
    Alcotest.test_case "select folding" `Quick test_select_folding;
    Alcotest.test_case "let cleanup" `Quick test_let_cleanup;
    Alcotest.test_case "no unsound inline under shift" `Quick test_let_shift_no_unsound_inline;
    Alcotest.test_case "zero shift removed" `Quick test_shift_zero_removed;
    Alcotest.test_case "constant-exchange shift kept" `Quick test_shift_constant_exchange_kept;
    Alcotest.test_case "kernel input pruning" `Quick test_simplify_kernel_prunes_inputs;
    Alcotest.test_case "cse basic sharing" `Quick test_cse_basic_sharing;
    Alcotest.test_case "cse merges input loads" `Quick test_cse_input_loads;
    Alcotest.test_case "cse respects shift frames" `Quick test_cse_respects_shift_frames;
    Alcotest.test_case "cse shares whole shifts" `Quick test_cse_whole_shift_shared;
    Alcotest.test_case "cse leaves free vars" `Quick test_cse_free_vars_untouched;
    Alcotest.test_case "cse on Harris hc" `Quick test_cse_on_harris_hc;
    Alcotest.test_case "driver optimize flag" `Quick test_optimize_flag_in_driver;
    Alcotest.test_case "passes reduce fused work" `Quick test_simplify_reduces_fused_ops;
  ]
