type is_unit = Images | Pixels

type t = {
  tg : float;
  ts : float;
  c_alu : float;
  c_sfu : float;
  gamma : float;
  epsilon : float;
  c_mshared : float;
  block : Kfuse_ir.Cost.block;
  is_unit : is_unit;
}

let default =
  {
    tg = 400.0;
    ts = 4.0;
    c_alu = 4.0;
    c_sfu = 16.0;
    gamma = 0.0;
    epsilon = 0.001;
    c_mshared = 2.0;
    block = Kfuse_ir.Cost.default_block;
    is_unit = Images;
  }

let validate t =
  if t.epsilon <= 0.0 then invalid_arg "Config: epsilon must be positive";
  if t.ts <= 0.0 || t.tg < t.ts then invalid_arg "Config: need tg >= ts > 0";
  if t.c_alu <= 0.0 || t.c_sfu <= 0.0 then invalid_arg "Config: op costs must be positive";
  if t.c_mshared < 1.0 then invalid_arg "Config: c_mshared must be >= 1";
  if t.gamma < 0.0 then invalid_arg "Config: gamma must be nonnegative"

let is_of t (p : Kfuse_ir.Pipeline.t) =
  match t.is_unit with
  | Images -> float_of_int p.channels
  | Pixels -> float_of_int (Kfuse_ir.Pipeline.is_pixels p)
