(* End-to-end integration: every application, fused under every strategy,
   is pixel-identical to the unfused baseline, and the simulated
   performance reproduces the paper's qualitative results (Tables I-II). *)

module F = Kfuse_fusion
module G = Kfuse_gpu
module Pipeline = Kfuse_ir.Pipeline
module Kernel = Kfuse_ir.Kernel
module Eval = Kfuse_ir.Eval
module Image = Kfuse_image.Image
module Iset = Kfuse_util.Iset
module Stats = Kfuse_util.Stats
module Registry = Kfuse_apps.Registry

let config = F.Config.default

let fused_names (p : Pipeline.t) (r : F.Driver.report) =
  List.filter_map
    (fun b ->
      if Iset.cardinal b >= 2 then
        Some (Pipeline.kernel p (Iset.min_elt (F.Legality.block_sinks p b))).Kernel.name
      else None)
    r.F.Driver.partition

let test_all_apps_all_strategies_exact () =
  let rng = Kfuse_util.Rng.create 404 in
  List.iter
    (fun (e : Registry.entry) ->
      let p = e.Registry.small ~width:21 ~height:17 in
      let inputs =
        List.map
          (fun n -> (n, Image.random rng ~width:21 ~height:17 ~lo:0.05 ~hi:1.0))
          p.Pipeline.inputs
      in
      let env = Eval.env_of_list inputs in
      let reference = Eval.run_outputs p env in
      List.iter
        (fun s ->
          let r = F.Driver.run config s p in
          let outs = Eval.run_outputs r.F.Driver.fused env in
          List.iter2
            (fun (n1, a) (n2, b) ->
              Alcotest.(check string) "names" n1 n2;
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s/%s exact" e.Registry.name
                   (F.Driver.strategy_to_string s) n1)
                true
                (Image.max_abs_diff a b < 1e-9))
            reference outs)
        F.Driver.all_strategies)
    Registry.all

let test_inline_path_exact_everywhere () =
  (* The inlining pre-pass + min-cut fusion stays pixel-exact on every
     application (including the aggressive whole-Harris collapse). *)
  let rng = Kfuse_util.Rng.create 505 in
  List.iter
    (fun (e : Registry.entry) ->
      let p = e.Registry.small ~width:19 ~height:15 in
      let inputs =
        List.map
          (fun n -> (n, Image.random rng ~width:19 ~height:15 ~lo:0.05 ~hi:1.0))
          p.Pipeline.inputs
      in
      let env = Eval.env_of_list inputs in
      let reference = Eval.run_outputs p env in
      let r = F.Driver.run ~inline:true ~optimize:true config F.Driver.Mincut p in
      let outs = Eval.run_outputs r.F.Driver.fused env in
      List.iter2
        (fun (n1, a) (n2, b) ->
          Alcotest.(check string) "names" n1 n2;
          Alcotest.(check bool)
            (Printf.sprintf "%s inline+optimize exact (maxdiff %g)" e.Registry.name
               (Image.max_abs_diff a b))
            true
            (Image.max_abs_diff a b < 1e-6))
        reference outs)
    Registry.all

let test_fused_kernel_counts () =
  (* Kernel counts after optimized fusion, per Section V-C. *)
  List.iter
    (fun (name, expected) ->
      let e = Option.get (Registry.find name) in
      let p = e.Registry.pipeline () in
      let r = F.Driver.run config F.Driver.Mincut p in
      Alcotest.(check int) (name ^ " kernels") expected (F.Driver.fused_kernel_count r))
    [ ("harris", 6); ("sobel", 1); ("unsharp", 1); ("shitomasi", 6); ("enhance", 1);
      ("night", 2) ]

let median_time device quality strategy (p : Pipeline.t) =
  let r = F.Driver.run config strategy p in
  (G.Sim.measure device ~quality ~fused_kernels:(fused_names p r) r.F.Driver.fused)
    .G.Sim.summary.Stats.median

let speedups device (p : Pipeline.t) =
  let base = median_time device G.Perf_model.Optimized F.Driver.Baseline p in
  let basic = median_time device G.Perf_model.Basic_codegen F.Driver.Basic p in
  let opt = median_time device G.Perf_model.Optimized F.Driver.Mincut p in
  (base /. opt, base /. basic, basic /. opt)

let test_speedups_qualitative () =
  (* Shape checks against Table I: on every device, optimized fusion never
     loses to baseline by more than noise, Unsharp shows the largest gain,
     Night the smallest; basic fusion gains nothing on Sobel/Unsharp. *)
  List.iter
    (fun device ->
      let s name =
        let e = Option.get (Registry.find name) in
        speedups device (e.Registry.pipeline ())
      in
      let h_ob, h_bb, _ = s "harris" in
      let so_ob, so_bb, _ = s "sobel" in
      let u_ob, u_bb, _ = s "unsharp" in
      let e_ob, e_bb, _ = s "enhance" in
      let n_ob, _, n_basic_opt = s "night" in
      let dev = device.G.Device.name in
      Alcotest.(check bool) (dev ^ ": harris gains") true (h_ob > 1.05);
      Alcotest.(check bool) (dev ^ ": harris basic gains less") true
        (h_bb > 1.0 && h_bb < h_ob);
      Alcotest.(check bool) (dev ^ ": sobel optimized gains") true (so_ob > 1.2);
      Alcotest.(check bool) (dev ^ ": sobel basic flat") true (Float.abs (so_bb -. 1.0) < 0.05);
      Alcotest.(check bool) (dev ^ ": unsharp largest") true
        (u_ob > h_ob && u_ob > e_ob && u_ob > n_ob && u_ob > 2.0);
      Alcotest.(check bool) (dev ^ ": unsharp basic flat") true
        (Float.abs (u_bb -. 1.0) < 0.05);
      Alcotest.(check bool) (dev ^ ": enhance gains") true (e_ob > 1.4);
      Alcotest.(check bool) (dev ^ ": enhance basic most of it") true (e_bb > 1.3);
      Alcotest.(check bool) (dev ^ ": night flat-ish") true (n_ob >= 0.98 && n_ob < 1.15);
      Alcotest.(check bool) (dev ^ ": night basic = optimized") true
        (Float.abs (n_basic_opt -. 1.0) < 0.05))
    G.Device.all

let test_geomean_table2_shape () =
  (* Table II: geometric means across the three GPUs keep the paper's
     ordering unsharp > enhance > {harris, shitomasi} > night, with the
     headline "up to 2.52x" at unsharp >= 2. *)
  let geo name =
    let e = Option.get (Registry.find name) in
    let p = e.Registry.pipeline () in
    Stats.geomean
      (List.map (fun d -> let ob, _, _ = speedups d p in ob) G.Device.all)
  in
  let u = geo "unsharp" and h = geo "harris" and st = geo "shitomasi" in
  let en = geo "enhance" and n = geo "night" in
  Alcotest.(check bool) "unsharp headline" true (u >= 2.0);
  Alcotest.(check bool) "unsharp > enhance" true (u > en);
  Alcotest.(check bool) "enhance > harris" true (en > h);
  Alcotest.(check bool) "harris ~ shitomasi" true (Float.abs (h -. st) < 0.1);
  Alcotest.(check bool) "harris > night" true (h > n);
  Alcotest.(check bool) "night ~ 1" true (n < 1.1)

let test_dsl_to_cuda_end_to_end () =
  (* DSL text -> IR -> fusion -> CUDA, with interpreter equivalence. *)
  let src =
    {|pipeline edges(img) {
        size 24 18
        gx = conv(img, sobelx, mirror)
        gy = conv(img, sobely, mirror)
        mag = sqrt(gx*gx + gy*gy)
      }|}
  in
  match Kfuse_dsl.Elaborate.parse_pipeline src with
  | Error e -> Alcotest.failf "dsl failed: %s" e
  | Ok p ->
    let r = F.Driver.run config F.Driver.Mincut p in
    Alcotest.(check int) "fully fused" 1 (F.Driver.fused_kernel_count r);
    let rng = Kfuse_util.Rng.create 5 in
    let img = Image.random rng ~width:24 ~height:18 ~lo:0.0 ~hi:1.0 in
    let env = Eval.env_of_list [ ("img", img) ] in
    let a = snd (List.hd (Eval.run_outputs p env)) in
    let b = snd (List.hd (Eval.run_outputs r.F.Driver.fused env)) in
    Alcotest.(check bool) "exact" true (Image.max_abs_diff a b < 1e-9);
    let cu = Kfuse_codegen.Lower.emit_pipeline r.F.Driver.fused in
    Alcotest.(check bool) "cuda nonempty" true (String.length cu > 500)

let test_night_rgb_planes () =
  (* The Night pipeline runs per plane; three planes through the same
     kernels behave like three independent gray images. *)
  let p = Kfuse_apps.Night.pipeline ~width:12 ~height:10 ~channels:3 () in
  Alcotest.(check int) "IS counts planes" (12 * 10 * 3) (Pipeline.is_pixels p);
  let rng = Kfuse_util.Rng.create 8 in
  let planes =
    List.init 3 (fun _ -> Image.random rng ~width:12 ~height:10 ~lo:0.05 ~hi:1.0)
  in
  let r = F.Driver.run config F.Driver.Mincut p in
  List.iter
    (fun plane ->
      let env = Eval.env_of_list [ ("in", plane) ] in
      let a = Eval.run_outputs p env in
      let b = Eval.run_outputs r.F.Driver.fused env in
      List.iter2
        (fun (_, x) (_, y) ->
          Alcotest.(check bool) "plane exact" true (Image.max_abs_diff x y < 1e-9))
        a b)
    planes

let suite =
  [
    Alcotest.test_case "all apps x strategies pixel-exact" `Slow
      test_all_apps_all_strategies_exact;
    Alcotest.test_case "inline path exact everywhere" `Slow
      test_inline_path_exact_everywhere;
    Alcotest.test_case "fused kernel counts" `Quick test_fused_kernel_counts;
    Alcotest.test_case "Table I qualitative shape" `Quick test_speedups_qualitative;
    Alcotest.test_case "Table II geomean shape" `Quick test_geomean_table2_shape;
    Alcotest.test_case "DSL to CUDA end-to-end" `Quick test_dsl_to_cuda_end_to_end;
    Alcotest.test_case "night RGB planes" `Slow test_night_rgb_planes;
  ]
