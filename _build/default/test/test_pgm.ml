(* Tests for PGM image I/O. *)

module Image = Kfuse_image.Image
module Pgm = Kfuse_image.Pgm

let rng = Kfuse_util.Rng.create 555

let test_roundtrip_8bit () =
  let img = Image.random rng ~width:13 ~height:7 ~lo:0.0 ~hi:1.0 in
  let back = Pgm.of_string (Pgm.to_string img) in
  (* 8-bit quantization: within half a step. *)
  Alcotest.(check bool) "8-bit quantized" true
    (Image.equal_eps ~eps:(0.5 /. 255.0 +. 1e-9) img back)

let test_roundtrip_16bit () =
  let img = Image.random rng ~width:9 ~height:11 ~lo:0.0 ~hi:1.0 in
  let back = Pgm.of_string (Pgm.to_string ~maxval:65535 img) in
  Alcotest.(check bool) "16-bit quantized" true
    (Image.equal_eps ~eps:(0.5 /. 65535.0 +. 1e-9) img back)

let test_clamping () =
  let img = Image.of_rows [ [ -0.5; 2.0 ] ] in
  let back = Pgm.of_string (Pgm.to_string img) in
  Alcotest.check (Helpers.float_close ()) "clamped low" 0.0 (Image.get back 0 0);
  Alcotest.check (Helpers.float_close ()) "clamped high" 1.0 (Image.get back 1 0)

let test_ascii_p2 () =
  let data = "P2\n# a comment\n3 2\n255\n0 128 255\n64 32 16\n" in
  let img = Pgm.of_string data in
  Alcotest.(check int) "width" 3 (Image.width img);
  Alcotest.(check int) "height" 2 (Image.height img);
  Alcotest.check (Helpers.float_close ~eps:1e-9 ()) "pixel" (128.0 /. 255.0)
    (Image.get img 1 0);
  Alcotest.check (Helpers.float_close ~eps:1e-9 ()) "last" (16.0 /. 255.0)
    (Image.get img 2 1)

let test_header_comments_in_p5 () =
  let img = Image.const ~width:2 ~height:2 0.5 in
  let encoded = Pgm.to_string img in
  (* Inject a comment line after the magic. *)
  let patched = "P5\n# injected\n" ^ String.sub encoded 3 (String.length encoded - 3) in
  let back = Pgm.of_string patched in
  Alcotest.(check int) "width" 2 (Image.width back)

let test_malformed () =
  List.iter
    (fun (name, data) -> Helpers.expect_invalid name (fun () -> Pgm.of_string data))
    [
      ("bad magic", "P7\n2 2\n255\n....");
      ("no dims", "P5\n");
      ("bad dims", "P5\nx 2\n255\n");
      ("zero dims", "P5\n0 2\n255\n");
      ("bad maxval", "P5\n2 2\n0\n....");
      ("truncated raster", "P5\n4 4\n255\nab");
    ]

let test_file_roundtrip () =
  let img = Image.random rng ~width:6 ~height:5 ~lo:0.0 ~hi:1.0 in
  let path = Filename.temp_file "kfuse" ".pgm" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Pgm.write ~maxval:65535 path img;
      let back = Pgm.read path in
      Alcotest.(check bool) "file roundtrip" true
        (Image.equal_eps ~eps:(0.5 /. 65535.0 +. 1e-9) img back))

let suite =
  [
    Alcotest.test_case "roundtrip 8-bit" `Quick test_roundtrip_8bit;
    Alcotest.test_case "roundtrip 16-bit" `Quick test_roundtrip_16bit;
    Alcotest.test_case "clamping" `Quick test_clamping;
    Alcotest.test_case "ASCII P2" `Quick test_ascii_p2;
    Alcotest.test_case "comments in header" `Quick test_header_comments_in_p5;
    Alcotest.test_case "malformed inputs" `Quick test_malformed;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
  ]
