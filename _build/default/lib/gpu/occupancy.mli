(** Occupancy: how many thread blocks can be resident per SM.

    "The number of thread blocks that can run concurrently is limited by
    resource usage of the kernel, namely register and shared memory"
    (Section II-B.1).  Occupancy below ~50% leaves too few warps to hide
    memory latency; the resource-legality check (Eq. 2) exists precisely
    to keep fused kernels above that knee. *)

type t = {
  active_blocks : int;  (** resident blocks per SM *)
  active_threads : int;
  occupancy : float;  (** active threads / max threads per SM *)
  limiter : [ `Shared_memory | `Thread_count | `Block_count ];
}

(** [compute device ~shared_bytes_per_block ~regs_per_thread
    ~threads_per_block] evaluates residency limits.  [shared_bytes_per_block = 0]
    means the kernel uses no shared memory.
    @raise Invalid_argument if a single block already exceeds the SM's
    shared memory or [threads_per_block <= 0]. *)
val compute :
  Device.t ->
  shared_bytes_per_block:int ->
  regs_per_thread:int ->
  threads_per_block:int ->
  t

(** [latency_hiding_factor occ] is the throughput derating applied to a
    kernel at occupancy [occ]: [1.0] at or above the 50% knee, dropping
    linearly below it. *)
val latency_hiding_factor : float -> float
