lib/core/driver.mli: Benefit Config Format Kfuse_graph Kfuse_ir Mincut_fusion
