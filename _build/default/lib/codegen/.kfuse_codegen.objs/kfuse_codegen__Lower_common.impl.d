lib/codegen/lower_common.ml: Array Cuda_ast Kfuse_image Kfuse_ir List Option Printf String
