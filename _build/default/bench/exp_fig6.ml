(* Experiment fig6: execution times of the three implementations of the
   six applications on the three GPU models (Figure 6).  500 simulated
   runs per cell; we print the box-plot statistics the figure's whiskers
   encode (min / p25 / median / p75 / max). *)

module G = Kfuse_gpu
module Stats = Kfuse_util.Stats

(* CSV variant for plotting: one row per (device, app, impl) cell. *)
let run_csv () =
  print_endline "device,app,impl,min_ms,p25_ms,median_ms,p75_ms,max_ms,mean_ms";
  List.iter
    (fun (device : G.Device.t) ->
      List.iter
        (fun (app : Kfuse_apps.Registry.entry) ->
          List.iter
            (fun (impl, impl_name) ->
              let s = (Runner.measure app impl device).G.Sim.summary in
              Printf.printf "%s,%s,%s,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f\n"
                device.G.Device.name app.Kfuse_apps.Registry.name impl_name s.Stats.min
                s.Stats.p25 s.Stats.median s.Stats.p75 s.Stats.max s.Stats.mean)
            Runner.impl_names)
        Runner.all_apps)
    Runner.all_devices

let run () =
  print_endline "=== fig6: execution times in ms (500 simulated runs per cell) ===";
  List.iter
    (fun (device : G.Device.t) ->
      Printf.printf "--- %s ---\n" device.G.Device.name;
      Printf.printf "%-10s %-9s %9s %9s %9s %9s %9s\n" "app" "impl" "min" "p25" "median"
        "p75" "max";
      List.iter
        (fun (app : Kfuse_apps.Registry.entry) ->
          List.iter
            (fun (impl, impl_name) ->
              let m = Runner.measure app impl device in
              let s = m.G.Sim.summary in
              Printf.printf "%-10s %-9s %9.3f %9.3f %9.3f %9.3f %9.3f\n"
                app.Kfuse_apps.Registry.name impl_name s.Stats.min s.Stats.p25
                s.Stats.median s.Stats.p75 s.Stats.max)
            Runner.impl_names)
        Runner.all_apps;
      print_newline ())
    Runner.all_devices
