lib/core/inline_fusion.mli: Config Kfuse_ir
