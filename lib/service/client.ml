module Diag = Kfuse_util.Diag

type t = { fd : Unix.file_descr }

let with_connection ~socket f =
  match
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX socket)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd
  with
  | exception Unix.Unix_error (e, _, _) ->
    Error
      (Diag.errorf ~file:socket Diag.Service_error "cannot connect to kfused: %s"
         (Unix.error_message e))
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> f { fd })

let request t req =
  match Protocol.send t.fd (Protocol.request_to_json req) with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Diag.errorf Diag.Service_error "send failed: %s" (Unix.error_message e))
  | () -> (
    match Protocol.recv t.fd with
    | Error _ as e -> e
    | Ok None -> Error (Diag.v Diag.Protocol_error "server closed the connection without replying")
    | Ok (Some v) -> Protocol.result v)

let fuse t f = request t (Protocol.Fuse f)
let stats t = request t Protocol.Stats

let metrics t =
  match request t Protocol.Metrics with
  | Error _ as e -> e
  | Ok v -> (
    match Jsonx.mem_str "text" v with
    | Some s -> Ok s
    | None -> Error (Diag.v Diag.Protocol_error "metrics response lacks \"text\""))

let ping t = Result.map (fun _ -> ()) (request t Protocol.Ping)
let shutdown t = Result.map (fun _ -> ()) (request t Protocol.Shutdown)
