module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module C = Lower_common
open Cuda_ast

let kernel_func ?tile ?(prec = C.Single) (p : Pipeline.t) (k : Kernel.t) =
  (match tile with
  | Some (tx, ty) when tx <= 0 || ty <= 0 ->
    invalid_arg "Lower_cpu.kernel_func: nonpositive tile extents"
  | Some _ | None -> ());
  let ctx = C.create_ctx () in
  let scalar_lit = match prec with C.Single -> float_lit | C.Double -> double_lit in
  let fn_prec single =
    match prec with C.Single -> single | C.Double -> Filename.chop_suffix single "f"
  in
  let body_stmts =
    match k.Kernel.op with
    | Kernel.Map body ->
      let result = C.lower ~prec ctx ~vars:[] ~cx:(ident "x") ~cy:(ident "y") body in
      let inner =
        C.take_stmts ctx
        @ [ Assign (index (ident "out") ((ident "y" *: ident "width") +: ident "x"), result) ]
      in
      (match tile with
      | None ->
        [
          Pragma "omp parallel for collapse(2) schedule(static)";
          For
            {
              var = "y";
              from_ = int_lit 0;
              below = ident "height";
              step = 1;
              body =
                [ For { var = "x"; from_ = int_lit 0; below = ident "width"; step = 1; body = inner } ];
            };
        ]
      | Some (tx, ty) ->
        (* Blocked iteration: tiles are distributed across threads, pixel
           loops stay within one tile. *)
        let clamp_end name base extent limit =
          Decl
            {
              ctype = "const int";
              name;
              init =
                Some
                  (Ternary
                     ( ident base +: int_lit extent <: ident limit,
                       ident base +: int_lit extent,
                       ident limit ));
            }
        in
        [
          Pragma "omp parallel for collapse(2) schedule(static)";
          for_ ~var:"yy" ~from_:(int_lit 0) ~below:(ident "height") ~step:ty
            [
              for_ ~var:"xx" ~from_:(int_lit 0) ~below:(ident "width") ~step:tx
                [
                  clamp_end "y_end" "yy" ty "height";
                  clamp_end "x_end" "xx" tx "width";
                  for_ ~var:"y" ~from_:(ident "yy") ~below:(ident "y_end")
                    [
                      for_ ~var:"x" ~from_:(ident "xx") ~below:(ident "x_end") inner;
                    ];
                ];
            ];
        ])
    | Kernel.Reduce { init; combine; arg } ->
      let v = C.lower ~prec ctx ~vars:[] ~cx:(ident "x") ~cy:(ident "y") arg in
      let clause, fold =
        match combine with
        | Expr.Add -> ("+", Assign (ident "acc", ident "acc" +: v))
        | Expr.Min ->
          ("min", Assign (ident "acc", call (fn_prec "fminf") [ ident "acc"; v ]))
        | Expr.Max ->
          ("max", Assign (ident "acc", call (fn_prec "fmaxf") [ ident "acc"; v ]))
        | Expr.Sub | Expr.Mul | Expr.Div | Expr.Pow ->
          invalid_arg
            (Printf.sprintf
               "Lower_cpu: reduction operator of kernel %s has no OpenMP clause"
               k.Kernel.name)
      in
      let inner = C.take_stmts ctx @ [ fold ] in
      [
        Decl { ctype = C.scalar_ctype prec; name = "acc"; init = Some (scalar_lit init) };
        Pragma (Printf.sprintf "omp parallel for collapse(2) reduction(%s:acc)" clause);
        For
          {
            var = "y";
            from_ = int_lit 0;
            below = ident "height";
            step = 1;
            body =
              [ For { var = "x"; from_ = int_lit 0; below = ident "width"; step = 1; body = inner } ];
          };
        (* The interpreter materializes a reduction as a 1x1 image whose
           bordered reads broadcast the scalar; writing only out[0] would
           leave the rest of a full-size buffer uninitialized for any
           downstream (or caller) read.  Broadcast the scalar instead. *)
        Comment "Broadcast: every cell of the output buffer holds the scalar result.";
        For
          {
            var = "i";
            from_ = int_lit 0;
            below = ident "width" *: ident "height";
            step = 1;
            body = [ Assign (index (ident "out") (ident "i"), ident "acc") ];
          };
      ]
  in
  {
    qualifiers = [];
    ret = "void";
    name = C.func_name p k;
    params = C.kernel_params ~prec p k;
    body = body_stmts;
  }

let emit_runner buf (p : Pipeline.t) =
  let b fmt = Printf.bprintf buf fmt in
  let n = C.sanitize p.Pipeline.name in
  b "// Driver: allocates intermediates and runs the kernels in topological order.\n";
  b "void run_%s(" n;
  let params =
    List.map (fun i -> Printf.sprintf "const kf_scalar* %s" (C.sanitize i)) p.Pipeline.inputs
    @ List.map (fun o -> Printf.sprintf "kf_scalar* %s" (C.sanitize o)) (Pipeline.outputs p)
    @ List.map
        (fun (name, _) -> Printf.sprintf "kf_scalar p_%s" (C.sanitize name))
        p.Pipeline.params
  in
  b "%s" (String.concat ", " params);
  b ") {\n";
  b "  const int width = %d, height = %d;\n" p.Pipeline.width p.Pipeline.height;
  let outputs = Pipeline.outputs p in
  let intermediates =
    Array.to_list p.Pipeline.kernels
    |> List.filter_map (fun (k : Kernel.t) ->
           if List.mem k.Kernel.name outputs then None else Some k.Kernel.name)
  in
  List.iter
    (fun name ->
      b "  kf_scalar* %s = (kf_scalar*)kf_malloc((size_t)width * height * sizeof(kf_scalar));\n"
        (C.sanitize name))
    intermediates;
  Array.iter
    (fun (k : Kernel.t) ->
      let args =
        [ C.sanitize k.Kernel.name ]
        @ List.map C.sanitize k.Kernel.inputs
        @ [ "width"; "height" ] @ C.scalar_args p k
      in
      b "  %s(%s);\n" (C.func_name p k) (String.concat ", " args))
    p.Pipeline.kernels;
  List.iter (fun name -> b "  free(%s);\n" (C.sanitize name)) intermediates;
  b "}\n"

let emit_pipeline ?tile ?(prec = C.Single) (p : Pipeline.t) =
  let buf = Buffer.create 4096 in
  let b fmt = Printf.bprintf buf fmt in
  b "// Generated by kfuse: pipeline %s (%dx%dx%d), C + OpenMP backend\n"
    p.Pipeline.name p.Pipeline.width p.Pipeline.height p.Pipeline.channels;
  b "// Compile with: cc -O2 -fopenmp -lm\n\n";
  b "#include <stdlib.h>\n#include <math.h>\n\n";
  b "// Scalar type of buffers and arithmetic alike; wrappers that keep a\n";
  b "// narrower external ABI convert at the boundary.\n";
  b "typedef %s kf_scalar;\n\n" (C.scalar_ctype prec);
  b "// Abort-on-OOM allocation stub: the generated runner has no error path,\n";
  b "// and computing into a NULL intermediate would corrupt, not fail.\n";
  b "static inline void* kf_malloc(size_t n) {\n";
  b "  void* p = malloc(n);\n";
  b "  if (!p) abort();\n";
  b "  return p;\n";
  b "}\n\n";
  let features = C.used_features p in
  List.iter
    (fun src -> b "%s\n\n" src)
    (C.helper_sources ~device_qualifier:"static inline" ~prec features);
  Array.iter
    (fun k -> b "%s\n\n" (Emit.func_to_string (kernel_func ?tile ~prec p k)))
    p.Pipeline.kernels;
  emit_runner buf p;
  Buffer.contents buf
