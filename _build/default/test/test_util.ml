(* Tests for Kfuse_util: Iset, Imap, Rng, Stats. *)

module Iset = Kfuse_util.Iset
module Imap = Kfuse_util.Imap
module Rng = Kfuse_util.Rng
module Stats = Kfuse_util.Stats

let test_iset_of_range () =
  Alcotest.check Helpers.iset "3..6" (Helpers.set_of [ 3; 4; 5; 6 ]) (Iset.of_range 3 6);
  Alcotest.check Helpers.iset "singleton" (Helpers.set_of [ 2 ]) (Iset.of_range 2 2);
  Alcotest.check Helpers.iset "empty when hi < lo" Iset.empty (Iset.of_range 5 4)

let test_iset_sorted () =
  Alcotest.(check (list int))
    "sorted" [ 1; 2; 9 ]
    (Iset.to_sorted_list (Helpers.set_of [ 9; 1; 2 ]))

let test_iset_pp () =
  Alcotest.(check string)
    "render" "{1, 2, 5}"
    (Format.asprintf "%a" Iset.pp (Helpers.set_of [ 5; 1; 2 ]))

let test_imap_find_or () =
  let m = Imap.add 1 "a" Imap.empty in
  Alcotest.(check string) "hit" "a" (Imap.find_or ~default:"z" 1 m);
  Alcotest.(check string) "miss" "z" (Imap.find_or ~default:"z" 2 m)

let test_imap_keys () =
  let m = Imap.empty |> Imap.add 3 () |> Imap.add 1 () |> Imap.add 2 () in
  Alcotest.(check (list int)) "keys sorted" [ 1; 2; 3 ] (Imap.keys m)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Rng.bits64 a) (Rng.bits64 b)) then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_rng_int_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    if v < 0 || v >= 10 then Alcotest.failf "out of range: %d" v
  done

let test_rng_int_invalid () =
  let rng = Rng.create 7 in
  Alcotest.check_raises "nonpositive bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_float_range () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "out of range: %f" v
  done

let test_rng_gaussian_moments () =
  let rng = Rng.create 5 in
  let n = 20000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let g = Rng.gaussian rng in
    sum := !sum +. g;
    sumsq := !sumsq +. (g *. g)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.check (Helpers.float_close ~eps:0.05 ()) "mean ~ 0" 0.0 mean;
  Alcotest.check (Helpers.float_close ~eps:0.05 ()) "var ~ 1" 1.0 var

let test_rng_copy_independent () =
  let a = Rng.create 3 in
  let b = Rng.copy a in
  Alcotest.(check int64) "copies agree" (Rng.bits64 a) (Rng.bits64 b);
  ignore (Rng.bits64 a);
  (* advancing [a] must not affect a fresh copy's determinism *)
  let c = Rng.copy a in
  Alcotest.(check int64) "copy from advanced state" (Rng.bits64 a) (Rng.bits64 c)

let test_stats_summary () =
  let s = Stats.summarize [| 4.0; 1.0; 3.0; 2.0; 5.0 |] in
  Alcotest.(check int) "n" 5 s.Stats.n;
  Alcotest.check (Helpers.float_close ()) "min" 1.0 s.Stats.min;
  Alcotest.check (Helpers.float_close ()) "max" 5.0 s.Stats.max;
  Alcotest.check (Helpers.float_close ()) "median" 3.0 s.Stats.median;
  Alcotest.check (Helpers.float_close ()) "p25" 2.0 s.Stats.p25;
  Alcotest.check (Helpers.float_close ()) "p75" 4.0 s.Stats.p75;
  Alcotest.check (Helpers.float_close ()) "mean" 3.0 s.Stats.mean

let test_stats_percentile_interpolation () =
  let sorted = [| 0.0; 10.0 |] in
  Alcotest.check (Helpers.float_close ()) "median interpolates" 5.0
    (Stats.percentile 50.0 sorted);
  Alcotest.check (Helpers.float_close ()) "p25" 2.5 (Stats.percentile 25.0 sorted)

let test_stats_single () =
  let s = Stats.summarize [| 7.5 |] in
  Alcotest.check (Helpers.float_close ()) "all equal" 7.5 s.Stats.median;
  Alcotest.check (Helpers.float_close ()) "p25 = value" 7.5 s.Stats.p25

let test_stats_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty array") (fun () ->
      ignore (Stats.summarize [||]))

let test_geomean () =
  Alcotest.check (Helpers.float_close ()) "geomean of 1,4" 2.0 (Stats.geomean [ 1.0; 4.0 ]);
  Alcotest.check (Helpers.float_close ()) "geomean of equal" 3.0
    (Stats.geomean [ 3.0; 3.0; 3.0 ]);
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Stats.geomean: nonpositive element") (fun () ->
      ignore (Stats.geomean [ 1.0; 0.0 ]))

let suite =
  [
    Alcotest.test_case "Iset.of_range" `Quick test_iset_of_range;
    Alcotest.test_case "Iset.to_sorted_list" `Quick test_iset_sorted;
    Alcotest.test_case "Iset.pp" `Quick test_iset_pp;
    Alcotest.test_case "Imap.find_or" `Quick test_imap_find_or;
    Alcotest.test_case "Imap.keys" `Quick test_imap_keys;
    Alcotest.test_case "Rng determinism" `Quick test_rng_deterministic;
    Alcotest.test_case "Rng seed sensitivity" `Quick test_rng_seed_sensitivity;
    Alcotest.test_case "Rng.int range" `Quick test_rng_int_range;
    Alcotest.test_case "Rng.int invalid bound" `Quick test_rng_int_invalid;
    Alcotest.test_case "Rng.float range" `Quick test_rng_float_range;
    Alcotest.test_case "Rng.gaussian moments" `Quick test_rng_gaussian_moments;
    Alcotest.test_case "Rng.copy" `Quick test_rng_copy_independent;
    Alcotest.test_case "Stats.summarize" `Quick test_stats_summary;
    Alcotest.test_case "Stats.percentile interpolation" `Quick test_stats_percentile_interpolation;
    Alcotest.test_case "Stats single sample" `Quick test_stats_single;
    Alcotest.test_case "Stats empty input" `Quick test_stats_empty;
    Alcotest.test_case "Stats.geomean" `Quick test_geomean;
  ]
