module Iset = Kfuse_util.Iset
module Digraph = Kfuse_graph.Digraph
module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Border = Kfuse_image.Border
module Config = Kfuse_fusion.Config
module Driver = Kfuse_fusion.Driver

let digest s = Digest.to_hex (Digest.string s)

(* ---- canonical text rendering ----

   A compact s-expression-ish rendering with three properties: total (no
   pipeline is unrepresentable), injective per constructor (every node
   kind has a distinct tag and explicit delimiters), and float-exact
   (%h renders the bit pattern, so 0.1 +. 0.2 and 0.3 differ). *)

let unop_tag = function
  | Expr.Neg -> "neg"
  | Expr.Abs -> "abs"
  | Expr.Sqrt -> "sqrt"
  | Expr.Exp -> "exp"
  | Expr.Log -> "log"
  | Expr.Sin -> "sin"
  | Expr.Cos -> "cos"
  | Expr.Floor -> "floor"

let binop_tag = function
  | Expr.Add -> "add"
  | Expr.Sub -> "sub"
  | Expr.Mul -> "mul"
  | Expr.Div -> "div"
  | Expr.Min -> "min"
  | Expr.Max -> "max"
  | Expr.Pow -> "pow"

let cmp_tag = function Expr.Lt -> "lt" | Expr.Le -> "le" | Expr.Eq -> "eq"

let border_tag = function
  | Border.Clamp -> "clamp"
  | Border.Mirror -> "mirror"
  | Border.Repeat -> "repeat"
  | Border.Constant f -> Printf.sprintf "const:%h" f
  | Border.Undefined -> "undef"

(* [ren] maps image names to reference strings; identifiers are length-
   prefixed so a name can never masquerade as surrounding syntax. *)
let quote buf s =
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s

(* [alpha] renders let-bound variables as de Bruijn levels, making the
   output invariant under renaming of binders.  The structural paths use
   it because pass-introduced binder names (e.g. CSE temporaries) can
   depend on the kernel names in scope; the exact path keeps names. *)
let rec render_expr buf ~ren ?(alpha = false) ?(env = []) e =
  let b = Buffer.add_string buf in
  let recur = render_expr buf ~ren ~alpha in
  match e with
  | Expr.Const f -> b (Printf.sprintf "(c %h)" f)
  | Expr.Param p ->
    b "(p ";
    quote buf p;
    b ")"
  | Expr.Input { image; dx; dy; border } ->
    b "(in ";
    quote buf (ren image);
    b (Printf.sprintf " %d %d %s)" dx dy (border_tag border))
  | Expr.Var v -> (
    match (alpha, List.assoc_opt v env) with
    | true, Some level -> b (Printf.sprintf "(v %d)" level)
    | _ ->
      b "(v ";
      quote buf v;
      b ")")
  | Expr.Let { var; value; body } ->
    b "(let ";
    if alpha then b (string_of_int (List.length env))
    else quote buf var;
    b " ";
    recur ~env value;
    b " ";
    recur ~env:((var, List.length env) :: env) body;
    b ")"
  | Expr.Unop (op, a) ->
    b "(u ";
    b (unop_tag op);
    b " ";
    recur ~env a;
    b ")"
  | Expr.Binop (op, a, c) ->
    b "(b ";
    b (binop_tag op);
    b " ";
    recur ~env a;
    b " ";
    recur ~env c;
    b ")"
  | Expr.Select { cmp; lhs; rhs; if_true; if_false } ->
    b "(sel ";
    b (cmp_tag cmp);
    List.iter
      (fun e ->
        b " ";
        recur ~env e)
      [ lhs; rhs; if_true; if_false ];
    b ")"
  | Expr.Shift { dx; dy; exchange; body } ->
    b (Printf.sprintf "(sh %d %d " dx dy);
    b (match exchange with None -> "-" | Some m -> border_tag m);
    b " ";
    recur ~env body;
    b ")"

let render_op buf ~ren ?(alpha = false) (op : Kernel.op) =
  match op with
  | Kernel.Map e ->
    Buffer.add_string buf "(map ";
    render_expr buf ~ren ~alpha e;
    Buffer.add_string buf ")"
  | Kernel.Reduce { init; combine; arg } ->
    Buffer.add_string buf (Printf.sprintf "(red %h %s " init (binop_tag combine));
    render_expr buf ~ren ~alpha arg;
    Buffer.add_string buf ")"

(* [sort_inputs] canonicalizes a kernel's declared input list: the body
   is the semantic reference order, the declaration list is a set. *)
let render_kernel buf ~ren ?(sort_inputs = false) ?(alpha = false) (k : Kernel.t) =
  Buffer.add_string buf "(k ";
  let inputs = List.map ren k.Kernel.inputs in
  let inputs = if sort_inputs then List.sort String.compare inputs else inputs in
  List.iter
    (fun i ->
      quote buf i;
      Buffer.add_char buf ' ')
    inputs;
  render_op buf ~ren ~alpha k.Kernel.op;
  Buffer.add_string buf ")"

let render_params buf ~sorted params =
  let params =
    if sorted then List.sort (fun (a, _) (b, _) -> String.compare a b) params else params
  in
  List.iter
    (fun (name, v) ->
      Buffer.add_string buf "(par ";
      quote buf name;
      Buffer.add_string buf (Printf.sprintf " %h)" v))
    params

(* [sort_inputs] canonicalizes the pipeline's input declaration list:
   inputs are bound by name, so their declaration order is irrelevant to
   every consumer of the fingerprint (the driver, the benefit model, the
   interpreter).  The exact fingerprint keeps declaration order; the
   structural one sorts, so permuting the [inputs] clause cannot change
   a plan's address. *)
let render_header buf ~with_name ?(sort_inputs = false) (p : Pipeline.t) =
  if with_name then begin
    Buffer.add_string buf "(pipe ";
    quote buf p.Pipeline.name;
    Buffer.add_string buf ")"
  end;
  Buffer.add_string buf
    (Printf.sprintf "(is %d %d %d)" p.Pipeline.width p.Pipeline.height p.Pipeline.channels);
  let inputs =
    if sort_inputs then List.sort String.compare p.Pipeline.inputs else p.Pipeline.inputs
  in
  List.iter
    (fun i ->
      Buffer.add_string buf "(inp ";
      quote buf i;
      Buffer.add_string buf ")")
    inputs

(* ---- exact fingerprint ---- *)

let exact (p : Pipeline.t) =
  let buf = Buffer.create 1024 in
  render_header buf ~with_name:true p;
  render_params buf ~sorted:false p.Pipeline.params;
  Array.iter
    (fun (k : Kernel.t) ->
      Buffer.add_string buf "(def ";
      quote buf k.Kernel.name;
      Buffer.add_char buf ' ';
      render_kernel buf ~ren:Fun.id k;
      Buffer.add_string buf ")")
    p.Pipeline.kernels;
  digest (Buffer.contents buf)

(* ---- canonical (structural) fingerprint ----

   Kernel names are replaced by content references: each kernel is hashed
   with every image read rendered as either the external input's own name
   or the producing kernel's content hash.  Byte-identical twin kernels
   are disambiguated by a per-hash counter in stored (topological) order.
   Canonical names are then assigned by sorted (hash, twin-index) rank,
   which no user identifier can collide with (the prefix is a control
   character the DSL lexer cannot produce). *)

let kernel_hashes (p : Pipeline.t) =
  let n = Pipeline.num_kernels p in
  let hash = Array.make n "" in
  let twin = Array.make n 0 in
  let counts = Hashtbl.create (max 16 n) in
  for i = 0 to n - 1 do
    let ren img =
      match Pipeline.producer p img with
      | Some j -> Printf.sprintf "#%s.%d" hash.(j) twin.(j)
      | None -> "$" ^ img
    in
    let buf = Buffer.create 256 in
    render_kernel buf ~ren ~sort_inputs:true ~alpha:true (Pipeline.kernel p i);
    let h = digest (Buffer.contents buf) in
    let c = Option.value ~default:0 (Hashtbl.find_opt counts h) in
    Hashtbl.replace counts h (c + 1);
    hash.(i) <- h;
    twin.(i) <- c
  done;
  Array.init n (fun i -> (hash.(i), twin.(i)))

let canonical_names (p : Pipeline.t) =
  let hashes = kernel_hashes p in
  let n = Array.length hashes in
  let ranked =
    List.sort compare (List.init n (fun i -> (fst hashes.(i), snd hashes.(i), i)))
  in
  let names = Array.make n "" in
  List.iteri (fun rank (_, _, i) -> names.(i) <- Printf.sprintf "\001%d" rank) ranked;
  names

(* Rebuild [p] under canonical kernel names and sorted params so the
   normalization passes see a name-independent pipeline. *)
let rename_pipeline (p : Pipeline.t) names =
  let ren img =
    match Pipeline.producer p img with Some j -> names.(j) | None -> img
  in
  let kernels =
    Array.to_list
      (Array.mapi
         (fun i (k : Kernel.t) ->
           let op =
             match k.Kernel.op with
             | Kernel.Map e -> Kernel.Map (Expr.rename_images ren e)
             | Kernel.Reduce { init; combine; arg } ->
               Kernel.Reduce { init; combine; arg = Expr.rename_images ren arg }
           in
           Kernel.create ~name:names.(i) ~inputs:(List.map ren k.Kernel.inputs) op)
         p.Pipeline.kernels)
  in
  Pipeline.create ~name:"canonical" ~width:p.Pipeline.width ~height:p.Pipeline.height
    ~channels:p.Pipeline.channels
    ~params:(List.sort (fun (a, _) (b, _) -> String.compare a b) p.Pipeline.params)
    ~inputs:p.Pipeline.inputs kernels

let render_canonical buf (p : Pipeline.t) =
  render_header buf ~with_name:false ~sort_inputs:true p;
  render_params buf ~sorted:true p.Pipeline.params;
  let defs =
    Array.to_list p.Pipeline.kernels
    |> List.map (fun (k : Kernel.t) ->
           let buf = Buffer.create 256 in
           Buffer.add_string buf "(def ";
           quote buf k.Kernel.name;
           Buffer.add_char buf ' ';
           render_kernel buf ~ren:Fun.id ~sort_inputs:true ~alpha:true k;
           Buffer.add_string buf ")";
           Buffer.contents buf)
    |> List.sort String.compare
  in
  List.iter (Buffer.add_string buf) defs

let structural (p : Pipeline.t) =
  let buf = Buffer.create 1024 in
  (match
     let renamed = rename_pipeline p (canonical_names p) in
     (* Normalize so algebraically-equal bodies share an address; the
        passes run on canonical names, making their choices (e.g. which
        CSE candidate wins a size tie) rename-independent. *)
     let normalized =
       try Kfuse_ir.Cse.pipeline (Kfuse_ir.Simplify.pipeline renamed)
       with _ -> renamed
     in
     (* Re-rank on the *normalized* bodies: the first ranking ordered
        kernels by pre-normalization content, so two pipelines whose
        bodies only differ in simplifiable structure would otherwise
        carry different rank names into the render (found by the
        fuzzer's kernel-duplication metamorphic oracle). *)
     rename_pipeline normalized (canonical_names normalized)
   with
  | renamed -> render_canonical buf renamed
  | exception _ ->
    (* Canonical reconstruction itself failed (e.g. a user identifier
       colliding with the reserved prefix): render the original with
       on-the-fly renaming, skipping normalization. *)
    let names = canonical_names p in
    let ren img =
      match Pipeline.producer p img with Some j -> names.(j) | None -> img
    in
    render_header buf ~with_name:false ~sort_inputs:true p;
    render_params buf ~sorted:true p.Pipeline.params;
    let defs =
      Array.to_list p.Pipeline.kernels
      |> List.mapi (fun i (k : Kernel.t) ->
             let buf = Buffer.create 256 in
             Buffer.add_string buf "(def ";
             quote buf names.(i);
             Buffer.add_char buf ' ';
             render_kernel buf ~ren ~sort_inputs:true ~alpha:true k;
             Buffer.add_string buf ")";
             Buffer.contents buf)
      |> List.sort String.compare
    in
    List.iter (Buffer.add_string buf) defs);
  digest (Buffer.contents buf)

(* ---- config + request key ---- *)

let config (c : Config.t) =
  Printf.sprintf "tg=%h ts=%h c_alu=%h c_sfu=%h gamma=%h epsilon=%h c_mshared=%h bx=%d by=%d is=%s"
    c.Config.tg c.Config.ts c.Config.c_alu c.Config.c_sfu c.Config.gamma
    c.Config.epsilon c.Config.c_mshared c.Config.block.Kfuse_ir.Cost.bx
    c.Config.block.Kfuse_ir.Cost.by
    (match c.Config.is_unit with Config.Images -> "images" | Config.Pixels -> "pixels")

type key = { structural : string; exact : string }

(* Bump when the rendering, the report type, or the driver semantics
   change incompatibly: old cache entries must stop matching.
   v2: the structural render sorts the input declaration list and
   re-ranks canonical kernel names after normalization (both found by
   the fuzzer's metamorphic oracles). *)
let format_version = 2

let plan_key ~config:c ~strategy ?(exchange = true) ?(optimize = false) ?(inline = false)
    (p : Pipeline.t) =
  let request =
    Printf.sprintf "v%d %s strat=%s ex=%b opt=%b inl=%b" format_version (config c)
      (Driver.strategy_to_string strategy)
      exchange optimize inline
  in
  {
    structural = digest (structural p ^ "\n" ^ request);
    exact = digest (exact p ^ "\n" ^ request);
  }

(* ---- per-subgraph fingerprint (incremental replanning) ----

   Renders, for a block of kernel indices, exactly the facts the min-cut
   recursion's per-block decision is a function of: the iteration space,
   the per-kernel content hashes in ascending index order (twin-qualified
   producer references pin the intra-block aliasing of every externally
   produced image), whether each kernel's output leaves the block, and
   the in-block edges by dense position.  Index order matters: equal
   fingerprints imply the positional bijection between two blocks is an
   order-preserving isomorphism, which is what makes Stoer-Wagner's
   tie-breaks (dense ascending-index order) replay identically. *)

let subgraph ?hashes (p : Pipeline.t) block =
  let hashes = match hashes with Some h -> h | None -> kernel_hashes p in
  let g = Pipeline.dag p in
  let verts = Array.of_list (Iset.elements block) in
  let pos = Hashtbl.create (max 16 (2 * Array.length verts)) in
  Array.iteri (fun i v -> Hashtbl.replace pos v i) verts;
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "(sg %d %d %d %d" p.Pipeline.width p.Pipeline.height
       p.Pipeline.channels (Array.length verts));
  Array.iter
    (fun v ->
      let h, t = hashes.(v) in
      let succs = Digraph.succs g v in
      let leaving = Iset.is_empty succs || not (Iset.subset succs block) in
      Buffer.add_string buf (Printf.sprintf "(k %s.%d %b" h t leaving);
      Iset.iter
        (fun s ->
          match Hashtbl.find_opt pos s with
          | Some j -> Buffer.add_string buf (Printf.sprintf " >%d" j)
          | None -> ())
        succs;
      Buffer.add_char buf ')')
    verts;
  Buffer.add_char buf ')';
  digest (Buffer.contents buf)
