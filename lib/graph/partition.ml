module Iset = Kfuse_util.Iset

type t = Iset.t list

let normalize p =
  p
  |> List.filter (fun b -> not (Iset.is_empty b))
  |> List.sort (fun a b -> compare (Iset.min_elt a) (Iset.min_elt b))

let singletons g =
  Digraph.fold_vertices (fun v acc -> Iset.singleton v :: acc) g [] |> normalize

type invalid =
  | Empty_block
  | Overlap of int
  | Uncovered of int
  | Unknown_vertex of int

let invalid_to_string = function
  | Empty_block -> "a block is empty"
  | Overlap v -> Printf.sprintf "vertex %d appears in more than one block" v
  | Uncovered v -> Printf.sprintf "vertex %d is in no block" v
  | Unknown_vertex v -> Printf.sprintf "block mentions vertex %d, which is not in the graph" v

let validate g p =
  let vertices = Digraph.vertices g in
  let rec scan seen = function
    | [] -> (
      match Iset.min_elt_opt (Iset.diff vertices seen) with
      | Some v -> Error (Uncovered v)
      | None -> Ok ())
    | b :: rest ->
      if Iset.is_empty b then Error Empty_block
      else (
        match Iset.min_elt_opt (Iset.diff b vertices) with
        | Some v -> Error (Unknown_vertex v)
        | None -> (
          match Iset.min_elt_opt (Iset.inter b seen) with
          | Some v -> Error (Overlap v)
          | None -> scan (Iset.union seen b) rest))
  in
  scan Iset.empty p

let is_valid g p = match validate g p with Ok () -> true | Error _ -> false

let block_of p v =
  match List.find_opt (fun b -> Iset.mem v b) p with
  | Some b -> b
  | None -> raise Not_found

let block_weight weight g block =
  Digraph.fold_edges
    (fun u v acc ->
      if Iset.mem u block && Iset.mem v block then acc +. weight u v else acc)
    g 0.0

let objective weight g p =
  List.fold_left (fun acc b -> acc +. block_weight weight g b) 0.0 p

let crossing_weight weight g p =
  Digraph.fold_edges
    (fun u v acc ->
      let same =
        List.exists (fun b -> Iset.mem u b && Iset.mem v b) p
      in
      if same then acc else acc +. weight u v)
    g 0.0

let stitch parts = normalize (List.concat parts)

let restrict p vs =
  normalize (List.map (fun b -> Iset.inter b vs) p)

let equal p q =
  let p = normalize p and q = normalize q in
  List.length p = List.length q && List.for_all2 Iset.equal p q

let pp ppf p =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") Iset.pp)
    (normalize p)
