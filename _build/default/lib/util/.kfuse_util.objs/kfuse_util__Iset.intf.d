lib/util/iset.mli: Format Set
