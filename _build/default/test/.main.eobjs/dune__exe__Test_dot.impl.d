test/test_dot.ml: Alcotest Kfuse_apps Kfuse_codegen Kfuse_fusion Kfuse_ir List Printf String
