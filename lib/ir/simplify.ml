let apply_unop op v =
  match op with
  | Expr.Neg -> Some (-.v)
  | Expr.Abs -> Some (Float.abs v)
  | Expr.Sqrt -> Some (sqrt v)
  | Expr.Exp -> Some (exp v)
  | Expr.Log -> Some (log v)
  | Expr.Sin -> Some (sin v)
  | Expr.Cos -> Some (cos v)
  | Expr.Floor -> Some (Float.floor v)

let apply_binop op a b =
  match op with
  | Expr.Add -> a +. b
  | Expr.Sub -> a -. b
  | Expr.Mul -> a *. b
  | Expr.Div -> a /. b
  | Expr.Min -> Float.min a b
  | Expr.Max -> Float.max a b
  | Expr.Pow -> Float.pow a b

let is_const c = function Expr.Const x -> Float.equal x c | _ -> false

(* Occurrence count of [v] as a free variable in [e]. *)
let rec var_uses v e =
  match e with
  | Expr.Var w -> if String.equal v w then 1 else 0
  | Expr.Const _ | Expr.Param _ | Expr.Input _ -> 0
  | Expr.Let { var; value; body } ->
    var_uses v value + if String.equal var v then 0 else var_uses v body
  | Expr.Unop (_, a) -> var_uses v a
  | Expr.Binop (_, a, b) -> var_uses v a + var_uses v b
  | Expr.Select { lhs; rhs; if_true; if_false; _ } ->
    var_uses v lhs + var_uses v rhs + var_uses v if_true + var_uses v if_false
  | Expr.Shift { body; _ } -> var_uses v body

(* Occurrences of [v] that sit under a [Shift] inside [e].  Inlining a
   position-dependent value there would re-evaluate it at the shifted
   position and change meaning. *)
let rec var_uses_under_shift v e =
  match e with
  | Expr.Var _ | Expr.Const _ | Expr.Param _ | Expr.Input _ -> 0
  | Expr.Let { var; value; body } ->
    var_uses_under_shift v value
    + if String.equal var v then 0 else var_uses_under_shift v body
  | Expr.Unop (_, a) -> var_uses_under_shift v a
  | Expr.Binop (_, a, b) -> var_uses_under_shift v a + var_uses_under_shift v b
  | Expr.Select { lhs; rhs; if_true; if_false; _ } ->
    var_uses_under_shift v lhs + var_uses_under_shift v rhs
    + var_uses_under_shift v if_true + var_uses_under_shift v if_false
  | Expr.Shift { body; _ } -> var_uses v body

(* Substitute [value] for free occurrences of [v].  Only used when the
   value is trivial (a constant or another variable), so no capture or
   duplication concerns beyond shadowing. *)
let rec subst_var v value e =
  match e with
  | Expr.Var w -> if String.equal v w then value else e
  | Expr.Const _ | Expr.Param _ | Expr.Input _ -> e
  | Expr.Let { var; value = bound; body } ->
    let bound = subst_var v value bound in
    let body = if String.equal var v then body else subst_var v value body in
    Expr.Let { var; value = bound; body }
  | Expr.Unop (op, a) -> Expr.Unop (op, subst_var v value a)
  | Expr.Binop (op, a, b) -> Expr.Binop (op, subst_var v value a, subst_var v value b)
  | Expr.Select { cmp; lhs; rhs; if_true; if_false } ->
    Expr.Select
      {
        cmp;
        lhs = subst_var v value lhs;
        rhs = subst_var v value rhs;
        if_true = subst_var v value if_true;
        if_false = subst_var v value if_false;
      }
  | Expr.Shift { dx; dy; exchange; body } ->
    Expr.Shift { dx; dy; exchange; body = subst_var v value body }

let rec rewrite e =
  match e with
  | Expr.Const _ | Expr.Param _ | Expr.Input _ | Expr.Var _ -> e
  | Expr.Unop (op, a) -> (
    let a = rewrite a in
    match (op, a) with
    | _, Expr.Const c -> (
      match apply_unop op c with Some v -> Expr.Const v | None -> Expr.Unop (op, a))
    | Expr.Neg, Expr.Unop (Expr.Neg, inner) -> inner
    | Expr.Abs, Expr.Unop (Expr.Abs, _) -> a
    | _ -> Expr.Unop (op, a))
  | Expr.Binop (op, a, b) -> (
    let a = rewrite a and b = rewrite b in
    match (op, a, b) with
    | _, Expr.Const x, Expr.Const y -> Expr.Const (apply_binop op x y)
    | Expr.Add, x, c when is_const 0.0 c -> x
    | Expr.Add, c, x when is_const 0.0 c -> x
    | Expr.Sub, x, c when is_const 0.0 c -> x
    | Expr.Mul, x, c when is_const 1.0 c -> x
    | Expr.Mul, c, x when is_const 1.0 c -> x
    | Expr.Mul, _, c when is_const 0.0 c -> Expr.Const 0.0
    | Expr.Mul, c, _ when is_const 0.0 c -> Expr.Const 0.0
    | Expr.Div, x, c when is_const 1.0 c -> x
    | Expr.Pow, x, c when is_const 1.0 c -> x
    | Expr.Pow, _, c when is_const 0.0 c -> Expr.Const 1.0
    | _ -> Expr.Binop (op, a, b))
  | Expr.Select { cmp; lhs; rhs; if_true; if_false } -> (
    let lhs = rewrite lhs and rhs = rewrite rhs in
    let if_true = rewrite if_true and if_false = rewrite if_false in
    match (lhs, rhs) with
    | Expr.Const x, Expr.Const y ->
      let taken =
        match cmp with
        | Expr.Lt -> x < y
        | Expr.Le -> x <= y
        | Expr.Eq -> Float.equal x y
      in
      if taken then if_true else if_false
    | _ ->
      if Expr.equal if_true if_false then if_true
      else Expr.Select { cmp; lhs; rhs; if_true; if_false })
  | Expr.Let { var; value; body } -> (
    let value = rewrite value and body = rewrite body in
    match var_uses var body with
    | 0 -> body
    | uses -> (
      match value with
      (* Constants, parameters and variables denote the same value at any
         position: inline them freely.  Other values may be inlined only
         when used once and not under a Shift (which would re-evaluate
         them at a shifted position). *)
      | Expr.Const _ | Expr.Var _ | Expr.Param _ -> rewrite (subst_var var value body)
      | _ when uses = 1 && var_uses_under_shift var body = 0 ->
        rewrite (subst_var var value body)
      | _ -> Expr.Let { var; value; body }))
  | Expr.Shift { dx = 0; dy = 0; exchange = _; body } ->
    (* A zero shift is the identity: the unshifted position is always
       inside the iteration space, so any exchange resolves to it. *)
    rewrite body
  | Expr.Shift { dx; dy; exchange; body } -> (
    let body = rewrite body in
    match (body, exchange) with
    (* A position-independent body passes through remapping exchanges;
       not through Constant (out-of-bounds yields the padding constant,
       not the body) nor Undefined (which must keep failing). *)
    | ( (Expr.Const _ | Expr.Param _),
        (None | Some (Kfuse_image.Border.Clamp | Kfuse_image.Border.Mirror | Kfuse_image.Border.Repeat)) )
      -> body
    | _ -> Expr.Shift { dx; dy; exchange; body })

let rec expr e =
  let e' = rewrite e in
  if Expr.equal e e' then e' else expr e'

let kernel (k : Kernel.t) =
  match k.Kernel.op with
  | Kernel.Map body ->
    let body = expr body in
    Kernel.map ~name:k.Kernel.name ~inputs:(Expr.images body) body
  | Kernel.Reduce { init; combine; arg } ->
    let arg = expr arg in
    Kernel.reduce ~name:k.Kernel.name ~inputs:(Expr.images arg) ~init ~combine arg

(* Simplifying a body can erase its last read of a producer (e.g.
   [0 * k]).  Left in place, that producer would have no consumers and
   silently join the output set; drop newly-dead interior kernels
   (transitively) so simplification preserves the observable outputs. *)
let drop_dead ~(keep : string list) (p : Pipeline.t) =
  let rec go (p : Pipeline.t) =
    let dead =
      List.filter
        (fun i ->
          let k = Pipeline.kernel p i in
          Kfuse_util.Iset.is_empty (Pipeline.consumers p i)
          && not (List.mem k.Kernel.name keep))
        (List.init (Pipeline.num_kernels p) Fun.id)
    in
    if dead = [] then p
    else
      go
        (Pipeline.with_kernels p
           (List.filteri
              (fun i _ -> not (List.mem i dead))
              (Array.to_list p.Pipeline.kernels)))
  in
  go p

let pipeline (p : Pipeline.t) =
  let keep =
    List.filter_map
      (fun i ->
        if Kfuse_util.Iset.is_empty (Pipeline.consumers p i) then
          Some (Pipeline.kernel p i).Kernel.name
        else None)
      (List.init (Pipeline.num_kernels p) Fun.id)
  in
  drop_dead ~keep
    (Pipeline.with_kernels p (List.map kernel (Array.to_list p.Pipeline.kernels)))
