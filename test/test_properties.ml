(* Property-based tests (qcheck, registered through QCheck_alcotest).

   The heavyweight invariants live here: Stoer-Wagner against brute
   force, Algorithm 1 postconditions on random pipelines, and semantic
   preservation of the fusion transform on random pipelines and images. *)

module F = Kfuse_fusion
module Iset = Kfuse_util.Iset
module Wgraph = Kfuse_graph.Wgraph
module Sw = Kfuse_graph.Stoer_wagner
module Partition = Kfuse_graph.Partition
module Digraph = Kfuse_graph.Digraph
module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Eval = Kfuse_ir.Eval
module Image = Kfuse_image.Image
module Border = Kfuse_image.Border
module Mask = Kfuse_image.Mask
module Region = Kfuse_image.Region

let config = F.Config.default

(* ---- generators ---- *)

(* A connected random weighted graph: a spanning path plus extra edges. *)
let wgraph_gen =
  QCheck.Gen.(
    let* n = int_range 2 8 in
    let* extra = list_size (int_range 0 10) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) in
    let* weights = list_repeat (n + 10) (float_range 0.1 10.0) in
    let weights = Array.of_list weights in
    let g = ref Wgraph.empty in
    let wi = ref 0 in
    let next_w () =
      let w = weights.(!wi mod Array.length weights) in
      incr wi;
      w
    in
    for i = 0 to n - 2 do
      g := Wgraph.add_edge !g i (i + 1) (next_w ())
    done;
    List.iter (fun (u, v) -> if u <> v then g := Wgraph.add_edge !g u v (next_w ())) extra;
    return !g)

let wgraph_arb =
  QCheck.make wgraph_gen ~print:(fun g -> Format.asprintf "%a" Wgraph.pp g)

(* Random pipelines: a chain of 2-6 kernels over one input, mixing point
   arithmetic, shared-input reads, and 3x3 convolutions with random
   borders.  Every kernel reads at least one prior image, so the DAG is
   connected enough to exercise the algorithms. *)
let border_gen =
  QCheck.Gen.oneofl [ Border.Clamp; Border.Mirror; Border.Repeat; Border.Constant 0.5 ]

let pipeline_gen =
  QCheck.Gen.(
    let* n = int_range 2 6 in
    let* seeds = list_repeat n (pair (int_range 0 2) (pair (int_range 0 100) border_gen)) in
    let kernels = ref [] in
    let names = ref [ "in" ] in
    List.iteri
      (fun i (kind, (pick, border)) ->
        let name = Printf.sprintf "k%d" i in
        let prev = List.nth !names (pick mod List.length !names) in
        let body =
          match kind with
          | 0 ->
            (* point arithmetic on one prior image + the pipeline input *)
            Expr.(input prev + (input "in" * Const 0.5))
          | 1 ->
            (* squaring point kernel *)
            Expr.(input prev * input prev)
          | _ ->
            (* 3x3 convolution with a random border mode *)
            Expr.conv ~border Mask.gaussian_3x3 prev
        in
        let inputs = Expr.images body in
        kernels := Kernel.map ~name ~inputs body :: !kernels;
        names := name :: !names)
      seeds;
    return (List.rev !kernels))

let pipeline_of_kernels kernels =
  Pipeline.create ~name:"rand" ~width:13 ~height:11 ~inputs:[ "in" ] kernels

let pipeline_arb =
  QCheck.make pipeline_gen ~print:(fun ks ->
      Format.asprintf "%a" Pipeline.pp (pipeline_of_kernels ks))

(* ---- properties ---- *)

let prop_stoer_wagner_matches_brute =
  QCheck.Test.make ~count:200 ~name:"Stoer-Wagner = brute-force min cut" wgraph_arb
    (fun g ->
      let w_exact, side = Sw.min_cut g in
      let w_brute, _ = Sw.min_cut_brute g in
      Float.abs (w_exact -. w_brute) < 1e-6
      && Float.abs (Wgraph.cut_weight g side -. w_exact) < 1e-6)

let prop_mincut_partition_valid =
  QCheck.Test.make ~count:200 ~name:"Algorithm 1 yields a valid legal partition"
    pipeline_arb (fun kernels ->
      let p = pipeline_of_kernels kernels in
      let r = F.Mincut_fusion.run config p in
      let g = Pipeline.dag p in
      Partition.is_valid g r.F.Mincut_fusion.partition
      && List.for_all
           (fun b ->
             Iset.cardinal b = 1
             || F.Mincut_fusion.block_legal config p r.F.Mincut_fusion.edges b)
           r.F.Mincut_fusion.partition)

let prop_objective_conservation =
  QCheck.Test.make ~count:200 ~name:"Eq. 13: beta + crossing = total weight"
    pipeline_arb (fun kernels ->
      let p = pipeline_of_kernels kernels in
      let r = F.Mincut_fusion.run config p in
      let weight u v =
        match
          List.find_opt
            (fun (e : F.Benefit.edge_report) -> e.F.Benefit.src = u && e.F.Benefit.dst = v)
            r.F.Mincut_fusion.edges
        with
        | Some e -> e.F.Benefit.weight
        | None -> 0.0
      in
      let g = Pipeline.dag p in
      let total =
        List.fold_left (fun acc (u, v) -> acc +. weight u v) 0.0 (Digraph.edges g)
      in
      let beta = Partition.objective weight g r.F.Mincut_fusion.partition in
      let crossing = Partition.crossing_weight weight g r.F.Mincut_fusion.partition in
      Float.abs (total -. (beta +. crossing)) < 1e-6)

let run_all (p : Pipeline.t) env = Eval.run_outputs p env

let prop_fusion_preserves_semantics =
  QCheck.Test.make ~count:120 ~name:"fusion preserves interpreter semantics"
    (QCheck.pair pipeline_arb QCheck.small_int) (fun (kernels, seed) ->
      let p = pipeline_of_kernels kernels in
      let rng = Kfuse_util.Rng.create seed in
      let img = Image.random rng ~width:13 ~height:11 ~lo:0.0 ~hi:1.0 in
      let env = Eval.env_of_list [ ("in", img) ] in
      let reference = run_all p env in
      List.for_all
        (fun s ->
          let r = F.Driver.run config s p in
          let outs = run_all r.F.Driver.fused env in
          List.for_all2
            (fun (_, a) (_, b) -> Image.max_abs_diff a b < 1e-6)
            reference outs)
        F.Driver.all_strategies)

let prop_forced_pair_fusion_exact =
  (* Even ignoring profitability: force-fusing any legal pair preserves
     semantics (exercises local-to-local paths the strategies avoid). *)
  QCheck.Test.make ~count:120 ~name:"forced legal pair fusion is exact"
    (QCheck.pair pipeline_arb QCheck.small_int) (fun (kernels, seed) ->
      let p = pipeline_of_kernels kernels in
      let g = Pipeline.dag p in
      let rng = Kfuse_util.Rng.create (seed + 17) in
      let img = Image.random rng ~width:13 ~height:11 ~lo:0.0 ~hi:1.0 in
      let env = Eval.env_of_list [ ("in", img) ] in
      let reference = run_all p env in
      List.for_all
        (fun (u, v) ->
          let block = Iset.of_list [ u; v ] in
          match F.Legality.check config p block with
          | Error _ -> true
          | Ok () ->
            let rest =
              Digraph.fold_vertices
                (fun w acc -> if w = u || w = v then acc else Iset.singleton w :: acc)
                g []
            in
            let fused = F.Transform.apply p (block :: rest) in
            let outs = run_all fused env in
            List.for_all2
              (fun (_, a) (_, b) -> Image.max_abs_diff a b < 1e-6)
              reference outs)
        (Digraph.edges g))

let prop_border_axis_in_range =
  QCheck.Test.make ~count:500 ~name:"border axis resolution lands in range"
    QCheck.(triple (int_range 1 20) (int_range (-100) 100) (int_range 0 2))
    (fun (n, i, mode_idx) ->
      let mode = List.nth [ Border.Clamp; Border.Mirror; Border.Repeat ] mode_idx in
      match Border.resolve_axis mode n i with
      | Some j -> j >= 0 && j < n
      | None -> false)

let prop_border_identity_inside =
  QCheck.Test.make ~count:500 ~name:"in-range coordinates resolve to themselves"
    QCheck.(pair (int_range 1 20) (int_range 0 2))
    (fun (n, mode_idx) ->
      let mode = List.nth [ Border.Clamp; Border.Mirror; Border.Repeat ] mode_idx in
      List.for_all (fun i -> Border.resolve_axis mode n i = Some i)
        (List.init n (fun i -> i)))

let prop_region_tiling =
  QCheck.Test.make ~count:300 ~name:"interior + halo tile the image"
    QCheck.(triple (int_range 1 30) (int_range 1 30) (int_range 0 5))
    (fun (width, height, radius) ->
      let interior = Region.interior_count ~width ~height ~radius in
      let halo = Region.halo_count ~width ~height ~radius in
      (* counts agree with pointwise classification *)
      let counted = ref 0 in
      for y = 0 to height - 1 do
        for x = 0 to width - 1 do
          match Region.classify ~width ~height ~radius x y with
          | Region.Interior -> incr counted
          | Region.Halo | Region.Exterior -> ()
        done
      done;
      interior + halo = width * height && !counted = interior)

let prop_grown_mask_consistent =
  QCheck.Test.make ~count:100 ~name:"Eq. 9 equals radius addition"
    QCheck.(pair (int_range 0 4) (int_range 0 4))
    (fun (r_src, r_dst) ->
      let w_src = (2 * r_src) + 1 and w_dst = (2 * r_dst) + 1 in
      let g =
        F.Benefit.grown_mask_area ~sz_src:(w_src * w_src) ~sz_dst:(w_dst * w_dst)
      in
      let fused_width = (2 * (r_src + r_dst)) + 1 in
      g = fused_width * fused_width)

let prop_stats_ordering =
  QCheck.Test.make ~count:300 ~name:"summary statistics are ordered"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (float_range 0.0 100.0))
    (fun samples ->
      let s = Kfuse_util.Stats.summarize (Array.of_list samples) in
      let open Kfuse_util.Stats in
      s.min <= s.p25 && s.p25 <= s.median && s.median <= s.p75 && s.p75 <= s.max
      && s.min <= s.mean && s.mean <= s.max)

let prop_compile_matches_interpreter =
  (* The closure compiler against the tree-walking specification, on the
     bodies of fused pipelines (which contain Shift/Let/exchange). *)
  QCheck.Test.make ~count:100 ~name:"Compile.expr = Eval.eval_expr"
    (QCheck.pair pipeline_arb QCheck.small_int) (fun (kernels, seed) ->
      let p = pipeline_of_kernels kernels in
      let fused = (F.Driver.run config F.Driver.Mincut p).F.Driver.fused in
      let rng = Kfuse_util.Rng.create (seed + 31) in
      let img = Image.random rng ~width:13 ~height:11 ~lo:0.0 ~hi:1.0 in
      let env = Eval.env_of_list [ ("in", img) ] in
      (* Interpret stage by stage with the tree walker and compare the
         compiled closure on a sample of positions. *)
      let params = fused.Pipeline.params in
      let full = Eval.run fused env in
      Array.for_all
        (fun (k : Kernel.t) ->
          match k.Kernel.op with
          | Kernel.Reduce _ -> true
          | Kernel.Map body ->
            let inputs_env =
              List.fold_left
                (fun acc name -> Eval.Env.add name (Eval.Env.find name full) acc)
                Eval.Env.empty k.Kernel.inputs
            in
            let c =
              Kfuse_ir.Compile.expr ~width:13 ~height:11 ~params
                ~lookup:(fun n -> Eval.Env.find n inputs_env)
                body
            in
            let slots = Kfuse_ir.Compile.scratch c in
            List.for_all
              (fun (x, y) ->
                let a = c.Kfuse_ir.Compile.eval slots x y in
                let b =
                  Eval.eval_expr ~env:inputs_env ~params ~width:13 ~height:11 ~x ~y body
                in
                Float.equal a b || Float.abs (a -. b) < 1e-12)
              [ (0, 0); (12, 0); (0, 10); (12, 10); (6, 5); (3, 7) ])
        fused.Pipeline.kernels)

let prop_mincut_near_oracle =
  QCheck.Test.make ~count:60 ~name:"Algorithm 1 bounded by the exhaustive optimum"
    pipeline_arb (fun kernels ->
      let p = pipeline_of_kernels kernels in
      let heuristic = (F.Mincut_fusion.run config p).F.Mincut_fusion.objective in
      let optimal = F.Exhaustive_fusion.optimal_objective config p in
      heuristic <= optimal +. 1e-9)

let prop_opt_passes_preserve_semantics =
  QCheck.Test.make ~count:120 ~name:"simplify + cse preserve semantics"
    (QCheck.pair pipeline_arb QCheck.small_int) (fun (kernels, seed) ->
      let p = pipeline_of_kernels kernels in
      let rng = Kfuse_util.Rng.create (seed + 99) in
      let img = Image.random rng ~width:13 ~height:11 ~lo:0.0 ~hi:1.0 in
      let env = Eval.env_of_list [ ("in", img) ] in
      (* Optimize the *fused* pipeline: its bodies exercise Shift/Let. *)
      let fused = (F.Driver.run config F.Driver.Mincut p).F.Driver.fused in
      let optimized = Kfuse_ir.Cse.pipeline (Kfuse_ir.Simplify.pipeline fused) in
      let a = run_all fused env and b = run_all optimized env in
      List.for_all2 (fun (_, x) (_, y) -> Image.max_abs_diff x y < 1e-6) a b)

let prop_simplify_never_grows =
  QCheck.Test.make ~count:200 ~name:"simplify never grows an expression"
    pipeline_arb (fun kernels ->
      let p = pipeline_of_kernels kernels in
      Array.for_all
        (fun (k : Kernel.t) ->
          match k.Kernel.op with
          | Kernel.Map e -> Expr.size (Kfuse_ir.Simplify.expr e) <= Expr.size e
          | Kernel.Reduce _ -> true)
        p.Pipeline.kernels)

let prop_transform_radius_additive =
  QCheck.Test.make ~count:50 ~name:"fused chain radius is the sum of radii"
    (QCheck.pair (QCheck.int_range 0 2) (QCheck.int_range 0 2))
    (fun (r1, r2) ->
      let mask r = if r = 0 then None else Some (Mask.mean ((2 * r) + 1)) in
      let body name r =
        match mask r with
        | None -> Expr.(input name * Const 2.0)
        | Some m -> Expr.conv m name
      in
      let p =
        Pipeline.create ~name:"chain" ~width:16 ~height:16 ~inputs:[ "in" ]
          [
            Kernel.map ~name:"a" ~inputs:[ "in" ] (body "in" r1);
            Kernel.map ~name:"b" ~inputs:[ "a" ] (body "a" r2);
          ]
      in
      let fused = F.Transform.fuse_block p (Iset.of_list [ 0; 1 ]) in
      Kernel.radius fused = r1 + r2)

let prop_dsl_parser_total =
  (* The parser is total: arbitrary input either parses or reports a
     positioned error — it never raises anything else or loops. *)
  QCheck.Test.make ~count:500 ~name:"DSL parser is total on junk"
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 200) QCheck.Gen.printable)
    (fun src ->
      match Kfuse_dsl.Parser.parse_result src with Ok _ | Error _ -> true)

let prop_dsl_parser_total_tokens =
  (* Same, over strings built from DSL-ish fragments (more likely to get
     deep into the grammar than raw printable noise). *)
  QCheck.Test.make ~count:500 ~name:"DSL parser is total on token soup"
    QCheck.(
      list_of_size (QCheck.Gen.int_range 0 40)
        (QCheck.oneofl
           [ "pipeline"; "size"; "param"; "let"; "in"; "reduce"; "conv"; "select";
             "("; ")"; "{"; "}"; "["; "]"; ","; "="; "@"; ":"; "+"; "-"; "*"; "/";
             "x"; "img"; "3"; "2.5"; "gauss3"; "clamp"; "sum" ]))
    (fun tokens ->
      let src = String.concat " " tokens in
      match Kfuse_dsl.Parser.parse_result src with Ok _ | Error _ -> true)

let prop_pgm_decoder_total =
  QCheck.Test.make ~count:500 ~name:"PGM decoder is total"
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 300) QCheck.Gen.char)
    (fun data ->
      match Kfuse_image.Pgm.of_string data with
      | _ -> true
      | exception Invalid_argument _ -> true)

let prop_pgm_roundtrip =
  QCheck.Test.make ~count:200 ~name:"PGM 16-bit roundtrip within quantization"
    (QCheck.pair (QCheck.int_range 1 20) (QCheck.int_range 1 20))
    (fun (w, h) ->
      let rng = Kfuse_util.Rng.create ((w * 31) + h) in
      let img = Image.random rng ~width:w ~height:h ~lo:0.0 ~hi:1.0 in
      let back = Kfuse_image.Pgm.of_string (Kfuse_image.Pgm.to_string ~maxval:65535 img) in
      Image.equal_eps ~eps:(0.5 /. 65535.0 +. 1e-9) img back)

let prop_unparse_roundtrip =
  (* Random (unfused) pipelines print to DSL text that parses back to the
     same semantics. *)
  QCheck.Test.make ~count:100 ~name:"unparse/parse roundtrip on random pipelines"
    (QCheck.pair pipeline_arb QCheck.small_int) (fun (kernels, seed) ->
      let p = pipeline_of_kernels kernels in
      match Kfuse_dsl.Unparse.pipeline p with
      | Error _ -> false
      | Ok text -> (
        match Kfuse_dsl.Elaborate.parse_pipeline text with
        | Error _ -> false
        | Ok p2 ->
          let rng = Kfuse_util.Rng.create (seed + 777) in
          let img = Image.random rng ~width:13 ~height:11 ~lo:0.0 ~hi:1.0 in
          let env = Eval.env_of_list [ ("in", img) ] in
          let a = run_all p env and b = run_all p2 env in
          List.for_all2 (fun (_, x) (_, y) -> Image.equal x y) a b))

let prop_distribute_preserves_semantics =
  (* Splitting any splittable kernel of a random pipeline is exact. *)
  QCheck.Test.make ~count:100 ~name:"kernel distribution preserves semantics"
    (QCheck.pair pipeline_arb QCheck.small_int) (fun (kernels, seed) ->
      let p = pipeline_of_kernels kernels in
      let p', _ = F.Distribute.split_all p in
      let rng = Kfuse_util.Rng.create (seed + 555) in
      let img = Image.random rng ~width:13 ~height:11 ~lo:0.0 ~hi:1.0 in
      let env = Eval.env_of_list [ ("in", img) ] in
      let a = run_all p env and b = run_all p' env in
      List.for_all2 (fun (_, x) (_, y) -> Image.max_abs_diff x y < 1e-9) a b)

let prop_inline_preserves_semantics =
  QCheck.Test.make ~count:100 ~name:"greedy inlining preserves semantics"
    (QCheck.pair pipeline_arb QCheck.small_int) (fun (kernels, seed) ->
      let p = pipeline_of_kernels kernels in
      let p', _ = F.Inline_fusion.greedy config p in
      let rng = Kfuse_util.Rng.create (seed + 333) in
      let img = Image.random rng ~width:13 ~height:11 ~lo:0.0 ~hi:1.0 in
      let env = Eval.env_of_list [ ("in", img) ] in
      let a = run_all p env and b = run_all p' env in
      List.for_all2 (fun (_, x) (_, y) -> Image.max_abs_diff x y < 1e-9) a b)

(* ---- fuzzer-backed differential properties ----

   The three strongest oracles from lib/fuzz, re-expressed as qcheck
   properties over (seed, index) pairs: qcheck explores the pair space,
   the seeded generator maps each pair to a well-formed pipeline, and a
   failure prints the two integers that replay it exactly (also via
   `kfusec fuzz --seed S`). *)

let fuzz_case_arb =
  QCheck.make
    ~print:(fun (seed, index) -> Printf.sprintf "seed=%d index=%d" seed index)
    QCheck.Gen.(pair (int_range 0 10_000) (int_range 0 200))

let fuzz_oracle_holds which (seed, index) =
  let p = Kfuse_fuzz.Gen.case ~seed index in
  match (Kfuse_fuzz.Oracle.check ~which:[ which ] config p).Kfuse_fuzz.Oracle.failure with
  | None -> true
  | Some { Kfuse_fuzz.Oracle.detail; _ } -> QCheck.Test.fail_report detail

let prop_fuzz_legality =
  QCheck.Test.make ~count:40
    ~name:"fuzz: every strategy's partition is legal and valid" fuzz_case_arb
    (fuzz_oracle_holds Kfuse_fuzz.Oracle.Legality)

let prop_fuzz_beta_never_beats_optimum =
  QCheck.Test.make ~count:25
    ~name:"fuzz: min-cut beta never exceeds the exhaustive optimum" fuzz_case_arb
    (fuzz_oracle_holds Kfuse_fuzz.Oracle.Beta_optimal)

let prop_fuzz_eval_exact =
  QCheck.Test.make ~count:20
    ~name:"fuzz: fused evaluation is pixel-exact, borders included" fuzz_case_arb
    (fuzz_oracle_holds Kfuse_fuzz.Oracle.Eval_exact)

(* ---- lazy-fusion incremental replanning ----

   The three strongest invariants of the lazy frontend (lib/lazy),
   each over a seeded random edit sequence: a failure prints the
   (seed, edits) pair that replays it exactly. *)

let lazy_case_arb =
  QCheck.make
    ~print:(fun (seed, edits) -> Printf.sprintf "seed=%d edits=%d" seed edits)
    QCheck.Gen.(pair (int_range 0 10_000) (int_range 0 25))

let lazy_builder seed edits =
  let lp =
    Kfuse_lazy.Lazy_pipeline.create ~name:"prop" ~width:24 ~height:18
      ~inputs:[ "in"; "aux" ]
      ~params:[ ("gain", 1.5) ]
      config
  in
  let rng = Kfuse_util.Rng.create seed in
  (* two flush points exercise the cross-flush memo, not just one plan *)
  let _ = Kfuse_lazy.Edits.random_sequence rng lp (edits / 2) in
  let _ = Kfuse_lazy.Lazy_pipeline.flush lp in
  let _ = Kfuse_lazy.Edits.random_sequence rng lp (edits - (edits / 2)) in
  lp

let lazy_plan what = function
  | Ok (plan : Kfuse_lazy.Replan.plan) -> plan
  | Error d ->
    QCheck.Test.fail_report (Format.asprintf "%s failed: %a" what Kfuse_util.Diag.pp d)

let prop_lazy_incremental_matches_scratch =
  QCheck.Test.make ~count:60
    ~name:"lazy: incremental flush is bit-identical to scratch" lazy_case_arb
    (fun (seed, edits) ->
      let lp = lazy_builder seed edits in
      let inc = lazy_plan "flush" (Kfuse_lazy.Lazy_pipeline.flush lp) in
      let scr = lazy_plan "scratch" (Kfuse_lazy.Lazy_pipeline.flush_scratch lp) in
      (not inc.stats.fell_back) && String.equal inc.fingerprint scr.fingerprint)

let prop_lazy_flush_idempotent =
  QCheck.Test.make ~count:60
    ~name:"lazy: reflushing an unedited builder replans zero blocks" lazy_case_arb
    (fun (seed, edits) ->
      let lp = lazy_builder seed edits in
      let first = lazy_plan "flush" (Kfuse_lazy.Lazy_pipeline.flush lp) in
      let again = lazy_plan "reflush" (Kfuse_lazy.Lazy_pipeline.flush lp) in
      again.stats.blocks_replanned = 0
      && String.equal first.fingerprint again.fingerprint)

let prop_lazy_partition_always_legal =
  QCheck.Test.make ~count:60
    ~name:"lazy: every flushed partition passes the whole-result check"
    lazy_case_arb (fun (seed, edits) ->
      let lp = lazy_builder seed edits in
      let plan = lazy_plan "flush" (Kfuse_lazy.Lazy_pipeline.flush lp) in
      match F.Legality.check_partition config plan.pipeline plan.partition with
      | Ok () -> true
      | Error d ->
        QCheck.Test.fail_report (Format.asprintf "illegal: %a" Kfuse_util.Diag.pp d))

(* A fixed seed keeps `dune runtest` reproducible (override with
   QCHECK_SEED to explore). *)
let suite =
  List.map
    (fun test -> QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20260706 |]) test)
    [
      prop_dsl_parser_total;
      prop_dsl_parser_total_tokens;
      prop_pgm_decoder_total;
      prop_pgm_roundtrip;
      prop_unparse_roundtrip;
      prop_distribute_preserves_semantics;
      prop_inline_preserves_semantics;
      prop_stoer_wagner_matches_brute;
      prop_mincut_partition_valid;
      prop_objective_conservation;
      prop_fusion_preserves_semantics;
      prop_forced_pair_fusion_exact;
      prop_border_axis_in_range;
      prop_border_identity_inside;
      prop_region_tiling;
      prop_grown_mask_consistent;
      prop_stats_ordering;
      prop_compile_matches_interpreter;
      prop_mincut_near_oracle;
      prop_opt_passes_preserve_semantics;
      prop_simplify_never_grows;
      prop_transform_radius_additive;
      prop_lazy_incremental_matches_scratch;
      prop_lazy_flush_idempotent;
      prop_lazy_partition_always_legal;
      prop_fuzz_legality;
      prop_fuzz_beta_never_beats_optimum;
      prop_fuzz_eval_exact;
    ]
