lib/core/transform.ml: Format Hashtbl Kfuse_graph Kfuse_ir Kfuse_util Legality List Printf Substitute
