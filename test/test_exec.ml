(* The native compile-and-execute backend and the C emission it relies
   on: golden-output checks over [Lower_cpu.emit_pipeline] (loop shape,
   kf_scalar typedef, reduction broadcast, literal spelling), a
   warning-free [-Wall -Werror] compile of generated code, end-to-end
   Native.run in both modes against the reference interpreter, the
   compile cache, and the opt-in interpreter-vs-native fuzz oracle.

   Everything that needs a C compiler is gated on {!Toolchain.find} and
   skips cleanly on toolchain-less hosts. *)

module Ir = Kfuse_ir
module Img = Kfuse_image
module F = Kfuse_fusion
module Cg = Kfuse_codegen
module Exec = Kfuse_exec
module Fz = Kfuse_fuzz

let contains needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec loop i = i + nl <= hl && (String.sub haystack i nl = needle || loop (i + 1)) in
  loop 0

let check_fragments what text fragments =
  List.iter
    (fun frag ->
      if not (contains frag text) then
        Alcotest.failf "%s: expected fragment %S in:\n%s" what frag text)
    fragments

let require_toolchain () =
  match Exec.Toolchain.find () with Error _ -> Alcotest.skip () | Ok t -> t

(* A two-kernel pipeline exercising the tricky emissions at once: a
   negated negative literal (the "--" token-pasting regression), a
   reduction with its broadcast fill, and an intermediate buffer. *)
let neg_reduce_pipeline () =
  Ir.Pipeline.create ~name:"redsum" ~width:8 ~height:6 ~inputs:[ "src" ]
    [
      Ir.Kernel.map ~name:"neg" ~inputs:[ "src" ]
        Ir.Expr.(neg (Const (-0.25)) * input "src");
      Ir.Kernel.reduce ~name:"total" ~inputs:[ "neg" ] ~init:0.0 ~combine:Ir.Expr.Add
        (Ir.Expr.input "neg");
    ]

let fused_app name ~width ~height =
  let e = Option.get (Kfuse_apps.Registry.find name) in
  let p = e.Kfuse_apps.Registry.small ~width ~height in
  (p, (F.Driver.run F.Config.default F.Driver.Mincut p).F.Driver.fused)

(* ---- golden output of emit_pipeline ---- *)

let test_emit_golden_map_reduce () =
  let src = Cg.Lower_cpu.emit_pipeline (neg_reduce_pipeline ()) in
  check_fragments "map+reduce emission" src
    [
      "typedef float kf_scalar;";
      "static inline void* kf_malloc(size_t n)";
      "if (!p) abort();";
      "#pragma omp parallel for collapse(2) schedule(static)";
      (* neg of a negative literal must not paste into the "--" token *)
      "(- -0.25f)";
      "float acc = 0.0f;";
      "reduction(+:acc)";
      (* the reduction broadcast-fills its whole output buffer *)
      "for (int i = 0; i < (width * height); ++i)";
      "out[i] = acc;";
      "void run_redsum(const kf_scalar* src, kf_scalar* total)";
      "kf_malloc((size_t)width * height * sizeof(kf_scalar))";
      "free(neg);";
    ];
  if contains "(--" src then
    Alcotest.failf "emitted C contains the \"--\" token paste:\n%s" src

let test_emit_golden_double_tiled () =
  let _, fused = fused_app "sobel" ~width:16 ~height:12 in
  let src =
    Cg.Lower_cpu.emit_pipeline ~prec:Cg.Lower_common.Double ~tile:(8, 4) fused
  in
  check_fragments "double tiled emission" src
    [
      "typedef double kf_scalar;";
      (* helpers and buffers follow the precision *)
      "static inline double read_clamp(const double* img";
      (* double mode drops the f-suffix from both functions and literals *)
      "sqrt(";
      "-1.0 *";
      (* tile loops with ragged-edge clamping *)
      "yy += 4";
      "xx += 8";
      "const int y_end";
      "const int x_end";
    ];
  if contains "sqrtf(" src || contains "0.25f" src then
    Alcotest.failf "double-precision emission leaked a float32 spelling:\n%s" src

let test_emit_border_helpers () =
  let p =
    Ir.Pipeline.create ~name:"borders" ~width:9 ~height:7 ~inputs:[ "a" ]
      [
        Ir.Kernel.map ~name:"m" ~inputs:[ "a" ]
          (Ir.Expr.conv ~border:Img.Border.Mirror Img.Mask.gaussian_3x3 "a");
        Ir.Kernel.map ~name:"r" ~inputs:[ "a" ]
          (Ir.Expr.conv ~border:Img.Border.Repeat Img.Mask.gaussian_3x3 "a");
        Ir.Kernel.map ~name:"c" ~inputs:[ "a" ]
          (Ir.Expr.conv ~border:(Img.Border.Constant 0.5) Img.Mask.gaussian_3x3 "a");
      ]
  in
  let src = Cg.Lower_cpu.emit_pipeline p in
  check_fragments "border helper emission" src
    [
      "static inline float read_mirror(const float* img";
      "static inline float read_repeat(const float* img";
      (* the constant border takes the fill value as a trailing argument *)
      "read_constant(const float* img, int x, int y, int w, int h, float c)";
      "0.5f)";
    ]

let test_emit_nonfinite_literals () =
  let render e = Format.asprintf "%a" Cg.Emit.expr e in
  Alcotest.(check string) "float nan" "NAN" (render (Cg.Cuda_ast.float_lit Float.nan));
  Alcotest.(check string) "float inf" "INFINITY"
    (render (Cg.Cuda_ast.float_lit Float.infinity));
  Alcotest.(check string) "float -inf" "-INFINITY"
    (render (Cg.Cuda_ast.float_lit Float.neg_infinity));
  Alcotest.(check string) "double -inf" "-INFINITY"
    (render (Cg.Cuda_ast.double_lit Float.neg_infinity));
  (* negation of a leading-minus rendering keeps the minuses apart *)
  Alcotest.(check string) "neg of -inf" "(- -INFINITY)"
    (render (Cg.Cuda_ast.Unop ("-", Cg.Cuda_ast.float_lit Float.neg_infinity)));
  Alcotest.(check string) "neg of negative literal" "(- -0.25f)"
    (render (Cg.Cuda_ast.Unop ("-", Cg.Cuda_ast.float_lit (-0.25))));
  Alcotest.(check string) "neg of positive literal" "(-0.25f)"
    (render (Cg.Cuda_ast.Unop ("-", Cg.Cuda_ast.float_lit 0.25)))

let test_for_step_validated () =
  let body = [ Cg.Cuda_ast.Return ] in
  let mk step =
    Cg.Cuda_ast.for_ ~var:"i" ~from_:(Cg.Cuda_ast.int_lit 0)
      ~below:(Cg.Cuda_ast.int_lit 4) ~step body
  in
  (match mk 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "for_ accepted step 0");
  (match mk (-2) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "for_ accepted a negative step");
  (* the emitter backstops AST values built without the constructor *)
  let raw = Cg.Cuda_ast.For { var = "i"; from_ = Cg.Cuda_ast.int_lit 0;
                              below = Cg.Cuda_ast.int_lit 4; step = 0; body } in
  match Format.asprintf "%a" Cg.Emit.stmt raw with
  | exception Invalid_argument _ -> ()
  | s -> Alcotest.failf "Emit printed a nonterminating loop: %s" s

(* ---- toolchain-guarded: generated C compiles warning-free ---- *)

let test_emit_compiles_warning_free () =
  let t = require_toolchain () in
  let dir = Filename.temp_file "kfuse_warn" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      List.iteri
        (fun i (name, tile) ->
          let _, fused = fused_app name ~width:32 ~height:24 in
          let src_path = Filename.concat dir (Printf.sprintf "gen%d.c" i) in
          let obj_path = Filename.concat dir (Printf.sprintf "gen%d.o" i) in
          let log = Filename.concat dir (Printf.sprintf "cc%d.log" i) in
          Out_channel.with_open_text src_path (fun oc ->
              output_string oc
                (Cg.Lower_cpu.emit_pipeline ?tile ~prec:Cg.Lower_common.Double fused));
          let cmd =
            Printf.sprintf "%s -Wall -Werror -O2 %s -c -o %s %s > %s 2>&1"
              (Filename.quote t.Exec.Toolchain.cc)
              (if t.Exec.Toolchain.openmp then "-fopenmp" else "")
              (Filename.quote obj_path) (Filename.quote src_path) (Filename.quote log)
          in
          if Sys.command cmd <> 0 then
            Alcotest.failf "%s: generated C does not compile under -Wall -Werror:\n%s"
              name
              (In_channel.with_open_text log In_channel.input_all))
        [ ("harris", None); ("night", Some (16, 8)); ("shitomasi", None) ])

(* ---- native execution end to end ---- *)

let rng = Kfuse_util.Rng.create 9002

let inputs_for (p : Ir.Pipeline.t) =
  List.map
    (fun n ->
      ( n,
        Img.Image.random rng ~width:p.Ir.Pipeline.width ~height:p.Ir.Pipeline.height
          ~lo:0.0 ~hi:1.0 ))
    p.Ir.Pipeline.inputs

let with_cache_dir f =
  let dir = Filename.temp_file "kfuse_exec_cache" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  f dir

let max_diff reference outputs =
  Alcotest.(check (list string))
    "same output set" (List.map fst reference) (List.map fst outputs);
  List.fold_left2
    (fun acc (_, a) (_, b) -> Float.max acc (Img.Image.max_abs_diff a b))
    0.0 reference outputs

let run_exact ~mode ?(repeat = 1) p =
  let _ = require_toolchain () in
  with_cache_dir @@ fun cache_dir ->
  let inputs = inputs_for p in
  let reference = Ir.Eval.run_outputs p (Ir.Eval.env_of_list inputs) in
  match Exec.Native.run ~mode ~cache_dir ~repeat p inputs with
  | Error d -> Alcotest.failf "native run failed: %s" (Kfuse_util.Diag.to_string d)
  | Ok r ->
    Alcotest.(check bool)
      "requested mode used" true (r.Exec.Native.mode_used = mode);
    Alcotest.(check int) "one sample per repeat" repeat
      (List.length r.Exec.Native.samples_ms);
    Alcotest.(check (float 0.0))
      "bit-exact against the interpreter" 0.0
      (max_diff reference r.Exec.Native.outputs);
    r

let test_native_dlopen_exact () =
  let _, fused = fused_app "sobel" ~width:16 ~height:12 in
  ignore (run_exact ~mode:Exec.Native.Dlopen fused)

let test_native_subprocess_exact () =
  let _, fused = fused_app "unsharp" ~width:16 ~height:12 in
  ignore (run_exact ~mode:Exec.Native.Subprocess ~repeat:3 fused)

let test_native_compile_cache () =
  let _ = require_toolchain () in
  let _, fused = fused_app "sobel" ~width:12 ~height:10 in
  with_cache_dir @@ fun cache_dir ->
  let inputs = inputs_for fused in
  let once () =
    match Exec.Native.run ~mode:Exec.Native.Dlopen ~cache_dir fused inputs with
    | Error d -> Alcotest.failf "native run failed: %s" (Kfuse_util.Diag.to_string d)
    | Ok r -> r
  in
  let first = once () in
  let second = once () in
  Alcotest.(check bool) "first run compiles" false first.Exec.Native.cached;
  Alcotest.(check bool) "second run hits the cache" true second.Exec.Native.cached;
  Alcotest.(check (float 0.0)) "cache hit spends nothing compiling" 0.0
    second.Exec.Native.compile_ms;
  Alcotest.(check string) "same artifact" first.Exec.Native.artifact
    second.Exec.Native.artifact

(* pow with a literal exponent of 2: the optimizer's pow(x,2) -> x*x
   strength reduction is 1 ulp off glibc's pow, which the interpreter
   calls.  -fno-builtin-pow keeps the compiled code on libm; this
   pipeline diverged before that flag existed. *)
let test_native_pow_faithful () =
  let p =
    Ir.Pipeline.create ~name:"powsq" ~width:24 ~height:17 ~inputs:[ "a"; "b" ]
      [
        Ir.Kernel.map ~name:"k" ~inputs:[ "a"; "b" ]
          Ir.Expr.(Binop (Pow, (input "a" * input "b") + neg (input "a"), Const 2.0));
      ]
  in
  ignore (run_exact ~mode:Exec.Native.Dlopen p);
  ignore (run_exact ~mode:Exec.Native.Subprocess p)

let test_native_bad_calls_raise () =
  let _ = require_toolchain () in
  let _, fused = fused_app "sobel" ~width:10 ~height:8 in
  with_cache_dir @@ fun cache_dir ->
  let wrong_extent =
    [ ("in", Img.Image.const ~width:9 ~height:8 0.5) ]
  in
  (match Exec.Native.run ~cache_dir fused wrong_extent with
  | exception Invalid_argument _ -> ()
  | Ok _ -> Alcotest.fail "wrong-extent input accepted"
  | Error d -> Alcotest.failf "expected Invalid_argument, got %s" (Kfuse_util.Diag.to_string d));
  let inputs = inputs_for fused in
  match Exec.Native.run ~cache_dir ~params:[ ("nope", 1.0) ] fused inputs with
  | exception Invalid_argument _ -> ()
  | Ok _ -> Alcotest.fail "unknown parameter override accepted"
  | Error d -> Alcotest.failf "expected Invalid_argument, got %s" (Kfuse_util.Diag.to_string d)

let test_mode_string_roundtrip () =
  List.iter
    (fun m ->
      Alcotest.(check bool) "mode_of_string inverts mode_to_string" true
        (Exec.Native.mode_of_string (Exec.Native.mode_to_string m) = Some m))
    [ Exec.Native.Dlopen; Exec.Native.Subprocess ];
  Alcotest.(check bool) "unknown mode rejected" true
    (Exec.Native.mode_of_string "jit" = None)

(* ---- the exec supervisor ---- *)

module Sup = Exec.Supervisor
module Faults = Kfuse_util.Faults
module Deadline = Kfuse_util.Deadline

let expect_failure (r : Sup.run) =
  match r.Sup.status with
  | Ok () -> Alcotest.fail "expected a supervised failure"
  | Error f -> f

let diag_code (r : Sup.run) =
  match Sup.failure_diag ~what:"fixture" r with
  | None -> Alcotest.fail "expected a failure diagnostic"
  | Some d -> Kfuse_util.Diag.code_id d.Kfuse_util.Diag.code

(* Compile a deliberately misbehaving C fixture with the probed
   toolchain — through the supervisor itself, so no shell appears
   anywhere in the test. *)
let compile_fixture name source =
  let t = require_toolchain () in
  let dir = Filename.temp_file "kfuse_sup" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let src = Filename.concat dir (name ^ ".c") in
  let bin = Filename.concat dir name in
  Out_channel.with_open_text src (fun oc -> output_string oc source);
  let r =
    Sup.run ~fault_injection:false
      ~limits:{ Sup.no_limits with Sup.wall_ms = Some 60_000. }
      ~argv:[ t.Exec.Toolchain.cc; "-O0"; "-o"; bin; src ]
      ()
  in
  (match r.Sup.status with
  | Ok () -> ()
  | Error _ -> Alcotest.failf "fixture %s failed to compile: %s" name r.Sup.stderr_tail);
  bin

let test_supervisor_crash_kf0906 () =
  let bin =
    compile_fixture "crasher"
      "int main(void) { volatile int *p = 0; *p = 1; return 0; }\n"
  in
  let r = Sup.run ~fault_injection:false ~argv:[ bin ] () in
  (match expect_failure r with
  | Sup.Crashed { signal } ->
    Alcotest.(check string) "crash signal named" "SIGSEGV" signal
  | _ -> Alcotest.fail "expected Crashed");
  Alcotest.(check string) "typed KF0906" "KF0906" (diag_code r)

let test_supervisor_timeout_kf0905 () =
  let bin = compile_fixture "looper" "int main(void) { for (;;); return 0; }\n" in
  let r =
    Sup.run ~fault_injection:false
      ~limits:{ Sup.no_limits with Sup.wall_ms = Some 300. }
      ~argv:[ bin ] ()
  in
  (match expect_failure r with
  | Sup.Timeout { wall_ms; _ } ->
    Alcotest.(check bool) "watchdog fired near the cap" true (wall_ms >= 250.);
    Alcotest.(check bool) "and actually killed the child" true (wall_ms < 5_000.)
  | _ -> Alcotest.fail "expected Timeout");
  Alcotest.(check string) "typed KF0905" "KF0905" (diag_code r)

let test_supervisor_oom_kf0907 () =
  let bin =
    compile_fixture "oomer"
      "#include <stdlib.h>\n#include <string.h>\n\
       int main(void) {\n\
      \  for (;;) { void *p = malloc(1 << 22); if (!p) abort(); memset(p, 1, 1 << 22); }\n\
       }\n"
  in
  let r =
    Sup.run ~fault_injection:false
      ~limits:
        {
          Sup.no_limits with
          Sup.wall_ms = Some 30_000.;
          Sup.mem_bytes = Some (64 * 1024 * 1024);
        }
      ~argv:[ bin ] ()
  in
  (match expect_failure r with
  | Sup.Limit { what; _ } ->
    Alcotest.(check bool) "names the address-space limit" true
      (contains "RLIMIT_AS" what)
  | _ -> Alcotest.fail "expected Limit");
  Alcotest.(check string) "typed KF0907" "KF0907" (diag_code r)

let test_supervisor_cpu_limit_kf0907 () =
  let bin = compile_fixture "spinner" "int main(void) { for (;;); return 0; }\n" in
  let r =
    Sup.run ~fault_injection:false
      ~limits:
        { Sup.no_limits with Sup.wall_ms = Some 30_000.; Sup.cpu_s = Some 1 }
      ~argv:[ bin ] ()
  in
  (match expect_failure r with
  | Sup.Limit { what; _ } ->
    Alcotest.(check bool) "names the CPU limit" true (contains "RLIMIT_CPU" what)
  | _ -> Alcotest.fail "expected Limit");
  Alcotest.(check string) "typed KF0907" "KF0907" (diag_code r)

let test_supervisor_exit_and_spawn () =
  (* No toolchain needed: exit codes and spawn failures classify without
     compiling anything. *)
  let r = Sup.run ~fault_injection:false ~argv:[ "false" ] () in
  (match expect_failure r with
  | Sup.Nonzero_exit { code } -> Alcotest.(check int) "exit code" 1 code
  | _ -> Alcotest.fail "expected Nonzero_exit");
  Alcotest.(check string) "nonzero exit stays KF0904" "KF0904" (diag_code r);
  let r = Sup.run ~fault_injection:false ~argv:[ "/nonexistent/kfuse-no-such" ] () in
  (match expect_failure r with
  | Sup.Spawn_failed _ -> ()
  | _ -> Alcotest.fail "expected Spawn_failed");
  let r = Sup.run ~fault_injection:false ~argv:[] () in
  match expect_failure r with
  | Sup.Spawn_failed { reason } ->
    Alcotest.(check string) "empty argv refused" "empty argv" reason
  | _ -> Alcotest.fail "expected Spawn_failed on empty argv"

let test_supervisor_expired_deadline () =
  (* An already-expired deadline must not even spawn the child. *)
  let r =
    Sup.run ~fault_injection:false ~deadline:(Deadline.after_ms 0.) ~argv:[ "false" ] ()
  in
  (match expect_failure r with
  | Sup.Timeout { wall_ms; escalated } ->
    Alcotest.(check (float 0.0)) "no wall time spent" 0.0 wall_ms;
    Alcotest.(check bool) "nothing to escalate" false escalated
  | _ -> Alcotest.fail "expected Timeout");
  Alcotest.(check string) "typed KF0905" "KF0905" (diag_code r)

let test_supervisor_stderr_tail () =
  (* A real child's stderr is captured... *)
  let r = Sup.run ~fault_injection:false ~argv:[ "ls"; "/nonexistent/kfuse-tail" ] () in
  (match r.Sup.status with
  | Error (Sup.Nonzero_exit _) -> ()
  | _ -> Alcotest.fail "expected ls to fail");
  Alcotest.(check bool) "stderr captured" true (String.length r.Sup.stderr_tail > 0);
  (* ... and the tail is capped at 4 KiB with a truncation marker. *)
  let path = Filename.temp_file "kfuse_tail" ".err" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Out_channel.with_open_bin path (fun oc ->
      output_string oc (String.make 10_000 'x');
      output_string oc "THE-END");
  let tail = Sup.read_tail path in
  Alcotest.(check bool) "capped" true
    (String.length tail <= Sup.stderr_tail_limit + 32);
  Alcotest.(check bool) "marked truncated" true (contains "truncated" tail);
  Alcotest.(check bool) "keeps the end of the stream" true (contains "THE-END" tail)

let test_exec_fault_points () =
  (* The exec.* chaos points misbehave in the child, so no toolchain and
     no real crashing binary are needed: the victim argv is /bin/true. *)
  Faults.with_spec "exec.crash@1" (fun () ->
      let r = Sup.run ~argv:[ "true" ] () in
      match expect_failure r with
      | Sup.Crashed { signal } -> Alcotest.(check string) "chaos crash" "SIGSEGV" signal
      | _ -> Alcotest.fail "exec.crash: expected Crashed");
  Faults.with_spec "exec.hang@1" (fun () ->
      let r =
        Sup.run ~limits:{ Sup.no_limits with Sup.wall_ms = Some 200. } ~argv:[ "true" ] ()
      in
      (match expect_failure r with
      | Sup.Timeout _ -> ()
      | _ -> Alcotest.fail "exec.hang: expected Timeout");
      Alcotest.(check string) "typed KF0905" "KF0905" (diag_code r));
  Faults.with_spec "exec.oom@1" (fun () ->
      let r = Sup.run ~argv:[ "true" ] () in
      (match expect_failure r with
      | Sup.Limit _ -> ()
      | _ -> Alcotest.fail "exec.oom: expected Limit");
      Alcotest.(check string) "typed KF0907" "KF0907" (diag_code r));
  (* The compile path runs with fault injection off: an armed point must
     not fire there. *)
  Faults.with_spec "exec.crash@1" (fun () ->
      let r = Sup.run ~fault_injection:false ~argv:[ "true" ] () in
      match r.Sup.status with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "fault_injection:false must ignore armed points")

let test_breaker_lifecycle () =
  let b = Sup.Breaker.create ~threshold:2 ~cooldown_ms:50. () in
  let d = Kfuse_util.Diag.errorf Kfuse_util.Diag.Exec_crashed "fixture crash" in
  let expect what verdict =
    match (Sup.Breaker.check b "fp", verdict) with
    | Sup.Breaker.Allow, `Allow
    | Sup.Breaker.Probe, `Probe
    | Sup.Breaker.Quarantined _, `Quarantined ->
      ()
    | got, _ ->
      Alcotest.failf "%s: unexpected verdict %s" what
        (match got with
        | Sup.Breaker.Allow -> "Allow"
        | Sup.Breaker.Probe -> "Probe"
        | Sup.Breaker.Quarantined _ -> "Quarantined")
  in
  expect "fresh fingerprint" `Allow;
  Alcotest.(check bool) "first failure does not trip" false
    (Sup.Breaker.record_failure b "fp" d);
  expect "below threshold" `Allow;
  Alcotest.(check bool) "threshold failure trips" true
    (Sup.Breaker.record_failure b "fp" d);
  Alcotest.(check int) "one quarantined plan" 1 (Sup.Breaker.quarantined b);
  expect "tripped" `Quarantined;
  Thread.delay 0.08;
  expect "after cooldown" `Probe;
  expect "second caller during the probe window" `Quarantined;
  (* A failed probe re-arms the cooldown without re-tripping. *)
  Alcotest.(check bool) "failed probe is not a new trip" false
    (Sup.Breaker.record_failure b "fp" d);
  expect "re-armed" `Quarantined;
  Thread.delay 0.08;
  expect "second probe" `Probe;
  Alcotest.(check bool) "successful probe closes" true (Sup.Breaker.record_success b "fp");
  Alcotest.(check int) "nothing quarantined" 0 (Sup.Breaker.quarantined b);
  expect "closed again" `Allow;
  (* Success on a closed breaker is not a close edge; interleaved
     successes keep resetting the consecutive-failure count. *)
  Alcotest.(check bool) "no close edge when already closed" false
    (Sup.Breaker.record_success b "fp");
  ignore (Sup.Breaker.record_failure b "fp" d);
  ignore (Sup.Breaker.record_success b "fp");
  Alcotest.(check bool) "failure count was reset by the success" false
    (Sup.Breaker.record_failure b "fp" d);
  (* reset_all clears open state and the gauge base. *)
  ignore (Sup.Breaker.record_failure b "fp" d);
  Alcotest.(check int) "tripped again" 1 (Sup.Breaker.quarantined b);
  Sup.Breaker.reset_all b;
  Alcotest.(check int) "reset_all closes everything" 0 (Sup.Breaker.quarantined b);
  expect "after reset_all" `Allow;
  match Sup.Breaker.create ~threshold:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "threshold 0 accepted"

let test_crash_artifact_roundtrip () =
  let p =
    Ir.Pipeline.create ~name:"artifact" ~width:8 ~height:6 ~inputs:[ "src" ]
      [ Ir.Kernel.map ~name:"m" ~inputs:[ "src" ] Ir.Expr.(input "src" * Const 2.0) ]
  in
  let diag = Kfuse_util.Diag.errorf Kfuse_util.Diag.Exec_crashed "fixture crashed with SIGSEGV" in
  let dir = Filename.temp_file "kfuse_crashdir" "" in
  Sys.remove dir;
  let path =
    match Sup.save_crash_artifact ~dir ~seed:7 ~toolchain:"cc-fixture" ~diag p with
    | Ok path -> path
    | Error e -> Alcotest.failf "save_crash_artifact failed: %s" e
  in
  (* Idempotent per pipeline: a second save is the same file. *)
  (match Sup.save_crash_artifact ~dir ~seed:7 ~toolchain:"cc-fixture" ~diag p with
  | Ok again -> Alcotest.(check string) "idempotent" path again
  | Error e -> Alcotest.failf "second save failed: %s" e);
  (* The artifact is a loadable fuzz-corpus entry carrying provenance. *)
  match Fz.Corpus.load_file path with
  | Error e -> Alcotest.failf "corpus cannot load the crash artifact: %s" e
  | Ok entry ->
    Alcotest.(check (option int)) "seed recorded" (Some 7) entry.Fz.Corpus.seed;
    Alcotest.(check (option string)) "oracle recorded" (Some "exec-supervisor")
      entry.Fz.Corpus.oracle;
    (match entry.Fz.Corpus.detail with
    | Some d ->
      Alcotest.(check bool) "detail carries the diagnostic" true (contains "KF0906" d);
      Alcotest.(check bool) "detail carries the toolchain id" true
        (contains "cc-fixture" d)
    | None -> Alcotest.fail "detail missing");
    let norm q = Kfuse_cache.Fingerprint.structural (Fz.Corpus.normalize q) in
    Alcotest.(check string) "pipeline round-trips" (norm p)
      (norm entry.Fz.Corpus.pipeline)

let test_deadline_between_samples () =
  let _ = require_toolchain () in
  let _, fused = fused_app "sobel" ~width:12 ~height:10 in
  with_cache_dir @@ fun cache_dir ->
  let inputs = inputs_for fused in
  (* Warm the artifact cache so the deadline check hits the sampling
     loop, not the compile. *)
  (match Exec.Native.run ~mode:Exec.Native.Dlopen ~cache_dir fused inputs with
  | Ok _ -> ()
  | Error d -> Alcotest.failf "warm-up failed: %s" (Kfuse_util.Diag.to_string d));
  (* Dlopen: sample 1 always runs, the deadline check between samples
     stops the loop with a typed KF0905 naming the progress made. *)
  (match
     Exec.Native.run ~mode:Exec.Native.Dlopen ~cache_dir
       ~deadline:(Deadline.after_ms 0.) ~repeat:3 fused inputs
   with
  | Ok _ -> Alcotest.fail "expired deadline should stop the sampling loop"
  | Error d ->
    Alcotest.(check string) "typed KF0905" "KF0905"
      (Kfuse_util.Diag.code_id d.Kfuse_util.Diag.code);
    Alcotest.(check bool) "names the sample progress" true
      (contains "timing samples" (Kfuse_util.Diag.to_string d)));
  (* Subprocess: the supervisor refuses to even spawn under an expired
     deadline. *)
  match
    Exec.Native.run ~mode:Exec.Native.Subprocess ~cache_dir
      ~deadline:(Deadline.after_ms 0.) fused inputs
  with
  | Ok _ -> Alcotest.fail "expired deadline should stop the subprocess run"
  | Error d ->
    Alcotest.(check string) "typed KF0905" "KF0905"
      (Kfuse_util.Diag.code_id d.Kfuse_util.Diag.code)

let test_policy_string_roundtrip () =
  List.iter
    (fun p ->
      Alcotest.(check bool) "policy_of_string inverts policy_to_string" true
        (Sup.policy_of_string (Sup.policy_to_string p) = Some p))
    [ Sup.Sandboxed; Sup.Dlopen_trusted; Sup.Unsandboxed ];
  Alcotest.(check bool) "unknown policy rejected" true (Sup.policy_of_string "chroot" = None)

(* ---- the opt-in fuzz oracle ---- *)

let test_oracle_native_exec () =
  let _ = require_toolchain () in
  let p =
    Ir.Pipeline.create ~name:"orc" ~width:11 ~height:9 ~inputs:[ "src" ]
      [
        Ir.Kernel.map ~name:"g" ~inputs:[ "src" ]
          (Ir.Expr.conv ~border:Img.Border.Mirror Img.Mask.gaussian_3x3 "src");
        Ir.Kernel.map ~name:"sq" ~inputs:[ "g" ]
          Ir.Expr.(Binop (Pow, input "g", Const 2.0));
      ]
  in
  with_cache_dir @@ fun cache_dir ->
  let r =
    Fz.Oracle.check ~which:[ Fz.Oracle.Native_exec ] ~cache_dir F.Config.default p
  in
  (match r.Fz.Oracle.failure with
  | None -> ()
  | Some f -> Alcotest.failf "native oracle failed: %s" f.Fz.Oracle.detail);
  Alcotest.(check bool) "name round-trips" true
    (Fz.Oracle.name_of_string "native-exec" = Some Fz.Oracle.Native_exec);
  Alcotest.(check bool) "opt-in: not in the default bank" false
    (List.mem Fz.Oracle.Native_exec Fz.Oracle.all)

let suite =
  [
    Alcotest.test_case "emit golden: map + reduce + broadcast" `Quick
      test_emit_golden_map_reduce;
    Alcotest.test_case "emit golden: double precision, tiled" `Quick
      test_emit_golden_double_tiled;
    Alcotest.test_case "emit golden: border helpers" `Quick test_emit_border_helpers;
    Alcotest.test_case "emit: non-finite and negative literals" `Quick
      test_emit_nonfinite_literals;
    Alcotest.test_case "emit: nonpositive for-step rejected" `Quick
      test_for_step_validated;
    Alcotest.test_case "generated C compiles under -Wall -Werror" `Slow
      test_emit_compiles_warning_free;
    Alcotest.test_case "native dlopen matches interpreter bitwise" `Slow
      test_native_dlopen_exact;
    Alcotest.test_case "native subprocess matches interpreter bitwise" `Slow
      test_native_subprocess_exact;
    Alcotest.test_case "native compile cache hits" `Slow test_native_compile_cache;
    Alcotest.test_case "pow(x,2) stays on libm (regression)" `Slow
      test_native_pow_faithful;
    Alcotest.test_case "malformed native calls raise" `Slow test_native_bad_calls_raise;
    Alcotest.test_case "exec mode string roundtrip" `Quick test_mode_string_roundtrip;
    Alcotest.test_case "supervisor: crash classifies KF0906" `Slow
      test_supervisor_crash_kf0906;
    Alcotest.test_case "supervisor: watchdog timeout classifies KF0905" `Slow
      test_supervisor_timeout_kf0905;
    Alcotest.test_case "supervisor: RLIMIT_AS abort classifies KF0907" `Slow
      test_supervisor_oom_kf0907;
    Alcotest.test_case "supervisor: RLIMIT_CPU classifies KF0907" `Slow
      test_supervisor_cpu_limit_kf0907;
    Alcotest.test_case "supervisor: nonzero exit and spawn failures" `Quick
      test_supervisor_exit_and_spawn;
    Alcotest.test_case "supervisor: expired deadline never spawns" `Quick
      test_supervisor_expired_deadline;
    Alcotest.test_case "supervisor: stderr tail captured and capped" `Quick
      test_supervisor_stderr_tail;
    Alcotest.test_case "supervisor: exec.* chaos fault points" `Quick
      test_exec_fault_points;
    Alcotest.test_case "supervisor: circuit breaker lifecycle" `Quick
      test_breaker_lifecycle;
    Alcotest.test_case "supervisor: crash artifact is a corpus entry" `Quick
      test_crash_artifact_roundtrip;
    Alcotest.test_case "native: deadline between timing samples" `Slow
      test_deadline_between_samples;
    Alcotest.test_case "sandbox policy string roundtrip" `Quick
      test_policy_string_roundtrip;
    Alcotest.test_case "fuzz oracle: native-exec" `Slow test_oracle_native_exec;
  ]
