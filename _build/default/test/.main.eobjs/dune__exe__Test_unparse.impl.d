test/test_unparse.ml: Alcotest Kfuse_apps Kfuse_dsl Kfuse_fusion Kfuse_image Kfuse_ir Kfuse_util List String
