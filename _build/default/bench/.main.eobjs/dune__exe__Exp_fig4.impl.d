bench/exp_fig4.ml: Float Kfuse_fusion Kfuse_image Kfuse_ir Kfuse_util List Paper_data Printf
