module Iset = Kfuse_util.Iset
module Pool = Kfuse_util.Pool
module Rng = Kfuse_util.Rng
module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Validate = Kfuse_ir.Validate
module Eval = Kfuse_ir.Eval
module Simplify = Kfuse_ir.Simplify
module Cse = Kfuse_ir.Cse
module Image = Kfuse_image.Image
module Partition = Kfuse_graph.Partition
module Config = Kfuse_fusion.Config
module Legality = Kfuse_fusion.Legality
module Basic_fusion = Kfuse_fusion.Basic_fusion
module Greedy_fusion = Kfuse_fusion.Greedy_fusion
module Mincut_fusion = Kfuse_fusion.Mincut_fusion
module Exhaustive_fusion = Kfuse_fusion.Exhaustive_fusion
module Transform = Kfuse_fusion.Transform
module Driver = Kfuse_fusion.Driver
module Fingerprint = Kfuse_cache.Fingerprint
module Plan_cache = Kfuse_cache.Plan_cache
module Native = Kfuse_exec.Native
module Toolchain = Kfuse_exec.Toolchain
module Session = Kfuse_stream.Session
module Frames = Kfuse_stream.Frames

type name =
  | Validate_ok
  | Legality
  | Beta_optimal
  | Eval_exact
  | Pool_determinism
  | Cache_replay
  | Meta_rename
  | Meta_permute_inputs
  | Meta_duplicate
  | Unparse_roundtrip
  | Incremental_replan
  | Native_exec
  | Stream_exec

(* Native_exec and Stream_exec shell out to the C compiler on every
   case — orders of magnitude slower than the rest of the bank — so
   they are opt-in: absent from [all], run only when [which] names them
   explicitly. *)
let all =
  [
    Validate_ok;
    Legality;
    Beta_optimal;
    Eval_exact;
    Pool_determinism;
    Cache_replay;
    Meta_rename;
    Meta_permute_inputs;
    Meta_duplicate;
    Unparse_roundtrip;
    Incremental_replan;
  ]

let name_to_string = function
  | Validate_ok -> "validate"
  | Legality -> "legality"
  | Beta_optimal -> "beta-optimal"
  | Eval_exact -> "eval-exact"
  | Pool_determinism -> "pool-determinism"
  | Cache_replay -> "cache-replay"
  | Meta_rename -> "meta-rename"
  | Meta_permute_inputs -> "meta-permute-inputs"
  | Meta_duplicate -> "meta-duplicate"
  | Unparse_roundtrip -> "unparse-roundtrip"
  | Incremental_replan -> "incremental-replan"
  | Native_exec -> "native-exec"
  | Stream_exec -> "stream-exec"

let name_of_string s =
  List.find_opt (fun n -> name_to_string n = s) (Native_exec :: Stream_exec :: all)

type failure = { oracle : name; detail : string }
type optimality = Optimal | Gap of float | Not_checked
type report = { failure : failure option; optimality : optimality }

let beta_tol = 1e-6

(* Strategy entry points, called directly — not through the driver,
   whose graceful degradation (invalid partition -> baseline fallback)
   would repair exactly the bugs the bank exists to expose. *)
let strategies : (string * (Config.t -> Pipeline.t -> Partition.t)) list =
  [
    ("basic", Basic_fusion.partition);
    ("greedy", Greedy_fusion.partition);
    ("mincut", fun config p -> (Mincut_fusion.run config p).Mincut_fusion.partition);
  ]

let pp_partition part = Format.asprintf "%a" Partition.pp part

(* ---- individual oracles (never raise; Error detail on failure) ---- *)

let validate_ok p =
  match Validate.pipeline p with
  | [] -> Ok ()
  | diags ->
    Error
      (Printf.sprintf "generator emitted an invalid pipeline: %s"
         (String.concat "; " (List.map Kfuse_util.Diag.to_string diags)))

let legality config p =
  let dag = Pipeline.dag p in
  List.fold_left
    (fun acc (sname, strat) ->
      match acc with
      | Error _ -> acc
      | Ok () -> (
        match strat config p with
        | exception e ->
          Error (Printf.sprintf "strategy %s raised: %s" sname (Printexc.to_string e))
        | part -> (
          match Partition.validate dag part with
          | Error inv ->
            Error
              (Printf.sprintf "strategy %s: invalid partition %s: %s" sname
                 (pp_partition part)
                 (Partition.invalid_to_string inv))
          | Ok () -> (
            match Legality.check_partition config p part with
            | Error diag ->
              Error
                (Printf.sprintf "strategy %s: illegal partition %s: %s" sname
                   (pp_partition part) (Kfuse_util.Diag.to_string diag))
            | Ok () -> Ok ()))))
    (Ok ()) strategies

let beta_optimal ~strict ~max_exhaustive config p =
  if Pipeline.num_kernels p > max_exhaustive then Ok Not_checked
  else
    match
      let opt = Exhaustive_fusion.optimal_objective config p in
      let mc = (Mincut_fusion.run config p).Mincut_fusion.objective in
      (opt, mc)
    with
    | exception e -> Error (Printf.sprintf "beta comparison raised: %s" (Printexc.to_string e))
    | opt, mc ->
      if mc > opt +. beta_tol then
        Error
          (Printf.sprintf
             "min-cut objective %.9g exceeds the exhaustive optimum %.9g — the \
              'optimum' missed a partition or the min-cut result is illegal"
             mc opt)
      else if mc < opt -. beta_tol then
        if strict then
          Error
            (Printf.sprintf "heuristic gap: min-cut beta %.9g < optimum %.9g (gap %.9g)" mc
               opt (opt -. mc))
        else Ok (Gap (opt -. mc))
      else Ok Optimal

(* Deterministic per-pipeline input images: seeded from the exact
   fingerprint, so a corpus replay sees the very pixels the original
   campaign saw. *)
let eval_inputs p =
  let fp = Fingerprint.exact p in
  let seed = String.fold_left (fun a c -> (a * 131) + Char.code c) 7 fp in
  let rng = Rng.create seed in
  List.map
    (fun img ->
      ( img,
        Image.random rng ~width:p.Pipeline.width ~height:p.Pipeline.height ~lo:0.0
          ~hi:1.0 ))
    p.Pipeline.inputs

let eval_env p = Eval.env_of_list (eval_inputs p)

let compare_outputs ~what ref_out out =
  if List.map fst ref_out <> List.map fst out then
    Error
      (Printf.sprintf "%s: output set changed: [%s] vs [%s]" what
         (String.concat ", " (List.map fst ref_out))
         (String.concat ", " (List.map fst out)))
  else
    List.fold_left2
      (fun acc (name, a) (_, b) ->
        match acc with
        | Error _ -> acc
        | Ok () ->
          let d = Image.max_abs_diff a b in
          if Float.equal d 0.0 then Ok ()
          else Error (Printf.sprintf "%s: output %s differs (max |diff| = %.17g)" what name d))
      (Ok ()) ref_out out

let eval_exact config p =
  match
    let env = eval_env p in
    let ref_out = Eval.run_outputs p env in
    List.fold_left
      (fun acc (sname, strat) ->
        match acc with
        | Error _ -> acc
        | Ok () ->
          let part = strat config p in
          let fused = Transform.apply ~exchange:true p part in
          let optimized = Cse.pipeline (Simplify.pipeline fused) in
          let check what q = compare_outputs ~what ref_out (Eval.run_outputs q env) in
          Result.bind
            (check (Printf.sprintf "%s fused" sname) fused)
            (fun () -> check (Printf.sprintf "%s fused+optimized" sname) optimized))
      (Ok ()) strategies
  with
  | exception e -> Error (Printf.sprintf "eval raised: %s" (Printexc.to_string e))
  | r -> r

let step_sig (s : Mincut_fusion.step) =
  match s with
  | Mincut_fusion.Accept b -> ("accept", Iset.to_sorted_list b, [])
  | Mincut_fusion.Cut { block; side_a; side_b; _ } ->
    ("cut", Iset.to_sorted_list block, [ Iset.to_sorted_list side_a; Iset.to_sorted_list side_b ])

let pool_determinism ~pool config p =
  match pool with
  | None -> Ok ()
  | Some pool -> (
    match
      let serial = Mincut_fusion.run config p in
      let pooled = Mincut_fusion.run ~pool config p in
      (serial, pooled)
    with
    | exception e -> Error (Printf.sprintf "pooled run raised: %s" (Printexc.to_string e))
    | serial, pooled ->
      if not (Partition.equal serial.Mincut_fusion.partition pooled.Mincut_fusion.partition)
      then
        Error
          (Printf.sprintf "serial/pooled partitions differ: %s vs %s"
             (pp_partition serial.Mincut_fusion.partition)
             (pp_partition pooled.Mincut_fusion.partition))
      else if
        not (Float.equal serial.Mincut_fusion.objective pooled.Mincut_fusion.objective)
      then
        Error
          (Printf.sprintf "serial/pooled objectives differ bitwise: %.17g vs %.17g"
             serial.Mincut_fusion.objective pooled.Mincut_fusion.objective)
      else if
        List.map step_sig serial.Mincut_fusion.steps
        <> List.map step_sig pooled.Mincut_fusion.steps
      then Error "serial/pooled recursion traces differ"
      else if
        not
          (List.for_all2
             (fun (a : Kfuse_fusion.Benefit.edge_report) (b : Kfuse_fusion.Benefit.edge_report) ->
               a.src = b.src && a.dst = b.dst && Float.equal a.weight b.weight)
             serial.Mincut_fusion.edges pooled.Mincut_fusion.edges)
      then Error "serial/pooled edge weights differ bitwise"
      else Ok ())

let same_report ~what (r1 : Driver.report) (r2 : Driver.report) =
  if not (Partition.equal r1.partition r2.partition) then
    Error (Printf.sprintf "%s: replayed partition differs" what)
  else if not (Float.equal r1.objective r2.objective) then
    Error (Printf.sprintf "%s: replayed objective differs bitwise" what)
  else if Fingerprint.exact r1.fused <> Fingerprint.exact r2.fused then
    Error (Printf.sprintf "%s: replayed fused pipeline differs" what)
  else if List.length r1.edges <> List.length r2.edges then
    Error (Printf.sprintf "%s: replayed edge set differs" what)
  else Ok ()

let cache_replay ~cache_dir config p =
  match
    let r1 = Driver.run config Driver.Mincut p in
    if r1.Driver.degraded then
      Error
        (Printf.sprintf "driver degraded on a valid pipeline: %s"
           (String.concat "; " (List.map Kfuse_util.Diag.to_string r1.Driver.warnings)))
    else begin
      let key = Fingerprint.plan_key ~config ~strategy:Driver.Mincut p in
      let cache = Plan_cache.create ~capacity:4 ?dir:cache_dir () in
      Plan_cache.store cache key r1;
      match Plan_cache.find cache key with
      | None -> Error "memory tier lost a just-stored plan"
      | Some (r2, _) ->
        Result.bind (same_report ~what:"memory" r1 r2) (fun () ->
            match cache_dir with
            | None -> Ok ()
            | Some _ -> (
              Plan_cache.clear cache;
              match Plan_cache.find cache key with
              | Some (r3, Plan_cache.Hit_disk) -> same_report ~what:"disk" r1 r3
              | Some (_, o) ->
                Error
                  (Printf.sprintf "disk replay came back as %s"
                     (Plan_cache.outcome_to_string o))
              | None -> Error "disk tier missed a just-stored plan"))
    end
  with
  | exception e -> Error (Printf.sprintf "cache replay raised: %s" (Printexc.to_string e))
  | r -> r

(* Fresh names that collide with nothing already in the pipeline's
   namespace (kernels, inputs, params share it). *)
let namespace p =
  List.map (fun (k : Kernel.t) -> k.Kernel.name) (Array.to_list p.Pipeline.kernels)
  @ p.Pipeline.inputs
  @ List.map fst p.Pipeline.params

let fresh_name taken base =
  let rec go c =
    let n = if c = 0 then base else Printf.sprintf "%s%d" base c in
    if List.mem n taken then go (c + 1) else n
  in
  go 0

let rebuild_kernel (k : Kernel.t) ~name ~ren =
  match k.Kernel.op with
  | Kernel.Map e ->
    Kernel.map ~name ~inputs:(List.map ren k.Kernel.inputs) (Expr.rename_images ren e)
  | Kernel.Reduce { init; combine; arg } ->
    Kernel.reduce ~name ~inputs:(List.map ren k.Kernel.inputs) ~init ~combine
      (Expr.rename_images ren arg)

let mincut_sig config p =
  let r = Mincut_fusion.run config p in
  (r.Mincut_fusion.objective, r.Mincut_fusion.partition)

let meta_rename config p =
  match
    let taken = ref (namespace p) in
    let tbl = Hashtbl.create 8 in
    Array.iteri
      (fun i (k : Kernel.t) ->
        let n = fresh_name !taken (Printf.sprintf "rn%d" i) in
        taken := n :: !taken;
        Hashtbl.replace tbl k.Kernel.name n)
      p.Pipeline.kernels;
    let ren img = Option.value ~default:img (Hashtbl.find_opt tbl img) in
    let kernels =
      List.map
        (fun (k : Kernel.t) -> rebuild_kernel k ~name:(ren k.Kernel.name) ~ren)
        (Array.to_list p.Pipeline.kernels)
    in
    let renamed =
      Pipeline.create ~name:p.Pipeline.name ~width:p.Pipeline.width
        ~height:p.Pipeline.height ~channels:p.Pipeline.channels ~params:p.Pipeline.params
        ~inputs:p.Pipeline.inputs kernels
    in
    if Fingerprint.structural renamed <> Fingerprint.structural p then
      Error "kernel renaming changed the structural fingerprint"
    else begin
      let b1, part1 = mincut_sig config p in
      let b2, part2 = mincut_sig config renamed in
      if not (Float.equal b1 b2) then
        Error (Printf.sprintf "kernel renaming changed beta: %.17g vs %.17g" b1 b2)
      else if not (Partition.equal part1 part2) then
        Error "kernel renaming changed the min-cut partition"
      else Ok ()
    end
  with
  | exception e -> Error (Printf.sprintf "rename oracle raised: %s" (Printexc.to_string e))
  | r -> r

let meta_permute_inputs config p =
  if List.length p.Pipeline.inputs < 2 then Ok ()
  else
    match
      let permuted =
        Pipeline.create ~name:p.Pipeline.name ~width:p.Pipeline.width
          ~height:p.Pipeline.height ~channels:p.Pipeline.channels
          ~params:p.Pipeline.params
          ~inputs:(List.rev p.Pipeline.inputs)
          (Array.to_list p.Pipeline.kernels)
      in
      if Fingerprint.structural permuted <> Fingerprint.structural p then
        Error "input-declaration permutation changed the structural fingerprint"
      else begin
        let b1, part1 = mincut_sig config p in
        let b2, part2 = mincut_sig config permuted in
        if not (Float.equal b1 b2) then
          Error (Printf.sprintf "input permutation changed beta: %.17g vs %.17g" b1 b2)
        else if not (Partition.equal part1 part2) then
          Error "input permutation changed the min-cut partition"
        else Ok ()
      end
    with
    | exception e ->
      Error (Printf.sprintf "permute oracle raised: %s" (Printexc.to_string e))
    | r -> r

let meta_duplicate config p =
  ignore config;
  match
    (* Part A: duplicate a fanned-out kernel, retarget one consumer to
       the twin; Cse.dedup_kernels must restore the pipeline exactly. *)
    let fanned =
      List.find_opt
        (fun i ->
          Iset.cardinal (Pipeline.consumers p i) >= 2
          && not (Kernel.is_global (Pipeline.kernel p i)))
        (List.init (Pipeline.num_kernels p) Fun.id)
    in
    let part_a =
      match fanned with
      | None -> Ok ()
      | Some i ->
        let orig = Pipeline.kernel p i in
        let twin_name = fresh_name (namespace p) (orig.Kernel.name ^ "_tw") in
        let retarget = Iset.max_elt (Pipeline.consumers p i) in
        let ren_to_twin img = if img = orig.Kernel.name then twin_name else img in
        let kernels =
          List.concat
            (List.mapi
               (fun j (k : Kernel.t) ->
                 if j = i then [ k; rebuild_kernel k ~name:twin_name ~ren:Fun.id ]
                 else if j = retarget then
                   [ rebuild_kernel k ~name:k.Kernel.name ~ren:ren_to_twin ]
                 else [ k ])
               (Array.to_list p.Pipeline.kernels))
        in
        let dup =
          Pipeline.create ~name:p.Pipeline.name ~width:p.Pipeline.width
            ~height:p.Pipeline.height ~channels:p.Pipeline.channels
            ~params:p.Pipeline.params ~inputs:p.Pipeline.inputs kernels
        in
        let deduped = Cse.dedup_kernels dup in
        (* Compare against the deduplicated *baseline*: the generator can
           emit byte-identical twins of its own (two convs of the same
           input), which dedup legitimately merges alongside the one we
           injected. *)
        let baseline = Cse.dedup_kernels p in
        if Fingerprint.exact deduped <> Fingerprint.exact baseline then
          Error
            (Printf.sprintf
               "duplicating %s and deduplicating did not restore the pipeline \
                (kernels: %d -> %d -> %d, baseline %d)"
               orig.Kernel.name (Pipeline.num_kernels p) (Pipeline.num_kernels dup)
               (Pipeline.num_kernels deduped) (Pipeline.num_kernels baseline))
        else Ok ()
    in
    (* Part B: an equal-branch select around a kernel body is folded by
       normalization, so the structural fingerprint must not move. *)
    let part_b =
      match
        List.find_opt
          (fun (k : Kernel.t) -> not (Kernel.is_global k))
          (Array.to_list p.Pipeline.kernels)
      with
      | None -> Ok ()
      | Some k ->
        let body = Kernel.body k in
        let wrapped_body =
          Expr.select Expr.Lt (Expr.const 0.0) (Expr.const 1.0) body body
        in
        let kernels =
          List.map
            (fun (k' : Kernel.t) ->
              if k'.Kernel.name = k.Kernel.name then
                Kernel.map ~name:k'.Kernel.name ~inputs:k'.Kernel.inputs wrapped_body
              else k')
            (Array.to_list p.Pipeline.kernels)
        in
        let wrapped = Pipeline.with_kernels p kernels in
        if Fingerprint.structural wrapped <> Fingerprint.structural p then
          Error
            (Printf.sprintf
               "equal-branch select around %s changed the structural fingerprint"
               k.Kernel.name)
        else Ok ()
    in
    Result.bind part_a (fun () -> part_b)
  with
  | exception e -> Error (Printf.sprintf "duplicate oracle raised: %s" (Printexc.to_string e))
  | r -> r

(* Lazy-frontend differential: seed a Lazy_pipeline from the generated
   case, apply a deterministic edit sequence (seeded by the case's own
   exact fingerprint) in bursts, and demand every incremental flush —
   planned through the session's cross-flush memo — be bit-identical to
   planning the same state from scratch.  The seam-check fallback
   firing is itself a failure: it means a memo replay disagreed with
   the legality re-check. *)
let incremental_replan config p =
  match
    let seed =
      String.fold_left
        (fun acc c -> ((acc * 33) + Char.code c) land 0x3FFFFFFF)
        5381 (Fingerprint.exact p)
    in
    let rng = Kfuse_util.Rng.create seed in
    let lp = Kfuse_lazy.Lazy_pipeline.of_pipeline config p in
    let flush_both ~round edits =
      let show d = Kfuse_util.Diag.to_string d in
      match Kfuse_lazy.Lazy_pipeline.flush lp with
      | Error d -> Error (Printf.sprintf "round %d: incremental flush: %s" round (show d))
      | Ok inc -> (
        match Kfuse_lazy.Lazy_pipeline.flush_scratch lp with
        | Error d -> Error (Printf.sprintf "round %d: scratch flush: %s" round (show d))
        | Ok scr ->
          if inc.Kfuse_lazy.Replan.stats.Kfuse_lazy.Replan.fell_back then
            Error
              (Printf.sprintf "round %d: seam re-check rejected the memoized plan (%s)"
                 round edits)
          else if not (String.equal inc.Kfuse_lazy.Replan.fingerprint scr.Kfuse_lazy.Replan.fingerprint)
          then
            Error
              (Printf.sprintf
                 "round %d: incremental /= scratch after [%s]: %s vs %s (partitions %s vs %s)"
                 round edits
                 inc.Kfuse_lazy.Replan.fingerprint scr.Kfuse_lazy.Replan.fingerprint
                 (pp_partition inc.Kfuse_lazy.Replan.partition)
                 (pp_partition scr.Kfuse_lazy.Replan.partition))
          else Ok ())
    in
    let rec rounds i acc =
      match acc with
      | Error _ -> acc
      | Ok () ->
        if i > 3 then acc
        else (
          let edits = Kfuse_lazy.Edits.random_sequence rng lp 3 in
          let shown = String.concat "; " (List.map Kfuse_lazy.Edits.to_string edits) in
          rounds (i + 1) (flush_both ~round:i shown))
    in
    rounds 1 (flush_both ~round:0 "<none>")
  with
  | exception e ->
    Error (Printf.sprintf "incremental-replan oracle raised: %s" (Printexc.to_string e))
  | r -> r

(* Interpreter-vs-native differential: plan through the production
   driver, compile the fused result with the host C toolchain, execute
   it on the same deterministic pixels {!eval_exact} sees, and demand
   bit-exact agreement with the interpreter on the original pipeline —
   double-precision buffers and marshalling (ABI v2) make exactness the
   right bar, not a tolerance.  Skips cleanly (Ok) when the host has no
   C compiler, so campaigns stay green on toolchain-less machines. *)
let native_exec ~cache_dir config p =
  match Toolchain.find () with
  | Error _ -> Ok ()
  | Ok _ -> (
    match
      let inputs = eval_inputs p in
      let ref_out = Eval.run_outputs p (Eval.env_of_list inputs) in
      let r = Driver.run config Driver.Mincut p in
      let native_dir = Option.map (fun d -> Filename.concat d "native") cache_dir in
      match Native.run ?cache_dir:native_dir r.Driver.fused inputs with
      | Error d ->
        Error
          (Printf.sprintf "native execution failed: %s" (Kfuse_util.Diag.to_string d))
      | Ok res ->
        compare_outputs ~what:"native vs interpreter" ref_out res.Native.outputs
    with
    | exception e -> Error (Printf.sprintf "native oracle raised: %s" (Printexc.to_string e))
    | r -> r)

(* Multi-frame streaming differential: window the same pipeline two
   ways — the interpreter via {!Session.push}, and the natively compiled
   fused plan pinned {e once} ({!Native.prepare}) and run per frame —
   and demand bitwise agreement on every frame of a short synthetic
   sequence.  The state carried between frames (the sliding input
   window) is part of the oracle: a lag clamped wrong at cold start, a
   window advanced twice, or a pinned artifact gone stale would break
   frame k > 0 even when frame 0 agrees.  Skips cleanly on
   non-streamable pipelines (zero or several current inputs) and on
   toolchain-less hosts. *)
let stream_frames = 6

let stream_exec ~cache_dir config p =
  match Toolchain.find () with
  | Error _ -> Ok ()
  | Ok _ -> (
    match Session.create p with
    | Error _ -> Ok () (* not streamable: no single current-frame input *)
    | Ok ref_session -> (
      match
        let r = Driver.run config Driver.Mincut p in
        match Session.create r.Driver.fused with
        | Error d ->
          Error
            (Printf.sprintf "fusion broke streamability: %s"
               (Kfuse_util.Diag.to_string d))
        | Ok native_session -> (
          let native_dir = Option.map (fun d -> Filename.concat d "native") cache_dir in
          let plan =
            match Native.prepare ?cache_dir:native_dir ~mode:Native.Dlopen r.Driver.fused with
            | Ok _ as ok -> ok
            | Error d when d.Kfuse_util.Diag.code = Kfuse_util.Diag.Exec_failed ->
              Native.prepare ?cache_dir:native_dir ~mode:Native.Subprocess r.Driver.fused
            | Error _ as e -> e
          in
          match plan with
          | Error d ->
            Error
              (Printf.sprintf "pinning the stream plan failed: %s"
                 (Kfuse_util.Diag.to_string d))
          | Ok plan ->
            Fun.protect ~finally:(fun () -> Native.release plan) @@ fun () ->
            let fp = Fingerprint.exact p in
            let seed = String.fold_left (fun a c -> (a * 131) + Char.code c) 11 fp in
            let rec frames i =
              if i >= stream_frames then Ok ()
              else
                let frame =
                  Frames.synthetic ~seed ~width:p.Pipeline.width
                    ~height:p.Pipeline.height ~index:i
                in
                let ref_out = Session.push ref_session frame in
                let bindings = Session.bindings native_session frame in
                match Native.run_plan plan bindings with
                | Error d ->
                  Error
                    (Printf.sprintf "frame %d: native execution failed: %s" i
                       (Kfuse_util.Diag.to_string d))
                | Ok res -> (
                  Session.advance native_session frame;
                  match
                    compare_outputs
                      ~what:(Printf.sprintf "frame %d native vs interpreter" i)
                      ref_out res.Native.outputs
                  with
                  | Ok () -> frames (i + 1)
                  | Error _ as e -> e)
            in
            frames 0)
      with
      | exception e ->
        Error (Printf.sprintf "stream oracle raised: %s" (Printexc.to_string e))
      | r -> r))

let unparse_roundtrip p =
  match
    let norm = Corpus.normalize p in
    match Kfuse_dsl.Unparse.pipeline norm with
    | Error _ -> Ok ()  (* outside the DSL fragment: nothing to check *)
    | Ok text -> (
      match Kfuse_dsl.Elaborate.parse_pipeline text with
      | Error e -> Error (Printf.sprintf "unparsed pipeline fails to parse: %s" e)
      | Ok reloaded ->
        if Fingerprint.exact reloaded <> Fingerprint.exact norm then
          Error "unparse/parse round-trip is not the identity (exact fingerprints differ)"
        else Ok ())
  with
  | exception e -> Error (Printf.sprintf "round-trip oracle raised: %s" (Printexc.to_string e))
  | r -> r

(* ---- the bank ---- *)

let check ?(which = all) ?pool ?cache_dir ?(strict_optimal = false) ?(max_exhaustive = 8)
    config p =
  let optimality = ref Not_checked in
  let rec go = function
    | [] -> { failure = None; optimality = !optimality }
    | oracle :: rest -> (
      let result =
        match oracle with
        | Validate_ok -> validate_ok p
        | Legality -> legality config p
        | Beta_optimal ->
          Result.map
            (fun o ->
              optimality := o;
              ())
            (beta_optimal ~strict:strict_optimal ~max_exhaustive config p)
        | Eval_exact -> eval_exact config p
        | Pool_determinism -> pool_determinism ~pool config p
        | Cache_replay -> cache_replay ~cache_dir config p
        | Meta_rename -> meta_rename config p
        | Meta_permute_inputs -> meta_permute_inputs config p
        | Meta_duplicate -> meta_duplicate config p
        | Unparse_roundtrip -> unparse_roundtrip p
        | Incremental_replan -> incremental_replan config p
        | Native_exec -> native_exec ~cache_dir config p
        | Stream_exec -> stream_exec ~cache_dir config p
      in
      match result with
      | Ok () -> go rest
      | Error detail -> { failure = Some { oracle; detail }; optimality = !optimality })
  in
  go which
