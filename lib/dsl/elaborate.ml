module Border = Kfuse_image.Border
module Mask = Kfuse_image.Mask
module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline

exception Elab_error of { pos : Ast.position; msg : string }

let fail pos fmt = Printf.ksprintf (fun msg -> raise (Elab_error { pos; msg })) fmt

let named_mask = function
  | "gauss3" -> Some Mask.gaussian_3x3
  | "gauss5" -> Some Mask.gaussian_5x5
  | "sobelx" -> Some Mask.sobel_x
  | "sobely" -> Some Mask.sobel_y
  | "mean3" -> Some (Mask.mean 3)
  | "mean5" -> Some (Mask.mean 5)
  | _ -> None

let resolve_mask pos = function
  | Ast.Named_mask name -> (
    match named_mask name with
    | Some m -> m
    | None -> fail pos "unknown mask %S" name)
  | Ast.Literal_mask rows -> (
    match Mask.of_rows rows with
    | m -> m
    | exception Invalid_argument msg -> fail pos "invalid mask: %s" msg)

let unop_of_name pos = function
  | "sqrt" -> Expr.Sqrt
  | "exp" -> Expr.Exp
  | "log" -> Expr.Log
  | "sin" -> Expr.Sin
  | "cos" -> Expr.Cos
  | "abs" -> Expr.Abs
  | "floor" -> Expr.Floor
  | s -> fail pos "unknown unary function %S" s

(* [env]: let-bound variables (innermost first), params, and image names
   (inputs + earlier definitions) in scope. *)
let rec elab_expr ~pos ~vars ~params ~images e =
  let recur = elab_expr ~pos ~vars ~params ~images in
  match e with
  | Ast.Num f -> Expr.Const f
  | Ast.Ref name ->
    if List.mem name vars then Expr.var name
    else if List.mem name params then Expr.Param name
    else if List.mem name images then Expr.input name
    else fail pos "unknown name %S (not a binding, parameter, input, or earlier kernel)" name
  | Ast.Let_in { name; value; body } ->
    let value = recur value in
    let body = elab_expr ~pos ~vars:(name :: vars) ~params ~images body in
    Expr.let_ name value body
  | Ast.Access { name; dx; dy; border } ->
    if not (List.mem name images) then
      fail pos "windowed access to unknown image %S" name;
    Expr.input ~border:(Option.value ~default:Border.Clamp border) ~dx ~dy name
  | Ast.Conv { image; mask; border } ->
    if not (List.mem image images) then fail pos "conv over unknown image %S" image;
    Expr.conv
      ~border:(Option.value ~default:Border.Clamp border)
      (resolve_mask pos mask) image
  (* A negated literal is a literal: without this fold, "(-1.5)" would
     elaborate to [Neg (Const 1.5)] and a Const-containing pipeline would
     not round-trip through the DSL bit-for-bit. *)
  | Ast.Unary ("-", Ast.Num f) -> Expr.Const (-.f)
  | Ast.Unary ("-", a) -> Expr.neg (recur a)
  | Ast.Unary ("clamp01", a) -> Expr.clamp01 (recur a)
  | Ast.Unary (name, a) -> Expr.Unop (unop_of_name pos name, recur a)
  | Ast.Binary ("+", a, b) -> Expr.Binop (Expr.Add, recur a, recur b)
  | Ast.Binary ("-", a, b) -> Expr.Binop (Expr.Sub, recur a, recur b)
  | Ast.Binary ("*", a, b) -> Expr.Binop (Expr.Mul, recur a, recur b)
  | Ast.Binary ("/", a, b) -> Expr.Binop (Expr.Div, recur a, recur b)
  | Ast.Binary (op, _, _) -> fail pos "unknown operator %S" op
  | Ast.Call ("select", [ a; b; t; f ]) ->
    Expr.select Expr.Lt (recur a) (recur b) (recur t) (recur f)
  | Ast.Call ("min", [ a; b ]) -> Expr.min (recur a) (recur b)
  | Ast.Call ("max", [ a; b ]) -> Expr.max (recur a) (recur b)
  | Ast.Call ("pow", [ a; b ]) -> Expr.pow (recur a) (recur b)
  | Ast.Call (name, _) -> fail pos "unknown function %S" name

let pipeline ?width ?height (ast : Ast.pipeline) =
  let size =
    List.find_map
      (function Ast.Size { width; height; channels } -> Some (width, height, channels) | _ -> None)
      ast.Ast.stmts
  in
  let dsl_w, dsl_h, channels =
    match size with
    | Some (w, h, c) -> (w, h, Option.value ~default:1 c)
    | None -> (2048, 2048, 1)
  in
  let width = Option.value ~default:dsl_w width in
  let height = Option.value ~default:dsl_h height in
  let params =
    List.filter_map
      (function Ast.Param_decl (n, v) -> Some (n, v) | _ -> None)
      ast.Ast.stmts
  in
  let param_names = List.map fst params in
  let defs =
    List.filter_map
      (function Ast.Def { name; body; pos } -> Some (name, body, pos) | _ -> None)
      ast.Ast.stmts
  in
  let _, kernels =
    List.fold_left
      (fun (images, acc) (name, body, pos) ->
        let elab = elab_expr ~pos ~vars:[] ~params:param_names ~images in
        let kernel =
          match body with
          | Ast.Map_def e ->
            let ir = elab e in
            Kernel.map ~name ~inputs:(Expr.images ir) ir
          | Ast.Reduce_def (op, e) ->
            let ir = elab e in
            let combine =
              match op with `Sum -> Expr.Add | `Min -> Expr.Min | `Max -> Expr.Max
            in
            let init =
              match op with `Sum -> 0.0 | `Min -> Float.infinity | `Max -> Float.neg_infinity
            in
            Kernel.reduce ~name ~inputs:(Expr.images ir) ~init ~combine ir
        in
        (name :: images, kernel :: acc))
      (ast.Ast.inputs, []) defs
  in
  Pipeline.create ~name:ast.Ast.name ~width ~height ~channels ~params
    ~inputs:ast.Ast.inputs (List.rev kernels)

let parse_pipeline ?width ?height src =
  match Parser.parse_result src with
  | Error _ as e -> e
  | Ok ast -> (
    match pipeline ?width ?height ast with
    | p -> Ok p
    | exception Elab_error { pos; msg } ->
      Error (Printf.sprintf "line %d, column %d: %s" pos.Ast.line pos.Ast.col msg)
    | exception Invalid_argument msg -> Error msg)

let parse_pipeline_diag ?width ?height ?file src =
  let module Diag = Kfuse_util.Diag in
  match Parser.parse_result src with
  | Error msg -> Error (Diag.v ?file Diag.Parse_error msg)
  | Ok ast -> (
    match pipeline ?width ?height ast with
    | p -> Ok p
    | exception Elab_error { pos; msg } ->
      Error (Diag.v ?file ~line:pos.Ast.line ~col:pos.Ast.col Diag.Elab_error msg)
    | exception Invalid_argument msg ->
      (* Structural violations [Pipeline.create] caught: re-derive the
         typed diagnostic from the validator when possible. *)
      Error (Diag.v ?file Diag.Elab_error msg))
