module Expr = Kfuse_ir.Expr

let inline_producers ~exchange ~fresh ~produced body =
  (* Count point reads of each produced image occurring outside Shift
     frames: only those may share a register. *)
  let counts = Hashtbl.create 4 in
  let rec scan in_shift e =
    match e with
    | Expr.Input { image; dx = 0; dy = 0; _ } when (not in_shift) && produced image <> None
      ->
      Hashtbl.replace counts image
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts image))
    | Expr.Input _ | Expr.Const _ | Expr.Param _ | Expr.Var _ -> ()
    | Expr.Let { value; body; _ } ->
      scan in_shift value;
      scan in_shift body
    | Expr.Unop (_, a) -> scan in_shift a
    | Expr.Binop (_, a, b) ->
      scan in_shift a;
      scan in_shift b
    | Expr.Select { lhs; rhs; if_true; if_false; _ } ->
      List.iter (scan in_shift) [ lhs; rhs; if_true; if_false ]
    | Expr.Shift { body; _ } -> scan true body
  in
  scan false body;
  let bindings = ref [] in
  let binding_var = Hashtbl.create 4 in
  let rec go in_shift e =
    match e with
    | Expr.Const _ | Expr.Param _ | Expr.Var _ -> e
    | Expr.Input { image; dx; dy; border } -> (
      match produced image with
      | None -> e
      | Some producer_body ->
        if dx = 0 && dy = 0 then
          if (not in_shift) && Option.value ~default:0 (Hashtbl.find_opt counts image) >= 2
          then begin
            match Hashtbl.find_opt binding_var image with
            | Some v -> Expr.Var v
            | None ->
              let v = fresh image in
              Hashtbl.replace binding_var image v;
              bindings := (v, producer_body) :: !bindings;
              Expr.Var v
          end
          else producer_body
        else
          (* Windowed access: recompute the producer at the shifted
             position (the redundant computation priced by phi), with
             index exchange replaying the consumer's border mode. *)
          Expr.Shift
            {
              dx;
              dy;
              exchange = (if exchange then Some border else None);
              body = producer_body;
            })
    | Expr.Let { var; value; body } ->
      Expr.Let { var; value = go in_shift value; body = go in_shift body }
    | Expr.Unop (op, a) -> Expr.Unop (op, go in_shift a)
    | Expr.Binop (op, a, b) -> Expr.Binop (op, go in_shift a, go in_shift b)
    | Expr.Select { cmp; lhs; rhs; if_true; if_false } ->
      Expr.Select
        {
          cmp;
          lhs = go in_shift lhs;
          rhs = go in_shift rhs;
          if_true = go in_shift if_true;
          if_false = go in_shift if_false;
        }
    | Expr.Shift { dx; dy; exchange = ex; body } ->
      Expr.Shift { dx; dy; exchange = ex; body = go true body }
  in
  let substituted = go false body in
  List.fold_left
    (fun acc (v, value) -> Expr.Let { var = v; value; body = acc })
    substituted !bindings
