(** DAG queries: topological order, reachability, components.

    Pipelines must be acyclic (Section II); these helpers validate that and
    provide the orderings the fusion transform needs (fused kernel bodies
    are concatenated in a topological order of the partition block). *)

(** Raised by {!sort} when the graph has a directed cycle; carries one
    cycle as a vertex list. *)
exception Cycle of int list

(** [sort g] is a topological order of the vertices of [g]; deterministic
    (smallest-id vertex first among ready vertices).
    @raise Cycle if [g] is not a DAG. *)
val sort : Digraph.t -> int list

(** [is_dag g] tests acyclicity. *)
val is_dag : Digraph.t -> bool

(** [reachable g v] is the set of vertices reachable from [v] by directed
    paths, including [v] itself. *)
val reachable : Digraph.t -> int -> Kfuse_util.Iset.t

(** [co_reachable g v] is the set of vertices that reach [v], including
    [v]. *)
val co_reachable : Digraph.t -> int -> Kfuse_util.Iset.t

(** [has_path g u v] tests whether a directed path [u ->* v] exists
    ([has_path g v v] is [true]). *)
val has_path : Digraph.t -> int -> int -> bool

(** [sources g] is the set of vertices with no predecessor. *)
val sources : Digraph.t -> Kfuse_util.Iset.t

(** [sinks g] is the set of vertices with no successor. *)
val sinks : Digraph.t -> Kfuse_util.Iset.t

(** [undirected_components g] is the list of weakly connected components
    (vertex sets), in increasing order of their smallest vertex. *)
val undirected_components : Digraph.t -> Kfuse_util.Iset.t list

(** [is_weakly_connected g vs] tests whether the subgraph of [g] induced
    by [vs] is connected when edge directions are ignored.  The empty set
    and singletons are connected. *)
val is_weakly_connected : Digraph.t -> Kfuse_util.Iset.t -> bool
