lib/image/image.mli: Border Format Kfuse_util
