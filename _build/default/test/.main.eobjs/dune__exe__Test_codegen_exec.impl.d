test/test_codegen_exec.ml: Alcotest Buffer Filename Float In_channel Kfuse_apps Kfuse_codegen Kfuse_fusion Kfuse_image Kfuse_ir Kfuse_util Lazy List Option Printf String Sys Unix
