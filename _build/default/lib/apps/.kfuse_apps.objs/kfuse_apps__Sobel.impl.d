lib/apps/sobel.ml: Kfuse_image Kfuse_ir
