(* Reproduction of Figure 4: fusing two stencil kernels is only correct
   when the intermediate image's border handling is replayed inside the
   fused kernel — the paper's index-exchange method (Section IV-B).

   (a) interior body fusion of two unnormalized 3x3 Gaussians -> 992
   (b) naive fused border handling at the top-left corner is WRONG
   (c) index-exchange fused border handling matches the unfused result
       -> 763

   Note: for (b) the paper prints 648, but convolving the intermediate
   matrix the paper itself shows ([16 24 56; 24 34 68; 48 57 82]) yields
   684 — a digit transposition in the paper; we reproduce 684.

   Run with: dune exec examples/border_fusion_demo.exe *)

module F = Kfuse_fusion
module Ir = Kfuse_ir
module Img = Kfuse_image
module Iset = Kfuse_util.Iset

let matrix =
  [
    [ 1.; 3.; 7.; 7.; 6. ];
    [ 3.; 7.; 9.; 6.; 8. ];
    [ 5.; 4.; 3.; 2.; 1. ];
    [ 4.; 1.; 2.; 1.; 2. ];
    [ 5.; 2.; 2.; 4.; 2. ];
  ]

let () =
  let img = Img.Image.of_rows matrix in
  let g = Img.Mask.gaussian_3x3_unnormalized in
  Format.printf "input (Figure 4a):@.%a@.@." Img.Image.pp img;

  (* (a) interior composition: the center pixel needs no border pixels. *)
  let c1 = Img.Convolve.apply ~border:Img.Border.Clamp g img in
  let c2 = Img.Convolve.apply ~border:Img.Border.Clamp g c1 in
  Format.printf "double convolution at the center (paper: 992): %g@.@."
    (Img.Image.get c2 2 2);

  (* (b)/(c): the full pipeline with clamp borders, fused both ways. *)
  let p =
    Ir.Pipeline.create ~name:"fig4" ~width:5 ~height:5 ~inputs:[ "in" ]
      [
        Ir.Kernel.map ~name:"c1" ~inputs:[ "in" ]
          (Ir.Expr.conv ~border:Img.Border.Clamp g "in");
        Ir.Kernel.map ~name:"c2" ~inputs:[ "c1" ]
          (Ir.Expr.conv ~border:Img.Border.Clamp g "c1");
      ]
  in
  let env = Ir.Eval.env_of_list [ ("in", img) ] in
  let reference = snd (List.hd (Ir.Eval.run_outputs p env)) in
  let block = [ Iset.of_list [ 0; 1 ] ] in
  let run ~exchange =
    let fused = F.Transform.apply ~exchange p block in
    snd (List.hd (Ir.Eval.run_outputs fused env))
  in
  let naive = run ~exchange:false in
  let exchanged = run ~exchange:true in

  Format.printf "unfused reference:@.%a@.@." Img.Image.pp reference;
  Format.printf "naive fused (Figure 4b, incorrect in the halo):@.%a@.@." Img.Image.pp
    naive;
  Format.printf "index-exchange fused (Figure 4c):@.%a@.@." Img.Image.pp exchanged;

  Format.printf "top-left corner: unfused %g | naive %g | exchange %g@."
    (Img.Image.get reference 0 0) (Img.Image.get naive 0 0)
    (Img.Image.get exchanged 0 0);
  Format.printf "naive max error: %g;  index-exchange max error: %g@."
    (Img.Image.max_abs_diff reference naive)
    (Img.Image.max_abs_diff reference exchanged);

  (* The halo grows with the fused radius: interior width shrinks by
     2 * (r1 + r2) (Section IV-B). *)
  let width = 5 in
  Format.printf "@.interior width unfused: %d; fused: %d@."
    (Img.Region.interior_width ~image_width:width ~mask_width:3)
    (Img.Region.interior_width ~image_width:width
       ~mask_width:(2 * Img.Region.fused_radius [ 1; 1 ] + 1))
