type severity = Error | Warning | Note

type code =
  | Io_error
  | Parse_error
  | Elab_error
  | Pgm_format
  | Config_invalid
  | Cycle
  | Dangling_ref
  | Duplicate_name
  | Empty_iteration_space
  | Mask_too_large
  | Global_consumed
  | Unbound_param
  | Empty_pipeline
  | Invalid_partition
  | Strategy_failed
  | Budget_exceeded
  | Cache_corrupt
  | Protocol_error
  | Service_error
  | Overloaded
  | Request_timeout
  | Stream_backpressure
  | Stream_unknown
  | Shard_degraded
  | Shard_unavailable
  | Fault_injected
  | Toolchain_missing
  | Compile_failed
  | Exec_failed
  | Exec_timeout
  | Exec_crashed
  | Exec_limit
  | Internal_error

type context = { file : string option; line : int option; col : int option }

type t = { code : code; severity : severity; message : string; context : context }

exception Fatal of t

let code_id = function
  | Io_error -> "KF0101"
  | Parse_error -> "KF0201"
  | Elab_error -> "KF0202"
  | Pgm_format -> "KF0301"
  | Config_invalid -> "KF0401"
  | Cycle -> "KF0501"
  | Dangling_ref -> "KF0502"
  | Duplicate_name -> "KF0503"
  | Empty_iteration_space -> "KF0504"
  | Mask_too_large -> "KF0505"
  | Global_consumed -> "KF0506"
  | Unbound_param -> "KF0507"
  | Empty_pipeline -> "KF0508"
  | Invalid_partition -> "KF0601"
  | Strategy_failed -> "KF0602"
  | Budget_exceeded -> "KF0603"
  | Cache_corrupt -> "KF0701"
  | Protocol_error -> "KF0801"
  | Service_error -> "KF0802"
  | Overloaded -> "KF0803"
  | Request_timeout -> "KF0804"
  | Stream_backpressure -> "KF0805"
  | Stream_unknown -> "KF0806"
  | Shard_degraded -> "KF0807"
  | Shard_unavailable -> "KF0808"
  | Fault_injected -> "KF0901"
  | Toolchain_missing -> "KF0902"
  | Compile_failed -> "KF0903"
  | Exec_failed -> "KF0904"
  | Exec_timeout -> "KF0905"
  | Exec_crashed -> "KF0906"
  | Exec_limit -> "KF0907"
  | Internal_error -> "KF0999"

let all_codes =
  [
    Io_error; Parse_error; Elab_error; Pgm_format; Config_invalid; Cycle;
    Dangling_ref; Duplicate_name; Empty_iteration_space; Mask_too_large;
    Global_consumed; Unbound_param; Empty_pipeline; Invalid_partition;
    Strategy_failed; Budget_exceeded; Cache_corrupt; Protocol_error;
    Service_error; Overloaded; Request_timeout; Stream_backpressure;
    Stream_unknown; Shard_degraded; Shard_unavailable; Fault_injected;
    Toolchain_missing; Compile_failed; Exec_failed; Exec_timeout;
    Exec_crashed; Exec_limit; Internal_error;
  ]

let code_of_id id = List.find_opt (fun c -> code_id c = id) all_codes

let no_context = { file = None; line = None; col = None }

let v ?(severity = Error) ?file ?line ?col code message =
  { code; severity; message; context = { file; line; col } }

let errorf ?file ?line ?col code fmt =
  Printf.ksprintf (fun message -> v ~severity:Error ?file ?line ?col code message) fmt

let warningf ?file ?line ?col code fmt =
  Printf.ksprintf (fun message -> v ~severity:Warning ?file ?line ?col code message) fmt

let is_error d = d.severity = Error

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

let context_to_string c =
  match (c.file, c.line, c.col) with
  | None, None, _ -> ""
  | Some f, None, _ -> f ^ ": "
  | Some f, Some l, None -> Printf.sprintf "%s:%d: " f l
  | Some f, Some l, Some k -> Printf.sprintf "%s:%d:%d: " f l k
  | None, Some l, None -> Printf.sprintf "line %d: " l
  | None, Some l, Some k -> Printf.sprintf "line %d, column %d: " l k

let to_string d =
  Printf.sprintf "%s[%s]: %s%s"
    (severity_to_string d.severity)
    (code_id d.code)
    (context_to_string d.context)
    d.message

let pp ppf d = Format.pp_print_string ppf (to_string d)

let of_exn = function
  | Fatal d -> d
  | Sys_error msg -> v Io_error msg
  | Invalid_argument msg | Failure msg -> v Internal_error msg
  | Not_found -> v Internal_error "Not_found"
  | exn -> v Internal_error (Printexc.to_string exn)

let fail d = raise (Fatal d)

let catch f =
  match f () with
  | x -> Ok x
  | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
  | exception exn -> Error (of_exn exn)
