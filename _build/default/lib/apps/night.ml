(** Night post-processing filter (Section V-B, after Jensen et al.'s
    night rendering).

    Three linearly dependent kernels on a 1920x1200 RGB image (planar,
    [channels = 3]): [atrous0] and [atrous1] run the a-trous ("with
    holes") algorithm twice (3x3, then a dilated 5x5) to approximate
    bilateral filtering, and the point kernel [scoto] applies a scotopic
    tone-mapping curve.

    The two a-trous kernels are compute-heavy (the paper counts 68 ALU
    operations in the Hipacc implementation; [scoto] uses 89), so the
    benefit model finds the redundant-computation cost of the
    local-to-local fusion [(atrous0, atrous1)] to outweigh the locality
    gain and leaves them unfused; only the local-to-point pair
    [(atrous1, scoto)] fuses.  This makes Night the paper's example of a
    compute-bound pipeline that barely benefits (max speedup 1.02). *)

module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Border = Kfuse_image.Border

let default_width = 1920
let default_height = 1200
let default_channels = 3

(* One a-trous level: an edge-stopping weighted average over a 3x3 tap
   pattern dilated by [step].  Each tap contributes a rational range
   weight 1 / (1 + (p - center)^2) scaled by its binomial spatial weight;
   normalization uses a fixed constant so the expression stays a pure
   weighted sum (the shape Hipacc generates after strength reduction). *)
let atrous_body ~border ~step image =
  let open Expr in
  let center = input ~border image in
  let spatial dx dy =
    let w1 = if dx = 0 then 2.0 else 1.0 in
    let w2 = if dy = 0 then 2.0 else 1.0 in
    w1 *. w2 /. 16.0
  in
  let tap dx dy =
    let p = input ~border ~dx:(Stdlib.( * ) dx step) ~dy:(Stdlib.( * ) dy step) image in
    let d = p - center in
    let range = const 1.0 / (const 1.0 + (d * d)) in
    const (spatial dx dy) * range * p
  in
  let taps =
    List.concat_map (fun dy -> List.map (fun dx -> tap dx dy) [ -1; 0; 1 ]) [ -1; 0; 1 ]
  in
  let sum = match taps with t :: rest -> List.fold_left ( + ) t rest | [] -> assert false in
  (* Fixed normalization: the range weights are <= 1, the spatial weights
     sum to 1; rescale towards unity gain. *)
  const 1.6 * sum

(* Scotopic tone mapping: a blend of rod and cone response curves, each a
   polynomial in the input luminance (Horner form), mixed by a mesopic
   blend factor.  Deliberately compute-heavy, matching the 89 ALU
   operations the paper counts for the Hipacc Scoto kernel. *)
let scoto_body image =
  let open Expr in
  let y = input image in
  let horner coeffs =
    match coeffs with
    | [] -> const 0.0
    | c0 :: rest -> List.fold_left (fun acc c -> (acc * y) + const c) (const c0) rest
  in
  let rod =
    horner
      [ 0.02; -0.11; 0.24; -0.31; 0.42; -0.27; 0.33; -0.18; 0.25; -0.12; 0.21;
        -0.08; 0.17; -0.05; 0.13; -0.02; 0.09; 0.01; 0.05; 0.35 ]
  in
  let cone =
    horner
      [ 0.01; -0.07; 0.19; -0.26; 0.38; -0.22; 0.29; -0.15; 0.22; -0.09; 0.18;
        -0.06; 0.14; -0.03; 0.11; -0.01; 0.07; 0.02; 0.04; 0.55 ]
  in
  (* Mesopic blend with an exponential rod falloff, plus a final gamma —
     the transcendental tail every published tone-mapping curve has. *)
  let blend = clamp01 (const 1.0 - exp (neg (y / const 0.12))) in
  let night_tint = const 0.85 in
  let mixed = night_tint * ((blend * cone) + ((const 1.0 - blend) * rod)) in
  pow (max (const 0.0) mixed) (const 0.4545)

(** [pipeline ?width ?height ?channels ()] is the Night pipeline;
    defaults to the paper's 1920x1200 RGB (3 planes). *)
let pipeline ?(width = default_width) ?(height = default_height)
    ?(channels = default_channels) () =
  let border = Border.Clamp in
  let atrous0 =
    Kernel.map ~name:"atrous0" ~inputs:[ "in" ] (atrous_body ~border ~step:1 "in")
  in
  let atrous1 =
    Kernel.map ~name:"atrous1" ~inputs:[ "atrous0" ]
      (atrous_body ~border ~step:2 "atrous0")
  in
  let scoto = Kernel.map ~name:"scoto" ~inputs:[ "atrous1" ] (scoto_body "atrous1") in
  Pipeline.create ~name:"night" ~width ~height ~channels ~inputs:[ "in" ]
    [ atrous0; atrous1; scoto ]
