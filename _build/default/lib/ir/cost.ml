type counts = { alu : int; sfu : int }

let zero = { alu = 0; sfu = 0 }
let add_alu c = { c with alu = c.alu + 1 }
let add_sfu c = { c with sfu = c.sfu + 1 }

let classify_unop = function
  | Expr.Neg | Expr.Abs | Expr.Floor -> `Alu
  | Expr.Sqrt | Expr.Exp | Expr.Log | Expr.Sin | Expr.Cos -> `Sfu

let classify_binop = function
  | Expr.Add | Expr.Sub | Expr.Mul | Expr.Min | Expr.Max -> `Alu
  | Expr.Div | Expr.Pow -> `Sfu

let rec count acc e =
  match e with
  | Expr.Const _ | Expr.Param _ | Expr.Input _ | Expr.Var _ -> acc
  | Expr.Let { value; body; _ } -> count (count acc value) body
  | Expr.Unop (op, a) ->
    let acc = match classify_unop op with `Alu -> add_alu acc | `Sfu -> add_sfu acc in
    count acc a
  | Expr.Binop (op, a, b) ->
    let acc = match classify_binop op with `Alu -> add_alu acc | `Sfu -> add_sfu acc in
    count (count acc a) b
  | Expr.Select { lhs; rhs; if_true; if_false; _ } ->
    List.fold_left count (add_alu acc) [ lhs; rhs; if_true; if_false ]
  | Expr.Shift { body; _ } -> count acc body

let op_counts e = count zero e

let kernel_op_counts (k : Kernel.t) =
  match k.op with
  | Kernel.Map e -> add_alu (op_counts e)
  | Kernel.Reduce { combine; arg; _ } ->
    let acc = op_counts arg in
    let acc = match classify_binop combine with `Alu -> add_alu acc | `Sfu -> add_sfu acc in
    add_alu acc

let cost_op ~c_alu ~c_sfu { alu; sfu } =
  (c_alu *. float_of_int alu) +. (c_sfu *. float_of_int sfu)

type block = { bx : int; by : int }

let default_block = { bx = 32; by = 4 }

let tile_bytes block ~radius =
  if radius < 0 then invalid_arg "Cost.tile_bytes: negative radius";
  (block.bx + (2 * radius)) * (block.by + (2 * radius)) * 4

let tile_bytes_window block (w : Footprint.window) =
  (block.bx + Footprint.width w - 1) * (block.by + Footprint.height w - 1) * 4

let kernel_shared_bytes block k =
  if Kernel.is_global k then 0
  else
    List.fold_left
      (fun acc (_, w) ->
        if Footprint.is_point w then acc else acc + tile_bytes_window block w)
      0 (Footprint.of_kernel k)

(* Sethi-Ullman labeling: registers needed to evaluate a binary node are
   max of the children when they differ, one more when equal; a Let holds
   its value in a register for the whole body. *)
let rec register_estimate e =
  match e with
  | Expr.Const _ | Expr.Param _ | Expr.Input _ | Expr.Var _ -> 1
  | Expr.Unop (_, a) -> register_estimate a
  | Expr.Binop (_, a, b) ->
    let ra = register_estimate a and rb = register_estimate b in
    if ra = rb then ra + 1 else max ra rb
  | Expr.Select { lhs; rhs; if_true; if_false; _ } ->
    (* Comparison operands are evaluated together, branches sequentially. *)
    let rcond =
      let ra = register_estimate lhs and rb = register_estimate rhs in
      if ra = rb then ra + 1 else max ra rb
    in
    List.fold_left max rcond [ register_estimate if_true; register_estimate if_false ]
  | Expr.Let { value; body; _ } ->
    max (register_estimate value) (1 + register_estimate body)
  | Expr.Shift { body; _ } -> register_estimate body

let kernel_registers ?(base = 10) (k : Kernel.t) =
  let body = match k.Kernel.op with Kernel.Map e -> e | Kernel.Reduce { arg; _ } -> arg in
  min 255 (base + register_estimate body)
