(** Square convolution masks.

    The paper assumes square, odd-sized masks such as 3x3 or 5x5
    (Section II-C.3); the fused-mask-growth formula Eq. 9 is stated for
    this shape.  Masks are stored row-major with the anchor at the
    center. *)

type t

(** [of_rows rows] builds a mask from a square, odd-sized list of rows.
    @raise Invalid_argument on non-square or even-sized input. *)
val of_rows : float list list -> t

(** [size m] is the side length (odd). *)
val size : t -> int

(** [radius m] is [(size - 1) / 2]. *)
val radius : t -> int

(** [area m] is [size * size] — the [sz()] quantity of Eqs. 7 and 9. *)
val area : t -> int

(** [get m dx dy] is the coefficient at offset [(dx, dy)] from the
    anchor, with [|dx|, |dy| <= radius].
    @raise Invalid_argument when outside the mask. *)
val get : t -> int -> int -> float

(** [fold f acc m] folds [f acc dx dy coeff] over all offsets in
    row-major order (top-left to bottom-right). *)
val fold : ('a -> int -> int -> float -> 'a) -> 'a -> t -> 'a

(** [sum m] is the sum of all coefficients. *)
val sum : t -> float

(** [gaussian_3x3] is the paper's running example: the binomial
    [1 2 1; 2 4 2; 1 2 1] kernel normalized by 1/16. *)
val gaussian_3x3 : t

(** [gaussian_3x3_unnormalized] is the integer binomial kernel
    [1 2 1; 2 4 2; 1 2 1] used verbatim in Figure 4 of the paper. *)
val gaussian_3x3_unnormalized : t

(** [gaussian_5x5] is the 5x5 binomial approximation normalized to sum
    1. *)
val gaussian_5x5 : t

(** [sobel_x] and [sobel_y] are the 3x3 Sobel derivative masks. *)
val sobel_x : t

val sobel_y : t

(** [mean n] is the [n x n] box filter with coefficients [1/n^2].
    @raise Invalid_argument if [n] is even or nonpositive. *)
val mean : int -> t

(** [equal a b] tests structural equality. *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
