type token =
  | Ident of string
  | Number of float
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Comma
  | Equals
  | At
  | Colon
  | Plus
  | Minus
  | Star
  | Slash
  | Eof

type spanned = { token : token; pos : Ast.position }

exception Lex_error of { pos : Ast.position; msg : string }

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let tokenize src =
  let n = String.length src in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let pos () = { Ast.line = !line; col = !col } in
  let advance () =
    if !i < n then begin
      if src.[!i] = '\n' then begin
        incr line;
        col := 1
      end
      else incr col;
      incr i
    end
  in
  let peek () = if !i < n then Some src.[!i] else None in
  let tokens = ref [] in
  let push tok p = tokens := { token = tok; pos = p } :: !tokens in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\r' | '\n') ->
      advance ();
      skip_ws ()
    | Some '#' ->
      let rec to_eol () =
        match peek () with
        | Some '\n' | None -> ()
        | Some _ ->
          advance ();
          to_eol ()
      in
      to_eol ();
      skip_ws ()
    | Some _ | None -> ()
  in
  let lex_number p =
    let start = !i in
    let consume_digits () =
      while (match peek () with Some c -> is_digit c | None -> false) do
        advance ()
      done
    in
    consume_digits ();
    (match peek () with
    | Some '.' ->
      advance ();
      consume_digits ()
    | _ -> ());
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with
      | Some ('+' | '-') -> advance ()
      | _ -> ());
      consume_digits ()
    | _ -> ());
    let text = String.sub src start (!i - start) in
    match float_of_string_opt text with
    | Some f -> push (Number f) p
    | None -> raise (Lex_error { pos = p; msg = Printf.sprintf "invalid number %S" text })
  in
  let lex_ident p =
    let start = !i in
    while (match peek () with Some c -> is_ident_char c | None -> false) do
      advance ()
    done;
    push (Ident (String.sub src start (!i - start))) p
  in
  let rec loop () =
    skip_ws ();
    let p = pos () in
    match peek () with
    | None -> push Eof p
    | Some c ->
      (match c with
      | '(' -> advance (); push Lparen p
      | ')' -> advance (); push Rparen p
      | '{' -> advance (); push Lbrace p
      | '}' -> advance (); push Rbrace p
      | '[' -> advance (); push Lbracket p
      | ']' -> advance (); push Rbracket p
      | ',' -> advance (); push Comma p
      | '=' -> advance (); push Equals p
      | '@' -> advance (); push At p
      | ':' -> advance (); push Colon p
      | '+' -> advance (); push Plus p
      | '-' -> advance (); push Minus p
      | '*' -> advance (); push Star p
      | '/' -> advance (); push Slash p
      | c when is_digit c -> lex_number p
      | c when is_ident_start c -> lex_ident p
      | c ->
        raise (Lex_error { pos = p; msg = Printf.sprintf "unexpected character %C" c }));
      if (match !tokens with { token = Eof; _ } :: _ -> false | _ -> true) then loop ()
  in
  loop ();
  List.rev !tokens

let token_to_string = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Number f -> Printf.sprintf "number %g" f
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | Comma -> "','"
  | Equals -> "'='"
  | At -> "'@'"
  | Colon -> "':'"
  | Plus -> "'+'"
  | Minus -> "'-'"
  | Star -> "'*'"
  | Slash -> "'/'"
  | Eof -> "end of input"
