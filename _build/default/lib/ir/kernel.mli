(** Kernels: the vertices of a pipeline DAG.

    A kernel is a basic block that reads one or more input images and
    produces one output image (Section II-B).  Its compute pattern —
    point, local, or global (Section II-C.1) — is derived from its body
    rather than declared, so it cannot go stale. *)

(** Compute pattern of a kernel (Section II-C.1). *)
type pattern =
  | Point  (** each output pixel needs one pixel per input (offset 0) *)
  | Local of int  (** stencil with the given radius [>= 1] *)
  | Global  (** reduction over whole images; never fusible *)

type op =
  | Map of Expr.t  (** per-pixel expression: point or local operator *)
  | Reduce of { init : float; combine : Expr.binop; arg : Expr.t }
      (** global operator: fold [combine] over [arg] evaluated at every
          pixel, starting from [init]; produces a 1x1 image.  [arg] must
          be a point expression (radius 0). *)

type t = private { name : string; inputs : string list; op : op }

(** [create ~name ~inputs op] builds a kernel, checking that the body
    reads exactly the images in [inputs] (each declared input must be
    read; each read image must be declared) and that kernel names are
    nonempty.  For [Reduce], the argument must have radius 0.
    @raise Invalid_argument on violations. *)
val create : name:string -> inputs:string list -> op -> t

(** [map ~name ~inputs body] is [create] with a [Map] body. *)
val map : name:string -> inputs:string list -> Expr.t -> t

(** [reduce ~name ~inputs ~init ~combine arg] is [create] with a [Reduce]
    body. *)
val reduce :
  name:string -> inputs:string list -> init:float -> combine:Expr.binop -> Expr.t -> t

(** [pattern k] derives the compute pattern from the body. *)
val pattern : t -> pattern

(** [radius k] is the stencil radius: 0 for point and global kernels. *)
val radius : t -> int

(** [mask_width k] is [2 * radius k + 1], the side length [l_k] of the
    (smallest square covering the) stencil. *)
val mask_width : t -> int

(** [mask_area k] is [mask_width^2] — the [sz(k)] of Eqs. 7, 9, 10. *)
val mask_area : t -> int

(** [body k] is the per-pixel expression of a [Map] kernel.
    @raise Invalid_argument for [Reduce] kernels. *)
val body : t -> Expr.t

(** [is_point k], [is_local k], [is_global k] test the derived pattern. *)
val is_point : t -> bool

val is_local : t -> bool
val is_global : t -> bool

(** [uses_shared_memory k] — in the hardware model (Section II-C.2) local
    operators stage their input windows in shared memory; point and
    global operators do not. *)
val uses_shared_memory : t -> bool

(** [input_radii k] maps each input image to the largest access offset
    used on it ([0] for point reads). *)
val input_radii : t -> (string * int) list

val pattern_to_string : pattern -> string
val pp_pattern : Format.formatter -> pattern -> unit
val pp : Format.formatter -> t -> unit
