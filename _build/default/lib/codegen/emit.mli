(** Pretty-printing of the CUDA AST to C source text. *)

(** [expr ppf e] prints an expression with full parenthesization of
    nested operators (precedence-free and always correct). *)
val expr : Format.formatter -> Cuda_ast.expr -> unit

(** [stmt ppf s] prints a statement (with trailing newline). *)
val stmt : Format.formatter -> Cuda_ast.stmt -> unit

(** [func ppf f] prints a function definition. *)
val func : Format.formatter -> Cuda_ast.func -> unit

(** [func_to_string f] is [func] rendered to a string. *)
val func_to_string : Cuda_ast.func -> string
