module Image = Kfuse_image.Image
module Border = Kfuse_image.Border

type compiled = { eval : float array -> int -> int -> float; slots_needed : int }

let compile_unop op =
  match op with
  | Expr.Neg -> fun v -> -.v
  | Expr.Abs -> Float.abs
  | Expr.Sqrt -> sqrt
  | Expr.Exp -> exp
  | Expr.Log -> log
  | Expr.Sin -> sin
  | Expr.Cos -> cos
  | Expr.Floor -> Float.floor

let compile_binop op =
  match op with
  | Expr.Add -> ( +. )
  | Expr.Sub -> ( -. )
  | Expr.Mul -> ( *. )
  | Expr.Div -> ( /. )
  | Expr.Min -> Float.min
  | Expr.Max -> Float.max
  | Expr.Pow -> Float.pow

let expr ~width ~height ~params ~lookup e =
  let max_slots = ref 0 in
  (* [depth]: next free slot; [env]: variable name -> slot. *)
  let rec go depth env e =
    if depth > !max_slots then max_slots := depth;
    match e with
    | Expr.Const c -> fun _ _ _ -> c
    | Expr.Param p -> (
      match List.assoc_opt p params with
      | Some v -> fun _ _ _ -> v
      | None -> invalid_arg (Printf.sprintf "Compile: unbound parameter %S" p))
    | Expr.Var v -> (
      match List.assoc_opt v env with
      | Some slot -> fun slots _ _ -> Array.unsafe_get slots slot
      | None -> invalid_arg (Printf.sprintf "Compile: unbound variable %%%s" v))
    | Expr.Input { image; dx; dy; border } ->
      let img = lookup image in
      fun _ x y -> Image.get_bordered img border (x + dx) (y + dy)
    | Expr.Let { var; value; body } ->
      let cv = go depth env value in
      let slot = depth in
      let cb = go (depth + 1) ((var, slot) :: env) body in
      fun slots x y ->
        Array.unsafe_set slots slot (cv slots x y);
        cb slots x y
    | Expr.Unop (op, a) ->
      let f = compile_unop op and ca = go depth env a in
      fun slots x y -> f (ca slots x y)
    | Expr.Binop (op, a, b) ->
      let f = compile_binop op in
      let ca = go depth env a and cb = go depth env b in
      fun slots x y -> f (ca slots x y) (cb slots x y)
    | Expr.Select { cmp; lhs; rhs; if_true; if_false } ->
      let cl = go depth env lhs and cr = go depth env rhs in
      let ct = go depth env if_true and cf = go depth env if_false in
      let test =
        match cmp with
        | Expr.Lt -> fun a b -> a < b
        | Expr.Le -> fun a b -> a <= b
        | Expr.Eq -> fun a b -> Float.equal a b
      in
      fun slots x y ->
        if test (cl slots x y) (cr slots x y) then ct slots x y else cf slots x y
    | Expr.Shift { dx; dy; exchange; body } -> (
      let cb = go depth env body in
      match exchange with
      | None -> fun slots x y -> cb slots (x + dx) (y + dy)
      | Some mode ->
        fun slots x y ->
          (* Index exchange (Section IV-B): re-resolve the shifted
             position against the iteration space. *)
          (match Border.resolve mode ~width ~height (x + dx) (y + dy) with
          | Border.Inside (nx, ny) -> cb slots nx ny
          | Border.Const_value c -> c
          | Border.Undef -> invalid_arg "Compile: undefined border in index exchange"))
  in
  let eval = go 0 [] e in
  { eval; slots_needed = !max_slots }

let scratch c = Array.make (max 1 c.slots_needed) 0.0
