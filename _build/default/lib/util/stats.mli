(** Summary statistics for repeated measurements.

    Mirrors the box-plot quantities reported in Figure 6 of the paper
    (minimum, 25th percentile, median, 75th percentile, maximum over 500
    runs), plus the geometric mean used by Table II. *)

type summary = {
  n : int;  (** number of samples *)
  min : float;
  p25 : float;  (** 25th percentile *)
  median : float;
  p75 : float;  (** 75th percentile *)
  max : float;
  mean : float;
}

(** [summarize samples] computes the box-plot summary of [samples].
    Percentiles use linear interpolation between order statistics.
    @raise Invalid_argument on an empty input. *)
val summarize : float array -> summary

(** [percentile p sorted] is the [p]-th percentile ([0. <= p <= 100.]) of an
    array already sorted in increasing order. *)
val percentile : float -> float array -> float

(** [geomean xs] is the geometric mean of [xs]; all elements must be
    positive. *)
val geomean : float list -> float

(** [mean xs] is the arithmetic mean. *)
val mean : float array -> float

(** [pp_summary ppf s] prints a one-line rendering of [s]. *)
val pp_summary : Format.formatter -> summary -> unit
