module Emap = Map.Make (struct
  type t = Expr.t

  (* Expr.t is a pure first-order datatype, so the polymorphic comparison
     is a sound structural order. *)
  let compare = Stdlib.compare
end)

(* All names bound by Let anywhere in [e] (for fresh-name generation). *)
let bound_names e =
  Expr.(
    let rec go acc e =
      match e with
      | Const _ | Param _ | Input _ | Var _ -> acc
      | Let { var; value; body } -> go (go (var :: acc) value) body
      | Unop (_, a) -> go acc a
      | Binop (_, a, b) -> go (go acc a) b
      | Select { lhs; rhs; if_true; if_false; _ } ->
        List.fold_left go acc [ lhs; rhs; if_true; if_false ]
      | Shift { body; _ } -> go acc body
    in
    go [] e)

(* Count subtree occurrences within the current frame: Shift bodies are a
   different evaluation position, so they are opaque (the Shift node as a
   whole still counts as a frame value). *)
let rec count_frame tbl e =
  tbl := Emap.update e (fun n -> Some (1 + Option.value ~default:0 n)) !tbl;
  match e with
  | Expr.Const _ | Expr.Param _ | Expr.Input _ | Expr.Var _ | Expr.Shift _ -> ()
  | Expr.Let { value; body; _ } ->
    count_frame tbl value;
    count_frame tbl body
  | Expr.Unop (_, a) -> count_frame tbl a
  | Expr.Binop (_, a, b) ->
    count_frame tbl a;
    count_frame tbl b
  | Expr.Select { lhs; rhs; if_true; if_false; _ } ->
    List.iter (count_frame tbl) [ lhs; rhs; if_true; if_false ]

(* Replace frame occurrences of [t] by [Var v]; Shift bodies are opaque. *)
let rec replace t v e =
  if Expr.equal e t then Expr.Var v
  else
    match e with
    | Expr.Const _ | Expr.Param _ | Expr.Input _ | Expr.Var _ | Expr.Shift _ -> e
    | Expr.Let { var; value; body } ->
      Expr.Let { var; value = replace t v value; body = replace t v body }
    | Expr.Unop (op, a) -> Expr.Unop (op, replace t v a)
    | Expr.Binop (op, a, b) -> Expr.Binop (op, replace t v a, replace t v b)
    | Expr.Select { cmp; lhs; rhs; if_true; if_false } ->
      Expr.Select
        {
          cmp;
          lhs = replace t v lhs;
          rhs = replace t v rhs;
          if_true = replace t v if_true;
          if_false = replace t v if_false;
        }

let eligible min_size e =
  match e with
  | Expr.Const _ | Expr.Param _ | Expr.Var _ | Expr.Let _ -> false
  | Expr.Input _ | Expr.Unop _ | Expr.Binop _ | Expr.Select _ | Expr.Shift _ ->
    Expr.size e >= min_size && Expr.free_vars e = []

(* Process the top-level frame of [e] to a fixpoint: repeatedly bind the
   largest repeated eligible subtree. *)
let rec bind_repeats ~min_size ~fresh e =
  let tbl = ref Emap.empty in
  count_frame tbl e;
  let candidate =
    Emap.fold
      (fun sub n best ->
        if n >= 2 && eligible min_size sub then
          match best with
          | Some b when Expr.size b >= Expr.size sub -> best
          | _ -> Some sub
        else best)
      !tbl None
  in
  match candidate with
  | None -> e
  | Some t ->
    let v = fresh () in
    bind_repeats ~min_size ~fresh (Expr.Let { var = v; value = t; body = replace t v e })

(* Recurse into sub-frames (Shift bodies) first, then bind in this frame. *)
let rec process ~min_size ~fresh e =
  let rec sub_frames e =
    match e with
    | Expr.Const _ | Expr.Param _ | Expr.Input _ | Expr.Var _ -> e
    | Expr.Shift { dx; dy; exchange; body } ->
      Expr.Shift { dx; dy; exchange; body = process ~min_size ~fresh body }
    | Expr.Let { var; value; body } ->
      Expr.Let { var; value = sub_frames value; body = sub_frames body }
    | Expr.Unop (op, a) -> Expr.Unop (op, sub_frames a)
    | Expr.Binop (op, a, b) -> Expr.Binop (op, sub_frames a, sub_frames b)
    | Expr.Select { cmp; lhs; rhs; if_true; if_false } ->
      Expr.Select
        {
          cmp;
          lhs = sub_frames lhs;
          rhs = sub_frames rhs;
          if_true = sub_frames if_true;
          if_false = sub_frames if_false;
        }
  in
  bind_repeats ~min_size ~fresh (sub_frames e)

let expr ?(min_size = 1) e =
  let taken = ref (bound_names e) in
  let counter = ref 0 in
  let rec fresh () =
    incr counter;
    let name = Printf.sprintf "cse_%d" !counter in
    if List.mem name !taken then fresh ()
    else begin
      taken := name :: !taken;
      name
    end
  in
  process ~min_size ~fresh e

let kernel ?min_size (k : Kernel.t) =
  match k.Kernel.op with
  | Kernel.Map body ->
    Kernel.map ~name:k.Kernel.name ~inputs:k.Kernel.inputs (expr ?min_size body)
  | Kernel.Reduce { init; combine; arg } ->
    Kernel.reduce ~name:k.Kernel.name ~inputs:k.Kernel.inputs ~init ~combine
      (expr ?min_size arg)

let pipeline ?min_size (p : Pipeline.t) =
  Pipeline.with_kernels p (List.map (kernel ?min_size) (Array.to_list p.Pipeline.kernels))
