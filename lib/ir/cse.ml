module Emap = Map.Make (struct
  type t = Expr.t

  (* Expr.t is a pure first-order datatype, so the polymorphic comparison
     is a sound structural order. *)
  let compare = Stdlib.compare
end)

(* All names bound by Let anywhere in [e] (for fresh-name generation). *)
let bound_names e =
  Expr.(
    let rec go acc e =
      match e with
      | Const _ | Param _ | Input _ | Var _ -> acc
      | Let { var; value; body } -> go (go (var :: acc) value) body
      | Unop (_, a) -> go acc a
      | Binop (_, a, b) -> go (go acc a) b
      | Select { lhs; rhs; if_true; if_false; _ } ->
        List.fold_left go acc [ lhs; rhs; if_true; if_false ]
      | Shift { body; _ } -> go acc body
    in
    go [] e)

(* Count subtree occurrences within the current frame, recording the
   position of each subtree's first occurrence in a left-to-right
   traversal: Shift bodies are a different evaluation position, so they
   are opaque (the Shift node as a whole still counts as a frame value). *)
let rec count_frame tbl pos e =
  let at = !pos in
  incr pos;
  tbl :=
    Emap.update e
      (function None -> Some (1, at) | Some (n, first) -> Some (n + 1, first))
      !tbl;
  match e with
  | Expr.Const _ | Expr.Param _ | Expr.Input _ | Expr.Var _ | Expr.Shift _ -> ()
  | Expr.Let { value; body; _ } ->
    count_frame tbl pos value;
    count_frame tbl pos body
  | Expr.Unop (_, a) -> count_frame tbl pos a
  | Expr.Binop (_, a, b) ->
    count_frame tbl pos a;
    count_frame tbl pos b
  | Expr.Select { lhs; rhs; if_true; if_false; _ } ->
    List.iter (count_frame tbl pos) [ lhs; rhs; if_true; if_false ]

(* Replace frame occurrences of [t] by [Var v]; Shift bodies are opaque. *)
let rec replace t v e =
  if Expr.equal e t then Expr.Var v
  else
    match e with
    | Expr.Const _ | Expr.Param _ | Expr.Input _ | Expr.Var _ | Expr.Shift _ -> e
    | Expr.Let { var; value; body } ->
      Expr.Let { var; value = replace t v value; body = replace t v body }
    | Expr.Unop (op, a) -> Expr.Unop (op, replace t v a)
    | Expr.Binop (op, a, b) -> Expr.Binop (op, replace t v a, replace t v b)
    | Expr.Select { cmp; lhs; rhs; if_true; if_false } ->
      Expr.Select
        {
          cmp;
          lhs = replace t v lhs;
          rhs = replace t v rhs;
          if_true = replace t v if_true;
          if_false = replace t v if_false;
        }

let eligible min_size e =
  match e with
  | Expr.Const _ | Expr.Param _ | Expr.Var _ | Expr.Let _ -> false
  | Expr.Input _ | Expr.Unop _ | Expr.Binop _ | Expr.Select _ | Expr.Shift _ ->
    Expr.size e >= min_size && Expr.free_vars e = []

(* Process the top-level frame of [e] to a fixpoint: repeatedly bind the
   largest repeated eligible subtree.  Size ties break on first
   occurrence in traversal order, never on subtree contents — binding
   order must not depend on what the images in scope are called. *)
let rec bind_repeats ~min_size ~fresh e =
  let tbl = ref Emap.empty in
  count_frame tbl (ref 0) e;
  let candidate =
    Emap.fold
      (fun sub (n, first) best ->
        if n >= 2 && eligible min_size sub then
          match best with
          | Some (b, bfirst) ->
            let s = Expr.size sub and bs = Expr.size b in
            if s > bs || (s = bs && first < bfirst) then Some (sub, first) else best
          | None -> Some (sub, first)
        else best)
      !tbl None
    |> Option.map fst
  in
  match candidate with
  | None -> e
  | Some t ->
    let v = fresh () in
    bind_repeats ~min_size ~fresh (Expr.Let { var = v; value = t; body = replace t v e })

(* Recurse into sub-frames (Shift bodies) first, then bind in this frame. *)
let rec process ~min_size ~fresh e =
  let rec sub_frames e =
    match e with
    | Expr.Const _ | Expr.Param _ | Expr.Input _ | Expr.Var _ -> e
    | Expr.Shift { dx; dy; exchange; body } ->
      Expr.Shift { dx; dy; exchange; body = process ~min_size ~fresh body }
    | Expr.Let { var; value; body } ->
      Expr.Let { var; value = sub_frames value; body = sub_frames body }
    | Expr.Unop (op, a) -> Expr.Unop (op, sub_frames a)
    | Expr.Binop (op, a, b) -> Expr.Binop (op, sub_frames a, sub_frames b)
    | Expr.Select { cmp; lhs; rhs; if_true; if_false } ->
      Expr.Select
        {
          cmp;
          lhs = sub_frames lhs;
          rhs = sub_frames rhs;
          if_true = sub_frames if_true;
          if_false = sub_frames if_false;
        }
  in
  bind_repeats ~min_size ~fresh (sub_frames e)

let expr ?(min_size = 1) e =
  let taken = ref (bound_names e) in
  let counter = ref 0 in
  let rec fresh () =
    incr counter;
    let name = Printf.sprintf "cse_%d" !counter in
    if List.mem name !taken then fresh ()
    else begin
      taken := name :: !taken;
      name
    end
  in
  process ~min_size ~fresh e

let kernel ?min_size (k : Kernel.t) =
  match k.Kernel.op with
  | Kernel.Map body ->
    Kernel.map ~name:k.Kernel.name ~inputs:k.Kernel.inputs (expr ?min_size body)
  | Kernel.Reduce { init; combine; arg } ->
    Kernel.reduce ~name:k.Kernel.name ~inputs:k.Kernel.inputs ~init ~combine
      (expr ?min_size arg)

let pipeline ?min_size (p : Pipeline.t) =
  Pipeline.with_kernels p (List.map (kernel ?min_size) (Array.to_list p.Pipeline.kernels))

(* ---- kernel-level CSE: twin deduplication ----

   Two kernels whose (renamed) bodies are structurally equal compute the
   same image; all but the earliest are redundant.  Consumers are
   rewired producer-by-producer in stored (topological) order, so a
   rename can reveal new twins downstream and one pass reaches the
   fixpoint. *)

let op_equal (a : Kernel.op) (b : Kernel.op) =
  match (a, b) with
  | Kernel.Map x, Kernel.Map y -> Expr.equal x y
  | Kernel.Reduce r, Kernel.Reduce s ->
    Float.equal r.init s.init && r.combine = s.combine && Expr.equal r.arg s.arg
  | Kernel.Map _, Kernel.Reduce _ | Kernel.Reduce _, Kernel.Map _ -> false

(* Order-preserving dedup: renaming can make two declared inputs
   coincide, but an untouched kernel must keep its declaration order so
   the rebuild is byte-identical. *)
let dedup_stable inputs =
  List.rev
    (List.fold_left
       (fun acc i -> if List.mem i acc then acc else i :: acc)
       [] inputs)

let dedup_kernels (p : Pipeline.t) =
  let repl : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let ren img = Option.value ~default:img (Hashtbl.find_opt repl img) in
  let rewrite (k : Kernel.t) =
    let op =
      match k.Kernel.op with
      | Kernel.Map e -> Kernel.Map (Expr.rename_images ren e)
      | Kernel.Reduce { init; combine; arg } ->
        Kernel.Reduce { init; combine; arg = Expr.rename_images ren arg }
    in
    Kernel.create ~name:k.Kernel.name
      ~inputs:(dedup_stable (List.map ren k.Kernel.inputs))
      op
  in
  let kept = ref [] in
  Array.iteri
    (fun i k ->
      let k = rewrite k in
      match List.find_opt (fun (r : Kernel.t) -> op_equal r.Kernel.op k.Kernel.op) !kept with
      | Some r when not (Kfuse_util.Iset.is_empty (Pipeline.consumers p i)) ->
        (* A consumed twin: rewire its readers to the representative and
           drop it.  An unconsumed twin is a pipeline output — dropping
           it would change the pipeline's interface — so it stays. *)
        Hashtbl.replace repl k.Kernel.name r.Kernel.name
      | _ -> kept := k :: !kept)
    p.Pipeline.kernels;
  Pipeline.with_kernels p (List.rev !kept)
