lib/apps/night.ml: Kfuse_image Kfuse_ir List Stdlib
