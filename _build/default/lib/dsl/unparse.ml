module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Border = Kfuse_image.Border

exception Unsupported of string

(* Names that cannot be reproduced faithfully: "let" starts a binding
   wherever an expression may start; "reduce" starts a reduction at a
   definition's right-hand side; "size"/"param" start statements.
   Identifiers like "in", "conv" or "select" are only special in
   positions the unparser never puts a bare reference, so they stay
   legal. *)
let reserved = [ "let"; "reduce"; "size"; "param"; "pipeline" ]

let check_name n =
  if List.mem n reserved then
    raise (Unsupported (Printf.sprintf "name %S is a DSL keyword" n))

let border_suffix = function
  | Border.Clamp -> ""  (* the DSL default *)
  | Border.Mirror -> ":mirror"
  | Border.Repeat -> ":repeat"
  | Border.Constant c -> Printf.sprintf ":constant(%g)" c
  | Border.Undefined -> ":undefined"

(* Shortest decimal that round-trips to the same float. *)
let float_lit f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else begin
    let rec shortest prec =
      if prec > 17 then Printf.sprintf "%.17g" f
      else
        let s = Printf.sprintf "%.*g" prec f in
        if Float.equal (float_of_string s) f then s else shortest (prec + 1)
    in
    shortest 1
  end

let rec go e =
  match e with
  | Expr.Const c -> if c < 0.0 then Printf.sprintf "(-%s)" (float_lit (-.c)) else float_lit c
  | Expr.Param p ->
    check_name p;
    p
  | Expr.Var v ->
    check_name v;
    v
  | Expr.Input { image; dx = 0; dy = 0; border = _ } ->
    (* A point access never leaves the image, so its border mode is
       unobservable; render it bare. *)
    check_name image;
    image
  | Expr.Input { image; dx; dy; border } ->
    check_name image;
    Printf.sprintf "%s@(%d,%d)%s" image dx dy (border_suffix border)
  | Expr.Let { var; value; body } ->
    check_name var;
    Printf.sprintf "(let %s = %s in %s)" var (go value) (go body)
  | Expr.Unop (Expr.Neg, a) -> Printf.sprintf "(-%s)" (go a)
  | Expr.Unop (op, a) ->
    let name =
      match op with
      | Expr.Abs -> "abs"
      | Expr.Sqrt -> "sqrt"
      | Expr.Exp -> "exp"
      | Expr.Log -> "log"
      | Expr.Sin -> "sin"
      | Expr.Cos -> "cos"
      | Expr.Floor -> "floor"
      | Expr.Neg -> assert false
    in
    Printf.sprintf "%s(%s)" name (go a)
  | Expr.Binop (op, a, b) -> (
    match op with
    | Expr.Add -> Printf.sprintf "(%s + %s)" (go a) (go b)
    | Expr.Sub -> Printf.sprintf "(%s - %s)" (go a) (go b)
    | Expr.Mul -> Printf.sprintf "(%s * %s)" (go a) (go b)
    | Expr.Div -> Printf.sprintf "(%s / %s)" (go a) (go b)
    | Expr.Min -> Printf.sprintf "min(%s, %s)" (go a) (go b)
    | Expr.Max -> Printf.sprintf "max(%s, %s)" (go a) (go b)
    | Expr.Pow -> Printf.sprintf "pow(%s, %s)" (go a) (go b))
  | Expr.Select { cmp = Expr.Lt; lhs; rhs; if_true; if_false } ->
    Printf.sprintf "select(%s, %s, %s, %s)" (go lhs) (go rhs) (go if_true) (go if_false)
  | Expr.Select _ -> raise (Unsupported "only < comparisons have DSL syntax")
  | Expr.Shift _ -> raise (Unsupported "fused kernels (Shift nodes) have no DSL syntax")

let expr e = match go e with s -> Ok s | exception Unsupported r -> Error r

let pipeline (p : Pipeline.t) =
  match
    let buf = Buffer.create 512 in
    let b fmt = Printf.bprintf buf fmt in
    check_name p.Pipeline.name;
    List.iter check_name p.Pipeline.inputs;
    b "pipeline %s(%s) {\n" p.Pipeline.name (String.concat ", " p.Pipeline.inputs);
    if p.Pipeline.channels = 1 then b "  size %d %d\n" p.Pipeline.width p.Pipeline.height
    else b "  size %d %d %d\n" p.Pipeline.width p.Pipeline.height p.Pipeline.channels;
    List.iter
      (fun (name, v) ->
        check_name name;
        b "  param %s = %s\n" name (float_lit v))
      p.Pipeline.params;
    Array.iter
      (fun (k : Kernel.t) ->
        check_name k.Kernel.name;
        match k.Kernel.op with
        | Kernel.Map body -> b "  %s = %s\n" k.Kernel.name (go body)
        | Kernel.Reduce { init; combine; arg } ->
          let op, default_init =
            match combine with
            | Expr.Add -> ("sum", 0.0)
            | Expr.Min -> ("min", Float.infinity)
            | Expr.Max -> ("max", Float.neg_infinity)
            | Expr.Sub | Expr.Mul | Expr.Div | Expr.Pow ->
              raise (Unsupported "reduction operator has no DSL syntax")
          in
          if not (Float.equal init default_init) then
            raise (Unsupported "custom reduction seed has no DSL syntax");
          b "  %s = reduce %s(%s)\n" k.Kernel.name op (go arg))
      p.Pipeline.kernels;
    b "}\n";
    Buffer.contents buf
  with
  | s -> Ok s
  | exception Unsupported r -> Error r
