(* Tests for the producer-inlining extension. *)

module F = Kfuse_fusion
module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Eval = Kfuse_ir.Eval
module Image = Kfuse_image.Image
module Mask = Kfuse_image.Mask

let config = F.Config.default

(* A cheap point producer shared by two consumers — the Figure 2c shape
   the partition model cannot eliminate. *)
let shared_cheap =
  let open Expr in
  Pipeline.create ~name:"shared" ~width:16 ~height:12 ~inputs:[ "in" ]
    [
      Kernel.map ~name:"twice" ~inputs:[ "in" ] (input "in" * Const 2.0);
      Kernel.map ~name:"a" ~inputs:[ "twice" ] (input "twice" + Const 1.0);
      Kernel.map ~name:"b" ~inputs:[ "twice" ] (input "twice" - Const 1.0);
    ]

let rng = Kfuse_util.Rng.create 414

let check_semantics name before after =
  let inputs =
    List.map
      (fun n ->
        (n, Image.random rng ~width:before.Pipeline.width ~height:before.Pipeline.height
              ~lo:0.0 ~hi:1.0))
      before.Pipeline.inputs
  in
  let env = Eval.env_of_list inputs in
  let ra = Eval.run_outputs before env and rb = Eval.run_outputs after env in
  List.iter2
    (fun (n1, x) (n2, y) ->
      Alcotest.(check string) (name ^ " names") n1 n2;
      Alcotest.(check bool) (name ^ " exact") true (Image.max_abs_diff x y < 1e-9))
    ra rb

let test_inline_image_basic () =
  let p' = F.Inline_fusion.inline_image shared_cheap "twice" in
  Alcotest.(check int) "producer removed" 2 (Pipeline.num_kernels p');
  Alcotest.(check bool) "gone" true (Pipeline.index_of p' "twice" = None);
  check_semantics "basic" shared_cheap p'

let test_judge_profitable () =
  match F.Inline_fusion.judge config shared_cheap "twice" with
  | F.Inline_fusion.Inline { saved; cost } ->
    (* saved = IS*tg*(1 + 2 consumers) = 1200; cost = 2 * cost_op(2 alu) *
       IS_ks(1) * 1 tap = 16. *)
    Alcotest.check (Helpers.float_close ()) "saved" 1200.0 saved;
    Alcotest.check (Helpers.float_close ()) "cost" 16.0 cost
  | v -> Alcotest.failf "expected Inline, got %s" (F.Inline_fusion.verdict_to_string v)

let test_judge_output_kept () =
  (* 'a' and 'b' are pipeline outputs. *)
  match F.Inline_fusion.judge config shared_cheap "a" with
  | F.Inline_fusion.Keep_output -> ()
  | v -> Alcotest.failf "expected Keep_output, got %s" (F.Inline_fusion.verdict_to_string v)

let test_judge_expensive_producer () =
  (* A compute-heavy producer consumed through windows: recompute cost
     dwarfs the saved traffic. *)
  let p =
    let open Expr in
    Pipeline.create ~name:"heavy" ~width:16 ~height:12 ~inputs:[ "in" ]
      [
        Kernel.map ~name:"costly" ~inputs:[ "in" ]
          (Kfuse_apps.Night.atrous_body ~border:Kfuse_image.Border.Clamp ~step:1 "in");
        Kernel.map ~name:"blurred" ~inputs:[ "costly" ]
          (conv Mask.gaussian_3x3 "costly");
      ]
  in
  match F.Inline_fusion.judge config p "costly" with
  | F.Inline_fusion.Keep_unprofitable { saved; cost } ->
    Alcotest.(check bool) "cost dominates" true (cost > saved)
  | v -> Alcotest.failf "expected unprofitable, got %s" (F.Inline_fusion.verdict_to_string v)

let test_inline_windowed_consumer_borders () =
  (* Inlining a local producer through a windowed consumer must replay
     border handling (index exchange), just like block fusion. *)
  let p =
    let open Expr in
    Pipeline.create ~name:"lw" ~width:11 ~height:9 ~inputs:[ "in" ]
      [
        Kernel.map ~name:"g1" ~inputs:[ "in" ]
          (conv ~border:Kfuse_image.Border.Clamp Mask.gaussian_3x3 "in");
        Kernel.map ~name:"g2" ~inputs:[ "g1" ]
          (conv ~border:Kfuse_image.Border.Clamp Mask.gaussian_3x3 "g1");
        Kernel.map ~name:"diff" ~inputs:[ "g1"; "in" ] (input "in" - input "g1");
      ]
  in
  (* g1 has two consumers (one windowed, one point): partition fusion is
     stuck (Fig 2c), inlining is not. *)
  let p' = F.Inline_fusion.inline_image p "g1" in
  Alcotest.(check int) "two kernels left" 2 (Pipeline.num_kernels p');
  check_semantics "windowed" p p';
  (* Without exchange the halo would differ. *)
  let naive = F.Inline_fusion.inline_image ~exchange:false p "g1" in
  let img = Image.random rng ~width:11 ~height:9 ~lo:0.0 ~hi:1.0 in
  let env = Eval.env_of_list [ ("in", img) ] in
  let reference = List.assoc "g2" (Eval.run_outputs p env) in
  let got = List.assoc "g2" (Eval.run_outputs naive env) in
  Alcotest.(check bool) "naive differs in halo" true (Image.max_abs_diff reference got > 1e-9)

let test_greedy_on_night_rgb () =
  (* The fusion-hostile night_rgb DAG: greedy inlining eliminates the
     shared luminance (cheap, point-consumed) but keeps the expensive
     a-trous stages. *)
  let p = Kfuse_apps.Extra.night_rgb_pipeline ~width:20 ~height:14 () in
  let p', applied = F.Inline_fusion.greedy config p in
  Alcotest.(check bool) "lum inlined" true (List.mem "lum" applied);
  Alcotest.(check bool) "atrous kept" true
    (Option.is_some (Pipeline.index_of p' "atrous1_r"));
  check_semantics "night_rgb" p p'

let test_greedy_idempotent_when_nothing_to_do () =
  let p = Kfuse_apps.Sobel.pipeline ~width:16 ~height:12 () in
  (* dx and dy each feed only mag but removing them... they are inlineable
     candidates; after greedy, re-running finds nothing. *)
  let p', _ = F.Inline_fusion.greedy config p in
  let p'', applied = F.Inline_fusion.greedy config p' in
  Alcotest.(check (list string)) "fixpoint" [] applied;
  Alcotest.(check int) "same kernels" (Pipeline.num_kernels p') (Pipeline.num_kernels p'')

let test_chained_inline_shift_frames () =
  (* Regression: after inlining a producer into a windowed consumer, the
     consumer body contains point reads inside Shift frames.  A later
     inline of those reads must NOT share an outer register across the
     frames — the value differs per shifted position. *)
  let open Expr in
  let p =
    Pipeline.create ~name:"chain" ~width:12 ~height:9 ~inputs:[ "in" ]
      [
        Kernel.map ~name:"z" ~inputs:[ "in" ] (input "in" * Const 2.0);
        Kernel.map ~name:"a" ~inputs:[ "z" ] (input "z" + Const 1.0);
        Kernel.map ~name:"b" ~inputs:[ "a" ]
          (conv Kfuse_image.Mask.gaussian_3x3 "a");
      ]
  in
  let img = Image.random rng ~width:12 ~height:9 ~lo:0.0 ~hi:1.0 in
  let env = Eval.env_of_list [ ("in", img) ] in
  let reference = Eval.run_outputs p env in
  (* First inline creates the Shift frames, second hits reads inside
     them. *)
  let p1 = F.Inline_fusion.inline_image p "a" in
  let p2 = F.Inline_fusion.inline_image p1 "z" in
  let outs = Eval.run_outputs p2 env in
  List.iter2
    (fun (_, a) (_, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "chained inline exact (maxdiff %g)" (Image.max_abs_diff a b))
        true
        (Image.max_abs_diff a b < 1e-9))
    reference outs

let test_driver_inline_flag () =
  (* Through the driver: inlining + min-cut on Sobel collapses everything
     before the partitioner even runs, and stays exact. *)
  let p = Kfuse_apps.Sobel.pipeline ~width:18 ~height:14 () in
  let r = F.Driver.run ~inline:true config F.Driver.Mincut p in
  Alcotest.(check (list string)) "derivatives inlined" [ "dx"; "dy" ]
    (List.sort String.compare r.F.Driver.inlined);
  Alcotest.(check int) "single kernel" 1 (F.Driver.fused_kernel_count r);
  check_semantics "driver inline" p r.F.Driver.fused;
  (* The report's partition refers to the post-inline pipeline. *)
  Alcotest.(check int) "input pipeline rewritten" 1
    (Pipeline.num_kernels r.F.Driver.input)

let test_invalid_requests () =
  Helpers.expect_invalid "unknown image" (fun () ->
      F.Inline_fusion.inline_image shared_cheap "ghost");
  Helpers.expect_invalid "pipeline output" (fun () ->
      F.Inline_fusion.inline_image shared_cheap "a")

let suite =
  [
    Alcotest.test_case "inline_image basic" `Quick test_inline_image_basic;
    Alcotest.test_case "judge profitable" `Quick test_judge_profitable;
    Alcotest.test_case "judge keeps outputs" `Quick test_judge_output_kept;
    Alcotest.test_case "judge expensive producer" `Quick test_judge_expensive_producer;
    Alcotest.test_case "windowed consumer borders" `Quick test_inline_windowed_consumer_borders;
    Alcotest.test_case "greedy on night_rgb" `Quick test_greedy_on_night_rgb;
    Alcotest.test_case "greedy fixpoint" `Quick test_greedy_idempotent_when_nothing_to_do;
    Alcotest.test_case "chained inline across shift frames" `Quick
      test_chained_inline_shift_frames;
    Alcotest.test_case "driver inline flag" `Quick test_driver_inline_flag;
    Alcotest.test_case "invalid requests" `Quick test_invalid_requests;
  ]
