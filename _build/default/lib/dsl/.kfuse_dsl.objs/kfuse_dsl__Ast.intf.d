lib/dsl/ast.mli: Kfuse_image
