test/test_transform.ml: Alcotest Float Helpers Kfuse_fusion Kfuse_image Kfuse_ir Kfuse_util List Option Printf
