(* Quickstart: build a three-kernel pipeline with the combinator API,
   fuse it with the min-cut algorithm, check the fused pipeline computes
   the same image, and estimate the speedup on a GPU model.

   Run with: dune exec examples/quickstart.exe *)

module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Eval = Kfuse_ir.Eval
module Image = Kfuse_image.Image
module F = Kfuse_fusion
module G = Kfuse_gpu

let () =
  (* A small sharpening pipeline: blur, take the residual, add it back. *)
  let open Expr in
  let blur =
    Kernel.map ~name:"blur" ~inputs:[ "src" ]
      (conv Kfuse_image.Mask.gaussian_3x3 "src")
  in
  let residual =
    Kernel.map ~name:"residual" ~inputs:[ "src"; "blur" ] (input "src" - input "blur")
  in
  let sharp =
    Kernel.map ~name:"sharp" ~inputs:[ "src"; "residual" ]
      (input "src" + (const 0.7 * input "residual"))
  in
  let pipeline =
    Pipeline.create ~name:"sharpen" ~width:512 ~height:512 ~inputs:[ "src" ]
      [ blur; residual; sharp ]
  in
  Format.printf "input pipeline:@.%a@.@." Pipeline.pp pipeline;

  (* Fuse with the paper's min-cut algorithm. *)
  let report = F.Driver.run F.Config.default F.Driver.Mincut pipeline in
  Format.printf "fusion report:@.%a@.@." F.Driver.pp_report report;

  (* The fused pipeline is a drop-in replacement: same outputs. *)
  let rng = Kfuse_util.Rng.create 1 in
  let src = Image.random rng ~width:512 ~height:512 ~lo:0.0 ~hi:1.0 in
  let env = Eval.env_of_list [ ("src", src) ] in
  let reference = snd (List.hd (Eval.run_outputs pipeline env)) in
  let fused_out = snd (List.hd (Eval.run_outputs report.F.Driver.fused env)) in
  Format.printf "fused output matches reference: %b@.@."
    (Image.max_abs_diff reference fused_out < 1e-9);

  (* Estimate the win on a GTX 680 model. *)
  let device = G.Device.gtx680 in
  let measure ~fused_kernels p =
    (G.Sim.measure device ~quality:G.Perf_model.Optimized ~fused_kernels p)
      .G.Sim.summary.Kfuse_util.Stats.median
  in
  let t_base = measure ~fused_kernels:[] pipeline in
  let t_fused = measure ~fused_kernels:[ "sharp" ] report.F.Driver.fused in
  Format.printf "estimated on %a: baseline %.3f ms, fused %.3f ms (%.2fx)@."
    G.Device.pp device t_base t_fused (t_base /. t_fused)
