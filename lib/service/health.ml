module Diag = Kfuse_util.Diag

let ping ~socket ~timeout_ms =
  Client.with_connection ~socket ~timeout_ms (fun c -> Client.ping c)

let alive ~socket ~timeout_ms = Result.is_ok (ping ~socket ~timeout_ms)

let wait_ready ?(interval_ms = 20.) ~socket ~timeout_ms () =
  let deadline = Unix.gettimeofday () +. (timeout_ms /. 1000.) in
  (* Each probe's own timeout is capped well under the overall budget so
     a wedged (accepting-but-silent) server cannot eat it in one bite. *)
  let probe_ms = Float.max interval_ms (Float.min 250. timeout_ms) in
  let rec go () =
    if alive ~socket ~timeout_ms:probe_ms then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Thread.delay (interval_ms /. 1000.);
      go ()
    end
  in
  go ()
