type window = { dx_min : int; dx_max : int; dy_min : int; dy_max : int }

let point = { dx_min = 0; dx_max = 0; dy_min = 0; dy_max = 0 }

let make ~dx_min ~dx_max ~dy_min ~dy_max =
  if dx_min > dx_max || dy_min > dy_max then invalid_arg "Footprint.make: empty window";
  { dx_min; dx_max; dy_min; dy_max }

let of_radius r =
  if r < 0 then invalid_arg "Footprint.of_radius: negative radius";
  { dx_min = -r; dx_max = r; dy_min = -r; dy_max = r }

let union a b =
  {
    dx_min = min a.dx_min b.dx_min;
    dx_max = max a.dx_max b.dx_max;
    dy_min = min a.dy_min b.dy_min;
    dy_max = max a.dy_max b.dy_max;
  }

let sum a b =
  {
    dx_min = a.dx_min + b.dx_min;
    dx_max = a.dx_max + b.dx_max;
    dy_min = a.dy_min + b.dy_min;
    dy_max = a.dy_max + b.dy_max;
  }

let width w = w.dx_max - w.dx_min + 1
let height w = w.dy_max - w.dy_min + 1
let area w = width w * height w

let radius w =
  List.fold_left max 0 [ abs w.dx_min; abs w.dx_max; abs w.dy_min; abs w.dy_max ]

let is_point w = w.dx_min = 0 && w.dx_max = 0 && w.dy_min = 0 && w.dy_max = 0

let of_expr e =
  List.fold_left
    (fun acc (image, dx, dy) ->
      let w = { dx_min = dx; dx_max = dx; dy_min = dy; dy_max = dy } in
      match List.assoc_opt image acc with
      | Some _ ->
        List.map
          (fun (i, w0) -> if String.equal i image then (i, union w0 w) else (i, w0))
          acc
      | None -> acc @ [ (image, w) ])
    [] (Expr.accesses e)

let of_kernel (k : Kernel.t) =
  let e = match k.Kernel.op with Kernel.Map e -> e | Kernel.Reduce { arg; _ } -> arg in
  let found = of_expr e in
  List.map
    (fun img ->
      match List.assoc_opt img found with Some w -> (img, w) | None -> (img, point))
    k.Kernel.inputs

let equal a b =
  a.dx_min = b.dx_min && a.dx_max = b.dx_max && a.dy_min = b.dy_min && a.dy_max = b.dy_max

let pp ppf w =
  Format.fprintf ppf "[%d..%d]x[%d..%d]" w.dx_min w.dx_max w.dy_min w.dy_max
