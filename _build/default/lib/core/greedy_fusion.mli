(** Greedy heaviest-edge fusion — the classic grouping baseline.

    "One method to search fusible candidates is by greedy fusion, namely
    fusing along the heaviest edge" (Section I, describing the grouping
    steps of PolyMage and Halide's auto-scheduler).  This strategy uses
    the {e same} benefit model and the {e same} extended block legality
    as the min-cut algorithm, but grows blocks by repeatedly merging the
    endpoints of the heaviest remaining edge whose merged block is legal.
    It serves as the ablation point for the min-cut contribution. *)

(** [partition config pipeline] computes the greedy partition. *)
val partition : Config.t -> Kfuse_ir.Pipeline.t -> Kfuse_graph.Partition.t
