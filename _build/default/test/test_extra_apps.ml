(* Tests for the extra (beyond-paper) applications. *)

module F = Kfuse_fusion
module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Eval = Kfuse_ir.Eval
module Image = Kfuse_image.Image
module Extra = Kfuse_apps.Extra

let config = F.Config.default

let test_median9_network () =
  (* The sorting network must agree with an actual sort on many random
     9-tuples; evaluate it through a 3x3 median kernel. *)
  let p = Extra.median_pipeline ~width:9 ~height:7 () in
  let rng = Kfuse_util.Rng.create 61 in
  for _trial = 1 to 20 do
    let img = Image.random rng ~width:9 ~height:7 ~lo:0.0 ~hi:1.0 in
    let env = Eval.env_of_list [ ("in", img) ] in
    let all = Eval.run p env in
    let median_img = Eval.Env.find "median" all in
    (* Check interior pixels against a reference median. *)
    for y = 1 to 5 do
      for x = 1 to 7 do
        let window = ref [] in
        for dy = -1 to 1 do
          for dx = -1 to 1 do
            window := Image.get img (x + dx) (y + dy) :: !window
          done
        done;
        let sorted = List.sort Float.compare !window in
        let expected = List.nth sorted 4 in
        let got = Image.get median_img x y in
        if Float.abs (expected -. got) > 1e-9 then
          Alcotest.failf "median at (%d,%d): expected %g, got %g" x y expected got
      done
    done
  done

let test_median9_validation () =
  Helpers.expect_invalid "wrong arity" (fun () -> Extra.median9 [ Expr.Const 1.0 ])

let test_median_kernel_structure () =
  let p = Extra.median_pipeline ~width:16 ~height:16 () in
  let median = Pipeline.kernel p 0 in
  Alcotest.(check bool) "local" true (Kernel.is_local median);
  (* 19 exchanges, 2 ALU ops each, all shared through Lets. *)
  let c = Kfuse_ir.Cost.kernel_op_counts median in
  Alcotest.(check int) "38 min/max + store" 39 c.Kfuse_ir.Cost.alu

let test_canny_structure () =
  let p = Extra.canny_lite_pipeline ~width:32 ~height:32 () in
  Alcotest.(check int) "five kernels" 5 (Pipeline.num_kernels p);
  let pattern name =
    Kernel.pattern_to_string
      (Kernel.pattern (Pipeline.kernel p (Option.get (Pipeline.index_of p name))))
  in
  Alcotest.(check string) "ridge local" "local(r=1)" (pattern "ridge");
  Alcotest.(check string) "edges point" "point" (pattern "edges")

let test_extra_fusion_correct () =
  let rng = Kfuse_util.Rng.create 62 in
  List.iter
    (fun p ->
      let inputs =
        List.map
          (fun n -> (n, Image.random rng ~width:19 ~height:13 ~lo:0.0 ~hi:1.0))
          p.Pipeline.inputs
      in
      let env = Eval.env_of_list inputs in
      let reference = Eval.run_outputs p env in
      List.iter
        (fun s ->
          let r = F.Driver.run config s p in
          let outs = Eval.run_outputs r.F.Driver.fused env in
          List.iter2
            (fun (_, a) (_, b) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s %s exact" p.Pipeline.name
                   (F.Driver.strategy_to_string s))
                true
                (Image.max_abs_diff a b < 1e-9))
            reference outs)
        F.Driver.all_strategies)
    [
      Extra.median_pipeline ~width:19 ~height:13 ();
      Extra.canny_lite_pipeline ~width:19 ~height:13 ();
    ]

let test_canny_fusion_decision () =
  (* The min-cut algorithm fuses {dx, dy, mag} (multi-source, point sink)
     and {ridge, edges}; the point-to-local edge mag -> ridge stays cut
     only if unprofitable — with the default model it is profitable, but
     mag's output also feeds... check the actual partition is legal and
     beats basic. *)
  let p = Extra.canny_lite_pipeline () in
  let mincut = F.Driver.run config F.Driver.Mincut p in
  let basic = F.Driver.run config F.Driver.Basic p in
  Alcotest.(check bool) "mincut fuses at least as much" true
    (F.Driver.fused_kernel_count mincut <= F.Driver.fused_kernel_count basic);
  Alcotest.(check bool) "some fusion happened" true
    (F.Driver.fused_kernel_count mincut < Pipeline.num_kernels p)

let test_night_rgb_structure () =
  let p = Extra.night_rgb_pipeline ~width:24 ~height:16 () in
  Alcotest.(check int) "ten kernels" 10 (Pipeline.num_kernels p);
  Alcotest.(check (list string)) "three inputs" [ "r"; "g"; "b" ] p.Pipeline.inputs;
  Alcotest.(check (list string)) "three outputs"
    [ "scoto_b"; "scoto_g"; "scoto_r" ]
    (List.sort String.compare (Pipeline.outputs p));
  (* lum reads all three denoised planes. *)
  let lum = Pipeline.kernel p (Option.get (Pipeline.index_of p "lum")) in
  Alcotest.(check int) "lum inputs" 3 (List.length lum.Kernel.inputs)

let test_night_rgb_fusion_exact () =
  let p = Extra.night_rgb_pipeline ~width:17 ~height:12 () in
  let rng = Kfuse_util.Rng.create 63 in
  let inputs =
    List.map
      (fun n -> (n, Image.random rng ~width:17 ~height:12 ~lo:0.02 ~hi:1.0))
      p.Pipeline.inputs
  in
  let env = Kfuse_ir.Eval.env_of_list inputs in
  let reference = Kfuse_ir.Eval.run_outputs p env in
  List.iter
    (fun s ->
      let r = F.Driver.run config s p in
      let outs = Kfuse_ir.Eval.run_outputs r.F.Driver.fused env in
      List.iter2
        (fun (_, a) (_, b) ->
          Alcotest.(check bool)
            ("night_rgb " ^ F.Driver.strategy_to_string s)
            true
            (Image.max_abs_diff a b < 1e-9))
        reference outs)
    F.Driver.all_strategies

let test_night_rgb_fusion_decision () =
  (* A genuinely fusion-hostile DAG: the a-trous pairs are rejected as in
     the paper's Night; the shared luminance makes every tail block
     illegal too (lum's output feeds all three tone kernels — Fig 2c —
     and fusing them all would need three outputs).  The algorithm must
     recognize this and leave the pipeline alone. *)
  let p = Extra.night_rgb_pipeline () in
  let r = F.Driver.run config F.Driver.Mincut p in
  Alcotest.(check int) "no fusible block exists" (Pipeline.num_kernels p)
    (F.Driver.fused_kernel_count r);
  Alcotest.(check int) "oracle agrees: only the trivial partition is legal" 1
    (F.Exhaustive_fusion.count_legal_partitions config p);
  (* No block may contain both a-trous stages of a plane. *)
  List.iter
    (fun plane ->
      let a0 = Option.get (Pipeline.index_of p ("atrous1_" ^ plane)) in
      let a1 = Option.get (Pipeline.index_of p ("atrous2_" ^ plane)) in
      List.iter
        (fun b ->
          Alcotest.(check bool)
            ("a-trous stages split, plane " ^ plane)
            false
            (Kfuse_util.Iset.mem a0 b && Kfuse_util.Iset.mem a1 b))
        r.F.Driver.partition)
    [ "r"; "g"; "b" ]

let suite =
  [
    Alcotest.test_case "median9 network correct" `Slow test_median9_network;
    Alcotest.test_case "night_rgb structure" `Quick test_night_rgb_structure;
    Alcotest.test_case "night_rgb fusion exact" `Slow test_night_rgb_fusion_exact;
    Alcotest.test_case "night_rgb fusion decision" `Quick test_night_rgb_fusion_decision;
    Alcotest.test_case "median9 arity" `Quick test_median9_validation;
    Alcotest.test_case "median kernel structure" `Quick test_median_kernel_structure;
    Alcotest.test_case "canny-lite structure" `Quick test_canny_structure;
    Alcotest.test_case "extra apps fuse exactly" `Slow test_extra_fusion_correct;
    Alcotest.test_case "canny fusion decision" `Quick test_canny_fusion_decision;
  ]
