bench/runner.ml: Hashtbl Kfuse_apps Kfuse_fusion Kfuse_gpu Kfuse_ir Kfuse_util List String
