(** The fusion transform: merging a legal partition block into one kernel.

    Fused kernel bodies are built by inlining producers into consumers in
    topological order (Listing 1 of the paper concatenates bodies; in our
    expression IR the concatenation is substitution):

    - a {e point access} (offset 0) to an in-block producer is replaced by
      the producer's body — the intermediate pixel lives in a register
      (point-based fusion, Section II-C.3);
    - a {e windowed access} at offset [(dx, dy)] is replaced by the
      producer's body evaluated at the shifted position — redundant
      recomputation trading computation for locality (point-to-local and
      local-to-local fusion).  With border exchange enabled (the default,
      and the paper's correct method of Section IV-B) the shifted position
      is first re-resolved against the iteration space using the border
      mode the consumer declared for that access; with it disabled the
      offsets merely compose, reproducing the incorrect naive fusion of
      Figure 4b. *)

(** [fuse_block ?exchange pipeline block] builds the single kernel
    equivalent to the kernels of [block].  The result is named after the
    block's sink kernel (so downstream consumers and pipeline outputs are
    unaffected) and reads exactly the block's external inputs.
    [exchange] defaults to [true].

    The block must satisfy the dependence legality of {!Legality.check}
    (resource legality is a performance concern, not a correctness one,
    and is not rechecked here).
    @raise Invalid_argument if the block has no unique sink or an
    external dependence. *)
val fuse_block :
  ?exchange:bool -> Kfuse_ir.Pipeline.t -> Kfuse_util.Iset.t -> Kfuse_ir.Kernel.t

(** [apply ?exchange pipeline partition] rebuilds [pipeline] with every
    multi-kernel block of [partition] fused.  [partition] must be a valid
    partition of the pipeline DAG.
    @raise Invalid_argument on an invalid partition or an unfusible
    block. *)
val apply :
  ?exchange:bool -> Kfuse_ir.Pipeline.t -> Kfuse_graph.Partition.t -> Kfuse_ir.Pipeline.t
