lib/graph/stoer_wagner.mli: Kfuse_util Wgraph
