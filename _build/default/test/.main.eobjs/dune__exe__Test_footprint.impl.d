test/test_footprint.ml: Alcotest Helpers Kfuse_fusion Kfuse_image Kfuse_ir List
