type t = {
  name : string;
  cuda_cores : int;
  sm_count : int;
  clock_mhz : float;
  mem_clock_mhz : float;
  mem_bus_bits : int;
  shared_mem_per_sm : int;
  registers_per_block : int;
  max_threads_per_sm : int;
  max_blocks_per_sm : int;
}

let gtx745 =
  {
    name = "GTX745";
    cuda_cores = 384;
    sm_count = 3;
    clock_mhz = 1033.0;
    mem_clock_mhz = 900.0;
    mem_bus_bits = 128;
    shared_mem_per_sm = 48 * 1024;
    registers_per_block = 65536;
    max_threads_per_sm = 2048;
    max_blocks_per_sm = 32;
  }

let gtx680 =
  {
    name = "GTX680";
    cuda_cores = 1536;
    sm_count = 8;
    clock_mhz = 1058.0;
    mem_clock_mhz = 3004.0;
    mem_bus_bits = 256;
    shared_mem_per_sm = 48 * 1024;
    registers_per_block = 65536;
    max_threads_per_sm = 2048;
    max_blocks_per_sm = 16;
  }

let k20c =
  {
    name = "K20c";
    cuda_cores = 2496;
    sm_count = 13;
    clock_mhz = 706.0;
    mem_clock_mhz = 2600.0;
    mem_bus_bits = 320;
    shared_mem_per_sm = 48 * 1024;
    registers_per_block = 65536;
    max_threads_per_sm = 2048;
    max_blocks_per_sm = 16;
  }

let all = [ gtx745; gtx680; k20c ]

let find name =
  let target = String.lowercase_ascii name in
  List.find_opt (fun d -> String.equal (String.lowercase_ascii d.name) target) all

let peak_bandwidth_bytes_per_s d =
  d.mem_clock_mhz *. 1e6 *. 2.0 *. float_of_int (d.mem_bus_bits / 8)

let compute_throughput_ops_per_s d = float_of_int d.cuda_cores *. d.clock_mhz *. 1e6

let pp ppf d =
  Format.fprintf ppf "%s: %d cores @@ %.0f MHz, %.1f GB/s" d.name d.cuda_cores
    d.clock_mhz
    (peak_bandwidth_bytes_per_s d /. 1e9)
