let clamp01 v = if v < 0.0 then 0.0 else if v > 1.0 then 1.0 else v

let to_string ?(maxval = 255) img =
  if maxval < 1 || maxval > 65535 then invalid_arg "Pgm.to_string: maxval out of range";
  let width = Image.width img and height = Image.height img in
  let buf = Buffer.create ((width * height * if maxval > 255 then 2 else 1) + 32) in
  Printf.bprintf buf "P5\n%d %d\n%d\n" width height maxval;
  let scale = float_of_int maxval in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      let v = int_of_float (Float.round (clamp01 (Image.get img x y) *. scale)) in
      if maxval > 255 then begin
        Buffer.add_char buf (Char.chr (v lsr 8));
        Buffer.add_char buf (Char.chr (v land 0xff))
      end
      else Buffer.add_char buf (Char.chr v)
    done
  done;
  Buffer.contents buf

(* A tiny tokenizer over the PGM header: whitespace-separated tokens with
   '#' comments running to end of line. *)
type cursor = { data : string; mutable pos : int }

let fail fmt = Printf.ksprintf invalid_arg fmt

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let skip_ws cur =
  let n = String.length cur.data in
  let rec loop () =
    if cur.pos < n then
      if is_space cur.data.[cur.pos] then begin
        cur.pos <- cur.pos + 1;
        loop ()
      end
      else if cur.data.[cur.pos] = '#' then begin
        while cur.pos < n && cur.data.[cur.pos] <> '\n' do
          cur.pos <- cur.pos + 1
        done;
        loop ()
      end
  in
  loop ()

let token cur =
  skip_ws cur;
  let n = String.length cur.data in
  let start = cur.pos in
  while cur.pos < n && not (is_space cur.data.[cur.pos]) do
    cur.pos <- cur.pos + 1
  done;
  if cur.pos = start then fail "Pgm.of_string: unexpected end of header";
  String.sub cur.data start (cur.pos - start)

let int_token cur =
  let t = token cur in
  match int_of_string_opt t with
  | Some v -> v
  | None -> fail "Pgm.of_string: expected an integer, found %S" t

let of_string data =
  let cur = { data; pos = 0 } in
  let magic = token cur in
  let width = int_token cur in
  let height = int_token cur in
  let maxval = int_token cur in
  if width <= 0 || height <= 0 then fail "Pgm.of_string: nonpositive dimensions";
  if maxval < 1 || maxval > 65535 then fail "Pgm.of_string: maxval out of range";
  let scale = float_of_int maxval in
  match magic with
  | "P2" ->
    let img = Image.create ~width ~height () in
    for y = 0 to height - 1 do
      for x = 0 to width - 1 do
        let v = int_token cur in
        if v < 0 || v > maxval then
          fail "Pgm.of_string: sample %d at (%d, %d) outside [0, %d]" v x y maxval;
        Image.set img x y (float_of_int v /. scale)
      done
    done;
    img
  | "P5" ->
    (* Exactly one whitespace byte separates the header from the
       raster. *)
    if cur.pos >= String.length data || not (is_space data.[cur.pos]) then
      fail "Pgm.of_string: missing raster separator";
    cur.pos <- cur.pos + 1;
    let bytes_per = if maxval > 255 then 2 else 1 in
    let needed = width * height * bytes_per in
    if String.length data - cur.pos < needed then
      fail "Pgm.of_string: truncated raster (%d bytes missing)"
        (needed - (String.length data - cur.pos));
    let img = Image.create ~width ~height () in
    for i = 0 to (width * height) - 1 do
      let v =
        if bytes_per = 2 then
          (Char.code data.[cur.pos + (2 * i)] lsl 8)
          lor Char.code data.[cur.pos + (2 * i) + 1]
        else Char.code data.[cur.pos + i]
      in
      if v > maxval then
        fail "Pgm.of_string: sample %d at (%d, %d) outside [0, %d]" v (i mod width)
          (i / width) maxval;
      Image.set img (i mod width) (i / width) (float_of_int v /. scale)
    done;
    img
  | m -> fail "Pgm.of_string: unsupported magic %S (only P2/P5 graymaps)" m

module Diag = Kfuse_util.Diag

let of_string_result ?file data =
  match of_string data with
  | img -> Ok img
  | exception Invalid_argument msg -> Error (Diag.v ?file Diag.Pgm_format msg)
  | exception End_of_file ->
    Error (Diag.v ?file Diag.Pgm_format "Pgm.of_string: unexpected end of data")

let write ?maxval path img =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string ?maxval img))

let write_result ?maxval path img =
  match write ?maxval path img with
  | () -> Ok ()
  | exception Sys_error msg -> Error (Diag.v ~file:path Diag.Io_error msg)
  | exception Invalid_argument msg -> Error (Diag.v ~file:path Diag.Pgm_format msg)

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let read_result path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error (Diag.v ~file:path Diag.Io_error msg)
  | data -> of_string_result ~file:path data
