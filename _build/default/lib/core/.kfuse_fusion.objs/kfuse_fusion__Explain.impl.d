lib/core/explain.ml: Array Benefit Buffer Distribute Format Inline_fusion Kfuse_ir Kfuse_util Legality List Mincut_fusion Printf String
