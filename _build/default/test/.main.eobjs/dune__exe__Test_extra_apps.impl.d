test/test_extra_apps.ml: Alcotest Float Helpers Kfuse_apps Kfuse_fusion Kfuse_image Kfuse_ir Kfuse_util List Option Printf String
