(** Pretty-printing pipelines back to DSL text.

    The inverse of {!Elaborate} for user-level pipelines: the result
    parses back to a pipeline with identical semantics (convolutions
    appear in their expanded weighted-sum form, and unparsing is a
    fixpoint from the first round trip on).

    Fusion artifacts do not round-trip: [Shift] nodes (recomputation /
    index exchange) and non-[<] comparisons have no DSL syntax, and
    reserved words cannot name kernels — such pipelines are reported as
    unsupported rather than printed wrongly. *)

(** [expr e] renders one expression.  [Error reason] for untranslatable
    nodes. *)
val expr : Kfuse_ir.Expr.t -> (string, string) result

(** [pipeline p] renders a whole pipeline definition. *)
val pipeline : Kfuse_ir.Pipeline.t -> (string, string) result
