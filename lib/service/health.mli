(** Liveness probes for [kfused] processes.

    A health check is a full protocol round trip — connect, [ping],
    await the [pong] — not a socket-file stat: a crashed shard leaves
    its socket file behind, and a wedged one still accepts connections.
    The round trip is the only probe that proves the accept loop, a
    worker slot, and the reply path are all alive.  Used by the sharded
    topology's supervisor ({!Router}) to detect hung shards, and by
    [kfusec shard-serve] to report fleet readiness. *)

module Diag := Kfuse_util.Diag

(** [ping ~socket ~timeout_ms] is one bounded round trip: the connect,
    the read and the write are each capped at [timeout_ms]. *)
val ping : socket:string -> timeout_ms:float -> (unit, Diag.t) result

(** [alive ~socket ~timeout_ms] is [ping] folded to a boolean. *)
val alive : socket:string -> timeout_ms:float -> bool

(** [wait_ready ~socket ~timeout_ms ()] polls {!alive} every
    [interval_ms] (default 20) until it succeeds or [timeout_ms] of
    wall clock has passed; [true] iff the server answered in time. *)
val wait_ready : ?interval_ms:float -> socket:string -> timeout_ms:float -> unit -> bool
