lib/core/greedy_fusion.mli: Config Kfuse_graph Kfuse_ir
