module Diag = Kfuse_util.Diag
module Deadline = Kfuse_util.Deadline
module Image = Kfuse_image.Image
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Fingerprint = Kfuse_cache.Fingerprint
module Plan_cache = Kfuse_cache.Plan_cache
module C = Kfuse_codegen.Lower_common
module Lower_cpu = Kfuse_codegen.Lower_cpu

(* Bump when the generated wrapper or the marshalling layout changes:
   cached artifacts from an older ABI must never be loaded.  v2: the
   marshalling scalar is float64 — OCaml float arrays are already packed
   doubles, so images cross the boundary without rounding and the
   interpreter-vs-native diff reduces to the compiler's own liberties.
   v3: when kf_scalar is float64 the entry point runs on the ABI
   buffers in place instead of allocating + converting per call — the
   streaming per-frame path must not copy multi-megabyte images. *)
let abi_version = 3

type mode = Dlopen | Subprocess

let mode_to_string = function Dlopen -> "dlopen" | Subprocess -> "subprocess"

let mode_of_string = function
  | "dlopen" -> Some Dlopen
  | "subprocess" -> Some Subprocess
  | _ -> None

type run_result = {
  outputs : (string * Image.t) list;
  mode_used : mode;
  artifact : string;
  cached : bool;
  compile_ms : float;
  exec_ms : float;
  samples_ms : float list;
  warnings : Diag.t list;
}

(* {1 Loader stubs (kfuse_exec_stubs.c)} *)

external dl_open : string -> nativeint = "kfuse_dl_open"
external dl_sym : nativeint -> string -> nativeint = "kfuse_dl_sym"
external dl_close : nativeint -> unit = "kfuse_dl_close"

external dl_call : nativeint -> float array array -> float array array -> float array -> unit
  = "kfuse_dl_call"

(* {1 Small helpers} *)

let now_ms () = Unix.gettimeofday () *. 1000.

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc contents)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "kfuse-exec-%d-%x" (Unix.getpid ())
         (Hashtbl.hash (Unix.gettimeofday ())))
  in
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

(* {1 Source generation: generated pipeline + mode-specific wrapper} *)

let runner_args (p : Pipeline.t) ~input ~output ~param =
  List.mapi (fun i n -> input i n) p.Pipeline.inputs
  @ List.mapi (fun i n -> output i n) (Pipeline.outputs p)
  @ List.mapi (fun i (n, _) -> param i n) p.Pipeline.params

let dlopen_wrapper (p : Pipeline.t) =
  let b = Buffer.create 512 in
  let w fmt = Printf.bprintf b fmt in
  let n = C.sanitize p.Pipeline.name in
  let n_in = List.length p.Pipeline.inputs in
  let n_out = List.length (Pipeline.outputs p) in
  w
    "// ABI v2 entry point for the kfuse loader stub: one fixed signature\n\
     // covers every pipeline shape, so a single dlsym suffices.  The ABI\n\
     // carries float64 images (lossless against the host's arrays); the\n\
     // pipeline computes in kf_scalar, so buffers convert at the edge —\n\
     // except when kf_scalar *is* float64, where the conversion is the\n\
     // identity and the ABI buffers are used in place.  That branch is\n\
     // decided on sizeof(kf_scalar), which the compiler folds away; it\n\
     // is the per-frame streaming path, so it must not allocate.\n";
  w "void kfuse_entry(const double** ins, double** outs, const double* params) {\n";
  if p.Pipeline.inputs = [] then w "  (void)ins;\n";
  if p.Pipeline.params = [] then w "  (void)params;\n";
  w "  const size_t npix = (size_t)%d * %d;\n" p.Pipeline.width p.Pipeline.height;
  w "  size_t i;\n";
  w "  (void)npix; (void)i;\n";
  w "  if (sizeof(kf_scalar) == sizeof(double)) {\n";
  let direct_args =
    runner_args p
      ~input:(fun i name -> Printf.sprintf "(const kf_scalar*)ins[%d] /* %s */" i name)
      ~output:(fun i name -> Printf.sprintf "(kf_scalar*)outs[%d] /* %s */" i name)
      ~param:(fun i name -> Printf.sprintf "params[%d] /* %s */" i name)
  in
  w "    run_%s(%s);\n" n (String.concat ", " direct_args);
  w "    return;\n";
  w "  }\n";
  for j = 0 to n_in - 1 do
    w "  kf_scalar* b_in%d = (kf_scalar*)kf_malloc(npix * sizeof(kf_scalar));\n" j;
    w "  for (i = 0; i < npix; i++) b_in%d[i] = (kf_scalar)ins[%d][i];\n" j j
  done;
  for j = 0 to n_out - 1 do
    w "  kf_scalar* b_out%d = (kf_scalar*)kf_malloc(npix * sizeof(kf_scalar));\n" j
  done;
  let args =
    runner_args p
      ~input:(fun i name -> Printf.sprintf "b_in%d /* %s */" i name)
      ~output:(fun i name -> Printf.sprintf "b_out%d /* %s */" i name)
      ~param:(fun i name -> Printf.sprintf "params[%d] /* %s */" i name)
  in
  w "  run_%s(%s);\n" n (String.concat ", " args);
  for j = 0 to n_out - 1 do
    w "  for (i = 0; i < npix; i++) outs[%d][i] = (double)b_out%d[i];\n" j j
  done;
  for j = 0 to n_in - 1 do
    w "  free(b_in%d);\n" j
  done;
  for j = 0 to n_out - 1 do
    w "  free(b_out%d);\n" j
  done;
  w "}\n";
  Buffer.contents b

let subprocess_wrapper (p : Pipeline.t) =
  let b = Buffer.create 1024 in
  let w fmt = Printf.bprintf b fmt in
  let n = C.sanitize p.Pipeline.name in
  let inputs = p.Pipeline.inputs and outputs = Pipeline.outputs p in
  let np = List.length p.Pipeline.params in
  w "#include <stdio.h>\n\n";
  w "// Standalone runner: argv[1] holds the packed native-endian float64\n";
  w "// inputs (in declaration order) followed by %d parameter value%s;\n" np
    (if np = 1 then "" else "s");
  w "// the outputs are written to argv[2] in the same packed format.\n";
  w "// The pipeline computes in kf_scalar; the float64 scratch buffer\n";
  w "// converts after reading and before writing.\n";
  w "int main(int argc, char** argv) {\n";
  w "  if (argc != 3) { fprintf(stderr, \"usage: %%s IN OUT\\n\", argv[0]); return 2; }\n";
  w "  const size_t npix = (size_t)%d * %d;\n" p.Pipeline.width p.Pipeline.height;
  w "  size_t i;\n";
  w "  double* kf_f64 = (double*)kf_malloc(npix * sizeof(double));\n";
  w "  FILE* f = fopen(argv[1], \"rb\");\n";
  w "  if (!f) { perror(argv[1]); return 3; }\n";
  List.iter
    (fun i ->
      let v = "kf_in_" ^ C.sanitize i in
      w "  kf_scalar* %s = (kf_scalar*)kf_malloc(npix * sizeof(kf_scalar));\n" v;
      w "  if (fread(kf_f64, sizeof(double), npix, f) != npix) { fprintf(stderr, \
         \"truncated input\\n\"); return 3; }\n";
      w "  for (i = 0; i < npix; i++) %s[i] = (kf_scalar)kf_f64[i];\n" v)
    inputs;
  if np > 0 then begin
    w "  double kf_params[%d];\n" np;
    w "  if (fread(kf_params, sizeof(double), %d, f) != %d) { fprintf(stderr, \
       \"truncated parameters\\n\"); return 3; }\n"
      np np
  end;
  w "  fclose(f);\n";
  List.iter
    (fun o ->
      w "  kf_scalar* %s = (kf_scalar*)kf_malloc(npix * sizeof(kf_scalar));\n"
        ("kf_out_" ^ C.sanitize o))
    outputs;
  let args =
    runner_args p
      ~input:(fun _ name -> "kf_in_" ^ C.sanitize name)
      ~output:(fun _ name -> "kf_out_" ^ C.sanitize name)
      ~param:(fun i _ -> Printf.sprintf "(kf_scalar)kf_params[%d]" i)
  in
  w "  run_%s(%s);\n" n (String.concat ", " args);
  w "  f = fopen(argv[2], \"wb\");\n";
  w "  if (!f) { perror(argv[2]); return 4; }\n";
  List.iter
    (fun o ->
      let v = "kf_out_" ^ C.sanitize o in
      w "  for (i = 0; i < npix; i++) kf_f64[i] = (double)%s[i];\n" v;
      w "  if (fwrite(kf_f64, sizeof(double), npix, f) != npix) { perror(argv[2]); \
         return 4; }\n")
    outputs;
  w "  if (fclose(f) != 0) { perror(argv[2]); return 4; }\n";
  w "  return 0;\n}\n";
  Buffer.contents b

let source ?tile ~mode (p : Pipeline.t) =
  (* Double precision throughout the pipeline: every operation and every
     inter-kernel store matches the float64 interpreter, so the
     interpreter-vs-native diff reduces to the float32 ABI boundary
     (input quantization + final output store), orders of magnitude
     inside the tolerance gate even for numerically touchy kernels. *)
  let base = Lower_cpu.emit_pipeline ?tile ~prec:C.Double p in
  let wrapper = match mode with Dlopen -> dlopen_wrapper p | Subprocess -> subprocess_wrapper p in
  base ^ "\n" ^ wrapper

(* {1 Compile cache} *)

(* The generated source itself is folded into the key (alongside the
   pipeline fingerprint, which keeps keys distinct even if two
   pipelines ever emitted identical C): any codegen change — lowering,
   wrapper, tiling — automatically invalidates stale artifacts without
   relying on a version bump someone must remember. *)
let artifact_key ~tc ~mode ~tile ~src (p : Pipeline.t) =
  let tile_s =
    match tile with None -> "untiled" | Some (tx, ty) -> Printf.sprintf "tile:%dx%d" tx ty
  in
  Digest.to_hex
    (Digest.string
       (String.concat "\n"
          [
            Printf.sprintf "kfuse-native-abi-v%d" abi_version;
            Fingerprint.exact p;
            mode_to_string mode;
            tile_s;
            "prec:double";
            Toolchain.id tc;
            src;
          ]))

let default_cache_dir () = Filename.concat (Plan_cache.default_dir ()) "native"

(* Process-wide count of real (cache-missing) compiler invocations.
   Streaming tests assert "exactly one compile per stream" as a delta of
   this counter across a session's lifetime. *)
let compile_count = Atomic.make 0
let compiles () = Atomic.get compile_count

(* Single-flight per artifact path: when several worker threads miss on
   the same key at once (N streams of the same pipeline opening against
   a cold cache), exactly one invokes the compiler and the rest wait for
   the publish.  Cross-process races stay benign through the per-attempt
   tmp name and the atomic rename. *)
let compile_lock = Mutex.create ()
let compile_inflight : (string, Condition.t) Hashtbl.t = Hashtbl.create 8
let compile_attempt = Atomic.make 0

let single_flight ~dest build =
  Mutex.lock compile_lock;
  let rec acquire () =
    if Sys.file_exists dest then begin
      Mutex.unlock compile_lock;
      Ok (dest, 0., true)
    end
    else
      match Hashtbl.find_opt compile_inflight dest with
      | Some cond ->
        Condition.wait cond compile_lock;
        acquire ()
      | None ->
        let cond = Condition.create () in
        Hashtbl.replace compile_inflight dest cond;
        Mutex.unlock compile_lock;
        Fun.protect
          ~finally:(fun () ->
            Mutex.lock compile_lock;
            Hashtbl.remove compile_inflight dest;
            Condition.broadcast cond;
            Mutex.unlock compile_lock)
          build
  in
  acquire ()

let compile ?cache_dir ?tile ~mode (p : Pipeline.t) =
  match Toolchain.find () with
  | Error d -> Error d
  | Ok tc ->
    let dir = match cache_dir with Some d -> d | None -> default_cache_dir () in
    mkdir_p dir;
    let src = source ?tile ~mode p in
    let key = artifact_key ~tc ~mode ~tile ~src p in
    let ext = match mode with Dlopen -> ".so" | Subprocess -> ".bin" in
    let dest = Filename.concat dir ("kf-" ^ key ^ ext) in
    if Sys.file_exists dest then Ok (dest, 0., true)
    else
      single_flight ~dest @@ fun () ->
      (* The source is kept next to the artifact: a KF0903 message can
         point at a file a human can feed to the compiler by hand. *)
      let src_path = Filename.concat dir ("kf-" ^ key ^ ".c") in
      write_file src_path src;
      let attempt = Atomic.fetch_and_add compile_attempt 1 in
      let tmp = Printf.sprintf "%s.tmp.%d.%d" dest (Unix.getpid ()) attempt in
      let err_path = Printf.sprintf "%s.log.%d.%d" dest (Unix.getpid ()) attempt in
      let argv =
        (tc.Toolchain.cc :: Toolchain.flags tc ~shared:(mode = Dlopen))
        @ [ "-o"; tmp; src_path; "-lm" ]
      in
      (* Supervised fork/exec — no shell — with a wall cap so a wedged
         compiler cannot hang the daemon.  No rlimits: compilers
         legitimately need memory, and [fault_injection:false] keeps an
         armed [exec.*] chaos point aimed at executions, not at the
         compiler. *)
      let r =
        Supervisor.run
          ~limits:{ Supervisor.no_limits with Supervisor.wall_ms = Some 120_000. }
          ~fault_injection:false ~stderr_path:err_path ~argv ()
      in
      let log = r.Supervisor.stderr_tail in
      (try Sys.remove err_path with Sys_error _ -> ());
      match r.Supervisor.status with
      | Error f ->
        (try Sys.remove tmp with Sys_error _ -> ());
        let reason =
          match f with
          | Supervisor.Nonzero_exit { code } -> Printf.sprintf "exited with %d" code
          | Supervisor.Timeout { wall_ms; _ } ->
            Printf.sprintf "timed out after %.0f ms" wall_ms
          | Supervisor.Crashed { signal } -> "crashed with " ^ signal
          | Supervisor.Limit { what; _ } -> "exceeded " ^ what
          | Supervisor.Spawn_failed { reason } -> reason
        in
        Error
          (Diag.errorf Diag.Compile_failed "%s %s compiling generated C (%s):\n%s"
             tc.Toolchain.cc reason src_path log)
      | Ok () ->
        (* Atomic publish: concurrent builders race benignly on rename. *)
        Sys.rename tmp dest;
        Atomic.incr compile_count;
        Ok (dest, r.Supervisor.wall_ms, false)

(* {1 Marshalling} *)

(* Zero-copy marshalling: at streaming rates this path runs once per
   frame, so it must not allocate or copy megabytes per call.  Inputs
   are read-only views of the image's backing array (the C stub copies
   them into private buffers before the kernel runs); outputs transfer
   ownership of the result buffer into the image. *)
let flatten img = Image.unsafe_data img

let unflatten ~width ~height arr = Image.unsafe_of_flat ~width ~height arr

(* Mirror {!Eval.run}'s input contract so the two backends are
   interchangeable in tests and oracles. *)
let check_inputs (p : Pipeline.t) inputs =
  let names = List.map fst inputs in
  let sorted = List.sort compare names and expected = List.sort compare p.Pipeline.inputs in
  if sorted <> expected then
    invalid_arg
      (Printf.sprintf "Native.run: pipeline %s expects inputs {%s}, got {%s}"
         p.Pipeline.name
         (String.concat ", " expected)
         (String.concat ", " sorted));
  List.iter
    (fun (n, img) ->
      if Image.width img <> p.Pipeline.width || Image.height img <> p.Pipeline.height then
        invalid_arg
          (Printf.sprintf "Native.run: input %s is %dx%d, pipeline %s is %dx%d" n
             (Image.width img) (Image.height img) p.Pipeline.name p.Pipeline.width
             p.Pipeline.height))
    inputs

let param_values (p : Pipeline.t) overrides =
  List.iter
    (fun (n, _) ->
      if not (List.mem_assoc n p.Pipeline.params) then
        invalid_arg
          (Printf.sprintf "Native.run: pipeline %s has no parameter %s" p.Pipeline.name n))
    overrides;
  List.map
    (fun (n, default) ->
      match List.assoc_opt n overrides with Some v -> v | None -> default)
    p.Pipeline.params

(* A reduction materializes as a 1x1 image (the generated code
   broadcasts the scalar over the full buffer; cell 0 is the value). *)
let is_reduction (p : Pipeline.t) name =
  match Pipeline.producer p name with
  | None -> false
  | Some i -> (
    match (Pipeline.kernel p i).Kernel.op with
    | Kernel.Reduce _ -> true
    | Kernel.Map _ -> false)

let finish_outputs (p : Pipeline.t) out_names bufs =
  let width = p.Pipeline.width and height = p.Pipeline.height in
  List.map2
    (fun name buf ->
      let img =
        if is_reduction p name then Image.init ~width:1 ~height:1 (fun _ _ -> buf.(0))
        else unflatten ~width ~height buf
      in
      (name, img))
    out_names (Array.to_list bufs)
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* {1 Execution} *)

(* The request deadline is honored between [repeat] timing samples in
   both modes, so a large [repeat] cannot blow past the service's
   [--request-timeout-ms]: the sample loop stops with KF0905 instead of
   running the full schedule. *)
let sample_deadline_diag ~artifact ~done_ ~repeat =
  Diag.errorf Diag.Exec_timeout
    "request deadline expired after %d of %d timing samples of compiled plan %s" done_ repeat
    artifact

(* A pinned dlopen handle: one dlopen + dlsym at open time, then a bare
   function call per execution.  This is what makes per-frame streaming
   cheap — sessions keep the handle alive across pushes instead of
   paying the loader per call. *)
type loaded = { handle : nativeint; entry : nativeint }

let load_artifact artifact =
  match dl_open artifact with
  | exception Failure msg ->
    Error (Diag.errorf Diag.Exec_failed "dlopen(%s): %s" artifact msg)
  | handle -> (
    match dl_sym handle "kfuse_entry" with
    | exception Failure msg ->
      dl_close handle;
      Error (Diag.errorf Diag.Exec_failed "dlsym(%s, kfuse_entry): %s" artifact msg)
    | entry -> Ok { handle; entry })

let exec_entry ~deadline ~entry ~artifact ~repeat (p : Pipeline.t) inputs pvals =
  let npix = p.Pipeline.width * p.Pipeline.height in
  let out_names = Pipeline.outputs p in
  let ins =
    Array.of_list (List.map (fun n -> flatten (List.assoc n inputs)) p.Pipeline.inputs)
  in
  let outs = Array.of_list (List.map (fun _ -> Array.make npix 0.) out_names) in
  let pars = Array.of_list pvals in
  let samples = ref [] in
  let expired = ref false in
  for i = 1 to repeat do
    if not !expired then
      if i > 1 && Deadline.expired deadline then expired := true
      else begin
        let t0 = now_ms () in
        dl_call entry ins outs pars;
        samples := (now_ms () -. t0) :: !samples
      end
  done;
  if !expired then
    Error (sample_deadline_diag ~artifact ~done_:(List.length !samples) ~repeat)
  else Ok (finish_outputs p out_names outs, List.rev !samples)

let exec_dlopen ~deadline ~limits:_ ~artifact ~repeat (p : Pipeline.t) inputs pvals =
  match load_artifact artifact with
  | Error d -> Error d
  | Ok l ->
    Fun.protect
      ~finally:(fun () -> dl_close l.handle)
      (fun () -> exec_entry ~deadline ~entry:l.entry ~artifact ~repeat p inputs pvals)

let pack_float64 buf f = Buffer.add_int64_ne buf (Int64.bits_of_float f)

let exec_subprocess ~deadline ~limits ~artifact ~repeat (p : Pipeline.t) inputs pvals =
  let npix = p.Pipeline.width * p.Pipeline.height in
  let out_names = Pipeline.outputs p in
  let n_out = List.length out_names in
  with_temp_dir (fun dir ->
      let in_path = Filename.concat dir "in.f64" in
      let out_path = Filename.concat dir "out.f64" in
      let err_path = Filename.concat dir "stderr" in
      let buf = Buffer.create (8 * ((npix * List.length p.Pipeline.inputs) + List.length pvals)) in
      List.iter
        (fun n -> Array.iter (pack_float64 buf) (flatten (List.assoc n inputs)))
        p.Pipeline.inputs;
      List.iter (pack_float64 buf) pvals;
      write_file in_path (Buffer.contents buf);
      (* Each sample is a supervised fork/exec child (no shell): rlimits
         between fork and exec, a watchdog on the request deadline, and
         typed KF0905/KF0906/KF0907 classification when it dies. *)
      let argv = [ artifact; in_path; out_path ] in
      let samples = ref [] in
      let failed = ref None in
      for i = 1 to repeat do
        if !failed = None then
          if i > 1 && Deadline.expired deadline then
            failed :=
              Some (sample_deadline_diag ~artifact ~done_:(List.length !samples) ~repeat)
          else begin
            let r = Supervisor.run ~deadline ~limits ~stderr_path:err_path ~argv () in
            match
              Supervisor.failure_diag ~what:(Printf.sprintf "compiled plan %s" artifact) r
            with
            | Some d -> failed := Some d
            | None -> samples := r.Supervisor.wall_ms :: !samples
          end
      done;
      match !failed with
      | Some d -> Error d
      | None -> (
        let expected = 8 * npix * n_out in
        match open_in_bin out_path with
        | exception Sys_error msg ->
          Error (Diag.errorf Diag.Exec_failed "cannot read plan output: %s" msg)
        | ic ->
          Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
              if in_channel_length ic <> expected then
                Error
                  (Diag.errorf Diag.Exec_failed
                     "compiled plan %s wrote %d bytes, expected %d" artifact
                     (in_channel_length ic) expected)
              else begin
                let bytes = really_input_string ic expected |> Bytes.of_string in
                let bufs =
                  Array.init n_out (fun o ->
                      Array.init npix (fun i ->
                          Int64.float_of_bits
                            (Bytes.get_int64_ne bytes (8 * ((o * npix) + i)))))
                in
                Ok (finish_outputs p out_names bufs, List.rev !samples)
              end)))

(* {1 Entry point} *)

let min_sample = function [] -> 0. | s :: rest -> List.fold_left min s rest

let run_mode ~mode ~tile ~cache_dir ~repeat ~deadline ~limits ~warnings (p : Pipeline.t)
    inputs pvals =
  match compile ?cache_dir ?tile ~mode p with
  | Error d -> Error d
  | Ok (artifact, compile_ms, cached) -> (
    let exec =
      match mode with Dlopen -> exec_dlopen | Subprocess -> exec_subprocess
    in
    match exec ~deadline ~limits ~artifact ~repeat p inputs pvals with
    | Error d -> Error d
    | Ok (outputs, samples_ms) ->
      Ok
        {
          outputs;
          mode_used = mode;
          artifact;
          cached;
          compile_ms;
          exec_ms = min_sample samples_ms;
          samples_ms;
          warnings;
        })

let run ?mode ?tile ?cache_dir ?(params = []) ?(repeat = 1) ?(deadline = Deadline.none)
    ?(limits = Supervisor.no_limits) (p : Pipeline.t) inputs =
  if repeat < 1 then invalid_arg "Native.run: repeat must be positive";
  check_inputs p inputs;
  let pvals = param_values p params in
  let go ~mode ~warnings =
    run_mode ~mode ~tile ~cache_dir ~repeat ~deadline ~limits ~warnings p inputs pvals
  in
  match mode with
  | Some m -> go ~mode:m ~warnings:[]
  | None -> (
    match go ~mode:Dlopen ~warnings:[] with
    | Ok r -> Ok r
    | Error d when d.Diag.code = Diag.Exec_failed ->
      (* In-process load failed; the subprocess runner shares no process
         state with us, so it may still work.  Keep the evidence. *)
      go ~mode:Subprocess ~warnings:[ { d with Diag.severity = Diag.Warning } ]
    | Error d -> Error d)

(* {1 Pinned plans} *)

type plan = {
  plan_pipeline : Pipeline.t;
  plan_mode : mode;
  plan_artifact : string;
  plan_cached : bool;
  plan_compile_ms : float;
  plan_loaded : loaded option;  (* Some for Dlopen, None for Subprocess *)
  mutable plan_released : bool;
}

let prepare ?tile ?cache_dir ~mode (p : Pipeline.t) =
  match compile ?cache_dir ?tile ~mode p with
  | Error d -> Error d
  | Ok (artifact, compile_ms, cached) -> (
    let make loaded =
      {
        plan_pipeline = p;
        plan_mode = mode;
        plan_artifact = artifact;
        plan_cached = cached;
        plan_compile_ms = compile_ms;
        plan_loaded = loaded;
        plan_released = false;
      }
    in
    match mode with
    | Subprocess -> Ok (make None)
    | Dlopen -> (
      match load_artifact artifact with
      | Error d -> Error d
      | Ok l -> Ok (make (Some l))))

let plan_mode plan = plan.plan_mode
let plan_artifact plan = plan.plan_artifact
let plan_cached plan = plan.plan_cached
let plan_compile_ms plan = plan.plan_compile_ms
let plan_pipeline plan = plan.plan_pipeline

let release plan =
  if not plan.plan_released then begin
    plan.plan_released <- true;
    match plan.plan_loaded with None -> () | Some l -> dl_close l.handle
  end

let run_plan ?(params = []) ?(repeat = 1) ?(deadline = Deadline.none)
    ?(limits = Supervisor.no_limits) plan inputs =
  if repeat < 1 then invalid_arg "Native.run_plan: repeat must be positive";
  if plan.plan_released then invalid_arg "Native.run_plan: plan already released";
  let p = plan.plan_pipeline in
  check_inputs p inputs;
  let pvals = param_values p params in
  let artifact = plan.plan_artifact in
  let exec =
    match plan.plan_loaded with
    | Some l -> exec_entry ~deadline ~entry:l.entry ~artifact ~repeat p inputs pvals
    | None -> exec_subprocess ~deadline ~limits ~artifact ~repeat p inputs pvals
  in
  match exec with
  | Error d -> Error d
  | Ok (outputs, samples_ms) ->
    Ok
      {
        outputs;
        mode_used = plan.plan_mode;
        artifact;
        cached = plan.plan_cached;
        compile_ms = 0.;
        exec_ms = min_sample samples_ms;
        samples_ms;
        warnings = [];
      }
