module Diag = Kfuse_util.Diag
module Image = Kfuse_image.Image
module Pipeline = Kfuse_ir.Pipeline
module Temporal = Kfuse_ir.Temporal
module Eval = Kfuse_ir.Eval

type t = {
  pipeline : Pipeline.t;
  analysis : Temporal.t;
  stream_input : string;
  params : (string * float) list;
  (* Past frames, newest first, capped at [analysis.depth].  The ring
     holds pipeline INPUTS, not outputs: the compiled plan stays a pure
     per-frame function, so native and interpreter backends see exactly
     the same bindings and bit-exactness across backends (including the
     mid-stream quarantine fallback) needs no state reconciliation. *)
  mutable history : Image.t list;
  mutable frames : int;
}

let create ?(params = []) (pipeline : Pipeline.t) =
  let analysis = Temporal.analyze pipeline in
  match Temporal.stream_input analysis with
  | Error d -> Error d
  | Ok stream_input -> Ok { pipeline; analysis; stream_input; params; history = []; frames = 0 }

let pipeline t = t.pipeline
let analysis t = t.analysis
let stream_input t = t.stream_input
let params t = t.params
let depth t = t.analysis.Temporal.depth
let frames t = t.frames

let check_frame t frame =
  let w = t.pipeline.Pipeline.width and h = t.pipeline.Pipeline.height in
  if Image.width frame <> w || Image.height frame <> h then
    invalid_arg
      (Printf.sprintf "Session: frame is %dx%d, stream %s is %dx%d"
         (Image.width frame) (Image.height frame) t.pipeline.Pipeline.name w h)

(* [lag] frames back, clamping a cold start to the oldest frame we have
   (the current frame itself when the history is empty): frame 0 of a
   motion stream sees a zero delta, not an arbitrary boundary value. *)
let lagged t ~frame lag =
  match List.nth_opt t.history (lag - 1) with
  | Some img -> img
  | None -> ( match List.rev t.history with oldest :: _ -> oldest | [] -> frame)

let bindings t frame =
  check_frame t frame;
  List.map
    (fun name ->
      if String.equal name t.stream_input then (name, frame)
      else
        match List.assoc_opt name t.analysis.Temporal.temporal with
        | Some lag -> (name, lagged t ~frame lag)
        | None ->
          (* unreachable: [analyze] classifies every input *)
          invalid_arg ("Session: unclassified input " ^ name))
    t.pipeline.Pipeline.inputs

let advance t frame =
  check_frame t frame;
  let d = depth t in
  if d > 0 then
    t.history <- List.filteri (fun i _ -> i < d) (frame :: t.history);
  t.frames <- t.frames + 1

let eval t frame =
  Eval.run_outputs ~params:t.params t.pipeline (Eval.env_of_list (bindings t frame))

let push t frame =
  let outs = eval t frame in
  advance t frame;
  outs
