module Diag = Kfuse_util.Diag
module Kernel = Kfuse_ir.Kernel
module Expr = Kfuse_ir.Expr
module Pipeline = Kfuse_ir.Pipeline
module Validate = Kfuse_ir.Validate
module Config = Kfuse_fusion.Config

type t = {
  name : string;
  width : int;
  height : int;
  channels : int;
  mutable inputs : string list;
  mutable params : (string * float) list;
  mutable kernels : Kernel.t list;  (* insertion order *)
  session : Replan.t;
  mutable generation : int;
}

let create ?(name = "lazy") ?(channels = 1) ?(params = []) ?(inputs = []) ~width
    ~height config =
  if width <= 0 || height <= 0 || channels <= 0 then
    invalid_arg "Lazy_pipeline.create: nonpositive iteration space";
  {
    name;
    width;
    height;
    channels;
    inputs;
    params;
    kernels = [];
    session = Replan.create config;
    generation = 0;
  }

let of_pipeline config (p : Pipeline.t) =
  {
    name = p.Pipeline.name;
    width = p.Pipeline.width;
    height = p.Pipeline.height;
    channels = p.Pipeline.channels;
    inputs = p.Pipeline.inputs;
    params = p.Pipeline.params;
    kernels = Array.to_list p.Pipeline.kernels;
    session = Replan.create config;
    generation = 0;
  }

let raw t ~inputs ~params ~kernels =
  {
    Validate.name = t.name;
    width = t.width;
    height = t.height;
    channels = t.channels;
    inputs;
    params;
    kernels;
  }

(* Trial-build the would-be state; commit only when the validator (and
   Pipeline.create behind it) accepts it, so the builder never holds an
   unconstructible pipeline. *)
let commit t ?inputs ?params ?kernels () =
  let inputs = Option.value ~default:t.inputs inputs in
  let params = Option.value ~default:t.params params in
  let kernels = Option.value ~default:t.kernels kernels in
  match Validate.build (raw t ~inputs ~params ~kernels) with
  | Error d -> Error d
  | Ok _ ->
    t.inputs <- inputs;
    t.params <- params;
    t.kernels <- kernels;
    t.generation <- t.generation + 1;
    Ok ()

let add t k = commit t ~kernels:(t.kernels @ [ k ]) ()

let remove t name =
  if List.exists (fun (k : Kernel.t) -> k.Kernel.name = name) t.kernels then
    commit t
      ~kernels:(List.filter (fun (k : Kernel.t) -> k.Kernel.name <> name) t.kernels)
      ()
  else Error (Diag.errorf Diag.Dangling_ref "no kernel named '%s' to delete" name)

let retarget t ~kernel ~from_ ~to_ =
  match List.find_opt (fun (k : Kernel.t) -> k.Kernel.name = kernel) t.kernels with
  | None -> Error (Diag.errorf Diag.Dangling_ref "no kernel named '%s' to retarget" kernel)
  | Some k ->
    if not (List.mem from_ k.Kernel.inputs) then
      Error
        (Diag.errorf Diag.Dangling_ref "kernel '%s' does not read image '%s'" kernel
           from_)
    else if from_ = to_ then Ok ()
    else (
      let ren img = if img = from_ then to_ else img in
      match
        let op =
          match k.Kernel.op with
          | Kernel.Map e -> Kernel.Map (Expr.rename_images ren e)
          | Kernel.Reduce r -> Kernel.Reduce { r with arg = Expr.rename_images ren r.arg }
        in
        let body = match op with Kernel.Map e -> e | Kernel.Reduce r -> r.arg in
        Kernel.create ~name:k.Kernel.name ~inputs:(Expr.images body) op
      with
      | exception Invalid_argument msg ->
        Error (Diag.errorf Diag.Elab_error "retarget '%s': %s" kernel msg)
      | k' ->
        commit t
          ~kernels:
            (List.map
               (fun (k0 : Kernel.t) -> if k0.Kernel.name = kernel then k' else k0)
               t.kernels)
          ())

let set_param t name v =
  let params =
    if List.mem_assoc name t.params then
      List.map (fun (n, d) -> if n = name then (n, v) else (n, d)) t.params
    else t.params @ [ (name, v) ]
  in
  commit t ~params ()

let add_input t name = commit t ~inputs:(t.inputs @ [ name ]) ()

let name t = t.name
let width t = t.width
let height t = t.height
let channels t = t.channels
let inputs t = t.inputs
let params t = t.params
let kernels t = t.kernels

let images t =
  t.inputs @ List.map (fun (k : Kernel.t) -> k.Kernel.name) t.kernels

let generation t = t.generation

let pipeline t =
  Validate.build (raw t ~inputs:t.inputs ~params:t.params ~kernels:t.kernels)

let session t = t.session

let flush ?pool t =
  Result.bind (pipeline t) (fun p -> Replan.plan ?pool t.session p)

let flush_scratch ?pool t =
  Result.bind (pipeline t) (fun p ->
      Replan.scratch ?pool (Replan.config t.session) p)

let last t = Replan.last t.session
