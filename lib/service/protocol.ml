module Diag = Kfuse_util.Diag
module Deadline = Kfuse_util.Deadline
module Driver = Kfuse_fusion.Driver

let max_frame = 16 * 1024 * 1024

(* ---- framing ---- *)

(* A write to a vanished peer must surface as [Unix_error EPIPE] — which
   the server's send guard and the client's [request] already turn into a
   dropped connection / Service_error — not as a process-killing SIGPIPE.
   Forced on first [send], so both kfused and the client CLI are covered. *)
let ignore_sigpipe =
  lazy (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ())

(* EINTR always retries: a signal landing mid-frame must not kill the
   request.  EAGAIN/EWOULDBLOCK only arrives when an [SO_SNDTIMEO] is
   armed on the socket, i.e. the kernel already blocked for one full
   timeout period; retry while the caller's deadline allows, surface
   {!Kfuse_util.Deadline.Expired} once it does not.  Without a deadline
   the socket-level timeout is authoritative and the error propagates —
   retrying forever would let a slow-loris peer pin the writer. *)
let write_all ?(deadline = Deadline.none) fd bytes =
  let len = Bytes.length bytes in
  let rec go off =
    if off < len then begin
      match Unix.write fd bytes off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
        when deadline <> Deadline.none ->
        Deadline.check deadline;
        go off
    end
  in
  go 0

(* [Ok false] on EOF before the first byte; raises Protocol_error-shaped
   [Error] through the caller for EOF mid-frame. *)
let read_exactly fd bytes =
  let len = Bytes.length bytes in
  let rec go off =
    if off >= len then Ok true
    else
      match Unix.read fd bytes off (len - off) with
      | 0 ->
        if off = 0 then Ok false
        else Error (Diag.errorf Diag.Protocol_error "connection closed mid-frame (%d/%d bytes)" off len)
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        (* An armed [SO_RCVTIMEO] elapsed: the peer is slow or gone.
           Typed so the caller can answer [KF0804] and free the slot. *)
        Error
          (Diag.errorf Diag.Request_timeout "read timed out (%d/%d bytes)" off len)
      | exception Unix.Unix_error (e, _, _) ->
        (* A reset peer is a protocol-level event, not an exception: the
           caller decides whether to drop the connection. *)
        Error (Diag.errorf Diag.Protocol_error "read failed: %s" (Unix.error_message e))
  in
  go 0

let encode v =
  let payload = Bytes.unsafe_of_string (Jsonx.to_string v) in
  let len = Bytes.length payload in
  if len > max_frame then
    Diag.fail
      (Diag.errorf Diag.Protocol_error "frame of %d bytes exceeds the %d-byte limit" len
         max_frame);
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int len);
  (header, payload)

let send ?deadline fd v =
  Lazy.force ignore_sigpipe;
  let header, payload = encode v in
  write_all ?deadline fd header;
  write_all ?deadline fd payload

let send_torn fd v =
  Lazy.force ignore_sigpipe;
  let header, payload = encode v in
  write_all fd header;
  write_all fd (Bytes.sub payload 0 (Bytes.length payload / 2))

let recv fd =
  let header = Bytes.create 4 in
  match read_exactly fd header with
  | Error _ as e -> e |> Result.map (fun _ -> None)
  | Ok false -> Ok None
  | Ok true -> (
    let len = Int32.to_int (Bytes.get_int32_be header 0) in
    if len < 0 || len > max_frame then
      Error (Diag.errorf Diag.Protocol_error "frame length %d out of range (max %d)" len max_frame)
    else
      let payload = Bytes.create len in
      match read_exactly fd payload with
      | Error _ as e -> Result.map (fun _ -> None) e
      | Ok false ->
        Error (Diag.errorf Diag.Protocol_error "connection closed before %d-byte payload" len)
      | Ok true -> (
        match Jsonx.of_string (Bytes.unsafe_to_string payload) with
        | Ok v -> Ok (Some v)
        | Error msg -> Error (Diag.errorf Diag.Protocol_error "invalid JSON payload: %s" msg)))

(* ---- requests ---- *)

type fuse_request = {
  app : string option;
  source : string option;
  strategy : Driver.strategy;
  c_mshared : float option;
  gamma : float option;
  tg : float option;
  optimize : bool;
  inline : bool;
  strict : bool;
  budget_ms : float option;
  no_cache : bool;
}

type fuse_exec_request = {
  fuse : fuse_request;
  exec_mode : Kfuse_exec.Native.mode option;  (* None = auto with fallback *)
  width : int option;
  height : int option;
  seed : int;
  repeat : int;
  verify : bool;
  return_pixels : bool;
}

type stream_open_request = {
  fuse : fuse_request;
  exec_mode : Kfuse_exec.Native.mode option;  (* None = auto with fallback *)
  width : int option;
  height : int option;
  seed : int;
}

type stream_push_request = {
  id : string;
  verify : bool;
  return_pixels : bool;
}

type lazy_open_request = {
  app : string option;
  source : string option;  (* seed pipeline; both None = empty builder *)
  width : int option;  (* required for an empty builder *)
  height : int option;
  channels : int option;
  inputs : string list;  (* empty-builder input declarations *)
  c_mshared : float option;
  gamma : float option;
  tg : float option;
}

type lazy_edit_request = {
  id : string;
  command : string;  (* one line of the repl edit grammar *)
}

type lazy_flush_request = {
  id : string;
  scratch : bool;  (* bypass the session memos (differential reference) *)
}

type request =
  | Fuse of fuse_request
  | Fuse_exec of fuse_exec_request
  | Stream_open of stream_open_request
  | Stream_push of stream_push_request
  | Stream_close of string  (* session id *)
  | Lazy_open of lazy_open_request
  | Lazy_edit of lazy_edit_request
  | Lazy_flush of lazy_flush_request
  | Lazy_close of string  (* session id *)
  | Stats
  | Metrics
  | Ping
  | Shutdown

let fuse_fields (f : fuse_request) =
  let opt name conv v fields =
    match v with None -> fields | Some v -> (name, conv v) :: fields
  in
  let fields =
    []
    |> opt "budget_ms" (fun v -> Jsonx.Num v) f.budget_ms
    |> opt "tg" (fun v -> Jsonx.Num v) f.tg
    |> opt "gamma" (fun v -> Jsonx.Num v) f.gamma
    |> opt "c_mshared" (fun v -> Jsonx.Num v) f.c_mshared
    |> opt "source" (fun v -> Jsonx.Str v) f.source
    |> opt "app" (fun v -> Jsonx.Str v) f.app
  in
  let fields = if f.optimize then ("optimize", Jsonx.Bool true) :: fields else fields in
  let fields = if f.inline then ("inline", Jsonx.Bool true) :: fields else fields in
  let fields = if f.strict then ("strict", Jsonx.Bool true) :: fields else fields in
  let fields = if f.no_cache then ("no_cache", Jsonx.Bool true) :: fields else fields in
  ("strategy", Jsonx.Str (Driver.strategy_to_string f.strategy)) :: fields

let request_to_json = function
  | Stats -> Jsonx.Obj [ ("op", Jsonx.Str "stats") ]
  | Metrics -> Jsonx.Obj [ ("op", Jsonx.Str "metrics") ]
  | Ping -> Jsonx.Obj [ ("op", Jsonx.Str "ping") ]
  | Shutdown -> Jsonx.Obj [ ("op", Jsonx.Str "shutdown") ]
  | Fuse f -> Jsonx.Obj (("op", Jsonx.Str "fuse") :: fuse_fields f)
  | Fuse_exec e ->
    let opt name conv v fields =
      match v with None -> fields | Some v -> (name, conv v) :: fields
    in
    let fields =
      fuse_fields e.fuse
      |> opt "exec_mode"
           (fun m -> Jsonx.Str (Kfuse_exec.Native.mode_to_string m))
           e.exec_mode
      |> opt "width" (fun v -> Jsonx.Num (float_of_int v)) e.width
      |> opt "height" (fun v -> Jsonx.Num (float_of_int v)) e.height
    in
    let fields = ("seed", Jsonx.Num (float_of_int e.seed)) :: fields in
    let fields =
      if e.repeat <> 1 then ("repeat", Jsonx.Num (float_of_int e.repeat)) :: fields
      else fields
    in
    let fields = if e.verify then ("verify", Jsonx.Bool true) :: fields else fields in
    let fields =
      if e.return_pixels then ("return_pixels", Jsonx.Bool true) :: fields else fields
    in
    Jsonx.Obj (("op", Jsonx.Str "fuse_exec") :: fields)
  | Stream_open o ->
    let opt name conv v fields =
      match v with None -> fields | Some v -> (name, conv v) :: fields
    in
    let fields =
      fuse_fields o.fuse
      |> opt "exec_mode"
           (fun m -> Jsonx.Str (Kfuse_exec.Native.mode_to_string m))
           o.exec_mode
      |> opt "width" (fun v -> Jsonx.Num (float_of_int v)) o.width
      |> opt "height" (fun v -> Jsonx.Num (float_of_int v)) o.height
    in
    let fields = ("seed", Jsonx.Num (float_of_int o.seed)) :: fields in
    Jsonx.Obj (("op", Jsonx.Str "stream_open") :: fields)
  | Stream_push s ->
    let fields = [ ("id", Jsonx.Str s.id) ] in
    let fields = if s.verify then ("verify", Jsonx.Bool true) :: fields else fields in
    let fields =
      if s.return_pixels then ("return_pixels", Jsonx.Bool true) :: fields else fields
    in
    Jsonx.Obj (("op", Jsonx.Str "stream_push") :: fields)
  | Stream_close id -> Jsonx.Obj [ ("op", Jsonx.Str "stream_close"); ("id", Jsonx.Str id) ]
  | Lazy_open o ->
    let opt name conv v fields =
      match v with None -> fields | Some v -> (name, conv v) :: fields
    in
    let num v = Jsonx.Num v in
    let fields =
      []
      |> opt "tg" num o.tg
      |> opt "gamma" num o.gamma
      |> opt "c_mshared" num o.c_mshared
      |> opt "channels" (fun v -> Jsonx.Num (float_of_int v)) o.channels
      |> opt "height" (fun v -> Jsonx.Num (float_of_int v)) o.height
      |> opt "width" (fun v -> Jsonx.Num (float_of_int v)) o.width
      |> opt "source" (fun v -> Jsonx.Str v) o.source
      |> opt "app" (fun v -> Jsonx.Str v) o.app
    in
    let fields =
      if o.inputs = [] then fields
      else ("inputs", Jsonx.Arr (List.map (fun i -> Jsonx.Str i) o.inputs)) :: fields
    in
    Jsonx.Obj (("op", Jsonx.Str "lazy_open") :: fields)
  | Lazy_edit e ->
    Jsonx.Obj
      [ ("op", Jsonx.Str "lazy_edit"); ("id", Jsonx.Str e.id); ("command", Jsonx.Str e.command) ]
  | Lazy_flush f ->
    let fields = [ ("id", Jsonx.Str f.id) ] in
    let fields = if f.scratch then ("scratch", Jsonx.Bool true) :: fields else fields in
    Jsonx.Obj (("op", Jsonx.Str "lazy_flush") :: fields)
  | Lazy_close id -> Jsonx.Obj [ ("op", Jsonx.Str "lazy_close"); ("id", Jsonx.Str id) ]

let proto_error fmt = Printf.ksprintf (fun m -> Error (Diag.v Diag.Protocol_error m)) fmt

(* A present-but-mistyped field is a protocol error, not a silent
   default: clients should learn immediately, not get surprising plans. *)
let typed_field name accessor what v =
  match Jsonx.member name v with
  | None -> Ok None
  | Some field -> (
    match accessor field with
    | Some x -> Ok (Some x)
    | None -> proto_error "field %S must be a %s" name what)

let ( let* ) = Result.bind

let fuse_of_json v =
  let* app = typed_field "app" Jsonx.str "string" v in
  let* source = typed_field "source" Jsonx.str "string" v in
  let* strategy_name = typed_field "strategy" Jsonx.str "string" v in
  let* strategy =
    match strategy_name with
    | None -> Ok Driver.Mincut
    | Some s -> (
      match Driver.strategy_of_string s with
      | Some s -> Ok s
      | None -> proto_error "unknown strategy %S" s)
  in
  let* c_mshared = typed_field "c_mshared" Jsonx.num "number" v in
  let* gamma = typed_field "gamma" Jsonx.num "number" v in
  let* tg = typed_field "tg" Jsonx.num "number" v in
  let* optimize = typed_field "optimize" Jsonx.bool "boolean" v in
  let* inline = typed_field "inline" Jsonx.bool "boolean" v in
  let* strict = typed_field "strict" Jsonx.bool "boolean" v in
  let* budget_ms = typed_field "budget_ms" Jsonx.num "number" v in
  let* no_cache = typed_field "no_cache" Jsonx.bool "boolean" v in
  let* () =
    match (app, source) with
    | Some _, Some _ -> proto_error "pass either \"app\" or \"source\", not both"
    | None, None -> proto_error "fuse needs an \"app\" name or \"source\" text"
    | _ -> Ok ()
  in
  Ok
    {
      app;
      source;
      strategy;
      c_mshared;
      gamma;
      tg;
      optimize = Option.value ~default:false optimize;
      inline = Option.value ~default:false inline;
      strict = Option.value ~default:false strict;
      budget_ms;
      no_cache = Option.value ~default:false no_cache;
    }

(* JSON numbers are floats on the wire; extents and counts must be
   whole and positive to be meaningful. *)
let int_field name v =
  let* n = typed_field name Jsonx.num "number" v in
  match n with
  | None -> Ok None
  | Some f ->
    if Float.is_integer f && f >= 1.0 && f <= 1e9 then Ok (Some (int_of_float f))
    else proto_error "field %S must be a positive integer" name

let request_of_json v =
  match Jsonx.mem_str "op" v with
  | None -> proto_error "request must be an object with a string \"op\" field"
  | Some "stats" -> Ok Stats
  | Some "metrics" -> Ok Metrics
  | Some "ping" -> Ok Ping
  | Some "shutdown" -> Ok Shutdown
  | Some "fuse" ->
    let* f = fuse_of_json v in
    Ok (Fuse f)
  | Some "fuse_exec" ->
    let* fuse = fuse_of_json v in
    let* exec_mode_name = typed_field "exec_mode" Jsonx.str "string" v in
    let* exec_mode =
      match exec_mode_name with
      | None | Some "auto" -> Ok None
      | Some s -> (
        match Kfuse_exec.Native.mode_of_string s with
        | Some m -> Ok (Some m)
        | None -> proto_error "unknown exec_mode %S (auto, dlopen or subprocess)" s)
    in
    let* width = int_field "width" v in
    let* height = int_field "height" v in
    let* () =
      match (width, height) with
      | Some _, None | None, Some _ ->
        proto_error "pass \"width\" and \"height\" together"
      | _ -> Ok ()
    in
    let* seed = int_field "seed" v in
    let* repeat = int_field "repeat" v in
    let* verify = typed_field "verify" Jsonx.bool "boolean" v in
    let* return_pixels = typed_field "return_pixels" Jsonx.bool "boolean" v in
    Ok
      (Fuse_exec
         {
           fuse;
           exec_mode;
           width;
           height;
           seed = Option.value ~default:42 seed;
           repeat = Option.value ~default:1 repeat;
           verify = Option.value ~default:false verify;
           return_pixels = Option.value ~default:false return_pixels;
         })
  | Some "stream_open" ->
    let* fuse = fuse_of_json v in
    let* exec_mode_name = typed_field "exec_mode" Jsonx.str "string" v in
    let* exec_mode =
      match exec_mode_name with
      | None | Some "auto" -> Ok None
      | Some s -> (
        match Kfuse_exec.Native.mode_of_string s with
        | Some m -> Ok (Some m)
        | None -> proto_error "unknown exec_mode %S (auto, dlopen or subprocess)" s)
    in
    let* width = int_field "width" v in
    let* height = int_field "height" v in
    let* () =
      match (width, height) with
      | Some _, None | None, Some _ ->
        proto_error "pass \"width\" and \"height\" together"
      | _ -> Ok ()
    in
    let* seed = int_field "seed" v in
    Ok
      (Stream_open
         { fuse; exec_mode; width; height; seed = Option.value ~default:42 seed })
  | Some "stream_push" ->
    let* id = typed_field "id" Jsonx.str "string" v in
    let* id =
      match id with
      | Some id -> Ok id
      | None -> proto_error "stream_push needs a string \"id\" field"
    in
    let* verify = typed_field "verify" Jsonx.bool "boolean" v in
    let* return_pixels = typed_field "return_pixels" Jsonx.bool "boolean" v in
    Ok
      (Stream_push
         {
           id;
           verify = Option.value ~default:false verify;
           return_pixels = Option.value ~default:false return_pixels;
         })
  | Some "stream_close" -> (
    let* id = typed_field "id" Jsonx.str "string" v in
    match id with
    | Some id -> Ok (Stream_close id)
    | None -> proto_error "stream_close needs a string \"id\" field")
  | Some "lazy_open" ->
    let* app = typed_field "app" Jsonx.str "string" v in
    let* source = typed_field "source" Jsonx.str "string" v in
    let* width = int_field "width" v in
    let* height = int_field "height" v in
    let* channels = int_field "channels" v in
    let* inputs =
      match Jsonx.member "inputs" v with
      | None -> Ok []
      | Some field -> (
        match Jsonx.arr field with
        | None -> proto_error "field \"inputs\" must be an array of strings"
        | Some items ->
          List.fold_left
            (fun acc item ->
              let* acc = acc in
              match Jsonx.str item with
              | Some s -> Ok (s :: acc)
              | None -> proto_error "field \"inputs\" must be an array of strings")
            (Ok []) items
          |> Result.map List.rev)
    in
    let* c_mshared = typed_field "c_mshared" Jsonx.num "number" v in
    let* gamma = typed_field "gamma" Jsonx.num "number" v in
    let* tg = typed_field "tg" Jsonx.num "number" v in
    let* () =
      match (app, source) with
      | Some _, Some _ -> proto_error "pass either \"app\" or \"source\", not both"
      | None, None when width = None || height = None ->
        proto_error
          "lazy_open needs an \"app\"/\"source\" seed, or \"width\" and \"height\" for \
           an empty builder"
      | _ -> Ok ()
    in
    Ok (Lazy_open { app; source; width; height; channels; inputs; c_mshared; gamma; tg })
  | Some "lazy_edit" -> (
    let* id = typed_field "id" Jsonx.str "string" v in
    let* command = typed_field "command" Jsonx.str "string" v in
    match (id, command) with
    | Some id, Some command -> Ok (Lazy_edit { id; command })
    | _ -> proto_error "lazy_edit needs string \"id\" and \"command\" fields")
  | Some "lazy_flush" -> (
    let* id = typed_field "id" Jsonx.str "string" v in
    let* scratch = typed_field "scratch" Jsonx.bool "boolean" v in
    match id with
    | Some id -> Ok (Lazy_flush { id; scratch = Option.value ~default:false scratch })
    | None -> proto_error "lazy_flush needs a string \"id\" field")
  | Some "lazy_close" -> (
    let* id = typed_field "id" Jsonx.str "string" v in
    match id with
    | Some id -> Ok (Lazy_close id)
    | None -> proto_error "lazy_close needs a string \"id\" field")
  | Some op -> proto_error "unknown op %S" op

(* ---- responses ---- *)

let ok fields = Jsonx.Obj (("status", Jsonx.Str "ok") :: fields)

let error (d : Diag.t) =
  Jsonx.Obj
    [
      ("status", Jsonx.Str "error");
      ("code", Jsonx.Str (Diag.code_id d.Diag.code));
      ("severity", Jsonx.Str (Diag.severity_to_string d.Diag.severity));
      ("message", Jsonx.Str d.Diag.message);
    ]

let result v =
  match Jsonx.mem_str "status" v with
  | Some "ok" -> Ok v
  | Some "error" ->
    let message = Option.value ~default:"unspecified server error" (Jsonx.mem_str "message" v) in
    (* Fold the wire-level code back into the typed diagnostic, so a
       client can dispatch (e.g. retry [KF0803]) without string
       matching; an unknown code degrades to [Service_error]. *)
    let code =
      Option.value ~default:Diag.Service_error
        (Option.bind (Jsonx.mem_str "code" v) Diag.code_of_id)
    in
    Error (Diag.errorf code "%s" message)
  | _ -> proto_error "response lacks a valid \"status\" field"
