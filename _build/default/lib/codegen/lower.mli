(** Lowering from the kernel IR to CUDA C.

    The source-to-source half of the reproduction: like Hipacc's CUDA
    backend, each kernel becomes a [__global__] function over one thread
    per output pixel, with border handling lowered to index-remapping
    device helpers.  Fusion artifacts lower naturally: [Let] becomes a
    register declaration, [Shift] becomes shifted (and, with index
    exchange, border-remapped) coordinates around the inlined producer
    code.

    Shared-memory staging of windowed inputs is {e not} emitted — the
    generated kernels use direct global loads — so the text is a faithful
    rendering of kernel structure while staging remains a concern of the
    performance model (see DESIGN.md). *)

(** [kernel_func pipeline kernel] lowers one kernel to a [__global__]
    function named [<pipeline>_<kernel>]. *)
val kernel_func : Kfuse_ir.Pipeline.t -> Kfuse_ir.Kernel.t -> Cuda_ast.func

(** [emit_pipeline pipeline] renders a complete [.cu] translation unit:
    header comment, the device helpers actually needed (border-index
    remapping, float atomics), one [__global__] function per kernel, and
    a host-side runner that allocates intermediates and launches the
    kernels in topological order. *)
val emit_pipeline : Kfuse_ir.Pipeline.t -> string
