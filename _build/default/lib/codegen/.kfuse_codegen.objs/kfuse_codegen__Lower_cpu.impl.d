lib/codegen/lower_cpu.ml: Array Buffer Cuda_ast Emit Kfuse_ir List Lower_common Printf String
