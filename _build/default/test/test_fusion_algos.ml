(* Tests for the three fusion strategies (Algorithm 1 min-cut, basic [12],
   greedy) and the Driver, anchored on the paper's per-application
   outcomes (Sections III-B and V-C). *)

module F = Kfuse_fusion
module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Partition = Kfuse_graph.Partition
module Iset = Kfuse_util.Iset

let config = F.Config.default

let blocks_by_names (p : Pipeline.t) names =
  List.map
    (fun group ->
      Helpers.set_of (List.map (fun n -> Option.get (Pipeline.index_of p n)) group))
    names

let check_partition msg p expected actual =
  Alcotest.check Helpers.partition msg (blocks_by_names p expected) actual

(* ---- Figure 3: Harris under the min-cut algorithm ---- *)

let harris = Kfuse_apps.Harris.pipeline ()

let harris_expected =
  [ [ "dx" ]; [ "dy" ]; [ "sx"; "gx" ]; [ "sy"; "gy" ]; [ "sxy"; "gxy" ]; [ "hc" ] ]

let test_mincut_harris () =
  let r = F.Mincut_fusion.run config harris in
  check_partition "Figure 3 final partition" harris harris_expected r.F.Mincut_fusion.partition;
  (* beta = 328 + 328 + 256 = 912. *)
  Alcotest.check (Helpers.float_close ()) "objective" 912.0 r.F.Mincut_fusion.objective;
  (* The partition is a valid disjoint cover. *)
  Alcotest.(check bool) "valid" true
    (Partition.is_valid (Pipeline.dag harris) r.F.Mincut_fusion.partition)

let test_mincut_harris_first_cut () =
  (* The first iteration rejects the whole DAG on Eq. 2 and cuts along a
     2-epsilon min cut (Figure 3a). *)
  let r = F.Mincut_fusion.run config harris in
  match r.F.Mincut_fusion.steps with
  | F.Mincut_fusion.Cut { block; reason = Some (F.Legality.Resource _); cut_weight; _ } :: _
    ->
    Alcotest.(check int) "whole graph" 9 (Iset.cardinal block);
    Alcotest.check (Helpers.float_close ~eps:1e-12 ()) "2 epsilon"
      (2.0 *. config.F.Config.epsilon) cut_weight
  | _ -> Alcotest.fail "expected a resource-driven cut of the whole DAG first"

let test_mincut_trace_consistency () =
  (* Every cut splits a block into its two reported sides. *)
  let r = F.Mincut_fusion.run config harris in
  List.iter
    (function
      | F.Mincut_fusion.Accept _ -> ()
      | F.Mincut_fusion.Cut { block; side_a; side_b; _ } ->
        Alcotest.(check bool) "disjoint" true (Iset.is_empty (Iset.inter side_a side_b));
        Alcotest.check Helpers.iset "cover" block (Iset.union side_a side_b);
        Alcotest.(check bool) "both nonempty" true
          (not (Iset.is_empty side_a || Iset.is_empty side_b)))
    r.F.Mincut_fusion.steps

(* ---- Per-application outcomes (Section V-C) ---- *)

let sobel = Kfuse_apps.Sobel.pipeline ()
let unsharp = Kfuse_apps.Unsharp.pipeline ()
let enhance = Kfuse_apps.Enhance.pipeline ()
let night = Kfuse_apps.Night.pipeline ()

let test_mincut_sobel_fuses_all () =
  check_partition "sobel one block" sobel
    [ [ "dx"; "dy"; "mag" ] ]
    (F.Mincut_fusion.partition config sobel)

let test_mincut_unsharp_fuses_all () =
  check_partition "unsharp one block" unsharp
    [ [ "blur"; "highfreq"; "cubic"; "sharpened" ] ]
    (F.Mincut_fusion.partition config unsharp)

let test_mincut_enhance_fuses_all () =
  check_partition "enhance one block" enhance
    [ [ "geomean"; "gamma"; "stretch" ] ]
    (F.Mincut_fusion.partition config enhance)

let test_mincut_night_partial () =
  (* "The first two local kernels are not fused"; atrous1+scoto fuse. *)
  check_partition "night partition" night
    [ [ "atrous0" ]; [ "atrous1"; "scoto" ] ]
    (F.Mincut_fusion.partition config night)

let test_basic_rejects_sobel_and_unsharp () =
  check_partition "basic sobel all singletons" sobel
    [ [ "dx" ]; [ "dy" ]; [ "mag" ] ]
    (F.Basic_fusion.partition config sobel);
  check_partition "basic unsharp all singletons" unsharp
    [ [ "blur" ]; [ "highfreq" ]; [ "cubic" ]; [ "sharpened" ] ]
    (F.Basic_fusion.partition config unsharp)

let test_basic_harris_pairs () =
  (* Basic fusion detects the three point-to-local pairs (Section V-C). *)
  check_partition "basic harris" harris harris_expected
    (F.Basic_fusion.partition config harris)

let test_basic_enhance_and_night () =
  check_partition "basic enhance fuses chain" enhance
    [ [ "geomean"; "gamma"; "stretch" ] ]
    (F.Basic_fusion.partition config enhance);
  check_partition "basic night" night
    [ [ "atrous0" ]; [ "atrous1"; "scoto" ] ]
    (F.Basic_fusion.partition config night)

let test_greedy_misses_sobel () =
  (* Greedy pairwise merging cannot discover the Sobel fusion: both
     pairwise merges are illegal, only the whole-graph view is legal.
     This is the min-cut algorithm's advantage ("larger scope"). *)
  check_partition "greedy sobel stuck" sobel
    [ [ "dx" ]; [ "dy" ]; [ "mag" ] ]
    (F.Greedy_fusion.partition config sobel)

let test_greedy_matches_mincut_elsewhere () =
  List.iter
    (fun p ->
      Alcotest.check Helpers.partition
        ("greedy = mincut on " ^ p.Pipeline.name)
        (F.Mincut_fusion.partition config p)
        (F.Greedy_fusion.partition config p))
    [ harris; unsharp; enhance; night ]

(* ---- Driver ---- *)

let test_driver_baseline_identity () =
  let r = F.Driver.run config F.Driver.Baseline harris in
  Alcotest.(check int) "kernel count unchanged" 9 (F.Driver.fused_kernel_count r);
  Alcotest.check (Helpers.float_close ()) "objective zero" 0.0 r.F.Driver.objective

let test_driver_strategies () =
  List.iter
    (fun (s, expected_kernels) ->
      let r = F.Driver.run config s harris in
      Alcotest.(check int)
        (F.Driver.strategy_to_string s ^ " kernels")
        expected_kernels (F.Driver.fused_kernel_count r))
    [ (F.Driver.Baseline, 9); (F.Driver.Basic, 6); (F.Driver.Greedy, 6); (F.Driver.Mincut, 6) ]

let test_driver_objective_matches_partition () =
  let r = F.Driver.run config F.Driver.Mincut harris in
  Alcotest.check (Helpers.float_close ()) "beta" 912.0 r.F.Driver.objective

let test_strategy_strings () =
  List.iter
    (fun s ->
      Alcotest.(check (option string))
        "roundtrip"
        (Some (F.Driver.strategy_to_string s))
        (Option.map F.Driver.strategy_to_string
           (F.Driver.strategy_of_string (F.Driver.strategy_to_string s))))
    F.Driver.all_strategies;
  Alcotest.(check bool) "unknown" true (F.Driver.strategy_of_string "nope" = None)

(* ---- Threshold sensitivity (the c_Mshared ablation of DESIGN.md) ---- *)

let test_cmshared_sensitivity () =
  (* With a very tight threshold even point-to-local pairs are rejected
     (their gx tile still counts), leaving everything unfused... the
     pairs {sx,gx} keep ratio 1, so they survive even at 1.0. *)
  let tight = { config with F.Config.c_mshared = 1.0 } in
  check_partition "tight threshold keeps pairs" harris harris_expected
    (F.Mincut_fusion.partition tight harris);
  (* A loose threshold lets larger blocks through; every block must still
     be legal under it. *)
  let loose = { config with F.Config.c_mshared = 20.0 } in
  let r = F.Mincut_fusion.run loose harris in
  let edges = F.Benefit.all_edges loose harris in
  List.iter
    (fun b ->
      Alcotest.(check bool) "block legal" true
        (Iset.cardinal b = 1 || F.Mincut_fusion.block_legal loose harris edges b))
    r.F.Mincut_fusion.partition

let test_all_blocks_legal_invariant () =
  (* Algorithm 1 postcondition: every block in the result is legal or a
     singleton. *)
  List.iter
    (fun p ->
      let r = F.Mincut_fusion.run config p in
      List.iter
        (fun b ->
          Alcotest.(check bool)
            (Printf.sprintf "%s block legal" p.Pipeline.name)
            true
            (Iset.cardinal b = 1
            || F.Mincut_fusion.block_legal config p r.F.Mincut_fusion.edges b))
        r.F.Mincut_fusion.partition)
    [ harris; sobel; unsharp; enhance; night ]

let suite =
  [
    Alcotest.test_case "min-cut Harris partition (Fig 3)" `Quick test_mincut_harris;
    Alcotest.test_case "min-cut Harris first cut" `Quick test_mincut_harris_first_cut;
    Alcotest.test_case "min-cut trace consistency" `Quick test_mincut_trace_consistency;
    Alcotest.test_case "min-cut fuses Sobel fully" `Quick test_mincut_sobel_fuses_all;
    Alcotest.test_case "min-cut fuses Unsharp fully" `Quick test_mincut_unsharp_fuses_all;
    Alcotest.test_case "min-cut fuses Enhance fully" `Quick test_mincut_enhance_fuses_all;
    Alcotest.test_case "min-cut Night partial" `Quick test_mincut_night_partial;
    Alcotest.test_case "basic rejects Sobel/Unsharp" `Quick test_basic_rejects_sobel_and_unsharp;
    Alcotest.test_case "basic Harris pairs" `Quick test_basic_harris_pairs;
    Alcotest.test_case "basic Enhance/Night" `Quick test_basic_enhance_and_night;
    Alcotest.test_case "greedy misses Sobel" `Quick test_greedy_misses_sobel;
    Alcotest.test_case "greedy matches min-cut elsewhere" `Quick test_greedy_matches_mincut_elsewhere;
    Alcotest.test_case "driver baseline identity" `Quick test_driver_baseline_identity;
    Alcotest.test_case "driver strategy kernel counts" `Quick test_driver_strategies;
    Alcotest.test_case "driver objective" `Quick test_driver_objective_matches_partition;
    Alcotest.test_case "strategy string roundtrip" `Quick test_strategy_strings;
    Alcotest.test_case "c_Mshared sensitivity" `Quick test_cmshared_sensitivity;
    Alcotest.test_case "all result blocks legal" `Quick test_all_blocks_legal_invariant;
  ]
