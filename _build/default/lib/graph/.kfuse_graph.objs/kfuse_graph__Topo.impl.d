lib/graph/topo.ml: Digraph Kfuse_util List
