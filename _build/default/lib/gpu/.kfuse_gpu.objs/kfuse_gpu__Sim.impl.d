lib/gpu/sim.ml: Array Device Float Hashtbl Kfuse_ir Kfuse_util Perf_model
