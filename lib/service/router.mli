(** The [kfused] fleet front-end: one router process, [K] shard
    processes.

    Each shard is a full {!Server} on its own Unix socket
    ([<dir>/shard-<i>.sock]), sharing the content-addressed disk plan
    cache as a common L2.  The router speaks the same length-prefixed
    protocol as a single server — clients are unchanged — and maps each
    planning request to a {e home shard} by the leading bits of the
    pipeline's rename-invariant structural fingerprint, so repeated and
    renamed variants of one pipeline keep hitting one shard's warm
    in-memory plan cache.

    Robustness semantics:

    - {b Failover}: a connection-level failure against the home shard
      (refused, reset, vanished mid-request) walks to the next routable
      shard.  A rerouted reply is correct (shards are stateless over the
      shared disk cache) but annotated with a KF0807
      [Shard_degraded] warning under a ["router"] field.
    - {b Breaker}: the per-shard supervisor ({!Shard}) restarts crashed
      shards with exponential backoff; a restart storm marks the shard
      dead and its keyspace reroutes until a cooldown probe succeeds.
      When {e no} shard is routable the client gets a typed KF0808
      [Shard_unavailable] error — retryable, never a torn frame.
    - {b Single-flight}: concurrent identical cold-cache [fuse]
      requests (same plan key + strict/budget knobs) are coalesced into
      one upstream plan search; followers share the leader's reply
      byte-for-byte and count into [requests_coalesced].
    - {b Streams}: stream ids are prefixed with their shard
      ([s<i>-<id>]) and pinned — temporal state lives in one process,
      so a dead shard means "reopen the stream", not silent rebinding.
    - {b Drain}: {!stop} (or {!signal_stop} from a signal handler)
      stops accepting, drains router workers, halts the monitor (so it
      stops respawning), then SIGTERMs the fleet in parallel with a
      SIGKILL escalation, and finally sweeps the socket files. *)

module Diag := Kfuse_util.Diag

type t

val start :
  socket:string ->
  dir:string ->
  count:int ->
  shard_argv:(index:int -> socket:string -> string list) ->
  ?shard_config:Shard.config ->
  ?health_interval_ms:float ->
  ?health_timeout_ms:float ->
  ?forward_timeout_ms:float ->
  ?max_conns:int ->
  ?queue:int ->
  ?request_timeout_ms:float ->
  ?drain_timeout_ms:float ->
  ?shard_grace_ms:float ->
  unit ->
  (t, Diag.t) result
(** [start ~socket ~dir ~count ~shard_argv ()] claims [socket] and every
    shard socket under [dir] (stale files are reclaimed, live listeners
    are a typed refusal), spawns the [count] shards with
    [shard_argv ~index ~socket], and starts the accept loop, worker
    pool, and health monitor.  [forward_timeout_ms] (default: the
    request timeout) bounds each router→shard call;
    [health_interval_ms]/[health_timeout_ms] pace the monitor's pings;
    [shard_grace_ms] is the per-shard SIGTERM grace during drain. *)

val wait : t -> unit
(** Block until a stop is requested ({!stop}, {!signal_stop}, or a
    [shutdown] request), then run the full drain sequence. *)

val stop : t -> unit
(** Request a stop and {!wait} for the drain to finish. *)

val signal_stop : t -> unit
(** Async-signal-safe stop request (an atomic flag — safe from a signal
    handler); {!wait} observes it. *)

val await_ready : ?timeout_ms:float -> t -> bool
(** [await_ready t] polls until every shard has answered a ping
    ([true]) or [timeout_ms] (default 10s) passes ([false] — the fleet
    may still be partially up). *)

val socket : t -> string
val metrics : t -> Metrics.t
val in_flight : t -> int
(** Connections currently queued or being served by the router. *)

val shards : t -> Shard.t array
(** Live view of the fleet's supervision slots (for tests and stats). *)
