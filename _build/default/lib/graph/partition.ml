module Iset = Kfuse_util.Iset

type t = Iset.t list

let normalize p =
  p
  |> List.filter (fun b -> not (Iset.is_empty b))
  |> List.sort (fun a b -> compare (Iset.min_elt a) (Iset.min_elt b))

let singletons g =
  Digraph.fold_vertices (fun v acc -> Iset.singleton v :: acc) g [] |> normalize

let is_valid g p =
  let no_empty = List.for_all (fun b -> not (Iset.is_empty b)) p in
  let union = List.fold_left Iset.union Iset.empty p in
  let total = List.fold_left (fun acc b -> acc + Iset.cardinal b) 0 p in
  no_empty && Iset.equal union (Digraph.vertices g) && total = Iset.cardinal union

let block_of p v =
  match List.find_opt (fun b -> Iset.mem v b) p with
  | Some b -> b
  | None -> raise Not_found

let block_weight weight g block =
  Digraph.fold_edges
    (fun u v acc ->
      if Iset.mem u block && Iset.mem v block then acc +. weight u v else acc)
    g 0.0

let objective weight g p =
  List.fold_left (fun acc b -> acc +. block_weight weight g b) 0.0 p

let crossing_weight weight g p =
  Digraph.fold_edges
    (fun u v acc ->
      let same =
        List.exists (fun b -> Iset.mem u b && Iset.mem v b) p
      in
      if same then acc else acc +. weight u v)
    g 0.0

let equal p q =
  let p = normalize p and q = normalize q in
  List.length p = List.length q && List.for_all2 Iset.equal p q

let pp ppf p =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") Iset.pp)
    (normalize p)
