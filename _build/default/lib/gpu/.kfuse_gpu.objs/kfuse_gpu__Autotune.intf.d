lib/gpu/autotune.mli: Device Kfuse_ir Perf_model
