(** Benefit estimation: edge weights for the fusion graph (Section II-C).

    Each DAG edge [(ks, kd)] receives a positive weight [w_e] estimating
    the execution cycles saved by fusing its endpoints, according to the
    scenario taxonomy of Section II-C.3:

    - {e Illegal}: the pair cannot be fused; weight [epsilon].
    - {e Point-based} (Eq. 5): [kd] is a point kernel; the intermediate
      image moves to registers, [w = delta_reg(ie)].
    - {e Point-to-local} (Eq. 8): [ks] point, [kd] local; register
      locality is bought with redundant recomputation,
      [w = delta_reg(ie) - phi] with [phi = cost_op * IS_ks * sz(kd)]
      (Eq. 7).
    - {e Local-to-local} (Eq. 11): both local; the intermediate moves to
      shared memory and the producer is recomputed over the grown mask
      [g(sz(ks), sz(kd))] (Eq. 9), [w = delta_shared(ie) - phi] (Eq. 10).

    Finally [w_e = max(w + gamma, epsilon)] (Eq. 12). *)

type scenario =
  | Illegal of Legality.reason
  | Point_based
  | Point_to_local
  | Local_to_local

(** Full account of one edge's weight computation. *)
type edge_report = {
  src : int;
  dst : int;
  image : string;  (** the intermediate image [ie] *)
  scenario : scenario;
  delta : float;  (** locality improvement (Eq. 3 or 4); 0 when illegal *)
  phi : float;  (** redundant-computation cost (Eq. 7 or 10); 0 unless needed *)
  weight : float;  (** final clamped weight [w_e] (Eq. 12) *)
}

(** [delta_reg config is] is Eq. 4: [IS * tg]. *)
val delta_reg : Config.t -> float -> float

(** [delta_shared config is] is Eq. 3: [IS * tg / ts]. *)
val delta_shared : Config.t -> float -> float

(** [grown_mask_area ~sz_src ~sz_dst] is Eq. 9: the convolution-mask area
    of fusing a local producer of mask area [sz_src] into a local
    consumer of mask area [sz_dst] (both square odd areas, e.g. 9, 25).
    [g(9, 25) = 49]. *)
val grown_mask_area : sz_src:int -> sz_dst:int -> int

(** [scenario config pipeline u v] classifies the edge [(u, v)].
    @raise Invalid_argument if [(u, v)] is not a pipeline edge. *)
val scenario : Config.t -> Kfuse_ir.Pipeline.t -> int -> int -> scenario

(** [edge_report config pipeline u v] computes the weight of edge
    [(u, v)] with its full breakdown. *)
val edge_report : Config.t -> Kfuse_ir.Pipeline.t -> int -> int -> edge_report

(** [edge_weight config pipeline u v] is the final weight [w_e]. *)
val edge_weight : Config.t -> Kfuse_ir.Pipeline.t -> int -> int -> float

(** [all_edges ?pool config pipeline] reports every edge of the pipeline
    DAG, ordered by [(src, dst)].  Edge weights are independent, so with
    [pool] they are scored in parallel; the result is identical to the
    serial run. *)
val all_edges :
  ?pool:Kfuse_util.Pool.t -> Config.t -> Kfuse_ir.Pipeline.t -> edge_report list

(** [is_ks config pipeline u] is [IS_ks]: the summed iteration-space size
    of all input images of kernel [u] (Section II-C.3). *)
val is_ks : Config.t -> Kfuse_ir.Pipeline.t -> int -> float

val scenario_to_string : scenario -> string
val pp_report : Format.formatter -> edge_report -> unit
