lib/apps/harris.ml: Kfuse_image Kfuse_ir
