(** Client side of the [kfused] wire protocol.

    Thin, synchronous, one connection per {!with_connection}: connect to
    the Unix-domain socket, exchange length-prefixed JSON frames, fold
    server-side [{"status":"error"}] responses back into typed
    {!Kfuse_util.Diag.t} (the wire ["code"] is preserved, so a [KF0803]
    shed is distinguishable from a hard failure).  {!call} layers a
    deterministic retry policy on top.  This is what [kfusec query] and
    the end-to-end tests are built on. *)

module Diag := Kfuse_util.Diag

type t

(** [with_connection ~socket ?timeout_ms f] connects, runs [f], and
    always closes the connection.  With [timeout_ms], the connect is
    bounded (a full server backlog cannot block the caller forever) and
    [SO_RCVTIMEO]/[SO_SNDTIMEO] bound every subsequent read and write;
    an elapsed timeout surfaces as {!Kfuse_util.Diag.Request_timeout}
    ([KF0804]).  Connection failures (no such socket, nobody listening)
    are {!Kfuse_util.Diag.Service_error}. *)
val with_connection :
  socket:string -> ?timeout_ms:float -> (t -> ('a, Diag.t) result) -> ('a, Diag.t) result

(** [request t req] sends one request and waits for its response.
    [Error] covers transport failures, protocol violations, timeouts,
    and server [{"status":"error"}] replies alike.  A send that fails
    because the server already closed (e.g. after writing a [KF0803]
    shed notice) still drains the pending reply, so the typed error is
    preferred over the raw pipe error. *)
val request : t -> Protocol.request -> (Jsonx.t, Diag.t) result

(** {1 Retrying}

    Overload ([KF0803]) and timeouts ([KF0804]) are transient: the
    right client response is a backed-off retry.  So are {e connection
    transients} — the signature a supervised shard restart leaves on
    its clients: [ECONNREFUSED]/[ECONNRESET]/[ENOENT] on connect, a send
    to a vanished peer without a typed reply, a reset or cleanly closed
    connection before any reply arrived.  {!call} retries those for
    idempotent requests with the same jittered backoff, reconnecting on
    every attempt, so a restart is invisible instead of surfacing a raw
    [Unix_error].  Everything else — typed server errors, bad requests,
    server faults — is not retried. *)

type retry = {
  attempts : int;  (** max retries after the first try; 0 = never retry *)
  backoff_ms : float;  (** first backoff step; doubles per retry *)
  max_backoff_ms : float;  (** cap on the backoff step *)
  seed : int;  (** seeds the deterministic jitter *)
}

(** 3 retries, 50 ms doubling to a 2 s cap, seed 0. *)
val default_retry : retry

(** [call ~socket ?timeout_ms ?retry req] is one connection per attempt:
    connect, send [req], await the reply.  Attempts failing with
    [KF0803]/[KF0804]/[KF0808] or a connection transient (see above) are
    retried
    (idempotent requests only — everything but [Shutdown] and
    [Stream_push]) with exponential backoff and deterministic seeded
    jitter in [0.5, 1.0) of the step; the last error is returned when
    the budget is exhausted. *)
val call :
  socket:string ->
  ?timeout_ms:float ->
  ?retry:retry ->
  Protocol.request ->
  (Jsonx.t, Diag.t) result

(** [call_once ~socket ?timeout_ms req] is a single classified attempt
    of {!call}: connect, send, await, no retries.  The boolean is the
    connection-transient flag — [true] exactly when the failure is the
    no-typed-verdict restart signature described above.  The sharded
    router forwards with this: a transient means "try the next shard",
    while a typed error is the shard's own verdict and is relayed. *)
val call_once :
  socket:string ->
  ?timeout_ms:float ->
  Protocol.request ->
  (Jsonx.t, Diag.t) result * bool

(** Convenience wrappers over {!request}. *)

val fuse : t -> Protocol.fuse_request -> (Jsonx.t, Diag.t) result

(** [fuse_exec t e] plans, compiles and natively executes in one round
    trip; see {!Protocol.fuse_exec_request}. *)
val fuse_exec : t -> Protocol.fuse_exec_request -> (Jsonx.t, Diag.t) result

(** {2 Streaming}

    One connection can interleave stream ops freely; sessions live in
    the server, keyed by the ["id"] from {!stream_open}'s reply. *)

val stream_open : t -> Protocol.stream_open_request -> (Jsonx.t, Diag.t) result
val stream_push : t -> Protocol.stream_push_request -> (Jsonx.t, Diag.t) result
val stream_close : t -> string -> (Jsonx.t, Diag.t) result

(** [stream_push_retry ?retry t s] retries a push {e only} on explicit
    sheds — [KF0803] (too many streams) and [KF0805] (frame queue full)
    — which the server guarantees were rejected {e before} touching the
    stream's temporal state, so the retry is verbatim-safe.  A [KF0804]
    timeout is {e not} retried (and {!call} treats [Stream_push] as
    non-idempotent for the same reason): a timed-out push may have been
    processed, and retrying it would double-advance the stream. *)
val stream_push_retry :
  ?retry:retry -> t -> Protocol.stream_push_request -> (Jsonx.t, Diag.t) result

val stats : t -> (Jsonx.t, Diag.t) result

(** [metrics t] is the server's Prometheus-style text exposition. *)
val metrics : t -> (string, Diag.t) result

val ping : t -> (unit, Diag.t) result

(** [shutdown t] asks the server to stop accepting and exit its serve
    loop once in-flight connections drain. *)
val shutdown : t -> (unit, Diag.t) result
