let at ~border mask img x y =
  Mask.fold
    (fun acc dx dy coeff ->
      acc +. (coeff *. Image.get_bordered img border (x + dx) (y + dy)))
    0.0 mask

let apply ~border mask img =
  Image.init ~width:(Image.width img) ~height:(Image.height img) (fun x y ->
      at ~border mask img x y)

let apply_interior mask img =
  let width = Image.width img and height = Image.height img in
  let radius = Mask.radius mask in
  Image.init ~width ~height (fun x y ->
      match Region.classify ~width ~height ~radius x y with
      | Region.Interior -> at ~border:Border.Undefined mask img x y
      | Region.Halo | Region.Exterior -> 0.0)
