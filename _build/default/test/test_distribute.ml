(* Tests for convolution recognition and separable kernel distribution. *)

module F = Kfuse_fusion
module Conv_match = Kfuse_ir.Conv_match
module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Eval = Kfuse_ir.Eval
module Image = Kfuse_image.Image
module Mask = Kfuse_image.Mask
module Border = Kfuse_image.Border

(* ---- Conv_match ---- *)

let test_extract_conv_builder () =
  let e = Expr.conv ~border:Border.Mirror Mask.gaussian_3x3 "img" in
  match Conv_match.extract e with
  | Some s ->
    Alcotest.(check string) "image" "img" s.Conv_match.image;
    Alcotest.(check bool) "border" true (Border.equal Border.Mirror s.Conv_match.border);
    Alcotest.(check int) "nine taps" 9 (Conv_match.tap_count s);
    Alcotest.check (Helpers.float_close ()) "center coeff" 0.25
      (List.assoc (0, 0) s.Conv_match.taps)
  | None -> Alcotest.fail "gaussian conv not recognized"

let test_extract_rejects_nonlinear () =
  let open Expr in
  List.iter
    (fun (name, e) ->
      Alcotest.(check bool) name true (Conv_match.extract e = None))
    [
      ("square", input "a" * input "a");
      ("sqrt", sqrt (input "a"));
      ("two images", input "a" + input "b");
      ("param coeff", param "k" * input "a");
      ("mixed borders", input ~border:Border.Clamp "a" + input ~border:Border.Mirror ~dx:1 "a");
    ]

let test_extract_accumulates_duplicates () =
  let open Expr in
  let e = input "a" + ((Const 2.0 * input "a") + input ~dx:1 "a") in
  match Conv_match.extract e with
  | Some s ->
    Alcotest.check (Helpers.float_close ()) "merged center" 3.0
      (List.assoc (0, 0) s.Conv_match.taps)
  | None -> Alcotest.fail "not recognized"

let separate_mask mask =
  match Conv_match.extract (Expr.conv mask "a") with
  | Some s -> Conv_match.separate s
  | None -> Alcotest.fail "mask conv not recognized"

let test_separable_masks () =
  (* Binomial Gaussians and Sobel masks are rank 1. *)
  List.iter
    (fun (name, mask) ->
      match separate_mask mask with
      | Some f ->
        Alcotest.(check bool)
          (name ^ " factor sizes") true
          (List.length f.Conv_match.horizontal >= 2
          && List.length f.Conv_match.vertical >= 2)
      | None -> Alcotest.failf "%s should be separable" name)
    [
      ("gauss3", Mask.gaussian_3x3);
      ("gauss5", Mask.gaussian_5x5);
      ("sobel_x", Mask.sobel_x);
      ("sobel_y", Mask.sobel_y);
      ("mean3", Mask.mean 3);
    ]

let test_non_separable_mask () =
  let laplacian =
    Mask.of_rows [ [ 0.; 1.; 0. ]; [ 1.; -4.; 1. ]; [ 0.; 1.; 0. ] ]
  in
  Alcotest.(check bool) "laplacian rank 2" true (separate_mask laplacian = None)

let test_factorization_reconstructs () =
  match
    (Conv_match.extract (Expr.conv Mask.gaussian_5x5 "a"), separate_mask Mask.gaussian_5x5)
  with
  | Some s, Some f ->
    List.iter
      (fun ((dx, dy), c) ->
        let h = try List.assoc dx f.Conv_match.horizontal with Not_found -> 0.0 in
        let v = try List.assoc dy f.Conv_match.vertical with Not_found -> 0.0 in
        Alcotest.check (Helpers.float_close ~eps:1e-12 ())
          (Printf.sprintf "tap (%d,%d)" dx dy)
          c (h *. v))
      s.Conv_match.taps
  | _ -> Alcotest.fail "setup failed"

(* ---- Distribute ---- *)

let conv_pipeline ?(border = Border.Clamp) mask =
  Pipeline.create ~name:"cp" ~width:13 ~height:11 ~inputs:[ "in" ]
    [
      Kernel.map ~name:"blur" ~inputs:[ "in" ] (Expr.conv ~border mask "in");
      Kernel.map ~name:"post" ~inputs:[ "blur" ] Expr.(input "blur" * Const 2.0);
    ]

let test_judge () =
  let p = conv_pipeline Mask.gaussian_5x5 in
  (match F.Distribute.judge p "blur" with
  | F.Distribute.Split _ -> ()
  | v -> Alcotest.failf "expected Split, got %s" (F.Distribute.verdict_to_string v));
  (* A scaling point kernel IS a (single-tap) weighted sum — so it's
     reported as one-dimensional, not as a non-convolution. *)
  (match F.Distribute.judge p "post" with
  | F.Distribute.Not_two_dimensional -> ()
  | v ->
    Alcotest.failf "expected Not_two_dimensional, got %s" (F.Distribute.verdict_to_string v));
  let pn =
    Pipeline.create ~name:"nl" ~width:8 ~height:8 ~inputs:[ "in" ]
      [ Kernel.map ~name:"sq" ~inputs:[ "in" ] Expr.(sqrt (input "in")) ]
  in
  (match F.Distribute.judge pn "sq" with
  | F.Distribute.Not_convolution -> ()
  | v -> Alcotest.failf "expected Not_convolution, got %s" (F.Distribute.verdict_to_string v));
  let pc = conv_pipeline ~border:(Border.Constant 0.5) Mask.gaussian_5x5 in
  match F.Distribute.judge pc "blur" with
  | F.Distribute.Unsupported_border -> ()
  | v -> Alcotest.failf "expected Unsupported_border, got %s" (F.Distribute.verdict_to_string v)

let rng = Kfuse_util.Rng.create 2077

let check_split_exact ?border mask =
  let p = conv_pipeline ?border mask in
  let p' = F.Distribute.split p "blur" in
  Alcotest.(check int) "one extra kernel" 3 (Pipeline.num_kernels p');
  Alcotest.(check bool) "intermediate exists" true
    (Option.is_some (Pipeline.index_of p' "blur_sepH"));
  let img = Image.random rng ~width:13 ~height:11 ~lo:0.0 ~hi:1.0 in
  let env = Eval.env_of_list [ ("in", img) ] in
  let a = List.assoc "post" (Eval.run_outputs p env) in
  let b = List.assoc "post" (Eval.run_outputs p' env) in
  Alcotest.(check bool)
    (Printf.sprintf "exact incl. borders (maxdiff %g)" (Image.max_abs_diff a b))
    true
    (Image.max_abs_diff a b < 1e-12)

let test_split_exact_all_modes () =
  List.iter
    (fun border ->
      check_split_exact ~border Mask.gaussian_3x3;
      check_split_exact ~border Mask.gaussian_5x5;
      check_split_exact ~border Mask.sobel_x)
    [ Border.Clamp; Border.Mirror; Border.Repeat ]

let test_split_then_fuse () =
  (* Distribution and fusion compose: split gauss5, then Algorithm 1
     decides the final grouping; semantics stay exact. *)
  let p = conv_pipeline Mask.gaussian_5x5 in
  let p', applied = F.Distribute.split_all p in
  Alcotest.(check (list string)) "blur split" [ "blur" ] applied;
  let r = F.Driver.run F.Config.default F.Driver.Mincut p' in
  let img = Image.random rng ~width:13 ~height:11 ~lo:0.0 ~hi:1.0 in
  let env = Eval.env_of_list [ ("in", img) ] in
  let a = List.assoc "post" (Eval.run_outputs p env) in
  let b = List.assoc "post" (Eval.run_outputs r.F.Driver.fused env) in
  Alcotest.(check bool) "exact" true (Image.max_abs_diff a b < 1e-12)

let test_split_reduces_taps () =
  let p = conv_pipeline Mask.gaussian_5x5 in
  let p' = F.Distribute.split p "blur" in
  let taps name pl =
    let k = Pipeline.kernel pl (Option.get (Pipeline.index_of pl name)) in
    List.length (Expr.accesses (Kernel.body k))
  in
  Alcotest.(check int) "2-D taps" 25 (taps "blur" p);
  Alcotest.(check int) "1-D horizontal" 5 (taps "blur_sepH" p');
  Alcotest.(check int) "1-D vertical" 5 (taps "blur" p')

let test_split_invalid () =
  let p = conv_pipeline Mask.gaussian_5x5 in
  Helpers.expect_invalid "unknown kernel" (fun () -> F.Distribute.split p "ghost");
  Helpers.expect_invalid "not a conv" (fun () -> F.Distribute.split p "post")

let suite =
  [
    Alcotest.test_case "extract conv builder" `Quick test_extract_conv_builder;
    Alcotest.test_case "extract rejects nonlinear" `Quick test_extract_rejects_nonlinear;
    Alcotest.test_case "extract accumulates duplicates" `Quick test_extract_accumulates_duplicates;
    Alcotest.test_case "separable masks" `Quick test_separable_masks;
    Alcotest.test_case "non-separable mask" `Quick test_non_separable_mask;
    Alcotest.test_case "factorization reconstructs" `Quick test_factorization_reconstructs;
    Alcotest.test_case "judge verdicts" `Quick test_judge;
    Alcotest.test_case "split exact in all modes" `Quick test_split_exact_all_modes;
    Alcotest.test_case "split then fuse" `Quick test_split_then_fuse;
    Alcotest.test_case "split reduces taps" `Quick test_split_reduces_taps;
    Alcotest.test_case "split invalid requests" `Quick test_split_invalid;
  ]
