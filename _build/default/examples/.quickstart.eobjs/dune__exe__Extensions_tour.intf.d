examples/extensions_tour.mli:
