lib/core/greedy_fusion.ml: Benefit Float Kfuse_graph Kfuse_ir Kfuse_util List Mincut_fusion
