module Border = Kfuse_image.Border
module Mask = Kfuse_image.Mask

type unop = Neg | Abs | Sqrt | Exp | Log | Sin | Cos | Floor
type binop = Add | Sub | Mul | Div | Min | Max | Pow
type cmp = Lt | Le | Eq

type t =
  | Const of float
  | Param of string
  | Input of { image : string; dx : int; dy : int; border : Border.mode }
  | Var of string
  | Let of { var : string; value : t; body : t }
  | Unop of unop * t
  | Binop of binop * t * t
  | Select of { cmp : cmp; lhs : t; rhs : t; if_true : t; if_false : t }
  | Shift of { dx : int; dy : int; exchange : Border.mode option; body : t }

let const c = Const c
let param p = Param p

let input ?(border = Border.Clamp) ?(dx = 0) ?(dy = 0) image =
  Input { image; dx; dy; border }

let ( + ) a b = Binop (Add, a, b)
let ( - ) a b = Binop (Sub, a, b)
let ( * ) a b = Binop (Mul, a, b)
let ( / ) a b = Binop (Div, a, b)
let neg a = Unop (Neg, a)
let abs a = Unop (Abs, a)
let sqrt a = Unop (Sqrt, a)
let exp a = Unop (Exp, a)
let log a = Unop (Log, a)
let sin a = Unop (Sin, a)
let cos a = Unop (Cos, a)
let floor a = Unop (Floor, a)
let min a b = Binop (Min, a, b)
let max a b = Binop (Max, a, b)
let pow a b = Binop (Pow, a, b)
let select cmp lhs rhs if_true if_false = Select { cmp; lhs; rhs; if_true; if_false }
let var v = Var v
let let_ var value body = Let { var; value; body }
let clamp01 e = max (Const 0.0) (min (Const 1.0) e)

let conv ?(border = Border.Clamp) mask image =
  let terms =
    Mask.fold
      (fun acc dx dy coeff ->
        if Float.equal coeff 0.0 then acc
        else begin
          let access = input ~border ~dx ~dy image in
          let term = if Float.equal coeff 1.0 then access else Const coeff * access in
          term :: acc
        end)
      [] mask
  in
  match List.rev terms with
  | [] -> Const 0.0
  | first :: rest -> List.fold_left ( + ) first rest

let rec fold_nodes f acc e =
  let acc = f acc e in
  match e with
  | Const _ | Param _ | Input _ | Var _ -> acc
  | Let { value; body; _ } -> fold_nodes f (fold_nodes f acc value) body
  | Unop (_, a) -> fold_nodes f acc a
  | Binop (_, a, b) -> fold_nodes f (fold_nodes f acc a) b
  | Select { lhs; rhs; if_true; if_false; _ } ->
    List.fold_left (fold_nodes f) acc [ lhs; rhs; if_true; if_false ]
  | Shift { body; _ } -> fold_nodes f acc body

(* Walk with the accumulated shift offset, so reported offsets are total
   (position-relative) offsets even under nested Shift nodes. *)
let rec fold_accesses f (sx, sy) acc e =
  match e with
  | Const _ | Param _ | Var _ -> acc
  | Input { image; dx; dy; _ } -> f acc image Stdlib.(sx + dx) Stdlib.(sy + dy)
  | Let { value; body; _ } ->
    fold_accesses f (sx, sy) (fold_accesses f (sx, sy) acc value) body
  | Unop (_, a) -> fold_accesses f (sx, sy) acc a
  | Binop (_, a, b) -> fold_accesses f (sx, sy) (fold_accesses f (sx, sy) acc a) b
  | Select { lhs; rhs; if_true; if_false; _ } ->
    List.fold_left (fold_accesses f (sx, sy)) acc [ lhs; rhs; if_true; if_false ]
  | Shift { dx; dy; body; _ } -> fold_accesses f Stdlib.(sx + dx, sy + dy) acc body

let accesses e =
  fold_accesses (fun acc image dx dy -> (image, dx, dy) :: acc) (0, 0) [] e
  |> List.rev

let images e =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun (img, _, _) ->
      if Hashtbl.mem seen img then None
      else begin
        Hashtbl.add seen img ();
        Some img
      end)
    (accesses e)

let radius e =
  List.fold_left
    (fun acc (_, dx, dy) -> Stdlib.max acc (Stdlib.max (Stdlib.abs dx) (Stdlib.abs dy)))
    0 (accesses e)

let radius_of_image e img =
  let hits = List.filter (fun (i, _, _) -> String.equal i img) (accesses e) in
  match hits with
  | [] -> None
  | _ ->
    Some
      (List.fold_left
         (fun acc (_, dx, dy) ->
           Stdlib.max acc (Stdlib.max (Stdlib.abs dx) (Stdlib.abs dy)))
         0 hits)

let rec subst_inputs f e =
  match e with
  | Const _ | Param _ | Var _ -> e
  | Input { image; dx; dy; border } -> f ~image ~dx ~dy ~border
  | Let { var; value; body } ->
    Let { var; value = subst_inputs f value; body = subst_inputs f body }
  | Unop (op, a) -> Unop (op, subst_inputs f a)
  | Binop (op, a, b) -> Binop (op, subst_inputs f a, subst_inputs f b)
  | Select { cmp; lhs; rhs; if_true; if_false } ->
    Select
      {
        cmp;
        lhs = subst_inputs f lhs;
        rhs = subst_inputs f rhs;
        if_true = subst_inputs f if_true;
        if_false = subst_inputs f if_false;
      }
  | Shift { dx; dy; exchange; body } -> Shift { dx; dy; exchange; body = subst_inputs f body }

let rename_images f e =
  subst_inputs (fun ~image ~dx ~dy ~border -> Input { image = f image; dx; dy; border }) e

let params e =
  let seen = Hashtbl.create 8 in
  fold_nodes
    (fun acc node ->
      match node with
      | Param p when not (Hashtbl.mem seen p) ->
        Hashtbl.add seen p ();
        p :: acc
      | _ -> acc)
    [] e
  |> List.rev

let size e = fold_nodes (fun n _ -> Stdlib.( + ) n 1) 0 e

let free_vars e =
  (* Walk with the set of bound names in scope; report first occurrences
     of unbound variables in syntactic order. *)
  let seen = Hashtbl.create 8 in
  let rec go bound acc e =
    match e with
    | Const _ | Param _ | Input _ -> acc
    | Var v ->
      if List.mem v bound || Hashtbl.mem seen v then acc
      else begin
        Hashtbl.add seen v ();
        v :: acc
      end
    | Let { var; value; body } -> go (var :: bound) (go bound acc value) body
    | Unop (_, a) -> go bound acc a
    | Binop (_, a, b) -> go bound (go bound acc a) b
    | Select { lhs; rhs; if_true; if_false; _ } ->
      List.fold_left (go bound) acc [ lhs; rhs; if_true; if_false ]
    | Shift { body; _ } -> go bound acc body
  in
  List.rev (go [] [] e)

let rec equal a b =
  match (a, b) with
  | Const x, Const y -> Float.equal x y
  | Param x, Param y -> String.equal x y
  | Input x, Input y ->
    String.equal x.image y.image && x.dx = y.dx && x.dy = y.dy
    && Border.equal x.border y.border
  | Var x, Var y -> String.equal x y
  | Let x, Let y ->
    String.equal x.var y.var && equal x.value y.value && equal x.body y.body
  | Unop (op1, a1), Unop (op2, a2) -> op1 = op2 && equal a1 a2
  | Binop (op1, a1, b1), Binop (op2, a2, b2) -> op1 = op2 && equal a1 a2 && equal b1 b2
  | Select x, Select y ->
    x.cmp = y.cmp && equal x.lhs y.lhs && equal x.rhs y.rhs
    && equal x.if_true y.if_true && equal x.if_false y.if_false
  | Shift x, Shift y ->
    x.dx = y.dx && x.dy = y.dy
    && Option.equal Border.equal x.exchange y.exchange
    && equal x.body y.body
  | (Const _ | Param _ | Input _ | Var _ | Let _ | Unop _ | Binop _ | Select _ | Shift _), _
    -> false

let unop_name = function
  | Neg -> "neg"
  | Abs -> "abs"
  | Sqrt -> "sqrt"
  | Exp -> "exp"
  | Log -> "log"
  | Sin -> "sin"
  | Cos -> "cos"
  | Floor -> "floor"

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Min -> "min"
  | Max -> "max"
  | Pow -> "pow"

let cmp_name = function Lt -> "<" | Le -> "<=" | Eq -> "=="

let rec pp ppf e =
  match e with
  | Const c -> Format.fprintf ppf "%g" c
  | Param p -> Format.fprintf ppf "$%s" p
  | Input { image; dx; dy; border } ->
    if dx = 0 && dy = 0 then Format.fprintf ppf "%s" image
    else Format.fprintf ppf "%s@@(%d,%d)[%a]" image dx dy Border.pp border
  | Var v -> Format.fprintf ppf "%%%s" v
  | Let { var; value; body } ->
    Format.fprintf ppf "(let %%%s = %a in %a)" var pp value pp body
  | Unop (op, a) -> Format.fprintf ppf "%s(%a)" (unop_name op) pp a
  | Binop ((Min | Max | Pow) as op, a, b) ->
    Format.fprintf ppf "%s(%a, %a)" (binop_name op) pp a pp b
  | Binop (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp a (binop_name op) pp b
  | Select { cmp; lhs; rhs; if_true; if_false } ->
    Format.fprintf ppf "(%a %s %a ? %a : %a)" pp lhs (cmp_name cmp) pp rhs pp
      if_true pp if_false
  | Shift { dx; dy; exchange; body } ->
    let ex =
      match exchange with
      | None -> ""
      | Some mode -> Printf.sprintf "!%s" (Border.to_string mode)
    in
    Format.fprintf ppf "shift(%d,%d)%s{%a}" dx dy ex pp body
