(* Tests for Kfuse_ir: Expr, Kernel, Pipeline, Cost, Eval. *)

module Border = Kfuse_image.Border
module Image = Kfuse_image.Image
module Mask = Kfuse_image.Mask
module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Cost = Kfuse_ir.Cost
module Eval = Kfuse_ir.Eval
module Iset = Kfuse_util.Iset

(* ---- Expr ---- *)

let test_expr_accesses () =
  let open Expr in
  let e = input ~dx:1 ~dy:(-1) "a" + (input "b" * input ~dx:2 "a") in
  Alcotest.(check (list (triple string int int)))
    "accesses in order"
    [ ("a", 1, -1); ("b", 0, 0); ("a", 2, 0) ]
    (accesses e);
  Alcotest.(check (list string)) "images dedup" [ "a"; "b" ] (images e);
  Alcotest.(check int) "radius" 2 (radius e);
  Alcotest.(check (option int)) "radius of b" (Some 0) (radius_of_image e "b");
  Alcotest.(check (option int)) "radius of absent" None (radius_of_image e "zzz")

let test_expr_shift_composes_offsets () =
  let open Expr in
  let inner = input ~dx:1 ~dy:2 "a" in
  let e = Shift { dx = 3; dy = -1; exchange = None; body = inner } in
  Alcotest.(check (list (triple string int int)))
    "total offsets" [ ("a", 4, 1) ] (accesses e);
  Alcotest.(check int) "radius uses total" 4 (radius e)

let test_expr_let_shares () =
  let open Expr in
  let e = let_ "v" (input "a") (var "v" + var "v") in
  (* The bound value's access is reported once. *)
  Alcotest.(check (list (triple string int int))) "one access" [ ("a", 0, 0) ] (accesses e);
  Alcotest.(check (list string)) "no free vars" [] (free_vars e);
  Alcotest.(check (list string)) "free var visible" [ "w" ] (free_vars (var "w" + e))

let test_expr_subst () =
  let open Expr in
  let e = input ~dx:1 "a" + input "b" in
  let replaced =
    subst_inputs
      (fun ~image ~dx ~dy ~border ->
        if String.equal image "a" then Const 5.0 else Input { image; dx; dy; border })
      e
  in
  Alcotest.check Helpers.expr "a replaced" (Const 5.0 + input "b") replaced

let test_expr_rename () =
  let open Expr in
  let e = input "a" + input "b" in
  let renamed = rename_images (fun s -> s ^ "2") e in
  Alcotest.(check (list string)) "renamed" [ "a2"; "b2" ] (images renamed)

let test_expr_params_size () =
  let open Expr in
  let e = param "k" * (param "k" + input "a") in
  Alcotest.(check (list string)) "params dedup" [ "k" ] (params e);
  (* Mul, Param, Add, Param, Input = 5 nodes. *)
  Alcotest.(check int) "size" 5 (size e)

let test_expr_conv_builder () =
  let open Expr in
  let e = conv Mask.sobel_x "img" in
  (* Sobel X has 6 nonzero taps; zero coefficients are skipped. *)
  Alcotest.(check int) "6 accesses" 6 (List.length (accesses e));
  Alcotest.(check int) "radius 1" 1 (radius e)

let test_expr_equal () =
  let open Expr in
  Alcotest.(check bool) "equal" true (equal (input "a" + Const 1.0) (input "a" + Const 1.0));
  Alcotest.(check bool) "offset differs" false (equal (input ~dx:1 "a") (input "a"));
  Alcotest.(check bool) "border differs" false
    (equal (input ~border:Border.Mirror "a") (input "a"))

(* ---- Kernel ---- *)

let test_kernel_patterns () =
  let open Expr in
  let point = Kernel.map ~name:"p" ~inputs:[ "a" ] (input "a" * Const 2.0) in
  let local = Kernel.map ~name:"l" ~inputs:[ "a" ] (conv Mask.gaussian_3x3 "a") in
  let global = Kernel.reduce ~name:"g" ~inputs:[ "a" ] ~init:0.0 ~combine:Expr.Add (input "a") in
  Alcotest.(check bool) "point" true (Kernel.is_point point);
  Alcotest.(check bool) "local" true (Kernel.is_local local);
  Alcotest.(check bool) "global" true (Kernel.is_global global);
  Alcotest.(check int) "point radius" 0 (Kernel.radius point);
  Alcotest.(check int) "local radius" 1 (Kernel.radius local);
  Alcotest.(check int) "mask width" 3 (Kernel.mask_width local);
  Alcotest.(check int) "mask area" 9 (Kernel.mask_area local);
  Alcotest.(check bool) "shared memory" true (Kernel.uses_shared_memory local);
  Alcotest.(check bool) "point no shared" false (Kernel.uses_shared_memory point)

let test_kernel_validation () =
  let open Expr in
  Helpers.expect_invalid "undeclared input" (fun () ->
      Kernel.map ~name:"k" ~inputs:[] (input "a"));
  Helpers.expect_invalid "unread input" (fun () ->
      Kernel.map ~name:"k" ~inputs:[ "a"; "b" ] (input "a"))
 ;
  (match Kernel.map ~name:"k" ~inputs:[ "a" ] (input "a") with
  | _ -> ()
  | exception _ -> Alcotest.fail "valid kernel rejected");
  Alcotest.check_raises "unbound var"
    (Invalid_argument "Kernel.create(k): unbound variable %v") (fun () ->
      ignore (Kernel.map ~name:"k" ~inputs:[] (var "v")));
  Alcotest.check_raises "windowed reduction"
    (Invalid_argument "Kernel.create(r): reduction argument must be a point expression")
    (fun () ->
      ignore
        (Kernel.reduce ~name:"r" ~inputs:[ "a" ] ~init:0.0 ~combine:Expr.Add
           (input ~dx:1 "a")))

let test_kernel_input_radii () =
  let open Expr in
  let k =
    Kernel.map ~name:"k" ~inputs:[ "a"; "b" ] (input ~dx:2 "a" + (input "a" * input "b"))
  in
  Alcotest.(check (list (pair string int)))
    "radii" [ ("a", 2); ("b", 0) ] (Kernel.input_radii k)

(* ---- Pipeline ---- *)

let two_stage ?(width = 8) ?(height = 8) () =
  let open Expr in
  Pipeline.create ~name:"p" ~width ~height ~inputs:[ "in" ]
    [
      Kernel.map ~name:"a" ~inputs:[ "in" ] (input "in" * Const 2.0);
      Kernel.map ~name:"b" ~inputs:[ "a" ] (input "a" + Const 1.0);
    ]

let test_pipeline_basics () =
  let p = two_stage () in
  Alcotest.(check int) "kernels" 2 (Pipeline.num_kernels p);
  Alcotest.(check (option int)) "index_of a" (Some 0) (Pipeline.index_of p "a");
  Alcotest.(check (option int)) "index_of missing" None (Pipeline.index_of p "z");
  Alcotest.(check (list string)) "outputs" [ "b" ] (Pipeline.outputs p);
  Alcotest.(check (option int)) "producer" (Some 0) (Pipeline.producer p "a");
  Alcotest.(check (option int)) "producer of input" None (Pipeline.producer p "in");
  Alcotest.check Helpers.iset "consumers" (Helpers.set_of [ 1 ]) (Pipeline.consumers p 0);
  Alcotest.(check int) "IS" 64 (Pipeline.is_pixels p);
  Alcotest.(check string) "edge image" "a" (Pipeline.edge_image p 0 1)

let test_pipeline_topo_reorder () =
  (* Kernels given out of order are stored topologically sorted. *)
  let open Expr in
  let p =
    Pipeline.create ~name:"p" ~width:4 ~height:4 ~inputs:[ "in" ]
      [
        Kernel.map ~name:"late" ~inputs:[ "early" ] (input "early");
        Kernel.map ~name:"early" ~inputs:[ "in" ] (input "in");
      ]
  in
  Alcotest.(check string) "first is early" "early" (Pipeline.kernel p 0).Kernel.name

let test_pipeline_validation () =
  let open Expr in
  Helpers.expect_invalid "unknown image" (fun () ->
      Pipeline.create ~name:"p" ~width:4 ~height:4 ~inputs:[]
        [ Kernel.map ~name:"a" ~inputs:[ "ghost" ] (input "ghost") ])
 ;
  Helpers.expect_invalid "duplicate names" (fun () ->
      Pipeline.create ~name:"p" ~width:4 ~height:4 ~inputs:[ "in" ]
        [
          Kernel.map ~name:"a" ~inputs:[ "in" ] (input "in");
          Kernel.map ~name:"a" ~inputs:[ "in" ] (input "in");
        ])
 ;
  Helpers.expect_invalid "name clashes input" (fun () ->
      Pipeline.create ~name:"p" ~width:4 ~height:4 ~inputs:[ "in" ]
        [ Kernel.map ~name:"in" ~inputs:[ "in" ] (input "in") ])
 ;
  Helpers.expect_invalid "missing param default" (fun () ->
      Pipeline.create ~name:"p" ~width:4 ~height:4 ~inputs:[ "in" ]
        [ Kernel.map ~name:"a" ~inputs:[ "in" ] (param "k" * input "in") ])
 ;
  Helpers.expect_invalid "global consumed" (fun () ->
      Pipeline.create ~name:"p" ~width:4 ~height:4 ~inputs:[ "in" ]
        [
          Kernel.reduce ~name:"r" ~inputs:[ "in" ] ~init:0.0 ~combine:Expr.Add (input "in");
          Kernel.map ~name:"b" ~inputs:[ "r" ] (input "r");
        ])
 ;
  Helpers.expect_invalid "nonpositive extent" (fun () ->
      Pipeline.create ~name:"p" ~width:0 ~height:4 ~inputs:[ "in" ]
        [ Kernel.map ~name:"a" ~inputs:[ "in" ] (input "in") ])
 ;
  Helpers.expect_invalid "param shadows kernel" (fun () ->
      Pipeline.create ~name:"p" ~width:4 ~height:4 ~params:[ ("a", 1.0) ]
        ~inputs:[ "in" ]
        [ Kernel.map ~name:"a" ~inputs:[ "in" ] (input "in") ]);
  Helpers.expect_invalid "param shadows input" (fun () ->
      Pipeline.create ~name:"p" ~width:4 ~height:4 ~params:[ ("in", 1.0) ]
        ~inputs:[ "in" ]
        [ Kernel.map ~name:"a" ~inputs:[ "in" ] (input "in") ]);
  ()

let test_pipeline_multi_output () =
  let open Expr in
  let p =
    Pipeline.create ~name:"p" ~width:4 ~height:4 ~inputs:[ "in" ]
      [
        Kernel.map ~name:"a" ~inputs:[ "in" ] (input "in" * Const 2.0);
        Kernel.map ~name:"b" ~inputs:[ "in" ] (input "in" + Const 1.0);
      ]
  in
  Alcotest.(check (list string)) "two sinks" [ "a"; "b" ] (Pipeline.outputs p)

(* ---- Cost ---- *)

let test_cost_op_counts () =
  let open Expr in
  let e = sqrt (input "a" + (input "a" * input "a")) in
  let c = Cost.op_counts e in
  Alcotest.(check int) "alu" 2 c.Cost.alu;
  Alcotest.(check int) "sfu" 1 c.Cost.sfu

let test_cost_kernel_counts_paper_convention () =
  (* The squaring kernels of the Harris example count n_ALU = 2
     (Section III-B): one multiply plus the output store. *)
  let open Expr in
  let sx = Kernel.map ~name:"sx" ~inputs:[ "dx" ] (input "dx" * input "dx") in
  let c = Cost.kernel_op_counts sx in
  Alcotest.(check int) "alu = 2" 2 c.Cost.alu;
  Alcotest.(check int) "sfu = 0" 0 c.Cost.sfu

let test_cost_let_counts_once () =
  let open Expr in
  let shared = let_ "v" (input "a" * input "a") (var "v" + var "v") in
  let dup = (input "a" * input "a") + (input "a" * input "a") in
  Alcotest.(check int) "let counts value once" 2 (Cost.op_counts shared).Cost.alu;
  Alcotest.(check int) "duplicated counts twice" 3 (Cost.op_counts dup).Cost.alu

let test_cost_cost_op () =
  Alcotest.check (Helpers.float_close ()) "eq 6" 72.0
    (Cost.cost_op ~c_alu:4.0 ~c_sfu:16.0 { Cost.alu = 10; sfu = 2 })

let test_cost_tiles () =
  let block = { Cost.bx = 32; by = 4 } in
  let tile0 = 32 * 4 * 4 and tile1 = 34 * 6 * 4 in
  Alcotest.(check int) "radius 0" tile0 (Cost.tile_bytes block ~radius:0);
  Alcotest.(check int) "radius 1" tile1 (Cost.tile_bytes block ~radius:1);
  let open Expr in
  let local = Kernel.map ~name:"l" ~inputs:[ "a" ] (conv Mask.gaussian_3x3 "a") in
  let point = Kernel.map ~name:"p" ~inputs:[ "a" ] (input "a") in
  Alcotest.(check int) "local tile" tile1 (Cost.kernel_shared_bytes block local);
  Alcotest.(check int) "point none" 0 (Cost.kernel_shared_bytes block point)

let test_register_estimate () =
  let open Expr in
  let x = input "a" in
  (* Leaves need one register. *)
  Alcotest.(check int) "leaf" 1 (Cost.register_estimate x);
  (* A left-leaning sum reuses the accumulator. *)
  Alcotest.(check int) "chain" 2 (Cost.register_estimate (((x + x) + x) + x));
  (* A balanced tree of depth d needs d + 1 (Sethi-Ullman). *)
  Alcotest.(check int) "balanced" 3 (Cost.register_estimate ((x + x) + (x + x)));
  (* A Let holds its value across the body. *)
  Alcotest.(check int) "let" 3
    (Cost.register_estimate (let_ "v" (x + x) (var "v" + (x + x))));
  (* Nested lets each pin a register for their whole body (the estimate
     is scope-based, not liveness-based, so the dead v3 still counts). *)
  Alcotest.(check int) "nested lets" 5
    (Cost.register_estimate
       (let_ "v1" x (let_ "v2" x (let_ "v3" x (var "v1" + var "v2")))))

let test_register_estimate_fusion_claim () =
  (* Section II-B.1: "We did not observe any increase in register
     pressure during kernel fusion" — point-based fusion of a chain adds
     at most one live register per forwarded value. *)
  let p =
    let open Expr in
    Pipeline.create ~name:"chain" ~width:8 ~height:8 ~inputs:[ "in" ]
      [
        Kernel.map ~name:"a" ~inputs:[ "in" ] (input "in" * input "in");
        Kernel.map ~name:"b" ~inputs:[ "a" ] (input "a" + input "a");
        Kernel.map ~name:"c" ~inputs:[ "b" ] (sqrt (input "b") * input "b");
      ]
  in
  let module F = Kfuse_fusion in
  let fused = F.Transform.fuse_block p (Kfuse_util.Iset.of_list [ 0; 1; 2 ]) in
  let per_stage =
    Array.fold_left
      (fun acc k -> Stdlib.max acc (Cost.kernel_registers k))
      0 p.Pipeline.kernels
  in
  Alcotest.(check bool) "fusion adds at most a few registers" true
    (Cost.kernel_registers fused <= per_stage + 3)

(* ---- Eval ---- *)

let test_eval_point_pipeline () =
  let p = two_stage ~width:3 ~height:2 () in
  let img = Helpers.ramp ~width:3 ~height:2 in
  let out = Helpers.run_single p [ ("in", img) ] in
  (* b = 2 * in + 1 *)
  Alcotest.check Helpers.image_exact "affine"
    (Image.map (fun v -> (v *. 2.0) +. 1.0) img)
    out

let test_eval_conv_matches_reference () =
  let open Expr in
  let p =
    Pipeline.create ~name:"p" ~width:7 ~height:6 ~inputs:[ "in" ]
      [
        Kernel.map ~name:"g" ~inputs:[ "in" ]
          (conv ~border:Border.Mirror Mask.gaussian_3x3 "in");
      ]
  in
  let img = Helpers.ramp ~width:7 ~height:6 in
  let out = Helpers.run_single p [ ("in", img) ] in
  let expected = Kfuse_image.Convolve.apply ~border:Border.Mirror Mask.gaussian_3x3 img in
  Alcotest.check (Helpers.image_close ~eps:1e-12 ()) "conv" expected out

let test_eval_params () =
  let open Expr in
  let p =
    Pipeline.create ~name:"p" ~width:2 ~height:2 ~params:[ ("k", 3.0) ] ~inputs:[ "in" ]
      [ Kernel.map ~name:"a" ~inputs:[ "in" ] (param "k" * input "in") ]
  in
  let img = Image.const ~width:2 ~height:2 2.0 in
  let out = Helpers.run_single p [ ("in", img) ] in
  Alcotest.check (Helpers.float_close ()) "default" 6.0 (Image.get out 0 0);
  let env = Eval.env_of_list [ ("in", img) ] in
  let out2 = Eval.Env.find "a" (Eval.run ~params:[ ("k", 10.0) ] p env) in
  Alcotest.check (Helpers.float_close ()) "override" 20.0 (Image.get out2 0 0)

let test_eval_reduce () =
  let open Expr in
  let p =
    Pipeline.create ~name:"p" ~width:3 ~height:2 ~inputs:[ "in" ]
      [ Kernel.reduce ~name:"sum" ~inputs:[ "in" ] ~init:0.0 ~combine:Expr.Add (input "in") ]
  in
  let img = Helpers.ramp ~width:3 ~height:2 in
  let out = Helpers.run_single p [ ("in", img) ] in
  Alcotest.(check int) "1x1" 1 (Image.width out);
  Alcotest.check (Helpers.float_close ()) "sum" (Image.fold ( +. ) 0.0 img)
    (Image.get out 0 0)

let test_eval_select () =
  let open Expr in
  let body = select Expr.Lt (input "in") (Const 5.0) (Const 0.0) (Const 1.0) in
  let p =
    Pipeline.create ~name:"p" ~width:2 ~height:1 ~inputs:[ "in" ]
      [ Kernel.map ~name:"thr" ~inputs:[ "in" ] body ]
  in
  let img = Image.of_rows [ [ 3.0; 9.0 ] ] in
  let out = Helpers.run_single p [ ("in", img) ] in
  Alcotest.check (Helpers.float_close ()) "below" 0.0 (Image.get out 0 0);
  Alcotest.check (Helpers.float_close ()) "above" 1.0 (Image.get out 1 0)

let test_eval_shift_exchange () =
  (* Shift with exchange clamps the evaluation position into the
     iteration space. *)
  let open Expr in
  let body =
    Shift { dx = -10; dy = 0; exchange = Some Border.Clamp; body = input "in" }
  in
  let p =
    Pipeline.create ~name:"p" ~width:4 ~height:1 ~inputs:[ "in" ]
      [ Kernel.map ~name:"s" ~inputs:[ "in" ] body ]
  in
  let img = Image.of_rows [ [ 1.; 2.; 3.; 4. ] ] in
  let out = Helpers.run_single p [ ("in", img) ] in
  (* Every position shifts far left and clamps to x = 0. *)
  Alcotest.check Helpers.image_exact "all clamp to first" (Image.const ~width:4 ~height:1 1.0) out

let test_eval_shift_constant_exchange () =
  let open Expr in
  let body =
    Shift { dx = -10; dy = 0; exchange = Some (Border.Constant 7.0); body = input "in" }
  in
  let p =
    Pipeline.create ~name:"p" ~width:2 ~height:1 ~inputs:[ "in" ]
      [ Kernel.map ~name:"s" ~inputs:[ "in" ] body ]
  in
  let img = Image.of_rows [ [ 1.; 2. ] ] in
  let out = Helpers.run_single p [ ("in", img) ] in
  Alcotest.check (Helpers.float_close ()) "constant" 7.0 (Image.get out 0 0)

let test_eval_let_scoping () =
  let open Expr in
  (* Inner let shadows the outer binding. *)
  let body = let_ "v" (Const 1.0) (let_ "v" (Const 2.0) (var "v") + var "v") in
  let p =
    Pipeline.create ~name:"p" ~width:1 ~height:1 ~inputs:[ "in" ]
      [ Kernel.map ~name:"k" ~inputs:[ "in" ] (body + (Const 0.0 * input "in")) ]
  in
  let out = Helpers.run_single p [ ("in", Image.const ~width:1 ~height:1 0.0) ] in
  Alcotest.check (Helpers.float_close ()) "shadowing" 3.0 (Image.get out 0 0)

let test_eval_input_validation () =
  let p = two_stage ~width:3 ~height:2 () in
  Helpers.expect_invalid "missing input" (fun () ->
      Eval.run p (Eval.env_of_list []))
 ;
  Helpers.expect_invalid "wrong size" (fun () ->
      Eval.run p (Eval.env_of_list [ ("in", Image.const ~width:9 ~height:9 0.0) ]))
 ;
  Helpers.expect_invalid "extra binding" (fun () ->
      Eval.run p
        (Eval.env_of_list
           [ ("in", Image.const ~width:3 ~height:2 0.0); ("junk", Image.const ~width:3 ~height:2 0.0) ]))
 ;
  ()

let suite =
  [
    Alcotest.test_case "Expr accesses/images/radius" `Quick test_expr_accesses;
    Alcotest.test_case "Expr shift composes offsets" `Quick test_expr_shift_composes_offsets;
    Alcotest.test_case "Expr let shares" `Quick test_expr_let_shares;
    Alcotest.test_case "Expr subst_inputs" `Quick test_expr_subst;
    Alcotest.test_case "Expr rename_images" `Quick test_expr_rename;
    Alcotest.test_case "Expr params/size" `Quick test_expr_params_size;
    Alcotest.test_case "Expr conv builder" `Quick test_expr_conv_builder;
    Alcotest.test_case "Expr equal" `Quick test_expr_equal;
    Alcotest.test_case "Kernel patterns" `Quick test_kernel_patterns;
    Alcotest.test_case "Kernel validation" `Quick test_kernel_validation;
    Alcotest.test_case "Kernel input radii" `Quick test_kernel_input_radii;
    Alcotest.test_case "Pipeline basics" `Quick test_pipeline_basics;
    Alcotest.test_case "Pipeline topo reorder" `Quick test_pipeline_topo_reorder;
    Alcotest.test_case "Pipeline validation" `Quick test_pipeline_validation;
    Alcotest.test_case "Pipeline multi-output" `Quick test_pipeline_multi_output;
    Alcotest.test_case "Cost op counts" `Quick test_cost_op_counts;
    Alcotest.test_case "Cost paper n_ALU convention" `Quick test_cost_kernel_counts_paper_convention;
    Alcotest.test_case "Cost let counts once" `Quick test_cost_let_counts_once;
    Alcotest.test_case "Cost Eq. 6" `Quick test_cost_cost_op;
    Alcotest.test_case "Cost tiles and shared bytes" `Quick test_cost_tiles;
    Alcotest.test_case "Cost register estimate" `Quick test_register_estimate;
    Alcotest.test_case "Cost fusion register claim" `Quick test_register_estimate_fusion_claim;
    Alcotest.test_case "Eval point pipeline" `Quick test_eval_point_pipeline;
    Alcotest.test_case "Eval conv matches reference" `Quick test_eval_conv_matches_reference;
    Alcotest.test_case "Eval params" `Quick test_eval_params;
    Alcotest.test_case "Eval reduce" `Quick test_eval_reduce;
    Alcotest.test_case "Eval select" `Quick test_eval_select;
    Alcotest.test_case "Eval shift exchange" `Quick test_eval_shift_exchange;
    Alcotest.test_case "Eval shift constant exchange" `Quick test_eval_shift_constant_exchange;
    Alcotest.test_case "Eval let scoping" `Quick test_eval_let_scoping;
    Alcotest.test_case "Eval input validation" `Quick test_eval_input_validation;
  ]
