lib/ir/simplify.ml: Array Expr Float Kernel Kfuse_image List Pipeline String
