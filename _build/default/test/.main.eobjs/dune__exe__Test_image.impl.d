test/test_image.ml: Alcotest Helpers Kfuse_image List Printf
