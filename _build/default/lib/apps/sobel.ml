(** Sobel edge filter (Section V-B).

    "Uses two local operators to derive edge information along x- and
    y-direction, which are then combined to produce the gradient
    magnitude."  The combination kernel is a point operator, so the whole
    three-kernel DAG is fusible under the optimized technique (a
    local-to-point scenario with two parallel local sources) while the
    basic technique rejects it. *)

module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Mask = Kfuse_image.Mask
module Border = Kfuse_image.Border

let default_width = 2048
let default_height = 2048

(** [pipeline ?width ?height ()] is the Sobel pipeline. *)
let pipeline ?(width = default_width) ?(height = default_height) () =
  let border = Border.Clamp in
  let open Expr in
  let dx = Kernel.map ~name:"dx" ~inputs:[ "in" ] (conv ~border Mask.sobel_x "in") in
  let dy = Kernel.map ~name:"dy" ~inputs:[ "in" ] (conv ~border Mask.sobel_y "in") in
  let mag =
    Kernel.map ~name:"mag" ~inputs:[ "dx"; "dy" ]
      (sqrt ((input "dx" * input "dx") + (input "dy" * input "dy")))
  in
  Pipeline.create ~name:"sobel" ~width ~height ~inputs:[ "in" ] [ dx; dy; mag ]
