module Diag = Kfuse_util.Diag
module Rng = Kfuse_util.Rng

type t = { fd : Unix.file_descr }

(* With a timeout, connect non-blocking and select for writability: a
   Unix-domain connect is normally instant, but a listener with a full
   backlog can block the caller indefinitely.  The same timeout then
   arms SO_RCVTIMEO/SO_SNDTIMEO so every subsequent read and write on
   the connection is bounded too. *)
let connect_fd ~socket ~timeout_ms =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    match timeout_ms with
    | None -> Unix.connect fd (Unix.ADDR_UNIX socket)
    | Some ms -> (
      Unix.set_nonblock fd;
      (match Unix.connect fd (Unix.ADDR_UNIX socket) with
      | () -> ()
      | exception
          Unix.Unix_error ((Unix.EINPROGRESS | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
        let _, writable, _ = Unix.select [] [ fd ] [] (ms /. 1000.0) in
        if writable = [] then raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", socket));
        match Unix.getsockopt_error fd with
        | None -> ()
        | Some e -> raise (Unix.Unix_error (e, "connect", socket))));
      Unix.clear_nonblock fd;
      let s = ms /. 1000.0 in
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO s with
      | Unix.Unix_error _ | Invalid_argument _ -> ());
      try Unix.setsockopt_float fd Unix.SO_SNDTIMEO s with
      | Unix.Unix_error _ | Invalid_argument _ -> ())
  with
  | () -> fd
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let with_connection ~socket ?timeout_ms f =
  match connect_fd ~socket ~timeout_ms with
  | exception Unix.Unix_error (Unix.ETIMEDOUT, _, _) ->
    Error (Diag.errorf ~file:socket Diag.Request_timeout "connect to kfused timed out")
  | exception Unix.Unix_error (e, _, _) ->
    Error
      (Diag.errorf ~file:socket Diag.Service_error "cannot connect to kfused: %s"
         (Unix.error_message e))
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> f { fd })

(* Alongside the result, classify whether the failure is {e connection
   transient}: the signature a shard restart leaves on its clients — the
   peer vanished without a typed verdict.  [call] retries these for
   idempotent requests exactly like a typed shed, so a supervised
   restart is invisible instead of surfacing a raw connect error. *)
let recv_reply_classified t ~send_err =
  match Protocol.recv t.fd with
  | Error d ->
    (* A KF0804 here is an armed SO_RCVTIMEO elapsing — already typed
       retryable.  A KF0801 is the transport dying under us (reset read,
       close mid-frame, garbled reply from a half-dead peer): classify
       it transient — a genuinely malformed frame just burns the bounded
       retry budget and then surfaces with its code unchanged. *)
    (Error d, d.Diag.code = Diag.Protocol_error)
  | Ok None -> (
    (* Clean close before any reply: the server died (or was killed)
       between accept and answer. *)
    match send_err with
    | Some d -> (Error d, true)
    | None ->
      (Error (Diag.v Diag.Protocol_error "server closed the connection without replying"), true))
  | Ok (Some v) -> (Protocol.result v, false)

let request_classified t req =
  match Protocol.send t.fd (Protocol.request_to_json req) with
  | () -> recv_reply_classified t ~send_err:None
  | exception Diag.Fatal d ->
    (* The request would overrun the frame limit; nothing was sent. *)
    (Error d, false)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    (Error (Diag.v Diag.Request_timeout "send to kfused timed out"), false)
  | exception Unix.Unix_error (((Unix.EPIPE | Unix.ECONNRESET) as e), _, _) ->
    (* The server closed before reading our request — but it may have
       already replied (a KF0803 shed notice lands before the close):
       prefer its typed reply over the raw pipe error. *)
    recv_reply_classified t
      ~send_err:
        (Some (Diag.errorf Diag.Service_error "send failed: %s" (Unix.error_message e)))
  | exception Unix.Unix_error (e, _, _) ->
    (Error (Diag.errorf Diag.Service_error "send failed: %s" (Unix.error_message e)), false)

let request t req = fst (request_classified t req)

(* ---- retry policy ---- *)

type retry = { attempts : int; backoff_ms : float; max_backoff_ms : float; seed : int }

let default_retry = { attempts = 3; backoff_ms = 50.0; max_backoff_ms = 2_000.0; seed = 0 }

(* Only overload sheds, timeouts and whole-fleet blips are worth
   retrying: all three are transient by construction, and the server
   replies [KF0803]/[KF0808] exactly when a backed-off retry is the
   right response.  Hard failures (protocol errors, server-side faults,
   bad requests) are not. *)
let retryable (d : Diag.t) =
  match d.Diag.code with
  | Diag.Overloaded | Diag.Request_timeout | Diag.Shard_unavailable -> true
  | _ -> false

let idempotent = function
  | Protocol.Shutdown -> false
  (* A [KF0804] timeout leaves a push's fate unknown: the server may
     have processed the frame and advanced the temporal window before
     the reply was lost, so a blind retry could double-advance the
     stream.  Pushes are only retried on explicit sheds — see
     {!stream_push_retry}. *)
  | Protocol.Stream_push _ -> false
  | _ -> true

(* Connect-time errnos a shard restart produces: nobody listening yet
   (ECONNREFUSED), the socket file briefly unlinked while the replacement
   re-binds (ENOENT), or the dying process resetting its backlog
   (ECONNRESET). *)
let transient_errno = function
  | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ENOENT -> true
  | _ -> false

(* One attempt of [call]: connect, send, await — with the
   connection-transient classification threaded through the connect. *)
let attempt_classified ~socket ?timeout_ms req =
  match connect_fd ~socket ~timeout_ms with
  | exception Unix.Unix_error (Unix.ETIMEDOUT, _, _) ->
    (Error (Diag.errorf ~file:socket Diag.Request_timeout "connect to kfused timed out"), false)
  | exception Unix.Unix_error (e, _, _) ->
    ( Error
        (Diag.errorf ~file:socket Diag.Service_error "cannot connect to kfused: %s"
           (Unix.error_message e)),
      transient_errno e )
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> request_classified { fd } req)

let call_once = attempt_classified

let call ~socket ?timeout_ms ?(retry = default_retry) req =
  let rng = Rng.create retry.seed in
  let rec go attempt =
    match attempt_classified ~socket ?timeout_ms req with
    | Error d, conn_transient
      when attempt < retry.attempts && idempotent req && (retryable d || conn_transient) ->
      (* Exponential backoff with deterministic seeded jitter in
         [0.5, 1.0) of the capped step: reproducible schedules for
         tests, decorrelated herds in production. *)
      let step = Float.min (retry.backoff_ms *. (2.0 ** float_of_int attempt)) retry.max_backoff_ms in
      Thread.delay (step *. (0.5 +. Rng.float rng 0.5) /. 1000.0);
      go (attempt + 1)
    | (result, _) -> result
  in
  go 0

let fuse t f = request t (Protocol.Fuse f)
let fuse_exec t e = request t (Protocol.Fuse_exec e)
let stream_open t o = request t (Protocol.Stream_open o)
let stream_push t s = request t (Protocol.Stream_push s)
let stream_close t id = request t (Protocol.Stream_close id)

(* [KF0803] (too many streams) and [KF0805] (frame queue full) both
   guarantee the server did NOT process the request — in particular a
   [KF0805] shed happens before the temporal window is touched — so a
   verbatim retry is safe.  [KF0804] is NOT retryable here: a timed-out
   push may have been processed, and retrying it would double-advance
   the stream. *)
let push_retryable (d : Diag.t) =
  match d.Diag.code with
  | Diag.Overloaded | Diag.Stream_backpressure -> true
  | _ -> false

let stream_push_retry ?(retry = default_retry) t s =
  let rng = Rng.create retry.seed in
  let rec go attempt =
    match stream_push t s with
    | Ok _ as ok -> ok
    | Error d when attempt < retry.attempts && push_retryable d ->
      let step =
        Float.min (retry.backoff_ms *. (2.0 ** float_of_int attempt)) retry.max_backoff_ms
      in
      Thread.delay (step *. (0.5 +. Rng.float rng 0.5) /. 1000.0);
      go (attempt + 1)
    | Error _ as e -> e
  in
  go 0

let stats t = request t Protocol.Stats

let metrics t =
  match request t Protocol.Metrics with
  | Error _ as e -> e
  | Ok v -> (
    match Jsonx.mem_str "text" v with
    | Some s -> Ok s
    | None -> Error (Diag.v Diag.Protocol_error "metrics response lacks \"text\""))

let ping t = Result.map (fun _ -> ()) (request t Protocol.Ping)
let shutdown t = Result.map (fun _ -> ()) (request t Protocol.Shutdown)
