lib/codegen/emit.mli: Cuda_ast Format
