lib/apps/registry.mli: Kfuse_ir
