lib/graph/partition.ml: Digraph Format Kfuse_util List
