module Diag = Kfuse_util.Diag

type t = { cc : string; openmp : bool }

let probe_source =
  "int main(void) {\n\
  \  int s = 0;\n\
   #pragma omp parallel for reduction(+:s)\n\
  \  for (int i = 0; i < 8; ++i) s += i;\n\
  \  return s == 28 ? 0 : 1;\n\
   }\n"

let with_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "kfuse-probe-%d-%x" (Unix.getpid ()) (Hashtbl.hash (Unix.gettimeofday ())))
  in
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc contents)

(* [true] when [cc args] compiles the probe program cleanly. *)
let compiles cc extra_flags =
  with_temp_dir (fun dir ->
      let src = Filename.concat dir "probe.c" in
      let out = Filename.concat dir "probe.out" in
      write_file src probe_source;
      let cmd =
        Filename.quote_command cc
          (extra_flags @ [ "-o"; out; src ])
          ~stdout:Filename.null ~stderr:Filename.null
      in
      Sys.command cmd = 0)

(* On a single-core host OpenMP is pure loss: every kernel's parallel
   region pays fork/join and barrier overhead (measured ~2.7 ms per
   512x512 pipeline call, larger than some kernels) and there is no
   second core to pay it back.  Streaming's frame budget cannot afford
   it, so the probe only turns OpenMP on when parallelism exists. *)
let core_count () =
  match Domain.recommended_domain_count () with n when n >= 1 -> n | _ -> 1

let probe cc =
  if core_count () > 1 && compiles cc [ "-O2"; "-fopenmp" ] then Some { cc; openmp = true }
  else if compiles cc [ "-O2" ] then Some { cc; openmp = false }
  else None

let memo : (string option, (t, Diag.t) result) Hashtbl.t = Hashtbl.create 4

let find () =
  let pinned = Sys.getenv_opt "KFUSE_CC" in
  match Hashtbl.find_opt memo pinned with
  | Some r -> r
  | None ->
    let r =
      match pinned with
      | Some cc -> (
        match probe cc with
        | Some t -> Ok t
        | None ->
          Error
            (Diag.errorf Diag.Toolchain_missing
               "KFUSE_CC=%s cannot compile a trivial C program; unset it or point it \
                at a working compiler"
               cc))
      | None -> (
        match List.find_map probe [ "cc"; "gcc"; "clang" ] with
        | Some t -> Ok t
        | None ->
          Error
            (Diag.errorf Diag.Toolchain_missing
               "no usable C compiler found (tried cc, gcc, clang); install one or set \
                KFUSE_CC"))
    in
    Hashtbl.replace memo pinned r;
    r

(* Interpreter faithfulness at -O2: [-fno-builtin-pow] stops the
   compiler from strength-reducing [pow(x, 2.0)] into [x*x] — glibc's
   pow is not correctly rounded for squares, so the rewrite diverges
   from the interpreter's libm call by 1 ulp on ~0.1% of inputs —
   and [-ffp-contract=off] forbids fusing [a*b+c] into fma on targets
   that have one (free on baseline x86-64, load-bearing on aarch64). *)
let faithful_flags = [ "-fno-builtin-pow"; "-fno-builtin-powf"; "-ffp-contract=off" ]

let flags t ~shared =
  [ "-O2" ] @ faithful_flags
  @ (if t.openmp then [ "-fopenmp" ] else [])
  @ if shared then [ "-shared"; "-fPIC" ] else []

(* The flag set is folded in so a flag change never replays a stale
   artifact compiled under the old semantics. *)
let id t =
  Printf.sprintf "%s%s %s" t.cc
    (if t.openmp then "+openmp" else "-openmp")
    (String.concat " " (flags t ~shared:false))
