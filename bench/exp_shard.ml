(* exp-shard: service topology benchmark — router vs single server.

   Measures, over the same request mix:

   - fuse round-trip latency (p50/p99) against one in-process server;
   - the same through a supervised 4-shard fleet (router adds a hop and
     the fingerprint keyspace mapping);
   - warm-cache hit latency for both (the steady state of a long-lived
     service);
   - the failover blip: with the fleet warm, SIGKILL the home shard of
     the benchmarked pipeline and time how long a retrying client is
     stalled before its next reply lands.

   Results are written to BENCH_service.json as a
   kfuse-bench-service/v1 document, so CI can archive the numbers next
   to BENCH_native.json / BENCH_stream.json.  Not part of the default
   bench set (it spawns real shard subprocesses): run with
   [bench/main.exe shard]. *)

module Svc = Kfuse_service
module Cache = Kfuse_cache
module Diag = Kfuse_util.Diag
module Protocol = Svc.Protocol
module Jsonx = Svc.Jsonx

let out_path = "BENCH_service.json"
let app = "harris"
let samples = 200

(* The shards are real kfusec processes; find the binary relative to
   this benchmark executable (_build/default/bench/main.exe →
   _build/default/bin/kfusec.exe), overridable for odd layouts. *)
let kfusec () =
  match Sys.getenv_opt "KFUSEC" with
  | Some p -> p
  | None ->
    Filename.concat (Filename.dirname Sys.executable_name)
      (Filename.concat ".." (Filename.concat "bin" "kfusec.exe"))

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let temp_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "kfuse-bench-shard-%d-%s" (Unix.getpid ()) name)

let fuse_req =
  {
    Protocol.app = Some app;
    source = None;
    strategy = Kfuse_fusion.Driver.Mincut;
    c_mshared = None;
    gamma = None;
    tg = None;
    optimize = false;
    inline = false;
    strict = false;
    budget_ms = None;
    no_cache = false;
  }

let time_ms f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.)

let expect = function
  | Ok v -> v
  | Error d -> failwith ("exp-shard: request failed: " ^ Diag.to_string d)

let quantile sorted q =
  let n = Array.length sorted in
  sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

(* One warm-up (cold plan), then [samples] timed warm round trips. *)
let measure ~socket =
  let call () = expect (Svc.Client.call ~socket (Protocol.Fuse fuse_req)) in
  let _, cold_ms = time_ms call in
  let times = Array.init samples (fun _ -> snd (time_ms call)) in
  Array.sort compare times;
  (cold_ms, quantile times 0.5, quantile times 0.99)

let json_of_tier (cold, p50, p99) =
  Jsonx.Obj
    [ ("cold_ms", Jsonx.Num cold); ("p50_ms", Jsonx.Num p50); ("p99_ms", Jsonx.Num p99) ]

let run () =
  print_endline "=== exp-shard: router vs single server, failover blip ===";
  (* --- single server, in process --- *)
  let single_dir = temp_path "single" in
  rm_rf single_dir;
  let single =
    let socket = temp_path "single.sock" in
    let cache = Cache.Plan_cache.create ~dir:single_dir () in
    Kfuse_util.Pool.with_pool 2 (fun pool ->
        match Svc.Server.start ~socket ~cache ~pool () with
        | Error d -> failwith ("exp-shard: single server: " ^ Diag.to_string d)
        | Ok server ->
          Fun.protect
            ~finally:(fun () -> Svc.Server.stop server)
            (fun () -> measure ~socket))
  in
  rm_rf single_dir;
  (* --- 4-shard fleet --- *)
  let dir = temp_path "fleet" in
  rm_rf dir;
  let socket = temp_path "router.sock" in
  let shard_argv ~index:_ ~socket =
    [ kfusec (); "serve"; "--socket"; socket; "--cache-dir"; Filename.concat dir "cache" ]
  in
  let shard_config =
    { Svc.Shard.default_config with Svc.Shard.restart_backoff_ms = 50. }
  in
  let router, warm, blip_ms =
    match
      Svc.Router.start ~socket ~dir ~count:4 ~shard_argv ~shard_config
        ~health_interval_ms:50. ~health_timeout_ms:1_000. ()
    with
    | Error d -> failwith ("exp-shard: fleet: " ^ Diag.to_string d)
    | Ok router ->
      Fun.protect
        ~finally:(fun () -> Svc.Router.stop router)
        (fun () ->
          if not (Svc.Router.await_ready ~timeout_ms:20_000. router) then
            failwith "exp-shard: fleet did not become ready";
          let warm = measure ~socket in
          (* Failover blip: kill the home shard, then time one retrying
             request — the stall until a neighbor (or the respawn)
             answers is the client-visible cost of the failure. *)
          let home =
            match Svc.Server.load_pipeline fuse_req with
            | Error d -> failwith (Diag.to_string d)
            | Ok p ->
              let s = Cache.Fingerprint.structural p in
              (match int_of_string_opt ("0x" ^ String.sub s 0 8) with
              | Some v -> abs v mod 4
              | None -> 0)
          in
          (match Svc.Shard.pid (Svc.Router.shards router).(home) with
          | Some pid -> Unix.kill pid Sys.sigkill
          | None -> failwith "exp-shard: home shard has no pid");
          let _, blip_ms =
            time_ms (fun () ->
                expect
                  (Svc.Client.call ~socket
                     ~retry:{ Svc.Client.default_retry with attempts = 10 }
                     (Protocol.Fuse fuse_req)))
          in
          (router, warm, blip_ms))
  in
  rm_rf dir;
  let m = Svc.Router.metrics router in
  let doc =
    Jsonx.Obj
      [
        ("schema", Jsonx.Str "kfuse-bench-service/v1");
        ("app", Jsonx.Str app);
        ("samples", Jsonx.Num (float_of_int samples));
        ("single", json_of_tier single);
        ("router", json_of_tier warm);
        ("failover_blip_ms", Jsonx.Num blip_ms);
        ( "requests_rerouted",
          Jsonx.Num (float_of_int (Svc.Metrics.counter m "requests_rerouted")) );
        ( "shard_restarts",
          Jsonx.Num (float_of_int (Svc.Metrics.counter m "shard_restarts")) );
      ]
  in
  let oc = open_out out_path in
  output_string oc (Jsonx.to_string doc);
  output_char oc '\n';
  close_out oc;
  let _, sp50, sp99 = single and _, rp50, rp99 = warm in
  Printf.printf "single server: p50 %.3f ms  p99 %.3f ms (warm)\n" sp50 sp99;
  Printf.printf "4-shard fleet: p50 %.3f ms  p99 %.3f ms (warm)\n" rp50 rp99;
  Printf.printf "failover blip: %.1f ms (SIGKILL of the home shard)\n" blip_ms;
  Printf.printf "wrote %s\n" out_path
