(** Harris corner detector (Section III-B and Figure 3 of the paper).

    Nine kernels, ten edges: [dx, dy] are 3x3 local derivative operators;
    [sx, sy, sxy] square/multiply the derivatives pointwise; [gx, gy,
    gxy] approximate a Gaussian smoothing of the squared derivatives; the
    point kernel [hc] computes the corner response
    [det(M) - k * trace(M)^2]. *)

module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Mask = Kfuse_image.Mask
module Border = Kfuse_image.Border

let default_width = 2048
let default_height = 2048

(** [pipeline ?width ?height ()] is the Harris pipeline; defaults to the
    paper's 2048x2048 iteration space. *)
let pipeline ?(width = default_width) ?(height = default_height) () =
  let border = Border.Clamp in
  let open Expr in
  let dx = Kernel.map ~name:"dx" ~inputs:[ "in" ] (conv ~border Mask.sobel_x "in") in
  let dy = Kernel.map ~name:"dy" ~inputs:[ "in" ] (conv ~border Mask.sobel_y "in") in
  let sx = Kernel.map ~name:"sx" ~inputs:[ "dx" ] (input "dx" * input "dx") in
  let sy = Kernel.map ~name:"sy" ~inputs:[ "dy" ] (input "dy" * input "dy") in
  let sxy = Kernel.map ~name:"sxy" ~inputs:[ "dx"; "dy" ] (input "dx" * input "dy") in
  let gx = Kernel.map ~name:"gx" ~inputs:[ "sx" ] (conv ~border Mask.gaussian_3x3 "sx") in
  let gy = Kernel.map ~name:"gy" ~inputs:[ "sy" ] (conv ~border Mask.gaussian_3x3 "sy") in
  let gxy =
    Kernel.map ~name:"gxy" ~inputs:[ "sxy" ] (conv ~border Mask.gaussian_3x3 "sxy")
  in
  let hc =
    let det = (input "gx" * input "gy") - (input "gxy" * input "gxy") in
    let trace = input "gx" + input "gy" in
    Kernel.map ~name:"hc" ~inputs:[ "gx"; "gy"; "gxy" ]
      (det - (param "k" * trace * trace))
  in
  Pipeline.create ~name:"harris" ~width ~height ~params:[ ("k", 0.04) ]
    ~inputs:[ "in" ]
    [ dx; dy; sx; sy; sxy; gx; gy; gxy; hc ]
