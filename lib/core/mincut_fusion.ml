module Iset = Kfuse_util.Iset
module Digraph = Kfuse_graph.Digraph
module Topo = Kfuse_graph.Topo
module Wgraph = Kfuse_graph.Wgraph
module Stoer_wagner = Kfuse_graph.Stoer_wagner
module Partition = Kfuse_graph.Partition
module Pipeline = Kfuse_ir.Pipeline

type step =
  | Accept of Iset.t
  | Cut of {
      block : Iset.t;
      reason : Legality.reason option;
      cut_weight : float;
      side_a : Iset.t;
      side_b : Iset.t;
    }

type result = {
  partition : Partition.t;
  edges : Benefit.edge_report list;
  steps : step list;
  objective : float;
}

let unprofitable (config : Config.t) (r : Benefit.edge_report) =
  match r.scenario with
  | Benefit.Illegal _ -> false
  | Benefit.Point_based | Benefit.Point_to_local | Benefit.Local_to_local ->
    r.delta -. r.phi +. config.gamma <= 0.0

let block_legal config p edges block =
  (* Corruption point for the differential fuzzer: a triggered
     "cut.block_legal" admits the block unconditionally, making the
     recursion emit an illegal partition the legality oracle must catch. *)
  Kfuse_util.Faults.fires "cut.block_legal"
  || (match Legality.check config p block with Ok () -> true | Error _ -> false)
     && not
          (List.exists
             (fun (r : Benefit.edge_report) ->
               Iset.mem r.src block && Iset.mem r.dst block && unprofitable config r)
             edges)

let weight_table edges =
  let table = Hashtbl.create (List.length edges * 2) in
  List.iter
    (fun (r : Benefit.edge_report) -> Hashtbl.replace table (r.src, r.dst) r.weight)
    edges;
  table

(* What Algorithm 1 does to one block of the working set: accept it, or
   split it along a min cut (or into weak components when it is already
   disconnected).  A pure function of the block, which is what lets
   independent blocks be decided on separate domains without changing
   any output. *)
type decision =
  | Accepted
  | Split of {
      reason : Legality.reason option;
      cut_weight : float;
      side_a : Iset.t;
      side_b : Iset.t;
    }

let decide config p g ~weight_of ~legal block =
  if Iset.cardinal block = 1 || legal block then Accepted
  else begin
    let reason =
      match Legality.check config p block with Ok () -> None | Error r -> Some r
    in
    let sub = Digraph.induced g block in
    match Topo.undirected_components sub with
    | [] -> assert false
    | [ _ ] ->
      let wsub = Wgraph.of_digraph weight_of sub in
      let cut_weight, side = Stoer_wagner.min_cut wsub in
      Split { reason; cut_weight; side_a = side; side_b = Iset.diff block side }
    | first :: others ->
      (* A disconnected block (possible when a cut separates a hub):
         split into weak components at zero cut cost. *)
      let side_b = List.fold_left Iset.union Iset.empty others in
      Split { reason; cut_weight = 0.0; side_a = first; side_b }
  end

let run ?(pool = Kfuse_util.Pool.serial) ?(deadline = Kfuse_util.Deadline.none) ?lookup
    ?record ?edges config (p : Pipeline.t) =
  Config.validate config;
  let g = Pipeline.dag p in
  let edges =
    match edges with Some e -> e | None -> Benefit.all_edges ~pool config p
  in
  let weights = weight_table edges in
  let weight_of u v =
    match Hashtbl.find_opt weights (u, v) with
    | Some w -> w
    | None -> invalid_arg "Mincut_fusion: missing edge weight"
  in
  let legal = block_legal config p edges in
  let decide = decide config p g ~weight_of ~legal in
  (* Evaluate the recursion tree in breadth-first waves: all undecided
     blocks of a wave are independent, so they are decided in parallel.
     Decisions are memoized by block and the serial traversal below
     replays them, so the trace and partition are bit-identical to the
     sequential depth-first algorithm. *)
  let decisions : (int list, decision) Hashtbl.t = Hashtbl.create 16 in
  (* Cross-run memoization hooks (incremental replanning): [lookup] is
     consulted serially for every block of a wave; misses are decided in
     parallel as usual and offered to [record], also serially, so the
     callbacks never run off the calling domain.  The contract is strict:
     [lookup] must return exactly the decision [decide] would compute —
     the replanner guarantees it by keying on a fingerprint of everything
     [decide] reads (see {!Kfuse_cache.Fingerprint.subgraph}). *)
  let rec waves frontier =
    match frontier with
    | [] -> ()
    | _ ->
      (* The recursion's natural yield point: between waves nothing is
         half-done, so an expired budget aborts here and the driver can
         degrade to the baseline partition. *)
      Kfuse_util.Deadline.check deadline;
      let cached =
        match lookup with
        | None -> List.map (fun _ -> None) frontier
        | Some f -> List.map f frontier
      in
      let misses =
        List.concat_map
          (fun (block, c) -> match c with None -> [ block ] | Some _ -> [])
          (List.combine frontier cached)
      in
      let fresh = Kfuse_util.Pool.map_list pool decide misses in
      (match record with
      | None -> ()
      | Some r -> List.iter2 r misses fresh);
      let decided =
        let rec merge cached fresh =
          match (cached, fresh) with
          | [], [] -> []
          | Some d :: rest, fresh -> d :: merge rest fresh
          | None :: rest, d :: fresh -> d :: merge rest fresh
          | _ -> assert false
        in
        merge cached fresh
      in
      let next =
        List.concat_map
          (function Accepted -> [] | Split { side_a; side_b; _ } -> [ side_a; side_b ])
          decided
      in
      List.iter2
        (fun block d -> Hashtbl.replace decisions (Iset.elements block) d)
        frontier decided;
      waves next
  in
  (* Working set as a FIFO queue; ready blocks accumulate. *)
  let rec loop work ready steps =
    match work with
    | [] -> (List.rev ready, List.rev steps)
    | block :: rest -> (
      match Hashtbl.find decisions (Iset.elements block) with
      | Accepted -> loop rest (block :: ready) (Accept block :: steps)
      | Split { reason; cut_weight; side_a; side_b } ->
        let step = Cut { block; reason; cut_weight; side_a; side_b } in
        loop (side_a :: side_b :: rest) ready (step :: steps))
  in
  let all = Digraph.vertices g in
  let partition, steps =
    if Iset.is_empty all then ([], [])
    else begin
      waves [ all ];
      loop [ all ] [] []
    end
  in
  let partition = Partition.normalize partition in
  let objective = Partition.objective weight_of g partition in
  { partition; edges; steps; objective }

let partition config p = (run config p).partition

let pp_step (p : Pipeline.t) ppf step =
  let name i = (Pipeline.kernel p i).Kfuse_ir.Kernel.name in
  let pp_block ppf b =
    Format.fprintf ppf "{%s}" (String.concat ", " (List.map name (Iset.elements b)))
  in
  match step with
  | Accept b -> Format.fprintf ppf "accept %a" pp_block b
  | Cut { block; reason; cut_weight; side_a; side_b } ->
    Format.fprintf ppf "cut %a (w=%.3f%s) -> %a | %a" pp_block block cut_weight
      (match reason with
      | None -> ""
      | Some r -> Printf.sprintf "; %s" (Legality.reason_to_string p r))
      pp_block side_a pp_block side_b
