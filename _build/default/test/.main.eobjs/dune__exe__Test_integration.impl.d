test/test_integration.ml: Alcotest Float Kfuse_apps Kfuse_codegen Kfuse_dsl Kfuse_fusion Kfuse_gpu Kfuse_image Kfuse_ir Kfuse_util List Option Printf String
