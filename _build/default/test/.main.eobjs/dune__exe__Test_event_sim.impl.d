test/test_event_sim.ml: Alcotest Float Kfuse_apps Kfuse_fusion Kfuse_gpu Kfuse_image Kfuse_ir List Printf
