(* Shared test utilities: Alcotest testables and small builders. *)

module Iset = Kfuse_util.Iset
module Image = Kfuse_image.Image

let iset = Alcotest.testable Iset.pp Iset.equal

let partition =
  Alcotest.testable Kfuse_graph.Partition.pp Kfuse_graph.Partition.equal

let image_exact = Alcotest.testable Image.pp Image.equal

let image_close ?(eps = 1e-9) () =
  Alcotest.testable Image.pp (fun a b -> Image.equal_eps ~eps a b)

let expr = Alcotest.testable Kfuse_ir.Expr.pp Kfuse_ir.Expr.equal

let float_close ?(eps = 1e-9) () =
  Alcotest.testable Fmt.float (fun a b -> Float.abs (a -. b) <= eps)

let set_of l = Iset.of_list l

(* A deterministic small test image: values depend on position so border
   mistakes show up. *)
let ramp ~width ~height =
  Image.init ~width ~height (fun x y -> float_of_int ((x * 7) + (y * 13) + 1))

(* Assert that [f ()] raises Invalid_argument (any message). *)
let expect_invalid name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

(* Run a pipeline on bindings and return the single sink image. *)
let run_single p bindings =
  match Kfuse_ir.Eval.run_outputs p (Kfuse_ir.Eval.env_of_list bindings) with
  | [ (_, img) ] -> img
  | outs -> Alcotest.failf "expected one output, got %d" (List.length outs)
