(** The [kfused] server: fusion-as-a-service over a Unix-domain socket.

    One accept loop (its own thread) hands each connection to a
    dedicated handler thread, so a slow plan never blocks other
    clients.  All handlers share one {!Kfuse_cache.Plan_cache} and one
    {!Kfuse_util.Pool}: the pool is batch-exclusive, so concurrent
    plans degrade gracefully to serial execution inside their own
    thread rather than queueing behind each other.

    Robustness: a failed request produces an error {e response}, not a
    dead server; a connection failing mid-write is dropped; the
    ["service.accept"] fault-injection point
    ({!Kfuse_util.Faults.hit} right after [accept]) lets tests and CI
    prove an injected accept-path fault drops that one connection
    (counted in metrics as [connections_dropped]) and keeps serving. *)

module Diag := Kfuse_util.Diag

type t

(** [start ~socket ~cache ~pool ?budget_ms ()] binds [socket] (a stale
    socket file left by a dead server is replaced; a live one is
    refused), starts the accept thread, and returns.  [budget_ms] is
    the default per-request fusion budget; a request's own
    ["budget_ms"] overrides it. *)
val start :
  socket:string ->
  cache:Kfuse_cache.Plan_cache.t ->
  pool:Kfuse_util.Pool.t ->
  ?budget_ms:float ->
  unit ->
  (t, Diag.t) result

(** [wait t] blocks until the server stops (a ["shutdown"] request or
    {!stop}), then joins every connection thread and removes the socket
    file. *)
val wait : t -> unit

(** [stop t] initiates shutdown and {!wait}s.  Idempotent. *)
val stop : t -> unit

val socket : t -> string
val cache : t -> Kfuse_cache.Plan_cache.t
val metrics : t -> Metrics.t
