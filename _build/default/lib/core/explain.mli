(** Human-readable narration of fusion decisions.

    Consolidates the engine's analyses into one report: the scenario and
    weight breakdown of every edge (Section II-C), the legality verdict of
    every pairwise block, the min-cut recursion trace, the final
    partition, and — for the extensions — the inlining verdict for every
    intermediate and the distribution verdict for every kernel.  Exposed
    on the CLI as [kfusec explain]. *)

(** [report config pipeline] renders the full narration as plain text. *)
val report : Config.t -> Kfuse_ir.Pipeline.t -> string
