(** Reference convolution.

    The ground-truth implementation used by tests and by the Figure 4
    reproduction: each output pixel is the weighted sum of its window,
    with out-of-border reads resolved by the given border mode — exactly
    the semantics of an {e unfused} local kernel that loads, pads, and
    convolves its materialized input. *)

(** [apply ~border mask img] convolves [img] with [mask] over the full
    image extent. *)
val apply : border:Border.mode -> Mask.t -> Image.t -> Image.t

(** [apply_interior mask img] convolves only the interior region (where
    no border handling is needed) and leaves other pixels at 0.  Used to
    check that fusion strategies agree on the interior even when border
    handling differs. *)
val apply_interior : Mask.t -> Image.t -> Image.t

(** [at ~border mask img x y] is the convolution result at a single
    coordinate (which may be anywhere, including outside the image — the
    window is resolved through [border]). *)
val at : border:Border.mode -> Mask.t -> Image.t -> int -> int -> float
