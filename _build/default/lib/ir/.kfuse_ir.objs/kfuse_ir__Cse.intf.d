lib/ir/cse.mli: Expr Kernel Pipeline
