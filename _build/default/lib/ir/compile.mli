(** Compilation of kernel bodies to OCaml closures.

    The tree-walking interpreter in {!Eval} re-dispatches on every AST
    node for every pixel.  This module performs that dispatch once:
    an expression compiles to a closure [slots -> x -> y -> float] where
    image lookups, parameter values and [Let] slot indices are resolved
    at compile time.  {!Eval.run_kernel} uses it internally, typically an
    order of magnitude faster on convolution-sized bodies — which is what
    makes whole-application pixel-exactness tests cheap enough to run on
    every kernel of every strategy.

    [Let] bindings use compile-time-assigned scratch slots (lexical
    depth), so the closure is reentrant as long as each evaluation uses
    its own scratch array; {!scratch} sizes one. *)

type compiled = {
  eval : float array -> int -> int -> float;
      (** [eval slots x y]; [slots] must have at least [slots_needed]
          elements *)
  slots_needed : int;
}

(** [expr ~width ~height ~params ~lookup e] compiles [e].  [lookup]
    resolves image names (called once per distinct access at compile
    time).
    @raise Invalid_argument on unbound parameters or variables (image
    lookup errors are whatever [lookup] raises). *)
val expr :
  width:int ->
  height:int ->
  params:(string * float) list ->
  lookup:(string -> Kfuse_image.Image.t) ->
  Expr.t ->
  compiled

(** [scratch c] allocates a scratch slot array for [c]. *)
val scratch : compiled -> float array
