lib/gpu/autotune.ml: Array Kfuse_ir List Perf_model
