(** Seeded generation of arbitrary well-formed pipelines.

    The differential fuzzer's input space: random DAG shapes (chains,
    diamonds, multi-consumer fan-out, shared external inputs), point and
    local kernels with random — including deliberately asymmetric —
    stencil masks, random border modes, scalar parameters, [select]
    expressions, [let] reuse, and occasional global reduction sinks.

    Generation is a pure function of [(seed, index)] via
    {!Kfuse_util.Rng}: the same pair always yields the same pipeline,
    bit for bit, which is what makes failures replayable from nothing
    but the two integers.

    The generator stays inside the DSL-representable fragment (only
    [<] selects, no [Shift] nodes, reduction seeds at their DSL
    defaults, [Clamp] borders on zero-offset taps) so every generated
    and every shrunk pipeline can be persisted to a corpus as DSL text.
    It also avoids NaN sources — no division, logarithm, or
    exponential, and [pow] only with a constant exponent — because the
    evaluation oracles demand {e bitwise} equality, and a NaN produced
    on both sides would compare unequal. *)

(** [case ~seed index] is the [index]-th pipeline of the campaign seeded
    with [seed]; deterministic in [(seed, index)].  [max_kernels]
    (default 10) bounds the DAG size; pipelines have at least 2
    kernels. *)
val case : ?max_kernels:int -> seed:int -> int -> Kfuse_ir.Pipeline.t

(** Structural features of a generated pipeline, derived (not tracked),
    for the runner's coverage summary. *)
type features = {
  kernels : int;
  inputs : int;
  conv : bool;  (** a dense odd-square convolution body *)
  asymmetric : bool;  (** some kernel's tap set is not centrally symmetric *)
  select : bool;
  let_reuse : bool;
  reduce : bool;
  param : bool;
  fanout : bool;  (** some kernel output consumed by >= 2 kernels *)
  diamond : bool;  (** >= 2 distinct directed paths between some kernel pair *)
  border_kinds : int;  (** distinct border modes appearing on any tap *)
  temporal : bool;
      (** inputs follow the streaming convention ([prev]/[prevN] lags,
          see {!Kfuse_ir.Temporal}) — roughly a quarter of cases *)
}

val features : Kfuse_ir.Pipeline.t -> features

(** [feature_flags f] renders the boolean features as labelled flags, in
    a fixed order, for aggregation into a coverage table. *)
val feature_flags : features -> (string * bool) list
