(** Graphviz DOT rendering of pipeline DAGs.

    Renders a pipeline in the style of the paper's Figure 3: kernels as
    nodes (shaped by compute pattern), data dependences as edges, with
    optional edge weights from the benefit model and optional partition
    blocks drawn as colored clusters.  Feed the output to `dot -Tsvg`. *)

(** [emit ?partition ?edge_labels pipeline] renders the DAG.
    [partition] groups kernels into clusters (one color per block, blocks
    of size 1 uncolored); [edge_labels] supplies a label per DAG edge
    (e.g. benefit weights).  Unlabeled edges stay bare. *)
val emit :
  ?partition:Kfuse_graph.Partition.t ->
  ?edge_labels:(int -> int -> string option) ->
  Kfuse_ir.Pipeline.t ->
  string
