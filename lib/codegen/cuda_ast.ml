type expr =
  | Int_lit of int
  | Float_lit of float
  | Double_lit of float
  | Ident of string
  | Call of string * expr list
  | Binop of string * expr * expr
  | Unop of string * expr
  | Ternary of expr * expr * expr
  | Index of expr * expr

type stmt =
  | Decl of { ctype : string; name : string; init : expr option }
  | Assign of expr * expr
  | If of { cond : expr; then_ : stmt list; else_ : stmt list }
  | For of { var : string; from_ : expr; below : expr; step : int; body : stmt list }
  | Pragma of string
  | Expr_stmt of expr
  | Return
  | Comment of string

type param = { ctype : string; name : string }

type func = {
  qualifiers : string list;
  ret : string;
  name : string;
  params : param list;
  body : stmt list;
}

let int_lit i = Int_lit i
let float_lit f = Float_lit f
let ident s = Ident s
let call f args = Call (f, args)
let ( +: ) a b = Binop ("+", a, b)
let ( -: ) a b = Binop ("-", a, b)
let ( *: ) a b = Binop ("*", a, b)
let ( /: ) a b = Binop ("/", a, b)
let ( <: ) a b = Binop ("<", a, b)
let ( >=: ) a b = Binop (">=", a, b)
let ( &&: ) a b = Binop ("&&", a, b)
let ( ||: ) a b = Binop ("||", a, b)
let index a i = Index (a, i)
let double_lit f = Double_lit f

(* The [for (v = a; v < b; v += step)] shape only terminates for a
   positive step; catch the degenerate loop when the AST is built, not
   when the generated C spins forever. *)
let for_ ~var ~from_ ~below ?(step = 1) body =
  if step < 1 then
    invalid_arg
      (Printf.sprintf "Cuda_ast.for_: nonpositive step %d in loop over %s" step var);
  For { var; from_; below; step; body }
