(** Unsharp masking filter (Section V-B, after Ramponi's cubic unsharp
    masking).

    "The implementation consists of a local kernel that blurs the image
    followed by three point kernels to amplify the high-frequency
    components"; the DAG has the shape of Figure 2b — all four kernels
    read the source image.  The basic technique regards the shared input
    as an external dependence and rejects every pair; the optimized
    technique fuses the whole pipeline into a single kernel, which is
    where the paper's largest speedup (up to 3.4x) comes from. *)

module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Mask = Kfuse_image.Mask
module Border = Kfuse_image.Border

let default_width = 2048
let default_height = 2048

(** [pipeline ?width ?height ()] is the unsharp pipeline.  The sharpening
    strength is the parameter ["lambda"] (default 0.6). *)
let pipeline ?(width = default_width) ?(height = default_height) () =
  let border = Border.Clamp in
  let open Expr in
  let blur =
    Kernel.map ~name:"blur" ~inputs:[ "in" ] (conv ~border Mask.gaussian_3x3 "in")
  in
  let highfreq =
    Kernel.map ~name:"highfreq" ~inputs:[ "in"; "blur" ] (input "in" - input "blur")
  in
  let cubic =
    (* Cubic correction term: the high-frequency signal scaled by the
       squared local intensity emphasizes detail in bright regions. *)
    Kernel.map ~name:"cubic" ~inputs:[ "in"; "highfreq" ]
      (input "in" * input "in" * input "highfreq")
  in
  let sharpened =
    Kernel.map ~name:"sharpened" ~inputs:[ "in"; "cubic" ]
      (input "in" + (param "lambda" * input "cubic"))
  in
  Pipeline.create ~name:"unsharp" ~width ~height ~params:[ ("lambda", 0.6) ]
    ~inputs:[ "in" ]
    [ blur; highfreq; cubic; sharpened ]
