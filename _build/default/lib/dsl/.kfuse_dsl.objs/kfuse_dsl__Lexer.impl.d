lib/dsl/lexer.ml: Ast List Printf String
