module Iset = Kfuse_util.Iset
module Rng = Kfuse_util.Rng

(* Union-find over vertex indices with group tracking by representative. *)
type uf = { parent : int array; rank : int array }

let uf_create n = { parent = Array.init n Fun.id; rank = Array.make n 0 }

let rec uf_find uf i =
  if uf.parent.(i) = i then i
  else begin
    let root = uf_find uf uf.parent.(i) in
    uf.parent.(i) <- root;
    root
  end

let uf_union uf a b =
  let ra = uf_find uf a and rb = uf_find uf b in
  if ra = rb then false
  else begin
    if uf.rank.(ra) < uf.rank.(rb) then uf.parent.(ra) <- rb
    else if uf.rank.(ra) > uf.rank.(rb) then uf.parent.(rb) <- ra
    else begin
      uf.parent.(rb) <- ra;
      uf.rank.(ra) <- uf.rank.(ra) + 1
    end;
    true
  end

let contract_once rng g =
  let verts = Array.of_list (Iset.elements (Wgraph.vertices g)) in
  let n = Array.length verts in
  if n < 2 then invalid_arg "Karger.contract_once: need at least 2 vertices";
  let index = Hashtbl.create n in
  Array.iteri (fun i v -> Hashtbl.replace index v i) verts;
  let edges =
    Array.of_list
      (List.map
         (fun (u, v, w) -> (Hashtbl.find index u, Hashtbl.find index v, w))
         (Wgraph.edges g))
  in
  let uf = uf_create n in
  let components = ref n in
  let total_weight e = Array.fold_left (fun acc (_, _, w) -> acc +. w) 0.0 e in
  (* Contract until two supervertices remain (or no contractible edge is
     left — the disconnected case). *)
  let live = ref edges in
  let exhausted = ref false in
  while !components > 2 && not !exhausted do
    let live_edges =
      Array.of_list
        (List.filter (fun (u, v, _) -> uf_find uf u <> uf_find uf v)
           (Array.to_list !live))
    in
    live := live_edges;
    if Array.length live_edges = 0 then exhausted := true
    else begin
      (* Weighted pick: position uniform in the cumulative weight. *)
      let target = Rng.float rng (total_weight live_edges) in
      let picked = ref (Array.length live_edges - 1) in
      let acc = ref 0.0 in
      (try
         Array.iteri
           (fun i (_, _, w) ->
             acc := !acc +. w;
             if !acc >= target then begin
               picked := i;
               raise Exit
             end)
           live_edges
       with Exit -> ());
      let u, v, _ = live_edges.(!picked) in
      if uf_union uf u v then decr components
    end
  done;
  (* One side: all original vertices whose representative matches the
     first vertex's representative. *)
  let rep0 = uf_find uf 0 in
  let side =
    Array.to_list verts
    |> List.mapi (fun i v -> (i, v))
    |> List.filter_map (fun (i, v) -> if uf_find uf i = rep0 then Some v else None)
    |> Iset.of_list
  in
  (Wgraph.cut_weight g side, side)

let min_cut ?attempts rng g =
  Kfuse_util.Faults.hit "cut.karger";
  let n = Iset.cardinal (Wgraph.vertices g) in
  if n < 2 then invalid_arg "Karger.min_cut: need at least 2 vertices";
  let attempts =
    match attempts with
    | Some a when a >= 1 -> a
    | Some _ -> invalid_arg "Karger.min_cut: attempts must be positive"
    | None ->
      let fn = float_of_int n in
      max 1 (int_of_float (Float.ceil (fn *. fn *. Float.log (Float.max 2.0 fn))))
  in
  let best = ref (contract_once rng g) in
  for _ = 2 to attempts do
    let candidate = contract_once rng g in
    if fst candidate < fst !best then best := candidate
  done;
  !best
