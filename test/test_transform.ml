(* Tests for Kfuse_fusion.Transform: register forwarding, recomputation,
   border-correct fusion via index exchange (Figure 4). *)

module F = Kfuse_fusion
module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Eval = Kfuse_ir.Eval
module Image = Kfuse_image.Image
module Mask = Kfuse_image.Mask
module Border = Kfuse_image.Border
module Iset = Kfuse_util.Iset

let rng = Kfuse_util.Rng.create 2024

let fresh_image ~width ~height = Image.random rng ~width ~height ~lo:0.0 ~hi:10.0

let compare_fused ?(eps = 1e-9) p partition =
  let inputs =
    List.map (fun n -> (n, fresh_image ~width:p.Pipeline.width ~height:p.Pipeline.height))
      p.Pipeline.inputs
  in
  let env = Eval.env_of_list inputs in
  let reference = Eval.run_outputs p env in
  let fused = F.Transform.apply p partition in
  let outputs = Eval.run_outputs fused env in
  List.iter2
    (fun (n1, a) (n2, b) ->
      Alcotest.(check string) "same output name" n1 n2;
      Alcotest.(check bool)
        (Printf.sprintf "output %s equal (maxdiff %g)" n1 (Image.max_abs_diff a b))
        true
        (Image.max_abs_diff a b <= eps))
    reference outputs;
  fused

let test_point_chain_fuses_to_one () =
  let open Expr in
  let p =
    Pipeline.create ~name:"chain" ~width:16 ~height:12 ~inputs:[ "in" ]
      [
        Kernel.map ~name:"a" ~inputs:[ "in" ] (input "in" * Const 2.0);
        Kernel.map ~name:"b" ~inputs:[ "a" ] (input "a" + Const 1.0);
        Kernel.map ~name:"c" ~inputs:[ "b" ] (sqrt (input "b"));
      ]
  in
  let fused = compare_fused p [ Helpers.set_of [ 0; 1; 2 ] ] in
  Alcotest.(check int) "one kernel" 1 (Pipeline.num_kernels fused);
  Alcotest.(check string) "named after sink" "c" (Pipeline.kernel fused 0).Kernel.name;
  Alcotest.(check (list string)) "reads the pipeline input" [ "in" ]
    (Pipeline.kernel fused 0).Kernel.inputs

let test_multi_use_gets_register () =
  (* A consumer reading the producer twice at offset 0 must produce a Let
     (single register write), not a duplicated body. *)
  let open Expr in
  let p =
    Pipeline.create ~name:"sq" ~width:8 ~height:8 ~inputs:[ "in" ]
      [
        Kernel.map ~name:"a" ~inputs:[ "in" ] (input "in" + Const 1.0);
        Kernel.map ~name:"b" ~inputs:[ "a" ] (input "a" * input "a");
      ]
  in
  let fused = F.Transform.fuse_block p (Helpers.set_of [ 0; 1 ]) in
  let rec has_let = function
    | Expr.Let _ -> true
    | Expr.Const _ | Expr.Param _ | Expr.Input _ | Expr.Var _ -> false
    | Expr.Unop (_, a) -> has_let a
    | Expr.Binop (_, a, b) -> has_let a || has_let b
    | Expr.Select { lhs; rhs; if_true; if_false; _ } ->
      List.exists has_let [ lhs; rhs; if_true; if_false ]
    | Expr.Shift { body; _ } -> has_let body
  in
  Alcotest.(check bool) "has register binding" true (has_let (Kernel.body fused))

let test_single_use_inlines_directly () =
  let open Expr in
  let p =
    Pipeline.create ~name:"s" ~width:8 ~height:8 ~inputs:[ "in" ]
      [
        Kernel.map ~name:"a" ~inputs:[ "in" ] (input "in" * Const 2.0);
        Kernel.map ~name:"b" ~inputs:[ "a" ] (input "a" + Const 1.0);
      ]
  in
  let fused = F.Transform.fuse_block p (Helpers.set_of [ 0; 1 ]) in
  Alcotest.check Helpers.expr "inlined"
    ((input "in" * Const 2.0) + Const 1.0)
    (Kernel.body fused)

let conv_chain b1 b2 m1 m2 =
  Pipeline.create ~name:"cc" ~width:11 ~height:9 ~inputs:[ "in" ]
    [
      Kernel.map ~name:"c1" ~inputs:[ "in" ] (Expr.conv ~border:b1 m1 "in");
      Kernel.map ~name:"c2" ~inputs:[ "c1" ] (Expr.conv ~border:b2 m2 "c1");
    ]

let test_local_to_local_exchange_exact () =
  (* Index-exchange fusion is pixel-exact for every border combination,
     including mixed producer/consumer modes (Figure 4c generalized). *)
  List.iter
    (fun (b1, b2) ->
      ignore
        (compare_fused ~eps:1e-9
           (conv_chain b1 b2 Mask.gaussian_3x3 Mask.gaussian_5x5)
           [ Helpers.set_of [ 0; 1 ] ]))
    [
      (Border.Clamp, Border.Clamp);
      (Border.Mirror, Border.Mirror);
      (Border.Repeat, Border.Repeat);
      (Border.Clamp, Border.Mirror);
      (Border.Mirror, Border.Repeat);
      (Border.Constant 0.5, Border.Clamp);
      (Border.Clamp, Border.Constant 0.25);
      (Border.Constant 1.0, Border.Constant 0.0);
    ]

let test_naive_fusion_wrong_in_halo () =
  (* Figure 4b: without index exchange, clamp borders give wrong halo
     values but the interior is still correct. *)
  let p = conv_chain Border.Clamp Border.Clamp Mask.gaussian_3x3 Mask.gaussian_3x3 in
  let img = fresh_image ~width:11 ~height:9 in
  let env = Eval.env_of_list [ ("in", img) ] in
  let reference = snd (List.hd (Eval.run_outputs p env)) in
  let naive = F.Transform.apply ~exchange:false p [ Helpers.set_of [ 0; 1 ] ] in
  let out = snd (List.hd (Eval.run_outputs naive env)) in
  Alcotest.(check bool) "halo differs" true (Image.max_abs_diff reference out > 1e-6);
  (* Interior (radius 2 for two 3x3 kernels) must agree. *)
  let ok = ref true in
  for y = 2 to 6 do
    for x = 2 to 8 do
      if Float.abs (Image.get reference x y -. Image.get out x y) > 1e-9 then ok := false
    done
  done;
  Alcotest.(check bool) "interior agrees" true !ok

let test_figure4_values () =
  let img =
    Image.of_rows
      [
        [ 1.; 3.; 7.; 7.; 6. ]; [ 3.; 7.; 9.; 6.; 8. ]; [ 5.; 4.; 3.; 2.; 1. ];
        [ 4.; 1.; 2.; 1.; 2. ]; [ 5.; 2.; 2.; 4.; 2. ];
      ]
  in
  let g = Mask.gaussian_3x3_unnormalized in
  let p =
    Pipeline.create ~name:"fig4" ~width:5 ~height:5 ~inputs:[ "in" ]
      [
        Kernel.map ~name:"c1" ~inputs:[ "in" ] (Expr.conv ~border:Border.Clamp g "in");
        Kernel.map ~name:"c2" ~inputs:[ "c1" ] (Expr.conv ~border:Border.Clamp g "c1");
      ]
  in
  let env = Eval.env_of_list [ ("in", img) ] in
  let reference = snd (List.hd (Eval.run_outputs p env)) in
  Alcotest.check (Helpers.float_close ()) "unfused top-left = 763 (Fig 4c)" 763.0
    (Image.get reference 0 0);
  let fused = F.Transform.apply ~exchange:true p [ Helpers.set_of [ 0; 1 ] ] in
  let naive = F.Transform.apply ~exchange:false p [ Helpers.set_of [ 0; 1 ] ] in
  Alcotest.check (Helpers.float_close ()) "exchange fused = 763" 763.0
    (Image.get (snd (List.hd (Eval.run_outputs fused env))) 0 0);
  (* The paper prints 648 for the naive value, but its own intermediate
     matrix [16 24 56; 24 34 68; 48 57 82] convolves to 684. *)
  Alcotest.check (Helpers.float_close ()) "naive fused = 684 (Fig 4b modulo typo)" 684.0
    (Image.get (snd (List.hd (Eval.run_outputs naive env))) 0 0)

let test_three_level_local_chain () =
  (* Nested exchange: three chained convolutions fused into one kernel. *)
  let open Expr in
  let p =
    Pipeline.create ~name:"c3" ~width:9 ~height:8 ~inputs:[ "in" ]
      [
        Kernel.map ~name:"c1" ~inputs:[ "in" ]
          (conv ~border:Border.Mirror Mask.gaussian_3x3 "in");
        Kernel.map ~name:"c2" ~inputs:[ "c1" ]
          (conv ~border:Border.Clamp Mask.gaussian_3x3 "c1");
        Kernel.map ~name:"c3" ~inputs:[ "c2" ]
          (conv ~border:Border.Clamp Mask.gaussian_3x3 "c2");
      ]
  in
  let fused = compare_fused p [ Helpers.set_of [ 0; 1; 2 ] ] in
  Alcotest.(check int) "single kernel" 1 (Pipeline.num_kernels fused);
  (* Total radius 3. *)
  Alcotest.(check int) "accumulated radius" 3 (Kernel.radius (Pipeline.kernel fused 0))

let test_partial_partition () =
  (* Fusing only part of a pipeline leaves the rest intact. *)
  let open Expr in
  let p =
    Pipeline.create ~name:"mix" ~width:8 ~height:8 ~inputs:[ "in" ]
      [
        Kernel.map ~name:"a" ~inputs:[ "in" ] (input "in" * Const 2.0);
        Kernel.map ~name:"b" ~inputs:[ "a" ] (input "a" + Const 1.0);
        Kernel.map ~name:"c" ~inputs:[ "b" ] (input "b" * Const 3.0);
      ]
  in
  let fused = compare_fused p [ Helpers.set_of [ 0; 1 ]; Helpers.set_of [ 2 ] ] in
  Alcotest.(check int) "two kernels" 2 (Pipeline.num_kernels fused);
  Alcotest.(check bool) "b survives as fused name" true
    (Option.is_some (Pipeline.index_of fused "b"))

let test_invalid_partition_rejected () =
  let open Expr in
  let p =
    Pipeline.create ~name:"v" ~width:4 ~height:4 ~inputs:[ "in" ]
      [ Kernel.map ~name:"a" ~inputs:[ "in" ] (input "in") ]
  in
  Helpers.expect_invalid "not covering" (fun () -> F.Transform.apply p []);
  Helpers.expect_invalid "empty block" (fun () ->
      F.Transform.fuse_block p Iset.empty)

let test_multi_sink_block_rejected () =
  let open Expr in
  let p =
    Pipeline.create ~name:"ms" ~width:4 ~height:4 ~inputs:[ "in" ]
      [
        Kernel.map ~name:"a" ~inputs:[ "in" ] (input "in" * Const 2.0);
        Kernel.map ~name:"b" ~inputs:[ "in" ] (input "in" + Const 1.0);
      ]
  in
  Helpers.expect_invalid "two sinks" (fun () ->
      F.Transform.fuse_block p (Helpers.set_of [ 0; 1 ]))

let test_shared_input_fusion () =
  (* Figure 2b shape (unsharp-like): all kernels read the input. *)
  let open Expr in
  let p =
    Pipeline.create ~name:"f2b" ~width:10 ~height:10 ~inputs:[ "in" ]
      [
        Kernel.map ~name:"blur" ~inputs:[ "in" ] (conv Mask.gaussian_3x3 "in");
        Kernel.map ~name:"hf" ~inputs:[ "in"; "blur" ] (input "in" - input "blur");
        Kernel.map ~name:"out" ~inputs:[ "in"; "hf" ]
          (input "in" + (Const 0.5 * input "hf"));
      ]
  in
  let fused = compare_fused p [ Helpers.set_of [ 0; 1; 2 ] ] in
  Alcotest.(check int) "single kernel" 1 (Pipeline.num_kernels fused);
  Alcotest.(check (list string)) "only external input" [ "in" ]
    (Pipeline.kernel fused 0).Kernel.inputs

(* A full diamond (a feeds b and c, d joins them) fuses to one kernel
   with the sink's name, reading only the external input, and stays
   pixel-exact — the join must not double-apply a's border handling. *)
let test_diamond_block_fuses_exact () =
  let open Expr in
  let p =
    Pipeline.create ~name:"diamond" ~width:12 ~height:9 ~inputs:[ "in" ]
      [
        Kernel.map ~name:"a" ~inputs:[ "in" ] (conv ~border:Border.Mirror Mask.gaussian_3x3 "in");
        Kernel.map ~name:"b" ~inputs:[ "a" ] (input ~dx:1 ~border:Border.Clamp "a" * Const 0.5);
        Kernel.map ~name:"c" ~inputs:[ "a" ] (input ~dy:(-1) ~border:Border.Repeat "a" + Const 1.0);
        Kernel.map ~name:"d" ~inputs:[ "b"; "c" ] (input "b" + input "c");
      ]
  in
  let fused = compare_fused p [ Helpers.set_of [ 0; 1; 2; 3 ] ] in
  Alcotest.(check int) "single kernel" 1 (Pipeline.num_kernels fused);
  Alcotest.(check string) "named after the sink" "d" (Pipeline.kernel fused 0).Kernel.name;
  Alcotest.(check (list string)) "reads exactly the external input" [ "in" ]
    (Pipeline.kernel fused 0).Kernel.inputs

(* A partial block in the middle of the diamond: [a] stays external to
   the fused kernel, which must list it (and nothing else) as input. *)
let test_partial_diamond_block_externals () =
  let open Expr in
  let p =
    Pipeline.create ~name:"partial" ~width:12 ~height:9 ~inputs:[ "in" ]
      [
        Kernel.map ~name:"a" ~inputs:[ "in" ] (conv Mask.gaussian_3x3 "in");
        Kernel.map ~name:"b" ~inputs:[ "a" ] (input "a" * Const 0.5);
        Kernel.map ~name:"c" ~inputs:[ "a" ] (input "a" + Const 1.0);
        Kernel.map ~name:"d" ~inputs:[ "b"; "c" ] (input "b" + input "c");
      ]
  in
  let k = F.Transform.fuse_block p (Helpers.set_of [ 1; 2; 3 ]) in
  Alcotest.(check string) "named after the sink" "d" k.Kernel.name;
  Alcotest.(check (list string)) "a is the only external" [ "a" ] k.Kernel.inputs

(* fuse_block refuses a global (reduce) kernel inside a block: reduction
   has no per-pixel body to substitute. *)
let test_reduce_kernel_unfusable () =
  let open Expr in
  let p =
    Pipeline.create ~name:"red" ~width:8 ~height:8 ~inputs:[ "in" ]
      [
        Kernel.map ~name:"sq" ~inputs:[ "in" ] (input "in" * input "in");
        Kernel.reduce ~name:"sum" ~inputs:[ "sq" ] ~init:0.0 ~combine:Expr.Add
          (input "sq");
      ]
  in
  Helpers.expect_invalid "global kernel in block" (fun () ->
      F.Transform.fuse_block p (Helpers.set_of [ 0; 1 ]))

let suite =
  [
    Alcotest.test_case "point chain fuses to one" `Quick test_point_chain_fuses_to_one;
    Alcotest.test_case "multi-use gets register (Let)" `Quick test_multi_use_gets_register;
    Alcotest.test_case "single use inlines directly" `Quick test_single_use_inlines_directly;
    Alcotest.test_case "local-to-local exchange exact" `Quick test_local_to_local_exchange_exact;
    Alcotest.test_case "naive fusion wrong in halo" `Quick test_naive_fusion_wrong_in_halo;
    Alcotest.test_case "Figure 4 numeric values" `Quick test_figure4_values;
    Alcotest.test_case "three-level local chain" `Quick test_three_level_local_chain;
    Alcotest.test_case "partial partition" `Quick test_partial_partition;
    Alcotest.test_case "invalid partitions rejected" `Quick test_invalid_partition_rejected;
    Alcotest.test_case "multi-sink block rejected" `Quick test_multi_sink_block_rejected;
    Alcotest.test_case "shared-input fusion (Fig 2b)" `Quick test_shared_input_fusion;
    Alcotest.test_case "diamond block fuses exactly" `Quick test_diamond_block_fuses_exact;
    Alcotest.test_case "partial diamond externals" `Quick test_partial_diamond_block_externals;
    Alcotest.test_case "reduce kernel unfusable" `Quick test_reduce_kernel_unfusable;
  ]
