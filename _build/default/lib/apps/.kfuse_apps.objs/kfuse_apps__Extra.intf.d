lib/apps/extra.mli: Kfuse_ir
