lib/ir/compile.mli: Expr Kfuse_image
