lib/image/region.ml: Format List
