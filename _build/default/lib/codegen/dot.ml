module Iset = Kfuse_util.Iset
module Digraph = Kfuse_graph.Digraph
module Pipeline = Kfuse_ir.Pipeline
module Kernel = Kfuse_ir.Kernel

let block_colors =
  [| "#a6cee3"; "#b2df8a"; "#fdbf6f"; "#cab2d6"; "#fb9a99"; "#ffff99"; "#1f78b4"; "#33a02c" |]

let node_shape (k : Kernel.t) =
  match Kernel.pattern k with
  | Kernel.Point -> "ellipse"
  | Kernel.Local _ -> "box"
  | Kernel.Global -> "hexagon"

let emit ?partition ?edge_labels (p : Pipeline.t) =
  let buf = Buffer.create 1024 in
  let b fmt = Printf.bprintf buf fmt in
  let g = Pipeline.dag p in
  b "digraph %s {\n" (Lower_common.sanitize p.Pipeline.name);
  b "  rankdir=TB;\n  node [fontname=\"Helvetica\", fontsize=11];\n";
  (* Pipeline inputs as plain sources. *)
  List.iter
    (fun i ->
      b "  input_%s [label=\"%s\", shape=plaintext, fontcolor=gray40];\n"
        (Lower_common.sanitize i) i)
    p.Pipeline.inputs;
  let name i = (Pipeline.kernel p i).Kernel.name in
  let node_line i =
    let k = Pipeline.kernel p i in
    Printf.sprintf
      "    k%d [label=\"%s\\n%s\", shape=%s];\n" i k.Kernel.name
      (Kernel.pattern_to_string (Kernel.pattern k))
      (node_shape k)
  in
  (match partition with
  | None ->
    Digraph.fold_vertices (fun i () -> b "  %s" (String.trim (node_line i)); b "\n") g ()
  | Some blocks ->
    List.iteri
      (fun bi block ->
        if Iset.cardinal block >= 2 then begin
          b "  subgraph cluster_%d {\n" bi;
          b "    style=filled; color=\"%s\"; label=\"fused\";\n"
            block_colors.(bi mod Array.length block_colors);
          Iset.iter (fun i -> b "%s" (node_line i)) block;
          b "  }\n"
        end
        else Iset.iter (fun i -> b "  %s" (node_line i)) block)
      (Kfuse_graph.Partition.normalize blocks));
  (* Input edges. *)
  Digraph.fold_vertices
    (fun i () ->
      List.iter
        (fun img ->
          if Pipeline.producer p img = None then
            b "  input_%s -> k%d [color=gray60];\n" (Lower_common.sanitize img) i)
        (Pipeline.kernel p i).Kernel.inputs)
    g ();
  (* Dependence edges. *)
  List.iter
    (fun (u, v) ->
      let label =
        match edge_labels with
        | Some f -> ( match f u v with Some l -> Printf.sprintf " [label=\"%s\"]" l | None -> "")
        | None -> ""
      in
      ignore (name u);
      b "  k%d -> k%d%s;\n" u v label)
    (Digraph.edges g);
  b "}\n";
  Buffer.contents buf
