bench/exp_tables.ml: Kfuse_gpu Kfuse_util List Paper_data Printf Runner
