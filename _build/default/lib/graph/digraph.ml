module Iset = Kfuse_util.Iset
module Imap = Kfuse_util.Imap

(* Invariant: [succ] and [pred] have exactly the same key set (the vertex
   set), and [v in succ u] iff [u in pred v]. *)
type t = { succ : Iset.t Imap.t; pred : Iset.t Imap.t }

let empty = { succ = Imap.empty; pred = Imap.empty }

let mem_vertex g v = Imap.mem v g.succ

let add_vertex g v =
  if mem_vertex g v then g
  else { succ = Imap.add v Iset.empty g.succ; pred = Imap.add v Iset.empty g.pred }

let add_edge g u v =
  if u = v then invalid_arg "Digraph.add_edge: self loop";
  let g = add_vertex (add_vertex g u) v in
  {
    succ = Imap.add u (Iset.add v (Imap.find u g.succ)) g.succ;
    pred = Imap.add v (Iset.add u (Imap.find v g.pred)) g.pred;
  }

let remove_edge g u v =
  if not (mem_vertex g u && mem_vertex g v) then g
  else
    {
      succ = Imap.add u (Iset.remove v (Imap.find u g.succ)) g.succ;
      pred = Imap.add v (Iset.remove u (Imap.find v g.pred)) g.pred;
    }

let succs g v = Imap.find_or ~default:Iset.empty v g.succ
let preds g v = Imap.find_or ~default:Iset.empty v g.pred

let remove_vertex g v =
  if not (mem_vertex g v) then g
  else begin
    let g = Iset.fold (fun w acc -> remove_edge acc v w) (succs g v) g in
    let g = Iset.fold (fun w acc -> remove_edge acc w v) (preds g v) g in
    { succ = Imap.remove v g.succ; pred = Imap.remove v g.pred }
  end

let of_edges es = List.fold_left (fun g (u, v) -> add_edge g u v) empty es

let mem_edge g u v = Iset.mem v (succs g u)

let vertices g = Imap.fold (fun v _ acc -> Iset.add v acc) g.succ Iset.empty

let fold_vertices f g acc = Imap.fold (fun v _ acc -> f v acc) g.succ acc

let fold_edges f g acc =
  Imap.fold (fun u vs acc -> Iset.fold (fun v acc -> f u v acc) vs acc) g.succ acc

let edges g = fold_edges (fun u v acc -> (u, v) :: acc) g [] |> List.rev

let out_degree g v = Iset.cardinal (succs g v)
let in_degree g v = Iset.cardinal (preds g v)
let num_vertices g = Imap.cardinal g.succ
let num_edges g = fold_edges (fun _ _ n -> n + 1) g 0

let induced g vs =
  let keep = Iset.inter vs (vertices g) in
  let base = Iset.fold (fun v acc -> add_vertex acc v) keep empty in
  fold_edges
    (fun u v acc -> if Iset.mem u keep && Iset.mem v keep then add_edge acc u v else acc)
    g base

let equal a b =
  Imap.equal Iset.equal a.succ b.succ

let pp ppf g =
  Format.fprintf ppf "@[<v>vertices: %a@,edges: %a@]" Iset.pp (vertices g)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
       (fun ppf (u, v) -> Format.fprintf ppf "%d->%d" u v))
    (edges g)
