lib/core/explain.mli: Config Kfuse_ir
