(** Run simulation: repeated measurements with noise, as in Figure 6.

    The paper performs 500 runs per implementation per GPU and reports
    box plots.  Here each "run" samples the analytic pipeline time with a
    small multiplicative jitter plus a one-sided tail (real GPU timings
    skew towards occasional slower runs — "the first call to a GPU
    device takes longer", appendix G), from a deterministic generator
    seeded by the experiment identity. *)

type measurement = {
  device : Device.t;
  quality : Perf_model.quality;
  breakdown : Perf_model.kernel_time list;
  model_ms : float;  (** noise-free model time *)
  samples : float array;  (** simulated run times, ms *)
  summary : Kfuse_util.Stats.summary;
}

(** [measure ?params ?runs ?seed ?pool device ~quality ~fused_kernels
    pipeline] prices the pipeline and simulates [runs] (default 500)
    measurements.  The default [seed] hashes the device and pipeline
    names so each experiment cell gets an independent, reproducible
    stream.  Each run draws from its own generator split off the seed,
    so with [pool] the runs are sampled in parallel and the samples are
    bit-identical to a serial measurement. *)
val measure :
  ?params:Perf_model.params ->
  ?runs:int ->
  ?seed:int ->
  ?pool:Kfuse_util.Pool.t ->
  Device.t ->
  quality:Perf_model.quality ->
  fused_kernels:string list ->
  Kfuse_ir.Pipeline.t ->
  measurement

(** [speedup a b] is the ratio of median times [a/b] — the paper derives
    its speedup tables "from the median value of the obtained
    statistics" (appendix F). *)
val speedup : measurement -> measurement -> float
