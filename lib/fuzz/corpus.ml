module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Border = Kfuse_image.Border

type entry = {
  path : string;
  seed : int option;
  index : int option;
  oracle : string option;
  detail : string option;
  pipeline : Pipeline.t;
}

let normalize (p : Pipeline.t) =
  (* The DSL prints [Neg (Const c)] and [Const (-c)] identically, and the
     parser resolves the shared spelling to the literal; fold to the
     literal so the normal form is in the parser's image. *)
  let rec fold_neg e =
    match e with
    | Expr.Unop (Expr.Neg, Expr.Const c) -> Expr.Const (-.c)
    | Expr.Const _ | Expr.Param _ | Expr.Input _ | Expr.Var _ -> e
    | Expr.Let { var; value; body } ->
      Expr.Let { var; value = fold_neg value; body = fold_neg body }
    | Expr.Unop (op, a) -> (
      match Expr.Unop (op, fold_neg a) with
      | Expr.Unop (Expr.Neg, Expr.Const c) -> Expr.Const (-.c)
      | e' -> e')
    | Expr.Binop (op, a, b) -> Expr.Binop (op, fold_neg a, fold_neg b)
    | Expr.Select { cmp; lhs; rhs; if_true; if_false } ->
      Expr.Select
        {
          cmp;
          lhs = fold_neg lhs;
          rhs = fold_neg rhs;
          if_true = fold_neg if_true;
          if_false = fold_neg if_false;
        }
    | Expr.Shift { dx; dy; exchange; body } ->
      Expr.Shift { dx; dy; exchange; body = fold_neg body }
  in
  let fix e =
    Expr.subst_inputs
      (fun ~image ~dx ~dy ~border ->
        let border = if dx = 0 && dy = 0 then Border.Clamp else border in
        Expr.Input { image; dx; dy; border })
      (fold_neg e)
  in
  Pipeline.with_kernels p
    (List.map
       (fun (k : Kernel.t) ->
         match k.Kernel.op with
         | Kernel.Map e -> Kernel.map ~name:k.Kernel.name ~inputs:k.Kernel.inputs (fix e)
         | Kernel.Reduce { init; combine; arg } ->
           Kernel.reduce ~name:k.Kernel.name ~inputs:k.Kernel.inputs ~init ~combine
             (fix arg))
       (Array.to_list p.Pipeline.kernels))

(* Header lines are '#' comments, which the DSL lexer skips, so a corpus
   file is simultaneously metadata and a plain parseable pipeline. *)
let header ?seed ?index ~oracle ~detail () =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "# kfuse-fuzz corpus entry\n";
  (match (seed, index) with
  | Some s, Some i -> Buffer.add_string buf (Printf.sprintf "# seed: %d case: %d\n" s i)
  | Some s, None -> Buffer.add_string buf (Printf.sprintf "# seed: %d\n" s)
  | _ -> ());
  Buffer.add_string buf (Printf.sprintf "# oracle: %s\n" oracle);
  (* Keep the detail single-line so the header stays line-oriented. *)
  let detail = String.map (fun c -> if c = '\n' then ' ' else c) detail in
  Buffer.add_string buf (Printf.sprintf "# detail: %s\n" detail);
  Buffer.contents buf

let rec mkdirs dir =
  if not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let save ~dir ?seed ?index ~oracle ~detail p =
  match Kfuse_dsl.Unparse.pipeline p with
  | Error reason -> Error reason
  | Ok text ->
    mkdirs dir;
    let name =
      Printf.sprintf "%s.pipe" (String.sub (Kfuse_cache.Fingerprint.structural p) 0 16)
    in
    let path = Filename.concat dir name in
    if Sys.file_exists path then Ok path
    else begin
      let tmp = path ^ ".tmp" in
      let oc = open_out tmp in
      output_string oc (header ?seed ?index ~oracle ~detail ());
      output_string oc text;
      close_out oc;
      Sys.rename tmp path;
      Ok path
    end

let scan_header text =
  let seed = ref None and index = ref None and oracle = ref None and detail = ref None in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         let pfx p = String.length line >= String.length p && String.sub line 0 (String.length p) = p in
         let rest p = String.sub line (String.length p) (String.length line - String.length p) in
         (if pfx "# seed: " then
            (* "# seed: S" or "# seed: S case: I" *)
            match String.split_on_char ' ' (rest "# seed: ") with
            | s :: tail -> (
              seed := int_of_string_opt s;
              match tail with
              | "case:" :: i :: _ -> index := int_of_string_opt i
              | _ -> ())
            | [] -> ());
         if pfx "# oracle: " then oracle := Some (rest "# oracle: ");
         if pfx "# detail: " then detail := Some (rest "# detail: "))
  |> ignore;
  (!seed, !index, !oracle, !detail)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_file path =
  match read_file path with
  | exception Sys_error e -> Error e
  | text -> (
    let seed, index, oracle, detail = scan_header text in
    match Kfuse_dsl.Elaborate.parse_pipeline text with
    | Ok pipeline -> Ok { path; seed; index; oracle; detail; pipeline }
    | Error e -> Error e)

let load_dir dir =
  if not (Sys.file_exists dir) then ([], [])
  else begin
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".pipe")
      |> List.sort String.compare
    in
    List.fold_left
      (fun (ok, bad) f ->
        let path = Filename.concat dir f in
        match load_file path with
        | Ok e -> (e :: ok, bad)
        | Error reason -> (ok, (path, reason) :: bad))
      ([], []) files
    |> fun (ok, bad) -> (List.rev ok, List.rev bad)
  end
