(* Tests for Kfuse_gpu: Device, Occupancy, Perf_model, Sim. *)

module G = Kfuse_gpu
module Expr = Kfuse_ir.Expr
module Kernel = Kfuse_ir.Kernel
module Pipeline = Kfuse_ir.Pipeline
module Mask = Kfuse_image.Mask
module Stats = Kfuse_util.Stats

let test_device_catalogue () =
  Alcotest.(check int) "three devices" 3 (List.length G.Device.all);
  Alcotest.(check bool) "find case-insensitive" true
    (match G.Device.find "gtx680" with Some _ -> true | None -> false);
  Alcotest.(check bool) "find by display name" true
    (match G.Device.find "K20C" with Some _ -> true | None -> false);
  Alcotest.(check bool) "unknown" true (G.Device.find "rtx4090" = None)

let test_device_bandwidths () =
  (* Public bus widths give the known peak bandwidths. *)
  let gb d = G.Device.peak_bandwidth_bytes_per_s d /. 1e9 in
  Alcotest.check (Helpers.float_close ~eps:0.1 ()) "GTX745 28.8 GB/s" 28.8
    (gb G.Device.gtx745);
  Alcotest.check (Helpers.float_close ~eps:0.5 ()) "GTX680 192 GB/s" 192.3
    (gb G.Device.gtx680);
  Alcotest.check (Helpers.float_close ~eps:0.5 ()) "K20c 208 GB/s" 208.0 (gb G.Device.k20c)

let test_device_paper_configs () =
  (* Section V-A numbers. *)
  Alcotest.(check int) "GTX745 cores" 384 G.Device.gtx745.G.Device.cuda_cores;
  Alcotest.(check int) "GTX680 cores" 1536 G.Device.gtx680.G.Device.cuda_cores;
  Alcotest.(check int) "K20c cores" 2496 G.Device.k20c.G.Device.cuda_cores;
  List.iter
    (fun d ->
      Alcotest.(check int) "48KB shared" (48 * 1024) d.G.Device.shared_mem_per_sm;
      Alcotest.(check int) "65536 regs" 65536 d.G.Device.registers_per_block)
    G.Device.all

let test_occupancy_unlimited () =
  let o =
    G.Occupancy.compute G.Device.gtx680 ~shared_bytes_per_block:0 ~regs_per_thread:32
      ~threads_per_block:128
  in
  Alcotest.(check int) "block-limited" 16 o.G.Occupancy.active_blocks;
  Alcotest.check (Helpers.float_close ()) "occupancy 1.0" 1.0 o.G.Occupancy.occupancy

let test_occupancy_shared_limited () =
  (* 20 KB per block on a 48 KB SM -> 2 resident blocks. *)
  let o =
    G.Occupancy.compute G.Device.gtx680 ~shared_bytes_per_block:(20 * 1024)
      ~regs_per_thread:32 ~threads_per_block:128
  in
  Alcotest.(check int) "2 blocks" 2 o.G.Occupancy.active_blocks;
  Alcotest.(check bool) "limiter" true (o.G.Occupancy.limiter = `Shared_memory);
  Alcotest.check (Helpers.float_close ()) "occupancy" (256.0 /. 2048.0) o.G.Occupancy.occupancy

let test_occupancy_invalid () =
  Helpers.expect_invalid "block too big" (fun () ->
      G.Occupancy.compute G.Device.gtx680 ~shared_bytes_per_block:(64 * 1024)
        ~regs_per_thread:32 ~threads_per_block:128);
  Helpers.expect_invalid "no threads" (fun () ->
      G.Occupancy.compute G.Device.gtx680 ~shared_bytes_per_block:0 ~regs_per_thread:32
        ~threads_per_block:0)

let test_latency_hiding () =
  Alcotest.check (Helpers.float_close ()) "above knee" 1.0
    (G.Occupancy.latency_hiding_factor 0.75);
  Alcotest.check (Helpers.float_close ()) "at knee" 1.0 (G.Occupancy.latency_hiding_factor 0.5);
  Alcotest.check (Helpers.float_close ()) "half knee" 0.5
    (G.Occupancy.latency_hiding_factor 0.25);
  Alcotest.check (Helpers.float_close ()) "floored" 0.05
    (G.Occupancy.latency_hiding_factor 0.0)

let point_pipeline =
  Pipeline.create ~name:"pp" ~width:1024 ~height:1024 ~inputs:[ "in" ]
    [ Kernel.map ~name:"a" ~inputs:[ "in" ] Expr.(input "in" * Const 2.0) ]

let local_pipeline =
  Pipeline.create ~name:"lp" ~width:1024 ~height:1024 ~inputs:[ "in" ]
    [ Kernel.map ~name:"g" ~inputs:[ "in" ] (Expr.conv Mask.gaussian_3x3 "in") ]

let test_perf_point_traffic () =
  let kt =
    G.Perf_model.kernel_time G.Device.gtx680 ~quality:G.Perf_model.Optimized ~fused:false
      point_pipeline
      (Pipeline.kernel point_pipeline 0)
  in
  (* 1 load + 1 store. *)
  Alcotest.check (Helpers.float_close ()) "2 accesses" 2.0 kt.G.Perf_model.global_accesses_per_px;
  Alcotest.(check int) "no shared" 0 kt.G.Perf_model.shared_bytes;
  Alcotest.(check bool) "memory bound" true
    (kt.G.Perf_model.t_mem_ms > kt.G.Perf_model.t_comp_ms)

let test_perf_local_tile_factor () =
  let kt =
    G.Perf_model.kernel_time G.Device.gtx680 ~quality:G.Perf_model.Optimized ~fused:false
      local_pipeline
      (Pipeline.kernel local_pipeline 0)
  in
  (* Tile factor (34*6)/(32*4) = 1.59375 plus the store. *)
  Alcotest.check (Helpers.float_close ~eps:1e-6 ()) "tile accesses" 2.59375
    kt.G.Perf_model.global_accesses_per_px;
  Alcotest.(check bool) "uses shared" true (kt.G.Perf_model.shared_bytes > 0)

let test_perf_basic_penalty_only_fused () =
  let t quality fused =
    (G.Perf_model.kernel_time G.Device.gtx680 ~quality ~fused point_pipeline
       (Pipeline.kernel point_pipeline 0))
      .G.Perf_model.t_ms
  in
  Alcotest.(check bool) "unfused kernels identical" true
    (Float.equal (t G.Perf_model.Optimized false) (t G.Perf_model.Basic_codegen false));
  Alcotest.(check bool) "fused basic slower" true
    (t G.Perf_model.Basic_codegen true > t G.Perf_model.Optimized true)

let test_perf_pipeline_total () =
  let breakdown, total =
    G.Perf_model.pipeline_time G.Device.gtx680 ~quality:G.Perf_model.Optimized
      ~fused_kernels:[] point_pipeline
  in
  Alcotest.(check int) "one kernel" 1 (List.length breakdown);
  Alcotest.check (Helpers.float_close ~eps:1e-12 ()) "total = sum"
    (List.fold_left (fun acc kt -> acc +. kt.G.Perf_model.t_ms) 0.0 breakdown)
    total

let test_perf_device_ordering () =
  (* Memory-bound point kernel: times order by bandwidth. *)
  let t d =
    snd
      (G.Perf_model.pipeline_time d ~quality:G.Perf_model.Optimized ~fused_kernels:[]
         point_pipeline)
  in
  Alcotest.(check bool) "GTX745 slowest" true (t G.Device.gtx745 > t G.Device.gtx680);
  Alcotest.(check bool) "K20c fastest" true (t G.Device.k20c < t G.Device.gtx680)

let test_sim_reproducible () =
  let m1 =
    G.Sim.measure ~runs:50 G.Device.gtx680 ~quality:G.Perf_model.Optimized
      ~fused_kernels:[] point_pipeline
  in
  let m2 =
    G.Sim.measure ~runs:50 G.Device.gtx680 ~quality:G.Perf_model.Optimized
      ~fused_kernels:[] point_pipeline
  in
  Alcotest.(check bool) "same samples" true (m1.G.Sim.samples = m2.G.Sim.samples)

let test_sim_noise_shape () =
  let m =
    G.Sim.measure ~runs:500 G.Device.gtx680 ~quality:G.Perf_model.Optimized
      ~fused_kernels:[] point_pipeline
  in
  let s = m.G.Sim.summary in
  (* Median close to the model; max whisker above it (one-sided tail). *)
  Alcotest.(check bool) "median near model" true
    (Float.abs (s.Stats.median -. m.G.Sim.model_ms) /. m.G.Sim.model_ms < 0.05);
  Alcotest.(check bool) "tail above" true (s.Stats.max > s.Stats.median);
  Alcotest.(check bool) "ordered" true
    (s.Stats.min <= s.Stats.p25 && s.Stats.p25 <= s.Stats.median
   && s.Stats.median <= s.Stats.p75 && s.Stats.p75 <= s.Stats.max);
  Alcotest.(check int) "500 runs" 500 s.Stats.n

let test_sim_speedup () =
  let fast =
    G.Sim.measure ~runs:20 ~seed:1 G.Device.gtx680 ~quality:G.Perf_model.Optimized
      ~fused_kernels:[] point_pipeline
  in
  let slow =
    G.Sim.measure ~runs:20 ~seed:1 G.Device.gtx745 ~quality:G.Perf_model.Optimized
      ~fused_kernels:[] point_pipeline
  in
  Alcotest.(check bool) "speedup > 1" true (G.Sim.speedup slow fast > 1.0)

let test_sim_invalid_runs () =
  Helpers.expect_invalid "zero runs" (fun () ->
      G.Sim.measure ~runs:0 G.Device.gtx680 ~quality:G.Perf_model.Optimized
        ~fused_kernels:[] point_pipeline)

let test_block_override () =
  (* A squarer block pays less halo for a stencil kernel. *)
  let flat = { Kfuse_ir.Cost.bx = 32; by = 4 } in
  let square = { Kfuse_ir.Cost.bx = 16; by = 16 } in
  let kt b =
    G.Perf_model.kernel_time ~block:b G.Device.gtx680 ~quality:G.Perf_model.Optimized
      ~fused:false local_pipeline
      (Pipeline.kernel local_pipeline 0)
  in
  Alcotest.(check bool) "less traffic" true
    ((kt square).G.Perf_model.global_accesses_per_px
    < (kt flat).G.Perf_model.global_accesses_per_px)

let test_autotune_never_worse () =
  List.iter
    (fun p ->
      List.iter
        (fun d ->
          let choices, tuned, default =
            G.Autotune.tune_pipeline d ~quality:G.Perf_model.Optimized ~fused_kernels:[]
              p
          in
          Alcotest.(check bool) "tuned <= default" true (tuned <= default +. 1e-9);
          List.iter
            (fun (c : G.Autotune.choice) ->
              Alcotest.(check bool) "per kernel" true
                (c.G.Autotune.best_ms <= c.G.Autotune.default_ms +. 1e-9))
            choices)
        G.Device.all)
    [ point_pipeline; local_pipeline ]

let test_autotune_prefers_square_for_stencil () =
  let c =
    G.Autotune.tune_kernel G.Device.gtx680 ~quality:G.Perf_model.Optimized ~fused:false
      local_pipeline
      (Pipeline.kernel local_pipeline 0)
  in
  (* The winner must not be flatter than the default for a radius-1
     stencil (more rows amortize the vertical halo). *)
  Alcotest.(check bool) "taller than 32x4" true (c.G.Autotune.best.Kfuse_ir.Cost.by >= 4)

let test_autotune_empty_candidates () =
  Helpers.expect_invalid "empty candidates" (fun () ->
      G.Autotune.tune_kernel ~candidates:[] G.Device.gtx680
        ~quality:G.Perf_model.Optimized ~fused:false point_pipeline
        (Pipeline.kernel point_pipeline 0))

let suite =
  [
    Alcotest.test_case "device catalogue" `Quick test_device_catalogue;
    Alcotest.test_case "block shape override" `Quick test_block_override;
    Alcotest.test_case "autotune never worse" `Quick test_autotune_never_worse;
    Alcotest.test_case "autotune prefers square stencil blocks" `Quick
      test_autotune_prefers_square_for_stencil;
    Alcotest.test_case "autotune empty candidates" `Quick test_autotune_empty_candidates;
    Alcotest.test_case "device bandwidths" `Quick test_device_bandwidths;
    Alcotest.test_case "device paper configs" `Quick test_device_paper_configs;
    Alcotest.test_case "occupancy unlimited" `Quick test_occupancy_unlimited;
    Alcotest.test_case "occupancy shared-limited" `Quick test_occupancy_shared_limited;
    Alcotest.test_case "occupancy invalid" `Quick test_occupancy_invalid;
    Alcotest.test_case "latency hiding factor" `Quick test_latency_hiding;
    Alcotest.test_case "perf point traffic" `Quick test_perf_point_traffic;
    Alcotest.test_case "perf local tile factor" `Quick test_perf_local_tile_factor;
    Alcotest.test_case "perf basic penalty only fused" `Quick test_perf_basic_penalty_only_fused;
    Alcotest.test_case "perf pipeline total" `Quick test_perf_pipeline_total;
    Alcotest.test_case "perf device ordering" `Quick test_perf_device_ordering;
    Alcotest.test_case "sim reproducible" `Quick test_sim_reproducible;
    Alcotest.test_case "sim noise shape" `Quick test_sim_noise_shape;
    Alcotest.test_case "sim speedup" `Quick test_sim_speedup;
    Alcotest.test_case "sim invalid runs" `Quick test_sim_invalid_runs;
  ]
