(** Random edit sequences over a {!Lazy_pipeline} — the differential
    harness's workload generator.

    An {!edit} is one builder operation; {!random} draws an applicable
    edit for the builder's current state from a seeded
    {!Kfuse_util.Rng.t}, so a (seed, length) pair names a reproducible
    edit sequence.  The generator aims for {e mostly-valid} edits
    (appended kernels read live images, deletions pick unconsumed
    kernels, retargets avoid cycles by a reachability check), but
    {!apply} tolerates rejection — a rejected edit leaves the builder
    unchanged, which the differential test also exercises. *)

type edit =
  | Append of Kfuse_ir.Kernel.t
  | Delete of string  (** kernel name *)
  | Retarget of { kernel : string; from_ : string; to_ : string }
  | Set_param of string * float

val to_string : edit -> string

val apply : Lazy_pipeline.t -> edit -> (unit, Kfuse_util.Diag.t) result

val random : Kfuse_util.Rng.t -> Lazy_pipeline.t -> edit option
(** An edit applicable (with high probability) to the builder's current
    state; [None] when no edit kind applies (no readable images, no
    kernels, no parameters).  Draws: appends of synthesized point,
    stencil (3x3/5x5 convolution) and shifted-difference kernels;
    deletions of currently-unconsumed kernels; read retargets filtered
    through a name-graph reachability check; parameter upserts. *)

val random_sequence : Kfuse_util.Rng.t -> Lazy_pipeline.t -> int -> edit list
(** [random_sequence rng lp n] draws and applies up to [n] random edits
    to [lp], returning the accepted ones in application order (rejected
    draws are skipped, still consuming randomness deterministically). *)
