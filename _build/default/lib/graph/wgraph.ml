module Iset = Kfuse_util.Iset
module Imap = Kfuse_util.Imap

(* Symmetric adjacency: [v in adj u] iff [u in adj v], with equal weight. *)
type t = { adj : float Imap.t Imap.t }

let empty = { adj = Imap.empty }

let add_vertex g v =
  if Imap.mem v g.adj then g else { adj = Imap.add v Imap.empty g.adj }

let add_half adj u v w =
  let row = Imap.find_or ~default:Imap.empty u adj in
  let prev = Imap.find_or ~default:0.0 v row in
  Imap.add u (Imap.add v (prev +. w) row) adj

let add_edge g u v w =
  if u = v then invalid_arg "Wgraph.add_edge: self loop";
  if w <= 0.0 then invalid_arg "Wgraph.add_edge: weight must be positive";
  let g = add_vertex (add_vertex g u) v in
  { adj = add_half (add_half g.adj u v w) v u w }

let of_digraph weight g =
  let base = Iset.fold (fun v acc -> add_vertex acc v) (Digraph.vertices g) empty in
  Digraph.fold_edges (fun u v acc -> add_edge acc u v (weight u v)) g base

let vertices g = Imap.fold (fun v _ acc -> Iset.add v acc) g.adj Iset.empty
let num_vertices g = Imap.cardinal g.adj

let weight g u v =
  match Imap.find_opt u g.adj with
  | None -> 0.0
  | Some row -> Imap.find_or ~default:0.0 v row

let neighbors g v =
  match Imap.find_opt v g.adj with
  | None -> Iset.empty
  | Some row -> Imap.fold (fun u _ acc -> Iset.add u acc) row Iset.empty

let edges g =
  Imap.fold
    (fun u row acc ->
      Imap.fold (fun v w acc -> if u < v then (u, v, w) :: acc else acc) row acc)
    g.adj []
  |> List.sort compare

let total_weight g = List.fold_left (fun acc (_, _, w) -> acc +. w) 0.0 (edges g)

let cut_weight g side =
  List.fold_left
    (fun acc (u, v, w) ->
      if Iset.mem u side <> Iset.mem v side then acc +. w else acc)
    0.0 (edges g)

let is_connected g =
  match Iset.min_elt_opt (vertices g) with
  | None -> true
  | Some start ->
    let rec loop frontier seen =
      match frontier with
      | [] -> seen
      | u :: rest ->
        let fresh = Iset.diff (neighbors g u) seen in
        loop (Iset.elements fresh @ rest) (Iset.union fresh seen)
    in
    let seen = loop [ start ] (Iset.singleton start) in
    Iset.equal seen (vertices g)

let pp ppf g =
  Format.fprintf ppf "@[<v>vertices: %a@,edges:@,%a@]" Iset.pp (vertices g)
    (Format.pp_print_list (fun ppf (u, v, w) ->
         Format.fprintf ppf "  %d -- %d  (%.3f)" u v w))
    (edges g)
