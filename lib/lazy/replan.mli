(** Incremental replanning: cross-flush memoization of Algorithm 1.

    A {!t} is a planning session.  Each {!plan} call runs the min-cut
    recursion ({!Kfuse_fusion.Mincut_fusion.run}) over the given
    pipeline, but consults two memo tables carried across calls:

    - a {e decision memo} keyed by the rename-invariant subgraph
      fingerprint ({!Kfuse_cache.Fingerprint.subgraph}) of each block
      the recursion considers, replaying [Accepted]/[Split] decisions
      for blocks whose induced subgraph (content, iteration space,
      in-block edges, leaving flags) is unchanged since an earlier
      flush; and
    - an {e edge memo} keyed by the content identities of an edge's
      endpoints plus the producer's has-other-consumers flag, replaying
      the benefit model's scored weight for unchanged edges.

    The fingerprints capture exactly what one recursion step reads, so
    a hit replays the decision a fresh computation would produce — the
    partition, trace, objective and fused pipeline are {b bit-identical}
    to planning from scratch (the differential test harness and the
    [incremental-replan] fuzz oracle enforce this).  After every
    memoized run the whole partition is re-checked at the seams with
    {!Kfuse_fusion.Legality.check_partition}; a violation (impossible
    unless the memo is corrupted — the fault point {!seam_fault} exists
    to prove the path) discards both memos and replans from scratch,
    reported via [stats.fell_back].

    Only split {e reasons} are never replayed from the memo: a stored
    reason would carry kernel indices of the pipeline it was computed
    on.  On a split hit the reason is re-derived with one cheap
    {!Kfuse_fusion.Legality.check} against the current pipeline, keeping
    even the human-readable trace identical.  Likewise the edge memo
    stores only legally-scored scenarios; [Illegal] edges are re-scored
    each flush because their reasons also carry indices. *)

(** Work accounting for one {!plan} call. *)
type stats = {
  blocks_reused : int;  (** recursion blocks replayed from the memo *)
  blocks_replanned : int;  (** blocks decided fresh (legality + min-cut) *)
  edges_reused : int;  (** edge weights replayed from the memo *)
  edges_rescored : int;  (** edges re-scored by the benefit model *)
  fell_back : bool;
      (** the seam re-check rejected the memoized partition; the memos
          were discarded and this plan was computed from scratch *)
}

(** A fusion plan for one flushed pipeline. *)
type plan = {
  pipeline : Kfuse_ir.Pipeline.t;  (** the planned (source) pipeline *)
  partition : Kfuse_graph.Partition.t;
  edges : Kfuse_fusion.Benefit.edge_report list;
  steps : Kfuse_fusion.Mincut_fusion.step list;
  objective : float;
  fused : Kfuse_ir.Pipeline.t;  (** partition applied, loops exchanged *)
  fingerprint : string;
      (** digest of (source exact fp, partition, objective, fused exact
          fp): two plans with equal fingerprints are bit-identical, the
          equality the differential harness asserts *)
  stats : stats;
}

type t
(** A planning session: a fusion-model configuration plus the decision
    and edge memos.  Not thread-safe; confine a session to one domain. *)

val create : Kfuse_fusion.Config.t -> t
(** A fresh session with empty memos.
    @raise Invalid_argument on an invalid config. *)

val config : t -> Kfuse_fusion.Config.t

val clear : t -> unit
(** Drop both memos (and the last plan). *)

val memo_size : t -> int * int
(** [(decisions, edges)] currently memoized. *)

val last : t -> plan option
(** The most recent successful plan of this session. *)

val plan :
  ?pool:Kfuse_util.Pool.t ->
  t ->
  Kfuse_ir.Pipeline.t ->
  (plan, Kfuse_util.Diag.t) result
(** [plan t p] validates [p] and runs the memoized min-cut recursion as
    described above.  Never raises: validation failures, fusion faults
    and transform failures come back as diagnostics. *)

val scratch :
  ?pool:Kfuse_util.Pool.t ->
  Kfuse_fusion.Config.t ->
  Kfuse_ir.Pipeline.t ->
  (plan, Kfuse_util.Diag.t) result
(** [scratch config p] is [plan (create config) p]: the identical code
    path with nothing memoized — the differential oracle's reference
    planner. *)

val seam_fault : string
(** ["lazy.seam"]: a corruption point ({!Kfuse_util.Faults.fires}) at
    the post-memo seam re-check.  A triggered hit makes the re-check
    report failure, forcing (and thereby testing) the discard-and-replan
    fallback. *)
