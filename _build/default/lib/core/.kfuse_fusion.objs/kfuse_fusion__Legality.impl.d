lib/core/legality.ml: Config Format Kfuse_graph Kfuse_ir Kfuse_util List Printf String
