lib/gpu/perf_model.mli: Device Format Kfuse_ir
