(** Reference interpreter.

    Executes pipelines on concrete images — the ground truth against
    which every fusion transform is checked.  The paper validates fusion
    correctness by running generated CUDA on hardware; here the
    interpreter plays that role (see DESIGN.md, substitutions). *)

module Env : Map.S with type key = string

type env = Kfuse_image.Image.t Env.t

(** [env_of_list bindings] builds an environment from name/image pairs. *)
val env_of_list : (string * Kfuse_image.Image.t) list -> env

(** [eval_expr ~env ~params ~width ~height ~x ~y e] evaluates [e] at
    position [(x, y)] of a [width x height] iteration space.
    [Shift] exchange is resolved against that iteration space.
    @raise Invalid_argument on an unbound image or parameter, on an
    [Undefined]-border access that leaves the image, or on a [Shift]
    exchange that resolves to [Undef]. *)
val eval_expr :
  env:env ->
  params:(string * float) list ->
  width:int ->
  height:int ->
  x:int ->
  y:int ->
  Expr.t ->
  float

(** [run_kernel ~env ~params ~width ~height k] materializes the output
    image of kernel [k]: [width x height] for map kernels, [1 x 1] for
    global reductions. *)
val run_kernel :
  env:env -> params:(string * float) list -> width:int -> height:int -> Kernel.t ->
  Kfuse_image.Image.t

(** [run p inputs] executes all kernels of [p] in topological order on
    one image plane.  [inputs] must bind exactly the pipeline inputs,
    each of the pipeline's extent.  The result binds inputs and every
    kernel output.  Parameter values are the pipeline defaults overridden
    by [params].
    @raise Invalid_argument on missing/extra/ill-sized inputs. *)
val run : ?params:(string * float) list -> Pipeline.t -> env -> env

(** [run_outputs p inputs] is [run] restricted to the pipeline's sink
    images, sorted by name (stable across pipeline transformations). *)
val run_outputs :
  ?params:(string * float) list -> Pipeline.t -> env -> (string * Kfuse_image.Image.t) list
