lib/image/convolve.ml: Border Image Mask Region
