type mode = Clamp | Mirror | Repeat | Constant of float | Undefined

type resolved = Inside of int * int | Const_value of float | Undef

let clamp_axis n i = if i < 0 then 0 else if i >= n then n - 1 else i

(* Reflection without edge repetition: ... 2 1 | 0 1 2 ... n-1 | n-2 n-3 ...
   The pattern has period 2n - 2 (for n >= 2). *)
let mirror_axis n i =
  if n = 1 then 0
  else begin
    let period = (2 * n) - 2 in
    let m = ((i mod period) + period) mod period in
    if m < n then m else period - m
  end

let repeat_axis n i = ((i mod n) + n) mod n

let resolve_axis mode n i =
  if i >= 0 && i < n then Some i
  else
    match mode with
    | Clamp -> Some (clamp_axis n i)
    | Mirror -> Some (mirror_axis n i)
    | Repeat -> Some (repeat_axis n i)
    | Constant _ | Undefined -> None

let resolve mode ~width ~height x y =
  if width <= 0 || height <= 0 then invalid_arg "Border.resolve: empty extent";
  if x >= 0 && x < width && y >= 0 && y < height then Inside (x, y)
  else
    match (resolve_axis mode width x, resolve_axis mode height y) with
    | Some x', Some y' -> Inside (x', y')
    | _ -> ( match mode with
      | Constant c -> Const_value c
      | Undefined -> Undef
      | Clamp | Mirror | Repeat -> assert false)

let equal a b =
  match (a, b) with
  | Clamp, Clamp | Mirror, Mirror | Repeat, Repeat | Undefined, Undefined -> true
  | Constant x, Constant y -> Float.equal x y
  | (Clamp | Mirror | Repeat | Constant _ | Undefined), _ -> false

let to_string = function
  | Clamp -> "clamp"
  | Mirror -> "mirror"
  | Repeat -> "repeat"
  | Constant c -> Printf.sprintf "constant(%g)" c
  | Undefined -> "undefined"

let pp ppf m = Format.pp_print_string ppf (to_string m)
