lib/gpu/device.mli: Format
