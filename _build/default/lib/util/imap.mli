(** Maps keyed by integer identifiers. *)

include Map.S with type key = int

(** [find_or ~default k m] is the binding of [k] in [m], or [default] when
    [k] is unbound. *)
val find_or : default:'a -> int -> 'a t -> 'a

(** [keys m] is the list of keys of [m] in increasing order. *)
val keys : 'a t -> int list
