(* Experiment eventsim: cross-validation of the analytic roofline model
   against the discrete-event processor-sharing simulator (one
   deterministic run per cell; the 500-run noise stays in fig6). *)

module F = Kfuse_fusion
module G = Kfuse_gpu
module Ir = Kfuse_ir

let run () =
  print_endline "=== eventsim: analytic roofline vs discrete-event simulator (ms) ===";
  Printf.printf "%-10s %-8s %12s %12s %9s %10s\n" "app" "device" "analytic" "event-sim"
    "ratio" "events";
  List.iter
    (fun (app : Kfuse_apps.Registry.entry) ->
      let p = app.Kfuse_apps.Registry.pipeline () in
      let r = F.Driver.run Runner.config F.Driver.Mincut p in
      let fused = Runner.fused_names p r in
      List.iter
        (fun (d : G.Device.t) ->
          let _, analytic =
            G.Perf_model.pipeline_time d ~quality:G.Perf_model.Optimized
              ~fused_kernels:fused r.F.Driver.fused
          in
          let res =
            G.Event_sim.run d ~quality:G.Perf_model.Optimized ~fused_kernels:fused
              r.F.Driver.fused
          in
          let events =
            List.fold_left (fun a k -> a + k.G.Event_sim.drain_events) 0
              res.G.Event_sim.kernels
          in
          Printf.printf "%-10s %-8s %12.3f %12.3f %9.3f %10d\n"
            app.Kfuse_apps.Registry.name d.G.Device.name analytic
            res.G.Event_sim.total_ms
            (res.G.Event_sim.total_ms /. analytic)
            events)
        Runner.all_devices)
    Runner.all_apps;
  print_endline
    "(memory-bound kernels agree by construction; compute-bound and halo-heavy\n\
    \ kernels diverge where the fluid simulation resolves contention and border\n\
    \ work the roofline cannot)";
  print_newline ()
