test/test_benefit.ml: Alcotest Helpers Kfuse_apps Kfuse_fusion Kfuse_image Kfuse_ir List Option
