lib/core/substitute.ml: Hashtbl Kfuse_ir List Option
