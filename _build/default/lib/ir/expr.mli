(** Per-pixel expressions.

    A kernel body is an expression evaluated once per output pixel; the
    current pixel position is implicit.  Input images are read at constant
    offsets from the current position ({!constructor:Input}), which makes
    the compute pattern of a kernel statically derivable: all offsets zero
    is a point operator, bounded offsets form the stencil of a local
    operator (Section II-C.1).

    The {!constructor:Shift} node exists for the fusion transform: fusing
    a producer into a consumer inlines the producer body at each consumer
    tap, shifted by the tap offset.  Its [exchange] field implements the
    paper's index-exchange method (Section IV-B): when set, the shifted
    position is first re-resolved against the iteration space with the
    consumer's border mode, reproducing the semantics of materializing and
    re-padding the intermediate image.  When unset, offsets merely
    compose — the naive (and, in halo regions, incorrect) body fusion of
    Figure 4b. *)

type unop =
  | Neg
  | Abs
  | Sqrt
  | Exp
  | Log
  | Sin
  | Cos
  | Floor

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Min
  | Max
  | Pow

(** Comparison used by [Select]. *)
type cmp = Lt | Le | Eq

type t =
  | Const of float
  | Param of string  (** scalar pipeline parameter *)
  | Input of { image : string; dx : int; dy : int; border : Kfuse_image.Border.mode }
      (** read [image] at the current position offset by [(dx, dy)],
          resolving out-of-bounds coordinates with [border] *)
  | Var of string  (** reference to a [Let]-bound value *)
  | Let of { var : string; value : t; body : t }
      (** bind [value], evaluated once at the current position, for use
          as [Var var] inside [body] — the "register" of point-based
          fusion (Section II-C.3): a forwarded producer pixel is computed
          once and reused however many times the consumer reads it *)
  | Unop of unop * t
  | Binop of binop * t * t
  | Select of { cmp : cmp; lhs : t; rhs : t; if_true : t; if_false : t }
      (** [if lhs <cmp> rhs then if_true else if_false] *)
  | Shift of { dx : int; dy : int; exchange : Kfuse_image.Border.mode option; body : t }
      (** evaluate [body] with the current position shifted by
          [(dx, dy)]; with [exchange = Some mode] the shifted position is
          first re-resolved against the iteration space using [mode] *)

(** {1 Smart constructors} *)

val const : float -> t
val param : string -> t

(** [input ?border ?dx ?dy image] reads [image]; offsets default to 0 and
    border to [Clamp]. *)
val input : ?border:Kfuse_image.Border.mode -> ?dx:int -> ?dy:int -> string -> t

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val neg : t -> t
val abs : t -> t
val sqrt : t -> t
val exp : t -> t
val log : t -> t
val sin : t -> t
val cos : t -> t
val floor : t -> t
val min : t -> t -> t
val max : t -> t -> t
val pow : t -> t -> t

(** [select cmp lhs rhs if_true if_false] builds a [Select]. *)
val select : cmp -> t -> t -> t -> t -> t

(** [var v] references a [Let]-bound value. *)
val var : string -> t

(** [let_ var value body] binds [value] as [Var var] within [body]. *)
val let_ : string -> t -> t -> t

(** [clamp01 e] clamps [e] into [0, 1] with min/max. *)
val clamp01 : t -> t

(** [conv ?border mask image] is the unrolled convolution of [image] with
    [mask]: the weighted sum of one [Input] per mask tap (zero
    coefficients are skipped). *)
val conv : ?border:Kfuse_image.Border.mode -> Kfuse_image.Mask.t -> string -> t

(** {1 Analyses} *)

(** [accesses e] lists all [Input] accesses in [e] with their {e total}
    offsets (composing any enclosing [Shift]s), in syntactic order. *)
val accesses : t -> (string * int * int) list

(** [images e] is the set of image names read by [e] (deduplicated, in
    first-occurrence order). *)
val images : t -> string list

(** [radius e] is the largest absolute total access offset (Chebyshev) in
    [e]; [0] for expressions without input reads. *)
val radius : t -> int

(** [radius_of_image e img] is the largest absolute total offset of
    accesses to [img], or [None] if [img] is not read. *)
val radius_of_image : t -> string -> int option

(** [subst_inputs f e] rewrites every [Input] node by [f]; [f] receives
    the node's fields and returns a replacement expression.  Enclosing
    [Shift] nodes are preserved (offsets are {e not} pre-composed — the
    replacement is evaluated in the shifted frame). *)
val subst_inputs :
  (image:string -> dx:int -> dy:int -> border:Kfuse_image.Border.mode -> t) -> t -> t

(** [rename_images f e] renames every accessed image by [f]. *)
val rename_images : (string -> string) -> t -> t

(** [params e] is the set of parameter names in [e] (first-occurrence
    order). *)
val params : t -> string list

(** [free_vars e] is the set of unbound [Var] names in [e]
    (first-occurrence order).  Kernel bodies must be closed. *)
val free_vars : t -> string list

(** [size e] is the number of AST nodes. *)
val size : t -> int

(** [equal a b] is structural equality. *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
