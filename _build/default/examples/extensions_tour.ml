(* Tour of the extensions built around the paper's core:

   1. kernel distribution  - split a separable 5x5 Gaussian into two 1-D
      passes (the paper's stated future work);
   2. Algorithm 1          - re-fuse what distribution separated;
   3. producer inlining    - eliminate shared intermediates the partition
      model must keep (Figure 2c);
   4. cleanup passes       - simplify + CSE over the fused bodies;
   5. launch autotuning    - pick thread-block shapes under the GPU model;
   6. CPU backend          - emit tiled C + OpenMP for the result.

   Run with: dune exec examples/extensions_tour.exe *)

module F = Kfuse_fusion
module G = Kfuse_gpu
module Ir = Kfuse_ir
module Img = Kfuse_image
module Iset = Kfuse_util.Iset

let () =
  (* A difference-of-Gaussians sharpener with a shared input. *)
  let open Ir.Expr in
  let p =
    Ir.Pipeline.create ~name:"dogsharp" ~width:1024 ~height:1024 ~inputs:[ "src" ]
      [
        Ir.Kernel.map ~name:"wide" ~inputs:[ "src" ]
          (conv ~border:Img.Border.Mirror Img.Mask.gaussian_5x5 "src");
        Ir.Kernel.map ~name:"detail" ~inputs:[ "src"; "wide" ]
          (input "src" - input "wide");
        Ir.Kernel.map ~name:"out" ~inputs:[ "src"; "detail" ]
          (clamp01 (input "src" + (const 0.8 * input "detail")));
      ]
  in
  Format.printf "input: %d kernels@." (Ir.Pipeline.num_kernels p);

  (* 1. Kernel distribution. *)
  (match F.Distribute.judge p "wide" with
  | F.Distribute.Split f ->
    Format.printf "distribute: wide is %s@."
      (F.Distribute.verdict_to_string (F.Distribute.Split f))
  | v -> Format.printf "distribute: %s@." (F.Distribute.verdict_to_string v));
  let split, distributed = F.Distribute.split_all p in
  Format.printf "after distribution: %d kernels (split: %s)@."
    (Ir.Pipeline.num_kernels split)
    (String.concat ", " distributed);

  (* 2 + 3 + 4. Inline, fuse, clean up. *)
  let report =
    F.Driver.run ~inline:true ~optimize:true F.Config.default F.Driver.Mincut split
  in
  Format.printf "after inline + min-cut fusion: %d kernels (inlined: %s)@."
    (F.Driver.fused_kernel_count report)
    (match report.F.Driver.inlined with [] -> "none" | l -> String.concat ", " l);

  (* Correctness of the whole stack. *)
  let rng = Kfuse_util.Rng.create 17 in
  let img = Img.Image.random rng ~width:1024 ~height:1024 ~lo:0.0 ~hi:1.0 in
  let env = Ir.Eval.env_of_list [ ("src", img) ] in
  let a = List.assoc "out" (Ir.Eval.run_outputs p env) in
  let b = List.assoc "out" (Ir.Eval.run_outputs report.F.Driver.fused env) in
  Format.printf "pixel-exact after all transforms: %b@."
    (Img.Image.max_abs_diff a b < 1e-9);

  (* 5. Launch autotuning on the GTX 680 model. *)
  let fused_names =
    List.filter_map
      (fun blk ->
        if Iset.cardinal blk >= 2 then
          Some
            (Ir.Pipeline.kernel report.F.Driver.input
               (Iset.min_elt (F.Legality.block_sinks report.F.Driver.input blk)))
              .Ir.Kernel.name
        else None)
      report.F.Driver.partition
  in
  let choices, tuned, default =
    G.Autotune.tune_pipeline G.Device.gtx680 ~quality:G.Perf_model.Optimized
      ~fused_kernels:fused_names report.F.Driver.fused
  in
  Format.printf "autotune: %.3f ms at 32x4 -> %.3f ms tuned@." default tuned;
  List.iter
    (fun (c : G.Autotune.choice) ->
      Format.printf "  %-10s best %dx%d (%.3f ms)@." c.G.Autotune.kernel_name
        c.G.Autotune.best.Kfuse_ir.Cost.bx c.G.Autotune.best.Kfuse_ir.Cost.by
        c.G.Autotune.best_ms)
    choices;

  (* 6. Tiled CPU code for the final pipeline. *)
  print_endline "\n--- C + OpenMP (64x16 tiles), first 40 lines ---";
  let c_source =
    Kfuse_codegen.Lower_cpu.emit_pipeline ~tile:(64, 16) report.F.Driver.fused
  in
  String.split_on_char '\n' c_source
  |> List.filteri (fun i _ -> i < 40)
  |> List.iter print_endline
