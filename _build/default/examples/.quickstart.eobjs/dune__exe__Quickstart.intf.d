examples/quickstart.mli:
