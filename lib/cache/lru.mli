(** A string-keyed LRU map with hit/miss/eviction counters.

    Classic hash-table-plus-intrusive-doubly-linked-list: {!find} and
    {!put} are O(1); inserting into a full cache evicts the least
    recently used entry.  Not thread-safe — {!Plan_cache} serializes
    access for the [kfused] server. *)

type 'a t

(** [create ~capacity ()] is an empty cache holding at most [capacity]
    entries.  @raise Invalid_argument if [capacity < 1]. *)
val create : capacity:int -> unit -> 'a t

(** [find t key] returns the value and marks it most recently used.
    Counts one hit or one miss. *)
val find : 'a t -> string -> 'a option

(** [put t key v] inserts or replaces [key], marking it most recently
    used; at capacity, the least recently used entry is evicted (counted
    in {!counters}). *)
val put : 'a t -> string -> 'a -> unit

(** [remove t key] drops [key] if present (not counted as an eviction). *)
val remove : 'a t -> string -> unit

val length : 'a t -> int
val capacity : 'a t -> int

(** [keys t] in most-recently-used-first order (for tests/inspection). *)
val keys : 'a t -> string list

type counters = { hits : int; misses : int; evictions : int }

val counters : 'a t -> counters

(** [clear t] drops every entry; counters are preserved. *)
val clear : 'a t -> unit
