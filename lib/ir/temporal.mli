(** Temporal-input analysis for streaming pipelines.

    A pipeline becomes temporal by naming convention on its inputs: an input
    called ["prev"] is bound to the frame one step back in the stream, and
    ["prev<N>"] (for [N >= 1], e.g. ["prev2"]) to the frame [N] steps back.
    Every other input is a per-frame ("current") input. The compiled plan
    stays a pure function of its bound frames; the stream session owns the
    sliding window of past frames and rebinds it before each push. *)

type t = {
  current : string list;  (** non-temporal inputs, in [Pipeline.inputs] order *)
  temporal : (string * int) list;
      (** temporal inputs as [(name, lag)], sorted by ascending lag *)
  depth : int;  (** maximum lag; [0] when the pipeline has no temporal input *)
}

val lag_of_name : string -> int option
(** [lag_of_name name] is [Some n] when [name] follows the temporal naming
    convention (["prev"] is lag 1, ["prev2"] lag 2, ...), [None] otherwise. *)

val analyze : Pipeline.t -> t
(** Classify the inputs of a pipeline. Never fails: a pipeline with no
    temporal inputs yields [depth = 0] and an empty [temporal] list. *)

val is_temporal : t -> bool
(** [is_temporal a] is true when the pipeline reads at least one past frame. *)

val stream_input : t -> (string, Kfuse_util.Diag.t) result
(** [stream_input a] is the single current-frame input a streaming session
    feeds each pushed frame into. Errors when the pipeline has no current
    input or more than one, since binding would be ambiguous. *)
