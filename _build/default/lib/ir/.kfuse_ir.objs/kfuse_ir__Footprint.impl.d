lib/ir/footprint.ml: Expr Format Kernel List String
