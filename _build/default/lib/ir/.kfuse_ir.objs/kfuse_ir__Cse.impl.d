lib/ir/cse.ml: Array Expr Kernel List Map Option Pipeline Printf Stdlib
