lib/dsl/elaborate.mli: Ast Kfuse_image Kfuse_ir
