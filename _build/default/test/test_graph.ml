(* Tests for Kfuse_graph: Digraph, Topo, Wgraph, Partition. *)

module Iset = Kfuse_util.Iset
module Digraph = Kfuse_graph.Digraph
module Topo = Kfuse_graph.Topo
module Wgraph = Kfuse_graph.Wgraph
module Partition = Kfuse_graph.Partition

let diamond = Digraph.of_edges [ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_add_vertex () =
  let g = Digraph.add_vertex Digraph.empty 5 in
  Alcotest.(check bool) "mem" true (Digraph.mem_vertex g 5);
  Alcotest.(check int) "count" 1 (Digraph.num_vertices g);
  let g2 = Digraph.add_vertex g 5 in
  Alcotest.(check int) "idempotent" 1 (Digraph.num_vertices g2)

let test_add_edge () =
  let g = Digraph.add_edge Digraph.empty 1 2 in
  Alcotest.(check bool) "edge" true (Digraph.mem_edge g 1 2);
  Alcotest.(check bool) "not reversed" false (Digraph.mem_edge g 2 1);
  Alcotest.check Helpers.iset "succs" (Helpers.set_of [ 2 ]) (Digraph.succs g 1);
  Alcotest.check Helpers.iset "preds" (Helpers.set_of [ 1 ]) (Digraph.preds g 2)

let test_self_loop_rejected () =
  Alcotest.check_raises "self loop" (Invalid_argument "Digraph.add_edge: self loop")
    (fun () -> ignore (Digraph.add_edge Digraph.empty 1 1))

let test_remove_edge () =
  let g = Digraph.remove_edge diamond 0 1 in
  Alcotest.(check bool) "gone" false (Digraph.mem_edge g 0 1);
  Alcotest.(check int) "others kept" 3 (Digraph.num_edges g)

let test_remove_vertex () =
  let g = Digraph.remove_vertex diamond 3 in
  Alcotest.(check int) "vertices" 3 (Digraph.num_vertices g);
  Alcotest.(check int) "edges" 2 (Digraph.num_edges g);
  Alcotest.check Helpers.iset "succs of 1 emptied" Iset.empty (Digraph.succs g 1)

let test_induced () =
  let sub = Digraph.induced diamond (Helpers.set_of [ 0; 1; 3 ]) in
  Alcotest.(check int) "vertices" 3 (Digraph.num_vertices sub);
  Alcotest.(check (list (pair int int))) "edges" [ (0, 1); (1, 3) ] (Digraph.edges sub)

let test_degrees () =
  Alcotest.(check int) "in 3" 2 (Digraph.in_degree diamond 3);
  Alcotest.(check int) "out 0" 2 (Digraph.out_degree diamond 0);
  Alcotest.(check int) "absent" 0 (Digraph.in_degree diamond 99)

let test_equal () =
  let a = Digraph.of_edges [ (1, 2); (2, 3) ] in
  let b = Digraph.of_edges [ (2, 3); (1, 2) ] in
  Alcotest.(check bool) "order independent" true (Digraph.equal a b);
  Alcotest.(check bool) "different" false (Digraph.equal a diamond)

let test_topo_sort () =
  let order = Topo.sort diamond in
  Alcotest.(check int) "all vertices" 4 (List.length order);
  let rank v =
    let rec idx i = function
      | [] -> Alcotest.failf "missing %d" v
      | x :: rest -> if x = v then i else idx (i + 1) rest
    in
    idx 0 order
  in
  List.iter
    (fun (u, v) ->
      if rank u >= rank v then Alcotest.failf "edge (%d,%d) violated" u v)
    (Digraph.edges diamond)

let test_topo_deterministic () =
  Alcotest.(check (list int)) "smallest-first" [ 0; 1; 2; 3 ] (Topo.sort diamond)

let test_cycle_detection () =
  let g = Digraph.of_edges [ (0, 1); (1, 2); (2, 0) ] in
  Alcotest.(check bool) "not dag" false (Topo.is_dag g);
  (match Topo.sort g with
  | _ -> Alcotest.fail "expected Cycle"
  | exception Topo.Cycle cyc ->
    Alcotest.(check bool) "cycle nonempty" true (List.length cyc >= 2));
  Alcotest.(check bool) "dag ok" true (Topo.is_dag diamond)

let test_reachable () =
  Alcotest.check Helpers.iset "from 0" (Helpers.set_of [ 0; 1; 2; 3 ]) (Topo.reachable diamond 0);
  Alcotest.check Helpers.iset "from 1" (Helpers.set_of [ 1; 3 ]) (Topo.reachable diamond 1);
  Alcotest.check Helpers.iset "co from 3" (Helpers.set_of [ 0; 1; 2; 3 ])
    (Topo.co_reachable diamond 3);
  Alcotest.(check bool) "path 0->3" true (Topo.has_path diamond 0 3);
  Alcotest.(check bool) "no path 1->2" false (Topo.has_path diamond 1 2);
  Alcotest.(check bool) "trivial path" true (Topo.has_path diamond 2 2)

let test_sources_sinks () =
  Alcotest.check Helpers.iset "sources" (Helpers.set_of [ 0 ]) (Topo.sources diamond);
  Alcotest.check Helpers.iset "sinks" (Helpers.set_of [ 3 ]) (Topo.sinks diamond)

let test_components () =
  let g = Digraph.of_edges [ (0, 1); (2, 3) ] in
  let g = Digraph.add_vertex g 9 in
  let comps = Topo.undirected_components g in
  Alcotest.(check int) "three components" 3 (List.length comps);
  Alcotest.check Helpers.iset "first" (Helpers.set_of [ 0; 1 ]) (List.nth comps 0);
  Alcotest.check Helpers.iset "singleton last" (Helpers.set_of [ 9 ]) (List.nth comps 2)

let test_weak_connectivity () =
  Alcotest.(check bool) "diamond subset" true
    (Topo.is_weakly_connected diamond (Helpers.set_of [ 0; 1; 3 ]));
  Alcotest.(check bool) "disconnected pair" false
    (Topo.is_weakly_connected diamond (Helpers.set_of [ 1; 2 ]));
  Alcotest.(check bool) "singleton" true
    (Topo.is_weakly_connected diamond (Helpers.set_of [ 2 ]));
  Alcotest.(check bool) "empty" true (Topo.is_weakly_connected diamond Iset.empty)

let test_wgraph_basics () =
  let g = Wgraph.add_edge Wgraph.empty 1 2 3.0 in
  Alcotest.check (Helpers.float_close ()) "weight" 3.0 (Wgraph.weight g 1 2);
  Alcotest.check (Helpers.float_close ()) "symmetric" 3.0 (Wgraph.weight g 2 1);
  let g = Wgraph.add_edge g 1 2 0.5 in
  Alcotest.check (Helpers.float_close ()) "accumulates" 3.5 (Wgraph.weight g 1 2);
  Alcotest.check (Helpers.float_close ()) "absent" 0.0 (Wgraph.weight g 1 9)

let test_wgraph_invalid () =
  Alcotest.check_raises "self loop" (Invalid_argument "Wgraph.add_edge: self loop")
    (fun () -> ignore (Wgraph.add_edge Wgraph.empty 1 1 1.0));
  Alcotest.check_raises "zero weight"
    (Invalid_argument "Wgraph.add_edge: weight must be positive") (fun () ->
      ignore (Wgraph.add_edge Wgraph.empty 1 2 0.0))

let test_wgraph_of_digraph () =
  (* Antiparallel edges accumulate into one undirected edge. *)
  let d = Digraph.of_edges [ (1, 2); (2, 1) ] in
  let w = Wgraph.of_digraph (fun _ _ -> 2.0) d in
  Alcotest.check (Helpers.float_close ()) "merged" 4.0 (Wgraph.weight w 1 2);
  Alcotest.(check int) "one undirected edge" 1 (List.length (Wgraph.edges w))

let test_wgraph_cut_weight () =
  let w = Wgraph.of_digraph (fun u v -> float_of_int ((10 * u) + v)) diamond in
  (* Edges: 0-1 w=1, 0-2 w=2, 1-3 w=13, 2-3 w=23; cut {0,1} crosses 0-2 and 1-3. *)
  Alcotest.check (Helpers.float_close ()) "cut" 15.0
    (Wgraph.cut_weight w (Helpers.set_of [ 0; 1 ]));
  Alcotest.check (Helpers.float_close ()) "total" 39.0 (Wgraph.total_weight w)

let test_wgraph_connected () =
  let w = Wgraph.add_edge Wgraph.empty 1 2 1.0 in
  Alcotest.(check bool) "connected" true (Wgraph.is_connected w);
  let w = Wgraph.add_vertex w 9 in
  Alcotest.(check bool) "disconnected" false (Wgraph.is_connected w);
  Alcotest.(check bool) "empty" true (Wgraph.is_connected Wgraph.empty)

let test_partition_valid () =
  let p = [ Helpers.set_of [ 0; 1 ]; Helpers.set_of [ 2; 3 ] ] in
  Alcotest.(check bool) "valid" true (Partition.is_valid diamond p);
  Alcotest.(check bool) "missing vertex" false
    (Partition.is_valid diamond [ Helpers.set_of [ 0; 1 ] ]);
  Alcotest.(check bool) "overlap" false
    (Partition.is_valid diamond [ Helpers.set_of [ 0; 1; 2 ]; Helpers.set_of [ 2; 3 ] ])

let test_partition_singletons () =
  let p = Partition.singletons diamond in
  Alcotest.(check int) "four blocks" 4 (List.length p);
  Alcotest.(check bool) "valid" true (Partition.is_valid diamond p)

let test_partition_block_of () =
  let p = [ Helpers.set_of [ 0; 1 ]; Helpers.set_of [ 2; 3 ] ] in
  Alcotest.check Helpers.iset "block of 2" (Helpers.set_of [ 2; 3 ]) (Partition.block_of p 2);
  Alcotest.check_raises "missing" Not_found (fun () -> ignore (Partition.block_of p 9))

let weight_all_one _ _ = 1.0

let test_partition_objective () =
  let p = [ Helpers.set_of [ 0; 1 ]; Helpers.set_of [ 2; 3 ] ] in
  (* In-block edges: (0,1) and (2,3); crossing: (0,2) and (1,3). *)
  Alcotest.check (Helpers.float_close ()) "objective" 2.0
    (Partition.objective weight_all_one diamond p);
  Alcotest.check (Helpers.float_close ()) "crossing" 2.0
    (Partition.crossing_weight weight_all_one diamond p);
  (* Eq. 13: objective + crossing = total. *)
  Alcotest.check (Helpers.float_close ()) "conservation" 4.0
    (Partition.objective weight_all_one diamond p
    +. Partition.crossing_weight weight_all_one diamond p)

let test_partition_equal () =
  let p = [ Helpers.set_of [ 2; 3 ]; Helpers.set_of [ 0; 1 ] ] in
  let q = [ Helpers.set_of [ 0; 1 ]; Helpers.set_of [ 2; 3 ] ] in
  Alcotest.(check bool) "order independent" true (Partition.equal p q);
  Alcotest.(check bool) "different" false (Partition.equal p (Partition.singletons diamond))

let suite =
  [
    Alcotest.test_case "Digraph.add_vertex" `Quick test_add_vertex;
    Alcotest.test_case "Digraph.add_edge" `Quick test_add_edge;
    Alcotest.test_case "Digraph self loop" `Quick test_self_loop_rejected;
    Alcotest.test_case "Digraph.remove_edge" `Quick test_remove_edge;
    Alcotest.test_case "Digraph.remove_vertex" `Quick test_remove_vertex;
    Alcotest.test_case "Digraph.induced" `Quick test_induced;
    Alcotest.test_case "Digraph degrees" `Quick test_degrees;
    Alcotest.test_case "Digraph.equal" `Quick test_equal;
    Alcotest.test_case "Topo.sort respects edges" `Quick test_topo_sort;
    Alcotest.test_case "Topo.sort deterministic" `Quick test_topo_deterministic;
    Alcotest.test_case "Topo cycle detection" `Quick test_cycle_detection;
    Alcotest.test_case "Topo reachability" `Quick test_reachable;
    Alcotest.test_case "Topo sources/sinks" `Quick test_sources_sinks;
    Alcotest.test_case "Topo components" `Quick test_components;
    Alcotest.test_case "Topo weak connectivity" `Quick test_weak_connectivity;
    Alcotest.test_case "Wgraph basics" `Quick test_wgraph_basics;
    Alcotest.test_case "Wgraph invalid edges" `Quick test_wgraph_invalid;
    Alcotest.test_case "Wgraph.of_digraph merges antiparallel" `Quick test_wgraph_of_digraph;
    Alcotest.test_case "Wgraph cut weight" `Quick test_wgraph_cut_weight;
    Alcotest.test_case "Wgraph connectivity" `Quick test_wgraph_connected;
    Alcotest.test_case "Partition validity" `Quick test_partition_valid;
    Alcotest.test_case "Partition.singletons" `Quick test_partition_singletons;
    Alcotest.test_case "Partition.block_of" `Quick test_partition_block_of;
    Alcotest.test_case "Partition objective & Eq. 13" `Quick test_partition_objective;
    Alcotest.test_case "Partition.equal" `Quick test_partition_equal;
  ]
