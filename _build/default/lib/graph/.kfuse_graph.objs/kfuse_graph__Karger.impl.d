lib/graph/karger.ml: Array Float Fun Hashtbl Kfuse_util List Wgraph
