(** The fuzzing campaign driver.

    Replays the corpus first (a bug stays found until fixed), then
    generates [cases] fresh pipelines from [(seed, index)] pairs and
    runs each through the {!Oracle} bank.  A failing case is shrunk to
    a minimal reproducer ({!Shrink}), persisted to the corpus
    ({!Corpus}), and reported with full provenance.  The summary also
    aggregates the feature-coverage table (what fraction of generated
    cases exercised convolutions, diamonds, reductions, ...) and the
    min-cut-vs-exhaustive optimality statistics, so a green run still
    says something quantitative about what was tested. *)

type options = {
  cases : int;  (** generated cases (corpus replays are extra) *)
  seed : int;
  shrink : bool;  (** shrink failures to minimal reproducers *)
  corpus : string option;  (** replay + persist directory *)
  max_kernels : int;  (** DAG size bound for generation *)
  strict_optimal : bool;  (** heuristic optimality gaps are failures *)
  jobs : int;  (** > 1 enables the pool-determinism oracle on that many domains *)
  max_failures : int;  (** stop the campaign after this many failures *)
  cache_dir : string option;
      (** disk tier for the cache-replay oracle and the native oracle's
          compile cache; [None] probes a fresh directory under the
          system temp dir *)
  native : bool;
      (** append the opt-in {!Oracle.Native_exec} and
          {!Oracle.Stream_exec} oracles to the bank: compile each fused
          plan with the host C toolchain and demand bitwise agreement
          with the interpreter — per single execution, and across a
          multi-frame streaming push sequence with temporal state
          carried between frames.  Much slower (C compiles per case);
          skips silently on toolchain-less hosts *)
  oracles : Oracle.name list option;
      (** run exactly these oracles, in this order, instead of the
          default bank ([None]); overrides [native].  The CI
          lazy-replan job uses [Some [Incremental_replan]] for a
          focused differential smoke *)
}

val default_options : options

type origin = Generated of int  (** case index *) | Replayed of string  (** corpus path *)

type failure_report = {
  origin : origin;
  oracle : Oracle.name;
  detail : string;
  pipeline : Kfuse_ir.Pipeline.t;  (** as generated/loaded *)
  shrunk : Kfuse_ir.Pipeline.t option;  (** minimal reproducer, when shrinking ran *)
  saved : string option;  (** corpus path the reproducer was persisted to *)
}

type summary = {
  cases_run : int;
  corpus_replayed : int;
  corpus_errors : (string * string) list;  (** unreadable corpus entries *)
  failures : failure_report list;
  optimal : int;  (** cases where min-cut matched the exhaustive optimum *)
  gaps : int;  (** cases with a heuristic optimality gap *)
  max_gap : float;
  beta_unchecked : int;  (** cases too large for the exhaustive oracle *)
  feature_counts : (string * int) list;  (** coverage: flag -> generated cases showing it *)
}

(** [run ?log options] executes the campaign.  [log] receives one-line
    progress messages (default: none). *)
val run : ?log:(string -> unit) -> options -> summary

(** [failed s] — did anything fail (corpus errors included)? *)
val failed : summary -> bool

val pp_summary : Format.formatter -> summary -> unit
