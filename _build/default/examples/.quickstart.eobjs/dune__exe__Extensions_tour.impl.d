examples/extensions_tour.ml: Format Kfuse_codegen Kfuse_fusion Kfuse_gpu Kfuse_image Kfuse_ir Kfuse_util List String
