examples/harris_pipeline.mli:
