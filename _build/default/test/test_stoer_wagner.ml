(* Tests for the Stoer-Wagner minimum cut, including a brute-force
   cross-check (also exercised as a qcheck property in
   test_properties.ml). *)

module Iset = Kfuse_util.Iset
module Wgraph = Kfuse_graph.Wgraph
module Sw = Kfuse_graph.Stoer_wagner

let graph edges =
  List.fold_left (fun g (u, v, w) -> Wgraph.add_edge g u v w) Wgraph.empty edges

let check_cut name g expected_weight =
  let w, side = Sw.min_cut g in
  Alcotest.check (Helpers.float_close ~eps:1e-9 ()) (name ^ " weight") expected_weight w;
  (* The side must be a proper nonempty subset and its actual cut weight
     must equal the reported weight. *)
  Alcotest.(check bool) (name ^ " side nonempty") true (not (Iset.is_empty side));
  Alcotest.(check bool)
    (name ^ " side proper") true
    (Iset.cardinal side < Iset.cardinal (Wgraph.vertices g));
  Alcotest.check (Helpers.float_close ~eps:1e-9 ()) (name ^ " side consistent")
    expected_weight (Wgraph.cut_weight g side)

let test_two_vertices () = check_cut "pair" (graph [ (0, 1, 5.0) ]) 5.0

let test_path () =
  (* Path weights 4 - 1 - 3: the min cut severs the middle edge. *)
  check_cut "path" (graph [ (0, 1, 4.0); (1, 2, 1.0); (2, 3, 3.0) ]) 1.0

let test_triangle () = check_cut "triangle" (graph [ (0, 1, 1.0); (1, 2, 1.0); (0, 2, 1.0) ]) 2.0

let test_classic_paper_graph () =
  (* The 8-vertex example from the Stoer-Wagner paper; min cut = 4. *)
  let g =
    graph
      [
        (1, 2, 2.); (1, 5, 3.); (2, 3, 3.); (2, 5, 2.); (2, 6, 2.); (3, 4, 4.);
        (3, 7, 2.); (4, 7, 2.); (4, 8, 2.); (5, 6, 3.); (6, 7, 1.); (7, 8, 3.);
      ]
  in
  check_cut "stoer-wagner fig" g 4.0

let test_star () =
  (* A star: cheapest leaf detaches. *)
  check_cut "star" (graph [ (0, 1, 5.0); (0, 2, 2.0); (0, 3, 7.0) ]) 2.0

let test_disconnected () =
  let g = Wgraph.add_vertex (graph [ (0, 1, 3.0) ]) 9 in
  let w, side = Sw.min_cut g in
  Alcotest.check (Helpers.float_close ()) "zero cut" 0.0 w;
  Alcotest.check (Helpers.float_close ()) "side consistent" 0.0 (Wgraph.cut_weight g side)

let test_single_vertex_rejected () =
  Alcotest.check_raises "too small"
    (Invalid_argument "Stoer_wagner.min_cut: need at least 2 vertices") (fun () ->
      ignore (Sw.min_cut (Wgraph.add_vertex Wgraph.empty 1)))

let test_brute_matches_exact_small () =
  let g =
    graph [ (0, 1, 1.5); (1, 2, 2.5); (2, 0, 0.5); (2, 3, 1.0); (3, 0, 2.0) ]
  in
  let w1, _ = Sw.min_cut g in
  let w2, _ = Sw.min_cut_brute g in
  Alcotest.check (Helpers.float_close ~eps:1e-9 ()) "agree" w2 w1

let test_harris_epsilon_structure () =
  (* The undirected weighted view of the Harris DAG (Figure 3a): the
     global min cut has weight 2 * epsilon (separating {sy, gy} through
     its two epsilon edges). *)
  let eps = 0.001 in
  (* vertices: dx=0 dy=1 sx=2 sy=3 sxy=4 gx=5 gy=6 gxy=7 hc=8 *)
  let g =
    graph
      [
        (0, 2, eps); (0, 4, eps); (1, 3, eps); (1, 4, eps); (2, 5, 328.);
        (3, 6, 328.); (4, 7, 256.); (5, 8, eps); (6, 8, eps); (7, 8, eps);
      ]
  in
  let w, _side = Sw.min_cut g in
  Alcotest.check (Helpers.float_close ~eps:1e-12 ()) "2 eps" (2.0 *. eps) w

let test_min_cut_brute_limits () =
  Alcotest.check_raises "too small"
    (Invalid_argument "Stoer_wagner.min_cut_brute: need at least 2 vertices") (fun () ->
      ignore (Sw.min_cut_brute (Wgraph.add_vertex Wgraph.empty 1)))

let suite =
  [
    Alcotest.test_case "two vertices" `Quick test_two_vertices;
    Alcotest.test_case "path graph" `Quick test_path;
    Alcotest.test_case "triangle" `Quick test_triangle;
    Alcotest.test_case "Stoer-Wagner paper example" `Quick test_classic_paper_graph;
    Alcotest.test_case "star graph" `Quick test_star;
    Alcotest.test_case "disconnected graph" `Quick test_disconnected;
    Alcotest.test_case "single vertex rejected" `Quick test_single_vertex_rejected;
    Alcotest.test_case "matches brute force" `Quick test_brute_matches_exact_small;
    Alcotest.test_case "Harris epsilon structure" `Quick test_harris_epsilon_structure;
    Alcotest.test_case "brute-force limits" `Quick test_min_cut_brute_limits;
  ]
