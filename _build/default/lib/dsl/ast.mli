(** Abstract syntax of the pipeline DSL.

    A small textual front end for describing kernel pipelines, in the
    spirit of Hipacc's C++-embedded operators.  Example:

    {v
    # Sobel edge filter
    pipeline sobel(in) {
      size 2048 2048
      dx  = conv(in, sobelx, clamp)
      dy  = conv(in, sobely, clamp)
      mag = sqrt(dx*dx + dy*dy)
    }
    v} *)

type position = { line : int; col : int }

(** Convolution masks: a named builtin ([gauss3], [gauss5], [sobelx],
    [sobely], [mean3], [mean5]) or a literal row-major matrix. *)
type mask_ref = Named_mask of string | Literal_mask of float list list

type expr =
  | Num of float
  | Ref of string  (** image (point access) or parameter; resolved later *)
  | Access of { name : string; dx : int; dy : int; border : Kfuse_image.Border.mode option }
      (** windowed access [name\@(dx,dy)] with optional border suffix *)
  | Conv of { image : string; mask : mask_ref; border : Kfuse_image.Border.mode option }
  | Let_in of { name : string; value : expr; body : expr }
      (** [let name = value in body]; the binding shadows parameters and
          images within [body] *)
  | Unary of string * expr  (** "-", "sqrt", "exp", ... *)
  | Binary of string * expr * expr  (** "+", "-", "*", "/" *)
  | Call of string * expr list  (** "min", "max", "pow", "clamp01" *)

type def_body =
  | Map_def of expr
  | Reduce_def of [ `Sum | `Min | `Max ] * expr  (** [reduce sum(expr)] *)

type stmt =
  | Size of { width : int; height : int; channels : int option }
  | Param_decl of string * float
  | Def of { name : string; body : def_body; pos : position }

type pipeline = {
  name : string;
  inputs : string list;
  stmts : stmt list;
  pos : position;
}
