(** Request metrics for the [kfused] server.

    Per-operation counters and latency reservoirs
    ({!Kfuse_util.Stats.reservoir}, p50/p90/p95/p99), plus free-form
    named counters (accepted/dropped connections, protocol errors).
    Thread-safe: one mutex, held only for O(1) updates and snapshot
    copies. *)

type t

val create : unit -> t

(** [observe t ~op ~ok ms] records one completed request of kind [op]
    with the given wall-clock latency in milliseconds. *)
val observe : t -> op:string -> ok:bool -> float -> unit

(** [incr t name] bumps the named counter. *)
val incr : t -> string -> unit

(** [counter t name] reads a named counter (0 if never bumped). *)
val counter : t -> string -> int

(** [touch t name] makes the counter visible (at 0) in {!render} before
    its first event, so dashboards can tell "never happened" from "not
    instrumented". *)
val touch : t -> string -> unit

(** {2 Gauges} — instantaneous values (e.g. [connections_active]),
    rendered without the [_total] suffix. *)

val adjust_gauge : t -> string -> int -> unit
val incr_gauge : t -> string -> unit
val decr_gauge : t -> string -> unit
val gauge : t -> string -> int

(** [ops t] lists the observed operation kinds (sorted). *)
val ops : t -> string list

(** [latency t op] is the latency snapshot for [op], if any request of
    that kind completed. *)
val latency : t -> string -> Kfuse_util.Stats.quantiles option

(** [requests t op] is [(total, errors)] for [op]. *)
val requests : t -> string -> int * int

(** [render t ~cache ~uptime_s] is a Prometheus-style text exposition:
    [kfused_*] counters and gauges, cache stats, and per-op latency
    quantiles. *)
val render : t -> cache:Kfuse_cache.Plan_cache.stats -> uptime_s:float -> string
