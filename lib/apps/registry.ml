type entry = {
  name : string;
  description : string;
  pipeline : unit -> Kfuse_ir.Pipeline.t;
  small : width:int -> height:int -> Kfuse_ir.Pipeline.t;
}

let all =
  [
    {
      name = "harris";
      description = "Harris corner detector: 9 kernels, the paper's worked example";
      pipeline = (fun () -> Harris.pipeline ());
      small = (fun ~width ~height -> Harris.pipeline ~width ~height ());
    };
    {
      name = "sobel";
      description = "Sobel edge filter: two local derivatives + gradient magnitude";
      pipeline = (fun () -> Sobel.pipeline ());
      small = (fun ~width ~height -> Sobel.pipeline ~width ~height ());
    };
    {
      name = "unsharp";
      description = "Cubic unsharp masking: blur + three point kernels sharing the input";
      pipeline = (fun () -> Unsharp.pipeline ());
      small = (fun ~width ~height -> Unsharp.pipeline ~width ~height ());
    };
    {
      name = "shitomasi";
      description = "Shi-Tomasi good-feature extractor: Harris structure, min-eigenvalue response";
      pipeline = (fun () -> Shitomasi.pipeline ());
      small = (fun ~width ~height -> Shitomasi.pipeline ~width ~height ());
    };
    {
      name = "enhance";
      description = "WCE enhancement: geometric mean filter + gamma correction chain";
      pipeline = (fun () -> Enhance.pipeline ());
      small = (fun ~width ~height -> Enhance.pipeline ~width ~height ());
    };
    {
      name = "motion";
      description = "Motion detection: frame delta vs previous frame, Sobel + threshold (temporal)";
      pipeline = (fun () -> Motion.pipeline ());
      small = (fun ~width ~height -> Motion.pipeline ~width ~height ());
    };
    {
      name = "tharris";
      description = "Temporal Harris: 3-frame sliding-window average ahead of the Harris chain";
      pipeline = (fun () -> Tharris.pipeline ());
      small = (fun ~width ~height -> Tharris.pipeline ~width ~height ());
    };
    {
      name = "night";
      description = "Night filter: two compute-heavy a-trous kernels + scotopic tone mapping";
      pipeline = (fun () -> Night.pipeline ());
      small = (fun ~width ~height -> Night.pipeline ~width ~height ~channels:1 ());
    };
  ]

let find name = List.find_opt (fun e -> String.equal e.name name) all
let names = List.map (fun e -> e.name) all
