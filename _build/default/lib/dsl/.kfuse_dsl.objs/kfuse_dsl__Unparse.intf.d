lib/dsl/unparse.mli: Kfuse_ir
