lib/codegen/dot.mli: Kfuse_graph Kfuse_ir
