lib/codegen/dot.ml: Array Buffer Kfuse_graph Kfuse_ir Kfuse_util List Lower_common Printf String
