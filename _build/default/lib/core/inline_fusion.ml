module Iset = Kfuse_util.Iset
module Pipeline = Kfuse_ir.Pipeline
module Kernel = Kfuse_ir.Kernel
module Expr = Kfuse_ir.Expr
module Cost = Kfuse_ir.Cost

type verdict =
  | Inline of { saved : float; cost : float }
  | Keep_output
  | Keep_global
  | Keep_resource of { consumer : string; ratio : float }
  | Keep_unprofitable of { saved : float; cost : float }

let producer_exn (p : Pipeline.t) image =
  match Pipeline.producer p image with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Inline_fusion: no kernel produces %S" image)

(* Rewrite one consumer kernel: substitute accesses to [image] by the
   producer body (registers for multi-use point reads outside Shift
   frames, Shift with index exchange for windowed reads) — shared with
   the fusion transform. *)
let rewrite_consumer ~exchange ~image ~producer_body (k : Kernel.t) =
  let body =
    match k.Kernel.op with
    | Kernel.Map e -> e
    | Kernel.Reduce _ ->
      invalid_arg
        (Printf.sprintf "Inline_fusion: consumer %s is a reduction" k.Kernel.name)
  in
  (* Fresh register names: chained inlines can target the same consumer
     repeatedly, so disambiguate against existing Let binders. *)
  let fresh img =
    let rec pick n =
      let candidate = if n = 0 then "inl_" ^ img else Printf.sprintf "inl_%s_%d" img n in
      let rec bound e =
        match e with
        | Expr.Let { var; value; body } ->
          String.equal var candidate || bound value || bound body
        | Expr.Const _ | Expr.Param _ | Expr.Input _ | Expr.Var _ -> false
        | Expr.Unop (_, a) -> bound a
        | Expr.Binop (_, a, b) -> bound a || bound b
        | Expr.Select { lhs; rhs; if_true; if_false; _ } ->
          List.exists bound [ lhs; rhs; if_true; if_false ]
        | Expr.Shift { body; _ } -> bound body
      in
      if bound body || bound producer_body then pick (n + 1) else candidate
    in
    pick 0
  in
  let new_body =
    Substitute.inline_producers ~exchange ~fresh
      ~produced:(fun img -> if String.equal img image then Some producer_body else None)
      body
  in
  Kernel.map ~name:k.Kernel.name ~inputs:(Expr.images new_body) new_body

let inline_image ?(exchange = true) (p : Pipeline.t) image =
  let u = producer_exn p image in
  let producer = Pipeline.kernel p u in
  if List.mem image (Pipeline.outputs p) then
    invalid_arg (Printf.sprintf "Inline_fusion: %S is a pipeline output" image);
  let producer_body =
    match producer.Kernel.op with
    | Kernel.Map e -> e
    | Kernel.Reduce _ ->
      invalid_arg (Printf.sprintf "Inline_fusion: producer %s is a reduction" image)
  in
  let consumers = Pipeline.consumers p u in
  let kernels =
    Array.to_list p.Pipeline.kernels
    |> List.filter_map (fun (k : Kernel.t) ->
           if String.equal k.Kernel.name image then None
           else if Iset.mem (Pipeline.index_of_exn p k.Kernel.name) consumers then
             Some (rewrite_consumer ~exchange ~image ~producer_body k)
           else Some k)
  in
  Pipeline.with_kernels p kernels

let taps_on (k : Kernel.t) image =
  let body = match k.Kernel.op with Kernel.Map e -> e | Kernel.Reduce { arg; _ } -> arg in
  List.length (List.filter (fun (i, _, _) -> String.equal i image) (Expr.accesses body))

let judge (config : Config.t) (p : Pipeline.t) image =
  let u = producer_exn p image in
  let producer = Pipeline.kernel p u in
  if List.mem image (Pipeline.outputs p) then Keep_output
  else if Kernel.is_global producer then Keep_global
  else begin
    let consumers = Iset.elements (Pipeline.consumers p u) in
    if List.exists (fun c -> Kernel.is_global (Pipeline.kernel p c)) consumers then
      Keep_global
    else begin
      (* Resource check per rewritten consumer (Eq. 2 against itself). *)
      let resource_violation =
        List.find_map
          (fun c ->
            let k = Pipeline.kernel p c in
            let before = Cost.kernel_shared_bytes config.Config.block k in
            if before = 0 then None
            else begin
              let body =
                match producer.Kernel.op with Kernel.Map e -> e | Kernel.Reduce _ -> assert false
              in
              let k' = rewrite_consumer ~exchange:true ~image ~producer_body:body k in
              let after = Cost.kernel_shared_bytes config.Config.block k' in
              let ratio = float_of_int after /. float_of_int before in
              if ratio > config.Config.c_mshared then
                Some (Keep_resource { consumer = k.Kernel.name; ratio })
              else None
            end)
          consumers
      in
      match resource_violation with
      | Some v -> v
      | None ->
        let is = Config.is_of config p in
        let n = float_of_int (List.length consumers) in
        let saved = is *. config.Config.tg *. (1.0 +. n) in
        let cost_op =
          Cost.cost_op ~c_alu:config.Config.c_alu ~c_sfu:config.Config.c_sfu
            (Cost.kernel_op_counts producer)
        in
        let is_ks = is *. float_of_int (List.length producer.Kernel.inputs) in
        let cost =
          List.fold_left
            (fun acc c ->
              acc
              +. (cost_op *. is_ks *. float_of_int (taps_on (Pipeline.kernel p c) image)))
            0.0 consumers
        in
        if saved -. cost +. config.Config.gamma > 0.0 then Inline { saved; cost }
        else Keep_unprofitable { saved; cost }
    end
  end

let greedy ?(exchange = true) config (p : Pipeline.t) =
  Config.validate config;
  let rec loop p applied =
    let candidates =
      Array.to_list p.Pipeline.kernels
      |> List.filter_map (fun (k : Kernel.t) ->
             match judge config p k.Kernel.name with
             | Inline { saved; cost } -> Some (k.Kernel.name, saved -. cost)
             | Keep_output | Keep_global | Keep_resource _ | Keep_unprofitable _ -> None)
    in
    match List.sort (fun (_, a) (_, b) -> Float.compare b a) candidates with
    | [] -> (p, List.rev applied)
    | (image, _) :: _ -> loop (inline_image ~exchange p image) (image :: applied)
  in
  loop p []

let verdict_to_string = function
  | Inline { saved; cost } -> Printf.sprintf "inline (saved %.1f, cost %.1f)" saved cost
  | Keep_output -> "keep: pipeline output"
  | Keep_global -> "keep: reduction kernel involved"
  | Keep_resource { consumer; ratio } ->
    Printf.sprintf "keep: shared memory of %s would grow x%.2f" consumer ratio
  | Keep_unprofitable { saved; cost } ->
    Printf.sprintf "keep: unprofitable (saved %.1f < cost %.1f)" saved cost
